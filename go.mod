module sisg

go 1.22
