// Package bench regenerates every table and figure of the paper as Go
// benchmarks, at reduced (quick) scale so a full -bench=. pass completes in
// minutes. Each benchmark reports the headline quantity of its artifact as
// a custom metric next to the usual ns/op, so `go test -bench=. -benchmem`
// output doubles as a compact reproduction report:
//
//	BenchmarkTable3HitRate     HR@10 gains per variant (vs SGNS)
//	BenchmarkFig3OnlineCTR     mean CTR improvement of SISG over CF
//	BenchmarkFig5TSNE          silhouette of user-type embedding by gender
//	BenchmarkFig7aWorkers      simulated-cluster speedup at 8 workers
//	BenchmarkFig7bCorpus       tokens/hour at two corpus sizes
//	BenchmarkAblationHBGP      remote-call fraction, HBGP vs random
//	BenchmarkAblationATNS      remote-call fraction, ATNS vs TNS
//
// The committed full-scale numbers live in EXPERIMENTS.md; regenerate them
// with cmd/sisg-bench.
package bench

import (
	"context"
	"io"
	"testing"

	"sisg/internal/abtest"
	"sisg/internal/corpus"
	"sisg/internal/dist"
	"sisg/internal/eges"
	"sisg/internal/eval"
	"sisg/internal/experiments"
	"sisg/internal/graph"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
	"sisg/internal/tsne"
)

// benchCorpus is the shared workload for the macro benchmarks: small enough
// to train one variant in a few seconds.
func benchCorpus() corpus.Config {
	c := corpus.Tiny()
	c.NumSessions = 6000
	return c
}

func benchTrainOpts() sgns.Options {
	o := sgns.Defaults()
	o.Epochs = 2
	return o
}

// BenchmarkTable2DatasetStats regenerates the Table II statistics.
func BenchmarkTable2DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := corpus.Generate(benchCorpus())
		if err != nil {
			b.Fatal(err)
		}
		st := ds.ComputeStats(10*(1+corpus.NumSIColumns), 20)
		b.ReportMetric(float64(st.Tokens), "tokens")
		b.ReportMetric(float64(st.TrainingPairs), "training-pairs")
	}
}

// BenchmarkTable3HitRate regenerates the Table III comparison at quick
// scale and reports each variant's HR@10 (×10⁴) as a metric.
func BenchmarkTable3HitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Table3Config{
			Corpus:   benchCorpus(),
			Train:    benchTrainOpts(),
			TestFrac: 0.1,
			Ks:       []int{10},
		}
		res, err := experiments.RunTable3(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(1e4*row.Result.HR[10], "HR10e4-"+row.Result.Model)
		}
	}
}

// BenchmarkFig3OnlineCTR regenerates the 8-day A/B simulation and reports
// the CTR improvement of SISG over CF in percent.
func BenchmarkFig3OnlineCTR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(benchCorpus(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Improvement("SISG-F-U-D", "CF"), "ctr-gain-%")
	}
}

// BenchmarkFig5TSNE embeds the user-type vectors and reports the gender
// silhouette (paper: visibly separated regions).
func BenchmarkFig5TSNE(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	m, err := sisg.Train(ds.Dict, ds.Sessions, sisg.VariantSISGFUD, benchTrainOpts())
	if err != nil {
		b.Fatal(err)
	}
	n := len(ds.Pop.Types)
	vecs := make([][]float32, n)
	genders := make([]int, n)
	for t := 0; t < n; t++ {
		vecs[t] = m.Emb.Out.Row(ds.Dict.UserType[t])
		genders[t] = int(ds.Pop.Types[t].Gender)
	}
	opt := tsne.Defaults()
	opt.Perplexity = 15
	opt.Iterations = 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := tsne.Embed(vecs, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tsne.Silhouette(y, genders), "silhouette-gender")
	}
}

// BenchmarkFig7aWorkers runs the worker sweep endpoints (1 and 8) and
// reports the simulated speedup.
func BenchmarkFig7aWorkers(b *testing.B) {
	cfg := benchCorpus()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7a(cfg, []int{1, 8}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		speedup := rows[0].Stats.SimElapsed.Seconds() / rows[1].Stats.SimElapsed.Seconds()
		b.ReportMetric(speedup, "speedup-8w")
		b.ReportMetric(100*rows[1].Stats.RemoteFraction(), "remote-%-8w")
	}
}

// BenchmarkFig7bCorpus runs the corpus-size endpoints and reports the
// throughput ratio (large/small): below 1 because larger vocabularies pay
// more memory misses, stabilizing as the paper's Figure 7(b) shows.
func BenchmarkFig7bCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7b(benchCorpus(), []float64{1, 4}, 4, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		small := rows[0].Stats.SimTokensPerSec()
		large := rows[1].Stats.SimTokensPerSec()
		b.ReportMetric(large/small, "speed-ratio-large/small")
	}
}

// BenchmarkAblationHBGP compares HBGP against random partitioning on the
// remote-call fraction at 4 workers.
func BenchmarkAblationHBGP(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	seqs := sisg.Enrich(ds.Dict, ds.Sessions, sisg.VariantSISGFUD)
	freq := make([]float64, ds.Dict.NumItems)
	for i := range freq {
		freq[i] = float64(ds.Dict.Count(int32(i)))
	}
	const w = 4
	hbgp, _, err := dist.PartitionForDataset(ds, ds.Sessions, w)
	if err != nil {
		b.Fatal(err)
	}
	random := graph.RandomPartition(ds.Dict.NumItems, freq, w, 1)
	run := func(p *graph.Partition) dist.Stats {
		opt := dist.DefaultOptions(w)
		opt.Options = sisg.TrainOptions(opt.Options, sisg.VariantSISGFUD, 3)
		opt.Epochs = 1
		_, st, err := dist.Train(ds.Dict.Dict, seqs, p, opt)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := run(hbgp)
		b.ReportMetric(100*st.RemoteFraction(), "remote-%-hbgp")
		st = run(random)
		b.ReportMetric(100*st.RemoteFraction(), "remote-%-random")
	}
}

// BenchmarkAblationATNS toggles hot-token replication.
func BenchmarkAblationATNS(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	seqs := sisg.Enrich(ds.Dict, ds.Sessions, sisg.VariantSISGFUD)
	const w = 4
	part, _, err := dist.PartitionForDataset(ds, ds.Sessions, w)
	if err != nil {
		b.Fatal(err)
	}
	run := func(hot bool) dist.Stats {
		opt := dist.DefaultOptions(w)
		opt.Options = sisg.TrainOptions(opt.Options, sisg.VariantSISGFUD, 3)
		opt.Epochs = 1
		opt.HotReplication = hot
		_, st, err := dist.Train(ds.Dict.Dict, seqs, part, opt)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(100*run(true).RemoteFraction(), "remote-%-atns")
		b.ReportMetric(100*run(false).RemoteFraction(), "remote-%-tns")
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkSGNSTrain measures the local trainer's token throughput.
func BenchmarkSGNSTrain(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	seqs := sisg.Enrich(ds.Dict, ds.Sessions, sisg.VariantSGNS)
	opt := benchTrainOpts()
	opt.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := sgns.Train(ds.Dict.Dict, seqs, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.TokensPerSec(), "tokens/s")
	}
}

// BenchmarkEGESTrain measures the EGES baseline end to end.
func BenchmarkEGESTrain(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromSessions(ds.Sessions, ds.Dict.NumItems)
	opt := eges.Defaults()
	opt.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eges.Train(ds.Dict, g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNRetrieval measures the matching-stage query path (the paper's
// serving-side operation) on a trained model.
func BenchmarkKNNRetrieval(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	m, err := sisg.Train(ds.Dict, ds.Sessions, sisg.VariantSISGFUD, benchTrainOpts())
	if err != nil {
		b.Fatal(err)
	}
	m.ItemIndex() // build outside the loop
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		m.SimilarOne(ctx, int32(i%ds.Dict.NumItems), knn.Options{K: 20})
	}
}

// BenchmarkHBGPPartition measures the partitioner itself.
func BenchmarkHBGPPartition(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromSessions(ds.Sessions, ds.Dict.NumItems)
	leafOf := make([]int32, ds.Dict.NumItems)
	freq := make([]float64, ds.Dict.NumItems)
	for i := 0; i < ds.Dict.NumItems; i++ {
		leafOf[i] = ds.Catalog.LeafOf(int32(i))
		freq[i] = float64(ds.Dict.Count(int32(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := graph.HBGP(g, leafOf, ds.Catalog.NumLeaves(), freq, 4, 1.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*p.CutFraction(g), "cut-%")
	}
}

// BenchmarkABTestDay measures one simulated A/B day.
func BenchmarkABTestDay(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	m, err := sisg.Train(ds.Dict, ds.Sessions, sisg.VariantSISGFUD, benchTrainOpts())
	if err != nil {
		b.Fatal(err)
	}
	arms := map[string]abtest.CandidateFunc{
		"SISG": func(q, user int32, k int) []knn.Result {
			rs, err := m.SimilarOne(context.Background(), q, knn.Options{K: k})
			if err != nil {
				return nil
			}
			return rs
		},
	}
	cfg := abtest.Config{Days: 1, ImpressionsPerDay: 2000, Candidates: 40, Shown: 6, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abtest.Run(ds, arms, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateHR measures the evaluation harness itself.
func BenchmarkEvaluateHR(b *testing.B) {
	ds, err := corpus.Generate(benchCorpus())
	if err != nil {
		b.Fatal(err)
	}
	split := ds.SplitNextItem(0.1)
	m, err := sisg.Train(ds.Dict, split.Train, sisg.VariantSISGFUD, benchTrainOpts())
	if err != nil {
		b.Fatal(err)
	}
	rec := eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		rs, err := m.SimilarOne(context.Background(), tc.Query, knn.Options{K: k})
		if err != nil {
			return nil
		}
		return rs
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.Evaluate("bench", rec, split.Test, []int{10})
		b.ReportMetric(1e4*res.HR[10], "HR10e4")
	}
}
