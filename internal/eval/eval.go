// Package eval implements the paper's offline evaluation protocol (§IV-A):
// next-item recommendation scored by HitRate@K.
//
// For each held-out session (v1 … vp), the model is trained on everything
// up to v_{p-1}; at evaluation time the K most similar items to v_{p-1} are
// retrieved and HR@K counts how often v_p is among them (Eq. 5):
//
//	HR@K = (1/|S|) Σ_S 1[v_p ∈ S_K(v_{p-1})]
//
// The package is model-agnostic: anything that can produce a ranked
// candidate list for a query item can be evaluated, which is how the SISG
// variants, EGES and CF all share one harness.
package eval

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"sisg/internal/corpus"
	"sisg/internal/knn"
)

// Recommender produces up to k ranked candidate item IDs for a query item,
// most similar first. tc carries the full test case so personalized
// recommenders can use the user type; pure item-to-item models ignore it.
type Recommender interface {
	Recommend(tc corpus.TestCase, k int) []knn.Result
}

// RecommenderFunc adapts a function to the Recommender interface.
type RecommenderFunc func(tc corpus.TestCase, k int) []knn.Result

// Recommend implements Recommender.
func (f RecommenderFunc) Recommend(tc corpus.TestCase, k int) []knn.Result {
	return f(tc, k)
}

// Ks are the cutoffs reported in Table III.
var Ks = []int{1, 10, 20, 100, 200}

// Result holds HitRate at each cutoff for one model.
type Result struct {
	Model string
	HR    map[int]float64 // cutoff -> hit rate
	Tests int
}

// GainOver returns the relative improvement of r over base at cutoff k,
// e.g. 0.25 for +25% — the "increase" columns of Table III.
func (r Result) GainOver(base Result, k int) float64 {
	b := base.HR[k]
	if b == 0 {
		return 0
	}
	return (r.HR[k] - b) / b
}

// Evaluate computes HR@K for every cutoff in ks (Ks if nil) over the test
// cases, querying each recommender once at the maximum cutoff and reusing
// the ranked list for all smaller cutoffs. Evaluation parallelizes across
// test cases.
func Evaluate(name string, rec Recommender, tests []corpus.TestCase, ks []int) Result {
	if ks == nil {
		ks = Ks
	}
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	hitsAt := make([]int64, len(ks))
	var mu sync.Mutex

	workers := runtime.GOMAXPROCS(0)
	if workers > len(tests) {
		workers = len(tests)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(tests) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(tests) {
			hi = len(tests)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(cases []corpus.TestCase) {
			defer wg.Done()
			local := make([]int64, len(ks))
			for _, tc := range cases {
				ranked := rec.Recommend(tc, maxK)
				rank := -1
				for i, r := range ranked {
					if r.ID == tc.Target {
						rank = i
						break
					}
				}
				if rank < 0 {
					continue
				}
				for i, k := range ks {
					if rank < k {
						local[i]++
					}
				}
			}
			mu.Lock()
			for i := range ks {
				hitsAt[i] += local[i]
			}
			mu.Unlock()
		}(tests[lo:hi])
	}
	wg.Wait()

	res := Result{Model: name, HR: make(map[int]float64, len(ks)), Tests: len(tests)}
	for i, k := range ks {
		if len(tests) > 0 {
			res.HR[k] = float64(hitsAt[i]) / float64(len(tests))
		}
	}
	return res
}

// WriteTable renders results as a Table III-style text table: HR at each
// cutoff plus the relative gain over the first row (the SGNS baseline).
func WriteTable(w io.Writer, results []Result, ks []int) {
	if ks == nil {
		ks = Ks
	}
	sort.Ints(ks)
	fmt.Fprintf(w, "%-12s", "Variant")
	for _, k := range ks {
		fmt.Fprintf(w, "%10s%10s", fmt.Sprintf("HR@%d", k), "increase")
	}
	fmt.Fprintln(w)
	if len(results) == 0 {
		return
	}
	base := results[0]
	for _, r := range results {
		fmt.Fprintf(w, "%-12s", r.Model)
		for _, k := range ks {
			fmt.Fprintf(w, "%10.4f", r.HR[k])
			if r.Model == base.Model {
				fmt.Fprintf(w, "%10s", "-")
			} else {
				fmt.Fprintf(w, "%9.2f%%", 100*r.GainOver(base, k))
			}
		}
		fmt.Fprintln(w)
	}
}

// Coverage reports what fraction of the catalog ever appears in the top-k
// lists across the test queries — a standard diversity diagnostic used by
// the ablation benches (not in the paper's tables, but useful when tuning
// the generator).
func Coverage(rec Recommender, tests []corpus.TestCase, k, numItems int) float64 {
	seen := make(map[int32]bool, numItems)
	for _, tc := range tests {
		for _, r := range rec.Recommend(tc, k) {
			seen[r.ID] = true
		}
	}
	if numItems == 0 {
		return 0
	}
	return float64(len(seen)) / float64(numItems)
}
