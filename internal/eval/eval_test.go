package eval

import (
	"bytes"
	"strings"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/knn"
)

// fixedRec always ranks items 0,1,2,... regardless of the query.
type fixedRec struct{}

func (fixedRec) Recommend(tc corpus.TestCase, k int) []knn.Result {
	out := make([]knn.Result, k)
	for i := range out {
		out[i] = knn.Result{ID: int32(i), Score: float32(k - i)}
	}
	return out
}

func TestEvaluateKnownRanks(t *testing.T) {
	// Targets 0..9: target i sits at rank i of the fixed list, so
	// HR@K = min(K,10)/10.
	var tests []corpus.TestCase
	for i := int32(0); i < 10; i++ {
		tests = append(tests, corpus.TestCase{Query: 100, Target: i})
	}
	res := Evaluate("fixed", fixedRec{}, tests, []int{1, 5, 10, 20})
	want := map[int]float64{1: 0.1, 5: 0.5, 10: 1.0, 20: 1.0}
	for k, w := range want {
		if res.HR[k] != w {
			t.Errorf("HR@%d = %v, want %v", k, res.HR[k], w)
		}
	}
	if res.Tests != 10 {
		t.Fatalf("Tests = %d", res.Tests)
	}
}

func TestEvaluateMissAll(t *testing.T) {
	tests := []corpus.TestCase{{Query: 0, Target: 999}}
	res := Evaluate("fixed", fixedRec{}, tests, []int{10})
	if res.HR[10] != 0 {
		t.Fatalf("HR = %v", res.HR[10])
	}
}

func TestGainOver(t *testing.T) {
	base := Result{Model: "base", HR: map[int]float64{10: 0.2}}
	r := Result{Model: "x", HR: map[int]float64{10: 0.3}}
	if g := r.GainOver(base, 10); g < 0.499 || g > 0.501 {
		t.Fatalf("gain = %v", g)
	}
	zero := Result{Model: "z", HR: map[int]float64{10: 0}}
	if g := r.GainOver(zero, 10); g != 0 {
		t.Fatalf("gain over zero base = %v", g)
	}
}

func TestWriteTable(t *testing.T) {
	rs := []Result{
		{Model: "SGNS", HR: map[int]float64{1: 0.01, 10: 0.05}},
		{Model: "SISG", HR: map[int]float64{1: 0.02, 10: 0.10}},
	}
	var buf bytes.Buffer
	WriteTable(&buf, rs, []int{1, 10})
	out := buf.String()
	if !strings.Contains(out, "SGNS") || !strings.Contains(out, "SISG") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "100.00%") {
		t.Fatalf("gain column missing:\n%s", out)
	}
	// Empty results should not panic.
	WriteTable(&buf, nil, nil)
}

func TestCoverage(t *testing.T) {
	tests := []corpus.TestCase{{Query: 0}, {Query: 1}}
	cov := Coverage(fixedRec{}, tests, 5, 100)
	if cov != 0.05 { // items 0..4 over 100
		t.Fatalf("coverage = %v", cov)
	}
	if Coverage(fixedRec{}, tests, 5, 0) != 0 {
		t.Fatal("zero catalog coverage")
	}
}

func TestRecommenderFunc(t *testing.T) {
	called := false
	rec := RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		called = true
		return nil
	})
	rec.Recommend(corpus.TestCase{}, 3)
	if !called {
		t.Fatal("adapter did not delegate")
	}
}

func TestEvaluateParallelConsistency(t *testing.T) {
	// Many test cases exercise the parallel path; results must match the
	// analytic expectation exactly (counting is deterministic).
	var tests []corpus.TestCase
	for i := 0; i < 1000; i++ {
		tests = append(tests, corpus.TestCase{Target: int32(i % 20)})
	}
	res := Evaluate("fixed", fixedRec{}, tests, []int{10})
	if res.HR[10] != 0.5 { // targets 0..9 hit, 10..19 miss
		t.Fatalf("HR@10 = %v", res.HR[10])
	}
}
