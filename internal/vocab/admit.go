// Streaming vocabulary admission.
//
// A live ingest loop cannot afford one embedding row per token it has ever
// seen: the matrix is the memory budget, and the stream's long tail would
// exhaust any budget in hours. The Admitter implements the classic sketch
// answer — count every token approximately in a count-min sketch, and admit
// a token to the real vocabulary (give it a row) only once its estimated
// frequency clears a threshold, while a lossy-counting style periodic decay
// ages counts so the sketch tracks the *recent* distribution under drift.
//
// Everything is deterministic: fixed hash seeds, single-threaded Observe,
// and decay at exact observation counts. Two runs over the same stream
// admit the same tokens to the same rows in the same order.

package vocab

import "fmt"

// AdmitConfig sizes the admission sketch. The zero value of each field gets
// a usable default from NewAdmitter.
type AdmitConfig struct {
	// Budget is the maximum number of admitted tokens — the embedding
	// matrix's row capacity. Once full, no further token is admitted
	// (existing tokens keep training). Must be positive.
	Budget int
	// MinCount is the estimated occurrence count a token needs before it
	// earns a row. 1 admits on first sight (every observed token is
	// servable immediately); higher values keep one-off noise out of the
	// budget. <=0 means 1.
	MinCount uint32
	// SketchWidth is the number of counters per sketch row, rounded up to
	// a power of two. <=0 means 1<<15.
	SketchWidth int
	// SketchDepth is the number of independent hash rows. <=0 means 4.
	SketchDepth int
	// DecayEvery halves every sketch counter after this many observations
	// (lossy-counting aging: old popularity stops counting toward
	// admission, so the sketch follows drift). 0 disables decay.
	DecayEvery uint64
}

func (c AdmitConfig) withDefaults() AdmitConfig {
	if c.MinCount == 0 {
		c.MinCount = 1
	}
	if c.SketchWidth <= 0 {
		c.SketchWidth = 1 << 15
	}
	// Round up to a power of two so hashes mask instead of mod.
	w := 1
	for w < c.SketchWidth {
		w <<= 1
	}
	c.SketchWidth = w
	if c.SketchDepth <= 0 {
		c.SketchDepth = 4
	}
	return c
}

// admitSeeds are the fixed per-row hash seeds; changing them changes which
// tokens collide, so they are constants, not configuration.
var admitSeeds = [...]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93,
	0xa5a5a5a5a5a5a5a5, 0xc3c3c3c3c3c3c3c3, 0x0123456789abcdef, 0xfedcba9876543210,
}

// Admitter decides, token by token, which stream tokens deserve an
// embedding row. It is NOT safe for concurrent use: the ingest loop is the
// single writer, and snapshots copy what they need under that loop.
type Admitter struct {
	cfg    AdmitConfig
	sketch [][]uint32 // depth × width approximate counters
	mask   uint64

	rowOf  map[ID]int32 // admitted token -> row
	tokens []ID         // row -> token, in admission order
	counts []uint64     // exact per-row counts since admission

	observed uint64 // total observations
	denied   uint64 // observations of unadmitted tokens while budget-full
}

// NewAdmitter returns an admitter with the given budget and sketch shape.
func NewAdmitter(cfg AdmitConfig) (*Admitter, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("vocab: admission budget must be positive, got %d", cfg.Budget)
	}
	cfg = cfg.withDefaults()
	if cfg.SketchDepth > len(admitSeeds) {
		return nil, fmt.Errorf("vocab: sketch depth %d exceeds %d", cfg.SketchDepth, len(admitSeeds))
	}
	a := &Admitter{
		cfg:    cfg,
		sketch: make([][]uint32, cfg.SketchDepth),
		mask:   uint64(cfg.SketchWidth - 1),
		rowOf:  make(map[ID]int32, cfg.Budget),
		tokens: make([]ID, 0, cfg.Budget),
		counts: make([]uint64, 0, cfg.Budget),
	}
	for d := range a.sketch {
		a.sketch[d] = make([]uint32, cfg.SketchWidth)
	}
	return a, nil
}

func admitHash(seed uint64, tok ID) uint64 {
	z := seed + uint64(uint32(tok))*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Observe counts one occurrence of tok and returns its row and whether it
// is admitted. isNew is true exactly once per admitted token: on the
// observation that admitted it — the caller's cue to initialize (and, for
// items, Eq. 6-seed) the row before any gradient touches it.
func (a *Admitter) Observe(tok ID) (row int32, admitted, isNew bool) {
	a.observed++
	if a.cfg.DecayEvery > 0 && a.observed%a.cfg.DecayEvery == 0 {
		a.decay()
	}
	if r, ok := a.rowOf[tok]; ok {
		a.counts[r]++
		return r, true, false
	}
	// Conservative count-min update: only the minimal counters advance,
	// which tightens the estimate without losing the no-undercount bound.
	min := uint32(1<<32 - 1)
	for d := range a.sketch {
		c := a.sketch[d][admitHash(admitSeeds[d], tok)&a.mask]
		if c < min {
			min = c
		}
	}
	est := min + 1
	for d := range a.sketch {
		slot := &a.sketch[d][admitHash(admitSeeds[d], tok)&a.mask]
		if *slot < est {
			*slot = est
		}
	}
	if est < a.cfg.MinCount {
		return -1, false, false
	}
	if len(a.tokens) >= a.cfg.Budget {
		a.denied++
		return -1, false, false
	}
	r := int32(len(a.tokens))
	a.rowOf[tok] = r
	a.tokens = append(a.tokens, tok)
	a.counts = append(a.counts, uint64(est))
	return r, true, true
}

func (a *Admitter) decay() {
	for d := range a.sketch {
		row := a.sketch[d]
		for i := range row {
			row[i] >>= 1
		}
	}
}

// Row returns the row of an admitted token.
func (a *Admitter) Row(tok ID) (int32, bool) {
	r, ok := a.rowOf[tok]
	return r, ok
}

// Len returns how many tokens are admitted.
func (a *Admitter) Len() int { return len(a.tokens) }

// Budget returns the row capacity.
func (a *Admitter) Budget() int { return a.cfg.Budget }

// Token returns the token admitted to row.
func (a *Admitter) Token(row int32) ID { return a.tokens[row] }

// Tokens returns the admitted tokens in admission (row) order. The slice
// is the admitter's own; callers must not mutate it.
func (a *Admitter) Tokens() []ID { return a.tokens }

// Count returns the exact occurrence count of row since its admission
// (seeded with the sketch estimate at admission time).
func (a *Admitter) Count(row int32) uint64 { return a.counts[row] }

// Observed returns the total number of observations.
func (a *Admitter) Observed() uint64 { return a.observed }

// Denied returns how many observations of unadmitted tokens arrived after
// the budget filled — the stream the vocabulary is refusing to learn.
func (a *Admitter) Denied() uint64 { return a.denied }
