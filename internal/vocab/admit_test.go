package vocab

import "testing"

func TestAdmitterAdmitsOnThreshold(t *testing.T) {
	a, err := NewAdmitter(AdmitConfig{Budget: 10, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, admitted, _ := a.Observe(42); admitted {
			t.Fatalf("token admitted after %d observations, threshold 3", i+1)
		}
	}
	row, admitted, isNew := a.Observe(42)
	if !admitted || !isNew || row != 0 {
		t.Fatalf("third observation: row=%d admitted=%v isNew=%v, want 0/true/true", row, admitted, isNew)
	}
	// Subsequent observations are admitted but not new.
	row, admitted, isNew = a.Observe(42)
	if !admitted || isNew || row != 0 {
		t.Fatalf("fourth observation: row=%d admitted=%v isNew=%v, want 0/true/false", row, admitted, isNew)
	}
	if got := a.Count(0); got != 4 {
		t.Fatalf("count %d, want 4", got)
	}
}

func TestAdmitterRespectsBudget(t *testing.T) {
	a, err := NewAdmitter(AdmitConfig{Budget: 5, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	for tok := ID(0); tok < 20; tok++ {
		a.Observe(tok)
	}
	if a.Len() != 5 {
		t.Fatalf("admitted %d tokens, budget 5", a.Len())
	}
	// First five tokens got the rows, in order.
	for r := int32(0); r < 5; r++ {
		if a.Token(r) != ID(r) {
			t.Fatalf("row %d holds token %d, want %d", r, a.Token(r), r)
		}
	}
	if a.Denied() != 15 {
		t.Fatalf("denied %d, want 15", a.Denied())
	}
	// An already-admitted token still trains while the budget is full.
	if _, admitted, _ := a.Observe(3); !admitted {
		t.Fatal("admitted token rejected after budget filled")
	}
}

func TestAdmitterDeterministic(t *testing.T) {
	stream := make([]ID, 0, 3000)
	state := uint64(99)
	for i := 0; i < 3000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		stream = append(stream, ID(state>>33%200))
	}
	run := func() []ID {
		a, err := NewAdmitter(AdmitConfig{Budget: 64, MinCount: 2, SketchWidth: 256, DecayEvery: 500})
		if err != nil {
			t.Fatal(err)
		}
		for _, tok := range stream {
			a.Observe(tok)
		}
		return append([]ID(nil), a.Tokens()...)
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("runs admitted %d vs %d tokens", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("row %d: token %d vs %d", i, first[i], second[i])
		}
	}
	if len(first) == 0 {
		t.Fatal("no tokens admitted")
	}
}

func TestAdmitterDecayForgetsOldPopularity(t *testing.T) {
	a, err := NewAdmitter(AdmitConfig{Budget: 100, MinCount: 8, SketchWidth: 256, DecayEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Token 7 accumulates sketch weight just below the threshold, then the
	// stream moves on; by the time it reappears, decay must have cut its
	// estimate so it does not coast to admission on stale counts.
	for i := 0; i < 7; i++ {
		a.Observe(7)
	}
	for i := 0; i < 640; i++ {
		a.Observe(ID(1000 + i)) // disjoint tail traffic; drives decay cycles
	}
	if _, admitted, _ := a.Observe(7); admitted {
		t.Fatal("token admitted on stale pre-decay counts")
	}
}
