// Package vocab implements the token dictionary shared by every trainer in
// this repository.
//
// SISG's key trick (§II-B of the paper) is that items, item side information
// (SI) and user types are all just "words" in one vocabulary: an enriched
// session such as
//
//	item_17 leaf_category_1234 brand_55 ... item_99 ... ut_F_19-25_t1
//
// is fed to a standard SGNS implementation. The dictionary therefore tags
// every token with a Kind so that downstream stages (evaluation retrieves
// only items; ATNS replicates mostly SI tokens; HBGP partitions only items)
// can filter without parsing strings. The hot training paths never touch
// strings at all: tokens are dense int32 IDs assigned at build time.
package vocab

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ID is a dense token identifier. IDs are assigned contiguously from 0 in
// insertion order and are stable for the lifetime of a Dict.
type ID = int32

// None marks the absence of a token.
const None ID = -1

// Kind classifies a token. The training algorithms are kind-agnostic
// (everything is a word), but evaluation and partitioning are not.
type Kind uint8

const (
	// KindItem is a catalog item ("item_123").
	KindItem Kind = iota
	// KindSI is an item side-information value ("leaf_category_1234").
	KindSI
	// KindUserType is a user metadata cross-feature token
	// ("ut_F_19-25_married_hascar").
	KindUserType
)

func (k Kind) String() string {
	switch k {
	case KindItem:
		return "item"
	case KindSI:
		return "si"
	case KindUserType:
		return "usertype"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Entry is one vocabulary row.
type Entry struct {
	Name  string
	Kind  Kind
	Count uint64 // occurrences in the training corpus
}

// Dict maps token names to dense IDs and back, and records corpus
// frequencies. Building is single-threaded; once built, all read methods are
// safe for concurrent use.
type Dict struct {
	entries []Entry
	index   map[string]ID
	totals  [3]uint64 // total count per Kind
}

// NewDict returns an empty dictionary with capacity for n tokens.
func NewDict(n int) *Dict {
	return &Dict{
		entries: make([]Entry, 0, n),
		index:   make(map[string]ID, n),
	}
}

// Add inserts a token or, if it exists, increases its count. It returns the
// token's ID. Adding an existing name with a different Kind panics: that is
// always a namespace bug in the caller.
func (d *Dict) Add(name string, kind Kind, count uint64) ID {
	if id, ok := d.index[name]; ok {
		e := &d.entries[id]
		if e.Kind != kind {
			panic(fmt.Sprintf("vocab: token %q re-added as %v, was %v", name, kind, e.Kind))
		}
		e.Count += count
		d.totals[kind] += count
		return id
	}
	id := ID(len(d.entries))
	d.entries = append(d.entries, Entry{Name: name, Kind: kind, Count: count})
	d.index[name] = id
	d.totals[kind] += count
	return id
}

// AddCount increments the count of an existing ID. It is the hot-path
// counterpart of Add for callers that already hold IDs.
func (d *Dict) AddCount(id ID, n uint64) {
	e := &d.entries[id]
	e.Count += n
	d.totals[e.Kind] += n
}

// Lookup returns the ID for name, or (None, false) if absent.
func (d *Dict) Lookup(name string) (ID, bool) {
	id, ok := d.index[name]
	if !ok {
		return None, false
	}
	return id, true
}

// Len returns the number of tokens.
func (d *Dict) Len() int { return len(d.entries) }

// Name returns the token name for id.
func (d *Dict) Name(id ID) string { return d.entries[id].Name }

// KindOf returns the Kind of id.
func (d *Dict) KindOf(id ID) Kind { return d.entries[id].Kind }

// Count returns the corpus frequency of id.
func (d *Dict) Count(id ID) uint64 { return d.entries[id].Count }

// Entry returns a copy of the vocabulary row for id.
func (d *Dict) Entry(id ID) Entry { return d.entries[id] }

// TotalCount returns the summed frequency of all tokens of the given kind.
func (d *Dict) TotalCount(kind Kind) uint64 { return d.totals[kind] }

// TotalTokens returns the summed frequency over all kinds — the corpus
// length in tokens (the "#Tokens" row of Table II).
func (d *Dict) TotalTokens() uint64 {
	return d.totals[0] + d.totals[1] + d.totals[2]
}

// CountByKind returns how many distinct tokens exist per kind.
func (d *Dict) CountByKind() (items, si, userTypes int) {
	for i := range d.entries {
		switch d.entries[i].Kind {
		case KindItem:
			items++
		case KindSI:
			si++
		case KindUserType:
			userTypes++
		}
	}
	return
}

// IDsOfKind returns all IDs of the given kind in increasing order.
func (d *Dict) IDsOfKind(kind Kind) []ID {
	var out []ID
	for i := range d.entries {
		if d.entries[i].Kind == kind {
			out = append(out, ID(i))
		}
	}
	return out
}

// TopK returns the k most frequent token IDs across all kinds, ties broken
// by ID for determinism. This is the "shared set Q" selection of §III-C
// step 4 when combined with a frequency threshold.
func (d *Dict) TopK(k int) []ID {
	ids := make([]ID, len(d.entries))
	for i := range ids {
		ids[i] = ID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := d.entries[ids[a]].Count, d.entries[ids[b]].Count
		if ca != cb {
			return ca > cb
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// AboveThreshold returns all IDs whose frequency is at least minCount,
// the literal "frequency above a certain threshold" rule for Q.
func (d *Dict) AboveThreshold(minCount uint64) []ID {
	var out []ID
	for i := range d.entries {
		if d.entries[i].Count >= minCount {
			out = append(out, ID(i))
		}
	}
	return out
}

// NoiseWeights returns per-token weights proportional to count^alpha, the
// unigram noise distribution P_noise(v) ∝ freq(v)^α of §III-C. Tokens with
// zero count get zero weight. restrict, if non-nil, zeroes every token not
// in the set — used by distributed workers whose noise distribution covers
// only their local partition ∪ shared hot set.
func (d *Dict) NoiseWeights(alpha float64, restrict map[ID]bool) []float64 {
	w := make([]float64, len(d.entries))
	for i := range d.entries {
		if restrict != nil && !restrict[ID(i)] {
			continue
		}
		c := d.entries[i].Count
		if c > 0 {
			w[i] = math.Pow(float64(c), alpha)
		}
	}
	return w
}

// SubsampleKeepProbs returns, for each token, the probability of KEEPING an
// occurrence under Mikolov-style frequent-token subsampling with threshold
// t: p = sqrt(t/f) + t/f where f is the token's relative frequency. The
// paper applies this "aggressively" to high-frequency SI tokens (§III-A);
// siBoost < 1 multiplies the keep probability of SI and user-type tokens to
// model that aggressiveness.
func (d *Dict) SubsampleKeepProbs(t float64, siBoost float64) []float32 {
	total := float64(d.TotalTokens())
	p := make([]float32, len(d.entries))
	for i := range d.entries {
		if d.entries[i].Count == 0 || total == 0 {
			p[i] = 1
			continue
		}
		f := float64(d.entries[i].Count) / total
		keep := math.Sqrt(t/f) + t/f
		if keep > 1 {
			keep = 1
		}
		if d.entries[i].Kind != KindItem {
			keep *= siBoost
		}
		p[i] = float32(keep)
	}
	return p
}

// Save writes the dictionary as tab-separated "name kind count" lines,
// one per token, in ID order. The format is deliberately trivial so other
// tools (and humans) can inspect vocabularies.
func (d *Dict) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range d.entries {
		e := &d.entries[i]
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\n", e.Name, e.Kind, e.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a dictionary written by Save. IDs are reassigned in file
// order, which matches the original IDs.
func Load(r io.Reader) (*Dict, error) {
	d := NewDict(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		parts := strings.Split(sc.Text(), "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("vocab: line %d: want 3 fields, got %d", line, len(parts))
		}
		kind, err := strconv.ParseUint(parts[1], 10, 8)
		if err != nil || kind > uint64(KindUserType) {
			return nil, fmt.Errorf("vocab: line %d: bad kind %q", line, parts[1])
		}
		count, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vocab: line %d: bad count %q: %v", line, parts[2], err)
		}
		if _, ok := d.index[parts[0]]; ok {
			return nil, fmt.Errorf("vocab: line %d: duplicate token %q", line, parts[0])
		}
		d.Add(parts[0], Kind(kind), count)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vocab: %w", err)
	}
	return d, nil
}
