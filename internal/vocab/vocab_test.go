package vocab

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func buildTestDict() *Dict {
	d := NewDict(8)
	d.Add("item_0", KindItem, 10)
	d.Add("item_1", KindItem, 5)
	d.Add("leaf_category_7", KindSI, 15)
	d.Add("brand_3", KindSI, 2)
	d.Add("ut_F_21-25_p1", KindUserType, 8)
	return d
}

func TestAddAndLookup(t *testing.T) {
	d := buildTestDict()
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	id, ok := d.Lookup("item_1")
	if !ok || id != 1 {
		t.Fatalf("Lookup(item_1) = %d, %v", id, ok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
	if d.Name(2) != "leaf_category_7" || d.KindOf(2) != KindSI || d.Count(2) != 15 {
		t.Fatalf("entry 2 wrong: %+v", d.Entry(2))
	}
}

func TestAddExistingAccumulates(t *testing.T) {
	d := buildTestDict()
	id := d.Add("item_0", KindItem, 7)
	if id != 0 {
		t.Fatalf("re-add returned id %d", id)
	}
	if d.Count(0) != 17 {
		t.Fatalf("count = %d, want 17", d.Count(0))
	}
}

func TestAddKindConflictPanics(t *testing.T) {
	d := buildTestDict()
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	d.Add("item_0", KindSI, 1)
}

func TestAddCountAndTotals(t *testing.T) {
	d := buildTestDict()
	d.AddCount(0, 5)
	if d.Count(0) != 15 {
		t.Fatalf("AddCount: %d", d.Count(0))
	}
	if d.TotalCount(KindItem) != 20 {
		t.Fatalf("item total = %d", d.TotalCount(KindItem))
	}
	if d.TotalTokens() != 20+17+8 {
		t.Fatalf("TotalTokens = %d", d.TotalTokens())
	}
}

func TestCountByKindAndIDs(t *testing.T) {
	d := buildTestDict()
	items, si, ut := d.CountByKind()
	if items != 2 || si != 2 || ut != 1 {
		t.Fatalf("CountByKind = %d %d %d", items, si, ut)
	}
	ids := d.IDsOfKind(KindSI)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("IDsOfKind = %v", ids)
	}
}

func TestTopKAndThreshold(t *testing.T) {
	d := buildTestDict()
	top := d.TopK(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 0 {
		t.Fatalf("TopK = %v", top)
	}
	if got := d.TopK(100); len(got) != d.Len() {
		t.Fatalf("TopK over-len = %d", len(got))
	}
	above := d.AboveThreshold(8)
	if len(above) != 3 { // item_0 (10), leaf (15), ut (8)
		t.Fatalf("AboveThreshold = %v", above)
	}
}

func TestNoiseWeights(t *testing.T) {
	d := buildTestDict()
	w := d.NoiseWeights(1.0, nil)
	if w[0] != 10 || w[2] != 15 {
		t.Fatalf("NoiseWeights = %v", w)
	}
	restricted := d.NoiseWeights(1.0, map[ID]bool{1: true})
	for i, v := range restricted {
		if i == 1 && v != 5 {
			t.Fatalf("restricted[1] = %v", v)
		}
		if i != 1 && v != 0 {
			t.Fatalf("restricted[%d] = %v, want 0", i, v)
		}
	}
}

func TestSubsampleKeepProbs(t *testing.T) {
	d := buildTestDict()
	p := d.SubsampleKeepProbs(1e-2, 0.5)
	for i, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("keep prob %d out of [0,1]: %v", i, v)
		}
	}
	// Hotter tokens keep less (same kind): item_0 (10) vs item_1 (5).
	if p[0] >= p[1] {
		t.Fatalf("hot item keep %v !< cold item keep %v", p[0], p[1])
	}
	// SIBoost halves non-item keep probs: brand_3 has f = 2/40, so
	// keep = (sqrt(t/f) + t/f) × 0.5.
	f := 2.0 / 40.0
	want := float32((math.Sqrt(1e-2/f) + 1e-2/f) * 0.5)
	if diff := p[3] - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("SI boost keep = %v, want %v", p[3], want)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	d := buildTestDict()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("loaded Len = %d", got.Len())
	}
	for i := 0; i < d.Len(); i++ {
		a, b := d.Entry(ID(i)), got.Entry(ID(i))
		if a != b {
			t.Fatalf("entry %d: %+v != %+v", i, a, b)
		}
	}
}

func TestSaveLoadProperty(t *testing.T) {
	f := func(names []string, counts []uint16) bool {
		d := NewDict(len(names))
		for i, n := range names {
			n = strings.Map(func(r rune) rune {
				if r == '\t' || r == '\n' || r == '\r' {
					return '_'
				}
				return r
			}, n)
			if n == "" {
				continue
			}
			c := uint64(0)
			if i < len(counts) {
				c = uint64(counts[i])
			}
			d.Add(n, Kind(i%3), c)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			if d.Entry(ID(i)) != got.Entry(ID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"toofew\t1\n",
		"badkind\tx\t5\n",
		"badkind\t9\t5\n",
		"badcount\t0\tx\n",
		"dup\t0\t1\ndup\t0\t2\n",
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q): want error", c)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindItem.String() != "item" || KindSI.String() != "si" || KindUserType.String() != "usertype" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
