package sisg

import (
	"context"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/vecmath"
	"sisg/internal/vocab"
)

func testStreamer(t *testing.T) (*corpus.Live, *Streamer) {
	t.Helper()
	lv, err := corpus.NewLive(corpus.LiveConfig{
		Base: corpus.Tiny(), ReserveItems: 30, LaunchEvery: 20, DriftEvery: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	live := sgns.LiveDefaults(0)
	live.Window = 3
	live.Seed = 5
	st, err := NewStreamer(lv.Dict, StreamConfig{
		Variant: VariantSISGFUD,
		Admit:   vocab.AdmitConfig{Budget: 2000, MinCount: 1},
		Live:    live,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lv, st
}

func TestStreamerDeterministic(t *testing.T) {
	run := func() *StreamSnapshot {
		lv, st := testStreamer(t)
		for i := 0; i < 300; i++ {
			st.Ingest(lv.Next())
		}
		return st.Publish()
	}
	a, b := run(), run()
	if a.VocabSize() != b.VocabSize() || a.NumItems() != b.NumItems() {
		t.Fatalf("vocab %d/%d items %d/%d diverge", a.VocabSize(), b.VocabSize(), a.NumItems(), b.NumItems())
	}
	ad, bd := a.in.Data(), b.in.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			t.Fatalf("snapshot matrices diverge at %d", i)
		}
	}
}

func TestStreamerSnapshotServesAdmittedItems(t *testing.T) {
	lv, st := testStreamer(t)
	for i := 0; i < 400; i++ {
		st.Ingest(lv.Next())
	}
	snap := st.Publish()
	if snap.Generation() != 1 {
		t.Fatalf("generation %d, want 1", snap.Generation())
	}
	if snap.NumItems() == 0 || snap.VocabSize() == 0 {
		t.Fatal("empty snapshot after 400 sessions")
	}
	// Retrieve for some servable item and check candidate ids are catalog
	// item ids (not compact rows): every id must be servable and != seed.
	seed := snap.items[0]
	rs, err := snap.Similar(context.Background(), []int32{seed}, knn.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0]) == 0 {
		t.Fatal("no candidates")
	}
	for _, r := range rs[0] {
		if r.ID == seed {
			t.Fatal("seed not excluded")
		}
		if !snap.Servable(r.ID) {
			t.Fatalf("candidate %d not servable", r.ID)
		}
	}
	// Batch path bit-identical to per-seed path.
	seeds := []int32{snap.items[0], snap.items[1], snap.items[2]}
	batch, err := snap.Similar(context.Background(), seeds, knn.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		one, err := snap.Similar(context.Background(), []int32{seed}, knn.Options{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(one[0]) {
			t.Fatalf("seed %d: batch %d results, single %d", seed, len(batch[i]), len(one[0]))
		}
		for j := range batch[i] {
			if batch[i][j] != one[0][j] {
				t.Fatalf("seed %d result %d: batch %+v vs single %+v", seed, j, batch[i][j], one[0][j])
			}
		}
	}
	// A snapshot is immutable: further ingest must not change it.
	before := append([]float32(nil), snap.itemIn.Row(0)...)
	for i := 0; i < 100; i++ {
		st.Ingest(lv.Next())
	}
	after := snap.itemIn.Row(0)
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("published snapshot mutated by later ingest")
		}
	}
	if st.Publish().Generation() != 2 {
		t.Fatal("second publish not generation 2")
	}
}

// TestColdItemServableBeforeFirstGradientStep is the acceptance-criteria
// proof: a brand-new item admitted mid-stream is servable via Eq. 6
// composition BEFORE any gradient step has touched its rows. Admit and
// Train are the two halves of Ingest; after Admit alone the item must
// already carry the SI-composed embedding in the next snapshot.
func TestColdItemServableBeforeFirstGradientStep(t *testing.T) {
	lv, st := testStreamer(t)
	// Warm the stream so SI tokens have rows and item norms exist.
	for i := 0; i < 300; i++ {
		st.Ingest(lv.Next())
	}
	// Find a catalog item the admitter has never seen.
	var cold int32 = -1
	for it := int32(0); int(it) < lv.Dict.NumItems; it++ {
		if _, ok := st.adm.Row(it); !ok {
			cold = it
			break
		}
	}
	if cold < 0 {
		t.Skip("budget admitted the whole catalog; enlarge corpus")
	}
	// Admission only — no Train call, so no gradient step can have touched
	// the new row.
	st.Admit(corpus.Session{UserType: 0, Items: []int32{cold}})
	snap := st.Publish()
	if !snap.Servable(cold) {
		t.Fatal("cold item not servable after admission")
	}
	// Its input row must be exactly the Eq. 6 composition of its admitted
	// SI rows (scaled): collinear with the raw SI sum.
	var si []float32
	row := snap.rowOf
	sum := make([]float32, snap.Dim())
	for _, sid := range lv.Dict.ItemSI[cold] {
		if r, ok := row[sid]; ok {
			vecmath.Add(snap.in.Row(r), sum)
		}
	}
	si = sum
	got := snap.itemIn.Row(snap.itemRowOf[cold])
	cos := vecmath.Cosine(si, got)
	if cos < 0.999 {
		t.Fatalf("cold item's vector not the Eq. 6 composition: cosine %.4f", cos)
	}
	// And it is retrievable: a query FOR it succeeds.
	rs, err := snap.Similar(context.Background(), []int32{cold}, knn.Options{K: 5})
	if err != nil || len(rs[0]) == 0 {
		t.Fatalf("cold item not retrievable: %v (%d results)", err, len(rs[0]))
	}
}

func TestStreamSnapshotColdPaths(t *testing.T) {
	lv, st := testStreamer(t)
	for i := 0; i < 400; i++ {
		st.Ingest(lv.Next())
	}
	snap := st.Publish()
	// Cold item by catalog id.
	var target int32 = -1
	for it := range snap.itemRowOf {
		target = it
		break
	}
	qv, err := snap.ColdItemVector(target)
	if err != nil {
		t.Fatalf("ColdItemVector: %v", err)
	}
	rs, err := snap.SimilarToVector(context.Background(), qv, 5, func(id int32) bool { return id == target })
	if err != nil || len(rs) == 0 {
		t.Fatalf("SimilarToVector: %v (%d results)", err, len(rs))
	}
	for _, r := range rs {
		if r.ID == target {
			t.Fatal("skip not honoured")
		}
	}
	// Cold user via user types.
	types := lv.Pop.TypesMatching(0, -1, -1)
	if len(types) == 0 {
		t.Fatal("no user types")
	}
	urs, err := snap.RecommendForColdUser(context.Background(), types, 5)
	if err != nil {
		t.Fatalf("RecommendForColdUser: %v", err)
	}
	if len(urs) == 0 {
		t.Fatal("no cold-user recommendations")
	}
	// Unservable item errors cleanly.
	if _, err := snap.Similar(context.Background(), []int32{int32(lv.Dict.NumItems) - 1}, knn.Options{K: 5}); err == nil {
		// The last reserved item may legitimately have been admitted; only
		// assert when it is not servable.
		if !snap.Servable(int32(lv.Dict.NumItems) - 1) {
			t.Fatal("unservable seed did not error")
		}
	}
}
