package sisg

import (
	"testing"
	"testing/quick"

	"sisg/internal/corpus"
	"sisg/internal/rng"
	"sisg/internal/vocab"
)

// TestEnrichProperty checks Eq. 4's structural invariants on random
// sessions for every variant: items appear in click order at stride
// positions, every injected token is the correct SI/user-type ID, and the
// output length is exactly determined by the variant flags.
func TestEnrichProperty(t *testing.T) {
	ds, err := corpus.Generate(corpus.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	numItems := int32(ds.Dict.NumItems)
	numTypes := int32(len(ds.Pop.Types))

	f := func(seed uint64, lenRaw uint8) bool {
		r := rng.New(seed)
		n := 1 + int(lenRaw%15)
		s := corpus.Session{
			UserType: int32(r.Intn(int(numTypes))),
			Items:    make([]int32, n),
		}
		for i := range s.Items {
			s.Items[i] = int32(r.Intn(int(numItems)))
		}
		for _, v := range Variants() {
			seq := Enrich(ds.Dict, []corpus.Session{s}, v)[0]
			stride := 1
			if v.UseSI {
				stride = 1 + corpus.NumSIColumns
			}
			wantLen := n * stride
			if v.UseUserType {
				wantLen++
			}
			if len(seq) != wantLen {
				return false
			}
			for i, it := range s.Items {
				if seq[i*stride] != it {
					return false
				}
				if v.UseSI {
					for col := 0; col < corpus.NumSIColumns; col++ {
						if seq[i*stride+1+col] != ds.Dict.ItemSI[it][col] {
							return false
						}
						if ds.Dict.KindOf(seq[i*stride+1+col]) != vocab.KindSI {
							return false
						}
					}
				}
			}
			if v.UseUserType {
				last := seq[len(seq)-1]
				if last != ds.Dict.UserType[s.UserType] {
					return false
				}
				if ds.Dict.KindOf(last) != vocab.KindUserType {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEnrichEmptySessions confirms degenerate inputs are handled.
func TestEnrichEmptySessions(t *testing.T) {
	ds, err := corpus.Generate(corpus.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if got := Enrich(ds.Dict, nil, VariantSISGFUD); len(got) != 0 {
		t.Fatalf("nil sessions: %v", got)
	}
	empty := []corpus.Session{{UserType: 0, Items: nil}}
	seq := Enrich(ds.Dict, empty, VariantSISGFUD)[0]
	if len(seq) != 1 || seq[0] != ds.Dict.UserType[0] {
		t.Fatalf("empty session enrichment: %v", seq)
	}
}
