package sisg

import (
	"context"
	"time"

	"sisg/internal/knn"
	"sisg/internal/model"
)

// ModelSnapshot adapts a batch-trained *Model to the model.Snapshot
// contract: one immutable generation the serving tier can pin. A batch
// deployment has exactly one generation until the next full retrain
// publishes a new snapshot over the same Holder.
type ModelSnapshot struct {
	m   *Model
	gen uint64
	at  time.Time
}

var _ model.Snapshot = (*ModelSnapshot)(nil)

// NewModelSnapshot wraps m as generation gen. Both retrieval indexes are
// built eagerly: a snapshot must never mutate after publication, and lazy
// first-request builds would race under concurrent traffic.
func NewModelSnapshot(m *Model, gen uint64) *ModelSnapshot {
	m.ItemIndex()
	if m.Variant.Directed {
		// RecommendForColdUser builds this lazily otherwise.
		m.userIndex = knn.NewIndex(m.Emb.In, m.Dict.NumItems, false)
	}
	return &ModelSnapshot{m: m, gen: gen, at: time.Now()}
}

// Model returns the wrapped batch model (warm-up paths use it directly).
func (s *ModelSnapshot) Model() *Model { return s.m }

func (s *ModelSnapshot) Generation() uint64     { return s.gen }
func (s *ModelSnapshot) PublishedAt() time.Time { return s.at }
func (s *ModelSnapshot) Variant() string        { return s.m.Variant.Name }
func (s *ModelSnapshot) Dim() int               { return s.m.Emb.Dim() }
func (s *ModelSnapshot) VocabSize() int         { return s.m.Dict.Len() }
func (s *ModelSnapshot) NumItems() int          { return s.m.Dict.NumItems }
func (s *ModelSnapshot) Index() *knn.Index      { return s.m.ItemIndex() }

func (s *ModelSnapshot) Servable(item int32) bool {
	return item >= 0 && int(item) < s.m.Dict.NumItems
}

func (s *ModelSnapshot) Similar(ctx context.Context, seeds []int32, opts knn.Options) ([][]knn.Result, error) {
	for _, seed := range seeds {
		if !s.Servable(seed) {
			return nil, model.ErrNotServable
		}
	}
	return s.m.Similar(ctx, seeds, opts)
}

func (s *ModelSnapshot) SimilarToVector(ctx context.Context, qv []float32, k int, skip func(int32) bool) ([]knn.Result, error) {
	return s.m.SimilarToVector(ctx, qv, k, skip)
}

func (s *ModelSnapshot) ColdItemVector(item int32) ([]float32, error) {
	if item < 0 || int(item) >= s.m.Dict.NumItems {
		return nil, model.ErrNotServable
	}
	return s.m.ColdStartItemVector(s.m.Dict.ItemSI[item]), nil
}

func (s *ModelSnapshot) ColdItemVectorFromNames(names []string) ([]float32, error) {
	return s.m.ColdStartItemVectorFromNames(names)
}

func (s *ModelSnapshot) RecommendForColdUser(ctx context.Context, types []int32, k int) ([]knn.Result, error) {
	return s.m.RecommendForColdUser(ctx, types, k)
}
