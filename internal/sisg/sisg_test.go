package sisg

import (
	"context"
	"math"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/vecmath"
)

func tinyModel(t *testing.T, v Variant) (*corpus.Dataset, *Model) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	opt := sgns.Defaults()
	opt.Epochs = 2
	opt.Dim = 16
	m, err := Train(ds.Dict, ds.Sessions, v, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ds, m
}

func TestVariantByName(t *testing.T) {
	for _, v := range Variants() {
		got, err := VariantByName(v.Name)
		if err != nil || got != v {
			t.Fatalf("VariantByName(%s) = %+v, %v", v.Name, got, err)
		}
	}
	if _, err := VariantByName("nope"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestEnrichLayout(t *testing.T) {
	ds, err := corpus.Generate(corpus.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := []corpus.Session{{UserType: 3, Items: []int32{5, 9}}}

	// SGNS: items only.
	plain := Enrich(ds.Dict, s, VariantSGNS)
	if len(plain) != 1 || len(plain[0]) != 2 || plain[0][0] != 5 || plain[0][1] != 9 {
		t.Fatalf("plain enrichment: %v", plain)
	}
	// F: every item followed by its 8 SI tokens (Eq. 4 order).
	f := Enrich(ds.Dict, s, VariantSISGF)[0]
	if len(f) != 2*(1+corpus.NumSIColumns) {
		t.Fatalf("F enrichment length %d", len(f))
	}
	if f[0] != 5 || f[9] != 9 {
		t.Fatalf("item positions wrong: %v", f)
	}
	for col := 0; col < corpus.NumSIColumns; col++ {
		if f[1+col] != ds.Dict.ItemSI[5][col] {
			t.Fatalf("SI col %d of item 5 wrong", col)
		}
		if f[10+col] != ds.Dict.ItemSI[9][col] {
			t.Fatalf("SI col %d of item 9 wrong", col)
		}
	}
	// U: single trailing user-type token.
	u := Enrich(ds.Dict, s, VariantSISGU)[0]
	if len(u) != 3 || u[2] != ds.Dict.UserType[3] {
		t.Fatalf("U enrichment: %v", u)
	}
	// F-U-D: SI plus trailing user type.
	fud := Enrich(ds.Dict, s, VariantSISGFUD)[0]
	if len(fud) != 2*(1+corpus.NumSIColumns)+1 {
		t.Fatalf("F-U-D enrichment length %d", len(fud))
	}
	if fud[len(fud)-1] != ds.Dict.UserType[3] {
		t.Fatal("user type not last")
	}
}

func TestTrainOptions(t *testing.T) {
	base := sgns.Defaults()
	base.Window = 5
	plain := TrainOptions(base, VariantSGNS, 5)
	if plain.Window != 5 || plain.Stride != 0 || plain.Directed {
		t.Fatalf("plain options: %+v", plain)
	}
	f := TrainOptions(base, VariantSISGF, 5)
	if f.Window != 5*(1+corpus.NumSIColumns) || f.Stride != 1+corpus.NumSIColumns {
		t.Fatalf("F options: window %d stride %d", f.Window, f.Stride)
	}
	d := TrainOptions(base, VariantSISGFUD, 5)
	if !d.Directed {
		t.Fatal("D options not directed")
	}
}

func TestSimilarItemsSane(t *testing.T) {
	ds, m := tinyModel(t, VariantSISGF)
	// Pick a frequent item; its top similar items should mostly share its
	// top-level category.
	query := int32(0)
	var best uint64
	for i := 0; i < ds.Dict.NumItems; i++ {
		if c := ds.Dict.Count(int32(i)); c > best {
			best, query = c, int32(i)
		}
	}
	recs, err := m.SimilarOne(context.Background(), query, knn.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d recs", len(recs))
	}
	same := 0
	for _, r := range recs {
		if r.ID == query {
			t.Fatal("query returned as its own neighbour")
		}
		if ds.Catalog.Items[r.ID].Top == ds.Catalog.Items[query].Top {
			same++
		}
	}
	if same < 5 {
		t.Fatalf("only %d/10 neighbours share the top category", same)
	}
	// Scores descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("scores not sorted")
		}
	}
}

// The batched path (k+1 then drop-self) must be bit-identical to
// per-query Similar calls, under both scoring rules.
func TestSimilarBatchMatchesSingle(t *testing.T) {
	for _, v := range []Variant{VariantSISGF, VariantSISGFUD} {
		_, m := tinyModel(t, v)
		queries := []int32{0, 3, 7, 7, 11}
		batch, err := m.Similar(context.Background(), queries, knn.Options{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("%s: %d result sets for %d queries", v.Name, len(batch), len(queries))
		}
		for i, q := range queries {
			want, err := m.SimilarOne(context.Background(), q, knn.Options{K: 8})
			if err != nil {
				t.Fatal(err)
			}
			got := batch[i]
			if len(got) != len(want) {
				t.Fatalf("%s: query %d: %d results, want %d", v.Name, q, len(got), len(want))
			}
			for j := range got {
				if got[j].ID != want[j].ID ||
					math.Float32bits(got[j].Score) != math.Float32bits(want[j].Score) {
					t.Fatalf("%s: query %d pos %d: got {%d %x} want {%d %x}", v.Name, q, j,
						got[j].ID, math.Float32bits(got[j].Score),
						want[j].ID, math.Float32bits(want[j].Score))
				}
			}
		}
	}
}

func TestColdStartItemVector(t *testing.T) {
	ds, m := tinyModel(t, VariantSISGF)
	si := ds.Dict.ItemSI[3]
	v := m.ColdStartItemVector(si)
	want := make([]float32, m.Emb.Dim())
	for _, id := range si {
		vecmath.Add(m.Emb.In.Row(id), want)
	}
	for i := range v {
		if v[i] != want[i] {
			t.Fatal("Eq. 6 vector is not the SI sum")
		}
	}
}

func TestColdStartItemVectorFromNames(t *testing.T) {
	ds, m := tinyModel(t, VariantSISGF)
	it := ds.Catalog.Items[3]
	names := []string{
		corpus.SIToken(1, it.Leaf),
		corpus.SIToken(4, it.Brand),
		"not_a_real_token",
	}
	v, err := m.ColdStartItemVectorFromNames(names)
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.Norm(v) == 0 {
		t.Fatal("vector is zero")
	}
	if _, err := m.ColdStartItemVectorFromNames([]string{"nope"}); err == nil {
		t.Fatal("all-unknown names accepted")
	}
}

func TestColdStartUserVector(t *testing.T) {
	ds, m := tinyModel(t, VariantSISGFU)
	types := ds.Pop.TypesMatching(0, -1, -1)
	v, err := m.ColdStartUserVector(types)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != m.Emb.Dim() {
		t.Fatal("wrong dimension")
	}
	if _, err := m.ColdStartUserVector(nil); err == nil {
		t.Fatal("empty types accepted")
	}
}

func TestRecommendForColdUserBothScoringRules(t *testing.T) {
	for _, variant := range []Variant{VariantSISGFU, VariantSISGFUD} {
		ds, m := tinyModel(t, variant)
		types := ds.Pop.TypesMatching(1, -1, 2)
		recs, err := m.RecommendForColdUser(context.Background(), types, 8)
		if err != nil {
			t.Fatalf("%s: %v", variant.Name, err)
		}
		if len(recs) != 8 {
			t.Fatalf("%s: got %d recs", variant.Name, len(recs))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Score > recs[i-1].Score {
				t.Fatalf("%s: scores not sorted", variant.Name)
			}
		}
	}
}

func TestSeedColdItemsCalibration(t *testing.T) {
	ds, err := corpus.Generate(corpus.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	cold := ds.HoldoutItems(0.15)
	train := corpus.FilterSessions(ds.Sessions, cold)
	opt := sgns.Defaults()
	opt.Dim = 16
	m, err := Train(ds.Dict, train, VariantSISGFUD, opt)
	if err != nil {
		t.Fatal(err)
	}
	m.SeedColdItems(cold)

	// Seeded rows must be non-zero and on the same scale as warm rows.
	var warmSum, coldSum float64
	var warmN, coldN int
	isCold := map[int32]bool{}
	for _, id := range cold {
		isCold[id] = true
	}
	for i := 0; i < ds.Dict.NumItems; i++ {
		n := float64(vecmath.Norm(m.Emb.Out.Row(int32(i))))
		if isCold[int32(i)] {
			coldSum += n
			coldN++
		} else {
			warmSum += n
			warmN++
		}
	}
	warmMean := warmSum / float64(warmN)
	coldMean := coldSum / float64(coldN)
	if coldMean == 0 {
		t.Fatal("seeded rows are zero")
	}
	if ratio := coldMean / warmMean; ratio > 3 || ratio < 0.2 {
		t.Fatalf("seeded/warm norm ratio %.2f badly calibrated", ratio)
	}

	// Cold items must now be retrievable and their recs category-coherent.
	id := cold[0]
	recs, err := m.SimilarOne(context.Background(), id, knn.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("cold item has no recommendations")
	}
	same := 0
	for _, r := range recs {
		if ds.Catalog.Items[r.ID].Top == ds.Catalog.Items[id].Top {
			same++
		}
	}
	if same < 3 {
		t.Fatalf("cold item recs incoherent: %d/10 share top category", same)
	}
}

func TestDirectedModelUsesOutputIndex(t *testing.T) {
	ds, m := tinyModel(t, VariantSISGFUD)
	query := int32(1)
	recs, err := m.SimilarOne(context.Background(), query, knn.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no results")
	}
	// Directed scores are raw dot products of in(query) with out(c).
	for _, r := range recs {
		want := vecmath.Dot(m.Emb.In.Row(query), m.Emb.Out.Row(r.ID))
		if math.Abs(float64(want-r.Score)) > 1e-5 {
			t.Fatalf("directed score mismatch: %v vs %v", r.Score, want)
		}
	}
	_ = ds
}

func TestNilDictError(t *testing.T) {
	if _, err := Train(nil, nil, VariantSGNS, sgns.Defaults()); err == nil {
		t.Fatal("nil dict accepted")
	}
}
