package sisg

import (
	"context"
	"fmt"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/knn"
	"sisg/internal/model"
	"sisg/internal/sgns"
	"sisg/internal/vecmath"
	"sisg/internal/vocab"
)

// StreamConfig configures a streaming trainer.
type StreamConfig struct {
	Variant Variant
	// Admit budgets the live vocabulary (items + SI + user types share the
	// one budget, exactly as they share the one semantic space).
	Admit vocab.AdmitConfig
	// Live configures the incremental trainer. Window is in ITEM units
	// (widened by the SI stride like TrainOptions); Capacity is overwritten
	// with Admit.Budget.
	Live sgns.LiveOptions
}

// Streamer is the online SISG trainer: it consumes live sessions, admits
// tokens under the vocabulary budget, Eq. 6-seeds every newly admitted item
// from its side information BEFORE any gradient touches it, trains the live
// matrix incrementally, and cuts immutable snapshots on demand. It is not
// safe for concurrent use — one ingest loop owns it; snapshots hand
// concurrent readers their own copies.
type Streamer struct {
	dict *corpus.Dict
	v    Variant
	adm  *vocab.Admitter
	live *sgns.Live

	gen      uint64
	sessions uint64
	seeded   uint64 // items Eq. 6-seeded at admission

	seq []int32 // scratch row sequence
}

// NewStreamer builds a streaming trainer over the universe dictionary
// (which must cover every item the stream can mention — including items
// that have not launched yet, so their SI is known at first sight).
func NewStreamer(dict *corpus.Dict, cfg StreamConfig) (*Streamer, error) {
	adm, err := vocab.NewAdmitter(cfg.Admit)
	if err != nil {
		return nil, err
	}
	lo := cfg.Live
	lo.Capacity = adm.Budget()
	lo.Directed = cfg.Variant.Directed
	if cfg.Variant.UseSI {
		stride := 1 + corpus.NumSIColumns
		lo.Window *= stride
		lo.Stride = stride
	}
	live, err := sgns.NewLive(lo)
	if err != nil {
		return nil, err
	}
	return &Streamer{dict: dict, v: cfg.Variant, adm: adm, live: live}, nil
}

// Ingest consumes one session: admission (with Eq. 6 seeding of any newly
// admitted item) followed by incremental training on the admitted rows.
func (st *Streamer) Ingest(s corpus.Session) {
	st.Train(st.Admit(s))
}

// Admit runs the admission half of Ingest: every token of the enriched
// session (Eq. 4 order) is observed by the sketch, newly admitted tokens
// get live rows, and a newly admitted ITEM is immediately seeded from its
// admitted SI rows (Eq. 6) — so the item is servable by the next snapshot
// before a single gradient step has touched it. It returns the admitted
// row sequence (valid until the next Admit); Train consumes it.
func (st *Streamer) Admit(s corpus.Session) []int32 {
	seq := st.seq[:0]
	for _, it := range s.Items {
		var siRows [corpus.NumSIColumns]int32
		if st.v.UseSI {
			// Observe SI before the item so a just-admitted item can seed
			// from rows that exist; sequence order below stays Eq. 4.
			for c, si := range st.dict.ItemSI[it] {
				row, ok, _ := st.observe(si)
				siRows[c] = -1
				if ok {
					siRows[c] = row
				}
			}
		}
		itemRow, ok, isNew := st.observe(it)
		if isNew {
			st.seedItem(itemRow, it)
		}
		if ok {
			seq = append(seq, itemRow)
		}
		if st.v.UseSI {
			for _, r := range siRows {
				if r >= 0 {
					seq = append(seq, r)
				}
			}
		}
	}
	if st.v.UseUserType {
		if row, ok, _ := st.observe(st.dict.UserType[s.UserType]); ok {
			seq = append(seq, row)
		}
	}
	st.seq = seq
	st.sessions++
	return seq
}

// Train runs the training half of Ingest on a row sequence from Admit.
func (st *Streamer) Train(seq []int32) {
	st.live.TrainSequence(seq)
}

// observe routes one token through the admitter and mirrors every
// admission into the live matrix, keeping the two row spaces identical.
func (st *Streamer) observe(tok vocab.ID) (int32, bool, bool) {
	row, ok, isNew := st.adm.Observe(tok)
	if isNew {
		if lr := st.live.AddRow(st.dict.KindOf(tok)); lr != row {
			panic(fmt.Sprintf("sisg: admitter row %d != live row %d", row, lr))
		}
	}
	return row, ok, isNew
}

// seedItem overwrites a freshly admitted item's rows with the Eq. 6
// composition of its admitted SI rows — input AND output vectors, like
// SeedColdItems — scaled to the mean norm of existing item rows so the
// seed competes on the same scale inside the retrieval index. With no SI
// (or none admitted yet) the word2vec init stands.
func (st *Streamer) seedItem(row int32, item int32) {
	if !st.v.UseSI {
		return
	}
	m := st.live.Model()
	in := make([]float32, m.Dim())
	out := make([]float32, m.Dim())
	resolved := 0
	for _, si := range st.dict.ItemSI[item] {
		if r, ok := st.adm.Row(si); ok {
			vecmath.Add(m.In.Row(r), in)
			vecmath.Add(m.Out.Row(r), out)
			resolved++
		}
	}
	if resolved == 0 {
		return
	}
	scaleTo(in, st.refNorm(m.In, row))
	scaleTo(out, st.refNorm(m.Out, row))
	st.live.SetRow(row, in, out)
	st.seeded++
}

// refNorm samples the mean L2 norm of existing item rows (excluding the
// row being seeded). Zero when no other item row exists yet — scaleTo
// then keeps the raw SI sum.
func (st *Streamer) refNorm(mat *emb.Matrix, exclude int32) float32 {
	rows := st.live.Rows()
	step := rows/64 + 1
	var sum float64
	n := 0
	for r := 0; r < rows; r += step {
		if int32(r) == exclude || st.live.KindOf(int32(r)) != vocab.KindItem {
			continue
		}
		sum += float64(vecmath.Norm(mat.Row(int32(r))))
		n++
	}
	if n == 0 {
		return 0
	}
	return float32(sum / float64(n))
}

// Sessions returns how many sessions have been ingested.
func (st *Streamer) Sessions() uint64 { return st.sessions }

// Admitted returns the live vocabulary size.
func (st *Streamer) Admitted() int { return st.adm.Len() }

// SeededItems returns how many items were Eq. 6-seeded at admission.
func (st *Streamer) SeededItems() uint64 { return st.seeded }

// Pairs returns how many positive pairs have been trained.
func (st *Streamer) Pairs() uint64 { return st.live.Pairs() }

// Publish cuts the next immutable snapshot: full copies of the live
// matrices' admitted prefix, a compacted item matrix with its retrieval
// index, and the token→row map frozen at this instant. The streamer keeps
// training; the snapshot never changes.
func (st *Streamer) Publish() *StreamSnapshot {
	st.gen++
	m := st.live.Model()
	rows := st.live.Rows()
	dim := m.Dim()

	snap := &StreamSnapshot{
		gen:   st.gen,
		at:    time.Now(),
		v:     st.v,
		dict:  st.dict,
		in:    emb.NewMatrix(rows, dim),
		out:   emb.NewMatrix(rows, dim),
		rowOf: make(map[vocab.ID]int32, rows),
	}
	copy(snap.in.Data(), m.In.Data()[:rows*dim])
	copy(snap.out.Data(), m.Out.Data()[:rows*dim])

	// Admission order IS row order, so walking the admitted tokens yields
	// a deterministic compact item numbering.
	toks := st.adm.Tokens()
	for r := 0; r < rows; r++ {
		snap.rowOf[toks[r]] = int32(r)
	}
	var itemRows []int32
	for r := 0; r < rows; r++ {
		if st.live.KindOf(int32(r)) == vocab.KindItem {
			itemRows = append(itemRows, int32(r))
		}
	}
	snap.items = make([]int32, len(itemRows))
	snap.itemRowOf = make(map[int32]int32, len(itemRows))
	snap.itemIn = emb.NewMatrix(len(itemRows), dim)
	snap.itemOut = emb.NewMatrix(len(itemRows), dim)
	for c, r := range itemRows {
		it := toks[r] // item token id == catalog item id
		snap.items[c] = it
		snap.itemRowOf[it] = int32(c)
		copy(snap.itemIn.Row(int32(c)), snap.in.Row(r))
		copy(snap.itemOut.Row(int32(c)), snap.out.Row(r))
	}
	if st.v.Directed {
		snap.index = knn.NewIndex(snap.itemOut, len(itemRows), false)
		snap.userIndex = knn.NewIndex(snap.itemIn, len(itemRows), false)
	} else {
		snap.index = knn.NewIndex(snap.itemIn, len(itemRows), true)
	}
	return snap
}

// StreamSnapshot is one published generation of a streaming model: the
// admitted vocabulary's embeddings (for SI composition and user-type
// queries), a compacted item matrix with the variant's retrieval index,
// and the universe dictionary for name resolution. Immutable; implements
// model.Snapshot.
type StreamSnapshot struct {
	gen  uint64
	at   time.Time
	v    Variant
	dict *corpus.Dict

	in, out *emb.Matrix        // admitted-vocab copies, live-row order
	rowOf   map[vocab.ID]int32 // universe token -> live row

	items     []int32         // compact item row -> catalog item id
	itemRowOf map[int32]int32 // catalog item id -> compact row
	itemIn    *emb.Matrix     // compacted item input vectors
	itemOut   *emb.Matrix     // compacted item output vectors
	index     *knn.Index      // variant-scored retrieval index
	userIndex *knn.Index      // directed cold-user index (in-vectors, raw dot)
}

var _ model.Snapshot = (*StreamSnapshot)(nil)

func (s *StreamSnapshot) Generation() uint64     { return s.gen }
func (s *StreamSnapshot) PublishedAt() time.Time { return s.at }
func (s *StreamSnapshot) Variant() string        { return s.v.Name }
func (s *StreamSnapshot) Dim() int               { return s.in.Dim }
func (s *StreamSnapshot) VocabSize() int         { return s.in.Rows() }
func (s *StreamSnapshot) NumItems() int          { return len(s.items) }
func (s *StreamSnapshot) Index() *knn.Index      { return s.index }

func (s *StreamSnapshot) Servable(item int32) bool {
	_, ok := s.itemRowOf[item]
	return ok
}

// translate rewrites compact-row result ids into catalog item ids, in
// place (result slices are fresh per query).
func (s *StreamSnapshot) translate(rs []knn.Result) []knn.Result {
	for i := range rs {
		rs[i].ID = s.items[rs[i].ID]
	}
	return rs
}

func (s *StreamSnapshot) Similar(ctx context.Context, seeds []int32, opts knn.Options) ([][]knn.Result, error) {
	opts.Normalize = !s.v.Directed
	if len(seeds) == 1 {
		row, ok := s.itemRowOf[seeds[0]]
		if !ok {
			return nil, model.ErrNotServable
		}
		opts.Skip = func(id int32) bool { return id == row }
		rs, err := s.index.Query(ctx, s.itemIn.Row(row), opts)
		if err != nil {
			return nil, err
		}
		return [][]knn.Result{s.translate(rs)}, nil
	}
	k := opts.K
	opts.K = k + 1
	opts.Skip = nil
	qvs := make([][]float32, len(seeds))
	for i, seed := range seeds {
		row, ok := s.itemRowOf[seed]
		if !ok {
			return nil, model.ErrNotServable
		}
		qvs[i] = s.itemIn.Row(row)
	}
	batch, err := s.index.QueryBatch(ctx, qvs, opts)
	if err != nil {
		return nil, err
	}
	for i, rs := range batch {
		batch[i] = dropSelf(s.translate(rs), seeds[i], k)
	}
	return batch, nil
}

func (s *StreamSnapshot) SimilarToVector(ctx context.Context, qv []float32, k int, skip func(int32) bool) ([]knn.Result, error) {
	opts := knn.Options{K: k, Normalize: !s.v.Directed}
	if skip != nil {
		opts.Skip = func(row int32) bool { return skip(s.items[row]) }
	}
	rs, err := s.index.Query(ctx, qv, opts)
	if err != nil {
		return nil, err
	}
	return s.translate(rs), nil
}

// ColdItemVector composes Eq. 6 for a catalog item over its ADMITTED SI
// rows. An item whose side information has not earned a single row yet
// cannot be composed — the stream simply has not seen its world.
func (s *StreamSnapshot) ColdItemVector(item int32) ([]float32, error) {
	if item < 0 || int(item) >= s.dict.NumItems {
		return nil, model.ErrNotServable
	}
	v := make([]float32, s.in.Dim)
	resolved := 0
	for _, si := range s.dict.ItemSI[item] {
		if row, ok := s.rowOf[si]; ok {
			vecmath.Add(s.in.Row(row), v)
			resolved++
		}
	}
	if resolved == 0 {
		return nil, fmt.Errorf("sisg: no admitted SI for item %d", item)
	}
	return v, nil
}

func (s *StreamSnapshot) ColdItemVectorFromNames(names []string) ([]float32, error) {
	v := make([]float32, s.in.Dim)
	resolved := 0
	for _, n := range names {
		id, ok := s.dict.Lookup(n)
		if !ok {
			continue
		}
		if row, ok := s.rowOf[id]; ok {
			vecmath.Add(s.in.Row(row), v)
			resolved++
		}
	}
	if resolved == 0 {
		return nil, fmt.Errorf("sisg: no SI names resolved out of %d", len(names))
	}
	return v, nil
}

func (s *StreamSnapshot) RecommendForColdUser(ctx context.Context, types []int32, k int) ([]knn.Result, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("sisg: no matching user types")
	}
	src := s.in
	if s.v.Directed {
		src = s.out // §IV-C1 directed: UT output vectors carry the signal
	}
	v := make([]float32, s.in.Dim)
	resolved := 0
	for _, t := range types {
		if row, ok := s.rowOf[s.dict.UserType[t]]; ok {
			vecmath.Add(src.Row(row), v)
			resolved++
		}
	}
	if resolved == 0 {
		return nil, fmt.Errorf("sisg: no admitted user types among %d matches", len(types))
	}
	vecmath.Scale(1/float32(resolved), v)
	var rs []knn.Result
	var err error
	if s.v.Directed {
		rs, err = s.userIndex.Query(ctx, v, knn.Options{K: k})
	} else {
		rs, err = s.index.Query(ctx, v, knn.Options{K: k, Normalize: true})
	}
	if err != nil {
		return nil, err
	}
	return s.translate(rs), nil
}
