// Package sisg is the core of this repository: the Side-Information-
// enhanced Skip-Gram framework of the paper (§II).
//
// The framework's central idea is disarmingly simple: instead of changing
// the model, change the *corpus*. A user session (v1 … vp) is enriched by
// injecting each item's side-information tokens right after the item and
// appending the user-type token (Eq. 4):
//
//	v1, SI¹_1 … SI¹_n, v2, SI²_1 … , …, vp, SIᵖ_1 …, UT_u
//
// and the result is fed to any standard SGNS implementation. Items, SI
// values and user types end up in one joint semantic space, which is what
// makes the cold-start recipes (Eq. 6 for items; user-type averaging for
// users) possible.
//
// The package defines the paper's six model variants (Table III), performs
// the enrichment, delegates training to internal/sgns, and exposes the
// serving-side operations: similar-item retrieval with the correct scoring
// rule per variant, and both cold-start inference paths.
package sisg

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/vecmath"
	"sisg/internal/vocab"
)

// Variant selects which SISG components are active (§IV-A's model list).
type Variant struct {
	Name        string
	UseSI       bool // "F": inject item side information
	UseUserType bool // "U": append the user-type token
	Directed    bool // "D": right-window sampling + in·out similarity
}

// The six variants evaluated in Table III.
var (
	VariantSGNS    = Variant{Name: "SGNS"}
	VariantSISGF   = Variant{Name: "SISG-F", UseSI: true}
	VariantSISGU   = Variant{Name: "SISG-U", UseUserType: true}
	VariantSISGFU  = Variant{Name: "SISG-F-U", UseSI: true, UseUserType: true}
	VariantSISGFUD = Variant{Name: "SISG-F-U-D", UseSI: true, UseUserType: true, Directed: true}
)

// Variants returns the SISG variants of Table III in paper order (EGES is a
// separate implementation in internal/eges).
func Variants() []Variant {
	return []Variant{VariantSGNS, VariantSISGF, VariantSISGU, VariantSISGFU, VariantSISGFUD}
}

// VariantByName resolves a name like "SISG-F-U-D" (case-sensitive).
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("sisg: unknown variant %q", name)
}

// Enrich converts sessions into token-ID training sequences per Eq. 4,
// honouring the variant's flags. With neither flag set the output is the
// plain item sequence (classic SGNS).
func Enrich(d *corpus.Dict, sessions []corpus.Session, v Variant) [][]int32 {
	out := make([][]int32, len(sessions))
	perItem := 1
	if v.UseSI {
		perItem += corpus.NumSIColumns
	}
	for i := range sessions {
		s := &sessions[i]
		n := len(s.Items) * perItem
		if v.UseUserType {
			n++
		}
		seq := make([]int32, 0, n)
		for _, it := range s.Items {
			seq = append(seq, it)
			if v.UseSI {
				si := d.ItemSI[it]
				seq = append(seq, si[:]...)
			}
		}
		if v.UseUserType {
			seq = append(seq, d.UserType[s.UserType])
		}
		out[i] = seq
	}
	return out
}

// Model is a trained SISG model bound to its dataset dictionary.
type Model struct {
	Variant Variant
	Dict    *corpus.Dict
	Emb     *emb.Model
	Stats   sgns.Stats

	itemIndex *knn.Index // lazily built retrieval index over item rows
	userIndex *knn.Index // lazily built user→item index (directed models)
}

// TrainOptions adapts sgns.Options for a variant: SI-enhanced sequences are
// (1+NumSIColumns)× longer, so the window is widened proportionally — the
// paper: "we can adjust the window size, such that all possible pairs per
// sequence are sampled". itemWindow is the window measured in *items*.
func TrainOptions(base sgns.Options, v Variant, itemWindow int) sgns.Options {
	opt := base
	opt.Directed = v.Directed
	w := itemWindow
	if v.UseSI {
		stride := 1 + corpus.NumSIColumns
		w *= stride
		opt.Stride = stride
	}
	opt.Window = w
	return opt
}

// Train enriches the sessions for the variant and trains a model.
// base.Window is interpreted as the window in item units (see TrainOptions).
func Train(d *corpus.Dict, sessions []corpus.Session, v Variant, base sgns.Options) (*Model, error) {
	if d == nil {
		return nil, errors.New("sisg: nil dictionary")
	}
	seqs := Enrich(d, sessions, v)
	opt := TrainOptions(base, v, base.Window)
	m, st, err := sgns.Train(d.Dict, seqs, opt)
	if err != nil {
		return nil, fmt.Errorf("sisg: training %s: %w", v.Name, err)
	}
	return &Model{Variant: v, Dict: d, Emb: m, Stats: st}, nil
}

// ItemIndex returns (building on first use) the retrieval index with the
// variant's scoring rule: directed models search raw dot products against
// OUTPUT vectors; symmetric models search cosine against INPUT vectors.
func (m *Model) ItemIndex() *knn.Index {
	if m.itemIndex == nil {
		if m.Variant.Directed {
			m.itemIndex = knn.NewIndex(m.Emb.Out, m.Dict.NumItems, false)
		} else {
			m.itemIndex = knn.NewIndex(m.Emb.In, m.Dict.NumItems, true)
		}
	}
	return m.itemIndex
}

// QueryVector returns the vector to search with for item `query` under the
// variant's scoring rule. The slice must be treated as read-only.
func (m *Model) QueryVector(query int32) []float32 {
	return m.Emb.In.Row(query)
}

// Similar is the unified matching-stage read path: the top-opts.K most
// similar items per seed, each seed's own id excluded — "a candidate set of
// similar items is obtained for each item that users have interacted with".
// One seed runs a single scan with a skip-self predicate; several seeds
// ride the engine's batched scan (each shard's rows streamed once for the
// whole batch), requesting k+1 neighbours and dropping each seed's own id
// afterwards, which is bit-identical to per-seed calls. opts.Index, NProbe
// and Quantized select the scan strategy (flat brute force or IVF ANN);
// Normalize and Skip are owned by the model so the variant's scoring rule
// and self-exclusion cannot be overridden. The context cancels the scan at
// tile boundaries; a cancelled call returns an error wrapping
// knn.ErrCanceled. Cancellation fails the whole batch.
func (m *Model) Similar(ctx context.Context, seeds []int32, opts knn.Options) ([][]knn.Result, error) {
	opts.Normalize = !m.Variant.Directed
	if len(seeds) == 1 {
		seed := seeds[0]
		opts.Skip = func(id int32) bool { return id == seed }
		rs, err := m.ItemIndex().Query(ctx, m.QueryVector(seed), opts)
		if err != nil {
			return nil, err
		}
		return [][]knn.Result{rs}, nil
	}
	k := opts.K
	opts.K = k + 1
	opts.Skip = nil
	qvs := make([][]float32, len(seeds))
	for i, q := range seeds {
		qvs[i] = m.QueryVector(q)
	}
	batch, err := m.ItemIndex().QueryBatch(ctx, qvs, opts)
	if err != nil {
		return nil, err
	}
	for i, rs := range batch {
		batch[i] = dropSelf(rs, seeds[i], k)
	}
	return batch, nil
}

// SimilarOne is Similar for exactly one seed — the thin delegation the HTTP
// handlers and other single-seed callers use.
func (m *Model) SimilarOne(ctx context.Context, seed int32, opts knn.Options) ([]knn.Result, error) {
	batch, err := m.Similar(ctx, []int32{seed}, opts)
	if err != nil {
		return nil, err
	}
	return batch[0], nil
}

// dropSelf removes self from a k+1-sized candidate list and trims to k.
func dropSelf(rs []knn.Result, self int32, k int) []knn.Result {
	out := rs[:0:len(rs)]
	for _, r := range rs {
		if r.ID != self {
			out = append(out, r)
		}
	}
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// SimilarToVector retrieves the top-k items for an arbitrary query vector
// (used by both cold-start paths). Directed models still search output
// vectors; symmetric models use cosine.
func (m *Model) SimilarToVector(ctx context.Context, qv []float32, k int, skip func(int32) bool) ([]knn.Result, error) {
	return m.ItemIndex().Query(ctx, qv, knn.Options{
		K:         k,
		Normalize: !m.Variant.Directed,
		Skip:      skip,
	})
}

// ColdStartItemVector infers an embedding for a new item from its side
// information only, per Eq. 6: v = Σ_k SI_k(v) over input vectors.
func (m *Model) ColdStartItemVector(si [corpus.NumSIColumns]vocab.ID) []float32 {
	v := make([]float32, m.Emb.Dim())
	for _, id := range si {
		if id >= 0 {
			vecmath.Add(m.Emb.In.Row(id), v)
		}
	}
	return v
}

// SeedColdItems overwrites the embedding rows of never-trained items with
// their SI-derived vectors, making them both *queryable* and *retrievable*:
// the input row becomes the Eq. 6 sum of SI input vectors, and the output
// row the matching aggregate of SI OUTPUT vectors (which exist in SISG —
// the expressiveness edge over EGES that §IV-A highlights). Aggregates are
// means rather than raw sums so seeded rows live on the same scale as
// trained rows inside the shared retrieval index. Call before ItemIndex.
func (m *Model) SeedColdItems(ids []int32) {
	if m.itemIndex != nil {
		// The index may hold a normalized copy; force a rebuild.
		m.itemIndex = nil
	}
	cold := make(map[int32]bool, len(ids))
	for _, id := range ids {
		cold[id] = true
	}
	// Calibrate seeded rows to the scale of trained rows: SI vectors are
	// trained on orders of magnitude more pairs than any single item, so a
	// raw SI aggregate would outshine every warm item in a dot-product
	// index. Median warm norms are the reference.
	inNorm := medianNorm(m.Emb.In, m.Dict.NumItems, cold)
	outNorm := medianNorm(m.Emb.Out, m.Dict.NumItems, cold)
	for _, id := range ids {
		si := m.Dict.ItemSI[id]
		in := m.Emb.In.Row(id)
		out := m.Emb.Out.Row(id)
		vecmath.Zero(in)
		vecmath.Zero(out)
		for _, s := range si {
			vecmath.Add(m.Emb.In.Row(s), in)
			vecmath.Add(m.Emb.Out.Row(s), out)
		}
		scaleTo(in, inNorm)
		scaleTo(out, outNorm)
	}
}

// medianNorm returns the median L2 norm of the first rows of mat, skipping
// the excluded set (sampled for large matrices).
func medianNorm(mat *emb.Matrix, rows int, exclude map[int32]bool) float32 {
	var norms []float32
	step := 1
	if rows > 20000 {
		step = rows / 20000
	}
	for i := 0; i < rows; i += step {
		if exclude[int32(i)] {
			continue
		}
		norms = append(norms, vecmath.Norm(mat.Row(int32(i))))
	}
	if len(norms) == 0 {
		return 1
	}
	sort.Slice(norms, func(a, b int) bool { return norms[a] < norms[b] })
	return norms[len(norms)/2]
}

func scaleTo(v []float32, norm float32) {
	n := vecmath.Norm(v)
	if n > 0 && norm > 0 {
		vecmath.Scale(norm/n, v)
	}
}

// ColdStartItemVectorFromNames resolves SI token names through the
// dictionary and applies Eq. 6. Unknown names are skipped; if none resolve,
// an error is returned.
func (m *Model) ColdStartItemVectorFromNames(names []string) ([]float32, error) {
	v := make([]float32, m.Emb.Dim())
	resolved := 0
	for _, n := range names {
		if id, ok := m.Dict.Lookup(n); ok {
			vecmath.Add(m.Emb.In.Row(id), v)
			resolved++
		}
	}
	if resolved == 0 {
		return nil, fmt.Errorf("sisg: no SI names resolved out of %d", len(names))
	}
	return v, nil
}

// ColdStartUserVector implements §IV-C1: the average of the input vectors
// of every user type matching the given constraints ("we can take the
// average of all user type vectors which belong to a user type containing
// the 'female' and 'age 21-25' features"). types holds user-type indices
// into Dict.UserType.
func (m *Model) ColdStartUserVector(types []int32) ([]float32, error) {
	if len(types) == 0 {
		return nil, errors.New("sisg: no matching user types")
	}
	v := make([]float32, m.Emb.Dim())
	for _, t := range types {
		vecmath.Add(m.Emb.In.Row(m.Dict.UserType[t]), v)
	}
	vecmath.Scale(1/float32(len(types)), v)
	return v, nil
}

// UserTypeVector returns the input vector of a user type (read-only).
func (m *Model) UserTypeVector(t int32) []float32 {
	return m.Emb.In.Row(m.Dict.UserType[t])
}

// userQueryVector returns the averaged user-type vector used for cold-start
// user retrieval. Symmetric models average INPUT vectors (§IV-C1 verbatim).
// Directed models must average OUTPUT vectors: with right-window sampling
// the sequence-final user-type token never has a context, so its input
// vector is untrained; its output vector, however, is trained by every
// (item → UT) pair — "items clicked by this audience" — which is exactly
// the signal a cold-start recommendation needs.
func (m *Model) userQueryVector(types []int32) ([]float32, error) {
	if len(types) == 0 {
		return nil, errors.New("sisg: no matching user types")
	}
	v := make([]float32, m.Emb.Dim())
	src := m.Emb.In
	if m.Variant.Directed {
		src = m.Emb.Out
	}
	for _, t := range types {
		vecmath.Add(src.Row(m.Dict.UserType[t]), v)
	}
	vecmath.Scale(1/float32(len(types)), v)
	return v, nil
}

// RecommendForColdUser implements §IV-C1 end-to-end: average the vectors of
// all user types matching the user's known demographics, then retrieve the
// top-k items. For directed models the query is an averaged user-type
// OUTPUT vector scored against item INPUT vectors (in(item)·out(UT) is the
// trained "this audience clicks this item" direction); symmetric models use
// cosine between input vectors throughout.
func (m *Model) RecommendForColdUser(ctx context.Context, types []int32, k int) ([]knn.Result, error) {
	qv, err := m.userQueryVector(types)
	if err != nil {
		return nil, err
	}
	if m.Variant.Directed {
		if m.userIndex == nil {
			m.userIndex = knn.NewIndex(m.Emb.In, m.Dict.NumItems, false)
		}
		return m.userIndex.Query(ctx, qv, knn.Options{K: k})
	}
	return m.ItemIndex().Query(ctx, qv, knn.Options{K: k, Normalize: true})
}
