// Package graph provides the directed weighted item graph built from user
// behaviour sequences, random walks over it (the EGES corpus generator),
// and the paper's Heuristic Balanced Graph Partitioning (HBGP, §III-B) that
// assigns items to distributed workers.
package graph

import (
	"errors"
	"sort"

	"sisg/internal/corpus"
	"sisg/internal/rng"
)

// Edge is one weighted directed edge.
type Edge struct {
	To     int32
	Weight float64
}

// Graph is a directed weighted graph over item IDs [0, N). It is built
// incrementally and finalized into CSR form for fast weighted walks.
type Graph struct {
	n     int
	adj   []map[int32]float64 // building representation
	final bool

	// CSR representation (after Finalize).
	offsets []int32
	edges   []Edge
	cumul   []float64 // per-node cumulative weights for walk sampling
	outW    []float64 // total out-weight per node
}

// New returns an empty graph over n nodes.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([]map[int32]float64, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge accumulates weight onto the directed edge a→b. Self-loops are
// ignored. Panics if called after Finalize.
func (g *Graph) AddEdge(a, b int32, w float64) {
	if g.final {
		panic("graph: AddEdge after Finalize")
	}
	if a == b {
		return
	}
	m := g.adj[a]
	if m == nil {
		m = make(map[int32]float64, 4)
		g.adj[a] = m
	}
	m[b] += w
}

// FromSessions builds the item graph the way EGES does (and HBGP needs):
// each adjacent click pair (v_i, v_{i+1}) adds weight 1 to the directed
// edge v_i→v_{i+1}. The "weight of each edge is the total transition
// frequency of two nodes in all behavior sequences" (§III-B step 1).
func FromSessions(sessions []corpus.Session, numItems int) *Graph {
	g := New(numItems)
	for i := range sessions {
		items := sessions[i].Items
		for j := 0; j+1 < len(items); j++ {
			g.AddEdge(items[j], items[j+1], 1)
		}
	}
	g.Finalize()
	return g
}

// Finalize freezes the graph into CSR form. Edges are sorted by target for
// determinism. Calling it twice is a no-op.
func (g *Graph) Finalize() {
	if g.final {
		return
	}
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	g.offsets = make([]int32, g.n+1)
	g.edges = make([]Edge, 0, total)
	g.cumul = make([]float64, 0, total)
	g.outW = make([]float64, g.n)
	for v := 0; v < g.n; v++ {
		g.offsets[v] = int32(len(g.edges))
		m := g.adj[v]
		if len(m) > 0 {
			keys := make([]int32, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			sum := 0.0
			for _, k := range keys {
				sum += m[k]
				g.edges = append(g.edges, Edge{To: k, Weight: m[k]})
				g.cumul = append(g.cumul, sum)
			}
			g.outW[v] = sum
		}
		g.adj[v] = nil
	}
	g.offsets[g.n] = int32(len(g.edges))
	g.adj = nil
	g.final = true
}

// Out returns the outgoing edges of v (finalized graphs only).
func (g *Graph) Out(v int32) []Edge {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// OutWeight returns the total outgoing weight of v.
func (g *Graph) OutWeight(v int32) float64 { return g.outW[v] }

// NumEdges returns the number of distinct directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Weight returns the weight of edge a→b, or 0.
func (g *Graph) Weight(a, b int32) float64 {
	lo, hi := int(g.offsets[a]), int(g.offsets[a+1])
	i := sort.Search(hi-lo, func(i int) bool { return g.edges[lo+i].To >= b })
	if i < hi-lo && g.edges[lo+i].To == b {
		return g.edges[lo+i].Weight
	}
	return 0
}

// Step samples a weighted random out-neighbour of v, or -1 if v has none.
func (g *Graph) Step(v int32, r *rng.RNG) int32 {
	lo, hi := int(g.offsets[v]), int(g.offsets[v+1])
	if lo == hi {
		return -1
	}
	u := r.Float64() * g.cumul[hi-1]
	i := sort.Search(hi-lo, func(i int) bool { return g.cumul[lo+i] >= u })
	return g.edges[lo+i].To
}

// Walk generates a weighted random walk of at most length nodes starting at
// start, stopping early at a sink. The walk always contains at least the
// start node.
func (g *Graph) Walk(start int32, length int, r *rng.RNG) []int32 {
	walk := make([]int32, 1, length)
	walk[0] = start
	cur := start
	for len(walk) < length {
		next := g.Step(cur, r)
		if next < 0 {
			break
		}
		walk = append(walk, next)
		cur = next
	}
	return walk
}

// WalkCorpus generates walksPerNode walks from every node with out-degree
// greater than zero — the DeepWalk-style corpus EGES trains on.
func (g *Graph) WalkCorpus(walksPerNode, walkLength int, seed uint64) [][]int32 {
	if !g.final {
		g.Finalize()
	}
	r := rng.New(seed)
	var out [][]int32
	for rep := 0; rep < walksPerNode; rep++ {
		for v := int32(0); v < int32(g.n); v++ {
			if g.outW[v] == 0 {
				continue
			}
			out = append(out, g.Walk(v, walkLength, r))
		}
	}
	return out
}

// ErrNotFinalized is returned by operations that need CSR form.
var ErrNotFinalized = errors.New("graph: not finalized")
