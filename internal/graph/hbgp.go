package graph

import (
	"errors"
	"fmt"
	"sort"

	"sisg/internal/rng"
)

// Partition assigns items to workers.
type Partition struct {
	// Of maps item ID -> worker index.
	Of []int32
	// LeafOf maps leaf category -> worker index (HBGP only; nil for the
	// baseline partitioners).
	LeafOf []int32
	// W is the number of workers.
	W int
	// Loads is the summed item frequency per worker.
	Loads []float64
	// BetaUsed is the imbalance parameter the HBGP relaxation loop ended
	// with (§III-B step 3e); equals the input beta unless relaxed.
	BetaUsed float64
}

// Imbalance returns max(load)/mean(load) — 1.0 is perfectly balanced.
func (p *Partition) Imbalance() float64 {
	if len(p.Loads) == 0 {
		return 0
	}
	total, max := 0.0, 0.0
	for _, l := range p.Loads {
		total += l
		if l > max {
			max = l
		}
	}
	mean := total / float64(len(p.Loads))
	if mean == 0 {
		return 0
	}
	return max / mean
}

// CutFraction returns the fraction of the graph's transition weight that
// crosses partitions — exactly the probability that a sampled training pair
// needs a remote TNS call (§III-B's communication-cost objective).
func (p *Partition) CutFraction(g *Graph) float64 {
	var cut, total float64
	for v := int32(0); v < int32(g.N()); v++ {
		for _, e := range g.Out(v) {
			total += e.Weight
			if p.Of[v] != p.Of[e.To] {
				cut += e.Weight
			}
		}
	}
	if total == 0 {
		return 0
	}
	return cut / total
}

// HBGP runs the paper's Heuristic Balanced Graph Partitioning:
//
//  1. reduce the item graph to a leaf-category graph whose edge weights sum
//     the item transition frequencies between the two categories,
//  2. iteratively merge the pair of category groups joined by the heaviest
//     (bidirectional) edge, subject to the balance constraint
//     |C1|+|C2| ≤ β·|V|/w where |V| is the total item frequency,
//  3. if no edge satisfies the constraint, relax β and repeat,
//  4. stop at w groups; each group becomes one worker's partition.
//
// leafOf maps item -> leaf category; itemFreq is each item's occurrence
// count in the training sequences.
func HBGP(g *Graph, leafOf []int32, numLeaves int, itemFreq []float64, w int, beta float64) (*Partition, error) {
	if w <= 0 {
		return nil, errors.New("graph: HBGP needs w > 0")
	}
	if beta < 1 {
		return nil, errors.New("graph: HBGP needs beta >= 1")
	}
	if len(leafOf) != g.N() || len(itemFreq) != g.N() {
		return nil, fmt.Errorf("graph: HBGP input lengths mismatch (items=%d leafOf=%d freq=%d)",
			g.N(), len(leafOf), len(itemFreq))
	}
	if numLeaves < w {
		return nil, fmt.Errorf("graph: HBGP needs at least w=%d leaf categories, have %d", w, numLeaves)
	}

	// Step 1-2: leaf-category graph. groupEdge[a][b] holds the summed
	// bidirectional weight between groups a < b.
	size := make([]float64, numLeaves)
	var totalFreq float64
	for it := 0; it < g.N(); it++ {
		size[leafOf[it]] += itemFreq[it]
		totalFreq += itemFreq[it]
	}
	// nbr holds the bidirectional (summed both directions, per §III-B 3a)
	// adjacency between group representatives. It is kept canonical: keys
	// are always current representatives, and weights of parallel edges
	// combine on merge.
	nbr := make([]map[int32]float64, numLeaves)
	addNbr := func(a, b int32, w float64) {
		if a == b {
			return
		}
		if nbr[a] == nil {
			nbr[a] = make(map[int32]float64, 8)
		}
		nbr[a][b] += w
		if nbr[b] == nil {
			nbr[b] = make(map[int32]float64, 8)
		}
		nbr[b][a] += w
	}
	for v := int32(0); v < int32(g.N()); v++ {
		la := leafOf[v]
		for _, e := range g.Out(v) {
			addNbr(la, leafOf[e.To], e.Weight)
		}
	}

	// Union-find over leaf groups.
	parent := make([]int32, numLeaves)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	groups := numLeaves

	// Step 3: merge until w groups remain, relaxing beta when stuck.
	capacity := func(b float64) float64 { return b * totalFreq / float64(w) }
	b := beta
	for groups > w {
		// Find the heaviest mergeable edge (ties: lower indices, for
		// determinism).
		var bestA, bestB int32 = -1, -1
		bestW := 0.0
		for a := int32(0); a < int32(numLeaves); a++ {
			if parent[a] != a || nbr[a] == nil {
				continue
			}
			for bb, wgt := range nbr[a] {
				if bb < a {
					continue // visit each undirected edge once, from its low end
				}
				if wgt < bestW || (wgt == bestW && bestA >= 0 && !(a < bestA || (a == bestA && bb < bestB))) {
					continue
				}
				if size[a]+size[bb] > capacity(b) {
					continue
				}
				bestA, bestB, bestW = a, bb, wgt
			}
		}
		if bestA < 0 {
			// Step 3e: no mergeable edge. Relax beta; if beta is already
			// huge, merge the two smallest groups (disconnected graph).
			if b < 64*beta {
				b *= 1.25
				continue
			}
			bestA, bestB = twoSmallest(size, parent, numLeaves, find)
			if bestA < 0 {
				break
			}
		}
		// Merge bestB into bestA, re-homing bestB's edges canonically.
		parent[bestB] = bestA
		size[bestA] += size[bestB]
		size[bestB] = 0
		for to, w := range nbr[bestB] {
			delete(nbr[to], bestB)
			if to == bestA {
				continue
			}
			addNbr(bestA, to, w)
		}
		nbr[bestB] = nil
		groups--
	}

	// Assign worker indices to representatives (by descending load for
	// determinism), then items.
	repWorker := make(map[int32]int32, w)
	reps := make([]int32, 0, groups)
	seen := make(map[int32]bool, groups)
	for l := int32(0); l < int32(numLeaves); l++ {
		r := find(l)
		if !seen[r] {
			seen[r] = true
			reps = append(reps, r)
		}
	}
	for i, r := range reps {
		repWorker[r] = int32(i % w)
	}

	p := &Partition{
		Of:       make([]int32, g.N()),
		LeafOf:   make([]int32, numLeaves),
		W:        w,
		Loads:    make([]float64, w),
		BetaUsed: b,
	}
	for l := int32(0); l < int32(numLeaves); l++ {
		p.LeafOf[l] = repWorker[find(l)]
	}
	for it := 0; it < g.N(); it++ {
		wk := p.LeafOf[leafOf[it]]
		p.Of[it] = wk
		p.Loads[wk] += itemFreq[it]
	}
	return p, nil
}

func twoSmallest(size []float64, parent []int32, n int, find func(int32) int32) (int32, int32) {
	var a, b int32 = -1, -1
	for i := int32(0); i < int32(n); i++ {
		if find(i) != i {
			continue
		}
		switch {
		case a < 0 || size[i] < size[a]:
			b = a
			a = i
		case b < 0 || size[i] < size[b]:
			b = i
		}
	}
	if b < 0 {
		return -1, -1
	}
	return a, b
}

// RandomPartition assigns items to workers uniformly at random — the
// baseline HBGP is compared against in the ablation benches.
func RandomPartition(numItems int, itemFreq []float64, w int, seed uint64) *Partition {
	r := rng.New(seed)
	p := &Partition{Of: make([]int32, numItems), W: w, Loads: make([]float64, w), BetaUsed: 0}
	for i := 0; i < numItems; i++ {
		wk := int32(r.Intn(w))
		p.Of[i] = wk
		p.Loads[wk] += itemFreq[i]
	}
	return p
}

// GreedyLoadPartition assigns items to the currently lightest worker in
// descending frequency order: perfectly balanced but locality-blind — the
// other ablation point.
func GreedyLoadPartition(numItems int, itemFreq []float64, w int) *Partition {
	p := &Partition{Of: make([]int32, numItems), W: w, Loads: make([]float64, w)}
	order := make([]int32, numItems)
	for i := range order {
		order[i] = int32(i)
	}
	// Sort by descending frequency (ties by ID for determinism).
	sort.Slice(order, func(a, b int) bool {
		fa, fb := itemFreq[order[a]], itemFreq[order[b]]
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})
	for _, it := range order {
		wk := 0
		for j := 1; j < w; j++ {
			if p.Loads[j] < p.Loads[wk] {
				wk = j
			}
		}
		p.Of[it] = int32(wk)
		p.Loads[wk] += itemFreq[it]
	}
	return p
}
