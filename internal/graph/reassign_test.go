package graph

import "testing"

func reassignFixture() *Partition {
	return &Partition{
		Of:       []int32{0, 1, 2, 1, 0, 2},
		LeafOf:   []int32{0, 1, 2},
		W:        3,
		Loads:    []float64{10, 20, 30},
		BetaUsed: 1.2,
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := reassignFixture()
	q := p.Clone()
	q.Of[0] = 2
	q.Loads[0] = 99
	q.LeafOf[0] = 2
	if p.Of[0] != 0 || p.Loads[0] != 10 || p.LeafOf[0] != 0 {
		t.Fatalf("Clone aliases the original: %+v", p)
	}
	if q.W != p.W || q.BetaUsed != p.BetaUsed {
		t.Fatalf("Clone dropped scalar fields: %+v", q)
	}
	if (*Partition)(nil).Clone() != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestReassignMovesItemsAndLoad(t *testing.T) {
	p := reassignFixture()
	var before float64
	for _, l := range p.Loads {
		before += l
	}
	if err := p.Reassign(1, 0); err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Of {
		if w == 1 {
			t.Fatalf("item %d still assigned to reassigned worker 1", i)
		}
	}
	for i, w := range p.LeafOf {
		if w == 1 {
			t.Fatalf("leaf %d still assigned to reassigned worker 1", i)
		}
	}
	if p.Loads[1] != 0 || p.Loads[0] != 30 {
		t.Fatalf("load not merged: %v", p.Loads)
	}
	var after float64
	for _, l := range p.Loads {
		after += l
	}
	if after != before {
		t.Fatalf("total load changed: %v -> %v", before, after)
	}
	// Imbalance must still be computable and >= 1 on a non-empty map.
	if im := p.Imbalance(); im < 1 {
		t.Fatalf("Imbalance after Reassign = %v", im)
	}
}

func TestReassignRejectsBadArgs(t *testing.T) {
	for _, tc := range [][2]int{{-1, 0}, {0, -1}, {3, 0}, {0, 3}, {1, 1}} {
		p := reassignFixture()
		if err := p.Reassign(tc[0], tc[1]); err == nil {
			t.Errorf("Reassign(%d, %d) accepted", tc[0], tc[1])
		}
	}
}
