package graph

import "fmt"

// Clone returns a deep copy of the partition. The distributed engine's
// recovery layer mutates its own copy on partition takeover (Reassign) and
// must never alias the caller's partition, which may be shared across runs.
func (p *Partition) Clone() *Partition {
	if p == nil {
		return nil
	}
	q := &Partition{W: p.W, BetaUsed: p.BetaUsed}
	if p.Of != nil {
		q.Of = append([]int32(nil), p.Of...)
	}
	if p.LeafOf != nil {
		q.LeafOf = append([]int32(nil), p.LeafOf...)
	}
	if p.Loads != nil {
		q.Loads = append([]float64(nil), p.Loads...)
	}
	return q
}

// Reassign moves every item (and leaf category) of worker `from` onto worker
// `to`, merging the load accounting — the bookkeeping half of a partition
// takeover, where a survivor adopts a dead worker's HBGP partition. The
// worker count W is unchanged: `from` simply ends up owning nothing. The
// partition stays internally consistent (Loads sums preserved), so
// Imbalance and CutFraction remain meaningful on the reassigned map.
func (p *Partition) Reassign(from, to int) error {
	if from < 0 || from >= p.W || to < 0 || to >= p.W {
		return fmt.Errorf("graph: Reassign(%d, %d) out of range [0,%d)", from, to, p.W)
	}
	if from == to {
		return fmt.Errorf("graph: Reassign(%d, %d): a worker cannot adopt itself", from, to)
	}
	for i, w := range p.Of {
		if w == int32(from) {
			p.Of[i] = int32(to)
		}
	}
	for i, w := range p.LeafOf {
		if w == int32(from) {
			p.LeafOf[i] = int32(to)
		}
	}
	if p.Loads != nil {
		p.Loads[to] += p.Loads[from]
		p.Loads[from] = 0
	}
	return nil
}
