package graph

import (
	"math"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/rng"
)

func TestAddEdgeAndFinalize(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3) // accumulates
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 0, 4)
	g.AddEdge(2, 2, 9) // self-loop ignored
	g.Finalize()

	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if w := g.Weight(0, 1); w != 5 {
		t.Fatalf("Weight(0,1) = %v", w)
	}
	if w := g.Weight(0, 3); w != 0 {
		t.Fatalf("Weight(0,3) = %v", w)
	}
	if w := g.OutWeight(0); w != 6 {
		t.Fatalf("OutWeight(0) = %v", w)
	}
	out := g.Out(0)
	if len(out) != 2 || out[0].To != 1 || out[1].To != 2 {
		t.Fatalf("Out(0) = %v", out)
	}
	if len(g.Out(3)) != 0 {
		t.Fatal("Out(3) should be empty")
	}
}

func TestAddAfterFinalizePanics(t *testing.T) {
	g := New(2)
	g.Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge after Finalize did not panic")
		}
	}()
	g.AddEdge(0, 1, 1)
}

func TestFromSessions(t *testing.T) {
	sessions := []corpus.Session{
		{Items: []int32{0, 1, 2}},
		{Items: []int32{0, 1}},
		{Items: []int32{2, 2}}, // self transition ignored
	}
	g := FromSessions(sessions, 3)
	if w := g.Weight(0, 1); w != 2 {
		t.Fatalf("Weight(0,1) = %v", w)
	}
	if w := g.Weight(1, 2); w != 1 {
		t.Fatalf("Weight(1,2) = %v", w)
	}
	if w := g.Weight(1, 0); w != 0 {
		t.Fatal("reverse edge should not exist")
	}
}

func TestStepDistribution(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 1)
	g.Finalize()
	r := rng.New(1)
	counts := map[int32]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[g.Step(0, r)]++
	}
	p1 := float64(counts[1]) / n
	if math.Abs(p1-0.75) > 0.02 {
		t.Fatalf("Step P(1) = %.3f, want ~0.75", p1)
	}
	if g.Step(1, r) != -1 {
		t.Fatal("sink should return -1")
	}
}

func TestWalk(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.Finalize()
	r := rng.New(2)
	w := g.Walk(0, 10, r)
	if len(w) != 3 || w[0] != 0 || w[1] != 1 || w[2] != 2 {
		t.Fatalf("Walk = %v", w)
	}
	// Walk from sink contains only the start.
	if w := g.Walk(3, 5, r); len(w) != 1 || w[0] != 3 {
		t.Fatalf("sink walk = %v", w)
	}
}

func TestWalkCorpus(t *testing.T) {
	sessions := []corpus.Session{{Items: []int32{0, 1, 2, 3, 0, 1}}}
	g := FromSessions(sessions, 4)
	walks := g.WalkCorpus(3, 5, 7)
	if len(walks) != 3*4 { // every node has out-degree > 0 here
		t.Fatalf("got %d walks", len(walks))
	}
	for _, w := range walks {
		if len(w) < 1 || len(w) > 5 {
			t.Fatalf("walk length %d", len(w))
		}
	}
}

func hbgpFixture(t *testing.T) (*Graph, []int32, []float64, int) {
	t.Helper()
	cfg := corpus.Tiny()
	ds, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := FromSessions(ds.Sessions, cfg.NumItems)
	leafOf := make([]int32, cfg.NumItems)
	freq := make([]float64, cfg.NumItems)
	for i := 0; i < cfg.NumItems; i++ {
		leafOf[i] = ds.Catalog.LeafOf(int32(i))
		freq[i] = float64(ds.Dict.Count(int32(i)))
	}
	return g, leafOf, freq, ds.Catalog.NumLeaves()
}

func TestHBGPValidPartition(t *testing.T) {
	g, leafOf, freq, numLeaves := hbgpFixture(t)
	for _, w := range []int{2, 4, 8} {
		p, err := HBGP(g, leafOf, numLeaves, freq, w, 1.2)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if p.W != w || len(p.Of) != g.N() {
			t.Fatalf("w=%d: bad shape", w)
		}
		// All leaves of one category on one worker.
		for i := 0; i < g.N(); i++ {
			if p.Of[i] != p.LeafOf[leafOf[i]] {
				t.Fatalf("item %d not with its leaf", i)
			}
			if p.Of[i] < 0 || int(p.Of[i]) >= w {
				t.Fatalf("item %d worker out of range", i)
			}
		}
		// Every worker gets something (tiny corpus is connected enough).
		for wk, load := range p.Loads {
			if load == 0 {
				t.Fatalf("w=%d: worker %d has zero load", w, wk)
			}
		}
	}
}

func TestHBGPBeatsRandomOnCut(t *testing.T) {
	g, leafOf, freq, numLeaves := hbgpFixture(t)
	const w = 4
	hb, err := HBGP(g, leafOf, numLeaves, freq, w, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rnd := RandomPartition(g.N(), freq, w, 99)
	if hb.CutFraction(g) >= rnd.CutFraction(g) {
		t.Fatalf("HBGP cut %.3f not better than random %.3f",
			hb.CutFraction(g), rnd.CutFraction(g))
	}
}

func TestHBGPBalance(t *testing.T) {
	g, leafOf, freq, numLeaves := hbgpFixture(t)
	p, err := HBGP(g, leafOf, numLeaves, freq, 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// The relaxation loop may raise beta, but the final imbalance must
	// stay within the relaxed bound.
	if p.Imbalance() > p.BetaUsed+0.01 {
		t.Fatalf("imbalance %.2f exceeds beta %.2f", p.Imbalance(), p.BetaUsed)
	}
}

func TestHBGPDeterministic(t *testing.T) {
	g, leafOf, freq, numLeaves := hbgpFixture(t)
	a, err := HBGP(g, leafOf, numLeaves, freq, 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HBGP(g, leafOf, numLeaves, freq, 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Of {
		if a.Of[i] != b.Of[i] {
			t.Fatal("HBGP not deterministic")
		}
	}
}

func TestHBGPErrors(t *testing.T) {
	g, leafOf, freq, numLeaves := hbgpFixture(t)
	if _, err := HBGP(g, leafOf, numLeaves, freq, 0, 1.2); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := HBGP(g, leafOf, numLeaves, freq, 4, 0.5); err == nil {
		t.Error("beta<1 accepted")
	}
	if _, err := HBGP(g, leafOf[:1], numLeaves, freq, 4, 1.2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := HBGP(g, leafOf, numLeaves, freq, numLeaves+1, 1.2); err == nil {
		t.Error("w > numLeaves accepted")
	}
}

func TestGreedyLoadPartitionBalance(t *testing.T) {
	freq := make([]float64, 100)
	for i := range freq {
		freq[i] = float64(i + 1)
	}
	p := GreedyLoadPartition(100, freq, 4)
	if p.Imbalance() > 1.05 {
		t.Fatalf("greedy imbalance %.3f", p.Imbalance())
	}
	for i := range p.Of {
		if p.Of[i] < 0 || p.Of[i] >= 4 {
			t.Fatal("assignment out of range")
		}
	}
}

func TestRandomPartitionCoversWorkers(t *testing.T) {
	freq := make([]float64, 1000)
	for i := range freq {
		freq[i] = 1
	}
	p := RandomPartition(1000, freq, 8, 1)
	seen := map[int32]bool{}
	for _, w := range p.Of {
		seen[w] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d workers used", len(seen))
	}
}
