package graph

import (
	"testing"
	"testing/quick"

	"sisg/internal/rng"
)

// TestHBGPPropertyRandomGraphs checks HBGP's core invariants on randomly
// generated item graphs: every item assigned, leaf atomicity (a leaf
// category is never split across workers), and loads summing to the total
// frequency.
func TestHBGPPropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64, wRaw, leavesRaw uint8) bool {
		r := rng.New(seed)
		numLeaves := 4 + int(leavesRaw%12) // 4..15
		w := 2 + int(wRaw)%3               // 2..4
		if w > numLeaves {
			w = numLeaves
		}
		numItems := numLeaves * (2 + r.Intn(6))

		leafOf := make([]int32, numItems)
		freq := make([]float64, numItems)
		var total float64
		for i := range leafOf {
			leafOf[i] = int32(r.Intn(numLeaves))
			freq[i] = float64(1 + r.Intn(50))
			total += freq[i]
		}
		g := New(numItems)
		edges := numItems * 2
		for e := 0; e < edges; e++ {
			a := int32(r.Intn(numItems))
			b := int32(r.Intn(numItems))
			g.AddEdge(a, b, float64(1+r.Intn(5)))
		}
		g.Finalize()

		p, err := HBGP(g, leafOf, numLeaves, freq, w, 1.2)
		if err != nil {
			return false
		}
		var loadSum float64
		for _, l := range p.Loads {
			loadSum += l
		}
		if loadSum < total-1e-6 || loadSum > total+1e-6 {
			return false
		}
		for i := range leafOf {
			if p.Of[i] != p.LeafOf[leafOf[i]] {
				return false // leaf split across workers
			}
			if p.Of[i] < 0 || int(p.Of[i]) >= w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCutFractionBounds checks 0 <= cut <= 1 on random partitions.
func TestCutFractionBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + int(seed%40)
		g := New(n)
		for e := 0; e < n*3; e++ {
			g.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), 1)
		}
		g.Finalize()
		freq := make([]float64, n)
		for i := range freq {
			freq[i] = 1
		}
		p := RandomPartition(n, freq, 4, seed)
		c := p.CutFraction(g)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWalkStaysOnEdges verifies every step of a random walk follows an
// existing directed edge.
func TestWalkStaysOnEdges(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + int(seed%20)
		g := New(n)
		for e := 0; e < n*2; e++ {
			g.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), float64(1+r.Intn(3)))
		}
		g.Finalize()
		walk := g.Walk(int32(r.Intn(n)), 15, rng.New(seed^1))
		for i := 0; i+1 < len(walk); i++ {
			if g.Weight(walk[i], walk[i+1]) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
