// The IVF (inverted-file) layer: the sub-linear strategy behind
// Options.Index = "ivf". Rows are partitioned by a deterministic k-means
// over the indexed matrix (nlist ≈ sqrt(rows) coarse centroids); a query
// scores all centroids, probes the NProbe most promising non-empty
// clusters, and the union of their posting lists is the candidate set.
// Candidates are optionally pre-screened with int8 quantized dot products
// (Options.Quantized) and always re-ranked with the exact float32 kernel
// under the engine's canonical total order — approximation decides which
// rows are *considered*, never what score a served row carries.
//
// Determinism: the build is a pure function of the matrix — centroids seed
// from evenly spaced rows (no RNG), Lloyd iterations assign ties to the
// lowest centroid id, and posting lists are ascending row ids — and the
// query path selects under the total order, so IVF results are reproducible
// across runs, platforms, and Parallelism settings. The degenerate case
// NProbe >= nlist enumerates every row and is bit-identical to the flat
// scan (locked down by TestIVFExhaustiveBitIdenticalToFlat).
package knn

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sisg/internal/vecmath"
)

const (
	// kmeansIters bounds the Lloyd iterations of the coarse quantizer.
	// Convergence beyond ~10 iterations moves recall by noise only.
	kmeansIters = 10
	// rerankFactor and rerankMin size the exact-re-rank shortlist the
	// quantized pre-screen keeps: max(rerankFactor*K, rerankMin)
	// candidates survive to float32 scoring.
	rerankFactor = 4
	rerankMin    = 64
)

// ivfIndex is the immutable IVF layer of an Index: coarse centroids, one
// ascending posting list per centroid, and the int8-quantized mirror of
// the indexed rows for shortlist scoring.
type ivfIndex struct {
	nlist     int
	dim       int
	centroids []float32 // nlist × dim, row-major
	lists     [][]int32 // per centroid, ascending row ids (may be empty)
	nonEmpty  int       // number of non-empty posting lists
	codes     []int8    // rows × dim int8 codes (symmetric per-row scale)
	scales    []float32 // per-row quantization scale
}

// ivfLayer returns the IVF layer, building it on first use. The build is
// deterministic and guarded by a sync.Once, so concurrent first queries
// are safe and agree.
func (ix *Index) ivfLayer() *ivfIndex {
	ix.ivfOnce.Do(func() { ix.ivf = buildIVF(ix) })
	return ix.ivf
}

// IVFClusters returns the coarse-centroid count of the index's IVF layer
// (building the layer if needed) — the NProbe value at which IVF
// retrieval degenerates to an exhaustive, bit-identical-to-flat scan.
func (ix *Index) IVFClusters() int {
	if ix.rows == 0 {
		return 0
	}
	return ix.ivfLayer().nlist
}

// defaultNProbe is the probe width used when Options.NProbe <= 0:
// about sqrt(nlist), the classical accuracy/speed sweet spot.
func defaultNProbe(nlist int) int {
	np := int(math.Sqrt(float64(nlist)) + 0.5)
	if np < 1 {
		np = 1
	}
	return np
}

// buildIVF runs the deterministic k-means and quantization pass over the
// indexed rows. Assignment is parallel over row blocks (pure per-row work,
// so parallelism cannot change the result); centroid updates are serial in
// ascending row order.
func buildIVF(ix *Index) *ivfIndex {
	rows, dim := ix.rows, ix.mat.Dim
	data := ix.mat.Data()
	nlist := int(math.Sqrt(float64(rows)) + 0.5)
	if nlist < 1 {
		nlist = 1
	}
	if nlist > rows {
		nlist = rows
	}
	iv := &ivfIndex{nlist: nlist, dim: dim, centroids: make([]float32, nlist*dim)}

	// Seed centroids from evenly spaced rows: deterministic, and spread
	// across the id range (embedding rows carry no id-order structure
	// worth stratifying on, but every seed is a real data point).
	for c := 0; c < nlist; c++ {
		src := (c * rows) / nlist
		copy(iv.centroids[c*dim:(c+1)*dim], data[src*dim:(src+1)*dim])
	}

	assign := make([]int32, rows)
	halfNorm := make([]float32, nlist)
	sums := make([]float32, nlist*dim)
	counts := make([]int32, nlist)
	for iter := 0; iter <= kmeansIters; iter++ {
		iv.assignRows(assign, halfNorm, data, rows)
		if iter == kmeansIters {
			break // final assignment pass matches the final centroids
		}
		vecmath.Zero(sums)
		for c := range counts {
			counts[c] = 0
		}
		for r := 0; r < rows; r++ {
			c := assign[r]
			vecmath.Add(data[r*dim:(r+1)*dim], sums[int(c)*dim:(int(c)+1)*dim])
			counts[c]++
		}
		for c := 0; c < nlist; c++ {
			if counts[c] == 0 {
				continue // empty cluster keeps its centroid (and an empty list)
			}
			cen := iv.centroids[c*dim : (c+1)*dim]
			copy(cen, sums[c*dim:(c+1)*dim])
			vecmath.Scale(1/float32(counts[c]), cen)
		}
	}

	iv.lists = make([][]int32, nlist)
	for r := 0; r < rows; r++ {
		c := assign[r]
		iv.lists[c] = append(iv.lists[c], int32(r)) // ascending by construction
	}
	for _, l := range iv.lists {
		if len(l) > 0 {
			iv.nonEmpty++
		}
	}

	iv.codes = make([]int8, rows*dim)
	iv.scales = make([]float32, rows)
	for r := 0; r < rows; r++ {
		iv.scales[r] = vecmath.QuantizeRow(iv.codes[r*dim:(r+1)*dim], data[r*dim:(r+1)*dim])
	}
	return iv
}

// assignRows computes, for every row, the nearest centroid by Euclidean
// distance (argmax of c·x − ||c||²/2; ties to the lowest centroid id),
// fanning row blocks across a bounded worker pool.
func (iv *ivfIndex) assignRows(assign []int32, halfNorm []float32, data []float32, rows int) {
	dim := iv.dim
	for c := 0; c < iv.nlist; c++ {
		cen := iv.centroids[c*dim : (c+1)*dim]
		halfNorm[c] = vecmath.Dot(cen, cen) / 2
	}
	const block = 256
	blocks := (rows + block - 1) / block
	workers := runtime.GOMAXPROCS(0)
	if workers > blocks {
		workers = blocks
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scores := make([]float32, iv.nlist)
			for {
				b := int(next.Add(1))
				if b >= blocks {
					return
				}
				lo := b * block
				hi := lo + block
				if hi > rows {
					hi = rows
				}
				for r := lo; r < hi; r++ {
					vecmath.DotRows(scores, iv.centroids, data[r*dim:(r+1)*dim])
					best, bestScore := int32(0), scores[0]-halfNorm[0]
					for c := 1; c < iv.nlist; c++ {
						if s := scores[c] - halfNorm[c]; s > bestScore {
							best, bestScore = int32(c), s
						}
					}
					assign[r] = best
				}
			}
		}()
	}
	wg.Wait()
}

// queryIVF answers one prepared (already normalized if requested) query
// through the IVF layer. The context is checked between the probe,
// shortlist and re-rank stages and once per candidate tile inside each.
func (ix *Index) queryIVF(ctx context.Context, q []float32, opts Options) ([]Result, error) {
	iv := ix.ivfLayer()
	cands := iv.candidates(q, opts.NProbe)
	ix.tiles.Add(uint64(1 + (iv.nlist-1)/blockRows)) // centroid scoring pass
	if opts.Quantized {
		var err error
		cands, err = ix.quantShortlist(ctx, iv, cands, q, opts)
		if err != nil {
			return nil, err
		}
	}
	return ix.rerank(ctx, cands, q, opts.K, opts.Skip)
}

// queryBatchIVF runs queryIVF per query on a bounded worker pool. Queries
// are independent, so parallelism affects speed only. On cancellation the
// whole batch fails with one error; workers drain the query counter
// without scanning once any query errors.
func (ix *Index) queryBatchIVF(ctx context.Context, prepared [][]float32, opts Options, out [][]Result) ([][]Result, error) {
	workers := opts.effectiveWorkers(len(prepared))
	if workers == 1 {
		for qi, q := range prepared {
			rs, err := ix.queryIVF(ctx, q, opts)
			if err != nil {
				return nil, err
			}
			out[qi] = rs
		}
		return out, nil
	}
	var failed atomic.Bool
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qi := int(next.Add(1))
				if qi >= len(prepared) {
					return
				}
				if failed.Load() {
					continue
				}
				rs, err := ix.queryIVF(ctx, prepared[qi], opts)
				if err != nil {
					failed.Store(true)
					continue
				}
				out[qi] = rs
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return nil, canceledErr(ctx.Err())
	}
	return out, nil
}

// PredictedCost estimates the scan work one Query with opts will perform,
// in multiply-accumulate units (rows × dims touched). It is the admission
// currency of the serving tier: a flat scan costs rows·dim; an IVF probe
// costs the centroid pass plus the expected fraction of rows its probe
// width reaches (quantized shortlists count at a quarter weight — int8
// traffic — plus the exact re-rank of the kept shortlist). The estimate
// is derived from index geometry only (it mirrors buildIVF's nlist
// formula) and never forces the lazy IVF build.
func (ix *Index) PredictedCost(opts Options) int64 {
	if opts.K <= 0 || ix.rows == 0 {
		return 0
	}
	rows, dim := int64(ix.rows), int64(ix.mat.Dim)
	flat := rows * dim
	if !opts.wantIVF() {
		return flat
	}
	nlist := int64(math.Sqrt(float64(rows)) + 0.5)
	if nlist < 1 {
		nlist = 1
	}
	if nlist > rows {
		nlist = rows
	}
	np := int64(opts.NProbe)
	if np <= 0 {
		np = int64(defaultNProbe(int(nlist)))
	}
	if np > nlist {
		np = nlist
	}
	// Expected candidates under a uniform cluster-size model.
	cand := rows * np / nlist
	cost := nlist * dim // centroid scoring
	if opts.Quantized {
		keep := int64(opts.K * rerankFactor)
		if keep < rerankMin {
			keep = rerankMin
		}
		if keep > cand {
			keep = cand
		}
		cost += cand*dim/4 + keep*dim // int8 pre-screen + exact re-rank
	} else {
		cost += cand * dim
	}
	if cost > flat {
		cost = flat
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}

// candidates returns the posting lists of the nprobe most promising
// non-empty clusters (centroid dot product desc, centroid id asc — the
// MIPS probe rule; for a normalized index this is cosine). Lists are
// returned as-is, not concatenated: selection downstream is canonical, so
// enumeration order cannot change the answer, and skipping the merge keeps
// the per-query constant cost low. Skipping empty lists keeps NProbe an
// honest work budget, and makes NProbe >= nlist exhaustive even when
// k-means left clusters empty.
func (iv *ivfIndex) candidates(q []float32, nprobe int) [][]int32 {
	if nprobe <= 0 {
		nprobe = defaultNProbe(iv.nlist)
	}
	scores := make([]float32, iv.nlist)
	vecmath.DotRows(scores, iv.centroids, q)
	order := make([]int32, iv.nlist)
	for c := range order {
		order[c] = int32(c)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if scores[ca] != scores[cb] {
			return scores[ca] > scores[cb]
		}
		return ca < cb
	})
	probeLists := make([][]int32, 0, nprobe)
	for _, c := range order {
		l := iv.lists[c]
		if len(l) == 0 {
			continue
		}
		probeLists = append(probeLists, l)
		if len(probeLists) == nprobe {
			break
		}
	}
	return probeLists
}

// quantShortlist pre-screens candidates with int8 quantized dot products,
// keeping the max(rerankFactor*K, rerankMin) best under the total order
// for the exact re-rank. Quantized scores only ever decide membership of
// the re-rank set; they are never served. The context is checked once per
// blockRows candidates (a tile unit of work, counted on ix.tiles).
func (ix *Index) quantShortlist(ctx context.Context, iv *ivfIndex, lists [][]int32, q []float32, opts Options) ([][]int32, error) {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	keep := opts.K * rerankFactor
	if keep < rerankMin {
		keep = rerankMin
	}
	if keep >= total {
		return lists, nil
	}
	qc := make([]int8, len(q))
	qs := vecmath.QuantizeRow(qc, q)
	h := make(minHeap, 0, keep)
	dim := iv.dim
	seen := 0
	for _, l := range lists {
		for _, id := range l {
			if seen%blockRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, canceledErr(err)
				}
				ix.tiles.Add(1)
			}
			seen++
			if opts.Skip != nil && opts.Skip(id) {
				continue
			}
			s := float32(vecmath.DotInt8(iv.codes[int(id)*dim:(int(id)+1)*dim], qc)) * iv.scales[id] * qs
			pushBounded(&h, Result{ID: id, Score: s}, keep)
		}
	}
	ids := make([]int32, len(h))
	for i, r := range h {
		ids[i] = r.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return [][]int32{ids}, nil
}

// rerank scores candidate rows exactly, each with one DotRows call on the
// row in place — the schedule is per-row, so the score is bit-identical
// to what the flat scan's tiled call computes for the same row — then
// selects under the canonical total order. No gather copy: approximate
// retrieval must not pay more memory traffic per candidate than the scan
// it replaces. The context is checked once per blockRows candidates.
func (ix *Index) rerank(ctx context.Context, lists [][]int32, q []float32, k int, skip func(int32) bool) ([]Result, error) {
	dim := ix.mat.Dim
	data := ix.mat.Data()
	var score [1]float32
	h := make(minHeap, 0, k)
	seen := 0
	for _, l := range lists {
		for _, id := range l {
			if seen%blockRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, canceledErr(err)
				}
				ix.tiles.Add(1)
			}
			seen++
			if skip != nil && skip(id) {
				continue
			}
			vecmath.DotRows(score[:], data[int(id)*dim:(int(id)+1)*dim], q)
			pushBounded(&h, Result{ID: id, Score: score[0]}, k)
		}
	}
	return mergeTopK([]minHeap{h}, k), nil
}
