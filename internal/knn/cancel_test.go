package knn

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sisg/internal/emb"
	"sisg/internal/rng"
)

// countdownCtx is a context whose Err flips to context.Canceled after n
// calls. It makes cancellation tests deterministic: "cancelled after the
// engine's 5th check" is a reproducible program point, where a timer or a
// goroutine calling cancel() is a race against the scan.
type countdownCtx struct {
	calls atomic.Int64
	n     int64
}

func (c *countdownCtx) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}             { return nil }
func (c *countdownCtx) Value(key interface{}) interface{} { return nil }
func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

func cancelTestIndex(t *testing.T, rows, dim, shards int) (*Index, [][]float32) {
	t.Helper()
	r := rng.New(77)
	m := emb.NewMatrix(rows, dim)
	data := m.Data()
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	qs := make([][]float32, 4)
	for i := range qs {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(r.NormFloat64())
		}
		qs[i] = q
	}
	return NewIndexSharded(m, 0, false, shards), qs
}

// A context cancelled mid-scan stops the scan at the next tile check: the
// tiles-scanned delta equals the number of checks that passed, never the
// full scan — cancellation provably stops work, it does not merely change
// the error a completed scan returns.
func TestQueryCancelMidScanStopsScanning(t *testing.T) {
	const rows, dim = 4096, 16 // 16 tiles of 256 rows
	ix, qs := cancelTestIndex(t, rows, dim, 1)
	fullTiles := uint64((rows + blockRows - 1) / blockRows)

	// Serial scan, cancelled after 5 checks: one entry check in Query plus
	// one check per tile means exactly 4 tiles get scanned.
	ctx := &countdownCtx{n: 5}
	before := ix.TilesScanned()
	recs, err := ix.Query(ctx, qs[0], Options{K: 10, Parallelism: 1})
	delta := ix.TilesScanned() - before
	if recs != nil {
		t.Fatalf("cancelled query returned results: %v", recs)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should wrap both ErrCanceled and context.Canceled", err)
	}
	if want := uint64(4); delta != want {
		t.Fatalf("scanned %d tiles after cancellation at check 6, want exactly %d", delta, want)
	}
	if delta >= fullTiles {
		t.Fatalf("cancelled scan did all %d tiles", fullTiles)
	}
}

// A context cancelled before the call scans nothing at all, at every
// parallelism and for both strategies.
func TestQueryPreCancelledScansNothing(t *testing.T) {
	ix, qs := cancelTestIndex(t, 4096, 16, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{
		{K: 10},
		{K: 10, Parallelism: 4},
		{K: 10, Index: IndexIVF},
		{K: 10, Index: IndexIVF, Quantized: true},
	} {
		before := ix.TilesScanned()
		if _, err := ix.Query(ctx, qs[0], opts); !errors.Is(err, ErrCanceled) {
			t.Fatalf("opts %+v: err = %v, want ErrCanceled", opts, err)
		}
		if d := ix.TilesScanned() - before; d != 0 {
			t.Fatalf("opts %+v: pre-cancelled query scanned %d tiles", opts, d)
		}
		before = ix.TilesScanned()
		if _, err := ix.QueryBatch(ctx, qs, opts); !errors.Is(err, ErrCanceled) {
			t.Fatalf("opts %+v: batch err = %v, want ErrCanceled", opts, err)
		}
		if d := ix.TilesScanned() - before; d != 0 {
			t.Fatalf("opts %+v: pre-cancelled batch scanned %d tiles", opts, d)
		}
	}
}

// Parallel and batch scans also stop: with a countdown context the total
// tile work is bounded by the number of checks that returned nil (each
// check admits at most one tile of work, or one batch-block of len(qs)
// tile units), far below a full scan.
func TestQueryCancelBoundsParallelAndBatchWork(t *testing.T) {
	const rows, dim = 8192, 16
	ix, qs := cancelTestIndex(t, rows, dim, 4)
	fullTiles := uint64((rows + blockRows - 1) / blockRows)

	const n = 6
	ctx := &countdownCtx{n: n}
	before := ix.TilesScanned()
	_, err := ix.Query(ctx, qs[0], Options{K: 10, Parallelism: 4})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if d := ix.TilesScanned() - before; d > n {
		t.Fatalf("parallel query scanned %d tiles after %d passed checks", d, n)
	}

	ctx = &countdownCtx{n: n}
	before = ix.TilesScanned()
	_, err = ix.QueryBatch(ctx, qs, Options{K: 10, Parallelism: 4})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch err = %v, want ErrCanceled", err)
	}
	if d := ix.TilesScanned() - before; d > n*uint64(len(qs)) {
		t.Fatalf("batch scanned %d tile units after %d passed checks", d, n)
	}
	_ = fullTiles
}

// The flip side of the cancellation contract: a *cancellable* context that
// never fires changes nothing — results stay bit-identical to the serial
// reference at every parallelism, for flat and exhaustive IVF alike.
func TestUncancelledQueryBitIdenticalToReference(t *testing.T) {
	const rows, dim = 3000, 24
	ix, qs := cancelTestIndex(t, rows, dim, 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, q := range qs {
		want := referenceScan(ix.mat, rows, q, Options{K: 25})
		for _, par := range []int{1, 2, 8} {
			got, err := ix.Query(ctx, q, Options{K: 25, Parallelism: par})
			if err != nil {
				t.Fatalf("parallelism %d: %v", par, err)
			}
			sameResults(t, "flat uncancelled", got, want)

			ivf, err := ix.Query(ctx, q, Options{K: 25, Parallelism: par, Index: IndexIVF, NProbe: ix.IVFClusters()})
			if err != nil {
				t.Fatalf("ivf parallelism %d: %v", par, err)
			}
			sameResults(t, "ivf exhaustive uncancelled", ivf, want)
		}
	}
	batch, err := ix.QueryBatch(ctx, qs, Options{K: 25, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		sameResults(t, "batch uncancelled", batch[i], referenceScan(ix.mat, rows, q, Options{K: 25}))
	}
}
