package knn

import (
	"math"
	"testing"
	"testing/quick"

	"sisg/internal/emb"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

// referenceScan is the serial specification of the engine: score every row
// with the reference kernel, sort under (score desc, id asc), truncate.
// Query must match it bit-for-bit at every shard count and parallelism.
func referenceScan(m *emb.Matrix, rows int, q []float32, opts Options) []Result {
	if opts.K <= 0 {
		return nil
	}
	if opts.Normalize {
		qc := make([]float32, len(q))
		copy(qc, q)
		vecmath.Normalize(qc)
		q = qc
	}
	scores := make([]float32, rows)
	vecmath.DotRowsRef(scores, m.Data()[:rows*m.Dim], q)
	var all []Result
	for i := 0; i < rows; i++ {
		if opts.Skip != nil && opts.Skip(int32(i)) {
			continue
		}
		all = append(all, Result{ID: int32(i), Score: scores[i]})
	}
	sortResults(all)
	if opts.K < len(all) {
		all = all[:opts.K]
	}
	return all
}

func sameResults(t *testing.T, tag string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID ||
			math.Float32bits(got[i].Score) != math.Float32bits(want[i].Score) {
			t.Fatalf("%s: pos %d: got {%d %x} want {%d %x}", tag, i,
				got[i].ID, math.Float32bits(got[i].Score),
				want[i].ID, math.Float32bits(want[i].Score))
		}
	}
}

// The tentpole guarantee: parallel sharded Query is bit-identical to the
// serial reference scan across random matrices, shard counts, k values
// and skip functions.
func TestQueryBitIdenticalToSerialProperty(t *testing.T) {
	f := func(seed uint64, shardRaw, kRaw, parRaw uint8, normalize bool, withSkip bool) bool {
		r := rng.New(seed)
		rows := 50 + int(seed%900)
		dim := 8 + int(seed%60)
		m := emb.NewMatrix(rows, dim)
		for i := range m.Data() {
			m.Data()[i] = r.Float32()*2 - 1
		}
		q := make([]float32, dim)
		for i := range q {
			q[i] = r.Float32()*2 - 1
		}
		opts := Options{
			K:           int(kRaw%64) + 1,
			Normalize:   normalize,
			Parallelism: int(parRaw%8) + 1,
		}
		if withSkip {
			mod := int32(seed%7) + 2
			opts.Skip = func(id int32) bool { return id%mod == 0 }
		}
		ix := NewIndexSharded(m, 0, false, int(shardRaw%9)+1)
		got := queryT(ix, q, opts)
		want := referenceScan(m, rows, q, opts)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].ID != want[i].ID ||
				math.Float32bits(got[i].Score) != math.Float32bits(want[i].Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Shard count must never change results — same matrix, same query, every
// sharding from 1 to way-past-the-tile-count.
func TestQueryShardInvariance(t *testing.T) {
	r := rng.New(21)
	const rows, dim = 1500, 24
	m := emb.NewMatrix(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()*2 - 1
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = r.Float32()*2 - 1
	}
	want := referenceScan(m, rows, q, Options{K: 33})
	for _, shards := range []int{1, 2, 3, 4, 7, 16, 1000} {
		ix := NewIndexSharded(m, 0, false, shards)
		sameResults(t, "shards", queryT(ix, q, Options{K: 33}), want)
	}
}

// QueryBatch must equal independent Query calls bit-for-bit, including
// with a shared skip and normalization.
func TestQueryBatchMatchesSingle(t *testing.T) {
	r := rng.New(22)
	const rows, dim, nq = 900, 16, 13
	m := emb.NewMatrix(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()*2 - 1
	}
	qs := make([][]float32, nq)
	for i := range qs {
		qs[i] = make([]float32, dim)
		for j := range qs[i] {
			qs[i][j] = r.Float32()*2 - 1
		}
	}
	for _, opts := range []Options{
		{K: 9},
		{K: 21, Normalize: true},
		{K: 5, Skip: func(id int32) bool { return id%5 == 0 }},
		{K: 2000}, // k > rows
	} {
		ix := NewIndexSharded(m, 0, false, 4)
		got := queryBatchT(ix, qs, opts)
		if len(got) != nq {
			t.Fatalf("batch returned %d result sets", len(got))
		}
		for qi := range qs {
			sameResults(t, "batch-vs-single", got[qi], queryT(ix, qs[qi], opts))
		}
	}
}

// Queries issued concurrently against one shared index must not interfere
// (run under -race in CI).
func TestConcurrentQueries(t *testing.T) {
	r := rng.New(23)
	const rows, dim = 600, 12
	m := emb.NewMatrix(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()*2 - 1
	}
	ix := NewIndexSharded(m, 0, false, 4)
	q := make([]float32, dim)
	for i := range q {
		q[i] = r.Float32()*2 - 1
	}
	want := queryT(ix, q, Options{K: 10})
	done := make(chan []Result, 16)
	for g := 0; g < 16; g++ {
		go func() { done <- queryT(ix, q, Options{K: 10, Parallelism: 2}) }()
	}
	for g := 0; g < 16; g++ {
		sameResults(t, "concurrent", <-done, want)
	}
}

// Ties on score must resolve to the lowest id, independent of sharding —
// the case that breaks naive parallel merges.
func TestTieBreakDeterminism(t *testing.T) {
	const rows, dim = 64, 4
	m := emb.NewMatrix(rows, dim)
	// Every row identical: all scores tie exactly.
	for i := 0; i < rows; i++ {
		row := m.Row(int32(i))
		for j := range row {
			row[j] = 0.5
		}
	}
	q := []float32{1, 2, 3, 4}
	for _, shards := range []int{1, 3, 8} {
		ix := NewIndexSharded(m, 0, false, shards)
		got := queryT(ix, q, Options{K: 10})
		if len(got) != 10 {
			t.Fatalf("shards=%d: %d results", shards, len(got))
		}
		for i, res := range got {
			if res.ID != int32(i) {
				t.Fatalf("shards=%d: tie broken to id %d at pos %d, want %d", shards, res.ID, i, i)
			}
		}
	}
}

func BenchmarkQuerySharded50k(b *testing.B) {
	r := rng.New(25)
	const rows, dim = 50000, 64
	m := emb.NewMatrix(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()*2 - 1
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = r.Float32()*2 - 1
	}
	for _, shards := range []int{1, 4} {
		ix := NewIndexSharded(m, 0, false, shards)
		b.Run(map[int]string{1: "shards=1", 4: "shards=4"}[shards], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				queryT(ix, q, Options{K: 20})
			}
		})
	}
}

func BenchmarkQueryBatch50k(b *testing.B) {
	r := rng.New(26)
	const rows, dim, batch = 50000, 64, 32
	m := emb.NewMatrix(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()*2 - 1
	}
	qs := make([][]float32, batch)
	for i := range qs {
		qs[i] = make([]float32, dim)
		for j := range qs[i] {
			qs[i][j] = r.Float32()*2 - 1
		}
	}
	ix := NewIndex(m, 0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queryBatchT(ix, qs, Options{K: 20})
	}
}
