package knn

import (
	"sync"
	"sync/atomic"
)

// LRU is a bounded, concurrency-safe cache of retrieval results, keyed by
// an opaque uint64 (callers pack whatever identifies a repeated query —
// the serving layer uses seed-item and k). It exists for the /similar hot
// path: production matching traffic is heavily head-skewed, so a few
// thousand entries absorb a large fraction of full-matrix scans.
//
// Values are returned by reference: a cached []Result is shared between
// all readers and must be treated as read-only.
type LRU struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*lruNode
	head    *lruNode // most recently used
	tail    *lruNode // least recently used, evicted first

	hits   atomic.Uint64
	misses atomic.Uint64
}

type lruNode struct {
	key        uint64
	val        []Result
	prev, next *lruNode
}

// NewLRU returns a cache bounded to capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, entries: make(map[uint64]*lruNode, capacity)}
}

// Get returns the cached results for key and whether they were present,
// promoting the entry to most-recently-used. The returned slice is shared
// and read-only.
func (c *LRU) Get(key uint64) ([]Result, bool) {
	c.mu.Lock()
	n, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.moveToFront(n)
	val := n.val
	c.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key as most-recently-used, evicting the
// least-recently-used entry if the cache is full. Storing an existing key
// overwrites its value.
func (c *LRU) Put(key uint64, val []Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[key]; ok {
		n.val = val
		c.moveToFront(n)
		return
	}
	if len(c.entries) >= c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.key)
	}
	n := &lruNode{key: key, val: val}
	c.entries[key] = n
	c.pushFront(n)
}

// Len returns the current number of entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits returns the cumulative Get hit count.
func (c *LRU) Hits() uint64 { return c.hits.Load() }

// Misses returns the cumulative Get miss count.
func (c *LRU) Misses() uint64 { return c.misses.Load() }

// moveToFront promotes an existing node to head. Caller holds mu.
func (c *LRU) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// unlink removes n from the list. Caller holds mu.
func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront inserts n at head. Caller holds mu.
func (c *LRU) pushFront(n *lruNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}
