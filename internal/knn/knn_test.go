package knn

import (
	"context"
	"sort"
	"testing"
	"testing/quick"

	"sisg/internal/emb"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

func randomMatrix(rows, dim int, seed uint64) *emb.Matrix {
	m := emb.NewMatrix(rows, dim)
	r := rng.New(seed)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()*2 - 1
	}
	return m
}

func bruteTopK(m *emb.Matrix, q []float32, k int, skip func(int32) bool) []Result {
	var all []Result
	for i := 0; i < m.Rows(); i++ {
		if skip != nil && skip(int32(i)) {
			continue
		}
		all = append(all, Result{ID: int32(i), Score: vecmath.Dot(q, m.Row(int32(i)))})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		return all[a].ID < all[b].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestSearchMatchesBrute(t *testing.T) {
	m := randomMatrix(200, 8, 1)
	idx := NewIndex(m, 0, false)
	q := randomMatrix(1, 8, 2).Row(0)
	for _, k := range []int{1, 5, 50, 200, 500} {
		got, err := idx.Query(context.Background(), q, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopK(m, q, k, nil)
		if len(got) != len(want) {
			t.Fatalf("k=%d: len %d != %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("k=%d pos %d: %v != %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestSearchSkip(t *testing.T) {
	m := randomMatrix(50, 4, 3)
	idx := NewIndex(m, 0, false)
	q := m.Row(7)
	got, err := idx.Query(context.Background(), q, Options{K: 10, Skip: func(id int32) bool { return id == 7 }})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == 7 {
			t.Fatal("skipped ID returned")
		}
	}
}

func TestSearchProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rows := 30 + int(seed%50)
		m := randomMatrix(rows, 6, seed)
		idx := NewIndex(m, 0, false)
		q := randomMatrix(1, 6, seed^0xabc).Row(0)
		k := int(kRaw%40) + 1
		got, err := idx.Query(context.Background(), q, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopK(m, q, k, nil)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedSearchIsCosine(t *testing.T) {
	m := randomMatrix(40, 5, 4)
	idx := NewIndex(m, 0, true)
	q := m.Row(11)
	got, err := idx.Query(context.Background(), q, Options{K: 1, Normalize: true, Skip: func(id int32) bool { return id == 11 }})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force cosine.
	best, bestCos := int32(-1), float32(-2)
	for i := 0; i < m.Rows(); i++ {
		if i == 11 {
			continue
		}
		if c := vecmath.Cosine(q, m.Row(int32(i))); c > bestCos {
			best, bestCos = int32(i), c
		}
	}
	if got[0].ID != best {
		t.Fatalf("cosine top-1 %d, want %d", got[0].ID, best)
	}
}

func TestRowsBound(t *testing.T) {
	m := randomMatrix(100, 4, 5)
	idx := NewIndex(m, 30, false)
	if idx.Rows() != 30 {
		t.Fatalf("Rows = %d", idx.Rows())
	}
	got, err := idx.Query(context.Background(), m.Row(0), Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID >= 30 {
			t.Fatalf("returned row %d beyond bound", r.ID)
		}
	}
}

func TestKZeroAndNegative(t *testing.T) {
	m := randomMatrix(10, 4, 6)
	idx := NewIndex(m, 0, false)
	if got, _ := idx.Query(context.Background(), m.Row(0), Options{K: 0}); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got, _ := idx.Query(context.Background(), m.Row(0), Options{K: -5}); got != nil {
		t.Fatal("k<0 should return nil")
	}
}

func TestSearchBatch(t *testing.T) {
	m := randomMatrix(80, 6, 7)
	idx := NewIndex(m, 0, false)
	queries := make([][]float32, 9)
	for i := range queries {
		queries[i] = m.Row(int32(i))
	}
	got, err := idx.QueryBatch(context.Background(), queries, Options{K: 5, Skip: func(id int32) bool { return id < 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(queries) {
		t.Fatalf("batch returned %d results", len(got))
	}
	for qi, rs := range got {
		want, err := idx.Query(context.Background(), queries[qi], Options{K: 5, Skip: func(id int32) bool { return id < 0 }})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(want) {
			t.Fatalf("query %d: len mismatch", qi)
		}
		for i := range rs {
			if rs[i].ID != want[i].ID {
				t.Fatalf("query %d pos %d: %d != %d", qi, i, rs[i].ID, want[i].ID)
			}
		}
	}
}

func BenchmarkSearch10k(b *testing.B) {
	m := randomMatrix(10000, 32, 1)
	idx := NewIndex(m, 0, false)
	q := m.Row(0)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Query(ctx, q, Options{K: 20})
	}
}
