package knn

import "context"

// queryT and queryBatchT are the uncancellable spellings tests use when
// cancellation is not the thing under test: Background context, panic on
// error (impossible without cancellation).
func queryT(ix *Index, q []float32, opts Options) []Result {
	rs, err := ix.Query(context.Background(), q, opts)
	if err != nil {
		panic(err)
	}
	return rs
}

func queryBatchT(ix *Index, qs [][]float32, opts Options) [][]Result {
	rs, err := ix.QueryBatch(context.Background(), qs, opts)
	if err != nil {
		panic(err)
	}
	return rs
}
