package knn

import (
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, []Result{{ID: 1}})
	c.Put(2, []Result{{ID: 2}})
	if v, ok := c.Get(1); !ok || v[0].ID != 1 {
		t.Fatalf("Get(1) = %v %v", v, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2.
	c.Put(3, []Result{{ID: 3}})
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently-used entry 1 was evicted")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("newest entry 3 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Hits() != 3 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 3/2", c.Hits(), c.Misses())
	}
}

func TestLRUOverwrite(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, []Result{{ID: 1}})
	c.Put(1, []Result{{ID: 9}})
	if v, _ := c.Get(1); v[0].ID != 9 {
		t.Fatalf("overwrite lost: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", c.Len())
	}
}

func TestLRUCapacityFloor(t *testing.T) {
	c := NewLRU(0)
	c.Put(1, nil)
	c.Put(2, nil)
	if c.Len() != 1 {
		t.Fatalf("capacity floor violated: Len = %d", c.Len())
	}
}

// Hammer the cache from many goroutines; run under -race in CI. The
// assertions are deliberately weak (bounded size, sane counters) — the
// point is the interleaving.
func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(64)
	var wg sync.WaitGroup
	const workers, ops = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := uint64((w*31 + i) % 200)
				if v, ok := c.Get(key); ok {
					if v != nil && v[0].ID != int32(key) {
						panic("cache returned wrong value")
					}
					continue
				}
				c.Put(key, []Result{{ID: int32(key)}})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
	if c.Hits()+c.Misses() == 0 {
		t.Fatal("no lookups recorded")
	}
}
