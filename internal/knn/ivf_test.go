package knn

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"sisg/internal/emb"
	"sisg/internal/rng"
)

// clusteredMatrix draws rows from a mixture of `centers` Gaussians — the
// regime IVF is built for (uniform random data has no cluster structure
// and is adversarial for any partition-based ANN index).
func clusteredMatrix(rows, dim, centers int, seed uint64) *emb.Matrix {
	r := rng.New(seed)
	mu := make([][]float32, centers)
	for c := range mu {
		mu[c] = make([]float32, dim)
		for d := range mu[c] {
			mu[c][d] = float32(r.NormFloat64()) * 4
		}
	}
	m := emb.NewMatrix(rows, dim)
	for i := 0; i < rows; i++ {
		row := m.Row(int32(i))
		center := mu[r.Intn(centers)]
		for d := range row {
			row[d] = center[d] + float32(r.NormFloat64())*0.3
		}
	}
	return m
}

// The satellite-1 property: IVF with NProbe >= the cluster count probes
// every non-empty posting list, so it enumerates exactly the rows the
// flat scan does — and because selection is canonical and the re-rank
// uses the same kernel schedule, the output is bit-identical to the flat
// scan (and therefore to the serial reference).
func TestIVFExhaustiveBitIdenticalToFlat(t *testing.T) {
	f := func(seed uint64, rowsRaw uint16, kRaw, dimRaw uint8, normalize, withSkip bool) bool {
		rows := 1 + int(rowsRaw)%1200
		dim := 2 + int(dimRaw)%24
		k := 1 + int(kRaw)%40
		m := randomMatrix(rows, dim, seed)
		q := randomMatrix(1, dim, seed^0x5eed).Row(0)
		ix := NewIndex(m, rows, false)
		var skip func(int32) bool
		if withSkip {
			skip = func(id int32) bool { return id%5 == int32(seed%5) }
		}
		flat := queryT(ix, q, Options{K: k, Normalize: normalize, Skip: skip})
		ivf := queryT(ix, q, Options{
			K: k, Normalize: normalize, Skip: skip,
			Index: IndexIVF, NProbe: rows + 1, // >= nlist: exhaustive
		})
		sameResults(t, fmt.Sprintf("seed=%d rows=%d dim=%d k=%d", seed, rows, dim, k), ivf, flat)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Quantized exhaustive probe is also bit-identical whenever the shortlist
// budget covers every candidate (the int8 pre-screen only trims when it
// must): quantization decides membership, never served scores.
func TestIVFQuantizedExhaustiveSmallIsExact(t *testing.T) {
	rows, dim, k := 60, 12, 5 // shortlist keep = rerankMin = 64 >= rows
	m := randomMatrix(rows, dim, 11)
	ix := NewIndex(m, rows, false)
	q := randomMatrix(1, dim, 13).Row(0)
	flat := queryT(ix, q, Options{K: k})
	ivf := queryT(ix, q, Options{K: k, Index: IndexIVF, NProbe: rows, Quantized: true})
	sameResults(t, "quantized exhaustive", ivf, flat)
}

// Recall sanity on clustered data at the default NProbe, quantized and
// not. This is a loose floor — the bench harness (cmd/sisg-bench -ann)
// measures the real recall/speed curve — but it catches a broken probe
// order or a shortlist that drops the true neighbors wholesale.
func TestIVFRecallOnClusteredData(t *testing.T) {
	const rows, dim, k, nq = 4000, 16, 10, 40
	m := clusteredMatrix(rows, dim, 25, 42)
	ix := NewIndex(m, rows, false)
	r := rng.New(99)
	for _, quantized := range []bool{false, true} {
		hits, want := 0, 0
		for i := 0; i < nq; i++ {
			q := make([]float32, dim)
			src := m.Row(int32(r.Intn(rows)))
			for d := range q {
				q[d] = src[d] + float32(r.NormFloat64())*0.05
			}
			truth := queryT(ix, q, Options{K: k})
			got := queryT(ix, q, Options{K: k, Index: IndexIVF, Quantized: quantized})
			inTruth := make(map[int32]bool, len(truth))
			for _, res := range truth {
				inTruth[res.ID] = true
			}
			want += len(truth)
			for _, res := range got {
				if inTruth[res.ID] {
					hits++
				}
			}
		}
		recall := float64(hits) / float64(want)
		t.Logf("quantized=%v recall@%d = %.3f", quantized, k, recall)
		if recall < 0.9 {
			t.Errorf("quantized=%v recall@%d = %.3f, want >= 0.9", quantized, k, recall)
		}
	}
}

// Batch IVF must agree with per-query IVF at every parallelism.
func TestIVFBatchMatchesSingle(t *testing.T) {
	const rows, dim, k, nq = 700, 10, 7, 23
	m := clusteredMatrix(rows, dim, 12, 7)
	ix := NewIndex(m, rows, false)
	qs := make([][]float32, nq)
	for i := range qs {
		qs[i] = randomMatrix(1, dim, uint64(100+i)).Row(0)
	}
	opts := Options{K: k, Index: IndexIVF, NProbe: 3, Quantized: true}
	single := make([][]Result, nq)
	for i, q := range qs {
		single[i] = queryT(ix, q, opts)
	}
	for _, par := range []int{1, 4} {
		opts.Parallelism = par
		batch := queryBatchT(ix, qs, opts)
		for i := range batch {
			sameResults(t, fmt.Sprintf("par=%d query %d", par, i), batch[i], single[i])
		}
	}
}

// The IVF layer is built lazily behind a sync.Once; hammer the first
// build from many goroutines (run under -race in CI) and check everyone
// sees the same answer.
func TestIVFConcurrentFirstBuild(t *testing.T) {
	const rows, dim, k = 900, 8, 6
	m := clusteredMatrix(rows, dim, 9, 3)
	ix := NewIndex(m, rows, false)
	q := randomMatrix(1, dim, 77).Row(0)
	opts := Options{K: k, Index: IndexIVF, NProbe: rows} // exhaustive: answer is known
	want := queryT(NewIndex(m, rows, false), q, Options{K: k})
	var wg sync.WaitGroup
	got := make([][]Result, 16)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = queryT(ix, q, opts)
		}(g)
	}
	wg.Wait()
	for g := range got {
		sameResults(t, fmt.Sprintf("goroutine %d", g), got[g], want)
	}
}

func TestIVFClustersAccessor(t *testing.T) {
	m := randomMatrix(400, 6, 5)
	ix := NewIndex(m, 400, false)
	n := ix.IVFClusters()
	if n != 20 { // round(sqrt(400))
		t.Fatalf("IVFClusters() = %d, want 20", n)
	}
	empty := NewIndex(emb.NewMatrix(0, 6), 0, false)
	if got := empty.IVFClusters(); got != 0 {
		t.Fatalf("empty IVFClusters() = %d, want 0", got)
	}
}

// Satellite 3 (engine side): Options.Validate classifies bad options; the
// server test suite checks the same cases surface as bad_request JSON.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"flat default ok", Options{K: 5}, ""},
		{"flat explicit ok", Options{K: 5, Index: IndexFlat}, ""},
		{"ivf ok", Options{K: 5, Index: IndexIVF}, ""},
		{"ivf nprobe ok", Options{K: 5, Index: IndexIVF, NProbe: 8}, ""},
		{"ivf quantized ok", Options{K: 5, Index: IndexIVF, Quantized: true}, ""},
		{"zero k", Options{K: 0}, "knn: k must be positive, got 0"},
		{"negative k", Options{K: -3, Index: IndexIVF}, "knn: k must be positive, got -3"},
		{"negative nprobe", Options{K: 5, Index: IndexIVF, NProbe: -1}, "knn: nprobe must be >= 0 (0 means default), got -1"},
		{"nprobe without ivf", Options{K: 5, NProbe: 4}, "knn: nprobe is only meaningful with index=ivf"},
		{"quantized without ivf", Options{K: 5, Index: IndexFlat, Quantized: true}, "knn: quantized is only meaningful with index=ivf"},
		{"unknown index", Options{K: 5, Index: "hnsw"}, `knn: unknown index "hnsw" (want "flat" or "ivf")`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("Validate() = %v, want nil", err)
			case tc.wantErr != "" && (err == nil || err.Error() != tc.wantErr):
				t.Fatalf("Validate() = %v, want %q", err, tc.wantErr)
			}
		})
	}
}
