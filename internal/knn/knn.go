// Package knn is the retrieval engine of the matching stage — exact top-K
// search over embedding matrices ("the K most similar items", §IV-A).
// Production systems put an ANN index here; for the corpus sizes in this
// reproduction an exact scan is both simpler and fast enough, and it
// removes retrieval error from the HitRate comparison between model
// variants. What *is* production-shaped is the execution: the matrix is
// split into row shards, every query fans out across shards on a bounded
// worker pool, each shard is scored with the cache-blocked SIMD kernel in
// internal/vecmath and reduced into a per-shard top-k min-heap, and the
// shard heaps merge under the total order (score desc, id asc).
//
// Determinism guarantee: for a given matrix and query, Query returns
// results bit-identical to a serial reference scan — independent of shard
// count, worker count, batching, and platform. Two facts carry this:
// scores come from one fixed accumulation schedule (vecmath.DotRows ==
// vecmath.DotRowsRef, bit-exact), and (score desc, id asc) is a total
// order, so top-k selection has exactly one answer no matter how the scan
// is partitioned.
//
// The single entry points are Query and QueryBatch, both taking Options;
// Search, SearchNormalized and SearchBatch are deprecated wrappers kept
// for source compatibility.
package knn

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sisg/internal/emb"
	"sisg/internal/vecmath"
)

// Result is one retrieved neighbour.
type Result struct {
	ID    int32
	Score float32
}

// Options controls one Query or QueryBatch call.
type Options struct {
	// K is the number of neighbours to return (<=0 returns nil).
	K int
	// Normalize L2-normalizes a private copy of the query before scoring,
	// turning dot products against a normalized index into cosine
	// similarities. The caller's slice is never mutated.
	Normalize bool
	// Skip, if non-nil, excludes rows from the result (typically the query
	// item itself). In QueryBatch the same predicate applies to every
	// query in the batch; per-query exclusion is done by querying k+1 and
	// dropping the known id, or by issuing single Query calls.
	Skip func(int32) bool
	// Parallelism bounds the workers fanning one call across shards
	// (<=0 means GOMAXPROCS). It affects speed only, never results.
	Parallelism int
}

// blockRows is the scan tile: scores are computed blockRows rows at a time
// into a scratch buffer, so the kernel runs branch-free over contiguous
// memory and a batch can reuse a resident block across queries.
// 256 rows × 128 dims × 4 B = 128 KiB, comfortably inside L2.
const blockRows = 256

// span is one shard's half-open row range.
type span struct{ lo, hi int }

// Index is a sharded retrieval index over the first rows rows of a
// matrix. It is immutable after construction and safe for concurrent use.
type Index struct {
	mat    *emb.Matrix
	rows   int
	shards []span
}

// NewIndex builds an index over the first rows rows of mat with automatic
// sharding (one shard per CPU, fewer for small matrices). rows <= 0 means
// all rows. When normalize is set the matrix is copied and row-normalized
// (dot products become cosines); otherwise the index holds a reference and
// callers must not mutate mat during searches.
func NewIndex(mat *emb.Matrix, rows int, normalize bool) *Index {
	return NewIndexSharded(mat, rows, normalize, 0)
}

// NewIndexSharded is NewIndex with an explicit shard count (<=0 means
// automatic). Shard count affects parallel speed only: results are
// bit-identical at every shard count.
func NewIndexSharded(mat *emb.Matrix, rows int, normalize bool, shards int) *Index {
	if rows <= 0 || rows > mat.Rows() {
		rows = mat.Rows()
	}
	if normalize {
		mat = emb.NormalizedCopy(mat)
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// No point cutting shards smaller than a scan tile.
	if maxShards := (rows + blockRows - 1) / blockRows; shards > maxShards {
		shards = maxShards
	}
	if shards < 1 {
		shards = 1
	}
	ix := &Index{mat: mat, rows: rows, shards: make([]span, 0, shards)}
	for s := 0; s < shards; s++ {
		lo := rows * s / shards
		hi := rows * (s + 1) / shards
		if lo < hi {
			ix.shards = append(ix.shards, span{lo, hi})
		}
	}
	return ix
}

// Rows returns the number of indexed rows.
func (ix *Index) Rows() int { return ix.rows }

// Shards returns the number of row shards.
func (ix *Index) Shards() int { return len(ix.shards) }

// Query returns the top-K rows by dot product with q under the total
// order (score desc, id asc), honouring opts. The query slice is
// read-only. Results are bit-identical to a serial scan regardless of
// sharding and parallelism.
func (ix *Index) Query(q []float32, opts Options) []Result {
	if opts.K <= 0 || ix.rows == 0 {
		return nil
	}
	q = ix.prepared(q, opts)
	per := make([]minHeap, len(ix.shards))
	ix.fanOut(opts.effectiveWorkers(len(ix.shards)), func(si int, buf []float32) {
		h := make(minHeap, 0, opts.K)
		ix.scanShard(&h, buf, q, ix.shards[si], opts.K, opts.Skip)
		per[si] = h
	})
	return mergeTopK(per, opts.K)
}

// QueryBatch runs Query for every query in qs under one shared Options
// and returns results in query order. Queries are coalesced per shard:
// each scan tile of rows is streamed once and scored against every query
// while it is cache-resident, so a batch costs far less memory traffic
// than len(qs) single queries. Results are bit-identical to len(qs)
// independent Query calls.
func (ix *Index) QueryBatch(qs [][]float32, opts Options) [][]Result {
	out := make([][]Result, len(qs))
	if opts.K <= 0 || ix.rows == 0 || len(qs) == 0 {
		return out
	}
	prepared := make([][]float32, len(qs))
	for i, q := range qs {
		prepared[i] = ix.prepared(q, opts)
	}
	// per[si][qi] is query qi's top-k heap over shard si.
	per := make([][]minHeap, len(ix.shards))
	ix.fanOut(opts.effectiveWorkers(len(ix.shards)), func(si int, buf []float32) {
		hs := make([]minHeap, len(prepared))
		for qi := range hs {
			hs[qi] = make(minHeap, 0, opts.K)
		}
		sp := ix.shards[si]
		dim := ix.mat.Dim
		data := ix.mat.Data()
		for b := sp.lo; b < sp.hi; b += blockRows {
			n := min(blockRows, sp.hi-b)
			block := data[b*dim : (b+n)*dim : (b+n)*dim]
			for qi, q := range prepared {
				scores := buf[:n]
				vecmath.DotRows(scores, block, q)
				sift(&hs[qi], scores, int32(b), opts.K, opts.Skip)
			}
		}
		per[si] = hs
	})
	shardHeaps := make([]minHeap, len(ix.shards))
	for qi := range out {
		for si := range per {
			shardHeaps[si] = per[si][qi]
		}
		out[qi] = mergeTopK(shardHeaps, opts.K)
	}
	return out
}

// prepared returns the query to scan with: the caller's slice as-is, or a
// normalized private copy when opts.Normalize is set.
func (ix *Index) prepared(q []float32, opts Options) []float32 {
	if !opts.Normalize {
		return q
	}
	qc := make([]float32, len(q))
	copy(qc, q)
	vecmath.Normalize(qc)
	return qc
}

// effectiveWorkers bounds the fan-out width by the shard count.
func (o Options) effectiveWorkers(shards int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// fanOut runs work(shardIndex, scratch) for every shard on up to workers
// goroutines. Each worker owns one scratch score buffer for its lifetime.
func (ix *Index) fanOut(workers int, work func(si int, buf []float32)) {
	if workers == 1 {
		buf := make([]float32, blockRows)
		for si := range ix.shards {
			work(si, buf)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float32, blockRows)
			for {
				si := int(next.Add(1))
				if si >= len(ix.shards) {
					return
				}
				work(si, buf)
			}
		}()
	}
	wg.Wait()
}

// scanShard reduces one shard into h: scores are computed one tile at a
// time by the blocked kernel, then folded into the k-bounded min-heap in
// ascending row order (which keeps tie handling identical to a serial
// scan).
func (ix *Index) scanShard(h *minHeap, buf []float32, q []float32, sp span, k int, skip func(int32) bool) {
	dim := ix.mat.Dim
	data := ix.mat.Data()
	for b := sp.lo; b < sp.hi; b += blockRows {
		n := min(blockRows, sp.hi-b)
		scores := buf[:n]
		vecmath.DotRows(scores, data[b*dim:(b+n)*dim:(b+n)*dim], q)
		sift(h, scores, int32(b), k, skip)
	}
}

// sift folds one tile of scores (for rows base, base+1, …) into the heap.
// The no-skip fast path caches the heap-root threshold in a local so the
// common case — a row that does not make the top-k — costs one float
// compare per row.
func sift(h *minHeap, scores []float32, base int32, k int, skip func(int32) bool) {
	i := 0
	for ; i < len(scores) && len(*h) < k; i++ {
		id := base + int32(i)
		if skip != nil && skip(id) {
			continue
		}
		heap.Push(h, Result{ID: id, Score: scores[i]})
	}
	if i == len(scores) {
		return
	}
	root := (*h)[0].Score
	if skip == nil {
		for ; i < len(scores); i++ {
			if s := scores[i]; s > root {
				(*h)[0] = Result{ID: base + int32(i), Score: s}
				heap.Fix(h, 0)
				root = (*h)[0].Score
			}
		}
		return
	}
	for ; i < len(scores); i++ {
		if s := scores[i]; s > root && !skip(base+int32(i)) {
			(*h)[0] = Result{ID: base + int32(i), Score: s}
			heap.Fix(h, 0)
			root = (*h)[0].Score
		}
	}
}

// mergeTopK concatenates per-shard heaps and selects the global top-k
// under the total order (score desc, id asc). Because the order is total,
// the outcome is independent of shard boundaries and merge order.
func mergeTopK(per []minHeap, k int) []Result {
	total := 0
	for _, h := range per {
		total += len(h)
	}
	all := make([]Result, 0, total)
	for _, h := range per {
		all = append(all, h...)
	}
	sortResults(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// sortResults orders by score descending, breaking ties by id ascending —
// the engine's canonical total order.
func sortResults(rs []Result) {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Score != rs[b].Score {
			return rs[a].Score > rs[b].Score
		}
		return rs[a].ID < rs[b].ID
	})
}

// Search returns the top-k rows by dot product with query, descending.
//
// Deprecated: use Query with Options{K: k, Skip: skip}.
func (ix *Index) Search(query []float32, k int, skip func(int32) bool) []Result {
	return ix.Query(query, Options{K: k, Skip: skip})
}

// SearchNormalized is Search with the query L2-normalized first.
//
// Deprecated: use Query with Options{K: k, Normalize: true, Skip: skip}.
func (ix *Index) SearchNormalized(query []float32, k int, skip func(int32) bool) []Result {
	return ix.Query(query, Options{K: k, Normalize: true, Skip: skip})
}

// SearchBatch runs Search for many queries and returns results in query
// order. skip receives (queryIndex, candidateID).
//
// Deprecated: use QueryBatch, whose Options.Skip matches the single-query
// signature; for per-query exclusion query k+1 and drop the known id.
func (ix *Index) SearchBatch(queries [][]float32, k int, skip func(int, int32) bool) [][]Result {
	if skip == nil {
		return ix.QueryBatch(queries, Options{K: k})
	}
	out := make([][]Result, len(queries))
	for i := range queries {
		qi := i
		out[i] = ix.Query(queries[i], Options{K: k, Skip: func(id int32) bool { return skip(qi, id) }})
	}
	return out
}

// minHeap keeps the k best results with the worst at the root.
type minHeap []Result

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
