// Package knn is the retrieval engine of the matching stage ("the K most
// similar items", §IV-A). It offers two execution strategies behind one
// Options API:
//
//   - Index "flat" (the default): an exact top-K scan. The matrix is split
//     into row shards, every query fans out across shards on a bounded
//     worker pool, each shard is scored with the cache-blocked SIMD kernel
//     in internal/vecmath and reduced into a per-shard top-k min-heap, and
//     the shard heaps merge under the total order (score desc, id asc).
//
//   - Index "ivf": a sub-linear approximate scan, the shape production
//     systems put in front of a 25M–800M item corpus. Rows are clustered
//     under deterministic k-means coarse centroids (see ivf.go); a query
//     probes the Options.NProbe most promising clusters, optionally scores
//     the shortlist with int8 quantized dot products (4x less memory
//     traffic), and re-ranks the candidates with the exact float32 kernel —
//     so served scores are always exact floats, only membership of the
//     candidate set is approximate. NProbe >= the cluster count degenerates
//     to an exhaustive scan that is bit-identical to "flat".
//
// Determinism guarantee: for a given matrix, query and Options, results
// are bit-identical across shard count, worker count, batching, and
// platform. Two facts carry this: scores come from one fixed accumulation
// schedule (vecmath.DotRows == vecmath.DotRowsRef, bit-exact), and top-k
// selection is performed entirely under the total order (score desc,
// id asc) — including tie-breaks at the heap boundary — so it has exactly
// one answer no matter how the scan is partitioned or which candidates an
// IVF probe surfaces.
//
// Cancellation: Query and QueryBatch take a context.Context, checked at
// tile and shard boundaries (one tile is 256 rows), so a serving timeout
// or a client disconnect stops the scan within one tile of work instead of
// burning CPU on an answer nobody will read. A cancelled call returns an
// error wrapping both ErrCanceled and the context's own error; a call that
// completes is bit-identical to an uncancellable one — the checks only
// ever decide whether to keep going, never what a kept result contains.
//
// The only entry points are Query and QueryBatch, both taking a context
// and Options — every read path is cancellable by construction.
package knn

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sisg/internal/emb"
	"sisg/internal/vecmath"
)

// ErrCanceled is the sentinel wrapped by every error a cancelled Query or
// QueryBatch returns. The returned error also wraps the context's own
// error, so callers can distinguish a client that went away
// (context.Canceled) from a deadline that fired (context.DeadlineExceeded)
// with errors.Is on either.
var ErrCanceled = errors.New("knn: query canceled")

// canceledErr wraps a non-nil context error in the package sentinel.
func canceledErr(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Result is one retrieved neighbour.
type Result struct {
	ID    int32
	Score float32
}

// Index strategy names accepted by Options.Index.
const (
	// IndexFlat is the exact sharded scan (the default).
	IndexFlat = "flat"
	// IndexIVF is the approximate inverted-file index: probe NProbe
	// k-means clusters, exact float32 re-rank of the candidates.
	IndexIVF = "ivf"
)

// Options controls one Query or QueryBatch call.
type Options struct {
	// K is the number of neighbours to return (<=0 returns nil).
	K int
	// Normalize L2-normalizes a private copy of the query before scoring,
	// turning dot products against a normalized index into cosine
	// similarities. The caller's slice is never mutated.
	Normalize bool
	// Skip, if non-nil, excludes rows from the result (typically the query
	// item itself). In QueryBatch the same predicate applies to every
	// query in the batch; per-query exclusion is done by querying k+1 and
	// dropping the known id, or by issuing single Query calls.
	Skip func(int32) bool
	// Parallelism bounds the workers fanning one call across shards
	// (<=0 means GOMAXPROCS). It affects speed only, never results.
	Parallelism int
	// Index selects the execution strategy: "" or IndexFlat for the exact
	// scan, IndexIVF for the approximate inverted-file index. The IVF
	// layer is built lazily (and exactly once) on the first IVF query.
	Index string
	// NProbe is the number of non-empty IVF clusters a query inspects
	// (<=0 means a default of about sqrt(nlist)). Larger values trade
	// speed for recall; NProbe >= the cluster count is an exhaustive scan,
	// bit-identical to IndexFlat. Only meaningful with IndexIVF.
	NProbe int
	// Quantized scores the IVF shortlist with int8 quantized dot products
	// before the exact float32 re-rank — 4x less scan traffic at a small
	// recall cost (measured by sisg-bench -ann). Only meaningful with
	// IndexIVF; served scores stay exact float32 either way.
	Quantized bool
}

// Validate reports whether the options describe an executable query:
// positive K, a known Index name, and NProbe/Quantized only combined with
// the IVF index. It is the validation surface API layers (the /v1 server)
// map onto their own error envelopes; Query panics on an unknown index
// name rather than silently falling back.
func (o Options) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("knn: k must be positive, got %d", o.K)
	}
	switch o.Index {
	case "", IndexFlat:
		if o.NProbe != 0 {
			return fmt.Errorf("knn: nprobe is only meaningful with index=%s", IndexIVF)
		}
		if o.Quantized {
			return fmt.Errorf("knn: quantized is only meaningful with index=%s", IndexIVF)
		}
	case IndexIVF:
		if o.NProbe < 0 {
			return fmt.Errorf("knn: nprobe must be >= 0 (0 means default), got %d", o.NProbe)
		}
	default:
		return fmt.Errorf("knn: unknown index %q (want %q or %q)", o.Index, IndexFlat, IndexIVF)
	}
	return nil
}

// wantIVF reports whether the options select the IVF strategy, panicking
// on an unknown index name (callers with untrusted input run Validate
// first).
func (o Options) wantIVF() bool {
	switch o.Index {
	case "", IndexFlat:
		return false
	case IndexIVF:
		return true
	default:
		panic("knn: unknown index " + o.Index)
	}
}

// blockRows is the scan tile: scores are computed blockRows rows at a time
// into a scratch buffer, so the kernel runs branch-free over contiguous
// memory and a batch can reuse a resident block across queries.
// 256 rows × 128 dims × 4 B = 128 KiB, comfortably inside L2.
const blockRows = 256

// span is one shard's half-open row range.
type span struct{ lo, hi int }

// Index is a sharded retrieval index over the first rows rows of a
// matrix. It is immutable after construction and safe for concurrent use
// (the lazily built IVF layer is guarded by a sync.Once).
type Index struct {
	mat    *emb.Matrix
	rows   int
	shards []span

	// tiles counts scan work actually performed, in tile units (one unit
	// is one kernel pass over up to blockRows rows, or the IVF
	// equivalent). It exists so cancellation is *provable*: a test or a
	// serving metric can assert that a cancelled query stopped scanning
	// instead of trusting that it did.
	tiles atomic.Uint64

	ivfOnce sync.Once
	ivf     *ivfIndex
}

// NewIndex builds an index over the first rows rows of mat with automatic
// sharding (one shard per CPU, fewer for small matrices). rows <= 0 means
// all rows. When normalize is set the matrix is copied and row-normalized
// (dot products become cosines); otherwise the index holds a reference and
// callers must not mutate mat during searches.
func NewIndex(mat *emb.Matrix, rows int, normalize bool) *Index {
	return NewIndexSharded(mat, rows, normalize, 0)
}

// NewIndexSharded is NewIndex with an explicit shard count (<=0 means
// automatic). Shard count affects parallel speed only: results are
// bit-identical at every shard count.
func NewIndexSharded(mat *emb.Matrix, rows int, normalize bool, shards int) *Index {
	if rows <= 0 || rows > mat.Rows() {
		rows = mat.Rows()
	}
	if normalize {
		mat = emb.NormalizedCopy(mat)
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// No point cutting shards smaller than a scan tile.
	if maxShards := (rows + blockRows - 1) / blockRows; shards > maxShards {
		shards = maxShards
	}
	if shards < 1 {
		shards = 1
	}
	ix := &Index{mat: mat, rows: rows, shards: make([]span, 0, shards)}
	for s := 0; s < shards; s++ {
		lo := rows * s / shards
		hi := rows * (s + 1) / shards
		if lo < hi {
			ix.shards = append(ix.shards, span{lo, hi})
		}
	}
	return ix
}

// Rows returns the number of indexed rows.
func (ix *Index) Rows() int { return ix.rows }

// Shards returns the number of row shards.
func (ix *Index) Shards() int { return len(ix.shards) }

// Dim returns the embedding dimensionality of the indexed rows.
func (ix *Index) Dim() int { return ix.mat.Dim }

// TilesScanned returns the cumulative scan work this index has performed,
// in tile units (one unit ≈ one kernel pass over up to 256 rows). The
// counter is monotone and safe to read concurrently; the difference across
// a call bounds the work that call did — which is how tests prove a
// cancelled query stopped scanning.
func (ix *Index) TilesScanned() uint64 { return ix.tiles.Load() }

// Query returns the top-K rows by dot product with q under the total
// order (score desc, id asc), honouring opts. The query slice is
// read-only. Results are bit-identical to a serial scan regardless of
// sharding and parallelism.
//
// ctx is checked at tile and shard boundaries: when it is cancelled the
// call stops scanning within one tile per worker and returns an error
// wrapping ErrCanceled and ctx.Err(). A nil result with a nil error means
// the query asked for nothing (K <= 0 or an empty index).
func (ix *Index) Query(ctx context.Context, q []float32, opts Options) ([]Result, error) {
	if opts.K <= 0 || ix.rows == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(err)
	}
	q = ix.prepared(q, opts)
	if opts.wantIVF() {
		return ix.queryIVF(ctx, q, opts)
	}
	per := make([]minHeap, len(ix.shards))
	err := ix.fanOut(ctx, opts.effectiveWorkers(len(ix.shards)), func(si int, buf []float32) error {
		h := make(minHeap, 0, opts.K)
		if err := ix.scanShard(ctx, &h, buf, q, ix.shards[si], opts.K, opts.Skip); err != nil {
			return err
		}
		per[si] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeTopK(per, opts.K), nil
}

// QueryBatch runs Query for every query in qs under one shared Options
// and returns results in query order. Queries are coalesced per shard:
// each scan tile of rows is streamed once and scored against every query
// while it is cache-resident, so a batch costs far less memory traffic
// than len(qs) single queries. Results are bit-identical to len(qs)
// independent Query calls. Cancellation follows Query: checked per tile,
// the whole batch fails with one error wrapping ErrCanceled.
func (ix *Index) QueryBatch(ctx context.Context, qs [][]float32, opts Options) ([][]Result, error) {
	out := make([][]Result, len(qs))
	if opts.K <= 0 || ix.rows == 0 || len(qs) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(err)
	}
	prepared := make([][]float32, len(qs))
	for i, q := range qs {
		prepared[i] = ix.prepared(q, opts)
	}
	if opts.wantIVF() {
		return ix.queryBatchIVF(ctx, prepared, opts, out)
	}
	// per[si][qi] is query qi's top-k heap over shard si.
	per := make([][]minHeap, len(ix.shards))
	err := ix.fanOut(ctx, opts.effectiveWorkers(len(ix.shards)), func(si int, buf []float32) error {
		hs := make([]minHeap, len(prepared))
		for qi := range hs {
			hs[qi] = make(minHeap, 0, opts.K)
		}
		sp := ix.shards[si]
		dim := ix.mat.Dim
		data := ix.mat.Data()
		for b := sp.lo; b < sp.hi; b += blockRows {
			if err := ctx.Err(); err != nil {
				return canceledErr(err)
			}
			n := min(blockRows, sp.hi-b)
			block := data[b*dim : (b+n)*dim : (b+n)*dim]
			for qi, q := range prepared {
				scores := buf[:n]
				vecmath.DotRows(scores, block, q)
				sift(&hs[qi], scores, int32(b), opts.K, opts.Skip)
			}
			ix.tiles.Add(uint64(len(prepared)))
		}
		per[si] = hs
		return nil
	})
	if err != nil {
		return nil, err
	}
	shardHeaps := make([]minHeap, len(ix.shards))
	for qi := range out {
		for si := range per {
			shardHeaps[si] = per[si][qi]
		}
		out[qi] = mergeTopK(shardHeaps, opts.K)
	}
	return out, nil
}

// prepared returns the query to scan with: the caller's slice as-is, or a
// normalized private copy when opts.Normalize is set.
func (ix *Index) prepared(q []float32, opts Options) []float32 {
	if !opts.Normalize {
		return q
	}
	qc := make([]float32, len(q))
	copy(qc, q)
	vecmath.Normalize(qc)
	return qc
}

// effectiveWorkers bounds the fan-out width by the shard count.
func (o Options) effectiveWorkers(shards int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// fanOut runs work(shardIndex, scratch) for every shard on up to workers
// goroutines. Each worker owns one scratch score buffer for its lifetime.
// When any work call errors, remaining shards are skipped (workers drain
// the shard counter without scanning) and the call returns one error
// derived from ctx — every error path here is a cancellation, so the
// context is the authority on why.
func (ix *Index) fanOut(ctx context.Context, workers int, work func(si int, buf []float32) error) error {
	if workers == 1 {
		buf := make([]float32, blockRows)
		for si := range ix.shards {
			if err := work(si, buf); err != nil {
				return err
			}
		}
		return nil
	}
	var failed atomic.Bool
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float32, blockRows)
			for {
				si := int(next.Add(1))
				if si >= len(ix.shards) {
					return
				}
				if failed.Load() {
					continue // drain remaining shards without scanning
				}
				if err := work(si, buf); err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return canceledErr(ctx.Err())
	}
	return nil
}

// scanShard reduces one shard into h: scores are computed one tile at a
// time by the blocked kernel, then folded into the k-bounded min-heap in
// ascending row order (which keeps tie handling identical to a serial
// scan). The context is checked once per tile — cancellation abandons the
// shard within one tile of work.
func (ix *Index) scanShard(ctx context.Context, h *minHeap, buf []float32, q []float32, sp span, k int, skip func(int32) bool) error {
	dim := ix.mat.Dim
	data := ix.mat.Data()
	for b := sp.lo; b < sp.hi; b += blockRows {
		if err := ctx.Err(); err != nil {
			return canceledErr(err)
		}
		n := min(blockRows, sp.hi-b)
		scores := buf[:n]
		vecmath.DotRows(scores, data[b*dim:(b+n)*dim:(b+n)*dim], q)
		sift(h, scores, int32(b), k, skip)
		ix.tiles.Add(1)
	}
	return nil
}

// better reports whether a beats b under the engine's canonical total
// order (score desc, id asc). Because the order is total, "the top-k set"
// is uniquely defined and every selection below is enumeration-order
// independent.
func better(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// pushBounded folds one candidate into a k-bounded min-heap whose root is
// the worst kept result under the total order. Replacement uses the full
// total order (not just score), so exact ties at the k boundary resolve to
// the lowest id no matter the order candidates arrive in — the property
// the IVF path leans on, since probe order is score-driven, not id-driven.
func pushBounded(h *minHeap, r Result, k int) {
	if len(*h) < k {
		heap.Push(h, r)
		return
	}
	if better(r, (*h)[0]) {
		(*h)[0] = r
		heap.Fix(h, 0)
	}
}

// sift folds one tile of scores (for rows base, base+1, …) into the heap.
// The no-skip fast path caches the heap-root threshold in a local so the
// common case — a row that does not make the top-k — costs one float
// compare per row; the id comparison only runs on an exact score tie with
// the root.
func sift(h *minHeap, scores []float32, base int32, k int, skip func(int32) bool) {
	i := 0
	for ; i < len(scores) && len(*h) < k; i++ {
		id := base + int32(i)
		if skip != nil && skip(id) {
			continue
		}
		heap.Push(h, Result{ID: id, Score: scores[i]})
	}
	if i == len(scores) {
		return
	}
	root := (*h)[0]
	if skip == nil {
		for ; i < len(scores); i++ {
			if r := (Result{ID: base + int32(i), Score: scores[i]}); better(r, root) {
				(*h)[0] = r
				heap.Fix(h, 0)
				root = (*h)[0]
			}
		}
		return
	}
	for ; i < len(scores); i++ {
		if r := (Result{ID: base + int32(i), Score: scores[i]}); better(r, root) && !skip(r.ID) {
			(*h)[0] = r
			heap.Fix(h, 0)
			root = (*h)[0]
		}
	}
}

// mergeTopK concatenates per-shard heaps and selects the global top-k
// under the total order (score desc, id asc). Because the order is total,
// the outcome is independent of shard boundaries and merge order.
func mergeTopK(per []minHeap, k int) []Result {
	total := 0
	for _, h := range per {
		total += len(h)
	}
	all := make([]Result, 0, total)
	for _, h := range per {
		all = append(all, h...)
	}
	sortResults(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// sortResults orders by score descending, breaking ties by id ascending —
// the engine's canonical total order.
func sortResults(rs []Result) {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Score != rs[b].Score {
			return rs[a].Score > rs[b].Score
		}
		return rs[a].ID < rs[b].ID
	})
}

// minHeap keeps the k best results with the worst — under the canonical
// total order (score desc, id asc) — at the root, so boundary evictions
// are deterministic even on exact score ties.
type minHeap []Result

func (h minHeap) Len() int { return len(h) }
func (h minHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
