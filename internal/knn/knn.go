// Package knn provides exact top-K retrieval over embedding matrices — the
// matching stage's candidate generation ("the K most similar items",
// §IV-A). Production systems put an ANN index here; for the corpus sizes in
// this reproduction an exact, parallel brute-force scan is both simpler and
// fast enough, and it removes retrieval error from the HitRate comparison
// between model variants.
package knn

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"

	"sisg/internal/emb"
	"sisg/internal/vecmath"
)

// Result is one retrieved neighbour.
type Result struct {
	ID    int32
	Score float32
}

// Index scans rows [0, rows) of a matrix. If normalize is true the rows are
// copied and L2-normalized so dot products become cosine similarities (the
// symmetric-model scoring rule); if false raw dot products are returned
// (the directed in·out scoring rule).
type Index struct {
	mat  *emb.Matrix
	rows int
}

// NewIndex builds an index over the first rows rows of mat. rows <= 0 means
// all rows. When normalize is set the matrix is copied; otherwise the index
// holds a reference and callers must not mutate mat during searches.
func NewIndex(mat *emb.Matrix, rows int, normalize bool) *Index {
	if rows <= 0 || rows > mat.Rows() {
		rows = mat.Rows()
	}
	if normalize {
		mat = emb.NormalizedCopy(mat)
	}
	return &Index{mat: mat, rows: rows}
}

// Rows returns the number of indexed rows.
func (ix *Index) Rows() int { return ix.rows }

// Search returns the top-k rows by dot product with query, descending.
// skip, if non-nil, excludes rows (typically the query item itself).
// The query slice is read-only.
func (ix *Index) Search(query []float32, k int, skip func(int32) bool) []Result {
	if k <= 0 {
		return nil
	}
	h := make(minHeap, 0, k)
	for i := 0; i < ix.rows; i++ {
		id := int32(i)
		if skip != nil && skip(id) {
			continue
		}
		s := vecmath.Dot(query, ix.mat.Row(id))
		if len(h) < k {
			heap.Push(&h, Result{ID: id, Score: s})
		} else if s > h[0].Score {
			h[0] = Result{ID: id, Score: s}
			heap.Fix(&h, 0)
		}
	}
	sort.Slice(h, func(a, b int) bool {
		if h[a].Score != h[b].Score {
			return h[a].Score > h[b].Score
		}
		return h[a].ID < h[b].ID
	})
	return h
}

// SearchNormalized is Search with the query L2-normalized first; combined
// with a normalized index this yields true cosine scores.
func (ix *Index) SearchNormalized(query []float32, k int, skip func(int32) bool) []Result {
	q := make([]float32, len(query))
	copy(q, query)
	vecmath.Normalize(q)
	return ix.Search(q, k, skip)
}

// SearchBatch runs Search for many queries in parallel and returns results
// in query order. skip receives (queryIndex, candidateID).
func (ix *Index) SearchBatch(queries [][]float32, k int, skip func(int, int32) bool) [][]Result {
	out := make([][]Result, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	var next int64 = -1
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		next++
		return int(next)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= len(queries) {
					return
				}
				var sk func(int32) bool
				if skip != nil {
					sk = func(id int32) bool { return skip(i, id) }
				}
				out[i] = ix.Search(queries[i], k, sk)
			}
		}()
	}
	wg.Wait()
	return out
}

// minHeap keeps the k best results with the worst at the root.
type minHeap []Result

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
