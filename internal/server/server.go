// Package server implements the matching-stage HTTP service: the
// production surface that hands candidate sets to the ranking stage. It
// covers the paper's three retrieval paths — item-to-item similarity (§II),
// cold-start items via Eq. 6 (§IV-C2) and cold-start users via user-type
// averaging (§IV-C1) — plus liveness (/healthz), readiness (/readyz,
// 503 while warming up or draining), serving statistics and a Prometheus
// /metrics exposition.
//
// Cold-start endpoints accept both GET (catalog items / demographic query
// parameters) and POST (a JSON body naming raw SI tokens or demographics),
// because the production cold-start case is precisely an item or user the
// catalog does not know yet.
//
// The retrieval API is versioned: /v1/similar, /v1/coldstart/item,
// /v1/coldstart/user and /v1/stats are the canonical paths, with the
// unversioned spellings kept as legacy aliases. Every error — bad input,
// shed load, timeout, recovered panic — is answered with one JSON shape:
// {"error":{"code":"...","message":"..."}}.
//
// The package is the testable core behind cmd/sisg-server.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/metrics"
	"sisg/internal/sisg"
)

// Candidate is one entry of a served candidate set, carrying enough catalog
// metadata for a downstream ranker.
type Candidate struct {
	Item  int32   `json:"item"`
	Score float32 `json:"score"`
	Leaf  int32   `json:"leaf"`
	Brand int32   `json:"brand"`
	Tier  int8    `json:"tier"`
}

// Stats are cumulative serving counters, exposed at /stats (JSON) and, in
// richer form, at /metrics (Prometheus text format).
type Stats struct {
	Similar      uint64 `json:"similar"`
	ColdItem     uint64 `json:"cold_item"`
	ColdUser     uint64 `json:"cold_user"`
	ClientErrors uint64 `json:"client_errors"`
	Panics       uint64 `json:"panics"` // requests answered 500 after a recovered handler panic
	Shed         uint64 `json:"shed"`   // requests answered 503 by the concurrency limiter
}

// Config tunes the hardening envelope around the handlers. The zero value
// gets production-safe defaults for every field.
type Config struct {
	// MaxK bounds the candidate-set size a single request may ask for
	// (<=0 means 1000).
	MaxK int
	// MaxInFlight bounds concurrently executing requests; excess load is
	// shed immediately with 503 + Retry-After instead of queueing until
	// everything is slow (<=0 means 256).
	MaxInFlight int
	// RequestTimeout bounds one request's handling time; a request that
	// exceeds it is answered 503 (<=0 means 10s).
	RequestTimeout time.Duration
	// RetryAfter is the back-off advertised on shed responses, rounded up
	// to whole seconds (<=0 means 1s).
	RetryAfter time.Duration
	// Metrics is the registry the server instruments itself on. Nil means
	// a private registry; pass a shared one to co-locate serving and
	// training series in a single /metrics page.
	Metrics *metrics.Registry
	// LatencyBuckets overrides the request-latency histogram bounds
	// (seconds, ascending). Nil means metrics.DefBuckets.
	LatencyBuckets []float64
	// CacheSize bounds the /similar result cache in entries. Production
	// matching traffic is heavily head-skewed, so a modest cache absorbs a
	// large fraction of full-matrix scans. <=0 disables caching.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// endpointMetrics is the pre-registered per-endpoint instrument set, so the
// request path never takes the registry lock.
type endpointMetrics struct {
	latency *metrics.Histogram
	codes   map[string]*metrics.Counter // "2xx", "3xx", "4xx", "5xx"
}

// Server serves one trained model over one catalog.
type Server struct {
	ds    *corpus.Dataset
	model *sisg.Model
	maxK  int
	cfg   Config
	sem   chan struct{} // concurrency limiter; holds MaxInFlight tokens

	// notReady inverts readiness so the zero value (and every existing
	// constructor call) starts ready. /healthz keeps answering 200 while
	// not ready — the process is alive — but /readyz answers 503, which is
	// what a load balancer keys traffic on during warm-up and drain.
	notReady atomic.Bool

	reg *metrics.Registry
	// Serving counters (registry-backed; Stats() snapshots them).
	similar      *metrics.Counter
	coldItem     *metrics.Counter
	coldUser     *metrics.Counter
	clientErrors *metrics.Counter
	panics       *metrics.Counter
	shed         *metrics.Counter

	endpoints map[string]*endpointMetrics

	// cache, when non-nil, memoizes /similar result sets keyed by
	// (item, k); values are shared read-only slices.
	cache        *knn.LRU
	cacheHits    *metrics.Counter
	cacheMisses  *metrics.Counter
	scanSeconds  *metrics.Histogram
	cacheSeconds *metrics.Histogram
}

// knownPaths are the routes instrumented with their own label value;
// anything else shares the "other" series so label cardinality stays
// bounded no matter what clients probe. The /v1 aliases get their own
// series — the split tells you how far client migration has progressed.
var knownPaths = []string{
	"/similar", "/coldstart/item", "/coldstart/user",
	"/v1/similar", "/v1/coldstart/item", "/v1/coldstart/user", "/v1/stats",
	"/healthz", "/readyz", "/stats", "/metrics",
}

// New returns a server for the given dataset and model with default
// hardening. maxK bounds the candidate-set size a single request may ask
// for (<=0 means 1000).
func New(ds *corpus.Dataset, model *sisg.Model, maxK int) *Server {
	return NewConfigured(ds, model, Config{MaxK: maxK})
}

// NewConfigured returns a server with explicit hardening limits.
func NewConfigured(ds *corpus.Dataset, model *sisg.Model, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	s := &Server{
		ds: ds, model: model, maxK: cfg.MaxK, cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInFlight),
		reg: reg,

		similar:      reg.Counter("serve_candidates_total", "candidate sets served, by retrieval path", metrics.L("path", "/similar")),
		coldItem:     reg.Counter("serve_candidates_total", "candidate sets served, by retrieval path", metrics.L("path", "/coldstart/item")),
		coldUser:     reg.Counter("serve_candidates_total", "candidate sets served, by retrieval path", metrics.L("path", "/coldstart/user")),
		clientErrors: reg.Counter("http_client_errors_total", "requests rejected 400 for malformed input"),
		panics:       reg.Counter("http_panics_total", "requests answered 500 after a recovered handler panic"),
		shed:         reg.Counter("http_shed_total", "requests answered 503 by the concurrency limiter"),

		endpoints: make(map[string]*endpointMetrics, len(knownPaths)+1),
	}
	for _, p := range append(append([]string(nil), knownPaths...), "other") {
		em := &endpointMetrics{
			latency: reg.Histogram("http_request_duration_seconds", "request handling latency", cfg.LatencyBuckets, metrics.L("path", p)),
			codes:   make(map[string]*metrics.Counter, 4),
		}
		for _, cls := range []string{"2xx", "3xx", "4xx", "5xx"} {
			em.codes[cls] = reg.Counter("http_requests_total", "requests handled, by path and status class",
				metrics.L("path", p), metrics.L("code", cls))
		}
		s.endpoints[p] = em
	}
	reg.GaugeFunc("http_inflight", "requests currently executing", func() float64 {
		return float64(len(s.sem))
	})
	s.scanSeconds = reg.Histogram("retrieval_seconds", "similar-item retrieval latency, by source", cfg.LatencyBuckets, metrics.L("source", "scan"))
	s.cacheSeconds = reg.Histogram("retrieval_seconds", "similar-item retrieval latency, by source", cfg.LatencyBuckets, metrics.L("source", "cache"))
	if cfg.CacheSize > 0 {
		s.cache = knn.NewLRU(cfg.CacheSize)
		s.cacheHits = reg.Counter("retrieval_cache_hits_total", "/similar requests answered from the result cache")
		s.cacheMisses = reg.Counter("retrieval_cache_misses_total", "/similar requests that fell through to a full scan")
		reg.GaugeFunc("retrieval_cache_entries", "entries currently held by the /similar result cache", func() float64 {
			return float64(s.cache.Len())
		})
	}
	return s
}

// Registry returns the metrics registry the server reports on.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the routed HTTP handler wrapped in the hardening chain.
//
// The retrieval API is versioned under /v1/; the unversioned paths are
// legacy aliases kept for existing integrations and serve byte-identical
// responses. Operational endpoints (/healthz, /readyz, /metrics) stay
// unversioned — they speak to infrastructure, not API clients.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/similar", s.handleSimilar)
	mux.HandleFunc("/v1/coldstart/item", s.handleColdItem)
	mux.HandleFunc("/v1/coldstart/user", s.handleColdUser)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/similar", s.handleSimilar)
	mux.HandleFunc("/coldstart/item", s.handleColdItem)
	mux.HandleFunc("/coldstart/user", s.handleColdUser)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/metrics", s.reg.Handler())
	return s.harden(mux)
}

// harden wraps a handler in the protection chain, outermost first: panic
// recovery (a handler bug answers 500 and is counted, instead of killing
// the whole process), per-endpoint instrumentation (so shed, timed-out and
// panicking requests are all measured), load shedding (overload answers
// 503 + Retry-After immediately), and a per-request deadline (one stuck
// request cannot hold a connection forever).
func (s *Server) harden(h http.Handler) http.Handler {
	return s.withRecovery(s.instrument(s.withLimit(http.TimeoutHandler(h, s.cfg.RequestTimeout, timeoutBody))))
}

// timeoutBody is the envelope http.TimeoutHandler writes on 503; it cannot
// call writeError, so the JSON is spelled out.
const timeoutBody = `{"error":{"code":"timeout","message":"request timed out"}}`

// errorEnvelope is the uniform error shape of the API, on every path and
// every failure mode: {"error":{"code":"...","message":"..."}}. code is a
// small stable enum (bad_request, overloaded, timeout, internal) meant for
// programs; message is prose meant for humans.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: code, Message: message}})
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument records one latency observation and one status-class count per
// request, labeled by endpoint. It sits INSIDE the recovery wrapper so a
// panicking request is still measured (as a 5xx): the deferred accounting
// runs while the panic unwinds, before withRecovery converts it to a 500.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		em, ok := s.endpoints[r.URL.Path]
		if !ok {
			em = s.endpoints["other"]
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		finished := false
		defer func() {
			em.latency.ObserveSince(start)
			code := rec.code
			if !finished && code == 0 {
				// Panic in flight before anything was written; the
				// recovery wrapper above will answer 500.
				code = http.StatusInternalServerError
			}
			if code == 0 {
				code = http.StatusOK
			}
			cls := strconv.Itoa(code/100) + "xx"
			if c, ok := em.codes[cls]; ok {
				c.Inc()
			} else {
				em.codes["5xx"].Inc()
			}
		}()
		h.ServeHTTP(rec, r)
		finished = true
	})
}

// withRecovery converts a handler panic into a 500 plus a counter bump.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response, not a bug.
func (s *Server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.panics.Inc()
				writeError(w, http.StatusInternalServerError, "internal", "internal server error")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// withLimit sheds load beyond MaxInFlight concurrent requests with
// 503 + Retry-After, keeping latency bounded for the requests it accepts.
func (s *Server) withLimit(h http.Handler) http.Handler {
	retryAfter := strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds())))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusServiceUnavailable, "overloaded", "server overloaded, retry later")
		}
	})
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Similar:      s.similar.Value(),
		ColdItem:     s.coldItem.Value(),
		ColdUser:     s.coldUser.Value(),
		ClientErrors: s.clientErrors.Value(),
		Panics:       s.panics.Value(),
		Shed:         s.shed.Value(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"status":  "ok",
		"variant": s.model.Variant.Name,
		"items":   s.ds.Dict.NumItems,
		"vocab":   s.ds.Dict.Len(),
		"dim":     s.model.Emb.Dim(),
	})
}

// SetReady flips the /readyz answer. A server starts ready; flip it false
// before http.Server.Shutdown so the load balancer stops routing new
// traffic here while in-flight requests drain (liveness stays 200
// throughout — killing a draining pod would truncate those requests).
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the current /readyz answer.
func (s *Server) Ready() bool { return !s.notReady.Load() }

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	opts, ok := s.annOptions(w, r, k)
	if !ok {
		return
	}
	s.similar.Inc()
	start := time.Now()
	// Only the exact default scan is cached: ANN answers depend on
	// index/nprobe/quantized, and folding those into the key would let
	// approximate results shadow exact ones (and vice versa).
	if s.cache != nil && opts.Index == "" {
		key := uint64(uint32(item))<<32 | uint64(uint32(k))
		if recs, hit := s.cache.Get(key); hit {
			s.cacheHits.Inc()
			s.cacheSeconds.ObserveSince(start)
			s.writeCandidates(w, recs)
			return
		}
		recs := s.model.SimilarItems(item, k)
		s.cache.Put(key, recs)
		s.cacheMisses.Inc()
		s.scanSeconds.ObserveSince(start)
		s.writeCandidates(w, recs)
		return
	}
	recs := s.model.SimilarItemsOpts(item, k, opts)
	s.scanSeconds.ObserveSince(start)
	s.writeCandidates(w, recs)
}

// annOptions parses the retrieval-strategy query parameters (index,
// nprobe, quantized) into knn.Options and rejects inconsistent
// combinations with the engine's own Validate message. The zero Index
// (parameter absent) keeps the cached exact-scan fast path.
func (s *Server) annOptions(w http.ResponseWriter, r *http.Request, k int) (knn.Options, bool) {
	var opts knn.Options
	opts.Index = r.URL.Query().Get("index")
	nprobe, ok := intParam(r, "nprobe", 0)
	if !ok {
		s.clientError(w, "nprobe is not an integer")
		return opts, false
	}
	opts.NProbe = nprobe
	if v := r.URL.Query().Get("quantized"); v != "" {
		q, err := strconv.ParseBool(v)
		if err != nil {
			s.clientError(w, "quantized is not a boolean")
			return opts, false
		}
		opts.Quantized = q
	}
	opts.K = k // so Validate sees the full picture
	if err := opts.Validate(); err != nil {
		s.clientError(w, "%s", err)
		return opts, false
	}
	return opts, true
}

// coldItemRequest is the POST body of /coldstart/item: a brand-new item
// known only by its SI token names (Eq. 6 needs nothing else).
type coldItemRequest struct {
	SI []string `json:"si"`
	K  int      `json:"k"`
}

func (s *Server) handleColdItem(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		var req coldItemRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		k, ok := s.boundK(w, req.K)
		if !ok {
			return
		}
		if len(req.SI) == 0 {
			s.clientError(w, "si must name at least one side-information token")
			return
		}
		qv, err := s.model.ColdStartItemVectorFromNames(req.SI)
		if err != nil {
			s.clientError(w, "%v", err)
			return
		}
		s.coldItem.Inc()
		s.writeCandidates(w, s.model.SimilarToVector(qv, k, nil))
		return
	}
	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	s.coldItem.Inc()
	qv := s.model.ColdStartItemVector(s.ds.Dict.ItemSI[item])
	s.writeCandidates(w, s.model.SimilarToVector(qv, k, func(id int32) bool { return id == item }))
}

// coldUserRequest is the POST body of /coldstart/user. Age and Power are
// pointers so "absent" (match any) is distinguishable from index 0.
type coldUserRequest struct {
	Gender string `json:"gender"`
	Age    *int   `json:"age"`
	Power  *int   `json:"power"`
	K      int    `json:"k"`
}

func (s *Server) handleColdUser(w http.ResponseWriter, r *http.Request) {
	var (
		k, gender, age, power int
		ok                    bool
	)
	if r.Method == http.MethodPost {
		var req coldUserRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		if k, ok = s.boundK(w, req.K); !ok {
			return
		}
		if gender, ok = s.genderIndex(w, req.Gender); !ok {
			return
		}
		age, power = -1, -1
		if req.Age != nil {
			age = *req.Age
		}
		if req.Power != nil {
			power = *req.Power
		}
	} else {
		if k, ok = s.kParam(w, r); !ok {
			return
		}
		if gender, ok = s.genderIndex(w, r.URL.Query().Get("gender")); !ok {
			return
		}
		if age, ok = intParam(r, "age", -1); !ok {
			s.clientError(w, "age is not an integer")
			return
		}
		if power, ok = intParam(r, "power", -1); !ok {
			s.clientError(w, "power is not an integer")
			return
		}
	}
	types := s.ds.Pop.TypesMatching(gender, age, power)
	recs, err := s.model.RecommendForColdUser(types, k)
	if err != nil {
		s.clientError(w, "%v", err)
		return
	}
	s.coldUser.Inc()
	s.writeCandidates(w, recs)
}

// genderIndex resolves a gender name to its index (-1 for "any" when
// empty); unknown names are a client error.
func (s *Server) genderIndex(w http.ResponseWriter, g string) (int, bool) {
	if g == "" {
		return -1, true
	}
	for i, name := range corpus.Genders {
		if name == g {
			return i, true
		}
	}
	s.clientError(w, "unknown gender %q (want F, M or null)", g)
	return 0, false
}

// maxBodyBytes bounds cold-start POST bodies; a list of SI token names has
// no business being larger.
const maxBodyBytes = 1 << 20

// decodeBody parses a JSON POST body strictly: unknown fields, trailing
// garbage, oversized and unparseable bodies are all client errors.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.clientError(w, "bad request body: %v", err)
		return false
	}
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		s.clientError(w, "bad request body: trailing data after JSON object")
		return false
	}
	return true
}

func (s *Server) itemAndK(w http.ResponseWriter, r *http.Request) (int32, int, bool) {
	item, ok := intParam(r, "item", -1)
	if !ok {
		s.clientError(w, "item is not an integer")
		return 0, 0, false
	}
	if item < 0 || item >= s.ds.Dict.NumItems {
		s.clientError(w, "item out of range [0,%d)", s.ds.Dict.NumItems)
		return 0, 0, false
	}
	k, kok := s.kParam(w, r)
	return int32(item), k, kok
}

// boundK validates a candidate-set size from a POST body: 0 means the
// default (20); anything else must fall in (0, maxK].
func (s *Server) boundK(w http.ResponseWriter, k int) (int, bool) {
	if k == 0 {
		return 20, true
	}
	if k < 0 || k > s.maxK {
		s.clientError(w, "k must be an integer in (0,%d]", s.maxK)
		return 0, false
	}
	return k, true
}

func (s *Server) kParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	k, ok := intParam(r, "k", 20)
	if !ok || k <= 0 || k > s.maxK {
		s.clientError(w, "k must be an integer in (0,%d]", s.maxK)
		return 0, false
	}
	return k, true
}

func (s *Server) writeCandidates(w http.ResponseWriter, recs []knn.Result) {
	out := make([]Candidate, len(recs))
	for i, r := range recs {
		it := s.ds.Catalog.Items[r.ID]
		out[i] = Candidate{Item: r.ID, Score: r.Score, Leaf: it.Leaf, Brand: it.Brand, Tier: it.Tier}
	}
	writeJSON(w, out)
}

func (s *Server) clientError(w http.ResponseWriter, format string, args ...interface{}) {
	s.clientErrors.Inc()
	writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf(format, args...))
}

// intParam returns the integer query parameter, the default when absent,
// and ok=false when present but unparseable or overflowing (a client
// error, never a silent fallback).
func intParam(r *http.Request, name string, def int) (int, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
