// Package server implements the matching-stage HTTP service: the
// production surface that hands candidate sets to the ranking stage. It
// covers the paper's three retrieval paths — item-to-item similarity (§II),
// cold-start items via Eq. 6 (§IV-C2) and cold-start users via user-type
// averaging (§IV-C1) — plus liveness and serving statistics.
//
// The package is the testable core behind cmd/sisg-server.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sisg"
)

// Candidate is one entry of a served candidate set, carrying enough catalog
// metadata for a downstream ranker.
type Candidate struct {
	Item  int32   `json:"item"`
	Score float32 `json:"score"`
	Leaf  int32   `json:"leaf"`
	Brand int32   `json:"brand"`
	Tier  int8    `json:"tier"`
}

// Stats are cumulative serving counters, exposed at /stats.
type Stats struct {
	Similar      uint64 `json:"similar"`
	ColdItem     uint64 `json:"cold_item"`
	ColdUser     uint64 `json:"cold_user"`
	ClientErrors uint64 `json:"client_errors"`
}

// Server serves one trained model over one catalog.
type Server struct {
	ds    *corpus.Dataset
	model *sisg.Model
	maxK  int

	similar      atomic.Uint64
	coldItem     atomic.Uint64
	coldUser     atomic.Uint64
	clientErrors atomic.Uint64
}

// New returns a server for the given dataset and model. maxK bounds the
// candidate-set size a single request may ask for (<=0 means 1000).
func New(ds *corpus.Dataset, model *sisg.Model, maxK int) *Server {
	if maxK <= 0 {
		maxK = 1000
	}
	return &Server{ds: ds, model: model, maxK: maxK}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/similar", s.handleSimilar)
	mux.HandleFunc("/coldstart/item", s.handleColdItem)
	mux.HandleFunc("/coldstart/user", s.handleColdUser)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Similar:      s.similar.Load(),
		ColdItem:     s.coldItem.Load(),
		ColdUser:     s.coldUser.Load(),
		ClientErrors: s.clientErrors.Load(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"status":  "ok",
		"variant": s.model.Variant.Name,
		"items":   s.ds.Dict.NumItems,
		"vocab":   s.ds.Dict.Len(),
		"dim":     s.model.Emb.Dim(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	s.similar.Add(1)
	s.writeCandidates(w, s.model.SimilarItems(item, k))
}

func (s *Server) handleColdItem(w http.ResponseWriter, r *http.Request) {
	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	s.coldItem.Add(1)
	qv := s.model.ColdStartItemVector(s.ds.Dict.ItemSI[item])
	s.writeCandidates(w, s.model.SimilarToVector(qv, k, func(id int32) bool { return id == item }))
}

func (s *Server) handleColdUser(w http.ResponseWriter, r *http.Request) {
	k, ok := s.kParam(w, r)
	if !ok {
		return
	}
	gender := -1
	if g := r.URL.Query().Get("gender"); g != "" {
		for i, name := range corpus.Genders {
			if name == g {
				gender = i
			}
		}
		if gender < 0 {
			s.clientError(w, "unknown gender %q (want F, M or null)", g)
			return
		}
	}
	age, ok := intParam(r, "age", -1)
	if !ok {
		s.clientError(w, "age is not an integer")
		return
	}
	power, ok := intParam(r, "power", -1)
	if !ok {
		s.clientError(w, "power is not an integer")
		return
	}
	types := s.ds.Pop.TypesMatching(gender, age, power)
	recs, err := s.model.RecommendForColdUser(types, k)
	if err != nil {
		s.clientError(w, "%v", err)
		return
	}
	s.coldUser.Add(1)
	s.writeCandidates(w, recs)
}

func (s *Server) itemAndK(w http.ResponseWriter, r *http.Request) (int32, int, bool) {
	item, ok := intParam(r, "item", -1)
	if !ok {
		s.clientError(w, "item is not an integer")
		return 0, 0, false
	}
	if item < 0 || item >= s.ds.Dict.NumItems {
		s.clientError(w, "item out of range [0,%d)", s.ds.Dict.NumItems)
		return 0, 0, false
	}
	k, kok := s.kParam(w, r)
	return int32(item), k, kok
}

func (s *Server) kParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	k, ok := intParam(r, "k", 20)
	if !ok || k <= 0 || k > s.maxK {
		s.clientError(w, "k must be an integer in (0,%d]", s.maxK)
		return 0, false
	}
	return k, true
}

func (s *Server) writeCandidates(w http.ResponseWriter, recs []knn.Result) {
	out := make([]Candidate, len(recs))
	for i, r := range recs {
		it := s.ds.Catalog.Items[r.ID]
		out[i] = Candidate{Item: r.ID, Score: r.Score, Leaf: it.Leaf, Brand: it.Brand, Tier: it.Tier}
	}
	writeJSON(w, out)
}

func (s *Server) clientError(w http.ResponseWriter, format string, args ...interface{}) {
	s.clientErrors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), http.StatusBadRequest)
}

// intParam returns the integer query parameter, the default when absent,
// and ok=false when present but unparseable (a client error, never a
// silent fallback).
func intParam(r *http.Request, name string, def int) (int, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
