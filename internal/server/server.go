// Package server implements the matching-stage HTTP service: the
// production surface that hands candidate sets to the ranking stage. It
// covers the paper's three retrieval paths — item-to-item similarity (§II),
// cold-start items via Eq. 6 (§IV-C2) and cold-start users via user-type
// averaging (§IV-C1) — plus liveness and serving statistics.
//
// The package is the testable core behind cmd/sisg-server.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sisg"
)

// Candidate is one entry of a served candidate set, carrying enough catalog
// metadata for a downstream ranker.
type Candidate struct {
	Item  int32   `json:"item"`
	Score float32 `json:"score"`
	Leaf  int32   `json:"leaf"`
	Brand int32   `json:"brand"`
	Tier  int8    `json:"tier"`
}

// Stats are cumulative serving counters, exposed at /stats.
type Stats struct {
	Similar      uint64 `json:"similar"`
	ColdItem     uint64 `json:"cold_item"`
	ColdUser     uint64 `json:"cold_user"`
	ClientErrors uint64 `json:"client_errors"`
	Panics       uint64 `json:"panics"` // requests answered 500 after a recovered handler panic
	Shed         uint64 `json:"shed"`   // requests answered 503 by the concurrency limiter
}

// Config tunes the hardening envelope around the handlers. The zero value
// gets production-safe defaults for every field.
type Config struct {
	// MaxK bounds the candidate-set size a single request may ask for
	// (<=0 means 1000).
	MaxK int
	// MaxInFlight bounds concurrently executing requests; excess load is
	// shed immediately with 503 + Retry-After instead of queueing until
	// everything is slow (<=0 means 256).
	MaxInFlight int
	// RequestTimeout bounds one request's handling time; a request that
	// exceeds it is answered 503 (<=0 means 10s).
	RequestTimeout time.Duration
	// RetryAfter is the back-off advertised on shed responses, rounded up
	// to whole seconds (<=0 means 1s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server serves one trained model over one catalog.
type Server struct {
	ds    *corpus.Dataset
	model *sisg.Model
	maxK  int
	cfg   Config
	sem   chan struct{} // concurrency limiter; holds MaxInFlight tokens

	similar      atomic.Uint64
	coldItem     atomic.Uint64
	coldUser     atomic.Uint64
	clientErrors atomic.Uint64
	panics       atomic.Uint64
	shed         atomic.Uint64
}

// New returns a server for the given dataset and model with default
// hardening. maxK bounds the candidate-set size a single request may ask
// for (<=0 means 1000).
func New(ds *corpus.Dataset, model *sisg.Model, maxK int) *Server {
	return NewConfigured(ds, model, Config{MaxK: maxK})
}

// NewConfigured returns a server with explicit hardening limits.
func NewConfigured(ds *corpus.Dataset, model *sisg.Model, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		ds: ds, model: model, maxK: cfg.MaxK, cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInFlight),
	}
}

// Handler returns the routed HTTP handler wrapped in the hardening chain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/similar", s.handleSimilar)
	mux.HandleFunc("/coldstart/item", s.handleColdItem)
	mux.HandleFunc("/coldstart/user", s.handleColdUser)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	return s.harden(mux)
}

// harden wraps a handler in the protection chain, outermost first: panic
// recovery (a handler bug answers 500 and is counted, instead of killing
// the whole process), load shedding (overload answers 503 + Retry-After
// immediately), and a per-request deadline (one stuck request cannot hold
// a connection forever).
func (s *Server) harden(h http.Handler) http.Handler {
	return s.withRecovery(s.withLimit(http.TimeoutHandler(h, s.cfg.RequestTimeout, "request timed out")))
}

// withRecovery converts a handler panic into a 500 plus a counter bump.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response, not a bug.
func (s *Server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.panics.Add(1)
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// withLimit sheds load beyond MaxInFlight concurrent requests with
// 503 + Retry-After, keeping latency bounded for the requests it accepts.
func (s *Server) withLimit(h http.Handler) http.Handler {
	retryAfter := strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds())))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		}
	})
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Similar:      s.similar.Load(),
		ColdItem:     s.coldItem.Load(),
		ColdUser:     s.coldUser.Load(),
		ClientErrors: s.clientErrors.Load(),
		Panics:       s.panics.Load(),
		Shed:         s.shed.Load(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"status":  "ok",
		"variant": s.model.Variant.Name,
		"items":   s.ds.Dict.NumItems,
		"vocab":   s.ds.Dict.Len(),
		"dim":     s.model.Emb.Dim(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	s.similar.Add(1)
	s.writeCandidates(w, s.model.SimilarItems(item, k))
}

func (s *Server) handleColdItem(w http.ResponseWriter, r *http.Request) {
	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	s.coldItem.Add(1)
	qv := s.model.ColdStartItemVector(s.ds.Dict.ItemSI[item])
	s.writeCandidates(w, s.model.SimilarToVector(qv, k, func(id int32) bool { return id == item }))
}

func (s *Server) handleColdUser(w http.ResponseWriter, r *http.Request) {
	k, ok := s.kParam(w, r)
	if !ok {
		return
	}
	gender := -1
	if g := r.URL.Query().Get("gender"); g != "" {
		for i, name := range corpus.Genders {
			if name == g {
				gender = i
			}
		}
		if gender < 0 {
			s.clientError(w, "unknown gender %q (want F, M or null)", g)
			return
		}
	}
	age, ok := intParam(r, "age", -1)
	if !ok {
		s.clientError(w, "age is not an integer")
		return
	}
	power, ok := intParam(r, "power", -1)
	if !ok {
		s.clientError(w, "power is not an integer")
		return
	}
	types := s.ds.Pop.TypesMatching(gender, age, power)
	recs, err := s.model.RecommendForColdUser(types, k)
	if err != nil {
		s.clientError(w, "%v", err)
		return
	}
	s.coldUser.Add(1)
	s.writeCandidates(w, recs)
}

func (s *Server) itemAndK(w http.ResponseWriter, r *http.Request) (int32, int, bool) {
	item, ok := intParam(r, "item", -1)
	if !ok {
		s.clientError(w, "item is not an integer")
		return 0, 0, false
	}
	if item < 0 || item >= s.ds.Dict.NumItems {
		s.clientError(w, "item out of range [0,%d)", s.ds.Dict.NumItems)
		return 0, 0, false
	}
	k, kok := s.kParam(w, r)
	return int32(item), k, kok
}

func (s *Server) kParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	k, ok := intParam(r, "k", 20)
	if !ok || k <= 0 || k > s.maxK {
		s.clientError(w, "k must be an integer in (0,%d]", s.maxK)
		return 0, false
	}
	return k, true
}

func (s *Server) writeCandidates(w http.ResponseWriter, recs []knn.Result) {
	out := make([]Candidate, len(recs))
	for i, r := range recs {
		it := s.ds.Catalog.Items[r.ID]
		out[i] = Candidate{Item: r.ID, Score: r.Score, Leaf: it.Leaf, Brand: it.Brand, Tier: it.Tier}
	}
	writeJSON(w, out)
}

func (s *Server) clientError(w http.ResponseWriter, format string, args ...interface{}) {
	s.clientErrors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), http.StatusBadRequest)
}

// intParam returns the integer query parameter, the default when absent,
// and ok=false when present but unparseable (a client error, never a
// silent fallback).
func intParam(r *http.Request, name string, def int) (int, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
