// Package server implements the matching-stage HTTP service: the
// production surface that hands candidate sets to the ranking stage. It
// covers the paper's three retrieval paths — item-to-item similarity (§II),
// cold-start items via Eq. 6 (§IV-C2) and cold-start users via user-type
// averaging (§IV-C1) — plus liveness (/healthz), readiness (/readyz,
// 503 while warming up or draining), serving statistics and a Prometheus
// /metrics exposition.
//
// Cold-start endpoints accept both GET (catalog items / demographic query
// parameters) and POST (a JSON body naming raw SI tokens or demographics),
// because the production cold-start case is precisely an item or user the
// catalog does not know yet.
//
// The retrieval API is versioned: /v1/similar, /v1/coldstart/item,
// /v1/coldstart/user and /v1/stats are the canonical paths, with the
// unversioned spellings kept as legacy aliases. Every error — bad input,
// shed load, timeout, recovered panic — is answered with one JSON shape:
// {"error":{"code":"...","message":"..."}}.
//
// The package is the testable core behind cmd/sisg-server.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/metrics"
	"sisg/internal/model"
	"sisg/internal/sisg"
)

// Candidate is one entry of a served candidate set, carrying enough catalog
// metadata for a downstream ranker.
type Candidate struct {
	Item  int32   `json:"item"`
	Score float32 `json:"score"`
	Leaf  int32   `json:"leaf"`
	Brand int32   `json:"brand"`
	Tier  int8    `json:"tier"`
}

// Stats are cumulative serving counters, exposed at /stats (JSON) and, in
// richer form, at /metrics (Prometheus text format).
type Stats struct {
	Similar      uint64 `json:"similar"`
	ColdItem     uint64 `json:"cold_item"`
	ColdUser     uint64 `json:"cold_user"`
	ClientErrors uint64 `json:"client_errors"`
	Panics       uint64 `json:"panics"` // requests answered 500 after a recovered handler panic
	Shed         uint64 `json:"shed"`   // requests answered 503 by the admission controller
	// Coalesced counts requests answered by sharing another identical
	// in-flight retrieval (single-flight followers).
	Coalesced uint64 `json:"coalesced"`
	// Canceled counts retrievals abandoned because the client went away;
	// they are answered 499, never counted as server errors.
	Canceled uint64 `json:"canceled"`
	// ModelGeneration is the generation of the snapshot currently being
	// handed to new requests; SnapshotAgeSeconds is how long ago it was
	// published and VocabSize how many tokens it embeds. Under streaming
	// training the generation climbs with every publish; a batch server
	// reports generation 1 forever.
	ModelGeneration    uint64  `json:"model_generation"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	VocabSize          int     `json:"vocab_size"`
	// Degraded reports whether /v1/similar is currently in brownout
	// (default scans downgraded from exact flat to IVF).
	Degraded bool `json:"degraded"`
	// BrownoutEntered/Exited count brownout transitions in each direction.
	BrownoutEntered uint64 `json:"brownout_entered"`
	BrownoutExited  uint64 `json:"brownout_exited"`
}

// Config tunes the hardening envelope around the handlers. The zero value
// gets production-safe defaults for every field.
type Config struct {
	// MaxK bounds the candidate-set size a single request may ask for
	// (<=0 means 1000).
	MaxK int
	// MaxInFlight sizes the default admission budget: CostBudget defaults
	// to MaxInFlight concurrent full flat scans' worth of predicted cost
	// (<=0 means 256). Cheap requests (IVF probes, small corpora) pack
	// many-per-scan into the same budget; see CostBudget.
	MaxInFlight int
	// RequestTimeout bounds one request's handling time; a request that
	// exceeds it is answered 503 and its retrieval scan is cancelled at
	// the next tile boundary (<=0 means 10s).
	RequestTimeout time.Duration
	// RetryAfter floors the back-off advertised on shed responses. The
	// advertised value is derived per shed from the latency EWMA and
	// admission pressure, with deterministic per-request jitter, and never
	// falls below this (<=0 means 1s).
	RetryAfter time.Duration
	// CostBudget bounds the total *predicted* retrieval cost (rows×dims
	// scan units, knn.Index.PredictedCost) admitted concurrently; excess
	// is shed with 503 + Retry-After. <=0 derives MaxInFlight × the cost
	// of one full flat scan over the item index.
	CostBudget int64
	// BrownoutNProbe is the IVF probe width degraded /v1/similar scans use
	// under brownout (<=0 means the engine default of about sqrt(nlist)).
	BrownoutNProbe int
	// BrownoutHighWater and BrownoutLowWater are the admission-pressure
	// thresholds (fractions of CostBudget) for entering and leaving
	// brownout; wide hysteresis prevents flapping. <=0 mean 0.75 and 0.25.
	BrownoutHighWater float64
	BrownoutLowWater  float64
	// BrownoutLatency is the retrieval-latency EWMA above which the server
	// counts as hot even at low pressure (<=0 means RequestTimeout/4).
	BrownoutLatency time.Duration
	// BrownoutHold is how long an enter/exit condition must persist before
	// the transition fires (<=0 means 1s).
	BrownoutHold time.Duration
	// RetrievalDelay pads every retrieval scan with a cancellable sleep.
	// It exists for load tests and CI smoke runs, which need scans slow
	// enough to produce deterministic coalescing and shedding on a tiny
	// corpus; production configs leave it zero.
	RetrievalDelay time.Duration
	// Metrics is the registry the server instruments itself on. Nil means
	// a private registry; pass a shared one to co-locate serving and
	// training series in a single /metrics page.
	Metrics *metrics.Registry
	// LatencyBuckets overrides the request-latency histogram bounds
	// (seconds, ascending). Nil means metrics.DefBuckets.
	LatencyBuckets []float64
	// CacheSize bounds the /similar result cache in entries. Production
	// matching traffic is heavily head-skewed, so a modest cache absorbs a
	// large fraction of full-matrix scans. <=0 disables caching.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BrownoutHighWater <= 0 {
		c.BrownoutHighWater = 0.75
	}
	if c.BrownoutLowWater <= 0 {
		c.BrownoutLowWater = 0.25
	}
	if c.BrownoutLatency <= 0 {
		c.BrownoutLatency = c.RequestTimeout / 4
	}
	if c.BrownoutHold <= 0 {
		c.BrownoutHold = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// endpointMetrics is the pre-registered per-endpoint instrument set, so the
// request path never takes the registry lock.
type endpointMetrics struct {
	latency *metrics.Histogram
	codes   map[string]*metrics.Counter // "2xx", "3xx", "4xx", "5xx"
}

// Server serves the current model snapshot over one catalog. Snapshots
// rotate through a model.Holder: every request pins the snapshot it
// arrived at (an atomic acquire, no lock) and uses only that generation
// for its whole lifetime, so a publish mid-request never blocks, never
// tears a response across two models, and retires the displaced
// generation as soon as its last in-flight reader finishes.
type Server struct {
	ds     *corpus.Dataset
	models *model.Holder
	maxK   int
	cfg    Config

	adm     *admission     // cost-based concurrency limiter
	flights [2]flightGroup // single-flight groups: [0] exact, [1] degraded
	brown   *brownout
	lat     *metrics.EWMA // retrieval latency EWMA, seconds
	press   *metrics.EWMA // admission pressure EWMA, 0..~1

	// retrieve is the seam overload tests hook: it defaults to the pinned
	// snapshot's Similar (plus the configured RetrievalDelay) and is only
	// ever replaced inside this package's tests. opts.K carries k.
	retrieve func(ctx context.Context, snap model.Snapshot, item int32, opts knn.Options) ([]knn.Result, error)

	inflightReqs atomic.Int64  // requests currently executing (all endpoints)
	shedSeq      atomic.Uint64 // per-shed sequence feeding Retry-After jitter

	// notReady inverts readiness so the zero value (and every existing
	// constructor call) starts ready. /healthz keeps answering 200 while
	// not ready — the process is alive — but /readyz answers 503, which is
	// what a load balancer keys traffic on during warm-up and drain.
	notReady atomic.Bool

	reg *metrics.Registry
	// Serving counters (registry-backed; Stats() snapshots them).
	similar      *metrics.Counter
	coldItem     *metrics.Counter
	coldUser     *metrics.Counter
	clientErrors *metrics.Counter
	panics       *metrics.Counter
	shed         *metrics.Counter
	coalesced    *metrics.Counter
	canceled     *metrics.Counter
	timeouts     *metrics.Counter
	brownEntered *metrics.Counter
	brownExited  *metrics.Counter

	endpoints map[string]*endpointMetrics

	// cache, when CacheSize > 0, memoizes /similar result sets keyed by
	// (item, k) — scoped to ONE model generation. A publish invalidates
	// the whole cache by construction: the first request pinned to the
	// new generation CAS-installs a fresh LRU, and requests still pinned
	// to an older generation simply bypass caching (they are a dying
	// breed; warming a retired generation's cache is wasted memory).
	cache        atomic.Pointer[genCache]
	cacheHits    *metrics.Counter
	cacheMisses  *metrics.Counter
	scanSeconds  *metrics.Histogram
	cacheSeconds *metrics.Histogram
}

// genCache is one generation's result cache.
type genCache struct {
	gen uint64
	lru *knn.LRU
}

// cacheFor returns the LRU for the given generation, installing a fresh
// one when gen is newer than the cached generation. Requests pinned to an
// older generation than the cache get nil (uncached).
func (s *Server) cacheFor(gen uint64) *knn.LRU {
	if s.cfg.CacheSize <= 0 {
		return nil
	}
	for {
		cur := s.cache.Load()
		if cur != nil {
			if cur.gen == gen {
				return cur.lru
			}
			if cur.gen > gen {
				return nil
			}
		}
		next := &genCache{gen: gen, lru: knn.NewLRU(s.cfg.CacheSize)}
		if s.cache.CompareAndSwap(cur, next) {
			return next.lru
		}
	}
}

// knownPaths are the routes instrumented with their own label value;
// anything else shares the "other" series so label cardinality stays
// bounded no matter what clients probe. The /v1 aliases get their own
// series — the split tells you how far client migration has progressed.
var knownPaths = []string{
	"/similar", "/coldstart/item", "/coldstart/user",
	"/v1/similar", "/v1/coldstart/item", "/v1/coldstart/user", "/v1/stats",
	"/healthz", "/readyz", "/stats", "/metrics",
}

// New returns a server for the given dataset and model with default
// hardening. maxK bounds the candidate-set size a single request may ask
// for (<=0 means 1000).
func New(ds *corpus.Dataset, m *sisg.Model, maxK int) *Server {
	return NewConfigured(ds, m, Config{MaxK: maxK})
}

// NewConfigured returns a server with explicit hardening limits. The
// batch model is wrapped as the holder's sole generation; NewWithHolder
// is the streaming entry point where generations actually rotate.
func NewConfigured(ds *corpus.Dataset, m *sisg.Model, cfg Config) *Server {
	return NewWithHolder(ds, model.NewHolder(sisg.NewModelSnapshot(m, 1)), cfg)
}

// NewWithHolder returns a server reading whatever snapshot the holder
// currently publishes. The caller keeps the holder and feeds it new
// generations (model.Holder.Publish); swaps are invisible to in-flight
// requests.
func NewWithHolder(ds *corpus.Dataset, models *model.Holder, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	s := &Server{
		ds: ds, models: models, maxK: cfg.MaxK, cfg: cfg,
		reg: reg,

		similar:      reg.Counter("serve_candidates_total", "candidate sets served, by retrieval path", metrics.L("path", "/similar")),
		coldItem:     reg.Counter("serve_candidates_total", "candidate sets served, by retrieval path", metrics.L("path", "/coldstart/item")),
		coldUser:     reg.Counter("serve_candidates_total", "candidate sets served, by retrieval path", metrics.L("path", "/coldstart/user")),
		clientErrors: reg.Counter("http_client_errors_total", "requests rejected 400 for malformed input"),
		panics:       reg.Counter("http_panics_total", "requests answered 500 after a recovered handler panic"),
		shed:         reg.Counter("http_shed_total", "requests answered 503 by the admission controller"),
		coalesced:    reg.Counter("retrieval_coalesced_total", "requests answered by sharing an identical in-flight retrieval"),
		canceled:     reg.Counter("http_canceled_total", "retrievals abandoned because the client went away (answered 499)"),
		timeouts:     reg.Counter("http_request_timeouts_total", "retrievals cancelled by the per-request deadline"),
		brownEntered: reg.Counter("brownout_transitions_total", "brownout state transitions, by direction", metrics.L("to", "degraded")),
		brownExited:  reg.Counter("brownout_transitions_total", "brownout state transitions, by direction", metrics.L("to", "exact")),

		endpoints: make(map[string]*endpointMetrics, len(knownPaths)+1),
	}
	budget := cfg.CostBudget
	if budget <= 0 {
		snap, release := models.Acquire()
		flat := flatCost(snap)
		release()
		if budget = int64(cfg.MaxInFlight) * flat; budget < flat {
			budget = flat // overflow or degenerate config: one scan at a time
		}
	}
	s.adm = &admission{budget: budget}
	s.lat = metrics.NewEWMA(0.1)
	s.press = metrics.NewEWMA(0.1)
	s.brown = &brownout{
		highWater: cfg.BrownoutHighWater,
		lowWater:  cfg.BrownoutLowWater,
		latHigh:   cfg.BrownoutLatency.Seconds(),
		hold:      cfg.BrownoutHold,
		entered:   s.brownEntered,
		exited:    s.brownExited,
	}
	s.retrieve = func(ctx context.Context, snap model.Snapshot, item int32, opts knn.Options) ([]knn.Result, error) {
		if err := s.retrievalDelay(ctx); err != nil {
			return nil, err
		}
		rs, err := snap.Similar(ctx, []int32{item}, opts)
		if err != nil {
			return nil, err
		}
		return rs[0], nil
	}
	for _, p := range append(append([]string(nil), knownPaths...), "other") {
		em := &endpointMetrics{
			latency: reg.Histogram("http_request_duration_seconds", "request handling latency", cfg.LatencyBuckets, metrics.L("path", p)),
			codes:   make(map[string]*metrics.Counter, 4),
		}
		for _, cls := range []string{"2xx", "3xx", "4xx", "5xx"} {
			em.codes[cls] = reg.Counter("http_requests_total", "requests handled, by path and status class",
				metrics.L("path", p), metrics.L("code", cls))
		}
		s.endpoints[p] = em
	}
	reg.GaugeFunc("http_inflight", "requests currently executing", func() float64 {
		return float64(s.inflightReqs.Load())
	})
	reg.GaugeFunc("model_generation", "generation of the snapshot handed to new requests", func() float64 {
		return float64(s.models.Generation())
	})
	reg.GaugeFunc("model_swaps_total", "snapshot publishes since start (monotone)", func() float64 {
		return float64(s.models.Swaps())
	})
	reg.GaugeFunc("model_snapshot_readers", "requests currently pinning a snapshot", func() float64 {
		return float64(s.models.Readers())
	})
	reg.GaugeFunc("admission_cost_inflight", "predicted retrieval cost currently admitted (rows×dims units)", func() float64 {
		return float64(s.adm.inflight.Load())
	})
	reg.GaugeFunc("admission_cost_budget", "admission budget (rows×dims units)", func() float64 {
		return float64(s.adm.budget)
	})
	reg.GaugeFunc("admission_pressure", "EWMA of admitted cost / budget — the signal driving brownout", func() float64 {
		return s.press.Value()
	})
	reg.GaugeFunc("serving_degraded", "1 while /v1/similar is in brownout (default scans downgraded to IVF)", func() float64 {
		if s.brown.active() {
			return 1
		}
		return 0
	})
	s.scanSeconds = reg.Histogram("retrieval_seconds", "similar-item retrieval latency, by source", cfg.LatencyBuckets, metrics.L("source", "scan"))
	s.cacheSeconds = reg.Histogram("retrieval_seconds", "similar-item retrieval latency, by source", cfg.LatencyBuckets, metrics.L("source", "cache"))
	if cfg.CacheSize > 0 {
		s.cacheHits = reg.Counter("retrieval_cache_hits_total", "/similar requests answered from the result cache")
		s.cacheMisses = reg.Counter("retrieval_cache_misses_total", "/similar requests that fell through to a full scan")
		reg.GaugeFunc("retrieval_cache_entries", "entries currently held by the /similar result cache", func() float64 {
			if c := s.cache.Load(); c != nil {
				return float64(c.lru.Len())
			}
			return 0
		})
	}
	return s
}

// flatCost is the predicted cost of one full flat scan over a snapshot's
// item index — the admission unit MaxInFlight is denominated in, and the
// cost charged for cold-start retrievals (always exact vector scans).
func flatCost(snap model.Snapshot) int64 {
	c := snap.Index().PredictedCost(knn.Options{K: 1})
	if c < 1 {
		c = 1
	}
	return c
}

// retrievalDelay pads a scan with the configured cancellable sleep (a
// no-op in production configs; see Config.RetrievalDelay).
func (s *Server) retrievalDelay(ctx context.Context) error {
	d := s.cfg.RetrievalDelay
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Registry returns the metrics registry the server reports on.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the routed HTTP handler wrapped in the hardening chain.
//
// The retrieval API is versioned under /v1/; the unversioned paths are
// legacy aliases kept for existing integrations and serve byte-identical
// responses. Operational endpoints (/healthz, /readyz, /metrics) stay
// unversioned — they speak to infrastructure, not API clients.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/similar", s.handleSimilar)
	mux.HandleFunc("/v1/coldstart/item", s.handleColdItem)
	mux.HandleFunc("/v1/coldstart/user", s.handleColdUser)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/similar", s.handleSimilar)
	mux.HandleFunc("/coldstart/item", s.handleColdItem)
	mux.HandleFunc("/coldstart/user", s.handleColdUser)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/metrics", s.reg.Handler())
	return s.harden(mux)
}

// harden wraps a handler in the protection chain, outermost first: panic
// recovery (a handler bug answers 500 and is counted, instead of killing
// the whole process), per-endpoint instrumentation (so shed, timed-out and
// panicking requests are all measured), and a per-request deadline (one
// stuck request cannot hold a connection forever — and, because the
// deadline rides the request context into the scan, the worker actually
// stops). Load shedding is no longer a uniform middleware: the retrieval
// handlers admit by predicted scan cost (see admission.go), while
// operational endpoints (/healthz, /readyz, /metrics, /v1/stats) stay
// unmetered — an overloaded server must still answer its load balancer.
func (s *Server) harden(h http.Handler) http.Handler {
	return s.withRecovery(s.instrument(http.TimeoutHandler(h, s.cfg.RequestTimeout, timeoutBody)))
}

// timeoutBody is the envelope http.TimeoutHandler writes on 503; it cannot
// call writeError, so the JSON is spelled out.
const timeoutBody = `{"error":{"code":"timeout","message":"request timed out"}}`

// errorEnvelope is the uniform error shape of the API, on every path and
// every failure mode: {"error":{"code":"...","message":"..."}}. code is a
// small stable enum (bad_request, overloaded, timeout, internal) meant for
// programs; message is prose meant for humans.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: code, Message: message}})
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument records one latency observation and one status-class count per
// request, labeled by endpoint. It sits INSIDE the recovery wrapper so a
// panicking request is still measured (as a 5xx): the deferred accounting
// runs while the panic unwinds, before withRecovery converts it to a 500.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		em, ok := s.endpoints[r.URL.Path]
		if !ok {
			em = s.endpoints["other"]
		}
		rec := &statusRecorder{ResponseWriter: w}
		s.inflightReqs.Add(1)
		defer s.inflightReqs.Add(-1)
		start := time.Now()
		finished := false
		defer func() {
			em.latency.ObserveSince(start)
			code := rec.code
			if !finished && code == 0 {
				// Panic in flight before anything was written; the
				// recovery wrapper above will answer 500.
				code = http.StatusInternalServerError
			}
			if code == 0 {
				code = http.StatusOK
			}
			cls := strconv.Itoa(code/100) + "xx"
			if c, ok := em.codes[cls]; ok {
				c.Inc()
			} else {
				em.codes["5xx"].Inc()
			}
		}()
		h.ServeHTTP(rec, r)
		finished = true
	})
}

// withRecovery converts a handler panic into a 500 plus a counter bump.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response, not a bug.
func (s *Server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.panics.Inc()
				writeError(w, http.StatusInternalServerError, "internal", "internal server error")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// statusClientClosedRequest is the nginx-convention status for "the client
// went away before the response was ready". It never reaches the client
// (there is none), but it keys instrumentation into the 4xx class: a
// cancelled retrieval is the *client's* outcome, not a server error.
const statusClientClosedRequest = 499

// writeShed answers one shed request: 503 overloaded plus a Retry-After
// derived from current load. The shed request's pressure sample was
// already taken at arrival (loadSample before tryAcquire), which is what
// pushes the brownout machine toward degrading — a server shedding at
// full pressure should be migrating its default scans to the cheap index.
func (s *Server) writeShed(w http.ResponseWriter) {
	s.shed.Inc()
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	writeError(w, http.StatusServiceUnavailable, "overloaded", "server overloaded, retry later")
}

// retryAfterSeconds derives the advertised back-off from the latency EWMA
// scaled by admission pressure — roughly "how long until the backlog the
// client would join has drained" — floored at the configured RetryAfter.
// Deterministic per-shed jitter (a split-mix hash of a shed sequence
// number) spreads synchronized clients over a half-wide window so they do
// not retry in lockstep and re-create the spike that shed them.
func (s *Server) retryAfterSeconds() string {
	est := s.lat.Value() * 4 * (1 + s.adm.pressure())
	if floor := s.cfg.RetryAfter.Seconds(); est < floor {
		est = floor
	}
	h := s.shedSeq.Add(1) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	est *= 1 + float64(h%512)/1024 // jitter in [1, 1.5)
	n := int(math.Ceil(est))
	if n < 1 {
		n = 1
	}
	if n > 30 {
		n = 30
	}
	return strconv.Itoa(n)
}

// finishRetrieval records one completed (or failed) retrieval: latency
// into the EWMA (which must be measured at completion), a brownout
// evaluation against the current smoothed load, then the budget release.
// It does NOT sample pressure: a completion-time sample always includes
// the finishing request itself, so with a budget of one flat scan every
// sample would read 1.0 even on a server that sits idle between
// requests (seen in the wild as brownout flapping at trivial load).
func (s *Server) finishRetrieval(start time.Time, cost int64) {
	s.lat.Observe(time.Since(start).Seconds())
	s.brown.observe(time.Now(), s.press.Value(), s.lat.Value())
	s.adm.release(cost)
}

// loadSample records the admission pressure one arriving retrieval finds
// (taken BEFORE it acquires budget) and re-evaluates the brownout
// machine. Sampling at arrival matters twice over: Poisson arrivals see
// time averages (an idle server's arrivals observe 0, so the EWMA decays
// when load is light), and the raw instantaneous ratio is bimodal under
// saturation — admission admits scans in waves, and wave-tail samples
// read near-empty even while the server is saturated — so the brownout
// sees the EWMA, never the raw sample.
func (s *Server) loadSample() {
	s.press.Observe(s.adm.pressure())
	s.brown.observe(time.Now(), s.press.Value(), s.lat.Value())
}

// retrievalError maps a failed retrieval onto the error envelope:
// admission shed → 503 overloaded; client gone → 499 canceled (its own
// counter, never a 5xx — cancelled work is not a server error); deadline →
// 503 timeout (normally already written by the TimeoutHandler; the write
// here lands on the discarded inner recorder); anything else → 500.
func (s *Server) retrievalError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, model.ErrNotServable):
		// The pinned snapshot does not embed this item (yet): a client
		// outcome, not a server fault — streaming admission may serve it
		// one generation later.
		s.clientErrors.Inc()
		writeError(w, http.StatusNotFound, "not_servable", "item not servable by the current model generation")
	case errors.Is(err, errShed):
		s.writeShed(w)
	case errors.Is(err, context.Canceled):
		s.canceled.Inc()
		writeError(w, statusClientClosedRequest, "canceled", "client closed request")
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeError(w, http.StatusServiceUnavailable, "timeout", "request timed out")
	default:
		writeError(w, http.StatusInternalServerError, "internal", "internal server error")
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	snap, release := s.models.Acquire()
	defer release()
	return Stats{
		ModelGeneration:    snap.Generation(),
		SnapshotAgeSeconds: time.Since(snap.PublishedAt()).Seconds(),
		VocabSize:          snap.VocabSize(),

		Similar:         s.similar.Value(),
		ColdItem:        s.coldItem.Value(),
		ColdUser:        s.coldUser.Value(),
		ClientErrors:    s.clientErrors.Value(),
		Panics:          s.panics.Value(),
		Shed:            s.shed.Value(),
		Coalesced:       s.coalesced.Value(),
		Canceled:        s.canceled.Value(),
		Degraded:        s.brown.active(),
		BrownoutEntered: s.brownEntered.Value(),
		BrownoutExited:  s.brownExited.Value(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap, release := s.models.Acquire()
	defer release()
	writeJSON(w, map[string]interface{}{
		"status":     "ok",
		"variant":    snap.Variant(),
		"items":      snap.NumItems(),
		"vocab":      snap.VocabSize(),
		"dim":        snap.Dim(),
		"generation": snap.Generation(),
	})
}

// SetReady flips the /readyz answer. A server starts ready; flip it false
// before http.Server.Shutdown so the load balancer stops routing new
// traffic here while in-flight requests drain (liveness stays 200
// throughout — killing a draining pod would truncate those requests).
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the current /readyz answer.
func (s *Server) Ready() bool { return !s.notReady.Load() }

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	// Pin the current snapshot for the whole request: a publish landing
	// mid-request swaps the holder without blocking, and this request
	// keeps reading the generation it arrived at.
	snap, release := s.models.Acquire()
	defer release()
	w.Header().Set("X-Model-Generation", strconv.FormatUint(snap.Generation(), 10))

	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	opts, ok := s.annOptions(w, r, k)
	if !ok {
		return
	}
	start := time.Now()

	// An explicit strategy (index=... in the query) bypasses cache,
	// brownout and coalescing — the client asked for one specific scan —
	// but is still admitted by cost and cancelled with the request.
	if opts.Index != "" {
		recs, err := s.admittedRetrieve(r.Context(), snap, item, opts)
		if err != nil {
			s.retrievalError(w, err)
			return
		}
		s.similar.Inc()
		s.scanSeconds.ObserveSince(start)
		s.writeCandidates(w, recs)
		return
	}

	// Default path: cache, then single-flight in front of the scan. Both
	// are scoped to the pinned generation — the cache by construction
	// (cacheFor), the flight by key — so two generations' answers can
	// never coalesce or shadow one another across a swap. Only the exact
	// default scan is cached: ANN answers depend on index/nprobe/quantized,
	// and folding those into the key would let approximate results shadow
	// exact ones (and vice versa). Cached results are served even during
	// brownout — they are exact and cost nothing, which is the whole point
	// of keeping them.
	key := flightKey{gen: snap.Generation(), item: item, k: int32(k)}
	cache := s.cacheFor(snap.Generation())
	if cache != nil {
		if recs, hit := cache.Get(key.cacheKey()); hit {
			s.cacheHits.Inc()
			s.similar.Inc()
			s.cacheSeconds.ObserveSince(start)
			s.writeCandidates(w, recs)
			return
		}
	}

	// Brownout is decided once per request; degraded and exact flights
	// coalesce in separate groups so the two answer shapes never mix.
	degraded := s.brown.active()
	scanOpts := opts
	if degraded {
		scanOpts = knn.Options{K: k, Index: knn.IndexIVF, NProbe: s.cfg.BrownoutNProbe}
	}
	group := &s.flights[0]
	if degraded {
		group = &s.flights[1]
	}
	var (
		recs   []knn.Result
		shared bool
		err    error
	)
	for attempt := 0; ; attempt++ {
		recs, shared, err = group.do(r.Context(), key, func() ([]knn.Result, error) {
			if cache != nil {
				s.cacheMisses.Inc()
			}
			return s.admittedRetrieve(r.Context(), snap, item, scanOpts)
		})
		// A follower handed its leader's cancellation while this client is
		// still here retries once as the new leader: the leader's client
		// going away must not fail the whole coalesced cohort.
		if attempt == 0 && shared && err != nil && errors.Is(err, knn.ErrCanceled) && r.Context().Err() == nil {
			continue
		}
		break
	}
	if err != nil {
		s.retrievalError(w, err)
		return
	}
	if shared {
		s.coalesced.Inc()
	}
	s.similar.Inc()
	if degraded {
		// The accuracy contract changed; say so in-band.
		w.Header().Set("X-Degraded", "ivf")
	} else if cache != nil && !shared {
		// Only the leader fills the cache, and only with exact results.
		cache.Put(key.cacheKey(), recs)
	}
	s.scanSeconds.ObserveSince(start)
	s.writeCandidates(w, recs)
}

// admittedRetrieve runs one retrieval under the admission controller: the
// predicted cost of the scan is acquired (or the call sheds with errShed),
// the scan runs on the request context against the pinned snapshot, and
// completion feeds the latency EWMA and brownout machine before the cost
// is released. opts.K carries the candidate-set size.
func (s *Server) admittedRetrieve(ctx context.Context, snap model.Snapshot, item int32, opts knn.Options) ([]knn.Result, error) {
	cost := snap.Index().PredictedCost(opts)
	if cost < 1 {
		cost = 1
	}
	s.loadSample()
	if !s.adm.tryAcquire(cost) {
		return nil, errShed
	}
	start := time.Now()
	defer s.finishRetrieval(start, cost)
	return s.retrieve(ctx, snap, item, opts)
}

// annOptions parses the retrieval-strategy query parameters (index,
// nprobe, quantized) into knn.Options and rejects inconsistent
// combinations with the engine's own Validate message. The zero Index
// (parameter absent) keeps the cached exact-scan fast path.
func (s *Server) annOptions(w http.ResponseWriter, r *http.Request, k int) (knn.Options, bool) {
	var opts knn.Options
	opts.Index = r.URL.Query().Get("index")
	nprobe, ok := intParam(r, "nprobe", 0)
	if !ok {
		s.clientError(w, "nprobe is not an integer")
		return opts, false
	}
	opts.NProbe = nprobe
	if v := r.URL.Query().Get("quantized"); v != "" {
		q, err := strconv.ParseBool(v)
		if err != nil {
			s.clientError(w, "quantized is not a boolean")
			return opts, false
		}
		opts.Quantized = q
	}
	opts.K = k // so Validate sees the full picture
	if err := opts.Validate(); err != nil {
		s.clientError(w, "%s", err)
		return opts, false
	}
	return opts, true
}

// coldItemRequest is the POST body of /coldstart/item: a brand-new item
// known only by its SI token names (Eq. 6 needs nothing else).
type coldItemRequest struct {
	SI []string `json:"si"`
	K  int      `json:"k"`
}

func (s *Server) handleColdItem(w http.ResponseWriter, r *http.Request) {
	snap, release := s.models.Acquire()
	defer release()
	w.Header().Set("X-Model-Generation", strconv.FormatUint(snap.Generation(), 10))
	if r.Method == http.MethodPost {
		var req coldItemRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		k, ok := s.boundK(w, req.K)
		if !ok {
			return
		}
		if len(req.SI) == 0 {
			s.clientError(w, "si must name at least one side-information token")
			return
		}
		qv, err := snap.ColdItemVectorFromNames(req.SI)
		if err != nil {
			s.clientError(w, "%v", err)
			return
		}
		recs, err := s.admittedVectorRetrieve(r.Context(), snap, qv, k, nil)
		if err != nil {
			s.retrievalError(w, err)
			return
		}
		s.coldItem.Inc()
		s.writeCandidates(w, recs)
		return
	}
	item, k, ok := s.itemAndK(w, r)
	if !ok {
		return
	}
	qv, err := snap.ColdItemVector(item)
	if err != nil {
		s.retrievalError(w, err)
		return
	}
	recs, err := s.admittedVectorRetrieve(r.Context(), snap, qv, k, func(id int32) bool { return id == item })
	if err != nil {
		s.retrievalError(w, err)
		return
	}
	s.coldItem.Inc()
	s.writeCandidates(w, recs)
}

// admittedVectorRetrieve is admittedRetrieve for the cold-start paths:
// always an exact vector scan, so always charged one flat-scan cost.
func (s *Server) admittedVectorRetrieve(ctx context.Context, snap model.Snapshot, qv []float32, k int, skip func(int32) bool) ([]knn.Result, error) {
	cost := flatCost(snap)
	s.loadSample()
	if !s.adm.tryAcquire(cost) {
		return nil, errShed
	}
	start := time.Now()
	defer s.finishRetrieval(start, cost)
	if err := s.retrievalDelay(ctx); err != nil {
		return nil, err
	}
	return snap.SimilarToVector(ctx, qv, k, skip)
}

// coldUserRequest is the POST body of /coldstart/user. Age and Power are
// pointers so "absent" (match any) is distinguishable from index 0.
type coldUserRequest struct {
	Gender string `json:"gender"`
	Age    *int   `json:"age"`
	Power  *int   `json:"power"`
	K      int    `json:"k"`
}

func (s *Server) handleColdUser(w http.ResponseWriter, r *http.Request) {
	var (
		k, gender, age, power int
		ok                    bool
	)
	if r.Method == http.MethodPost {
		var req coldUserRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		if k, ok = s.boundK(w, req.K); !ok {
			return
		}
		if gender, ok = s.genderIndex(w, req.Gender); !ok {
			return
		}
		age, power = -1, -1
		if req.Age != nil {
			age = *req.Age
		}
		if req.Power != nil {
			power = *req.Power
		}
	} else {
		if k, ok = s.kParam(w, r); !ok {
			return
		}
		if gender, ok = s.genderIndex(w, r.URL.Query().Get("gender")); !ok {
			return
		}
		if age, ok = intParam(r, "age", -1); !ok {
			s.clientError(w, "age is not an integer")
			return
		}
		if power, ok = intParam(r, "power", -1); !ok {
			s.clientError(w, "power is not an integer")
			return
		}
	}
	types := s.ds.Pop.TypesMatching(gender, age, power)
	if len(types) == 0 {
		s.clientError(w, "sisg: no matching user types")
		return
	}
	snap, release := s.models.Acquire()
	defer release()
	w.Header().Set("X-Model-Generation", strconv.FormatUint(snap.Generation(), 10))
	cost := flatCost(snap)
	s.loadSample()
	if !s.adm.tryAcquire(cost) {
		s.writeShed(w)
		return
	}
	start := time.Now()
	recs, err := func() ([]knn.Result, error) {
		defer s.finishRetrieval(start, cost)
		if err := s.retrievalDelay(r.Context()); err != nil {
			return nil, err
		}
		return snap.RecommendForColdUser(r.Context(), types, k)
	}()
	if err != nil {
		s.retrievalError(w, err)
		return
	}
	s.coldUser.Inc()
	s.writeCandidates(w, recs)
}

// genderIndex resolves a gender name to its index (-1 for "any" when
// empty); unknown names are a client error.
func (s *Server) genderIndex(w http.ResponseWriter, g string) (int, bool) {
	if g == "" {
		return -1, true
	}
	for i, name := range corpus.Genders {
		if name == g {
			return i, true
		}
	}
	s.clientError(w, "unknown gender %q (want F, M or null)", g)
	return 0, false
}

// maxBodyBytes bounds cold-start POST bodies; a list of SI token names has
// no business being larger.
const maxBodyBytes = 1 << 20

// decodeBody parses a JSON POST body strictly: unknown fields, trailing
// garbage, oversized and unparseable bodies are all client errors.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.clientError(w, "bad request body: %v", err)
		return false
	}
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		s.clientError(w, "bad request body: trailing data after JSON object")
		return false
	}
	return true
}

func (s *Server) itemAndK(w http.ResponseWriter, r *http.Request) (int32, int, bool) {
	item, ok := intParam(r, "item", -1)
	if !ok {
		s.clientError(w, "item is not an integer")
		return 0, 0, false
	}
	if item < 0 || item >= s.ds.Dict.NumItems {
		s.clientError(w, "item out of range [0,%d)", s.ds.Dict.NumItems)
		return 0, 0, false
	}
	k, kok := s.kParam(w, r)
	return int32(item), k, kok
}

// boundK validates a candidate-set size from a POST body: 0 means the
// default (20); anything else must fall in (0, maxK].
func (s *Server) boundK(w http.ResponseWriter, k int) (int, bool) {
	if k == 0 {
		return 20, true
	}
	if k < 0 || k > s.maxK {
		s.clientError(w, "k must be an integer in (0,%d]", s.maxK)
		return 0, false
	}
	return k, true
}

func (s *Server) kParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	k, ok := intParam(r, "k", 20)
	if !ok || k <= 0 || k > s.maxK {
		s.clientError(w, "k must be an integer in (0,%d]", s.maxK)
		return 0, false
	}
	return k, true
}

func (s *Server) writeCandidates(w http.ResponseWriter, recs []knn.Result) {
	out := make([]Candidate, len(recs))
	for i, r := range recs {
		it := s.ds.Catalog.Items[r.ID]
		out[i] = Candidate{Item: r.ID, Score: r.Score, Leaf: it.Leaf, Brand: it.Brand, Tier: it.Tier}
	}
	writeJSON(w, out)
}

func (s *Server) clientError(w http.ResponseWriter, format string, args ...interface{}) {
	s.clientErrors.Inc()
	writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf(format, args...))
}

// intParam returns the integer query parameter, the default when absent,
// and ok=false when present but unparseable or overflowing (a client
// error, never a silent fallback).
func intParam(r *http.Request, name string, def int) (int, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
