package server

import (
	"context"
	"sync"
	"sync/atomic"

	"sisg/internal/knn"
)

// flightCall is one in-progress retrieval that concurrent identical
// requests wait on. done is closed after recs/err are final. waiters
// counts parked followers; tests use it to sequence deterministically
// ("follower is provably waiting") instead of sleeping.
type flightCall struct {
	done    chan struct{}
	waiters atomic.Int32
	recs    []knn.Result
	err     error
}

// flightKey identifies one coalescable retrieval: the (item, k) pair AND
// the model generation the caller pinned. Scoping flights by generation
// means a request that raced a snapshot swap can never be handed a result
// computed against a different model than the one it pinned.
type flightKey struct {
	gen  uint64
	item int32
	k    int32
}

// cacheKey folds the (item, k) pair into the LRU's uint64 key space; the
// generation is omitted because each generation owns a whole LRU.
func (k flightKey) cacheKey() uint64 {
	return uint64(uint32(k.item))<<32 | uint64(uint32(k.k))
}

// flightGroup coalesces concurrent identical retrievals: the first caller
// for a key becomes the leader and runs the work; everyone else arriving
// before it finishes becomes a follower and shares the leader's result.
// This is the overload complement of the LRU cache — the cache only helps
// *after* a first completion, while a popular seed's burst arrives
// *during* it. Entries exist only while a call is in flight (the map is
// not a cache), so memory is bounded by concurrency.
type flightGroup struct {
	mu    sync.Mutex
	calls map[flightKey]*flightCall
}

// do runs fn for key, coalescing concurrent callers. It returns the
// results, whether this caller shared a leader's flight (followers and
// leaders see shared=true/false respectively — the caller's coalesce
// counter and cache-fill decision key on it), and the error.
//
// A follower whose own ctx dies while waiting returns ctx.Err() without
// disturbing the flight. A follower is also handed the leader's error
// as-is — including a cancellation error when the leader's client went
// away mid-scan; callers that outlive such a leader retry the key once,
// becoming the new leader (see handleSimilar).
func (g *flightGroup) do(ctx context.Context, key flightKey, fn func() ([]knn.Result, error)) (recs []knn.Result, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[flightKey]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.waiters.Add(1)
		defer c.waiters.Add(-1)
		select {
		case <-c.done:
			return c.recs, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.recs, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key) // before close: a post-completion arrival starts fresh
	g.mu.Unlock()
	close(c.done)
	return c.recs, false, c.err
}

// waiting reports how many followers are parked on key's in-flight call
// right now (0 when no call is in flight). Test-only observability.
func (g *flightGroup) waiting(key flightKey) int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters.Load()
	}
	return 0
}
