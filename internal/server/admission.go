package server

import (
	"errors"
	"sync/atomic"
)

// errShed is returned by retrieval paths refused by the admission
// controller; the error mapper answers it with 503 overloaded plus a
// load-derived Retry-After.
var errShed = errors.New("server: admission budget exhausted")

// admission is the cost-based concurrency limiter of the read path. Where
// a flat request counter treats a k=5 IVF probe and a k=1000 exact scan
// over 25M rows as equal load, admission charges each request its
// *predicted* scan cost (knn.Index.PredictedCost: rows×dims touched) and
// bounds the total outstanding cost. Excess load is shed immediately —
// queueing under overload only converts shed into timeout.
type admission struct {
	budget   int64
	inflight atomic.Int64 // predicted cost currently admitted
}

// tryAcquire admits cost units of work, or reports false to shed. An idle
// controller always admits one request even when its cost alone exceeds
// the budget — otherwise a single over-budget query could never run and
// would starve forever rather than merely serialize.
func (a *admission) tryAcquire(cost int64) bool {
	for {
		cur := a.inflight.Load()
		if cur+cost > a.budget && cur != 0 {
			return false
		}
		if a.inflight.CompareAndSwap(cur, cur+cost) {
			return true
		}
	}
}

// release returns admitted cost. Callers must pass the exact cost they
// acquired.
func (a *admission) release(cost int64) { a.inflight.Add(-cost) }

// pressure is the admitted fraction of the budget (may exceed 1 when an
// over-budget query was admitted while idle). It is the signal brownout
// and Retry-After derivation key on.
func (a *admission) pressure() float64 {
	return float64(a.inflight.Load()) / float64(a.budget)
}
