package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func fetchBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// The /v1 paths are the canonical API; the unversioned spellings are
// aliases that must serve byte-identical responses.
func TestV1AliasesServeIdenticalBodies(t *testing.T) {
	_, ts := testServer(t)
	for _, q := range []string{
		"/similar?item=5&k=7",
		"/coldstart/item?item=3&k=5",
		"/coldstart/user?gender=F&power=1&k=4",
	} {
		legacyCode, legacy := fetchBody(t, ts.URL+q)
		v1Code, v1 := fetchBody(t, ts.URL+"/v1"+q)
		if legacyCode != http.StatusOK || v1Code != http.StatusOK {
			t.Fatalf("%s: legacy %d, v1 %d", q, legacyCode, v1Code)
		}
		if string(legacy) != string(v1) {
			t.Fatalf("%s: alias bodies differ:\nlegacy: %s\nv1:     %s", q, legacy, v1)
		}
	}
	// /stats bumps no counters itself, so back-to-back fetches must agree
	// on everything except the snapshot age, which ticks in real time.
	_, legacy := fetchBody(t, ts.URL+"/stats")
	_, v1 := fetchBody(t, ts.URL+"/v1/stats")
	var legacySt, v1St Stats
	if err := json.Unmarshal(legacy, &legacySt); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(v1, &v1St); err != nil {
		t.Fatal(err)
	}
	legacySt.SnapshotAgeSeconds, v1St.SnapshotAgeSeconds = 0, 0
	if legacySt != v1St {
		t.Fatalf("/stats alias bodies differ:\nlegacy: %s\nv1:     %s", legacy, v1)
	}
}

func decodeEnvelope(t *testing.T, b []byte) errorEnvelope {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("error body is not the envelope: %v\nbody: %s", err, b)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", b)
	}
	return env
}

// Every failure mode — bad input, recovered panic, shed load, timeout —
// must answer with the one JSON error shape and a stable machine code.
func TestErrorEnvelope(t *testing.T) {
	s, ts := testServer(t)

	code, body := fetchBody(t, ts.URL+"/v1/similar?item=notanint")
	if code != http.StatusBadRequest {
		t.Fatalf("bad input: status %d", code)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != "bad_request" {
		t.Fatalf("bad input: code %q, want bad_request", env.Error.Code)
	}

	boom := s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/similar", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic: status %d", rec.Code)
	}
	if env := decodeEnvelope(t, rec.Body.Bytes()); env.Error.Code != "internal" {
		t.Fatalf("panic: code %q, want internal", env.Error.Code)
	}

	// Saturate the admission budget directly; a default /v1/similar scan
	// then sheds with the overloaded envelope.
	s.adm.inflight.Store(s.adm.budget)
	code, body = fetchBody(t, ts.URL+"/v1/similar?item=1&k=5")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("shed: status %d", code)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != "overloaded" {
		t.Fatalf("shed: code %q, want overloaded", env.Error.Code)
	}
	s.adm.inflight.Store(0)

	// A retrieval abandoned because the client went away maps to 499 with
	// its own stable code — a client outcome, never a server error.
	rec = httptest.NewRecorder()
	s.retrievalError(rec, fmt.Errorf("scan: %w", context.Canceled))
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("canceled: status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if env := decodeEnvelope(t, rec.Body.Bytes()); env.Error.Code != "canceled" {
		t.Fatalf("canceled: code %q, want canceled", env.Error.Code)
	}

	// http.TimeoutHandler writes timeoutBody verbatim; it must parse as
	// the same envelope.
	if env := decodeEnvelope(t, []byte(timeoutBody)); env.Error.Code != "timeout" {
		t.Fatalf("timeout: code %q, want timeout", env.Error.Code)
	}
}

// With CacheSize set, a repeated /similar query is served from the cache
// byte-identically, and hits/misses are counted; a different k is a
// different cache key.
func TestSimilarCache(t *testing.T) {
	s, _ := testServer(t)
	cached := NewConfigured(s.ds, testModel(s), Config{MaxK: 100, CacheSize: 8})
	ts := httptest.NewServer(cached.Handler())
	defer ts.Close()

	code1, first := fetchBody(t, ts.URL+"/v1/similar?item=5&k=7")
	code2, second := fetchBody(t, ts.URL+"/v1/similar?item=5&k=7")
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d / %d", code1, code2)
	}
	if string(first) != string(second) {
		t.Fatalf("cached response differs:\nscan:  %s\ncache: %s", first, second)
	}
	if h, m := cached.cacheFor(1).Hits(), cached.cacheFor(1).Misses(); h != 1 || m != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d, want 1/1", h, m)
	}
	if _, b := fetchBody(t, ts.URL+"/v1/similar?item=5&k=9"); len(b) == 0 {
		t.Fatal("empty body for k=9")
	}
	if h, m := cached.cacheFor(1).Hits(), cached.cacheFor(1).Misses(); h != 1 || m != 2 {
		t.Fatalf("after new k: hits=%d misses=%d, want 1/2", h, m)
	}
	if got := cached.cacheHits.Value(); got != 1 {
		t.Fatalf("retrieval_cache_hits_total = %d, want 1", got)
	}
	if got := cached.cacheMisses.Value(); got != 2 {
		t.Fatalf("retrieval_cache_misses_total = %d, want 2", got)
	}
}
