package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sisg/internal/knn"
	"sisg/internal/model"
)

// A panicking handler must be answered with a 500 and counted, never kill
// the process, and must not poison subsequent requests.
func TestPanicRecovery(t *testing.T) {
	s, _ := testServer(t)
	boom := s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	ts := httptest.NewServer(boom)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
		}
	}
	if got := s.Stats().Panics; got != 3 {
		t.Fatalf("Panics = %d, want 3", got)
	}
}

// Retrievals whose predicted cost does not fit the remaining admission
// budget are shed with 503 + Retry-After while the admitted scan proceeds.
func TestConcurrencyLimiterSheds(t *testing.T) {
	s, ts := testServer(t)
	s.adm = &admission{budget: testFlatCost(s)} // room for exactly one flat scan

	inside := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.retrieve = func(ctx context.Context, snap model.Snapshot, item int32, opts knn.Options) ([]knn.Result, error) {
		once.Do(func() { close(inside) })
		<-release
		return nil, nil
	}

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/similar?item=1&k=5")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-inside // the whole budget is now held by the blocked scan

	// A different item (so single-flight cannot coalesce it) must shed.
	resp, err := http.Get(ts.URL + "/v1/similar?item=2&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit request answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response has no Retry-After header")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
}

// A request that exceeds RequestTimeout is cut off with 503 instead of
// holding its connection open indefinitely.
func TestRequestTimeout(t *testing.T) {
	s, _ := testServer(t)
	s.cfg.RequestTimeout = 20 * time.Millisecond
	done := make(chan struct{})
	slow := s.harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-done:
		}
	}))
	ts := httptest.NewServer(slow)
	defer ts.Close()
	defer close(done)

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503", resp.StatusCode)
	}
}

// The full hardened handler chain still serves the normal API.
func TestHardenedChainServes(t *testing.T) {
	s, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/similar?item=1&k=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("similar via hardened chain: %d %s", resp.StatusCode, body)
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Similar != 1 || st.Panics != 0 || st.Shed != 0 {
		t.Fatalf("stats after one request: %+v", st)
	}
	_ = s
}
