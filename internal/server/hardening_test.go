package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// A panicking handler must be answered with a 500 and counted, never kill
// the process, and must not poison subsequent requests.
func TestPanicRecovery(t *testing.T) {
	s, _ := testServer(t)
	boom := s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	ts := httptest.NewServer(boom)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
		}
	}
	if got := s.Stats().Panics; got != 3 {
		t.Fatalf("Panics = %d, want 3", got)
	}
}

// Requests beyond MaxInFlight are shed with 503 + Retry-After while the
// admitted request proceeds.
func TestConcurrencyLimiterSheds(t *testing.T) {
	s, _ := testServer(t)
	s.cfg.MaxInFlight = 1
	s.sem = make(chan struct{}, 1)

	inside := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	h := s.withLimit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(inside) })
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-inside // the slot is now occupied

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit request answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response has no Retry-After header")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
}

// A request that exceeds RequestTimeout is cut off with 503 instead of
// holding its connection open indefinitely.
func TestRequestTimeout(t *testing.T) {
	s, _ := testServer(t)
	s.cfg.RequestTimeout = 20 * time.Millisecond
	done := make(chan struct{})
	slow := s.harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-done:
		}
	}))
	ts := httptest.NewServer(slow)
	defer ts.Close()
	defer close(done)

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503", resp.StatusCode)
	}
}

// The full hardened handler chain still serves the normal API.
func TestHardenedChainServes(t *testing.T) {
	s, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/similar?item=1&k=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("similar via hardened chain: %d %s", resp.StatusCode, body)
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Similar != 1 || st.Panics != 0 || st.Shed != 0 {
		t.Fatalf("stats after one request: %+v", st)
	}
	_ = s
}
