package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

// Satellite 3: bad knn.Options spellings must surface as the /v1 error
// envelope's bad_request code end-to-end — the engine's Validate message
// travels to the client, never a 500 and never a silently ignored knob.
func TestANNOptionsBadRequests(t *testing.T) {
	s, ts := testServer(t)
	cases := []struct {
		name        string
		query       string
		wantMessage string // substring of the envelope message
	}{
		{"unknown index", "/v1/similar?item=1&k=5&index=hnsw", `unknown index "hnsw"`},
		{"negative nprobe", "/v1/similar?item=1&k=5&index=ivf&nprobe=-2", "nprobe must be >= 0"},
		{"nprobe not integer", "/v1/similar?item=1&k=5&index=ivf&nprobe=lots", "nprobe is not an integer"},
		{"nprobe without ivf", "/v1/similar?item=1&k=5&nprobe=4", "nprobe is only meaningful with index=ivf"},
		{"nprobe with flat", "/v1/similar?item=1&k=5&index=flat&nprobe=4", "nprobe is only meaningful with index=ivf"},
		{"quantized without ivf", "/v1/similar?item=1&k=5&quantized=true", "quantized is only meaningful with index=ivf"},
		{"quantized not boolean", "/v1/similar?item=1&k=5&index=ivf&quantized=maybe", "quantized is not a boolean"},
	}
	before := s.Stats().ClientErrors
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := fetchBody(t, ts.URL+tc.query)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body: %s)", code, body)
			}
			env := decodeEnvelope(t, body)
			if env.Error.Code != "bad_request" {
				t.Fatalf("code %q, want bad_request (body: %s)", env.Error.Code, body)
			}
			if !strings.Contains(env.Error.Message, tc.wantMessage) {
				t.Fatalf("message %q does not mention %q", env.Error.Message, tc.wantMessage)
			}
		})
	}
	if got, want := s.Stats().ClientErrors-before, uint64(len(cases)); got != want {
		t.Fatalf("ClientErrors advanced by %d, want %d", got, want)
	}
}

// The exhaustive-probe degenerate case holds end-to-end: /v1/similar with
// index=ivf and an nprobe covering every cluster serves a byte-identical
// body to the default exact scan, quantization and all intermediate
// plumbing included only where it cannot change the answer.
func TestANNExhaustiveMatchesFlatOverHTTP(t *testing.T) {
	_, ts := testServer(t)
	for _, q := range []string{"item=5&k=7", "item=42&k=20"} {
		flatCode, flat := fetchBody(t, ts.URL+"/v1/similar?"+q)
		ivfCode, ivf := fetchBody(t, ts.URL+"/v1/similar?"+q+"&index=ivf&nprobe=1000000")
		if flatCode != http.StatusOK || ivfCode != http.StatusOK {
			t.Fatalf("%s: flat %d, ivf %d", q, flatCode, ivfCode)
		}
		if string(flat) != string(ivf) {
			t.Fatalf("%s: exhaustive IVF body differs from flat:\nflat: %s\nivf:  %s", q, flat, ivf)
		}
		explicitCode, explicit := fetchBody(t, ts.URL+"/v1/similar?"+q+"&index=flat")
		if explicitCode != http.StatusOK || string(explicit) != string(flat) {
			t.Fatalf("%s: explicit index=flat differs from default (status %d)", q, explicitCode)
		}
	}
}

// Default-probe IVF (with and without quantization) serves a well-formed
// candidate list of the requested size; the ANN path must not interfere
// with the exact-scan cache (approximate results must never be served to
// a later exact request, or vice versa).
func TestANNServesAndCacheStaysExact(t *testing.T) {
	cfg := corpus.Tiny()
	cfg.NumSessions = 1500
	ds, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := sgns.Defaults()
	opt.Epochs = 1
	m, err := sisg.Train(ds.Dict, ds.Sessions, sisg.VariantSISGFUD, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := NewConfigured(ds, m, Config{MaxK: 100, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	warm := func(url string, wantLen int) {
		t.Helper()
		code, body := fetchBody(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (body: %s)", url, code, body)
		}
		var cands []Candidate
		if err := json.Unmarshal(body, &cands); err != nil {
			t.Fatalf("%s: bad body: %v", url, err)
		}
		if len(cands) != wantLen {
			t.Fatalf("%s: %d candidates, want %d", url, len(cands), wantLen)
		}
	}
	warm(ts.URL+"/v1/similar?item=7&k=10&index=ivf", 10)
	warm(ts.URL+"/v1/similar?item=7&k=10&index=ivf&quantized=true", 10)
	warm(ts.URL+"/v1/similar?item=7&k=10&index=ivf&nprobe=3", 10)
	if got := s.cacheMisses.Value() + s.cacheHits.Value(); got != 0 {
		t.Fatalf("ANN requests touched the exact-scan cache (%d hits+misses)", got)
	}
	warm(ts.URL+"/v1/similar?item=7&k=10", 10) // exact: populates the cache
	if got := s.cacheMisses.Value(); got != 1 {
		t.Fatalf("exact request should miss once, got %d misses", got)
	}
	warm(ts.URL+"/v1/similar?item=7&k=10", 10)
	if got := s.cacheHits.Value(); got != 1 {
		t.Fatalf("repeat exact request should hit the cache, got %d hits", got)
	}
}
