package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"sisg/internal/knn"
	"sisg/internal/metrics"
	"sisg/internal/model"
)

// waitFor polls cond until it holds or the deadline passes; failing the
// test on timeout. The conditions below are all monotone ("the budget was
// released", "the counter reached n"), so polling cannot observe a
// transient truth.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// A burst of identical /v1/similar requests arriving while the first one
// is still scanning is answered by ONE scan: the followers park on the
// leader's flight and share its result byte-for-byte.
func TestSingleFlightCoalescesIdenticalSeeds(t *testing.T) {
	s, ts := testServer(t)

	var scans atomic.Int64
	started := make(chan struct{}, 4)
	gate := make(chan struct{})
	real := s.retrieve
	s.retrieve = func(ctx context.Context, snap model.Snapshot, item int32, opts knn.Options) ([]knn.Result, error) {
		scans.Add(1)
		started <- struct{}{}
		<-gate
		return real(ctx, snap, item, opts)
	}

	key := flightKey{gen: 1, item: 5, k: 7}
	type reply struct {
		code int
		body string
	}
	get := func(out chan<- reply) {
		code, body := fetchBody(t, ts.URL+"/v1/similar?item=5&k=7")
		out <- reply{code, string(body)}
	}

	leader := make(chan reply, 1)
	go get(leader)
	<-started // the leader holds the scan open

	const followers = 3
	fc := make(chan reply, followers)
	for i := 0; i < followers; i++ {
		go get(fc)
	}
	// Provably parked: the flight reports all three followers waiting.
	waitFor(t, "followers to park on the flight", func() bool {
		return s.flights[0].waiting(key) == followers
	})
	close(gate)

	want := <-leader
	if want.code != http.StatusOK {
		t.Fatalf("leader: status %d", want.code)
	}
	for i := 0; i < followers; i++ {
		if got := <-fc; got != want {
			t.Fatalf("follower %d: %d %q, leader had %d %q", i, got.code, got.body, want.code, want.body)
		}
	}
	if n := scans.Load(); n != 1 {
		t.Fatalf("%d scans for %d identical requests, want 1", n, followers+1)
	}
	if got := s.Stats().Coalesced; got != followers {
		t.Fatalf("Coalesced = %d, want %d", got, followers)
	}
	if got := s.adm.inflight.Load(); got != 0 {
		t.Fatalf("admitted cost %d still outstanding after all requests finished", got)
	}
}

// A client that disconnects mid-scan must (a) stop the scan, (b) hand its
// admitted cost back, and (c) be counted as canceled — never as a server
// error. The freed budget is proven by a follow-up request succeeding
// against a budget of exactly one scan.
func TestClientDisconnectFreesAdmissionBudget(t *testing.T) {
	s, ts := testServer(t)
	s.adm = &admission{budget: testFlatCost(s)} // room for exactly one scan

	started := make(chan struct{}, 1)
	var blocking atomic.Bool
	blocking.Store(true)
	real := s.retrieve
	s.retrieve = func(ctx context.Context, snap model.Snapshot, item int32, opts knn.Options) ([]knn.Result, error) {
		if !blocking.Load() {
			return real(ctx, snap, item, opts)
		}
		started <- struct{}{}
		// Emulate the engine: park until cancelled, return its sentinel.
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %w", knn.ErrCanceled, ctx.Err())
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/similar?item=1&k=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-started
	if got := s.adm.inflight.Load(); got != s.adm.budget {
		t.Fatalf("admitted cost %d while scanning, want the full budget %d", got, s.adm.budget)
	}

	cancel() // the client goes away mid-scan
	<-done
	waitFor(t, "the cancelled scan to release its budget", func() bool {
		return s.adm.inflight.Load() == 0
	})
	waitFor(t, "the cancellation to be counted", func() bool {
		return s.Stats().Canceled == 1
	})

	// The budget really is free again: a fresh request fits and succeeds.
	blocking.Store(false)
	code, body := fetchBody(t, ts.URL+"/v1/similar?item=1&k=5")
	if code != http.StatusOK {
		t.Fatalf("request after disconnect: %d %s", code, body)
	}
	if st := s.Stats(); st.Panics != 0 || st.Shed != 0 {
		t.Fatalf("disconnect was misclassified: %+v", st)
	}
}

// When a coalesced flight's LEADER disconnects, its followers are handed
// the cancellation — but a follower whose own client is still there must
// retry as the new leader and serve a real answer, not propagate someone
// else's hangup.
func TestFollowerSurvivesLeaderCancellation(t *testing.T) {
	s, ts := testServer(t)

	var calls atomic.Int64
	started := make(chan struct{}, 2)
	real := s.retrieve
	s.retrieve = func(ctx context.Context, snap model.Snapshot, item int32, opts knn.Options) ([]knn.Result, error) {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-ctx.Done() // first scan: park until the leader's client hangs up
			return nil, fmt.Errorf("%w: %w", knn.ErrCanceled, ctx.Err())
		}
		return real(ctx, snap, item, opts)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(leaderCtx, http.MethodGet, ts.URL+"/v1/similar?item=6&k=4", nil)
	if err != nil {
		t.Fatal(err)
	}
	leaderDone := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(leaderDone)
	}()
	<-started

	key := flightKey{gen: 1, item: 6, k: 4}
	followerDone := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		code, body := fetchBody(t, ts.URL+"/v1/similar?item=6&k=4")
		followerDone <- struct {
			code int
			body string
		}{code, string(body)}
	}()
	waitFor(t, "the follower to park on the flight", func() bool {
		return s.flights[0].waiting(key) == 1
	})

	cancelLeader()
	<-leaderDone
	got := <-followerDone
	if got.code != http.StatusOK {
		t.Fatalf("follower after leader hangup: %d %s", got.code, got.body)
	}
	var cands []Candidate
	if err := json.Unmarshal([]byte(got.body), &cands); err != nil || len(cands) != 4 {
		t.Fatalf("follower body: %v / %s", err, got.body)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d scans, want 2 (cancelled leader + follower retry)", n)
	}
	if st := s.Stats(); st.Canceled != 1 || st.Similar != 1 {
		t.Fatalf("stats after leader hangup: %+v", st)
	}
}

// Retry-After is derived from load, floored, jittered and clamped: at an
// idle server it sits just above the configured floor, under high measured
// latency it scales up, and it never leaves [1, 30]. The jitter must
// actually spread values — synchronized clients retrying in lockstep would
// re-create the spike that shed them.
func TestRetryAfterDerivation(t *testing.T) {
	s, _ := testServer(t)

	for i := 0; i < 64; i++ {
		v := s.retryAfterSeconds()
		if n, err := strconv.Atoi(v); err != nil || n < 1 || n > 2 {
			t.Fatalf("idle Retry-After %q, want an integer in [1,2]", v)
		}
	}

	// At a floor wide enough for integer seconds to express the half-wide
	// jitter window, the advertised values must actually spread.
	s.cfg.RetryAfter = 10 * time.Second
	distinct := make(map[string]bool)
	for i := 0; i < 64; i++ {
		v := s.retryAfterSeconds()
		n, err := strconv.Atoi(v)
		if err != nil || n < 10 || n > 15 {
			t.Fatalf("floored Retry-After %q, want an integer in [10,15]", v)
		}
		distinct[v] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("no jitter spread: 64 sheds advertised only %v", distinct)
	}
	s.cfg.RetryAfter = time.Second

	// Drive the latency EWMA to ~5s: the advertised back-off follows the
	// measured backlog (~4×EWMA) instead of the static floor, clamped at 30.
	for i := 0; i < 200; i++ {
		s.lat.Observe(5)
	}
	for i := 0; i < 16; i++ {
		n, err := strconv.Atoi(s.retryAfterSeconds())
		if err != nil || n < 20 || n > 30 {
			t.Fatalf("loaded Retry-After %d (err %v), want in [20,30]", n, err)
		}
	}
}

// The brownout state machine needs BOTH level hysteresis (enter and exit
// thresholds far apart, with a sticky dead band between) and time
// hysteresis (conditions must persist for a full hold) — a spike or a dip
// shorter than the hold must not flip the serving contract.
func TestBrownoutHysteresis(t *testing.T) {
	reg := metrics.NewRegistry()
	b := &brownout{
		highWater: 0.75, lowWater: 0.25, latHigh: 1.0, hold: time.Second,
		entered: reg.Counter("test_brownout_entered_total", "test"),
		exited:  reg.Counter("test_brownout_exited_total", "test"),
	}
	t0 := time.Unix(1000, 0)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }

	b.observe(at(0), 0.9, 0) // hot, pending starts
	if b.active() {
		t.Fatal("entered brownout with no hold elapsed")
	}
	b.observe(at(500), 0.9, 0)
	if b.active() {
		t.Fatal("entered brownout before the hold elapsed")
	}
	b.observe(at(999), 0.1, 0) // dips to cool: the pending enter disarms
	b.observe(at(1100), 0.9, 0)
	b.observe(at(1500), 0.9, 0)
	if b.active() {
		t.Fatal("a cool-interrupted spike must not enter brownout")
	}
	b.observe(at(1800), 0.5, 0) // dead-band trough (an admission-wave gap): stays armed
	b.observe(at(2200), 0.9, 0) // hot at both ends of an 1100ms window, no cool inside: enter
	if !b.active() {
		t.Fatal("sustained hot pressure did not enter brownout")
	}

	b.observe(at(2300), 0.5, 0) // dead band is sticky while degraded
	if !b.active() {
		t.Fatal("dead-band pressure must keep brownout, not exit it")
	}
	b.observe(at(2400), 0.1, 0) // cool, pending exit starts
	b.observe(at(2600), 0.9, 0) // hot again: the pending exit disarms
	b.observe(at(2700), 0.1, 0) // cool, pending exit restarts
	b.observe(at(3200), 0.1, 0)
	if !b.active() {
		t.Fatal("exited before the hold elapsed")
	}
	b.observe(at(3900), 0.1, 0) // cool held 1200ms: exit
	if b.active() {
		t.Fatal("sustained cool pressure did not exit brownout")
	}

	// Latency alone is an enter condition: a server can be slow without
	// being full (e.g. budget raised beyond what the cores can serve).
	b.observe(at(4000), 0.0, 2.0)
	b.observe(at(5100), 0.0, 2.0)
	if !b.active() {
		t.Fatal("sustained high latency did not enter brownout")
	}

	if e, x := b.entered.Value(), b.exited.Value(); e != 2 || x != 1 {
		t.Fatalf("transition counters entered=%d exited=%d, want 2/1", e, x)
	}
}

// While degraded, default /v1/similar answers come from the IVF index and
// say so via X-Degraded; an explicit index= request still gets exactly the
// strategy it asked for, and recovery drops the header again.
func TestBrownoutDegradedServing(t *testing.T) {
	s, ts := testServer(t)
	s.brown.degraded.Store(true)

	resp, err := http.Get(ts.URL + "/v1/similar?item=5&k=7")
	if err != nil {
		t.Fatal(err)
	}
	var cands []Candidate
	if err := json.NewDecoder(resp.Body).Decode(&cands); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(cands) != 7 {
		t.Fatalf("degraded similar: %d with %d candidates", resp.StatusCode, len(cands))
	}
	if got := resp.Header.Get("X-Degraded"); got != "ivf" {
		t.Fatalf("X-Degraded = %q, want ivf", got)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("degraded candidates not sorted")
		}
	}
	if !s.Stats().Degraded {
		t.Fatal("/v1/stats must report degraded=true during brownout")
	}

	// The client asked for a flat scan by name; brownout must not rewrite
	// an explicit strategy.
	resp, err = http.Get(ts.URL + "/v1/similar?item=5&k=7&index=flat")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Degraded"); got != "" {
		t.Fatalf("explicit index=flat carried X-Degraded %q", got)
	}

	s.brown.degraded.Store(false)
	resp, err = http.Get(ts.URL + "/v1/similar?item=5&k=7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Degraded"); got != "" {
		t.Fatalf("recovered server still advertises X-Degraded %q", got)
	}
	if s.Stats().Degraded {
		t.Fatal("stats still degraded after recovery")
	}
}

// Cost-based admission, end to end: with a budget sized for one flat scan,
// cheap explicit IVF probes pack many-at-a-time into the same budget a
// single flat scan would exhaust.
func TestAdmissionAllowsCheapScansUnderFlatBudget(t *testing.T) {
	s, _ := testServer(t)
	flat := testFlatCost(s)
	snap, releaseSnap := s.models.Acquire()
	ivf := snap.Index().PredictedCost(knn.Options{K: 5, Index: knn.IndexIVF})
	releaseSnap()
	if ivf >= flat {
		t.Fatalf("IVF probe cost %d not cheaper than flat %d on this corpus", ivf, flat)
	}
	s.adm = &admission{budget: flat}

	if !s.adm.tryAcquire(ivf) || !s.adm.tryAcquire(ivf) {
		t.Fatal("two cheap probes must fit where one flat scan fills the budget")
	}
	if s.adm.tryAcquire(flat) {
		t.Fatal("a flat scan admitted over a partially used budget")
	}
	s.adm.release(ivf)
	s.adm.release(ivf)
	if !s.adm.tryAcquire(flat) {
		t.Fatal("flat scan refused on an idle controller")
	}
	// Admit-when-idle: a single over-budget request serializes, never starves.
	s.adm.release(flat)
	if !s.adm.tryAcquire(flat * 100) {
		t.Fatal("idle controller refused an over-budget query outright")
	}
	s.adm.release(flat * 100)
}
