package server

import (
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/metrics"
)

// brownout is the accuracy-for-availability state machine of /v1/similar:
// under sustained pressure it downgrades the default exact flat scan to
// the IVF index (whose predicted cost is a fraction of flat, so the same
// admission budget serves many times the request rate), and recovers once
// pressure stays low. Degraded responses carry "X-Degraded: ivf" and the
// state is visible in /v1/stats — shedding accuracy is a contract change
// the client is told about, never a silent one.
//
// Both transitions require their condition to hold for a full hold window
// (hysteresis in time) and the enter/exit thresholds are far apart
// (hysteresis in level), so a load spike cannot make the server flap
// between exact and approximate answers on alternating requests.
type brownout struct {
	highWater float64       // pressure at or above this is "hot"
	lowWater  float64       // pressure at or below this is "cool"
	latHigh   float64       // seconds; EWMA latency at or above this is "hot"
	hold      time.Duration // how long a condition must persist to transition

	degraded atomic.Bool

	mu           sync.Mutex
	pendingSince time.Time // start of the currently persisting condition

	entered *metrics.Counter
	exited  *metrics.Counter
}

// observe feeds one load sample (admission pressure and the latency EWMA,
// in seconds) into the state machine. It is called on every retrieval
// completion and every shed, so under the loads where transitions matter
// it is evaluated constantly.
func (b *brownout) observe(now time.Time, pressure, ewmaSeconds float64) {
	hot := pressure >= b.highWater || (ewmaSeconds > 0 && ewmaSeconds >= b.latHigh)
	cool := pressure <= b.lowWater && ewmaSeconds < b.latHigh

	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.degraded.Load()
	want := hot
	if cur {
		want = !cool // stay degraded in the dead band between the waters
	}
	if want == cur {
		// Only a sample past the OPPOSITE threshold disarms a pending
		// transition; dead-band samples leave it armed. This matters under
		// saturation: admission admits scans in waves, and the last
		// completions of each wave observe the trough between waves — if
		// those dips disarmed the hold clock, a fully saturated server
		// would never accumulate a hold window of "hot". A transition
		// still only FIRES on a sample past its own threshold, so entry
		// needs hot at both ends of a hold window with no cool inside it
		// (and exit the mirror image).
		if (!cur && cool) || (cur && hot) {
			b.pendingSince = time.Time{}
		}
		return
	}
	if b.pendingSince.IsZero() {
		b.pendingSince = now
		return
	}
	if now.Sub(b.pendingSince) < b.hold {
		return
	}
	b.degraded.Store(want)
	b.pendingSince = time.Time{}
	if want {
		b.entered.Inc()
	} else {
		b.exited.Inc()
	}
}

// active reports whether serving is currently degraded.
func (b *brownout) active() bool { return b.degraded.Load() }
