package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sisg/internal/emb"
	"sisg/internal/knn"
	"sisg/internal/model"
	"sisg/internal/rng"
)

// swapSnapshot is a synthetic model generation whose every score IS its
// generation number — so any response mixing two generations (a torn
// read across a snapshot swap) is detectable from the response body
// alone, and any response whose X-Model-Generation header disagrees with
// its scores proves a request was NOT pinned to one snapshot.
type swapSnapshot struct {
	gen uint64
	at  time.Time
	n   int
	dim int
	idx *knn.Index
}

var _ model.Snapshot = (*swapSnapshot)(nil)

func newSwapSnapshot(gen uint64, n, dim int) *swapSnapshot {
	m := emb.NewMatrix(n, dim)
	r := rng.New(gen + 1)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()
	}
	return &swapSnapshot{gen: gen, at: time.Now(), n: n, dim: dim, idx: knn.NewIndex(m, n, false)}
}

func (s *swapSnapshot) Generation() uint64       { return s.gen }
func (s *swapSnapshot) PublishedAt() time.Time   { return s.at }
func (s *swapSnapshot) Variant() string          { return "swap-test" }
func (s *swapSnapshot) Dim() int                 { return s.dim }
func (s *swapSnapshot) VocabSize() int           { return s.n }
func (s *swapSnapshot) NumItems() int            { return s.n }
func (s *swapSnapshot) Servable(item int32) bool { return item >= 0 && int(item) < s.n }
func (s *swapSnapshot) Index() *knn.Index        { return s.idx }

func (s *swapSnapshot) results(seed int32, k int) []knn.Result {
	rs := make([]knn.Result, k)
	for j := range rs {
		rs[j] = knn.Result{ID: (seed + int32(j) + 1) % int32(s.n), Score: float32(s.gen)}
	}
	return rs
}

func (s *swapSnapshot) Similar(ctx context.Context, seeds []int32, opts knn.Options) ([][]knn.Result, error) {
	out := make([][]knn.Result, len(seeds))
	for i, seed := range seeds {
		if !s.Servable(seed) {
			return nil, model.ErrNotServable
		}
		out[i] = s.results(seed, opts.K)
	}
	return out, nil
}

func (s *swapSnapshot) SimilarToVector(ctx context.Context, qv []float32, k int, skip func(int32) bool) ([]knn.Result, error) {
	return s.results(0, k), nil
}

func (s *swapSnapshot) ColdItemVector(item int32) ([]float32, error) {
	if !s.Servable(item) {
		return nil, model.ErrNotServable
	}
	return make([]float32, s.dim), nil
}

func (s *swapSnapshot) ColdItemVectorFromNames(names []string) ([]float32, error) {
	return make([]float32, s.dim), nil
}

func (s *swapSnapshot) RecommendForColdUser(ctx context.Context, types []int32, k int) ([]knn.Result, error) {
	return s.results(0, k), nil
}

// TestHotSwapServing is the zero-downtime proof: /v1/similar is hammered
// from many goroutines while snapshots swap every couple of milliseconds.
// Every response must be a 200 whose body is consistent with exactly one
// generation (the one its X-Model-Generation header names), swaps must
// actually land mid-hammer, and once traffic stops every displaced
// generation must have been retired — only the current one stays live.
// Run under -race this also proves the holder's memory publication.
func TestHotSwapServing(t *testing.T) {
	const (
		items     = 64
		dim       = 8
		publishes = 120
		hammerers = 8
	)
	holder := model.NewHolder(newSwapSnapshot(1, items, dim))
	ds := testDataset(t)
	if ds.Dict.NumItems < items {
		t.Fatalf("test corpus too small: %d items", ds.Dict.NumItems)
	}
	s := NewWithHolder(ds, holder, Config{MaxK: 100, CacheSize: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var published atomic.Uint64
	published.Store(1)
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for g := uint64(2); g <= publishes; g++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			holder.Publish(newSwapSnapshot(g, items, dim))
			published.Store(g)
		}
	}()

	type verdict struct {
		bad  string
		gens map[uint64]bool
	}
	verdicts := make(chan verdict, hammerers)
	var wg sync.WaitGroup
	for h := 0; h < hammerers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			v := verdict{gens: map[uint64]bool{}}
			defer func() { verdicts <- v }()
			for i := 0; published.Load() < publishes; i++ {
				item := (h*7 + i) % items
				resp, err := http.Get(ts.URL + "/v1/similar?item=" + strconv.Itoa(item) + "&k=5")
				if err != nil {
					v.bad = "transport error: " + err.Error()
					return
				}
				var cands []Candidate
				decErr := json.NewDecoder(resp.Body).Decode(&cands)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					v.bad = "status " + strconv.Itoa(resp.StatusCode)
					return
				}
				if decErr != nil {
					v.bad = "bad body: " + decErr.Error()
					return
				}
				gen, err := strconv.ParseUint(resp.Header.Get("X-Model-Generation"), 10, 64)
				if err != nil {
					v.bad = "bad X-Model-Generation: " + err.Error()
					return
				}
				v.gens[gen] = true
				for _, c := range cands {
					if c.Score != float32(gen) {
						v.bad = "torn read: header generation " + strconv.FormatUint(gen, 10) +
							", score from generation " + strconv.Itoa(int(c.Score))
						return
					}
				}
			}
		}(h)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()

	distinct := map[uint64]bool{}
	for h := 0; h < hammerers; h++ {
		v := <-verdicts
		if v.bad != "" {
			t.Fatal(v.bad)
		}
		for g := range v.gens {
			distinct[g] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("hammer saw only %d generation(s); swaps did not land mid-traffic", len(distinct))
	}

	// Drained: no readers, exactly the current generation live, and every
	// displaced snapshot retired.
	deadline := time.Now().Add(5 * time.Second)
	for holder.Readers() != 0 || holder.LiveGenerations() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("after drain: %d readers, %d live generations",
				holder.Readers(), holder.LiveGenerations())
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := holder.Retired(), published.Load()-1; got != want {
		t.Fatalf("retired %d generations, want %d", got, want)
	}
}
