package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// Table-driven coverage of the client-error paths: every malformed input —
// bad query parameters, bad JSON bodies, unknown SI tokens, non-positive
// or overflowing k — must be answered 400 with a counted client error,
// never a 500 and never a silent fallback.
func TestClientErrorPaths(t *testing.T) {
	s, ts := testServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		// /similar query-parameter errors.
		{"similar item missing", "GET", "/similar", ""},
		{"similar item not integer", "GET", "/similar?item=abc", ""},
		{"similar item overflow", "GET", "/similar?item=99999999999999999999", ""},
		{"similar item negative", "GET", "/similar?item=-1", ""},
		{"similar item out of range", "GET", "/similar?item=99999", ""},
		{"similar k zero", "GET", "/similar?item=1&k=0", ""},
		{"similar k negative", "GET", "/similar?item=1&k=-5", ""},
		{"similar k over maxK", "GET", "/similar?item=1&k=101", ""},
		{"similar k overflow", "GET", "/similar?item=1&k=99999999999999999999", ""},
		{"similar k not integer", "GET", "/similar?item=1&k=ten", ""},

		// /coldstart/item GET errors share itemAndK with /similar.
		{"cold item out of range", "GET", "/coldstart/item?item=99999", ""},
		{"cold item k zero", "GET", "/coldstart/item?item=1&k=0", ""},

		// /coldstart/item POST body errors.
		{"cold item invalid json", "POST", "/coldstart/item", `{"si": [`},
		{"cold item not an object", "POST", "/coldstart/item", `"si"`},
		{"cold item unknown field", "POST", "/coldstart/item", `{"sideinfo": ["brand:1"]}`},
		{"cold item trailing garbage", "POST", "/coldstart/item", `{"si": ["brand:1"]} {"again": true}`},
		{"cold item empty si", "POST", "/coldstart/item", `{"si": []}`},
		{"cold item unknown si tokens", "POST", "/coldstart/item", `{"si": ["no-such-token", "also-missing"]}`},
		{"cold item k negative", "POST", "/coldstart/item", `{"si": ["x"], "k": -1}`},
		{"cold item k over maxK", "POST", "/coldstart/item", `{"si": ["x"], "k": 101}`},

		// /coldstart/user GET errors.
		{"cold user unknown gender", "GET", "/coldstart/user?gender=X", ""},
		{"cold user age not integer", "GET", "/coldstart/user?age=old", ""},
		{"cold user power not integer", "GET", "/coldstart/user?power=high", ""},
		{"cold user k zero", "GET", "/coldstart/user?gender=F&k=0", ""},
		{"cold user no matching types", "GET", "/coldstart/user?age=9999", ""},

		// /coldstart/user POST body errors.
		{"cold user invalid json", "POST", "/coldstart/user", `{gender: F}`},
		{"cold user unknown field", "POST", "/coldstart/user", `{"sex": "F"}`},
		{"cold user unknown gender body", "POST", "/coldstart/user", `{"gender": "X"}`},
		{"cold user k negative body", "POST", "/coldstart/user", `{"gender": "F", "k": -3}`},
		{"cold user age type mismatch", "POST", "/coldstart/user", `{"age": "young"}`},
		{"cold user no matching types body", "POST", "/coldstart/user", `{"age": 9999}`},
	}
	before := s.Stats().ClientErrors
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.method == "POST" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body: %s)", resp.StatusCode, body)
			}
			if len(body) == 0 {
				t.Fatal("400 with an empty body gives the client nothing to act on")
			}
		})
	}
	after := s.Stats().ClientErrors
	if got, want := after-before, uint64(len(cases)); got != want {
		t.Fatalf("ClientErrors advanced by %d, want %d (one per rejected request)", got, want)
	}
}

// The POST cold-start paths must also work: a brand-new item known only by
// SI token names, and a cold user described by a JSON body.
func TestColdStartPostHappyPaths(t *testing.T) {
	s, ts := testServer(t)

	// Borrow real SI token names from a catalog item so they resolve.
	names := make([]string, 0, 4)
	for _, id := range s.ds.Dict.ItemSI[3] {
		if id >= 0 {
			names = append(names, s.ds.Dict.Dict.Name(id))
		}
		if len(names) == 4 {
			break
		}
	}
	if len(names) == 0 {
		t.Fatal("test item has no SI tokens")
	}

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("/coldstart/item", `{"si": ["`+strings.Join(names, `","`)+`"], "k": 5}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold item POST: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"item"`) {
		t.Fatalf("cold item POST returned no candidates: %s", body)
	}

	// A partially-unknown SI list still resolves (unknown names skipped).
	resp = post("/coldstart/item", `{"si": ["`+names[0]+`", "definitely-not-a-token"]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partially-resolved SI list: %d, want 200", resp.StatusCode)
	}

	resp = post("/coldstart/user", `{"gender": "F", "power": 1, "k": 4}`)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold user POST: %d %s", resp.StatusCode, body)
	}

	// Age index 0 is a real constraint, distinguishable from "absent".
	resp = post("/coldstart/user", `{"age": 0}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold user POST age=0: %d, want 200", resp.StatusCode)
	}

	st := s.Stats()
	if st.ColdItem != 2 || st.ColdUser != 2 {
		t.Fatalf("serve counters after POSTs: %+v", st)
	}
}
