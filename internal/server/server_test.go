package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func testDataset(t *testing.T) *corpus.Dataset {
	t.Helper()
	cfg := corpus.Tiny()
	cfg.NumSessions = 1500
	ds, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ds := testDataset(t)
	opt := sgns.Defaults()
	opt.Epochs = 1
	m, err := sisg.Train(ds.Dict, ds.Sessions, sisg.VariantSISGFUD, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ds, m, 100)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// testModel unwraps the batch model behind the server's current snapshot
// so tests can build sibling servers over the same embeddings.
func testModel(s *Server) *sisg.Model {
	snap, release := s.models.Acquire()
	defer release()
	return snap.(*sisg.ModelSnapshot).Model()
}

// testFlatCost is the predicted cost of one flat scan over the server's
// current snapshot, for sizing admission budgets in tests.
func testFlatCost(s *Server) int64 {
	snap, release := s.models.Acquire()
	defer release()
	return flatCost(snap)
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	var h map[string]interface{}
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if h["status"] != "ok" || h["variant"] != "SISG-F-U-D" {
		t.Fatalf("health payload: %v", h)
	}
}

// Readiness is separate from liveness: flipping SetReady(false) (what the
// drain path does before Shutdown) turns /readyz into a 503 while
// /healthz — and actual serving, for requests already routed here — keeps
// answering 200.
func TestReadyzFlipsIndependentlyOfHealthz(t *testing.T) {
	s, ts := testServer(t)

	var r map[string]string
	resp := getJSON(t, ts.URL+"/readyz", &r)
	if resp.StatusCode != http.StatusOK || r["status"] != "ready" {
		t.Fatalf("fresh server: /readyz = %d %v, want 200 ready", resp.StatusCode, r)
	}

	s.SetReady(false)
	if s.Ready() {
		t.Fatal("Ready() true after SetReady(false)")
	}
	resp = getJSON(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: /readyz = %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining server: /healthz = %d, want 200 (alive)", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/similar?item=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining server must still serve routed requests: %d", resp.StatusCode)
	}

	s.SetReady(true)
	resp = getJSON(t, ts.URL+"/readyz", &r)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-readied server: /readyz = %d, want 200", resp.StatusCode)
	}
}

func TestSimilar(t *testing.T) {
	_, ts := testServer(t)
	var cands []Candidate
	resp := getJSON(t, ts.URL+"/similar?item=5&k=7", &cands)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(cands) != 7 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for i, c := range cands {
		if c.Item == 5 {
			t.Fatal("query item in its own candidates")
		}
		if i > 0 && c.Score > cands[i-1].Score {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestSimilarDefaults(t *testing.T) {
	_, ts := testServer(t)
	var cands []Candidate
	getJSON(t, ts.URL+"/similar?item=1", &cands)
	if len(cands) != 20 {
		t.Fatalf("default k: got %d", len(cands))
	}
}

func TestColdItem(t *testing.T) {
	_, ts := testServer(t)
	var cands []Candidate
	resp := getJSON(t, ts.URL+"/coldstart/item?item=3&k=5", &cands)
	if resp.StatusCode != http.StatusOK || len(cands) != 5 {
		t.Fatalf("status %d, %d candidates", resp.StatusCode, len(cands))
	}
}

func TestColdUser(t *testing.T) {
	_, ts := testServer(t)
	var cands []Candidate
	resp := getJSON(t, ts.URL+"/coldstart/user?gender=F&power=1&k=4", &cands)
	if resp.StatusCode != http.StatusOK || len(cands) != 4 {
		t.Fatalf("status %d, %d candidates", resp.StatusCode, len(cands))
	}
}

func TestBadRequests(t *testing.T) {
	s, ts := testServer(t)
	for _, path := range []string{
		"/similar?item=99999",
		"/similar?item=-1",
		"/similar",            // missing item
		"/similar?item=1&k=0", // bad k
		"/similar?item=1&k=1e9",
		"/coldstart/item?item=99999",
		"/coldstart/user?gender=X",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	if s.Stats().ClientErrors == 0 {
		t.Fatal("client errors not counted")
	}
}

func TestStatsCounters(t *testing.T) {
	s, ts := testServer(t)
	getJSON(t, ts.URL+"/similar?item=1", nil)
	getJSON(t, ts.URL+"/coldstart/item?item=1", nil)
	getJSON(t, ts.URL+"/coldstart/user?gender=M", nil)
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Similar != 1 || st.ColdItem != 1 || st.ColdUser != 1 {
		t.Fatalf("stats: %+v", st)
	}
	local := s.Stats()
	// The snapshot age ticks in real time; normalize it before comparing.
	local.SnapshotAgeSeconds, st.SnapshotAgeSeconds = 0, 0
	if local != st {
		t.Fatal("endpoint and snapshot disagree")
	}
}
