package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

var (
	metricComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$`)
	metricSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
)

func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// series strips sample values, leaving just "name{labels}" per line, so two
// exposition snapshots can be compared for ordering while counters move.
func series(body string) []string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line[:strings.LastIndexByte(line, ' ')])
	}
	return out
}

// The exposition page must be parseable Prometheus text format: every line
// a valid comment or sample, every series preceded by its HELP/TYPE pair,
// and the series order stable across scrapes.
func TestMetricsEndpointParses(t *testing.T) {
	_, ts := testServer(t)

	// Generate some traffic first so histograms have observations.
	for _, p := range []string{"/similar?item=1", "/coldstart/user?gender=F", "/healthz", "/nowhere"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	body := fetchMetrics(t, ts)
	seen := make(map[string]bool) // metric families with HELP/TYPE emitted
	samples := 0
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !metricComment.MatchString(line) {
				t.Fatalf("line %d: bad comment %q", i+1, line)
			}
			seen[strings.Fields(line)[2]] = true
			continue
		}
		if !metricSample.MatchString(line) {
			t.Fatalf("line %d: bad sample %q", i+1, line)
		}
		samples++
		name := line
		if j := strings.IndexAny(name, "{ "); j >= 0 {
			name = name[:j]
		}
		// A histogram's _bucket/_sum/_count samples belong to the base family.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && seen[b] {
				base = b
				break
			}
		}
		if !seen[base] {
			t.Fatalf("line %d: sample %q before any HELP/TYPE for %q", i+1, line, base)
		}
	}
	if samples == 0 {
		t.Fatal("exposition page has no samples")
	}

	// The wired-in families must all be present.
	for _, want := range []string{
		`http_requests_total{code="2xx",path="/similar"}`,
		`http_requests_total{code="4xx",path="other"}`, // the /nowhere request
		`http_request_duration_seconds_bucket{path="/similar",le="+Inf"}`,
		`http_request_duration_seconds_sum{path="/similar"}`,
		`http_request_duration_seconds_count{path="/similar"}`,
		"http_inflight",
		"http_panics_total",
		"http_shed_total",
		"http_client_errors_total",
		`serve_candidates_total{path="/similar"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition page missing %q", want)
		}
	}

	// Ordering is deterministic: same series, same order, on every scrape.
	again := fetchMetrics(t, ts)
	a, b := series(body), series(again)
	if len(a) != len(b) {
		t.Fatalf("series count changed between scrapes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series %d reordered between scrapes: %q vs %q", i, a[i], b[i])
		}
	}
}

// Counters must survive a request → panic → recovery cycle: the panic is
// answered 500, counted, and the registry keeps serving /metrics.
func TestMetricsSurvivePanic(t *testing.T) {
	s, ts := testServer(t)

	// A panicking endpoint behind the full production chain (recovery,
	// instrumentation, shedding, timeout) — same wrapping as Handler().
	boom := httptest.NewServer(s.harden(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})))
	defer boom.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(boom.URL + "/kaboom")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
		}
	}

	body := fetchMetrics(t, ts)
	for _, want := range []string{
		"http_panics_total 3",
		`http_requests_total{code="5xx",path="other"} 3`, // measured during unwind
	} {
		if !strings.Contains(body, want) {
			t.Errorf("after panics, exposition page missing %q\n%s", want, body)
		}
	}
	if v, ok := s.reg.Value("http_panics_total"); !ok || v != 3 {
		t.Fatalf("registry Value(http_panics_total) = %v,%v want 3", v, ok)
	}
}
