package dist

import (
	"fmt"
	"time"
)

// Transport moves TNS requests between workers. The engine owns exactly
// one; every worker both calls through it (requester role) and drains its
// inbox (server role). Two implementations ship: chanTransport keeps the
// original in-process channel mesh, tcpTransport runs the same protocol
// over real loopback sockets with length-prefixed frames. A third,
// faultTransport, decorates either with seeded wire faults for the chaos
// harness.
//
// The contract that keeps the mesh deadlock-free is unchanged from the
// channel days: a worker blocked inside Call keeps serving its own inbox
// via the serve callback, so two workers calling each other always make
// progress. Call is ONE delivery attempt — retry, backoff, degrade and
// fencing policy stay in worker.remoteCall, which is what lets the chaos
// invariants ("DroppedPairs==Degraded==0 under recovery") hold verbatim
// whatever the wire does underneath.
type Transport interface {
	// Inbox returns worker id's request queue. Inboxes are never closed
	// (a late TCP delivery must never panic on a closed channel); end of
	// service is signalled by Done instead.
	Inbox(id int32) <-chan *tnsReq

	// Done is closed by CloseInboxes. A worker's final serve loop selects
	// on Inbox and Done, draining opportunistically after Done closes.
	Done() <-chan struct{}

	// Call performs one remote TNS attempt from src to dst: deliver the
	// request, await the gradient. It serves src's own inbox through the
	// serve callback while blocked, returns (grad, true) on success and
	// (nil, false) when timeout expires or abort closes. abort may be nil
	// (never fires). A failed Call leaves no obligation on the callee: a
	// reply arriving after Call returned is discarded.
	Call(src, dst int32, vec []float32, ctx int32, lr float32,
		timeout time.Duration, abort <-chan struct{}, serve func(*tnsReq)) ([]float32, bool)

	// SendOneWay ships a request whose reply nobody awaits — a duplicate
	// delivery on the wire. Best-effort: a full queue or broken link drops
	// it silently. It must never block.
	SendOneWay(src, dst int32, vec []float32, ctx int32, lr float32)

	// CloseInboxes ends the serve phase by closing Done. Safe to call
	// once, after every scan role has finished (no new Calls can start).
	CloseInboxes()

	// Close tears the transport down (listeners, connections, goroutines).
	// Counters behind Stats stay readable after Close.
	Close() error

	// Stats returns cumulative wire counters, process-wide (both sides of
	// every link). The channel transport counts frames only; bytes are
	// zero because nothing is serialized.
	Stats() TransportStats
}

// Severable is implemented by transports whose links can be cut mid-run
// (an established connection closed under the peers' feet). The fault
// decorator uses it for sever injection; the transport's reconnect path
// is what heals it.
type Severable interface {
	Sever(src, dst int32)
}

// TransportStats are cumulative wire-level counters. They are
// observability figures shaped by timing (retries, reconnects), like
// Stats.Retries — deliberately NOT part of the deterministic replay
// contract.
type TransportStats struct {
	FramesSent     uint64 // frames written to the wire (requests + replies)
	FramesReceived uint64 // frames read off the wire
	BytesSent      uint64 // bytes written, length prefixes included
	BytesReceived  uint64 // bytes read
	Dials          uint64 // successful connection establishments
	Reconnects     uint64 // successful dials after a link previously had a connection
	LateReplies    uint64 // replies that arrived after their request was abandoned
}

// Transport selection names for Options.Transport.
const (
	TransportChan = "chan"
	TransportTCP  = "tcp"
)

// newTransport builds the transport Options ask for, wrapping it in the
// fault decorator when the plan injects wire faults.
func newTransport(opt *Options) (Transport, error) {
	var (
		base Transport
		err  error
	)
	switch opt.Transport {
	case "", TransportChan:
		base = newChanTransport(opt.Workers)
	case TransportTCP:
		base, err = newTCPTransport(opt.Workers, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("dist: tcp transport: %w", err)
		}
	default:
		return nil, fmt.Errorf("dist: unknown transport %q (want %q or %q)",
			opt.Transport, TransportChan, TransportTCP)
	}
	if opt.Faults.hasWireFaults() {
		base = newFaultTransport(base, opt.Workers, opt.Seed, opt.Faults)
	}
	return base, nil
}
