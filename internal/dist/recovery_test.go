package dist

import (
	"testing"
	"time"
)

// recoveryOptions are faultOptions with the supervisor enabled and
// detection/backoff timings sized for tests. DeadAfter is kept a
// comfortable multiple of every bounded wait in the system (attempt
// deadline, retry backoff ceiling) so only genuinely-dead workers are ever
// flagged — a false positive would make the pair accounting
// timing-dependent and the determinism assertions flaky.
func recoveryOptions(workers int) Options {
	opt := tinyOptions(workers)
	opt.Recovery = true
	opt.RemoteTimeout = 8 * time.Millisecond
	opt.RemoteRetries = 1
	opt.HeartbeatEvery = 2 * time.Millisecond
	opt.DeadAfter = 40 * time.Millisecond
	opt.RestartBackoff = 2 * time.Millisecond
	opt.RetryBackoff = time.Millisecond
	return opt
}

// deterministicStats is the subset of Stats that must replay exactly under
// one seed — pair accounting and recovery attribution. Timing-shaped
// figures (Retries, BytesSent, HotSyncs, Elapsed) are excluded by design.
func deterministicStats(t *testing.T, st Stats) []uint64 {
	t.Helper()
	out := []uint64{st.Pairs, st.LocalPairs, st.RemotePairs, st.Degraded,
		st.DroppedPairs, st.RecoveredPairs, st.Restarts, st.Takeovers}
	out = append(out, st.PairsPerWorker...)
	for _, d := range st.DeadWorkers {
		out = append(out, uint64(d))
	}
	return out
}

func checkRecoveryInvariants(t *testing.T, st Stats) {
	t.Helper()
	if st.DroppedPairs != 0 {
		t.Fatalf("recovery dropped %d pairs; recovery must drop none", st.DroppedPairs)
	}
	if st.Degraded != 0 {
		t.Fatalf("recovery degraded %d pairs; recovery must degrade none", st.Degraded)
	}
	if st.Pairs != st.LocalPairs+st.RemotePairs+st.Degraded {
		t.Fatalf("pair accounting broken: %d local + %d remote + %d degraded != %d",
			st.LocalPairs, st.RemotePairs, st.Degraded, st.Pairs)
	}
}

// A crashed worker is resurrected from its cursor: the run completes with
// nothing dropped, nothing degraded, and the replacement's work attributed
// to RecoveredPairs.
func TestRecoveryResurrection(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := recoveryOptions(4)
	opt.Faults.CrashWorker = 1
	opt.Faults.CrashAtPairs = 4000

	m, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryInvariants(t, st)
	if st.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", st.Restarts)
	}
	if st.Takeovers != 0 {
		t.Fatalf("Takeovers = %d, want 0 (budget not exhausted)", st.Takeovers)
	}
	if st.RecoveredPairs == 0 {
		t.Fatal("replacement incarnation trained no pairs")
	}
	if len(st.DeadWorkers) != 1 || st.DeadWorkers[0] != 1 {
		t.Fatalf("DeadWorkers = %v, want [1] (the ledger outlives the resurrection)", st.DeadWorkers)
	}
	// The partition finished its scan: strictly more pairs than the crash
	// point (the replacement rescanned the interrupted sequence and went on).
	if st.PairsPerWorker[1] <= opt.Faults.CrashAtPairs {
		t.Fatalf("partition 1 trained %d pairs, want > %d", st.PairsPerWorker[1], opt.Faults.CrashAtPairs)
	}
	if st.Hosts != nil {
		t.Fatalf("Hosts = %v, want nil without a takeover", st.Hosts)
	}
	for _, v := range m.In.Data() {
		if v != v {
			t.Fatal("NaN in recovered model")
		}
	}
}

// A partition that keeps crashing burns its restart budget and is then
// adopted by a survivor: Restarts == MaxRestarts, one takeover, and the
// host map records the new placement.
func TestRecoveryBudgetExhaustionTakeover(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := recoveryOptions(4)
	opt.MaxRestarts = 1
	opt.Faults.Crashes = []CrashSpec{{Worker: 2, AtPairs: 2000, Times: 3}}

	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryInvariants(t, st)
	if st.Restarts != 1 {
		t.Fatalf("Restarts = %d, want exactly the budget (1)", st.Restarts)
	}
	if st.Takeovers != 1 {
		t.Fatalf("Takeovers = %d, want 1", st.Takeovers)
	}
	if st.Hosts == nil || st.Hosts[2] == 2 {
		t.Fatalf("Hosts = %v, want partition 2 re-hosted elsewhere", st.Hosts)
	}
	// The adopting machine is not the faulty one: the partition completes
	// even though the crash spec had a third fire left in it.
	if st.PairsPerWorker[2] == 0 {
		t.Fatal("adopted partition trained nothing")
	}
	if len(st.DeadWorkers) != 1 || st.DeadWorkers[0] != 2 {
		t.Fatalf("DeadWorkers = %v, want [2]", st.DeadWorkers)
	}
}

// A worker that dies before training a single pair (dead at birth, no
// heartbeat ever) is detected purely by its silence and its partition is
// adopted straight away when the restart budget is zero.
func TestRecoveryNeverStartedWorkerTakeover(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := recoveryOptions(4)
	opt.MaxRestarts = -1 // zero budget: first death goes straight to takeover
	opt.Faults.Crashes = []CrashSpec{{Worker: 3, AtStart: true}}

	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryInvariants(t, st)
	if st.Restarts != 0 {
		t.Fatalf("Restarts = %d, want 0", st.Restarts)
	}
	if st.Takeovers != 1 {
		t.Fatalf("Takeovers = %d, want 1", st.Takeovers)
	}
	if st.Hosts == nil || st.Hosts[3] == 3 {
		t.Fatalf("Hosts = %v, want partition 3 re-hosted elsewhere", st.Hosts)
	}
	if st.PairsPerWorker[3] == 0 {
		t.Fatal("never-started partition was not trained by its adopter")
	}
	// Everything the partition trained came from the replacement.
	if st.RecoveredPairs < st.PairsPerWorker[3] {
		t.Fatalf("RecoveredPairs %d < partition 3's %d pairs, all of which are replacement work",
			st.RecoveredPairs, st.PairsPerWorker[3])
	}
}

// Two runs under one seed, each crashing and resurrecting a worker, must
// agree on every deterministic stat: crash triggers fire on the worker's
// own pair counter, replacements resume from the durable cursor with
// RNG streams derived from (seed, partition, incarnation), and recovery
// never lets timing decide whether a pair is remote or degraded.
func TestRecoveryDeterministic(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	run := func() Stats {
		opt := recoveryOptions(4)
		opt.Faults.Crashes = []CrashSpec{
			{Worker: 1, AtPairs: 3000, Times: 1},
			{Worker: 2, AtPairs: 5000, Times: 1},
		}
		_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
		if err != nil {
			t.Fatal(err)
		}
		checkRecoveryInvariants(t, st)
		return st
	}
	a, b := run(), run()
	sa, sb := deterministicStats(t, a), deterministicStats(t, b)
	if len(sa) != len(sb) {
		t.Fatalf("stat vector lengths differ: %d vs %d (dead workers %v vs %v)",
			len(sa), len(sb), a.DeadWorkers, b.DeadWorkers)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("deterministic stat %d differs between same-seed runs: %d vs %d\nrun A: %+v\nrun B: %+v",
				i, sa[i], sb[i], a, b)
		}
	}
	if a.Restarts != 2 {
		t.Fatalf("Restarts = %d, want 2 (one per crashed worker)", a.Restarts)
	}
}
