package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/rng"
)

// faultTransport decorates a real transport with seeded wire faults:
// request drops, fixed delays, duplicate deliveries, severed connections
// and one-way partitions. It sits between worker.remoteCall and the
// transport, so the worker's retry/degrade/fencing policy sees faults
// exactly as it would see a misbehaving network — a request that never
// answers, answers late, or arrives twice.
//
// Determinism: probabilistic decisions (drop, delay, duplicate) draw from
// one RNG stream per REQUESTER, guarded by a mutex because replacement
// incarnations of a worker are different goroutines. Positional triggers
// (severs, partitions) fire on exact per-link send counts. Neither
// touches the training RNGs, and under Recovery no fault can change the
// deterministic accounting — a faulted request only costs Retries, which
// is excluded from the replay contract by design.
type faultTransport struct {
	Transport
	plan  FaultPlan
	mu    []sync.Mutex
	r     []*rng.RNG
	sends [][]atomic.Uint64 // [src][dst] requests attempted on the link
}

func newFaultTransport(base Transport, workers int, seed uint64, plan FaultPlan) *faultTransport {
	f := &faultTransport{
		Transport: base,
		plan:      plan,
		mu:        make([]sync.Mutex, workers),
		r:         make([]*rng.RNG, workers),
		sends:     make([][]atomic.Uint64, workers),
	}
	for i := range f.r {
		f.r[i] = rng.New(seed ^ (0x8ebc6af09c88c6e3 * uint64(i+1)))
		f.sends[i] = make([]atomic.Uint64, workers)
	}
	return f
}

func (f *faultTransport) Call(src, dst int32, vec []float32, ctx int32, lr float32,
	timeout time.Duration, abort <-chan struct{}, serve func(*tnsReq)) ([]float32, bool) {
	k := f.sends[src][dst].Add(1)
	for _, s := range f.plan.Wire.Severs {
		if int32(s.From) == src && int32(s.To) == dst && s.AtSends == k {
			if sv, ok := f.Transport.(Severable); ok {
				sv.Sever(src, dst)
			}
		}
	}
	if f.partitioned(src, dst, k) {
		// Blackholed: the requester cannot tell a partition from a slow
		// peer — it waits out its deadline (serving all the while).
		f.waitServing(src, timeout, abort, serve)
		return nil, false
	}
	drop, dup, delay := f.decide(src)
	if drop {
		f.waitServing(src, timeout, abort, serve)
		return nil, false
	}
	if delay > 0 {
		if delay >= timeout {
			f.waitServing(src, timeout, abort, serve)
			return nil, false
		}
		if !f.waitServing(src, delay, abort, serve) {
			return nil, false
		}
		timeout -= delay
	}
	if dup {
		f.Transport.SendOneWay(src, dst, vec, ctx, lr)
	}
	return f.Transport.Call(src, dst, vec, ctx, lr, timeout, abort, serve)
}

// decide draws this request's probabilistic faults from src's stream.
// Draw order is fixed (drop, delay, dup) and each fraction gates its own
// draw, so enabling one fault never shifts another's stream.
func (f *faultTransport) decide(src int32) (drop bool, dup bool, delay time.Duration) {
	needsDrop := f.plan.DropFraction > 0
	needsDelay := f.plan.Wire.DelayFraction > 0
	needsDup := f.plan.Wire.DupFraction > 0
	if !needsDrop && !needsDelay && !needsDup {
		return false, false, 0
	}
	f.mu[src].Lock()
	r := f.r[src]
	if needsDrop {
		drop = r.Float64() < f.plan.DropFraction
	}
	if needsDelay && r.Float64() < f.plan.Wire.DelayFraction {
		delay = f.plan.Wire.Delay
	}
	if needsDup {
		dup = r.Float64() < f.plan.Wire.DupFraction
	}
	f.mu[src].Unlock()
	return drop, dup, delay
}

func (f *faultTransport) partitioned(src, dst int32, k uint64) bool {
	for _, p := range f.plan.Wire.Partitions {
		if int32(p.From) != src || int32(p.To) != dst {
			continue
		}
		window := p.ForSends
		if window == 0 {
			window = 1
		}
		if k >= p.AtSends && k < p.AtSends+window {
			return true
		}
	}
	return false
}

// waitServing blocks for d while serving src's own inbox — the fault
// path must honor the same deadlock-freedom contract as a real Call.
// Returns false if abort fired first.
func (f *faultTransport) waitServing(src int32, d time.Duration, abort <-chan struct{}, serve func(*tnsReq)) bool {
	own := f.Transport.Inbox(src)
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		select {
		case in := <-own:
			serve(in)
		case <-abort:
			return false
		case <-timer.C:
			return true
		}
	}
}

// Sever passes through so chaos code can cut links on a decorated
// transport directly.
func (f *faultTransport) Sever(src, dst int32) {
	if sv, ok := f.Transport.(Severable); ok {
		sv.Sever(src, dst)
	}
}
