package dist

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/eval"
	"sisg/internal/graph"
	"sisg/internal/knn"
	"sisg/internal/rng"
	"sisg/internal/sisg"
	"sisg/internal/vocab"
)

// faultOptions are tinyOptions with failure detection tightened to
// test-sized timings: a dead worker is flagged within tens of
// milliseconds instead of the production-scale 10s default.
func faultOptions(workers int) Options {
	opt := tinyOptions(workers)
	opt.RemoteTimeout = 8 * time.Millisecond
	opt.RemoteRetries = 1
	opt.HeartbeatEvery = time.Millisecond
	opt.DeadAfter = 25 * time.Millisecond
	return opt
}

// Crashing 1 of 4 workers mid-run must not deadlock: the survivors detect
// the death, degrade or drop the dead worker's pairs with full accounting,
// and still produce a model that beats a random recommender.
func TestCrashedWorkerRunCompletes(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := faultOptions(4)
	// Enough epochs that the survivors' partitions carry real signal (a
	// 1-epoch tiny run scores at noise level even without faults), with
	// the crash late enough that worker 1's rows are partially trained:
	// the quality assertion below must measure fault tolerance, not the
	// baseline quality of an undertrained model.
	opt.Epochs = 5
	opt.Faults.CrashWorker = 1
	opt.Faults.CrashAtPairs = 120000

	m, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.DeadWorkers) != 1 || st.DeadWorkers[0] != 1 {
		t.Fatalf("DeadWorkers = %v, want [1]", st.DeadWorkers)
	}
	// The crash triggers on the worker's own pair counter, so its final
	// count is exact regardless of scheduling.
	if st.PairsPerWorker[1] != opt.Faults.CrashAtPairs {
		t.Fatalf("crashed worker trained %d pairs, want exactly %d",
			st.PairsPerWorker[1], opt.Faults.CrashAtPairs)
	}
	if st.Degraded == 0 && st.DroppedPairs == 0 {
		t.Fatal("crash produced no degradation accounting")
	}
	if st.Pairs != st.LocalPairs+st.RemotePairs+st.Degraded {
		t.Fatalf("pair accounting broken: %d local + %d remote + %d degraded != %d",
			st.LocalPairs, st.RemotePairs, st.Degraded, st.Pairs)
	}
	for _, v := range m.In.Data() {
		if v != v {
			t.Fatal("NaN in surviving model")
		}
	}

	// Quality floor: the degraded model must still beat random retrieval.
	// A wide split keeps the HR granularity fine enough that the margin
	// (~3-4x random in practice) cannot vanish into quantization noise.
	split := ds.SplitNextItem(0.5)
	model := &sisg.Model{Variant: sisg.VariantSISGFUD, Dict: ds.Dict, Emb: m}
	rec := eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		rs, err := model.SimilarOne(context.Background(), tc.Query, knn.Options{K: k})
		if err != nil {
			return nil
		}
		return rs
	})
	res := eval.Evaluate("crashed", rec, split.Test, []int{20})
	randRec := eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		// Per-case RNG: Evaluate runs cases concurrently.
		r := rng.New(uint64(tc.Query)*2654435761 + 7)
		out := make([]knn.Result, k)
		for i := range out {
			out[i] = knn.Result{ID: int32(r.Intn(ds.Dict.NumItems))}
		}
		return out
	})
	randRes := eval.Evaluate("random", randRec, split.Test, []int{20})
	if res.HR[20] <= randRes.HR[20] {
		t.Fatalf("surviving model HR@20 %.4f does not beat random %.4f", res.HR[20], randRes.HR[20])
	}
}

// Lost requests are retried and, past the retry budget, degraded — the run
// always terminates and every pair is accounted somewhere.
func TestDropFractionRetriesAndDegrades(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := faultOptions(4)
	opt.RemoteTimeout = 3 * time.Millisecond
	opt.Faults.DropFraction = 0.2

	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Fatal("20% request loss produced no retries")
	}
	if st.Pairs != st.LocalPairs+st.RemotePairs+st.Degraded {
		t.Fatalf("pair accounting broken: %d + %d + %d != %d",
			st.LocalPairs, st.RemotePairs, st.Degraded, st.Pairs)
	}
	if len(st.DeadWorkers) != 0 {
		t.Fatalf("request loss must not kill workers: %v", st.DeadWorkers)
	}
}

// A short stall (GC pause) below the death threshold is absorbed by
// retries; nobody is declared dead.
func TestShortStallAbsorbed(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := faultOptions(4)
	opt.Faults.StallWorker = 2
	opt.Faults.StallAtPairs = 100
	opt.Faults.StallFor = 15 * time.Millisecond

	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.DeadWorkers) != 0 {
		t.Fatalf("short stall flagged dead workers: %v", st.DeadWorkers)
	}
	if st.Pairs != st.LocalPairs+st.RemotePairs+st.Degraded {
		t.Fatal("pair accounting broken")
	}
}

// A stall past DeadAfter triggers a false-positive death. That must be
// safe: death is sticky, survivors stop waiting on the worker, and the
// stalled worker's own training remains valid — the run completes with the
// loss fully accounted.
func TestLongStallFalsePositiveIsSafe(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := faultOptions(4)
	opt.Faults.StallWorker = 2
	opt.Faults.StallAtPairs = 100
	opt.Faults.StallFor = 200 * time.Millisecond

	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.DeadWorkers) != 1 || st.DeadWorkers[0] != 2 {
		t.Fatalf("DeadWorkers = %v, want [2]", st.DeadWorkers)
	}
	// The falsely-dead worker kept scanning after its stall.
	if st.PairsPerWorker[2] <= 100 {
		t.Fatalf("stalled worker stopped training: %d pairs", st.PairsPerWorker[2])
	}
}

func TestFaultPlanValidate(t *testing.T) {
	ds, seqs, part := tinySetup(t, 2)
	opt := tinyOptions(2)
	opt.Faults.DropFraction = 1.5
	if _, _, err := Train(ds.Dict.Dict, seqs, part, opt); err == nil {
		t.Fatal("DropFraction 1.5 accepted")
	}
}

// degenerateSetup builds a corpus whose partition gives worker 1 either
// nothing at all, or only tokens that never appear in any sequence —
// the two degenerate cases for the local noise distribution.
func degenerateSetup(n int) (*vocab.Dict, [][]int32, *graph.Partition) {
	d := vocab.NewDict(n)
	for i := 0; i < n; i++ {
		d.Add(fmt.Sprintf("it%d", i), vocab.KindItem, 0)
	}
	r := rng.New(11)
	seqs := make([][]int32, 300)
	for s := range seqs {
		seq := make([]int32, 12)
		for j := range seq {
			seq[j] = int32(r.Intn(n - 1)) // token n-1 never appears
			d.AddCount(seq[j], 1)
		}
		seqs[s] = seq
	}
	part := &graph.Partition{Of: make([]int32, n), W: 2}
	return d, seqs, part
}

// Regression for the degenerate-partition race: a worker's noise
// distribution must never cover rows owned by another worker — negative
// updates write the sampled token's output row, so a full-vocabulary
// fallback races with the owners of those rows.
func TestNoiseForNeverCoversForeignRows(t *testing.T) {
	d, seqs, part := degenerateSetup(50)

	opt := DefaultOptions(2)
	opt.Dim = 8
	opt.Epochs = 1
	opt.HotReplication = false
	e, err := newEngine(d, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1 owns nothing observed; pre-fix this fell back to the full
	// vocabulary (foreign rows), post-fix it stays within owned ∪ Q.
	for id := 0; id < 2; id++ {
		_, tokens, err := e.noiseFor(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range tokens {
			if e.owner[tk] != int32(id) && e.hotIdx[tk] < 0 {
				t.Fatalf("worker %d noise distribution contains foreign token %d (owner %d)",
					id, tk, e.owner[tk])
			}
		}
	}

	// Worker 1 owning only an unobserved token: uniform fallback over that
	// token, never the full vocabulary.
	part.Of[49] = 1
	e2, err := newEngine(d, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	noise, tokens, err := e2.noiseFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if noise == nil || len(tokens) != 1 || tokens[0] != 49 {
		t.Fatalf("degenerate fallback = %v, want exactly [49]", tokens)
	}

	// A worker owning nothing at all gets a nil table (positive-only
	// training), not an error and not foreign rows.
	part.Of[49] = 0
	e3, err := newEngine(d, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	noise, tokens, err = e3.noiseFor(1)
	if err != nil || noise != nil || tokens != nil {
		t.Fatalf("worker owning nothing: noise=%v tokens=%v err=%v, want all nil", noise, tokens, err)
	}
}

// End-to-end with a degenerate partition under the race detector: worker 1
// owns nothing and participates only via replicated hot-hot pairs; the run
// must complete with a finite model and no cross-partition writes.
func TestDegeneratePartitionTrains(t *testing.T) {
	d, seqs, part := degenerateSetup(50)
	opt := DefaultOptions(2)
	opt.Dim = 8
	opt.Epochs = 1
	opt.Seed = 3
	opt.HotReplication = true
	opt.HotTopK = 8

	m, st, err := Train(d, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs == 0 {
		t.Fatal("nothing trained")
	}
	for _, v := range m.In.Data() {
		if v != v {
			t.Fatal("NaN in model")
		}
	}
}

// A distributed run interrupted right after a snapshot and resumed must
// finish with the exact pair counts of an uninterrupted run: per-worker
// RNG streams and the pair-routing rules are deterministic, so Pairs,
// LocalPairs, RemotePairs and the per-worker loads all replay.
func TestDistCheckpointResumeMatchesUninterrupted(t *testing.T) {
	ds, seqs, part := tinySetup(t, 2)

	base := tinyOptions(2)
	_, baseStats, err := Train(ds.Dict.Dict, seqs, part, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opt := tinyOptions(2)
	opt.CheckpointDir = dir
	opt.CheckpointEvery = 1 // snapshot at every block barrier
	aborts := 0
	checkpointAbortHook = func(k int) bool {
		aborts++
		return aborts == 1
	}
	_, _, err = Train(ds.Dict.Dict, seqs, part, opt)
	checkpointAbortHook = nil
	if !errors.Is(err, errAbortHook) {
		t.Fatalf("expected injected abort, got %v", err)
	}

	opt.Resume = true
	_, resStats, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resStats.Pairs != baseStats.Pairs ||
		resStats.LocalPairs != baseStats.LocalPairs ||
		resStats.RemotePairs != baseStats.RemotePairs {
		t.Fatalf("resumed pair counts %d/%d/%d != uninterrupted %d/%d/%d",
			resStats.Pairs, resStats.LocalPairs, resStats.RemotePairs,
			baseStats.Pairs, baseStats.LocalPairs, baseStats.RemotePairs)
	}
	for i := range baseStats.PairsPerWorker {
		if resStats.PairsPerWorker[i] != baseStats.PairsPerWorker[i] {
			t.Fatalf("worker %d load %d != %d", i, resStats.PairsPerWorker[i], baseStats.PairsPerWorker[i])
		}
	}

	// The completed run left a final snapshot; resuming it under changed
	// hyper-parameters must be refused.
	bad := opt
	bad.Dim = opt.Dim + 2
	if _, _, err := Train(ds.Dict.Dict, seqs, part, bad); err == nil {
		t.Fatal("resume with different Dim accepted")
	}
}
