// Package dist implements the paper's distributed training mechanism
// (§III): Target Negative Sampling (TNS, Algorithm 1) with the two
// production extensions that make up Adapted TNS (ATNS):
//
//   - hot-token replication: the most frequent tokens (the shared set Q,
//     mostly SI values like gender or age) are kept on every worker and
//     their vectors are synchronized at regular intervals, and
//   - aggressive down-sampling of high-frequency tokens (inherited from the
//     sgns options).
//
// Workers are goroutines, each owning a partition of the embedding rows;
// the partition for items comes from HBGP (internal/graph) and SI/user-type
// tokens are assigned randomly (§III-C step 3). A training pair (v_i, v_j)
// is processed by the owner of v_i: if v_j is local (or replicated) the
// whole update is local, otherwise the worker ships v_i's input vector to
// v_j's owner, which runs the TNS function — positive update on out(v_j),
// negatives from ITS local noise distribution, returning the gradient for
// v_i (Algorithm 1, lines 12-21).
//
// This is an in-process simulation of the cluster: goroutines stand in for
// machines and Go channels for the network, with every remote call and its
// payload bytes counted, so communication-cost claims (the whole point of
// ATNS + HBGP) are measured rather than assumed. Cluster wall-clock is
// derived from those measured counters by CostModel — the host may have
// fewer cores than simulated workers. See DESIGN.md §2 for the substitution
// argument.
package dist

import (
	"errors"
	"fmt"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/graph"
	"sisg/internal/metrics"
	"sisg/internal/sgns"
	"sisg/internal/vocab"
)

// Options configures a distributed run. Embedded sgns.Options supply the
// model hyper-parameters (Dim, Window, Stride, Negatives, Epochs, LR,
// subsampling, Directed); Workers is the number of simulated machines.
type Options struct {
	sgns.Options

	// Hot-token replication (the ATNS "shared set Q").
	HotReplication bool
	// HotThreshold selects Q = tokens with frequency >= HotThreshold; if 0,
	// the HotTopK most frequent tokens are used instead.
	HotThreshold uint64
	HotTopK      int
	// SyncEvery is the number of processed pairs between a worker's hot
	// replica synchronizations.
	SyncEvery int

	// Transport selects how TNS requests move between workers: "chan"
	// (default; the in-process channel mesh) or "tcp" (real loopback
	// sockets, length-prefixed frames, reconnecting persistent
	// connections). The training protocol, retry policy and accounting
	// are transport-independent; see DESIGN.md §5h.
	Transport string

	// SlowWorker injects a per-remote-call delay on one worker (-1 = none):
	// the straggler experiment.
	SlowWorker      int
	SlowWorkerDelay time.Duration

	// Faults injects failures into the run; the zero value injects none.
	// See FaultPlan.
	Faults FaultPlan

	// RemoteTimeout bounds one remote TNS attempt (send + reply); after it
	// expires the requester retries, up to RemoteRetries re-sends, and then
	// degrades the pair (see Stats.Degraded). Zero means the 2s default.
	RemoteTimeout time.Duration
	// RemoteRetries is the number of re-sends after the first attempt.
	// Negative disables retries; zero means the default (2).
	RemoteRetries int

	// HeartbeatEvery is the health monitor's sampling interval (zero = 25ms
	// default); DeadAfter is how long a scanning worker's heartbeat counter
	// may sit still before the worker is declared dead (zero = 10s default;
	// it should comfortably exceed RemoteTimeout, since a worker blocked on
	// a remote call only beats once per attempt deadline). Without Recovery
	// death is sticky: survivors stop routing pairs to a dead worker and
	// account the loss (Stats.DroppedPairs) rather than stalling on it.
	HeartbeatEvery time.Duration
	DeadAfter      time.Duration

	// Recovery enables the supervisor: a worker the monitor declares dead
	// is resurrected (respawned on its own partition from its last durable
	// scan cursor, re-seeded from a dedicated RNG stream) up to MaxRestarts
	// times, and after the budget is exhausted its partition is taken over
	// by a surviving worker (see Stats.Takeovers, Stats.Hosts). With
	// Recovery on, no pair is ever dropped or degraded because of a death:
	// remote TNS calls to a dead partition wait (with jittered exponential
	// backoff, still serving their own queue) until the replacement serves
	// them, so Pairs == LocalPairs + RemotePairs + Degraded holds with
	// DroppedPairs == 0, and the final accounting is deterministic under a
	// seed even across crashes.
	Recovery bool
	// MaxRestarts bounds resurrections per partition before takeover.
	// Zero means the default (2); negative means no resurrections — the
	// first death goes straight to takeover.
	MaxRestarts int
	// RestartBackoff is the base supervisor delay before a resurrection,
	// doubled per prior restart of that partition and jittered ±50%.
	// Zero means the 50ms default.
	RestartBackoff time.Duration
	// RetryBackoff is the base delay between remote-TNS re-attempts,
	// doubled per attempt (capped) and jittered, so survivors do not
	// hammer a struggling peer in lockstep. Zero means RemoteTimeout/8.
	RetryBackoff time.Duration

	// Cost holds the cluster cost model used to compute SimElapsed.
	Cost CostModel

	// HaltAfterBarriers, when positive, stops a checkpointing run cleanly
	// after that many block barriers have been released, forcing a snapshot
	// at the halt point and returning ErrHalted. It simulates a process
	// kill mid-run with a resumable snapshot on disk — the chaos harness's
	// mid-chaos checkpoint/resume equivalence check is built on it.
	// Ignored unless checkpointing is configured.
	HaltAfterBarriers int

	// Metrics, when non-nil, mirrors the engine's live counters — pairs,
	// retries, degraded pairs, dropped pairs, dead workers, current LR —
	// into the registry as gauges, sampled at scrape time. The embedded
	// sgns.Options.Progress sink (if set) additionally receives periodic
	// Progress snapshots, exactly like the local trainer's. Both are
	// observers only: nil values leave the run bit-identical.
	Metrics *metrics.Registry
}

// FaultPlan injects reproducible failures into a run: a worker crash at an
// exact pair count, a one-shot stall, and random request loss. Crash and
// stall trigger on the worker's own deterministic pair counter, and drops
// are drawn from a dedicated per-worker RNG derived from Options.Seed (the
// training streams are untouched), so a failing scenario replays under the
// same seed. The zero value injects nothing.
type FaultPlan struct {
	// CrashWorker stops the given worker — no more scanning, serving or
	// heartbeats, and its un-synced hot deltas are lost — once its pair
	// counter reaches CrashAtPairs. Inactive when CrashAtPairs is 0, so
	// the zero value is safe; use CrashAtPairs=1 for "immediately".
	CrashWorker  int
	CrashAtPairs uint64
	// StallWorker sleeps for StallFor (serving nothing) once its pair
	// counter reaches StallAtPairs — a GC pause / noisy neighbor. One
	// shot; inactive when StallFor is 0.
	StallWorker  int
	StallAtPairs uint64
	StallFor     time.Duration
	// DropFraction is the probability that a remote TNS request is lost in
	// transit (the requester waits out its deadline, then retries).
	DropFraction float64

	// Crashes and Stalls schedule multiple faults for one run — the chaos
	// harness composes them freely. The scalar fields above are one-fault
	// sugar and are merged into these schedules at startup.
	Crashes []CrashSpec
	Stalls  []StallSpec

	// Wire injects network-shaped faults below the request level: delays,
	// duplicates, severed connections and one-way partitions. Together
	// with DropFraction these are applied by a transport decorator, so
	// they work identically over channels and TCP (severs are a no-op on
	// channels — there is no connection to cut).
	Wire WireFaults
}

// WireFaults describes transport-level fault injection. Probabilistic
// decisions draw from a per-requester RNG stream derived from
// Options.Seed; positional triggers (severs, partitions) fire on exact
// per-link send counts. Either way a scenario replays under its seed.
type WireFaults struct {
	// DelayFraction is the probability a request is held for Delay before
	// it is forwarded — a slow link. The requester's deadline keeps
	// running while the request is held.
	DelayFraction float64
	Delay         time.Duration
	// DupFraction is the probability a request is delivered twice (a
	// retransmit duplicate). The extra delivery's reply is discarded; the
	// server simply serves one more request.
	DupFraction float64
	// Severs cut established connections: the From→To link is closed at
	// From's AtSends-th request on it. The transport redials with
	// jittered backoff — the scenario every reconnect test is built on.
	Severs []SeverSpec
	// Partitions blackhole requests one-way: From's requests to To are
	// dropped for a window of send counts. Replies travel the opposite
	// direction and are unaffected, which is what makes it one-way.
	Partitions []PartitionSpec
}

// SeverSpec cuts the From→To connection at From's AtSends-th request on
// that link (1-based).
type SeverSpec struct {
	From, To int
	AtSends  uint64
}

// PartitionSpec drops From's requests to To starting at the AtSends-th
// (1-based) for ForSends consecutive sends (0 means exactly one).
type PartitionSpec struct {
	From, To int
	AtSends  uint64
	ForSends uint64
}

// active reports whether any wire fault is configured.
func (w WireFaults) active() bool {
	return w.DelayFraction > 0 || w.DupFraction > 0 ||
		len(w.Severs) > 0 || len(w.Partitions) > 0
}

// hasWireFaults reports whether the plan needs the fault-injecting
// transport decorator.
func (f FaultPlan) hasWireFaults() bool {
	return f.DropFraction > 0 || f.Wire.active()
}

// CrashSpec kills one worker, possibly repeatedly: with Recovery on, a
// resurrected incarnation re-arms the trigger AtPairs pairs after its spawn
// point until the crash has fired Times times — the way to drive a
// partition through its whole restart budget into takeover. A taken-over
// partition never re-arms (the adopting machine is not the faulty one).
type CrashSpec struct {
	Worker int
	// AtPairs is the pair count the trigger fires at: absolute for the
	// first incarnation, relative to the spawn point for resurrected ones.
	// Ignored when AtStart is set.
	AtPairs uint64
	// Times caps how often the trigger fires; 0 means once.
	Times int
	// AtStart crashes the worker before it trains a single pair — the
	// never-started worker, detected purely by its missing heartbeat.
	AtStart bool
}

// StallSpec sleeps one worker for For (serving nothing) once its pair
// counter reaches AtPairs — a GC pause / noisy neighbor. Each spec fires
// once per run.
type StallSpec struct {
	Worker  int
	AtPairs uint64
	For     time.Duration
}

// Validate reports the first invalid fault parameter.
func (f FaultPlan) Validate() error {
	if f.DropFraction < 0 || f.DropFraction >= 1 {
		return fmt.Errorf("dist: DropFraction %v out of [0,1)", f.DropFraction)
	}
	for i, c := range f.Crashes {
		if c.Worker < 0 {
			return fmt.Errorf("dist: Crashes[%d].Worker %d negative", i, c.Worker)
		}
		if !c.AtStart && c.AtPairs == 0 {
			return fmt.Errorf("dist: Crashes[%d] needs AtPairs > 0 or AtStart", i)
		}
		if c.Times < 0 {
			return fmt.Errorf("dist: Crashes[%d].Times %d negative", i, c.Times)
		}
	}
	for i, s := range f.Stalls {
		if s.Worker < 0 {
			return fmt.Errorf("dist: Stalls[%d].Worker %d negative", i, s.Worker)
		}
		if s.For <= 0 {
			return fmt.Errorf("dist: Stalls[%d].For must be positive", i)
		}
	}
	if f.Wire.DelayFraction < 0 || f.Wire.DelayFraction >= 1 {
		return fmt.Errorf("dist: Wire.DelayFraction %v out of [0,1)", f.Wire.DelayFraction)
	}
	if f.Wire.DelayFraction > 0 && f.Wire.Delay <= 0 {
		return errors.New("dist: Wire.DelayFraction needs a positive Wire.Delay")
	}
	if f.Wire.DupFraction < 0 || f.Wire.DupFraction > 1 {
		return fmt.Errorf("dist: Wire.DupFraction %v out of [0,1]", f.Wire.DupFraction)
	}
	for i, s := range f.Wire.Severs {
		if s.From < 0 || s.To < 0 {
			return fmt.Errorf("dist: Wire.Severs[%d] has a negative worker", i)
		}
		if s.From == s.To {
			return fmt.Errorf("dist: Wire.Severs[%d] severs a worker from itself", i)
		}
		if s.AtSends == 0 {
			return fmt.Errorf("dist: Wire.Severs[%d].AtSends must be >= 1", i)
		}
	}
	for i, p := range f.Wire.Partitions {
		if p.From < 0 || p.To < 0 {
			return fmt.Errorf("dist: Wire.Partitions[%d] has a negative worker", i)
		}
		if p.From == p.To {
			return fmt.Errorf("dist: Wire.Partitions[%d] partitions a worker from itself", i)
		}
		if p.AtSends == 0 {
			return fmt.Errorf("dist: Wire.Partitions[%d].AtSends must be >= 1", i)
		}
	}
	return nil
}

// crashFor returns the merged crash schedule for one worker: the scalar
// sugar first, then the first matching list entry.
func (f FaultPlan) crashFor(id int) *CrashSpec {
	if f.CrashWorker == id && f.CrashAtPairs > 0 {
		return &CrashSpec{Worker: id, AtPairs: f.CrashAtPairs, Times: 1}
	}
	for i := range f.Crashes {
		if f.Crashes[i].Worker == id {
			c := f.Crashes[i]
			if c.Times <= 0 {
				c.Times = 1
			}
			return &c
		}
	}
	return nil
}

// stallsFor returns the merged stall schedule for one worker.
func (f FaultPlan) stallsFor(id int) []StallSpec {
	var out []StallSpec
	if f.StallWorker == id && f.StallFor > 0 {
		at := f.StallAtPairs
		if at == 0 {
			at = 1
		}
		out = append(out, StallSpec{Worker: id, AtPairs: at, For: f.StallFor})
	}
	for _, s := range f.Stalls {
		if s.Worker == id {
			if s.AtPairs == 0 {
				s.AtPairs = 1
			}
			out = append(out, s)
		}
	}
	return out
}

// CostModel converts the engine's measured counters (pairs, remote calls,
// bytes, syncs) into simulated cluster wall-clock. The in-process engine
// runs on however many cores the host has — possibly one — so real elapsed
// time cannot exhibit multi-machine scaling; the model, applied to real
// per-worker counters, can. Constants are calibrated to the paper's
// hardware class (50-core workers, 10 Gbps Ethernet); see DESIGN.md §2.
type CostModel struct {
	// PairUpdateNs is the compute cost of one positive pair at reference
	// shape (d=32, 5 negatives); scaled linearly in dim and (1+negatives).
	PairUpdateNs float64
	// RemoteRTTNs is the requester-visible overhead of one remote TNS call
	// in a pipelined engine (serialization + its amortized share of the
	// in-flight window; NOT a full network round trip, which production
	// engines overlap with computation).
	RemoteRTTNs float64
	// BandwidthBytes is per-worker NIC bandwidth in bytes/second.
	BandwidthBytes float64
	// CacheBytes models the per-worker fast-memory working set; once the
	// vector table exceeds it, updates pay MissPenalty extra.
	CacheBytes  float64
	MissPenalty float64
	// StartupNsPerToken is the fixed per-run overhead (vocabulary build,
	// partitioning, model allocation) per vocabulary row.
	StartupNsPerVocab float64
}

// DefaultCostModel returns constants calibrated so a single simulated
// worker roughly matches the measured single-goroutine throughput of the
// local trainer.
func DefaultCostModel() CostModel {
	return CostModel{
		PairUpdateNs:      250,
		RemoteRTTNs:       150,
		BandwidthBytes:    1.25e9, // 10 Gbps
		CacheBytes:        32 << 20,
		MissPenalty:       1.5,
		StartupNsPerVocab: 2_000,
	}
}

// DefaultOptions returns the configuration used by the scalability benches.
func DefaultOptions(workers int) Options {
	o := Options{Options: sgns.Defaults()}
	o.Workers = workers
	o.HotReplication = true
	o.HotTopK = 512
	o.SyncEvery = 4096
	o.SlowWorker = -1
	o.Faults.CrashWorker = -1
	o.Faults.StallWorker = -1
	return o
}

// remoteTimeout returns the effective per-attempt deadline.
func (o *Options) remoteTimeout() time.Duration {
	if o.RemoteTimeout > 0 {
		return o.RemoteTimeout
	}
	return 2 * time.Second
}

// remoteRetries returns the effective re-send budget.
func (o *Options) remoteRetries() int {
	switch {
	case o.RemoteRetries > 0:
		return o.RemoteRetries
	case o.RemoteRetries < 0:
		return 0
	}
	return 2
}

// deadAfter returns the effective heartbeat-silence threshold.
func (o *Options) deadAfter() time.Duration {
	if o.DeadAfter > 0 {
		return o.DeadAfter
	}
	return 10 * time.Second
}

// heartbeatEvery returns the effective monitor sampling interval.
func (o *Options) heartbeatEvery() time.Duration {
	if o.HeartbeatEvery > 0 {
		return o.HeartbeatEvery
	}
	return 25 * time.Millisecond
}

// maxRestarts returns the effective per-partition resurrection budget.
func (o *Options) maxRestarts() int {
	switch {
	case o.MaxRestarts > 0:
		return o.MaxRestarts
	case o.MaxRestarts < 0:
		return 0
	}
	return 2
}

// restartBackoff returns the effective supervisor backoff base.
func (o *Options) restartBackoff() time.Duration {
	if o.RestartBackoff > 0 {
		return o.RestartBackoff
	}
	return 50 * time.Millisecond
}

// retryBackoff returns the effective remote-retry backoff base.
func (o *Options) retryBackoff() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return o.remoteTimeout() / 8
}

// Stats aggregates what the cluster did.
type Stats struct {
	Workers     int
	Elapsed     time.Duration // real wall time of the in-process run
	SimElapsed  time.Duration // modeled cluster wall time (see CostModel)
	Tokens      uint64        // tokens consumed (across the cluster, post-subsampling)
	Pairs       uint64        // positive pairs trained
	LocalPairs  uint64        // pairs completed without a remote call
	RemotePairs uint64        // pairs completed via a remote TNS call
	BytesSent   uint64        // simulated network payload (vectors + ids)
	HotSyncs    uint64        // hot replica synchronization rounds
	HotTokens   int           // |Q|
	// PairsPerWorker exposes the load balance achieved.
	PairsPerWorker []uint64

	// Wire accounting, from the transport. For "chan" everything but
	// WireFrames is zero (nothing is serialized); for "tcp" these are
	// bytes and frames actually written to / read from loopback sockets,
	// length prefixes included, both directions of every link. Like
	// Retries, they are timing-shaped observability figures, not part of
	// the deterministic replay contract (a retried request is re-sent on
	// the wire but counted once by BytesSent's model).
	WireBytesSent uint64
	WireBytesRecv uint64
	WireFrames    uint64 // frames written (requests + replies)
	Reconnects    uint64 // severed links that were redialed successfully

	// Fault-tolerance accounting: degradation is observable, never silent.
	// The invariant Pairs == LocalPairs + RemotePairs + Degraded always
	// holds; DroppedPairs counts pairs nobody trained at all. With
	// Options.Recovery, DroppedPairs == 0 always (every dead partition is
	// re-hosted, so its pairs are trained, not dropped).
	Retries      uint64 // remote TNS re-sends after a deadline expired
	Degraded     uint64 // pairs trained against local noise only, after retries were exhausted or the owner died
	DroppedPairs uint64 // pairs observed by survivors as owned by a dead worker and therefore untrained
	DeadWorkers  []int  // workers that ever crashed or were declared dead by the heartbeat monitor

	// Recovery accounting (all zero unless Options.Recovery).
	Restarts       uint64 // resurrections: dead partitions respawned on their own machine
	Takeovers      uint64 // partitions adopted by a survivor after the restart budget ran out
	RecoveredPairs uint64 // pairs trained by replacement incarnations (resurrected or adopted)
	// Hosts maps partition -> machine hosting it at run end; nil when no
	// takeover happened (every partition still hosted by its own machine).
	Hosts []int32
}

// SimTokensPerSec is cluster throughput under the cost model — the y-axis
// of Figure 7(b).
func (s Stats) SimTokensPerSec() float64 {
	if s.SimElapsed <= 0 {
		return 0
	}
	return float64(s.Tokens) / s.SimElapsed.Seconds()
}

// RemoteFraction is the share of pairs that crossed workers — the quantity
// HBGP minimizes.
func (s Stats) RemoteFraction() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.RemotePairs) / float64(s.Pairs)
}

// TokensPerSec returns cluster throughput (the y-axis of Figure 7(b)).
func (s Stats) TokensPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Tokens) / s.Elapsed.Seconds()
}

// Imbalance returns max/mean pairs per worker (1.0 = perfect).
func (s Stats) Imbalance() float64 {
	if len(s.PairsPerWorker) == 0 {
		return 0
	}
	var total, max uint64
	for _, p := range s.PairsPerWorker {
		total += p
		if p > max {
			max = p
		}
	}
	mean := float64(total) / float64(len(s.PairsPerWorker))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// Train runs distributed SISG training over the enriched sequences. The
// item partition normally comes from graph.HBGP; non-item tokens are
// assigned to workers by a deterministic hash (§III-C step 3: "the target
// partitions for SI and user types are assigned randomly").
func Train(dict *vocab.Dict, seqs [][]int32, part *graph.Partition, opt Options) (*emb.Model, Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if opt.Workers <= 0 {
		return nil, Stats{}, errors.New("dist: Workers must be positive")
	}
	if part == nil {
		return nil, Stats{}, errors.New("dist: nil partition")
	}
	if part.W != opt.Workers {
		return nil, Stats{}, fmt.Errorf("dist: partition has %d workers, options say %d", part.W, opt.Workers)
	}
	if err := opt.Faults.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = 4096
	}
	e, err := newEngine(dict, seqs, part, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return e.run()
}

// PartitionForDataset builds the production partition for a dataset: HBGP
// over the item graph of the training sessions, β = 1.2 (§III-B: "in our
// production environment, β is set to 1.2 empirically").
func PartitionForDataset(ds *corpus.Dataset, train []corpus.Session, workers int) (*graph.Partition, *graph.Graph, error) {
	g := graph.FromSessions(train, ds.Dict.NumItems)
	leafOf := make([]int32, ds.Dict.NumItems)
	freq := make([]float64, ds.Dict.NumItems)
	for i := 0; i < ds.Dict.NumItems; i++ {
		leafOf[i] = ds.Catalog.LeafOf(int32(i))
		freq[i] = float64(ds.Dict.Count(int32(i)))
	}
	p, err := graph.HBGP(g, leafOf, ds.Catalog.NumLeaves(), freq, workers, 1.2)
	if err != nil {
		return nil, nil, err
	}
	return p, g, nil
}
