package dist

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/alias"
	"sisg/internal/emb"
	"sisg/internal/graph"
	"sisg/internal/rng"
	"sisg/internal/vocab"
)

// tnsReq is one remote TNS invocation (Algorithm 1, line 7): the requester
// ships a copy of the target's input vector; the context's owner applies
// the positive + negative output updates and returns the input gradient.
type tnsReq struct {
	vec   []float32 // copy of in(v_i)
	ctx   int32     // v_j, owned by the receiving worker
	lr    float32
	reply chan []float32
}

type engine struct {
	dict *vocab.Dict
	seqs [][]int32
	opt  Options

	owner  []int32 // token -> owning worker
	hotIdx []int32 // token -> index into the hot set, or -1
	hotIDs []int32 // hot set Q

	model *emb.Model

	// Global hot store (mutex-guarded; synchronizations are infrequent).
	hotMu  sync.Mutex
	hotIn  [][]float32
	hotOut [][]float32

	counts      []uint64
	keep        []float32
	totalTokens uint64 // corpus tokens × epochs (per worker scan)

	reqCh       []chan *tnsReq
	doneWorkers atomic.Int32
	scanTokens  atomic.Uint64

	workers []*worker
}

func newEngine(dict *vocab.Dict, seqs [][]int32, part *graph.Partition, opt Options) (*engine, error) {
	e := &engine{dict: dict, seqs: seqs, opt: opt}
	w := opt.Workers

	// Token ownership: items from the partition; everything else hashed
	// (the paper assigns SI and user types to partitions randomly).
	e.owner = make([]int32, dict.Len())
	numItems := len(part.Of)
	for t := 0; t < dict.Len(); t++ {
		if t < numItems {
			e.owner[t] = part.Of[t]
		} else {
			e.owner[t] = int32((uint32(t) * 2654435761) % uint32(w))
		}
	}

	// Corpus frequencies drive the noise distributions, subsampling and
	// the hot set.
	e.counts = make([]uint64, dict.Len())
	var corpusTokens uint64
	for _, s := range seqs {
		for _, t := range s {
			e.counts[t]++
		}
		corpusTokens += uint64(len(s))
	}
	e.totalTokens = corpusTokens * uint64(opt.Epochs)
	if e.totalTokens == 0 {
		e.totalTokens = 1
	}
	if opt.SubsampleT > 0 {
		e.keep = subsampleKeep(dict, e.counts, corpusTokens, opt.SubsampleT, opt.SIBoost)
	}

	// Hot set Q (§III-C step 4).
	e.hotIdx = make([]int32, dict.Len())
	for i := range e.hotIdx {
		e.hotIdx[i] = -1
	}
	if opt.HotReplication {
		e.hotIDs = selectHot(e.counts, opt.HotThreshold, opt.HotTopK)
		for i, id := range e.hotIDs {
			e.hotIdx[id] = int32(i)
		}
	}

	master := rng.New(opt.Seed)
	e.model = emb.NewModel(dict.Len(), opt.Dim, master)

	// Global hot store seeded from the model.
	e.hotIn = make([][]float32, len(e.hotIDs))
	e.hotOut = make([][]float32, len(e.hotIDs))
	for i, id := range e.hotIDs {
		e.hotIn[i] = append([]float32(nil), e.model.In.Row(id)...)
		e.hotOut[i] = append([]float32(nil), e.model.Out.Row(id)...)
	}

	e.reqCh = make([]chan *tnsReq, w)
	for i := range e.reqCh {
		e.reqCh[i] = make(chan *tnsReq, 256)
	}
	e.workers = make([]*worker, w)
	for i := 0; i < w; i++ {
		wk, err := newWorker(e, i, master.Split())
		if err != nil {
			return nil, err
		}
		e.workers[i] = wk
	}
	return e, nil
}

// selectHot returns the shared set Q: tokens above the frequency threshold,
// or the top-K most frequent when threshold is zero.
func selectHot(counts []uint64, threshold uint64, topK int) []int32 {
	if threshold > 0 {
		var out []int32
		for t, c := range counts {
			if c >= threshold {
				out = append(out, int32(t))
			}
		}
		return out
	}
	if topK <= 0 {
		return nil
	}
	// Partial selection of the topK most frequent tokens, kept sorted by
	// descending count (insertion into a small array).
	type tc struct {
		t int32
		c uint64
	}
	sortTC := func(s []tc) {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j].c > s[j-1].c; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	}
	best := make([]tc, 0, topK)
	for t, c := range counts {
		if c == 0 {
			continue
		}
		if len(best) < topK {
			best = append(best, tc{int32(t), c})
			if len(best) == topK {
				sortTC(best)
			}
			continue
		}
		if c > best[topK-1].c {
			best[topK-1] = tc{int32(t), c}
			for i := topK - 1; i > 0 && best[i].c > best[i-1].c; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	if len(best) < topK {
		sortTC(best)
	}
	out := make([]int32, len(best))
	for i, b := range best {
		out[i] = b.t
	}
	return out
}

func subsampleKeep(dict *vocab.Dict, counts []uint64, total uint64, t, siBoost float64) []float32 {
	p := make([]float32, len(counts))
	for i := range counts {
		if counts[i] == 0 || total == 0 {
			p[i] = 1
			continue
		}
		f := float64(counts[i]) / float64(total)
		keep := math.Sqrt(t/f) + t/f
		if keep > 1 {
			keep = 1
		}
		if dict.KindOf(int32(i)) != vocab.KindItem {
			keep *= siBoost
		}
		p[i] = float32(keep)
	}
	return p
}

// run starts the workers, waits for completion, merges hot replicas back
// into the model, and aggregates statistics.
func (e *engine) run() (*emb.Model, Stats, error) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, wk := range e.workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.run()
		}(wk)
	}
	wg.Wait()

	// Fold the final hot values back into the model rows.
	for i, id := range e.hotIDs {
		copy(e.model.In.Row(id), e.hotIn[i])
		copy(e.model.Out.Row(id), e.hotOut[i])
	}

	st := Stats{
		Workers:        e.opt.Workers,
		Elapsed:        time.Since(start),
		Tokens:         e.totalTokens, // corpus tokens × epochs, cluster-level
		HotTokens:      len(e.hotIDs),
		PairsPerWorker: make([]uint64, e.opt.Workers),
	}
	for i, wk := range e.workers {
		st.Pairs += wk.pairs
		st.LocalPairs += wk.localPairs
		st.RemotePairs += wk.remotePairs
		st.BytesSent += wk.bytesSent
		st.HotSyncs += wk.hotSyncs
		st.PairsPerWorker[i] = wk.pairs
	}
	st.SimElapsed = e.simElapsed()
	return e.model, st, nil
}

// simElapsed applies the cost model to the measured per-worker counters:
// the cluster finishes when its slowest worker does (makespan), plus the
// fixed startup overhead. See CostModel for the constituent terms.
func (e *engine) simElapsed() time.Duration {
	cm := e.opt.Cost
	if cm == (CostModel{}) {
		cm = DefaultCostModel()
	}
	dim := float64(e.opt.Dim)
	// Per-update compute cost, scaled from the reference shape and
	// inflated by the cache-miss factor of the full vector table.
	pairNs := cm.PairUpdateNs * (dim / 32) * (float64(1+e.opt.Negatives) / 6)
	vocabBytes := float64(e.dict.Len()) * dim * 2 * 4 // in + out, float32
	miss := 0.0
	if vocabBytes > cm.CacheBytes && vocabBytes > 0 {
		miss = cm.MissPenalty * (1 - cm.CacheBytes/vocabBytes)
	}
	pairNs *= 1 + miss

	var worst float64
	for _, wk := range e.workers {
		compute := float64(wk.pairs-wk.remotePairs+wk.servedPairs) * pairNs
		// The requester also pays the (overlapped) round-trip latency and
		// its share of NIC time.
		comm := float64(wk.remotePairs)*cm.RemoteRTTNs +
			float64(wk.bytesSent)/cm.BandwidthBytes*1e9
		if t := compute + comm; t > worst {
			worst = t
		}
	}
	startup := cm.StartupNsPerVocab * float64(e.dict.Len())
	return time.Duration(worst + startup)
}

// hotSync pushes a worker's replica deltas into the global store and pulls
// the merged values — the "synchronized (averaged) at regular intervals"
// mechanism of §III-A.
func (e *engine) hotSync(w *worker) {
	if len(e.hotIDs) == 0 {
		return
	}
	e.hotMu.Lock()
	for i := range e.hotIDs {
		applyDelta(e.hotIn[i], w.hotIn[i], w.hotInBase[i])
		applyDelta(e.hotOut[i], w.hotOut[i], w.hotOutBase[i])
		copy(w.hotIn[i], e.hotIn[i])
		copy(w.hotOut[i], e.hotOut[i])
		copy(w.hotInBase[i], e.hotIn[i])
		copy(w.hotOutBase[i], e.hotOut[i])
	}
	e.hotMu.Unlock()
	w.hotSyncs++
	// Simulated cost: full hot set both directions.
	w.bytesSent += uint64(len(e.hotIDs)) * uint64(e.opt.Dim) * 4 * 2
}

func applyDelta(global, local, base []float32) {
	for i := range global {
		global[i] += local[i] - base[i]
	}
}

// noiseFor builds worker w's local noise distribution over its partition
// plus the shared hot set (§III-C: "every worker maintains its own noise
// distribution for the elements of P_j ∪ Q"). Replicated (hot) tokens
// appear in every worker's distribution, so their weight is divided by the
// worker count: the aggregate negative-sampling rate of a hot token then
// matches its global unigram^α rate. Without this, hot tokens absorb ~w×
// their fair share of negative updates, their output vectors blow up, and
// training diverges at high worker counts.
func (e *engine) noiseFor(id int) (*alias.Table, []int32, error) {
	var tokens []int32
	weights := []float64{}
	for t := 0; t < e.dict.Len(); t++ {
		if e.counts[t] == 0 {
			continue
		}
		if e.owner[t] == int32(id) || e.hotIdx[t] >= 0 {
			w := math.Pow(float64(e.counts[t]), e.opt.NoiseAlpha)
			if e.hotIdx[t] >= 0 {
				w /= float64(e.opt.Workers)
			}
			tokens = append(tokens, int32(t))
			weights = append(weights, w)
		}
	}
	if len(tokens) == 0 {
		// Degenerate partition (no owned tokens observed): fall back to the
		// full distribution so sampling still works.
		for t := 0; t < e.dict.Len(); t++ {
			if e.counts[t] > 0 {
				tokens = append(tokens, int32(t))
				weights = append(weights, math.Pow(float64(e.counts[t]), e.opt.NoiseAlpha))
			}
		}
	}
	tab, err := alias.New(weights)
	if err != nil {
		return nil, nil, err
	}
	return tab, tokens, nil
}

// rowIn returns the in-vector visible to worker w for token t.
func (e *engine) rowIn(w *worker, t int32) []float32 {
	if hi := e.hotIdx[t]; hi >= 0 {
		return w.hotIn[hi]
	}
	return e.model.In.Row(t)
}

// rowOut returns the out-vector visible to worker w for token t.
func (e *engine) rowOut(w *worker, t int32) []float32 {
	if hi := e.hotIdx[t]; hi >= 0 {
		return w.hotOut[hi]
	}
	return e.model.Out.Row(t)
}
