package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/alias"
	"sisg/internal/checkpoint"
	"sisg/internal/emb"
	"sisg/internal/graph"
	"sisg/internal/rng"
	"sisg/internal/vocab"
)

// tnsReq is one remote TNS invocation (Algorithm 1, line 7): the requester
// ships a copy of the target's input vector; the context's owner applies
// the positive + negative output updates and returns the input gradient.
// Each delivery attempt uses a fresh req with its own 1-buffered reply
// channel, so a server answering a request its requester already abandoned
// (deadline expired, pair degraded) never blocks.
type tnsReq struct {
	vec   []float32 // copy of in(v_i)
	ctx   int32     // v_j, owned by the receiving worker
	lr    float32
	reply chan []float32
}

// Worker lifecycle states, as seen by the health monitor. Only a scanning
// worker can be declared dead: one paused at a checkpoint barrier or done
// with its scan is idle by design, not by failure. A crashed worker never
// reports a state change — crashing silently is the point — so it stays
// "scanning" with a frozen heartbeat until the monitor flags it.
const (
	stateScanning int32 = iota
	stateWaiting
	stateDone
)

// blockBarrier synchronizes one checkpoint cut. The protocol is
// arrive → quiesce → ack → release: workers keep serving between arrival
// and quiesce (a peer may still be mid-scan and need remote TNS), and
// between ack and release nothing runs, so the engine snapshots a frozen,
// race-free view of the model and hot store.
type blockBarrier struct {
	arrive  chan struct{} // workers announce block completion (cap W)
	quiesce chan struct{} // closed by the engine once all W arrived
	ack     chan struct{} // workers confirm they stopped serving (cap W)
	release chan struct{} // closed by the engine after the snapshot
}

type engine struct {
	dict *vocab.Dict
	seqs [][]int32
	opt  Options

	owner  []int32 // token -> owning worker
	hotIdx []int32 // token -> index into the hot set, or -1
	hotIDs []int32 // hot set Q

	model *emb.Model

	// Global hot store (mutex-guarded; synchronizations are infrequent).
	hotMu  sync.Mutex
	hotIn  [][]float32
	hotOut [][]float32

	counts      []uint64
	keep        []float32
	totalTokens uint64 // corpus tokens × epochs (per worker scan)

	reqCh      []chan *tnsReq
	scanDone   chan struct{} // one message per worker when its scan role ends
	scanTokens atomic.Uint64

	// Health tracking: heartbeat counters sampled by the monitor, sticky
	// dead flags, and a closed channel per dead worker so blocked
	// requesters wake immediately on detection.
	heartbeat []atomic.Uint64
	state     []atomic.Int32
	dead      []atomic.Bool
	anyDead   atomic.Bool // fast-path guard for the per-pair dead check
	deadCh    []chan struct{}
	stopMon   chan struct{}
	monWG     sync.WaitGroup

	// Checkpointing (set when opt.CheckpointDir and CheckpointEvery are
	// both set): scanning proceeds in sequence blocks with a barrier after
	// each, where the engine may cut a snapshot.
	ckptOn                 bool
	fp                     uint64
	blockSize, numBlocks   int
	startEpoch, startBlock int
	barriers               []blockBarrier
	lastCkptPairs          uint64
	ckptErr                error
	aborted                bool // written during a quiesce window only

	workers []*worker
}

func newEngine(dict *vocab.Dict, seqs [][]int32, part *graph.Partition, opt Options) (*engine, error) {
	e := &engine{dict: dict, seqs: seqs, opt: opt}
	w := opt.Workers

	// Token ownership: items from the partition; everything else hashed
	// (the paper assigns SI and user types to partitions randomly).
	e.owner = make([]int32, dict.Len())
	numItems := len(part.Of)
	for t := 0; t < dict.Len(); t++ {
		if t < numItems {
			e.owner[t] = part.Of[t]
		} else {
			e.owner[t] = int32((uint32(t) * 2654435761) % uint32(w))
		}
	}

	// Corpus frequencies drive the noise distributions, subsampling and
	// the hot set.
	e.counts = make([]uint64, dict.Len())
	var corpusTokens uint64
	for _, s := range seqs {
		for _, t := range s {
			e.counts[t]++
		}
		corpusTokens += uint64(len(s))
	}
	e.totalTokens = corpusTokens * uint64(opt.Epochs)
	if e.totalTokens == 0 {
		e.totalTokens = 1
	}
	if opt.SubsampleT > 0 {
		e.keep = subsampleKeep(dict, e.counts, corpusTokens, opt.SubsampleT, opt.SIBoost)
	}

	// Hot set Q (§III-C step 4).
	e.hotIdx = make([]int32, dict.Len())
	for i := range e.hotIdx {
		e.hotIdx[i] = -1
	}
	if opt.HotReplication {
		e.hotIDs = selectHot(e.counts, opt.HotThreshold, opt.HotTopK)
		for i, id := range e.hotIDs {
			e.hotIdx[id] = int32(i)
		}
	}

	master := rng.New(opt.Seed)
	e.model = emb.NewModel(dict.Len(), opt.Dim, master)

	// Global hot store seeded from the model.
	e.hotIn = make([][]float32, len(e.hotIDs))
	e.hotOut = make([][]float32, len(e.hotIDs))
	for i, id := range e.hotIDs {
		e.hotIn[i] = append([]float32(nil), e.model.In.Row(id)...)
		e.hotOut[i] = append([]float32(nil), e.model.Out.Row(id)...)
	}

	e.reqCh = make([]chan *tnsReq, w)
	for i := range e.reqCh {
		e.reqCh[i] = make(chan *tnsReq, 256)
	}
	e.scanDone = make(chan struct{}, w)
	e.heartbeat = make([]atomic.Uint64, w)
	e.state = make([]atomic.Int32, w)
	e.dead = make([]atomic.Bool, w)
	e.deadCh = make([]chan struct{}, w)
	for i := range e.deadCh {
		e.deadCh[i] = make(chan struct{})
	}
	e.stopMon = make(chan struct{})

	// Checkpoint geometry. Without checkpointing each epoch is a single
	// block with no barriers — the classic free-running schedule.
	e.ckptOn = opt.CheckpointDir != "" && opt.CheckpointEvery > 0
	e.blockSize = len(seqs)
	if e.ckptOn && e.blockSize > checkpointBlockSeqs {
		e.blockSize = checkpointBlockSeqs
	}
	if e.blockSize < 1 {
		e.blockSize = 1
	}
	e.numBlocks = (len(seqs) + e.blockSize - 1) / e.blockSize
	if e.numBlocks < 1 {
		e.numBlocks = 1
	}
	// Run identity for snapshot compatibility: the sgns hyper-parameters
	// plus everything distributed that shapes the model. Fault-injection
	// and timeout knobs are deliberately excluded — restarting a faulted
	// run without the fault plan is the expected recovery move.
	e.fp = opt.Options.Fingerprint("dist", dict.Len(), len(seqs), opt.Workers,
		opt.HotReplication, opt.HotThreshold, opt.HotTopK, opt.SyncEvery)
	if e.ckptOn {
		e.barriers = make([]blockBarrier, opt.Epochs*e.numBlocks)
		for i := range e.barriers {
			e.barriers[i] = blockBarrier{
				arrive:  make(chan struct{}, w),
				quiesce: make(chan struct{}),
				ack:     make(chan struct{}, w),
				release: make(chan struct{}),
			}
		}
	}

	var snap *checkpoint.Snapshot
	if opt.Resume && opt.CheckpointDir != "" && checkpoint.Exists(opt.CheckpointDir) {
		var err error
		snap, err = checkpoint.Load(opt.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("dist: resume: %w", err)
		}
		if err := snap.CheckOptions(e.fp); err != nil {
			return nil, fmt.Errorf("dist: resume: %w", err)
		}
		if len(snap.RNGs) != w {
			return nil, fmt.Errorf("dist: resume: snapshot has %d workers, run has %d", len(snap.RNGs), w)
		}
		if snap.Model.Vocab() != e.model.Vocab() || snap.Model.Dim() != e.model.Dim() {
			return nil, fmt.Errorf("dist: resume: snapshot model %d×%d, run %d×%d",
				snap.Model.Vocab(), snap.Model.Dim(), e.model.Vocab(), e.model.Dim())
		}
		if len(snap.HotIn) != len(e.hotIDs) {
			return nil, fmt.Errorf("dist: resume: snapshot has %d hot rows, run has %d", len(snap.HotIn), len(e.hotIDs))
		}
		if len(snap.Counters) != 1+workerCounterLen*w {
			return nil, fmt.Errorf("dist: resume: snapshot has %d counters, want %d", len(snap.Counters), 1+workerCounterLen*w)
		}
		copy(e.model.In.Data(), snap.Model.In.Data())
		copy(e.model.Out.Data(), snap.Model.Out.Data())
		for i := range e.hotIDs {
			copy(e.hotIn[i], snap.HotIn[i])
			copy(e.hotOut[i], snap.HotOut[i])
		}
		e.scanTokens.Store(snap.Counters[0])
		e.startEpoch, e.startBlock = snap.Epoch, snap.Block
		e.lastCkptPairs = 0 // recomputed below once workers are restored
	}

	e.workers = make([]*worker, w)
	for i := 0; i < w; i++ {
		wk, err := newWorker(e, i, master.Split())
		if err != nil {
			return nil, err
		}
		e.workers[i] = wk
	}
	if snap != nil {
		for i, wk := range e.workers {
			wk.r.SetState(snap.RNGs[i])
			wk.restoreCounters(snap.Counters[1+i*workerCounterLen : 1+(i+1)*workerCounterLen])
			// Replicas re-seed from the restored global hot store.
			for h := range e.hotIDs {
				copy(wk.hotIn[h], e.hotIn[h])
				copy(wk.hotOut[h], e.hotOut[h])
				copy(wk.hotInBase[h], e.hotIn[h])
				copy(wk.hotOutBase[h], e.hotOut[h])
			}
		}
		e.lastCkptPairs = e.totalPairs()
	}
	return e, nil
}

// checkpointBlockSeqs mirrors the sgns trainer's block granularity: a
// snapshot can only be cut at a block barrier, so CheckpointEvery is a
// lower bound on the pair gap between snapshots.
const checkpointBlockSeqs = 512

// workerCounterLen is the per-worker slot count in a snapshot's Counters
// (see worker.saveCounters).
const workerCounterLen = 9

// selectHot returns the shared set Q: tokens above the frequency threshold,
// or the top-K most frequent when threshold is zero.
func selectHot(counts []uint64, threshold uint64, topK int) []int32 {
	if threshold > 0 {
		var out []int32
		for t, c := range counts {
			if c >= threshold {
				out = append(out, int32(t))
			}
		}
		return out
	}
	if topK <= 0 {
		return nil
	}
	// Partial selection of the topK most frequent tokens, kept sorted by
	// descending count (insertion into a small array).
	type tc struct {
		t int32
		c uint64
	}
	sortTC := func(s []tc) {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j].c > s[j-1].c; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	}
	best := make([]tc, 0, topK)
	for t, c := range counts {
		if c == 0 {
			continue
		}
		if len(best) < topK {
			best = append(best, tc{int32(t), c})
			if len(best) == topK {
				sortTC(best)
			}
			continue
		}
		if c > best[topK-1].c {
			best[topK-1] = tc{int32(t), c}
			for i := topK - 1; i > 0 && best[i].c > best[i-1].c; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	if len(best) < topK {
		sortTC(best)
	}
	out := make([]int32, len(best))
	for i, b := range best {
		out[i] = b.t
	}
	return out
}

func subsampleKeep(dict *vocab.Dict, counts []uint64, total uint64, t, siBoost float64) []float32 {
	p := make([]float32, len(counts))
	for i := range counts {
		if counts[i] == 0 || total == 0 {
			p[i] = 1
			continue
		}
		f := float64(counts[i]) / float64(total)
		keep := math.Sqrt(t/f) + t/f
		if keep > 1 {
			keep = 1
		}
		if dict.KindOf(int32(i)) != vocab.KindItem {
			keep *= siBoost
		}
		p[i] = float32(keep)
	}
	return p
}

// run starts the workers and the health monitor, orchestrates checkpoint
// barriers, shuts the request mesh down by closing the per-worker request
// channels once every worker has finished (or crashed out of) its scan,
// merges hot replicas back into the model, and aggregates statistics.
func (e *engine) run() (*emb.Model, Stats, error) {
	start := time.Now()
	stopObservers := e.startObservers()
	e.monWG.Add(1)
	go e.monitor()

	var wg sync.WaitGroup
	for _, wk := range e.workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.run()
		}(wk)
	}

	if e.ckptOn {
		e.orchestrateBarriers()
	}

	// Shutdown: when a worker's scan role ends (all epochs done, or
	// crashed) it signals once. Remote calls only happen while scanning,
	// so after the W-th signal nothing new can be sent and closing the
	// request channels is safe; surviving workers drain what is queued
	// and exit on channel close — no polling, no sleeps.
	for n := 0; n < e.opt.Workers; n++ {
		<-e.scanDone
	}
	for i := range e.reqCh {
		close(e.reqCh[i])
	}
	wg.Wait()
	close(e.stopMon)
	e.monWG.Wait()
	stopObservers() // final Done progress snapshot; registry gauges stay readable

	// A crashed worker may have been overlooked by the monitor if the run
	// ended before its silence threshold; the final accounting is
	// authoritative either way.
	for _, wk := range e.workers {
		if wk.crashed {
			e.markDead(wk.id)
		}
	}

	// Fold the final hot values back into the model rows.
	for i, id := range e.hotIDs {
		copy(e.model.In.Row(id), e.hotIn[i])
		copy(e.model.Out.Row(id), e.hotOut[i])
	}

	st := Stats{
		Workers:        e.opt.Workers,
		Elapsed:        time.Since(start),
		Tokens:         e.totalTokens, // corpus tokens × epochs, cluster-level
		HotTokens:      len(e.hotIDs),
		PairsPerWorker: make([]uint64, e.opt.Workers),
	}
	for i, wk := range e.workers {
		st.Pairs += wk.pairs.Load()
		st.LocalPairs += wk.localPairs.Load()
		st.RemotePairs += wk.remotePairs.Load()
		st.BytesSent += wk.bytesSent.Load()
		st.HotSyncs += wk.hotSyncs.Load()
		st.Retries += wk.retries.Load()
		st.Degraded += wk.degraded.Load()
		st.DroppedPairs += wk.droppedPairs.Load()
		st.PairsPerWorker[i] = wk.pairs.Load()
		if e.dead[i].Load() {
			st.DeadWorkers = append(st.DeadWorkers, i)
		}
	}
	st.SimElapsed = e.simElapsed()
	return e.model, st, e.ckptErr
}

// orchestrateBarriers drives the arrive → quiesce → ack → release protocol
// for every block barrier, cutting a snapshot whenever CheckpointEvery
// pairs have accumulated since the last one (and always at the final
// barrier, so a finished run resumes as a no-op).
func (e *engine) orchestrateBarriers() {
	w := e.opt.Workers
	k0 := e.startEpoch*e.numBlocks + e.startBlock
	for k := k0; k < len(e.barriers); k++ {
		bar := &e.barriers[k]
		for n := 0; n < w; n++ {
			<-bar.arrive
		}
		close(bar.quiesce)
		for n := 0; n < w; n++ {
			<-bar.ack
		}
		// Quiesced: no worker is scanning or serving, so the model, hot
		// store, RNG states and counters are a consistent cut.
		pairs := e.totalPairs()
		final := k == len(e.barriers)-1
		if e.ckptErr == nil && (final || pairs-e.lastCkptPairs >= e.opt.CheckpointEvery) {
			if err := e.saveCheckpoint(k + 1); err != nil {
				e.ckptErr = fmt.Errorf("dist: checkpoint: %w", err)
			} else {
				e.lastCkptPairs = pairs
			}
		}
		if checkpointAbortHook != nil && checkpointAbortHook(k) {
			// Test-only simulated process kill: stop the run at this
			// quiesce point. Workers observe aborted after release and
			// stop scanning, so the saved snapshot is the resume point.
			e.aborted = true
			e.ckptErr = errAbortHook
			close(bar.release)
			return
		}
		close(bar.release)
	}
}

// checkpointAbortHook, when set by a test, is invoked at each barrier's
// quiesce point (after any snapshot); returning true kills the run there,
// simulating a process death right after a checkpoint.
var checkpointAbortHook func(k int) bool

var errAbortHook = errors.New("dist: run aborted by test hook")

func (e *engine) totalPairs() uint64 {
	var p uint64
	for _, wk := range e.workers {
		p += wk.pairs.Load()
	}
	return p
}

// saveCheckpoint writes the snapshot describing a resume position of
// global barrier index k (epoch k/numBlocks, block k%numBlocks).
func (e *engine) saveCheckpoint(k int) error {
	counters := make([]uint64, 1, 1+workerCounterLen*len(e.workers))
	counters[0] = e.scanTokens.Load()
	rngs := make([][4]uint64, len(e.workers))
	for i, wk := range e.workers {
		counters = append(counters, wk.saveCounters()...)
		rngs[i] = wk.r.State()
	}
	return checkpoint.Save(e.opt.CheckpointDir, &checkpoint.Snapshot{
		OptionsHash: e.fp,
		Epoch:       k / e.numBlocks,
		Block:       k % e.numBlocks,
		Counters:    counters,
		RNGs:        rngs,
		Model:       e.model,
		HotIn:       e.hotIn,
		HotOut:      e.hotOut,
	})
}

// monitor is the heartbeat watchdog: it samples every worker's heartbeat
// counter at heartbeatEvery intervals and declares a worker dead once the
// counter has sat still for deadAfter while the worker claims to be
// scanning. Declaring death closes the worker's deadCh so requesters
// blocked on it wake immediately and degrade instead of waiting out their
// full retry budget. A false positive (a worker stalled past the
// threshold that later recovers) is safe: the survivors account its pairs
// as dropped and degrade remote calls to it, but nothing corrupts — the
// flagged worker's own updates remain valid.
func (e *engine) monitor() {
	defer e.monWG.Done()
	every := e.opt.heartbeatEvery()
	deadAfter := e.opt.deadAfter()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	w := e.opt.Workers
	last := make([]uint64, w)
	still := make([]time.Duration, w)
	for {
		select {
		case <-e.stopMon:
			return
		case <-ticker.C:
			for i := 0; i < w; i++ {
				if e.dead[i].Load() || e.state[i].Load() != stateScanning {
					still[i] = 0
					continue
				}
				hb := e.heartbeat[i].Load()
				if hb != last[i] {
					last[i] = hb
					still[i] = 0
					continue
				}
				still[i] += every
				if still[i] >= deadAfter {
					e.markDead(int32(i))
				}
			}
		}
	}
}

// markDead flags a worker as failed (idempotent) and wakes anyone blocked
// on it.
func (e *engine) markDead(id int32) {
	if e.dead[id].CompareAndSwap(false, true) {
		e.anyDead.Store(true)
		close(e.deadCh[id])
	}
}

// isDead reports whether the worker has been declared failed. The shared
// anyDead flag keeps the common (healthy) path to a single cheap load.
func (e *engine) isDead(id int32) bool {
	return e.anyDead.Load() && e.dead[id].Load()
}

// simElapsed applies the cost model to the measured per-worker counters:
// the cluster finishes when its slowest worker does (makespan), plus the
// fixed startup overhead. See CostModel for the constituent terms.
func (e *engine) simElapsed() time.Duration {
	cm := e.opt.Cost
	if cm == (CostModel{}) {
		cm = DefaultCostModel()
	}
	dim := float64(e.opt.Dim)
	// Per-update compute cost, scaled from the reference shape and
	// inflated by the cache-miss factor of the full vector table.
	pairNs := cm.PairUpdateNs * (dim / 32) * (float64(1+e.opt.Negatives) / 6)
	vocabBytes := float64(e.dict.Len()) * dim * 2 * 4 // in + out, float32
	miss := 0.0
	if vocabBytes > cm.CacheBytes && vocabBytes > 0 {
		miss = cm.MissPenalty * (1 - cm.CacheBytes/vocabBytes)
	}
	pairNs *= 1 + miss

	var worst float64
	for _, wk := range e.workers {
		compute := float64(wk.pairs.Load()-wk.remotePairs.Load()+wk.servedPairs.Load()) * pairNs
		// The requester also pays the (overlapped) round-trip latency and
		// its share of NIC time.
		comm := float64(wk.remotePairs.Load())*cm.RemoteRTTNs +
			float64(wk.bytesSent.Load())/cm.BandwidthBytes*1e9
		if t := compute + comm; t > worst {
			worst = t
		}
	}
	startup := cm.StartupNsPerVocab * float64(e.dict.Len())
	return time.Duration(worst + startup)
}

// hotSync pushes a worker's replica deltas into the global store and pulls
// the merged values — the "synchronized (averaged) at regular intervals"
// mechanism of §III-A.
func (e *engine) hotSync(w *worker) {
	if len(e.hotIDs) == 0 {
		return
	}
	e.hotMu.Lock()
	for i := range e.hotIDs {
		applyDelta(e.hotIn[i], w.hotIn[i], w.hotInBase[i])
		applyDelta(e.hotOut[i], w.hotOut[i], w.hotOutBase[i])
		copy(w.hotIn[i], e.hotIn[i])
		copy(w.hotOut[i], e.hotOut[i])
		copy(w.hotInBase[i], e.hotIn[i])
		copy(w.hotOutBase[i], e.hotOut[i])
	}
	e.hotMu.Unlock()
	w.hotSyncs.Add(1)
	// Simulated cost: full hot set both directions.
	w.bytesSent.Add(uint64(len(e.hotIDs)) * uint64(e.opt.Dim) * 4 * 2)
}

func applyDelta(global, local, base []float32) {
	for i := range global {
		global[i] += local[i] - base[i]
	}
}

// noiseFor builds worker w's local noise distribution over its partition
// plus the shared hot set (§III-C: "every worker maintains its own noise
// distribution for the elements of P_j ∪ Q"). Replicated (hot) tokens
// appear in every worker's distribution, so their weight is divided by the
// worker count: the aggregate negative-sampling rate of a hot token then
// matches its global unigram^α rate. Without this, hot tokens absorb ~w×
// their fair share of negative updates, their output vectors blow up, and
// training diverges at high worker counts.
//
// A negative update writes the sampled token's OUTPUT row, so the
// distribution may only ever contain rows this worker can safely write:
// its own partition (replicas of hot rows are per-worker, so those are
// safe everywhere). A degenerate partition — the worker owns no token that
// appears in the corpus — therefore falls back to a uniform distribution
// over the worker's own partition ∪ Q, NOT over the full vocabulary:
// full-vocabulary negatives would race with the owners of those rows. A
// worker that owns nothing at all gets a nil table and trains
// positive-only (it can only be reached via replicated hot pairs).
func (e *engine) noiseFor(id int) (*alias.Table, []int32, error) {
	var tokens []int32
	weights := []float64{}
	for t := 0; t < e.dict.Len(); t++ {
		if e.counts[t] == 0 {
			continue
		}
		if e.owner[t] == int32(id) || e.hotIdx[t] >= 0 {
			w := math.Pow(float64(e.counts[t]), e.opt.NoiseAlpha)
			if e.hotIdx[t] >= 0 {
				w /= float64(e.opt.Workers)
			}
			tokens = append(tokens, int32(t))
			weights = append(weights, w)
		}
	}
	if len(tokens) == 0 {
		for t := 0; t < e.dict.Len(); t++ {
			if e.owner[t] == int32(id) || e.hotIdx[t] >= 0 {
				tokens = append(tokens, int32(t))
				weights = append(weights, 1)
			}
		}
	}
	if len(tokens) == 0 {
		return nil, nil, nil
	}
	tab, err := alias.New(weights)
	if err != nil {
		return nil, nil, err
	}
	return tab, tokens, nil
}

// rowIn returns the in-vector visible to worker w for token t.
func (e *engine) rowIn(w *worker, t int32) []float32 {
	if hi := e.hotIdx[t]; hi >= 0 {
		return w.hotIn[hi]
	}
	return e.model.In.Row(t)
}

// rowOut returns the out-vector visible to worker w for token t.
func (e *engine) rowOut(w *worker, t int32) []float32 {
	if hi := e.hotIdx[t]; hi >= 0 {
		return w.hotOut[hi]
	}
	return e.model.Out.Row(t)
}
