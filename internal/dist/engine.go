package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/alias"
	"sisg/internal/checkpoint"
	"sisg/internal/emb"
	"sisg/internal/graph"
	"sisg/internal/rng"
	"sisg/internal/vocab"
)

// tnsReq is one remote TNS invocation (Algorithm 1, line 7): the requester
// ships a copy of the target's input vector; the context's owner applies
// the positive + negative output updates and returns the input gradient.
// Each delivery attempt uses a fresh req with its own 1-buffered reply
// channel, so a server answering a request its requester already abandoned
// (deadline expired, pair degraded) never blocks.
type tnsReq struct {
	vec   []float32 // copy of in(v_i)
	ctx   int32     // v_j, owned by the receiving worker
	lr    float32
	reply chan []float32
}

// Worker lifecycle states, as seen by the health monitor. Only a scanning
// worker can be declared dead: one paused at a checkpoint barrier or done
// with its scan is idle by design, not by failure. A crashed worker never
// reports a state change — crashing silently is the point — so it stays
// "scanning" with a frozen heartbeat until the monitor flags it.
const (
	stateScanning int32 = iota
	stateWaiting
	stateDone
)

// blockBarrier synchronizes one checkpoint cut. The protocol is
// arrive → quiesce → ack → release: workers keep serving between arrival
// and quiesce (a peer may still be mid-scan and need remote TNS), and
// between ack and release nothing runs, so the engine snapshots a frozen,
// race-free view of the model and hot store.
type blockBarrier struct {
	arrive  chan struct{} // workers announce block completion (cap W)
	quiesce chan struct{} // closed by the engine once all W arrived
	ack     chan struct{} // workers confirm they stopped serving (cap W)
	release chan struct{} // closed by the engine after the snapshot
}

type engine struct {
	dict *vocab.Dict
	seqs [][]int32
	opt  Options

	owner  []int32 // token -> owning worker
	hotIdx []int32 // token -> index into the hot set, or -1
	hotIDs []int32 // hot set Q

	model *emb.Model

	// Global hot store (mutex-guarded; synchronizations are infrequent).
	hotMu  sync.Mutex
	hotIn  [][]float32
	hotOut [][]float32

	counts      []uint64
	keep        []float32
	totalTokens uint64 // corpus tokens × epochs (per worker scan)

	// tr moves TNS requests between workers: the in-process channel mesh
	// by default, real loopback TCP when Options.Transport says so, either
	// one wrapped in the fault decorator when the plan injects wire
	// faults. See transport.go.
	tr         Transport
	scanDone   chan struct{} // one message per worker when its scan role ends
	scanTokens atomic.Uint64

	// Health tracking: heartbeat counters sampled by the monitor, dead
	// flags (sticky without Recovery; cleared when a replacement spawns),
	// and a closed channel per dead worker so blocked requesters wake
	// immediately on detection. everDead is the cumulative ledger backing
	// Stats.DeadWorkers — a resurrected worker stays on it.
	heartbeat []atomic.Uint64
	state     []atomic.Int32
	dead      []atomic.Bool
	everDead  []atomic.Bool
	anyDead   atomic.Bool // fast-path guard for the per-pair dead check
	deadCh    []chan struct{}
	deadOnce  []sync.Once // deadCh closes once per partition, ever
	stopMon   chan struct{}
	monWG     sync.WaitGroup

	// Recovery (set when opt.Recovery): the supervisor respawns dead
	// partitions. spawnMu serializes replacement spawns against shutdown;
	// draining (guarded by spawnMu) means the run is past its last
	// scanDone and no replacement may start. host maps partition ->
	// hosting machine (diverges from identity on takeover); livePart is
	// the engine's own partition copy, reassigned on takeover.
	wwg      sync.WaitGroup // all worker goroutines, incl. replacements
	supWG    sync.WaitGroup // in-flight recover() calls
	spawnMu  sync.Mutex
	draining bool
	host     []int32
	livePart *graph.Partition

	// Checkpointing (set when opt.CheckpointDir and CheckpointEvery are
	// both set): scanning proceeds in sequence blocks with a barrier after
	// each, where the engine may cut a snapshot.
	ckptOn                 bool
	fp                     uint64
	blockSize, numBlocks   int
	startEpoch, startBlock int
	barriers               []blockBarrier
	lastCkptPairs          uint64
	ckptErr                error
	aborted                bool // written during a quiesce window only

	workers []*worker
}

func newEngine(dict *vocab.Dict, seqs [][]int32, part *graph.Partition, opt Options) (*engine, error) {
	e := &engine{dict: dict, seqs: seqs, opt: opt}
	w := opt.Workers

	// Token ownership: items from the partition; everything else hashed
	// (the paper assigns SI and user types to partitions randomly).
	e.owner = make([]int32, dict.Len())
	numItems := len(part.Of)
	for t := 0; t < dict.Len(); t++ {
		if t < numItems {
			e.owner[t] = part.Of[t]
		} else {
			e.owner[t] = int32((uint32(t) * 2654435761) % uint32(w))
		}
	}

	// Corpus frequencies drive the noise distributions, subsampling and
	// the hot set.
	e.counts = make([]uint64, dict.Len())
	var corpusTokens uint64
	for _, s := range seqs {
		for _, t := range s {
			e.counts[t]++
		}
		corpusTokens += uint64(len(s))
	}
	e.totalTokens = corpusTokens * uint64(opt.Epochs)
	if e.totalTokens == 0 {
		e.totalTokens = 1
	}
	if opt.SubsampleT > 0 {
		e.keep = subsampleKeep(dict, e.counts, corpusTokens, opt.SubsampleT, opt.SIBoost)
	}

	// Hot set Q (§III-C step 4).
	e.hotIdx = make([]int32, dict.Len())
	for i := range e.hotIdx {
		e.hotIdx[i] = -1
	}
	if opt.HotReplication {
		e.hotIDs = selectHot(e.counts, opt.HotThreshold, opt.HotTopK)
		for i, id := range e.hotIDs {
			e.hotIdx[id] = int32(i)
		}
	}

	master := rng.New(opt.Seed)
	e.model = emb.NewModel(dict.Len(), opt.Dim, master)

	// Global hot store seeded from the model.
	e.hotIn = make([][]float32, len(e.hotIDs))
	e.hotOut = make([][]float32, len(e.hotIDs))
	for i, id := range e.hotIDs {
		e.hotIn[i] = append([]float32(nil), e.model.In.Row(id)...)
		e.hotOut[i] = append([]float32(nil), e.model.Out.Row(id)...)
	}

	e.scanDone = make(chan struct{}, w)
	e.heartbeat = make([]atomic.Uint64, w)
	e.state = make([]atomic.Int32, w)
	e.dead = make([]atomic.Bool, w)
	e.everDead = make([]atomic.Bool, w)
	e.deadCh = make([]chan struct{}, w)
	e.deadOnce = make([]sync.Once, w)
	for i := range e.deadCh {
		e.deadCh[i] = make(chan struct{})
	}
	e.stopMon = make(chan struct{})
	if opt.Recovery {
		e.host = make([]int32, w)
		for i := range e.host {
			e.host[i] = int32(i)
		}
		e.livePart = part.Clone()
	}

	// Checkpoint geometry. Without checkpointing each epoch is a single
	// block with no barriers — the classic free-running schedule.
	e.ckptOn = opt.CheckpointDir != "" && opt.CheckpointEvery > 0
	e.blockSize = len(seqs)
	if e.ckptOn && e.blockSize > checkpointBlockSeqs {
		e.blockSize = checkpointBlockSeqs
	}
	if e.blockSize < 1 {
		e.blockSize = 1
	}
	e.numBlocks = (len(seqs) + e.blockSize - 1) / e.blockSize
	if e.numBlocks < 1 {
		e.numBlocks = 1
	}
	// Run identity for snapshot compatibility: the sgns hyper-parameters
	// plus everything distributed that shapes the model. Fault-injection
	// and timeout knobs are deliberately excluded — restarting a faulted
	// run without the fault plan is the expected recovery move.
	e.fp = opt.Options.Fingerprint("dist", dict.Len(), len(seqs), opt.Workers,
		opt.HotReplication, opt.HotThreshold, opt.HotTopK, opt.SyncEvery)
	if e.ckptOn {
		e.barriers = make([]blockBarrier, opt.Epochs*e.numBlocks)
		for i := range e.barriers {
			e.barriers[i] = blockBarrier{
				arrive:  make(chan struct{}, w),
				quiesce: make(chan struct{}),
				ack:     make(chan struct{}, w),
				release: make(chan struct{}),
			}
		}
	}

	var snap *checkpoint.Snapshot
	if opt.Resume && opt.CheckpointDir != "" && checkpoint.Exists(opt.CheckpointDir) {
		var err error
		snap, err = checkpoint.Load(opt.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("dist: resume: %w", err)
		}
		if err := snap.CheckOptions(e.fp); err != nil {
			return nil, fmt.Errorf("dist: resume: %w", err)
		}
		if len(snap.RNGs) != w {
			return nil, fmt.Errorf("dist: resume: snapshot has %d workers, run has %d", len(snap.RNGs), w)
		}
		if snap.Model.Vocab() != e.model.Vocab() || snap.Model.Dim() != e.model.Dim() {
			return nil, fmt.Errorf("dist: resume: snapshot model %d×%d, run %d×%d",
				snap.Model.Vocab(), snap.Model.Dim(), e.model.Vocab(), e.model.Dim())
		}
		if len(snap.HotIn) != len(e.hotIDs) {
			return nil, fmt.Errorf("dist: resume: snapshot has %d hot rows, run has %d", len(snap.HotIn), len(e.hotIDs))
		}
		if len(snap.Counters) != 1+workerCounterLen*w {
			return nil, fmt.Errorf("dist: resume: snapshot has %d counters, want %d", len(snap.Counters), 1+workerCounterLen*w)
		}
		copy(e.model.In.Data(), snap.Model.In.Data())
		copy(e.model.Out.Data(), snap.Model.Out.Data())
		for i := range e.hotIDs {
			copy(e.hotIn[i], snap.HotIn[i])
			copy(e.hotOut[i], snap.HotOut[i])
		}
		e.scanTokens.Store(snap.Counters[0])
		e.startEpoch, e.startBlock = snap.Epoch, snap.Block
		e.lastCkptPairs = 0 // recomputed below once workers are restored
	}

	e.workers = make([]*worker, w)
	for i := 0; i < w; i++ {
		wk, err := newWorker(e, i, master.Split())
		if err != nil {
			return nil, err
		}
		e.workers[i] = wk
	}
	if snap != nil {
		for i, wk := range e.workers {
			wk.r.SetState(snap.RNGs[i])
			wk.restoreCounters(snap.Counters[1+i*workerCounterLen : 1+(i+1)*workerCounterLen])
			// A takeover that happened before the snapshot persists across
			// the resume: rebuild the host map and the partition ledger (no
			// one is dead in the fresh process, so the adopter is ring-next).
			if e.host != nil && wk.takenOver.Load() > 0 {
				a := e.adopterFor(int32(i))
				e.host[i] = a
				if a != int32(i) {
					_ = e.livePart.Reassign(i, int(a))
				}
			}
			// Replicas re-seed from the restored global hot store.
			for h := range e.hotIDs {
				copy(wk.hotIn[h], e.hotIn[h])
				copy(wk.hotOut[h], e.hotOut[h])
				copy(wk.hotInBase[h], e.hotIn[h])
				copy(wk.hotOutBase[h], e.hotOut[h])
			}
		}
		e.lastCkptPairs = e.totalPairs()
	}
	// Last, so no earlier validation failure can leak its listeners: the
	// transport is the only engine resource that must be torn down.
	tr, err := newTransport(&e.opt)
	if err != nil {
		return nil, err
	}
	e.tr = tr
	return e, nil
}

// checkpointBlockSeqs mirrors the sgns trainer's block granularity: a
// snapshot can only be cut at a block barrier, so CheckpointEvery is a
// lower bound on the pair gap between snapshots.
const checkpointBlockSeqs = 512

// workerCounterLen is the per-worker slot count in a snapshot's Counters
// (see worker.saveCounters). PR 3 grew it from 9: recovery state
// (recovered pairs, restarts, takeover flag, the ever-dead ledger bit) and
// crash-trigger state (fired count, armed position) must survive a
// mid-chaos resume, or the resumed run would re-fire crashes that already
// happened and diverge from the uninterrupted run.
const workerCounterLen = 15

// selectHot returns the shared set Q: tokens above the frequency threshold,
// or the top-K most frequent when threshold is zero.
func selectHot(counts []uint64, threshold uint64, topK int) []int32 {
	if threshold > 0 {
		var out []int32
		for t, c := range counts {
			if c >= threshold {
				out = append(out, int32(t))
			}
		}
		return out
	}
	if topK <= 0 {
		return nil
	}
	// Partial selection of the topK most frequent tokens, kept sorted by
	// descending count (insertion into a small array).
	type tc struct {
		t int32
		c uint64
	}
	sortTC := func(s []tc) {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j].c > s[j-1].c; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	}
	best := make([]tc, 0, topK)
	for t, c := range counts {
		if c == 0 {
			continue
		}
		if len(best) < topK {
			best = append(best, tc{int32(t), c})
			if len(best) == topK {
				sortTC(best)
			}
			continue
		}
		if c > best[topK-1].c {
			best[topK-1] = tc{int32(t), c}
			for i := topK - 1; i > 0 && best[i].c > best[i-1].c; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	if len(best) < topK {
		sortTC(best)
	}
	out := make([]int32, len(best))
	for i, b := range best {
		out[i] = b.t
	}
	return out
}

func subsampleKeep(dict *vocab.Dict, counts []uint64, total uint64, t, siBoost float64) []float32 {
	p := make([]float32, len(counts))
	for i := range counts {
		if counts[i] == 0 || total == 0 {
			p[i] = 1
			continue
		}
		f := float64(counts[i]) / float64(total)
		keep := math.Sqrt(t/f) + t/f
		if keep > 1 {
			keep = 1
		}
		if dict.KindOf(int32(i)) != vocab.KindItem {
			keep *= siBoost
		}
		p[i] = float32(keep)
	}
	return p
}

// run starts the workers and the health monitor, orchestrates checkpoint
// barriers, shuts the request mesh down through the transport (end of
// serve phase, then full teardown) once every worker has finished (or
// crashed out of) its scan, merges hot replicas back into the model, and
// aggregates statistics.
func (e *engine) run() (*emb.Model, Stats, error) {
	start := time.Now()
	stopObservers := e.startObservers()
	e.monWG.Add(1)
	go e.monitor()

	e.spawnMu.Lock()
	for _, wk := range e.workers {
		e.spawnWorker(wk)
	}
	e.spawnMu.Unlock()

	if e.ckptOn {
		e.orchestrateBarriers()
	}

	// Shutdown: when a partition's scan role ends it signals once —
	// without Recovery that is the worker finishing or crashing; with
	// Recovery only the incarnation that completes all epochs signals (a
	// crashed one exits silently and its replacement carries the role).
	// Remote calls only happen while scanning, so after the W-th signal
	// nothing new can be sent and ending the serve phase is safe;
	// surviving workers drain what is queued and exit when the
	// transport's done channel closes — no polling, no sleeps. Full
	// transport teardown (connections, listeners) waits until every
	// worker goroutine has exited, because late TCP deliveries may still
	// be in flight toward the inboxes.
	for n := 0; n < e.opt.Workers; n++ {
		<-e.scanDone
	}
	e.spawnMu.Lock()
	e.draining = true // any recover() still in flight becomes a no-op
	e.spawnMu.Unlock()
	e.tr.CloseInboxes()
	e.wwg.Wait()
	_ = e.tr.Close() // teardown of an already-drained transport (error deliberately dropped)
	close(e.stopMon)
	e.monWG.Wait()
	e.supWG.Wait()
	stopObservers() // final Done progress snapshot; registry gauges stay readable

	// A crashed worker may have been overlooked by the monitor if the run
	// ended before its silence threshold; the final accounting is
	// authoritative either way.
	for _, wk := range e.workers {
		if wk.crashed {
			e.markDead(wk.id)
		}
	}

	// Fold the final hot values back into the model rows.
	for i, id := range e.hotIDs {
		copy(e.model.In.Row(id), e.hotIn[i])
		copy(e.model.Out.Row(id), e.hotOut[i])
	}

	st := Stats{
		Workers:        e.opt.Workers,
		Elapsed:        time.Since(start),
		Tokens:         e.totalTokens, // corpus tokens × epochs, cluster-level
		HotTokens:      len(e.hotIDs),
		PairsPerWorker: make([]uint64, e.opt.Workers),
	}
	for i, wk := range e.workers {
		st.Pairs += wk.pairs.Load()
		st.LocalPairs += wk.localPairs.Load()
		st.RemotePairs += wk.remotePairs.Load()
		st.BytesSent += wk.bytesSent.Load()
		st.HotSyncs += wk.hotSyncs.Load()
		st.Retries += wk.retries.Load()
		st.Degraded += wk.degraded.Load()
		st.DroppedPairs += wk.droppedPairs.Load()
		st.Restarts += wk.restarts.Load()
		st.Takeovers += wk.takenOver.Load()
		st.RecoveredPairs += wk.recoveredPairs.Load()
		st.PairsPerWorker[i] = wk.pairs.Load()
		if e.everDead[i].Load() {
			st.DeadWorkers = append(st.DeadWorkers, i)
		}
	}
	if st.Takeovers > 0 {
		st.Hosts = append([]int32(nil), e.host...)
	}
	ts := e.tr.Stats()
	st.WireBytesSent = ts.BytesSent
	st.WireBytesRecv = ts.BytesReceived
	st.WireFrames = ts.FramesSent
	st.Reconnects = ts.Reconnects
	st.SimElapsed = e.simElapsed()
	return e.model, st, e.ckptErr
}

// spawnWorker launches one incarnation of a worker (initial or
// replacement); the caller must hold spawnMu (it guards wk.gone and
// draining). The per-incarnation gone channel lets the supervisor wait
// for the previous incarnation to fully exit before handing its partition
// to the next one — the fencing that makes a false-positive death (a
// stalled worker the monitor gave up on) safe: two incarnations of one
// partition never run concurrently.
func (e *engine) spawnWorker(wk *worker) {
	gone := make(chan struct{})
	wk.gone = gone
	e.wwg.Add(1)
	go func() {
		defer e.wwg.Done()
		defer close(gone)
		wk.run()
	}()
}

// recover is the supervisor's response to one death: fence and wait out
// the old incarnation, then either resurrect the partition on its own
// machine (budget left) or hand it to a surviving adopter (takeover). One
// recover goroutine runs per death event; deaths of different partitions
// recover concurrently, deaths of the same partition are naturally
// serialized (a partition must be live again before it can die again).
func (e *engine) recover(id int32) {
	defer e.supWG.Done()
	wk := e.workers[id]
	wk.fenced.Store(true)
	// wk.gone is written by spawnWorker under spawnMu; a death detected by
	// a NON-changing heartbeat carries no happens-before edge from that
	// write, so the read must take the lock too. No newer incarnation can
	// appear while we wait: deaths of one partition are serialized through
	// this very function.
	e.spawnMu.Lock()
	gone := wk.gone
	e.spawnMu.Unlock()
	<-gone

	// A false positive on a worker that went on to finish its scan: the
	// partition is complete, nothing to recover.
	if ep, _ := unpackCursor(wk.cursor.Load()); ep >= e.opt.Epochs {
		return
	}
	restarts := wk.restarts.Load()
	resurrect := int(restarts) < e.opt.maxRestarts()
	if resurrect {
		e.sleepBackoff(id, restarts)
	}

	e.spawnMu.Lock()
	defer e.spawnMu.Unlock()
	if e.draining {
		return
	}
	if resurrect {
		wk.restarts.Add(1)
		wk.reinit(false)
	} else {
		adopter := e.adopterFor(id)
		wk.takenOver.Store(1)
		e.host[id] = adopter
		if e.livePart != nil && adopter != id {
			// Bookkeeping on the engine's own partition copy; routing
			// stays static (owner[] is immutable), the adopter hosts the
			// partition's rows and request queue.
			_ = e.livePart.Reassign(int(id), int(adopter))
		}
		wk.reinit(true)
	}
	e.dead[id].Store(false)
	e.state[id].Store(stateScanning)
	e.heartbeat[id].Add(1) // fresh beat: the monitor's stillness clock restarts
	e.spawnWorker(wk)
}

// sleepBackoff delays a resurrection: base × 2^restarts, jittered ±50%
// from a deterministic per-(partition, restart) stream so fault decisions
// never touch the training RNGs.
func (e *engine) sleepBackoff(id int32, restarts uint64) {
	d := e.opt.restartBackoff()
	shift := restarts
	if shift > 6 {
		shift = 6
	}
	d <<= shift
	r := rng.New(e.opt.Seed ^ (0xa0761d6478bd642f * (uint64(id) + 1)) ^ (0xe7037ed1a0b428db * (restarts + 1)))
	d = time.Duration(float64(d) * (0.5 + r.Float64()))
	if d > 0 {
		time.Sleep(d)
	}
}

// adopterFor picks the takeover host for a dead partition: the first
// machine after it in ring order that is not itself currently dead — the
// same deterministic rule countsDropsFor uses for drop accounting.
func (e *engine) adopterFor(id int32) int32 {
	n := int32(e.opt.Workers)
	for i := int32(1); i < n; i++ {
		c := (id + i) % n
		if !e.dead[c].Load() {
			return c
		}
	}
	return id // everyone dead at once: keep it home (still re-hosted)
}

// orchestrateBarriers drives the arrive → quiesce → ack → release protocol
// for every block barrier, cutting a snapshot whenever CheckpointEvery
// pairs have accumulated since the last one (and always at the final
// barrier, so a finished run resumes as a no-op).
func (e *engine) orchestrateBarriers() {
	w := e.opt.Workers
	k0 := e.startEpoch*e.numBlocks + e.startBlock
	for k := k0; k < len(e.barriers); k++ {
		bar := &e.barriers[k]
		for n := 0; n < w; n++ {
			<-bar.arrive
		}
		close(bar.quiesce)
		for n := 0; n < w; n++ {
			<-bar.ack
		}
		// Quiesced: no worker is scanning or serving, so the model, hot
		// store, RNG states and counters are a consistent cut.
		pairs := e.totalPairs()
		final := k == len(e.barriers)-1
		halting := e.opt.HaltAfterBarriers > 0 && k+1-k0 >= e.opt.HaltAfterBarriers
		if e.ckptErr == nil && (final || halting || pairs-e.lastCkptPairs >= e.opt.CheckpointEvery) {
			if err := e.saveCheckpoint(k + 1); err != nil {
				e.ckptErr = fmt.Errorf("dist: checkpoint: %w", err)
			} else {
				e.lastCkptPairs = pairs
			}
		}
		if halting && !final && e.ckptErr == nil {
			// Simulated process kill at this quiesce point: the snapshot
			// just cut is the resume point. Workers observe aborted after
			// release and stop scanning.
			e.aborted = true
			e.ckptErr = ErrHalted
			close(bar.release)
			return
		}
		if checkpointAbortHook != nil && checkpointAbortHook(k) {
			// Test-only simulated process kill: stop the run at this
			// quiesce point. Workers observe aborted after release and
			// stop scanning, so the saved snapshot is the resume point.
			e.aborted = true
			e.ckptErr = errAbortHook
			close(bar.release)
			return
		}
		close(bar.release)
	}
}

// ErrHalted reports a run stopped by Options.HaltAfterBarriers: a clean,
// resumable interruption with a snapshot on disk, not a failure.
var ErrHalted = errors.New("dist: run halted after requested barrier count (resumable)")

// packCursor encodes a worker's durable scan position — the sequence it is
// about to (re)scan — into one atomic word; epoch >= Epochs means the
// partition completed its scan.
func packCursor(epoch, seq int) uint64 { return uint64(epoch)<<32 | uint64(uint32(seq)) }

func unpackCursor(c uint64) (epoch, seq int) { return int(c >> 32), int(uint32(c)) }

// checkpointAbortHook, when set by a test, is invoked at each barrier's
// quiesce point (after any snapshot); returning true kills the run there,
// simulating a process death right after a checkpoint.
var checkpointAbortHook func(k int) bool

var errAbortHook = errors.New("dist: run aborted by test hook")

func (e *engine) totalPairs() uint64 {
	var p uint64
	for _, wk := range e.workers {
		p += wk.pairs.Load()
	}
	return p
}

// saveCheckpoint writes the snapshot describing a resume position of
// global barrier index k (epoch k/numBlocks, block k%numBlocks).
func (e *engine) saveCheckpoint(k int) error {
	counters := make([]uint64, 1, 1+workerCounterLen*len(e.workers))
	counters[0] = e.scanTokens.Load()
	rngs := make([][4]uint64, len(e.workers))
	for i, wk := range e.workers {
		counters = append(counters, wk.saveCounters()...)
		rngs[i] = wk.r.State()
	}
	return checkpoint.Save(e.opt.CheckpointDir, &checkpoint.Snapshot{
		OptionsHash: e.fp,
		Epoch:       k / e.numBlocks,
		Block:       k % e.numBlocks,
		Counters:    counters,
		RNGs:        rngs,
		Model:       e.model,
		HotIn:       e.hotIn,
		HotOut:      e.hotOut,
	})
}

// monitor is the heartbeat watchdog: it samples every worker's heartbeat
// counter at heartbeatEvery intervals and declares a worker dead once the
// counter has sat still for deadAfter while the worker claims to be
// scanning. Declaring death closes the worker's deadCh so requesters
// blocked on it wake immediately and degrade instead of waiting out their
// full retry budget. A false positive (a worker stalled past the
// threshold that later recovers) is safe: the survivors account its pairs
// as dropped and degrade remote calls to it, but nothing corrupts — the
// flagged worker's own updates remain valid.
func (e *engine) monitor() {
	defer e.monWG.Done()
	every := e.opt.heartbeatEvery()
	deadAfter := e.opt.deadAfter()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	w := e.opt.Workers
	last := make([]uint64, w)
	still := make([]time.Duration, w)
	for {
		select {
		case <-e.stopMon:
			return
		case <-ticker.C:
			for i := 0; i < w; i++ {
				if e.dead[i].Load() || e.state[i].Load() != stateScanning {
					still[i] = 0
					continue
				}
				hb := e.heartbeat[i].Load()
				if hb != last[i] {
					last[i] = hb
					still[i] = 0
					continue
				}
				still[i] += every
				if still[i] >= deadAfter {
					e.markDead(int32(i))
				}
			}
		}
	}
}

// markDead flags a worker as failed and wakes anyone blocked on it. With
// Recovery it additionally dispatches a supervisor goroutine to re-host
// the partition; the dead flag is cleared again when the replacement
// spawns, so the CAS can succeed once per incarnation.
func (e *engine) markDead(id int32) {
	if e.dead[id].CompareAndSwap(false, true) {
		e.everDead[id].Store(true)
		e.anyDead.Store(true)
		e.deadOnce[id].Do(func() { close(e.deadCh[id]) })
		if e.opt.Recovery {
			e.spawnMu.Lock()
			if !e.draining {
				e.supWG.Add(1)
				go e.recover(id)
			}
			e.spawnMu.Unlock()
		}
	}
}

// isDead reports whether the worker has been declared failed. The shared
// anyDead flag keeps the common (healthy) path to a single cheap load.
func (e *engine) isDead(id int32) bool {
	return e.anyDead.Load() && e.dead[id].Load()
}

// simElapsed applies the cost model to the measured per-worker counters:
// the cluster finishes when its slowest worker does (makespan), plus the
// fixed startup overhead. See CostModel for the constituent terms.
func (e *engine) simElapsed() time.Duration {
	cm := e.opt.Cost
	if cm == (CostModel{}) {
		cm = DefaultCostModel()
	}
	dim := float64(e.opt.Dim)
	// Per-update compute cost, scaled from the reference shape and
	// inflated by the cache-miss factor of the full vector table.
	pairNs := cm.PairUpdateNs * (dim / 32) * (float64(1+e.opt.Negatives) / 6)
	vocabBytes := float64(e.dict.Len()) * dim * 2 * 4 // in + out, float32
	miss := 0.0
	if vocabBytes > cm.CacheBytes && vocabBytes > 0 {
		miss = cm.MissPenalty * (1 - cm.CacheBytes/vocabBytes)
	}
	pairNs *= 1 + miss

	var worst float64
	for _, wk := range e.workers {
		compute := float64(wk.pairs.Load()-wk.remotePairs.Load()+wk.servedPairs.Load()) * pairNs
		// The requester also pays the (overlapped) round-trip latency and
		// its share of NIC time.
		comm := float64(wk.remotePairs.Load())*cm.RemoteRTTNs +
			float64(wk.bytesSent.Load())/cm.BandwidthBytes*1e9
		if t := compute + comm; t > worst {
			worst = t
		}
	}
	startup := cm.StartupNsPerVocab * float64(e.dict.Len())
	return time.Duration(worst + startup)
}

// hotSync pushes a worker's replica deltas into the global store and pulls
// the merged values — the "synchronized (averaged) at regular intervals"
// mechanism of §III-A.
func (e *engine) hotSync(w *worker) {
	if len(e.hotIDs) == 0 {
		return
	}
	e.hotMu.Lock()
	for i := range e.hotIDs {
		applyDelta(e.hotIn[i], w.hotIn[i], w.hotInBase[i])
		applyDelta(e.hotOut[i], w.hotOut[i], w.hotOutBase[i])
		copy(w.hotIn[i], e.hotIn[i])
		copy(w.hotOut[i], e.hotOut[i])
		copy(w.hotInBase[i], e.hotIn[i])
		copy(w.hotOutBase[i], e.hotOut[i])
	}
	e.hotMu.Unlock()
	w.hotSyncs.Add(1)
	// Simulated cost: full hot set both directions.
	w.bytesSent.Add(uint64(len(e.hotIDs)) * uint64(e.opt.Dim) * 4 * 2)
}

func applyDelta(global, local, base []float32) {
	for i := range global {
		global[i] += local[i] - base[i]
	}
}

// noiseFor builds worker w's local noise distribution over its partition
// plus the shared hot set (§III-C: "every worker maintains its own noise
// distribution for the elements of P_j ∪ Q"). Replicated (hot) tokens
// appear in every worker's distribution, so their weight is divided by the
// worker count: the aggregate negative-sampling rate of a hot token then
// matches its global unigram^α rate. Without this, hot tokens absorb ~w×
// their fair share of negative updates, their output vectors blow up, and
// training diverges at high worker counts.
//
// A negative update writes the sampled token's OUTPUT row, so the
// distribution may only ever contain rows this worker can safely write:
// its own partition (replicas of hot rows are per-worker, so those are
// safe everywhere). A degenerate partition — the worker owns no token that
// appears in the corpus — therefore falls back to a uniform distribution
// over the worker's own partition ∪ Q, NOT over the full vocabulary:
// full-vocabulary negatives would race with the owners of those rows. A
// worker that owns nothing at all gets a nil table and trains
// positive-only (it can only be reached via replicated hot pairs).
func (e *engine) noiseFor(id int) (*alias.Table, []int32, error) {
	var tokens []int32
	weights := []float64{}
	for t := 0; t < e.dict.Len(); t++ {
		if e.counts[t] == 0 {
			continue
		}
		if e.owner[t] == int32(id) || e.hotIdx[t] >= 0 {
			w := math.Pow(float64(e.counts[t]), e.opt.NoiseAlpha)
			if e.hotIdx[t] >= 0 {
				w /= float64(e.opt.Workers)
			}
			tokens = append(tokens, int32(t))
			weights = append(weights, w)
		}
	}
	if len(tokens) == 0 {
		for t := 0; t < e.dict.Len(); t++ {
			if e.owner[t] == int32(id) || e.hotIdx[t] >= 0 {
				tokens = append(tokens, int32(t))
				weights = append(weights, 1)
			}
		}
	}
	if len(tokens) == 0 {
		return nil, nil, nil
	}
	tab, err := alias.New(weights)
	if err != nil {
		return nil, nil, err
	}
	return tab, tokens, nil
}

// rowIn returns the in-vector visible to worker w for token t.
func (e *engine) rowIn(w *worker, t int32) []float32 {
	if hi := e.hotIdx[t]; hi >= 0 {
		return w.hotIn[hi]
	}
	return e.model.In.Row(t)
}

// rowOut returns the out-vector visible to worker w for token t.
func (e *engine) rowOut(w *worker, t int32) []float32 {
	if hi := e.hotIdx[t]; hi >= 0 {
		return w.hotOut[hi]
	}
	return e.model.Out.Row(t)
}
