package dist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/rng"
)

// Timeouts internal to the TCP transport. They bound single socket
// operations, not the TNS call — the call-level deadline lives in
// worker.remoteCall and is passed to Call. readIdle is deliberately short
// so reader goroutines notice a torn-down transport quickly; a timeout on
// a frame BOUNDARY is idleness, not failure.
const (
	tcpDialTimeout  = 250 * time.Millisecond
	tcpWriteTimeout = 1 * time.Second
	tcpReadIdle     = 200 * time.Millisecond

	// Reconnect backoff: base × 2^attempt, jittered ±50%, capped at 64×.
	tcpRedialBase     = 1 * time.Millisecond
	tcpRedialMaxShift = 6

	// frameReadChunk bounds how much readFrame allocates ahead of bytes
	// actually received — the unit of trust extended to a length prefix.
	frameReadChunk = 64 << 10
)

// errIdleFrame marks a read deadline that expired between frames — zero
// bytes consumed, the stream is still aligned and the caller just retries.
var errIdleFrame = errors.New("dist: idle between frames")

// tcpTransport runs the TNS mesh over real loopback sockets: one listener
// per worker, one persistent multiplexed connection per directed (src,dst)
// pair, dialed lazily and redialed with jittered backoff when severed.
// Frames are written in batches (everything queued drains through one
// bufio flush) and demultiplexed by request id on the way back.
//
// All socket work happens on transport-owned goroutines (per-link writers
// and readers, per-connection server handlers); worker goroutines only
// touch channels, so a stalled or reconnecting link can never stop a
// worker's heartbeat.
type tcpTransport struct {
	inboxes []chan *tnsReq
	done    chan struct{} // serve phase over (CloseInboxes)
	closed  chan struct{} // full teardown (Close)
	closeMu sync.Mutex
	isDown  bool

	listeners []net.Listener
	links     [][]*peerLink // [src][dst]; nil on the diagonal
	wg        sync.WaitGroup

	framesOut, framesIn atomic.Uint64
	bytesOut, bytesIn   atomic.Uint64
	dials, reconnects   atomic.Uint64
	lateReplies         atomic.Uint64
}

// peerLink is one directed client edge src→dst: a frame queue drained by a
// dedicated writer goroutine, a connection (re)dialed on demand, and the
// pending table matching reply frames back to in-flight Calls.
type peerLink struct {
	t    *tcpTransport
	addr func() string // dst's listen address (resolved after all listeners bind)

	out chan []byte // encoded frames awaiting the writer

	connMu sync.Mutex
	conn   net.Conn
	bw     *bufio.Writer
	dialed bool // a connection existed at least once (reconnect accounting)

	nextID  atomic.Uint64
	pendMu  sync.Mutex
	pending map[uint64]chan []float32

	backoff *rng.RNG // jitter stream, touched only by the writer goroutine
}

func newTCPTransport(workers int, seed uint64) (*tcpTransport, error) {
	t := &tcpTransport{
		inboxes: make([]chan *tnsReq, workers),
		done:    make(chan struct{}),
		closed:  make(chan struct{}),
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan *tnsReq, 256)
	}
	t.listeners = make([]net.Listener, workers)
	for i := range t.listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range t.listeners[:i] {
				_ = l.Close() // best-effort unwind of a failed construction (error deliberately dropped)
			}
			return nil, err
		}
		t.listeners[i] = ln
	}
	t.links = make([][]*peerLink, workers)
	for s := range t.links {
		t.links[s] = make([]*peerLink, workers)
		for d := range t.links[s] {
			if s == d {
				continue
			}
			dst := d
			l := &peerLink{
				t:       t,
				addr:    func() string { return t.listeners[dst].Addr().String() },
				out:     make(chan []byte, 256),
				pending: make(map[uint64]chan []float32),
				backoff: rng.New(seed ^ (0x2545f4914f6cdd1d * uint64(s*workers+d+1))),
			}
			t.links[s][d] = l
			t.wg.Add(1)
			go l.writeLoop()
		}
	}
	for i, ln := range t.listeners {
		t.wg.Add(1)
		go t.acceptLoop(int32(i), ln)
	}
	return t, nil
}

func (t *tcpTransport) Inbox(id int32) <-chan *tnsReq { return t.inboxes[id] }
func (t *tcpTransport) Done() <-chan struct{}         { return t.done }
func (t *tcpTransport) CloseInboxes()                 { close(t.done) }

func (t *tcpTransport) Close() error {
	t.closeMu.Lock()
	if t.isDown {
		t.closeMu.Unlock()
		return nil
	}
	t.isDown = true
	close(t.closed)
	t.closeMu.Unlock()
	for _, ln := range t.listeners {
		_ = ln.Close() // teardown; the accept loop exits on any error (error deliberately dropped)
	}
	for _, row := range t.links {
		for _, l := range row {
			if l != nil {
				l.dropConn(nil)
			}
		}
	}
	t.wg.Wait()
	return nil
}

func (t *tcpTransport) Stats() TransportStats {
	return TransportStats{
		FramesSent:     t.framesOut.Load(),
		FramesReceived: t.framesIn.Load(),
		BytesSent:      t.bytesOut.Load(),
		BytesReceived:  t.bytesIn.Load(),
		Dials:          t.dials.Load(),
		Reconnects:     t.reconnects.Load(),
		LateReplies:    t.lateReplies.Load(),
	}
}

// Sever cuts the established src→dst connection, if any. The link's
// writer redials with jittered backoff on the next frame; in-flight
// requests on the old connection are lost and time out at the caller.
func (t *tcpTransport) Sever(src, dst int32) {
	if l := t.links[src][dst]; l != nil {
		l.dropConn(nil)
	}
}

// Call registers a reply slot, queues the encoded request for the link
// writer and awaits the demultiplexed gradient, serving src's own inbox
// throughout. The frame is encoded up front: Call is synchronous in the
// caller, so vec cannot be mutated underneath the snapshot.
func (t *tcpTransport) Call(src, dst int32, vec []float32, ctx int32, lr float32,
	timeout time.Duration, abort <-chan struct{}, serve func(*tnsReq)) ([]float32, bool) {
	l := t.links[src][dst]
	id := l.nextID.Add(1)
	reply := make(chan []float32, 1)
	l.pendMu.Lock()
	l.pending[id] = reply
	l.pendMu.Unlock()
	defer func() {
		l.pendMu.Lock()
		delete(l.pending, id)
		l.pendMu.Unlock()
	}()

	frame := encodeReq(id, vec, ctx, lr)
	own := t.inboxes[src]
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	queued := false
	for !queued {
		select {
		case l.out <- frame:
			queued = true
		case in := <-own:
			serve(in)
		case <-abort:
			return nil, false
		case <-timer.C:
			return nil, false
		}
	}
	for {
		select {
		case grad := <-reply:
			return grad, true
		case in := <-own:
			serve(in)
		case <-abort:
			return nil, false
		case <-timer.C:
			return nil, false
		}
	}
}

func (t *tcpTransport) SendOneWay(src, dst int32, vec []float32, ctx int32, lr float32) {
	l := t.links[src][dst]
	// The id is never registered in pending, so the reply — if one comes
	// back — is discarded as late. Best-effort: a full writer queue drops
	// the frame rather than block the caller.
	frame := encodeReq(l.nextID.Add(1), vec, ctx, lr)
	select {
	case l.out <- frame:
	default:
	}
}

// writeLoop drains the link's frame queue onto the connection. One frame
// wakes it; everything queued behind rides the same bufio flush — the
// write batching that keeps a 256-deep retry burst to a handful of
// syscalls.
func (l *peerLink) writeLoop() {
	defer l.t.wg.Done()
	for {
		select {
		case <-l.t.closed:
			return
		case frame := <-l.out:
			l.writeBatch(frame)
		}
	}
}

func (l *peerLink) writeBatch(frame []byte) {
	conn, bw := l.ensureConn()
	if conn == nil {
		return // transport closed mid-dial; the frame is lost, the caller's deadline covers it
	}
	if err := conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)); err != nil {
		l.dropConn(conn)
		return
	}
	for {
		if _, err := bw.Write(frame); err != nil {
			l.dropConn(conn)
			return
		}
		l.t.framesOut.Add(1)
		l.t.bytesOut.Add(uint64(len(frame)))
		select {
		case frame = <-l.out:
		default:
			if err := bw.Flush(); err != nil {
				l.dropConn(conn)
			}
			return
		}
	}
}

// ensureConn returns the link's live connection, dialing (and redialing,
// with seeded jittered exponential backoff) until it has one or the
// transport closes. Runs only on the writer goroutine.
func (l *peerLink) ensureConn() (net.Conn, *bufio.Writer) {
	l.connMu.Lock()
	if l.conn != nil {
		c, bw := l.conn, l.bw
		l.connMu.Unlock()
		return c, bw
	}
	l.connMu.Unlock()
	for attempt := 0; ; attempt++ {
		select {
		case <-l.t.closed:
			return nil, nil
		default:
		}
		c, err := net.DialTimeout("tcp", l.addr(), tcpDialTimeout)
		if err == nil {
			bw := bufio.NewWriter(c)
			l.connMu.Lock()
			l.conn, l.bw = c, bw
			if l.dialed {
				l.t.reconnects.Add(1)
			}
			l.dialed = true
			l.connMu.Unlock()
			l.t.dials.Add(1)
			l.t.wg.Add(1)
			go l.readLoop(c)
			return c, bw
		}
		shift := attempt
		if shift > tcpRedialMaxShift {
			shift = tcpRedialMaxShift
		}
		d := time.Duration(float64(tcpRedialBase<<shift) * (0.5 + l.backoff.Float64()))
		select {
		case <-l.t.closed:
			return nil, nil
		case <-time.After(d):
		}
	}
}

// dropConn detaches and closes a connection. With c == nil it drops
// whatever connection is current (Sever, Close); with c non-nil it drops
// only if c is still current, so a stale reader can never kill its
// successor.
func (l *peerLink) dropConn(c net.Conn) {
	l.connMu.Lock()
	victim := l.conn
	if c != nil && victim != c {
		victim = c // stale: close it, but leave the current connection alone
	} else {
		l.conn, l.bw = nil, nil
	}
	l.connMu.Unlock()
	if victim != nil {
		_ = victim.Close() // closing a possibly already-broken socket (error deliberately dropped)
	}
}

// readLoop demultiplexes reply frames off one client connection into the
// pending table. It exits when the connection breaks (severed, peer gone,
// transport closed); the writer's next ensureConn starts a fresh one.
func (l *peerLink) readLoop(conn net.Conn) {
	defer l.t.wg.Done()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, errIdleFrame) && !l.t.closing() {
				continue
			}
			l.dropConn(conn)
			return
		}
		l.t.framesIn.Add(1)
		l.t.bytesIn.Add(uint64(4 + len(payload)))
		if len(payload) == 0 || payload[0] != frameResp {
			l.dropConn(conn) // protocol violation: kill the stream
			return
		}
		id, grad, err := decodeResp(payload)
		if err != nil {
			l.dropConn(conn)
			return
		}
		l.pendMu.Lock()
		ch, ok := l.pending[id]
		if ok {
			delete(l.pending, id)
		}
		l.pendMu.Unlock()
		if !ok {
			l.t.lateReplies.Add(1)
			continue
		}
		ch <- grad // 1-buffered and we are the sole sender post-delete: never blocks
	}
}

func (t *tcpTransport) closing() bool {
	select {
	case <-t.closed:
		return true
	default:
		return false
	}
}

// acceptLoop owns worker id's listener: every inbound connection gets its
// own handler goroutine.
func (t *tcpTransport) acceptLoop(id int32, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: teardown
		}
		t.wg.Add(1)
		go t.serveConn(id, conn)
	}
}

// serveConn is the server half of one connection: decode a request,
// deliver it to the worker's inbox, await the gradient and write the
// reply. Replies are flushed per request — the server cannot know when
// the next request comes, and a parked reply is a stalled caller.
func (t *tcpTransport) serveConn(dst int32, conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close() // teardown of a connection that may already be broken (error deliberately dropped)
	}()
	bw := bufio.NewWriter(conn)
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, errIdleFrame) && !t.closing() {
				continue
			}
			return
		}
		t.framesIn.Add(1)
		t.bytesIn.Add(uint64(4 + len(payload)))
		if len(payload) == 0 || payload[0] != frameReq {
			return
		}
		id, vec, ctx, lr, err := decodeReq(payload)
		if err != nil {
			return
		}
		req := &tnsReq{vec: vec, ctx: ctx, lr: lr, reply: make(chan []float32, 1)}
		select {
		case t.inboxes[dst] <- req:
		case <-t.done:
			continue // serve phase over: the request is dropped, not replied to
		case <-t.closed:
			return
		}
		var grad []float32
		select {
		case grad = <-req.reply:
		case <-t.closed:
			return // the worker will never answer (teardown); drop the connection
		}
		resp := encodeResp(id, grad)
		if err := conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)); err != nil {
			return
		}
		if _, err := bw.Write(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		t.framesOut.Add(1)
		t.bytesOut.Add(uint64(len(resp)))
	}
}

// readFrame reads one length-prefixed payload. A deadline that expires on
// a frame boundary (zero bytes in) returns errIdleFrame — the stream is
// still aligned and the caller may retry; a timeout mid-frame is a
// desynchronized stream and fatal.
func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if err := conn.SetReadDeadline(time.Now().Add(tcpReadIdle)); err != nil {
		return nil, err
	}
	if n, err := io.ReadFull(conn, hdr[:]); err != nil {
		if n == 0 && isTimeout(err) {
			return nil, errIdleFrame
		}
		return nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size == 0 || size > maxFramePayload {
		return nil, errors.New("dist: frame size out of bounds")
	}
	// Read the payload in bounded chunks, growing the buffer as bytes
	// actually arrive: a hostile 16MB length prefix on a stream that then
	// stalls or closes costs one chunk of memory, not maxFramePayload.
	// The deadline is re-armed per chunk, so a slow sender of a large
	// frame only has to keep the pipe moving, while a mid-frame stall is
	// still fatal within one chunk's window.
	buf := make([]byte, 0, min(int(size), frameReadChunk))
	for len(buf) < int(size) {
		n := min(int(size)-len(buf), frameReadChunk)
		if err := conn.SetReadDeadline(time.Now().Add(tcpWriteTimeout)); err != nil {
			return nil, err
		}
		off := len(buf)
		buf = slices.Grow(buf, n)[:off+n]
		if _, err := io.ReadFull(conn, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
