package dist

import (
	"testing"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/graph"
	"sisg/internal/sisg"
	"sisg/internal/vecmath"
)

func tinySetup(t *testing.T, workers int) (*corpus.Dataset, [][]int32, *graph.Partition) {
	t.Helper()
	cfg := corpus.Tiny()
	cfg.NumSessions = 900
	ds, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqs := sisg.Enrich(ds.Dict, ds.Sessions, sisg.VariantSISGFUD)
	part, _, err := PartitionForDataset(ds, ds.Sessions, workers)
	if err != nil {
		t.Fatal(err)
	}
	return ds, seqs, part
}

func tinyOptions(workers int) Options {
	opt := DefaultOptions(workers)
	opt.Options = sisg.TrainOptions(opt.Options, sisg.VariantSISGFUD, 3)
	opt.Epochs = 1
	opt.HotTopK = 64
	return opt
}

func TestTrainBasic(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	m, st, err := Train(ds.Dict.Dict, seqs, part, tinyOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vocab() != ds.Dict.Len() {
		t.Fatalf("model vocab %d", m.Vocab())
	}
	if st.Pairs == 0 {
		t.Fatal("no pairs trained")
	}
	if st.LocalPairs+st.RemotePairs != st.Pairs {
		t.Fatalf("pair accounting broken: %d + %d != %d", st.LocalPairs, st.RemotePairs, st.Pairs)
	}
	if st.Workers != 4 || len(st.PairsPerWorker) != 4 {
		t.Fatalf("worker accounting: %+v", st)
	}
	var sum uint64
	for _, p := range st.PairsPerWorker {
		sum += p
	}
	if sum != st.Pairs {
		t.Fatal("per-worker pairs do not sum")
	}
	if st.SimElapsed <= 0 {
		t.Fatal("SimElapsed not computed")
	}
	// Model must be finite and non-trivial.
	var nonZero bool
	for _, v := range m.In.Data() {
		if v != v {
			t.Fatal("NaN in model")
		}
		if v != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("model all zeros")
	}
}

func TestHotReplicationReducesRemote(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)

	noHot := tinyOptions(4)
	noHot.HotReplication = false
	_, stTNS, err := Train(ds.Dict.Dict, seqs, part, noHot)
	if err != nil {
		t.Fatal(err)
	}
	hot := tinyOptions(4)
	_, stATNS, err := Train(ds.Dict.Dict, seqs, part, hot)
	if err != nil {
		t.Fatal(err)
	}
	if stATNS.HotTokens == 0 {
		t.Fatal("ATNS selected no hot tokens")
	}
	if stATNS.RemoteFraction() >= stTNS.RemoteFraction() {
		t.Fatalf("ATNS remote %.3f not below TNS %.3f",
			stATNS.RemoteFraction(), stTNS.RemoteFraction())
	}
	if stATNS.BytesSent >= stTNS.BytesSent {
		t.Fatalf("ATNS bytes %d not below TNS %d", stATNS.BytesSent, stTNS.BytesSent)
	}
	if stATNS.HotSyncs == 0 {
		t.Fatal("no hot syncs happened")
	}
}

func TestSingleWorkerAllLocal(t *testing.T) {
	ds, seqs, part := tinySetup(t, 1)
	_, st, err := Train(ds.Dict.Dict, seqs, part, tinyOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.RemotePairs != 0 {
		t.Fatalf("single worker made %d remote calls", st.RemotePairs)
	}
}

func TestModelQualityComparableToLocal(t *testing.T) {
	// The distributed model must learn the same structure the local
	// trainer does: same-leaf items more similar than cross-leaf ones.
	ds, seqs, part := tinySetup(t, 4)
	opt := tinyOptions(4)
	opt.Epochs = 2
	m, _, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	var same, cross float64
	var ns, nc int
	for a := int32(0); a < 60; a++ {
		for b := a + 1; b < 60; b++ {
			ca, cb := ds.Dict.Count(a), ds.Dict.Count(b)
			if ca < 10 || cb < 10 {
				continue
			}
			c := float64(vecmath.Cosine(m.In.Row(a), m.In.Row(b)))
			if ds.Catalog.LeafOf(a) == ds.Catalog.LeafOf(b) {
				same += c
				ns++
			} else {
				cross += c
				nc++
			}
		}
	}
	if ns == 0 || nc == 0 {
		t.Skip("not enough frequent pairs in tiny corpus")
	}
	if same/float64(ns) <= cross/float64(nc) {
		t.Fatalf("distributed model did not learn leaf structure: same=%.3f cross=%.3f",
			same/float64(ns), cross/float64(nc))
	}
}

func TestSlowWorkerNoDeadlock(t *testing.T) {
	ds, seqs, part := tinySetup(t, 3)
	opt := tinyOptions(3)
	opt.SlowWorker = 1
	opt.SlowWorkerDelay = 50 * time.Microsecond
	done := make(chan error, 1)
	go func() {
		_, _, err := Train(ds.Dict.Dict, seqs, part, opt)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("training with a slow worker did not finish (deadlock?)")
	}
}

func TestOptionErrors(t *testing.T) {
	ds, seqs, part := tinySetup(t, 2)
	opt := tinyOptions(2)
	opt.Workers = 0
	if _, _, err := Train(ds.Dict.Dict, seqs, part, opt); err == nil {
		t.Error("Workers=0 accepted")
	}
	opt = tinyOptions(2)
	if _, _, err := Train(ds.Dict.Dict, seqs, nil, opt); err == nil {
		t.Error("nil partition accepted")
	}
	opt = tinyOptions(3) // mismatch with part.W == 2
	if _, _, err := Train(ds.Dict.Dict, seqs, part, opt); err == nil {
		t.Error("partition/worker mismatch accepted")
	}
}

func TestHotThresholdSelection(t *testing.T) {
	counts := []uint64{100, 5, 50, 0, 7}
	ids := selectHot(counts, 10, 0)
	if len(ids) != 2 { // 100 and 50
		t.Fatalf("threshold selection: %v", ids)
	}
	top := selectHot(counts, 0, 3)
	if len(top) != 3 || top[0] != 0 || top[1] != 2 || top[2] != 4 {
		t.Fatalf("topK selection: %v", top)
	}
	if got := selectHot(counts, 0, 0); got != nil {
		t.Fatalf("topK=0 returned %v", got)
	}
}

func TestCostModelScaling(t *testing.T) {
	ds, seqs, _ := tinySetup(t, 1)
	// More workers should (with everything else equal) reduce SimElapsed
	// on this small corpus despite added communication.
	var prev time.Duration
	for _, w := range []int{1, 4} {
		part, _, err := PartitionForDataset(ds, ds.Sessions, w)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := Train(ds.Dict.Dict, seqs, part, tinyOptions(w))
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			prev = st.SimElapsed
			continue
		}
		if st.SimElapsed >= prev {
			t.Fatalf("w=%d sim time %v not below w=1 %v", w, st.SimElapsed, prev)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	st := Stats{Pairs: 100, RemotePairs: 25, PairsPerWorker: []uint64{60, 40},
		Tokens: 1000, SimElapsed: time.Second, Elapsed: 2 * time.Second}
	if st.RemoteFraction() != 0.25 {
		t.Fatal("RemoteFraction")
	}
	if st.Imbalance() != 1.2 {
		t.Fatalf("Imbalance = %v", st.Imbalance())
	}
	if st.SimTokensPerSec() != 1000 {
		t.Fatal("SimTokensPerSec")
	}
	if st.TokensPerSec() != 500 {
		t.Fatal("TokensPerSec")
	}
}
