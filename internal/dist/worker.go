package dist

import (
	"sort"
	"sync/atomic"
	"time"

	"sisg/internal/alias"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

// worker is one simulated machine: it owns the embedding rows of its
// partition, keeps replicas of the hot set, and runs two logical roles in
// one goroutine — scanning its view of the corpus (Algorithm 1's outer
// loop) and serving TNS requests from peers (the function TNS(v_i, v_j)).
// While blocked on a remote call it keeps serving its own queue, which
// makes the request mesh deadlock-free.
type worker struct {
	e   *engine
	id  int32
	r   *rng.RNG
	opt *Options

	noise       *alias.Table
	noiseTokens []int32

	// Hot replicas and the base values used for delta synchronization.
	hotIn, hotOut         [][]float32
	hotInBase, hotOutBase [][]float32

	grad []float32
	kept []int32

	lr float32

	// srng draws the negatives for SERVED requests. How many requests a
	// worker serves (and when) depends on goroutine scheduling, so if
	// serving consumed r, the scan-side subsample and window draws would
	// shift from run to run and no two runs would train the same pairs.
	// With a dedicated stream, r is consumed only by this worker's own
	// deterministic scan order, which is what makes checkpoint resume
	// replay exact pair counts.
	srng *rng.RNG

	// Fault machinery. frng is a dedicated RNG for fault decisions
	// (retry jitter, degraded-pair negatives; wire-level faults such as
	// request drops draw from the fault transport's own per-requester
	// streams) so injecting faults never perturbs the training stream in
	// r. Crash and stall
	// triggers fire on the worker's own pair counter — deterministic
	// regardless of goroutine scheduling. crashSpec is this partition's
	// merged crash schedule; crashArmAt is the armed absolute pair count
	// (0 = disarmed) and is persisted so a resumed run does not re-fire a
	// crash at the wrong position.
	frng      *rng.RNG
	crashed   bool
	crashSpec *CrashSpec
	stalls    []StallSpec // sorted by AtPairs; stallIdx is the next unfired
	stallIdx  int

	// Recovery state. cursor is the durable scan position (epoch, seq),
	// written at every sequence start, that a replacement incarnation
	// resumes from. fenced is set by the supervisor before it replaces
	// this incarnation: the fenced goroutine must stop touching the model
	// and exit (checked at sequence, pair and remote-attempt boundaries),
	// which keeps a false-positive death from ever producing two live
	// incarnations of one partition. gone is closed when the incarnation's
	// goroutine fully exits; the supervisor waits on it before respawning.
	fenced      atomic.Bool
	gone        chan struct{}
	cursor      atomic.Uint64
	resumeEpoch int
	resumeSeq   int
	incarnation int  // reinit count; seeds the replacement RNG streams
	replacement bool // true for every incarnation after the first
	adopted     bool // partition taken over by a survivor: no fault re-arm

	// Counters (merged by the engine after the run and persisted in
	// checkpoints — see saveCounters). Atomic because the progress
	// reporter and registry gauges sample them mid-run; each counter is
	// only ever WRITTEN by its own worker goroutine (or the supervisor
	// between incarnations), so the atomics cost one uncontended add per
	// event.
	pairs, localPairs, remotePairs atomic.Uint64
	servedPairs                    atomic.Uint64
	bytesSent                      atomic.Uint64
	hotSyncs                       atomic.Uint64
	retries, degraded              atomic.Uint64
	droppedPairs                   atomic.Uint64
	recoveredPairs                 atomic.Uint64 // pairs trained by replacement incarnations
	restarts                       atomic.Uint64 // resurrections of this partition
	takenOver                      atomic.Uint64 // 1 once a survivor adopted the partition
	crashesFired                   atomic.Uint64
	crashArmAt                     atomic.Uint64
	sincSync                       int // scan-local, never sampled
}

func newWorker(e *engine, id int, r *rng.RNG) (*worker, error) {
	w := &worker{
		e: e, id: int32(id), r: r, opt: &e.opt,
		grad: make([]float32, e.opt.Dim),
		kept: make([]int32, 0, 128),
		lr:   e.opt.LR,
		srng: rng.New(e.opt.Seed ^ (0xbf58476d1ce4e5b9 * uint64(id+1))),
		frng: rng.New(e.opt.Seed ^ (0x9e3779b97f4a7c15 * uint64(id+1))),
	}
	if c := e.opt.Faults.crashFor(id); c != nil {
		w.crashSpec = c
		if c.AtStart {
			// Never-started worker: dead at birth, detected purely by the
			// heartbeat it never produces.
			w.crashed = true
			w.crashesFired.Store(1)
		} else {
			w.crashArmAt.Store(c.AtPairs)
		}
	}
	w.stalls = e.opt.Faults.stallsFor(id)
	sort.Slice(w.stalls, func(i, j int) bool { return w.stalls[i].AtPairs < w.stalls[j].AtPairs })
	w.resumeEpoch = e.startEpoch
	w.resumeSeq = e.startBlock * e.blockSize
	w.cursor.Store(packCursor(w.resumeEpoch, w.resumeSeq))
	noise, tokens, err := e.noiseFor(id)
	if err != nil {
		return nil, err
	}
	w.noise, w.noiseTokens = noise, tokens

	w.hotIn = make([][]float32, len(e.hotIDs))
	w.hotOut = make([][]float32, len(e.hotIDs))
	w.hotInBase = make([][]float32, len(e.hotIDs))
	w.hotOutBase = make([][]float32, len(e.hotIDs))
	for i := range e.hotIDs {
		w.hotIn[i] = append([]float32(nil), e.hotIn[i]...)
		w.hotOut[i] = append([]float32(nil), e.hotOut[i]...)
		w.hotInBase[i] = append([]float32(nil), e.hotIn[i]...)
		w.hotOutBase[i] = append([]float32(nil), e.hotOut[i]...)
	}
	return w, nil
}

// saveCounters returns the worker's persistent counters in checkpoint
// order; restoreCounters is its inverse. workerCounterLen must match. The
// recovery slots (recovered pairs, restarts, takeover, crash-trigger
// state, the ever-dead flag) make a mid-chaos resume equivalent to the
// uninterrupted run: without them the resumed run would re-fire crashes
// that already happened, or forget a takeover.
func (w *worker) saveCounters() []uint64 {
	everDead := uint64(0)
	if w.e.everDead[w.id].Load() {
		everDead = 1
	}
	return []uint64{w.pairs.Load(), w.localPairs.Load(), w.remotePairs.Load(), w.servedPairs.Load(),
		w.bytesSent.Load(), w.hotSyncs.Load(), w.retries.Load(), w.degraded.Load(), w.droppedPairs.Load(),
		w.recoveredPairs.Load(), w.restarts.Load(), w.takenOver.Load(), w.crashesFired.Load(),
		w.crashArmAt.Load(), everDead}
}

func (w *worker) restoreCounters(c []uint64) {
	for i, dst := range []*atomic.Uint64{&w.pairs, &w.localPairs, &w.remotePairs, &w.servedPairs,
		&w.bytesSent, &w.hotSyncs, &w.retries, &w.degraded, &w.droppedPairs,
		&w.recoveredPairs, &w.restarts, &w.takenOver, &w.crashesFired, &w.crashArmAt} {
		dst.Store(c[i])
	}
	if c[14] != 0 {
		w.e.everDead[w.id].Store(true)
		w.e.anyDead.Store(true)
	}
	// The resuming process is a fresh one: whatever incarnation wrote the
	// snapshot, its state (not its death) is what resumes. A crash whose
	// trigger already fired stays fired (crashArmAt was cleared at fire
	// time and restored as such), so the run does not re-crash.
	w.crashed = false
	if w.restarts.Load() > 0 || w.takenOver.Load() > 0 {
		w.replacement = true
		w.adopted = w.takenOver.Load() > 0
		w.incarnation = int(w.restarts.Load() + w.takenOver.Load())
		if w.adopted {
			w.stallIdx = len(w.stalls)
		}
	}
}

// reinit prepares the worker struct for its next incarnation; called by
// the supervisor after the previous goroutine fully exited (gone closed),
// so no field here is ever written concurrently with the old incarnation.
// The RNG streams are re-seeded from a dedicated (seed, partition,
// incarnation) function — never from the dead streams, whose exact stop
// position is timing-dependent — so replays under one seed stay
// deterministic. Counters carry over; hot replicas re-seed from the global
// store (the dead incarnation's un-synced deltas are lost: crash
// semantics); the scan resumes at the sequence the cursor froze on.
func (w *worker) reinit(adopted bool) {
	e := w.e
	w.incarnation++
	n := uint64(w.incarnation)
	id := uint64(w.id) + 1
	w.r = rng.New(e.opt.Seed ^ (0x94d049bb133111eb * id) ^ (0xbf58476d1ce4e5b9 * n))
	w.srng = rng.New(e.opt.Seed ^ (0xff51afd7ed558ccd * id) ^ (0xc4ceb9fe1a85ec53 * n))
	w.frng = rng.New(e.opt.Seed ^ (0xd6e8feb86659fd93 * id) ^ (0xa0761d6478bd642f * n))
	w.crashed = false
	w.fenced.Store(false)
	w.replacement = true
	w.crashArmAt.Store(0)
	if adopted {
		w.adopted = true
	}
	if w.adopted {
		// The adopting machine is not the faulty one: no fault re-arm.
		w.stallIdx = len(w.stalls)
	} else if c := w.crashSpec; c != nil && int(w.crashesFired.Load()) < c.Times {
		// A resurrected machine carries its fault with it until the spec's
		// fire budget is spent — the way a scenario drives a partition
		// through its whole restart budget into takeover.
		if c.AtStart {
			w.crashed = true
			w.crashesFired.Add(1)
		} else {
			w.crashArmAt.Store(w.pairs.Load() + c.AtPairs)
		}
	}
	w.resumeEpoch, w.resumeSeq = unpackCursor(w.cursor.Load())
	e.hotMu.Lock()
	for i := range e.hotIDs {
		copy(w.hotIn[i], e.hotIn[i])
		copy(w.hotOut[i], e.hotOut[i])
		copy(w.hotInBase[i], e.hotIn[i])
		copy(w.hotOutBase[i], e.hotOut[i])
	}
	e.hotMu.Unlock()
	w.sincSync = 0
}

// run scans the corpus for opt.Epochs (in blocks, with a barrier after
// each, when checkpointing is on), then serves peers until the engine
// ends the transport's serve phase. The engine does that only after every
// partition has signalled scanDone, and remote calls happen only while
// scanning, so nothing new can arrive after the final drain.
//
// Crash semantics differ by mode. Without Recovery a crashed worker keeps
// attending checkpoint barriers (the barrier arithmetic needs exactly W
// arrivals) but neither scans nor serves, and signals scanDone as it exits
// — its pairs are dropped. With Recovery a crashed (or fenced) incarnation
// exits immediately and silently: it does NOT signal scanDone and does NOT
// attend barriers — its replacement resumes from the cursor, arrives at
// the barriers the dead incarnation never reached, and signals scanDone
// when the partition's scan truly completes.
func (w *worker) run() {
	e := w.e
	recovery := w.opt.Recovery
scan:
	for ep := w.resumeEpoch; ep < w.opt.Epochs; ep++ {
		s0 := 0
		if ep == w.resumeEpoch {
			s0 = w.resumeSeq
		}
		for b := s0 / e.blockSize; b < e.numBlocks; b++ {
			if !w.crashed {
				lo := b * e.blockSize
				if lo < s0 {
					lo = s0
				}
				hi := b*e.blockSize + e.blockSize
				if hi > len(e.seqs) {
					hi = len(e.seqs)
				}
				for i := lo; i < hi; i++ {
					if recovery && (w.crashed || w.fenced.Load()) {
						return
					}
					w.cursor.Store(packCursor(ep, i))
					w.scanSequence(e.seqs[i])
					if !recovery && w.crashed {
						break
					}
				}
			}
			if recovery && (w.crashed || w.fenced.Load()) {
				return
			}
			if e.ckptOn {
				w.blockBarrier(ep*e.numBlocks + b)
				// aborted is written before the engine releases the
				// barrier, so this read is ordered after the write.
				if e.aborted {
					break scan
				}
			}
		}
	}
	if w.crashed {
		// Crash semantics (no Recovery): no final hot push (un-synced
		// deltas are lost), no serving, no state transition — the
		// heartbeat just stops.
		if !recovery {
			e.scanDone <- struct{}{}
		}
		return
	}
	w.cursor.Store(packCursor(w.opt.Epochs, 0))
	// Final replica push so the engine's fold-in sees this worker's work.
	e.hotSync(w)
	e.state[w.id].Store(stateDone)
	e.scanDone <- struct{}{}
	// Serve peers until the engine ends the serve phase, then drain what
	// is already queued. Inboxes are never closed (a late TCP delivery
	// must not panic); Done is the end-of-service signal.
	inbox := e.tr.Inbox(w.id)
	done := e.tr.Done()
	for {
		select {
		case req := <-inbox:
			w.serve(req)
		case <-done:
			for {
				select {
				case req := <-inbox:
					w.serve(req)
				default:
					return
				}
			}
		}
	}
}

// blockBarrier runs one arrive → quiesce → ack → release cycle. Between
// arrival and quiesce the worker keeps serving (slower peers may still
// need remote TNS to finish the block); between ack and release it runs
// nothing, giving the engine a write-free window to snapshot. Stale
// abandoned requests left in the queue are deliberately NOT served here —
// serving would mutate the model mid-snapshot — they wait for the next
// scan phase's opportunistic drain.
func (w *worker) blockBarrier(k int) {
	e := w.e
	bar := &e.barriers[k]
	if w.crashed {
		bar.arrive <- struct{}{}
		<-bar.quiesce
		bar.ack <- struct{}{}
		<-bar.release
		return
	}
	// Push replica deltas so the snapshot includes this worker's hot work.
	e.hotSync(w)
	e.state[w.id].Store(stateWaiting)
	bar.arrive <- struct{}{}
	inbox := e.tr.Inbox(w.id)
serving:
	for {
		select {
		case req := <-inbox:
			w.serve(req)
		case <-bar.quiesce:
			break serving
		}
	}
	bar.ack <- struct{}{}
	<-bar.release
	e.state[w.id].Store(stateScanning)
}

// scanSequence subsamples, then walks the windows. Every worker scans every
// sequence with its own RNG; a pair is trained only by its processor, so
// each pair is handled exactly once per scanning worker that owns it
// (Algorithm 1: "If v_i is not managed by Worker A, the pair is ignored").
func (w *worker) scanSequence(seq []int32) {
	e := w.e
	opt := w.opt
	// Scanning itself is liveness, even when this worker ends up training
	// no pair in the sequence (it may own nothing in this region).
	e.heartbeat[w.id].Add(1)
	kept := w.kept[:0]
	for _, t := range seq {
		if e.keep != nil && w.r.Float32() >= e.keep[t] {
			continue
		}
		kept = append(kept, t)
	}
	w.kept = kept
	done := e.scanTokens.Add(uint64(len(seq)))
	f := 1 - float32(float64(done)/float64(e.totalTokens*uint64(opt.Workers)))
	if f < opt.MinLRFrac {
		f = opt.MinLRFrac
	}
	w.lr = opt.LR * f
	if len(kept) < 2 {
		w.maybeServe()
		return
	}

	stride := opt.Stride
	if stride < 1 {
		stride = 1
	}
	steps := opt.Window / stride
	if steps < 1 {
		steps = 1
	}
	recovery := opt.Recovery
	for i := range kept {
		if w.crashed || (recovery && w.fenced.Load()) {
			return
		}
		// Serve pending peer requests between window centers so a remote
		// caller is never stalled behind this worker's whole scan.
		w.maybeServe()
		win := stride * (1 + w.r.Intn(steps))
		lo := i - win
		if opt.Directed || lo < 0 {
			lo = i
		}
		hi := i + win
		if hi >= len(kept) {
			hi = len(kept) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			vi, vj := kept[i], kept[j]
			if p := w.processor(vi, vj); p != w.id {
				// The pair belongs to someone else. If that someone is
				// dead, the pair is lost cluster-wide; exactly one
				// survivor accounts it (see countsDropsFor). Under
				// recovery the dead partition comes back and retrains
				// from its cursor, so nothing is lost and nothing is
				// counted dropped.
				if !recovery && e.anyDead.Load() && e.dead[p].Load() && w.countsDropsFor(p) {
					w.droppedPairs.Add(1)
				}
				continue
			}
			w.trainPair(vi, vj)
			if w.crashed || (recovery && w.fenced.Load()) {
				return
			}
		}
	}
	w.maybeServe()
}

// countsDropsFor designates this worker as the accountant for pairs lost
// to dead worker p: the first live worker after p in ring order. Every
// survivor scans every sequence, so without a designated counter each
// dropped pair would be counted once per survivor. Under cascading
// failures the count is approximate (a later death re-routes the
// designation mid-run); DroppedPairs is an observability figure, not an
// exact ledger.
func (w *worker) countsDropsFor(p int32) bool {
	e := w.e
	n := int32(w.opt.Workers)
	for i := int32(1); i < n; i++ {
		c := (p + i) % n
		if !e.dead[c].Load() {
			return c == w.id
		}
	}
	return false
}

// processor decides which worker trains the pair. Without replication it
// is always owner(v_i) (plain TNS). With ATNS replication, pairs whose
// target is hot are handled where the context lives, and hot-hot pairs are
// spread by hash — every such pair then needs no remote call at all.
func (w *worker) processor(vi, vj int32) int32 {
	e := w.e
	if e.hotIdx[vi] < 0 {
		return e.owner[vi]
	}
	if e.hotIdx[vj] < 0 {
		return e.owner[vj]
	}
	return int32((uint32(vi)*31 + uint32(vj)) % uint32(w.opt.Workers))
}

// trainPair runs one positive+negatives update for (v_i, v_j), or the
// degraded fallback when the remote owner is unreachable. Fault triggers
// fire here, on the pair counter, so a plan replays exactly under a seed.
func (w *worker) trainPair(vi, vj int32) {
	e := w.e
	if arm := w.crashArmAt.Load(); arm > 0 && w.pairs.Load() >= arm {
		w.crashed = true
		w.crashesFired.Add(1)
		// Disarm so the trigger is one-shot per incarnation; reinit re-arms
		// it (relative to the pair count at restart) while the spec's fire
		// budget lasts, and the persisted zero keeps a resumed run from
		// re-firing a crash that already happened.
		w.crashArmAt.Store(0)
		return
	}
	for w.stallIdx < len(w.stalls) && w.pairs.Load() >= w.stalls[w.stallIdx].AtPairs {
		d := w.stalls[w.stallIdx].For
		w.stallIdx++
		time.Sleep(d)
	}
	e.heartbeat[w.id].Add(1)
	w.pairs.Add(1)
	if w.replacement {
		w.recoveredPairs.Add(1)
	}
	recovery := w.opt.Recovery
	vin := e.rowIn(w, vi)
	local := e.hotIdx[vj] >= 0 || e.owner[vj] == w.id
	if local {
		w.localPairs.Add(1)
		grad := w.tns(vin, vj, w.lr, w.r)
		vecmath.Add(grad, vin)
	} else if dst := e.owner[vj]; !recovery && e.isDead(dst) {
		// Known-dead owner: skip the network entirely and degrade.
		w.degraded.Add(1)
		w.degradePair(vin, vj)
	} else if grad, ok := w.remoteCall(dst, vin, vj); ok {
		w.remotePairs.Add(1)
		vecmath.Add(grad, vin)
	} else if recovery {
		// Under recovery remoteCall fails only because THIS incarnation was
		// fenced mid-call. Un-count the pair: the replacement resumes from
		// the cursor and retrains it, so counting it here would double it.
		w.pairs.Add(^uint64(0))
		if w.replacement {
			w.recoveredPairs.Add(^uint64(0))
		}
		return
	} else {
		w.degraded.Add(1)
		w.degradePair(vin, vj)
	}
	w.sincSync++
	if w.sincSync >= w.opt.SyncEvery && len(e.hotIDs) > 0 {
		w.sincSync = 0
		e.hotSync(w)
	}
}

// tns is Algorithm 1's TNS function run locally: positive update on
// out(v_j), negatives from the local noise distribution, returning the
// gradient for the input vector. The returned slice is w.grad (reused).
// A worker with no local noise distribution (owns nothing) trains the
// positive term only. r is the negative-sampling stream: w.r for the
// worker's own pairs, w.srng for served requests (see the field docs).
func (w *worker) tns(vin []float32, ctx int32, lr float32, r *rng.RNG) []float32 {
	e := w.e
	grad := w.grad
	vecmath.Zero(grad)

	out := e.rowOut(w, ctx)
	dot := vecmath.Dot(vin, out)
	if dot != dot {
		// A non-finite row slipped through (diverged pair); skip rather
		// than poison the rest of the model.
		return grad
	}
	g := (1 - vecmath.Sigmoid(dot)) * lr
	vecmath.Axpy(g, out, grad)
	vecmath.Axpy(g, vin, out)

	if w.noise == nil {
		return grad
	}
	for n := 0; n < w.opt.Negatives; n++ {
		t := w.noiseTokens[w.noise.Sample(r)]
		if t == ctx {
			continue
		}
		// Negatives come from the local partition ∪ Q, so the row is
		// always locally writable.
		out := e.rowOut(w, t)
		dot := vecmath.Dot(vin, out)
		if dot != dot {
			continue
		}
		g := (0 - vecmath.Sigmoid(dot)) * lr
		vecmath.Axpy(g, out, grad)
		vecmath.Axpy(g, vin, out)
	}
	return grad
}

// degradePair is the graceful-degradation fallback when out(v_j) is
// unreachable (owner dead, or retries exhausted): apply a single
// negative-sample update from the local noise distribution. The positive
// term needs the failed peer's row, so only the contrastive half can run —
// and deliberately at 1 negative, not the full budget: repulsion without
// its positive counterweight accumulates, and during a long outage the
// full budget visibly distorts the input vectors it touches (the degraded
// pairs concentrate on the dead worker's partition). One draw keeps the
// vectors moving without letting the imbalance dominate. Negatives come
// from frng: the fault path must not consume the deterministic training
// stream.
func (w *worker) degradePair(vin []float32, ctx int32) {
	if w.noise == nil {
		return
	}
	e := w.e
	grad := w.grad
	vecmath.Zero(grad)
	t := w.noiseTokens[w.noise.Sample(w.frng)]
	if t == ctx {
		return
	}
	out := e.rowOut(w, t)
	dot := vecmath.Dot(vin, out)
	if dot != dot {
		return
	}
	g := (0 - vecmath.Sigmoid(dot)) * w.lr
	vecmath.Axpy(g, out, grad)
	vecmath.Axpy(g, vin, out)
	vecmath.Add(grad, vin)
}

// remoteCall ships in(v_i) to the owner of v_j and waits for the gradient,
// serving incoming requests while blocked (deadlock freedom; the transport
// calls back into w.serve). Each attempt is one Transport.Call bounded by
// RemoteTimeout; retries wait out a jittered exponential backoff (serving
// all the while). Without recovery: after 1+RemoteRetries attempts, or as
// soon as the destination is declared dead, it gives up and the caller
// degrades. With recovery: a dead owner is guaranteed to come back
// (resurrection or takeover), so death is not an abort signal and the
// attempt budget is unbounded — the only way out besides success is this
// incarnation itself being fenced. Transports use a fresh request (or
// request id) per attempt, so a late server answer to an abandoned
// attempt never blocks the server and never corrupts a newer attempt.
//
// BytesSent stays the MODEL's payload accounting — vector + ids per
// attempted request, gradient per success — independent of what any
// transport serializes; Stats.WireBytesSent carries the measured figure,
// and the CostModel honesty test keeps the two within tolerance.
func (w *worker) remoteCall(dst int32, vin []float32, ctx int32) ([]float32, bool) {
	e := w.e
	recovery := w.opt.Recovery
	timeout := w.opt.remoteTimeout()
	attempts := 1 + w.opt.remoteRetries()
	if attempts < 1 {
		attempts = 1
	}
	deadc := e.deadCh[dst]
	if recovery {
		deadc = nil // a nil channel never fires in a select
	}
	for a := 0; recovery || a < attempts; a++ {
		if a > 0 {
			w.retries.Add(1)
			if !w.backoffWait(a) {
				return nil, false // fenced while backing off
			}
		}
		if recovery {
			if w.fenced.Load() {
				return nil, false
			}
		} else if e.isDead(dst) {
			return nil, false
		}
		w.bytesSent.Add(uint64(len(vin))*4 + 8)
		grad, ok := e.tr.Call(w.id, dst, vin, ctx, w.lr, timeout, deadc, w.serve)
		if ok {
			w.bytesSent.Add(uint64(len(grad)) * 4)
			return grad, true
		}
		if !recovery && e.isDead(dst) {
			return nil, false // deadc fired mid-call: give up immediately
		}
		// Deadline fired: the worker is alive and deciding, which counts
		// as liveness for the watchdog.
		e.heartbeat[w.id].Add(1)
	}
	return nil, false
}

// backoffWait sleeps the jittered exponential backoff before retry
// attempt a (a >= 1), serving this worker's own queue while it waits so
// backoff can never deadlock the request mesh. Jitter comes from frng so
// the training stream is untouched. Returns false if the incarnation was
// fenced while waiting (recovery only).
func (w *worker) backoffWait(a int) bool {
	recovery := w.opt.Recovery
	base := w.opt.retryBackoff()
	if base <= 0 {
		return !(recovery && w.fenced.Load())
	}
	shift := a - 1
	if shift > 6 {
		shift = 6 // bound the exponent: 64x base is the ceiling
	}
	d := time.Duration(float64(base<<shift) * (0.5 + w.frng.Float64()))
	timer := time.NewTimer(d)
	defer timer.Stop()
	// Backing off is deliberate waiting, not death: beat the heartbeat at
	// the monitor's own cadence so a long (64x) backoff against a dead peer
	// never gets THIS worker declared dead too.
	beat := time.NewTicker(w.opt.heartbeatEvery())
	defer beat.Stop()
	inbox := w.e.tr.Inbox(w.id)
	for {
		if recovery && w.fenced.Load() {
			return false
		}
		select {
		case in := <-inbox:
			w.serve(in)
		case <-beat.C:
			w.e.heartbeat[w.id].Add(1)
		case <-timer.C:
			return true
		}
	}
}

// serve executes a TNS request against this worker's rows.
func (w *worker) serve(req *tnsReq) {
	if w.opt.SlowWorker == int(w.id) && w.opt.SlowWorkerDelay > 0 {
		time.Sleep(w.opt.SlowWorkerDelay)
	}
	w.e.heartbeat[w.id].Add(1)
	w.servedPairs.Add(1)
	grad := w.tns(req.vec, req.ctx, req.lr, w.srng)
	req.reply <- append([]float32(nil), grad...)
}

// maybeServe opportunistically drains the inbox between sequences so a
// worker that finished its share early still serves peers promptly.
func (w *worker) maybeServe() {
	inbox := w.e.tr.Inbox(w.id)
	for {
		select {
		case req := <-inbox:
			w.serve(req)
		default:
			return
		}
	}
}
