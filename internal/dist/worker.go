package dist

import (
	"time"

	"sisg/internal/alias"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

// worker is one simulated machine: it owns the embedding rows of its
// partition, keeps replicas of the hot set, and runs two logical roles in
// one goroutine — scanning its view of the corpus (Algorithm 1's outer
// loop) and serving TNS requests from peers (the function TNS(v_i, v_j)).
// While blocked on a remote call it keeps serving its own queue, which
// makes the request mesh deadlock-free.
type worker struct {
	e   *engine
	id  int32
	r   *rng.RNG
	opt *Options

	noise       *alias.Table
	noiseTokens []int32

	// Hot replicas and the base values used for delta synchronization.
	hotIn, hotOut         [][]float32
	hotInBase, hotOutBase [][]float32

	grad []float32
	kept []int32

	lr float32

	// Counters (merged by the engine after the run).
	pairs, localPairs, remotePairs uint64
	servedPairs                    uint64
	bytesSent                      uint64
	hotSyncs                       uint64
	sincSync                       int
}

func newWorker(e *engine, id int, r *rng.RNG) (*worker, error) {
	w := &worker{
		e: e, id: int32(id), r: r, opt: &e.opt,
		grad: make([]float32, e.opt.Dim),
		kept: make([]int32, 0, 128),
		lr:   e.opt.LR,
	}
	noise, tokens, err := e.noiseFor(id)
	if err != nil {
		return nil, err
	}
	w.noise, w.noiseTokens = noise, tokens

	w.hotIn = make([][]float32, len(e.hotIDs))
	w.hotOut = make([][]float32, len(e.hotIDs))
	w.hotInBase = make([][]float32, len(e.hotIDs))
	w.hotOutBase = make([][]float32, len(e.hotIDs))
	for i := range e.hotIDs {
		w.hotIn[i] = append([]float32(nil), e.hotIn[i]...)
		w.hotOut[i] = append([]float32(nil), e.hotOut[i]...)
		w.hotInBase[i] = append([]float32(nil), e.hotIn[i]...)
		w.hotOutBase[i] = append([]float32(nil), e.hotOut[i]...)
	}
	return w, nil
}

// run scans the corpus for opt.Epochs, then serves until every worker is
// done. Because remote calls are synchronous, once all workers have passed
// the done barrier no requests can be in flight.
func (w *worker) run() {
	e := w.e
	for ep := 0; ep < w.opt.Epochs; ep++ {
		for _, seq := range e.seqs {
			w.scanSequence(seq)
		}
	}
	// Final replica push so the engine's fold-in sees this worker's work.
	e.hotSync(w)
	e.doneWorkers.Add(1)
	for {
		select {
		case req := <-e.reqCh[w.id]:
			w.serve(req)
		default:
			if e.doneWorkers.Load() == int32(w.opt.Workers) {
				// Drain anything that raced in, then exit.
				for {
					select {
					case req := <-e.reqCh[w.id]:
						w.serve(req)
					default:
						return
					}
				}
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// scanSequence subsamples, then walks the windows. Every worker scans every
// sequence with its own RNG; a pair is trained only by its processor, so
// each pair is handled exactly once per scanning worker that owns it
// (Algorithm 1: "If v_i is not managed by Worker A, the pair is ignored").
func (w *worker) scanSequence(seq []int32) {
	e := w.e
	opt := w.opt
	kept := w.kept[:0]
	for _, t := range seq {
		if e.keep != nil && w.r.Float32() >= e.keep[t] {
			continue
		}
		kept = append(kept, t)
	}
	w.kept = kept
	done := e.scanTokens.Add(uint64(len(seq)))
	f := 1 - float32(float64(done)/float64(e.totalTokens*uint64(opt.Workers)))
	if f < opt.MinLRFrac {
		f = opt.MinLRFrac
	}
	w.lr = opt.LR * f
	if len(kept) < 2 {
		w.maybeServe()
		return
	}

	stride := opt.Stride
	if stride < 1 {
		stride = 1
	}
	steps := opt.Window / stride
	if steps < 1 {
		steps = 1
	}
	for i := range kept {
		// Serve pending peer requests between window centers so a remote
		// caller is never stalled behind this worker's whole scan.
		w.maybeServe()
		win := stride * (1 + w.r.Intn(steps))
		lo := i - win
		if opt.Directed || lo < 0 {
			lo = i
		}
		hi := i + win
		if hi >= len(kept) {
			hi = len(kept) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			vi, vj := kept[i], kept[j]
			if w.processor(vi, vj) != w.id {
				continue
			}
			w.trainPair(vi, vj)
		}
	}
	w.maybeServe()
}

// processor decides which worker trains the pair. Without replication it
// is always owner(v_i) (plain TNS). With ATNS replication, pairs whose
// target is hot are handled where the context lives, and hot-hot pairs are
// spread by hash — every such pair then needs no remote call at all.
func (w *worker) processor(vi, vj int32) int32 {
	e := w.e
	if e.hotIdx[vi] < 0 {
		return e.owner[vi]
	}
	if e.hotIdx[vj] < 0 {
		return e.owner[vj]
	}
	return int32((uint32(vi)*31 + uint32(vj)) % uint32(w.opt.Workers))
}

// trainPair runs one positive+negatives update for (v_i, v_j).
func (w *worker) trainPair(vi, vj int32) {
	e := w.e
	w.pairs++
	vin := e.rowIn(w, vi)
	local := e.hotIdx[vj] >= 0 || e.owner[vj] == w.id
	if local {
		w.localPairs++
		grad := w.tns(vin, vj, w.lr)
		vecmath.Add(grad, vin)
	} else {
		w.remotePairs++
		grad := w.remoteCall(e.owner[vj], vin, vj)
		vecmath.Add(grad, vin)
	}
	w.sincSync++
	if w.sincSync >= w.opt.SyncEvery && len(e.hotIDs) > 0 {
		w.sincSync = 0
		e.hotSync(w)
	}
}

// tns is Algorithm 1's TNS function run locally: positive update on
// out(v_j), negatives from the local noise distribution, returning the
// gradient for the input vector. The returned slice is w.grad (reused).
func (w *worker) tns(vin []float32, ctx int32, lr float32) []float32 {
	e := w.e
	grad := w.grad
	vecmath.Zero(grad)

	out := e.rowOut(w, ctx)
	dot := vecmath.Dot(vin, out)
	if dot != dot {
		// A non-finite row slipped through (diverged pair); skip rather
		// than poison the rest of the model.
		return grad
	}
	g := (1 - vecmath.Sigmoid(dot)) * lr
	vecmath.Axpy(g, out, grad)
	vecmath.Axpy(g, vin, out)

	for n := 0; n < w.opt.Negatives; n++ {
		t := w.noiseTokens[w.noise.Sample(w.r)]
		if t == ctx {
			continue
		}
		// Negatives come from the local partition ∪ Q, so the row is
		// always locally writable.
		out := e.rowOut(w, t)
		dot := vecmath.Dot(vin, out)
		if dot != dot {
			continue
		}
		g := (0 - vecmath.Sigmoid(dot)) * lr
		vecmath.Axpy(g, out, grad)
		vecmath.Axpy(g, vin, out)
	}
	return grad
}

// remoteCall ships in(v_i) to the owner of v_j and waits for the gradient,
// serving incoming requests while blocked (deadlock freedom).
func (w *worker) remoteCall(dst int32, vin []float32, ctx int32) []float32 {
	e := w.e
	req := &tnsReq{
		vec:   append([]float32(nil), vin...),
		ctx:   ctx,
		lr:    w.lr,
		reply: make(chan []float32, 1),
	}
	w.bytesSent += uint64(len(vin))*4 + 8
	for {
		select {
		case e.reqCh[dst] <- req:
			goto sent
		case in := <-e.reqCh[w.id]:
			w.serve(in)
		}
	}
sent:
	for {
		select {
		case grad := <-req.reply:
			w.bytesSent += uint64(len(grad)) * 4
			return grad
		case in := <-e.reqCh[w.id]:
			w.serve(in)
		}
	}
}

// serve executes a TNS request against this worker's rows.
func (w *worker) serve(req *tnsReq) {
	if w.opt.SlowWorker == int(w.id) && w.opt.SlowWorkerDelay > 0 {
		time.Sleep(w.opt.SlowWorkerDelay)
	}
	w.servedPairs++
	grad := w.tns(req.vec, req.ctx, req.lr)
	req.reply <- append([]float32(nil), grad...)
}

// maybeServe opportunistically drains the request queue between sequences
// so a worker that finished its share early still serves peers promptly.
func (w *worker) maybeServe() {
	for {
		select {
		case req := <-w.e.reqCh[w.id]:
			w.serve(req)
		default:
			return
		}
	}
}
