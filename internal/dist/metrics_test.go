package dist

import (
	"testing"

	"sisg/internal/metrics"
	"sisg/internal/sgns"
)

// The registry gauges are live views of the same worker counters Stats is
// built from, so after a faulty run (timeouts → retries → degrades, a
// crashed worker → drops) every mirrored gauge must match Stats exactly.
func TestRegistryMirrorsStats(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := faultOptions(4)
	opt.Epochs = 2
	opt.Faults.CrashWorker = 1
	opt.Faults.CrashAtPairs = 30000
	// The dead worker guarantees retries and degrades (every call to it
	// times out, is re-sent once, then degrades); a small drop rate adds
	// pre-crash retries without the whole run waiting out timeouts.
	opt.Faults.DropFraction = 0.05
	reg := metrics.NewRegistry()
	opt.Metrics = reg

	var progressReports int
	opt.Progress = func(p sgns.Progress) { progressReports++ }

	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}

	read := func(name string) float64 {
		t.Helper()
		v, ok := reg.Value(name)
		if !ok {
			t.Fatalf("gauge %s not registered", name)
		}
		return v
	}
	for _, g := range []struct {
		name string
		want uint64
	}{
		{"train_pairs", st.Pairs},
		{"train_retries", st.Retries},
		{"train_degraded", st.Degraded},
		{"train_dropped_pairs", st.DroppedPairs},
		{"train_dead_workers", uint64(len(st.DeadWorkers))},
	} {
		if got := read(g.name); got != float64(g.want) {
			t.Errorf("%s = %v, want %d (Stats)", g.name, got, g.want)
		}
	}
	if got := read("train_workers"); got != 4 {
		t.Errorf("train_workers = %v, want 4", got)
	}

	// The fault plan guarantees the interesting counters actually moved;
	// equality with an all-zero Stats would prove nothing.
	if st.Retries == 0 || st.Degraded == 0 {
		t.Errorf("fault plan produced no retries/degrades (%d/%d); test is vacuous", st.Retries, st.Degraded)
	}
	if len(st.DeadWorkers) != 1 {
		t.Errorf("DeadWorkers = %v, want exactly the crashed worker", st.DeadWorkers)
	}
	if st.DroppedPairs == 0 {
		t.Errorf("crashed worker dropped no pairs")
	}

	// The final Done snapshot is delivered even when reporting is slower
	// than the run.
	if progressReports == 0 {
		t.Errorf("progress sink never called (final Done snapshot missing)")
	}
}

// The recovery counters mirror into the registry the same way: after a
// crash-and-resurrect run the train_restarts / train_takeovers /
// train_recovered_pairs gauges must match Stats, and train_dead_workers
// reads the cumulative ledger (a resurrected worker stays on it).
func TestRegistryMirrorsRecoveryStats(t *testing.T) {
	ds, seqs, part := tinySetup(t, 4)
	opt := recoveryOptions(4)
	opt.Faults.CrashWorker = 1
	opt.Faults.CrashAtPairs = 3000
	reg := metrics.NewRegistry()
	opt.Metrics = reg

	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	read := func(name string) float64 {
		t.Helper()
		v, ok := reg.Value(name)
		if !ok {
			t.Fatalf("gauge %s not registered", name)
		}
		return v
	}
	for _, g := range []struct {
		name string
		want uint64
	}{
		{"train_restarts", st.Restarts},
		{"train_takeovers", st.Takeovers},
		{"train_recovered_pairs", st.RecoveredPairs},
		{"train_dead_workers", uint64(len(st.DeadWorkers))},
		{"train_dropped_pairs", 0},
		{"train_degraded", 0},
	} {
		if got := read(g.name); got != float64(g.want) {
			t.Errorf("%s = %v, want %d (Stats)", g.name, got, g.want)
		}
	}
	if st.Restarts != 1 || st.RecoveredPairs == 0 || len(st.DeadWorkers) != 1 {
		t.Errorf("recovery did not move the counters under test: %+v", st)
	}
}

// A nil registry keeps the run observer-free: no gauges, no progress
// goroutine, identical results.
func TestNilRegistryIsInert(t *testing.T) {
	ds, seqs, part := tinySetup(t, 2)
	opt := tinyOptions(2)
	if _, st, err := Train(ds.Dict.Dict, seqs, part, opt); err != nil || st.Pairs == 0 {
		t.Fatalf("plain run: %v, %d pairs", err, st.Pairs)
	}
}
