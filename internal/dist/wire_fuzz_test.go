package dist

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"
)

// byteConn serves a fixed byte stream through the net.Conn interface and
// swallows everything else. Reads return io.EOF once the stream drains,
// so readFrame's deadlines never actually wait — essential for a fuzz
// target that must execute thousands of malformed streams per second
// (net.Pipe would park each truncated frame on a real deadline).
type byteConn struct{ r *bytes.Reader }

func (c *byteConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *byteConn) Close() error                     { return nil }
func (c *byteConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *byteConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *byteConn) SetDeadline(time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(time.Time) error { return nil }

// FuzzWireDecode throws arbitrary byte streams at the TCP framing layer:
// readFrame plus both payload decoders. Malformed length prefixes,
// truncated frames and unknown kinds must come back as errors — never a
// panic, and never a payload that disagrees with its prefix. On frames
// that do decode, encode∘decode must reproduce the wire bytes exactly
// (the bit-for-bit round-trip the chan-vs-tcp equivalence tests rely on).
func FuzzWireDecode(f *testing.F) {
	f.Add(encodeReq(7, []float32{1, -2.5, float32(math.Inf(1))}, 42, 0.025))
	f.Add(encodeReq(0, nil, -1, 0))
	f.Add(encodeResp(7, []float32{0.5, float32(math.NaN())}))
	f.Add(encodeResp(1, nil))
	f.Add([]byte{})                             // no header
	f.Add([]byte{9, 0, 0})                      // truncated header
	f.Add([]byte{0, 0, 0, 0})                   // zero-size frame
	f.Add([]byte{255, 255, 255, 255, frameReq}) // 4GB length prefix, 1 byte behind it
	huge := make([]byte, 4, 4+64)
	binary.LittleEndian.PutUint32(huge, maxFramePayload)
	f.Add(append(huge, bytes.Repeat([]byte{1}, 60)...)) // max-size prefix, truncated body
	f.Add([]byte{5, 0, 0, 0, 99, 1, 2, 3, 4})           // unknown kind 99
	bad := encodeReq(3, []float32{1, 2}, 0, 1)
	bad[4] = frameResp // reply kind wearing a request's length
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(&byteConn{bytes.NewReader(data)})
		if err != nil {
			return // rejected stream: fine, as long as nothing panicked
		}
		if len(payload) == 0 || len(payload) > maxFramePayload {
			t.Fatalf("readFrame returned %d bytes, outside (0, %d]", len(payload), maxFramePayload)
		}
		if want := binary.LittleEndian.Uint32(data); uint32(len(payload)) != want {
			t.Fatalf("payload %d bytes, prefix said %d", len(payload), want)
		}

		id, vec, ctx, lr, reqErr := decodeReq(payload)
		if payload[0] != frameReq && reqErr == nil {
			t.Fatalf("decodeReq accepted kind %d", payload[0])
		}
		if reqErr == nil {
			if again := encodeReq(id, vec, ctx, lr); !bytes.Equal(again[4:], payload) {
				t.Fatalf("request round trip changed the frame:\nin:  %x\nout: %x", payload, again[4:])
			}
		}

		rid, grad, respErr := decodeResp(payload)
		if payload[0] != frameResp && respErr == nil {
			t.Fatalf("decodeResp accepted kind %d", payload[0])
		}
		if respErr == nil {
			if again := encodeResp(rid, grad); !bytes.Equal(again[4:], payload) {
				t.Fatalf("reply round trip changed the frame:\nin:  %x\nout: %x", payload, again[4:])
			}
		}
	})
}
