package dist

import "testing"

// CostModel honesty: Stats.BytesSent models a remote call's payload as
// vector + ids out, gradient back. The TCP transport measures what
// actually crosses the wire — the same payload plus frame overhead
// (length prefix, kind, request id: 26 bytes per round trip at any dim).
// The model is honest if measured/modeled stays near 1 with only that
// bounded framing overhead on top: at dim=32 the exact fault-free ratio
// is 290/264 ≈ 1.10, and retries move both sides together. A model that
// drifted from the wire (say a forgotten payload term) would leave this
// band immediately.
func TestCostModelBytesMatchTCPWire(t *testing.T) {
	ds, seqs, part := tinySetup(t, 3)
	opt := tinyOptions(3)
	opt.Transport = TransportTCP
	opt.HotReplication = false // hot syncs are modeled but never cross the wire
	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemotePairs == 0 {
		t.Fatal("scenario trained no remote pairs; nothing to validate")
	}
	if st.Degraded != 0 {
		t.Fatalf("fault-free run degraded %d pairs", st.Degraded)
	}
	modeled := float64(st.BytesSent) / float64(st.RemotePairs)
	measured := float64(st.WireBytesSent) / float64(st.RemotePairs)
	dim := float64(opt.Dim)
	if want := dim*4 + 8 + dim*4; modeled < want {
		t.Fatalf("modeled %.1f B/remote pair below the minimum payload %.1f", modeled, want)
	}
	ratio := measured / modeled
	if ratio < 1.0 || ratio > 1.35 {
		t.Fatalf("measured %.1f B vs modeled %.1f B per remote pair (ratio %.3f, want [1.00, 1.35])",
			measured, modeled, ratio)
	}
}
