package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"time"

	"sisg/internal/rng"
)

// transportOptions returns training options tuned for transport tests:
// generous timeouts (no spurious degrades under CI load) over the named
// transport.
func transportOptions(workers int, transport string) Options {
	opt := tinyOptions(workers)
	opt.Transport = transport
	return opt
}

// The deterministic-stats contract must be transport-independent: the
// same seed and options train the same pairs with the same accounting
// whether requests ride channels or loopback TCP. (Multi-worker embedding
// VALUES are not run-to-run deterministic on either transport — serve
// interleaving and the shared LR counter see real scheduling — so the
// property is asserted at the level that genuinely holds; see DESIGN.md
// §5h. Bit-identical embeddings are asserted below for Workers=1, where
// no interleaving exists.)
func TestTransportStatsEquivalence(t *testing.T) {
	for _, workers := range []int{2, 4} {
		for _, seed := range []uint64{1, 7} {
			t.Run(fmt.Sprintf("w%d_seed%d", workers, seed), func(t *testing.T) {
				ds, seqs, part := tinySetup(t, workers)
				var got [2][]uint64
				for i, tr := range []string{TransportChan, TransportTCP} {
					opt := transportOptions(workers, tr)
					opt.Seed = seed
					_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
					if err != nil {
						t.Fatal(err)
					}
					if st.Degraded != 0 || st.DroppedPairs != 0 {
						t.Fatalf("%s: fault-free run degraded=%d dropped=%d", tr, st.Degraded, st.DroppedPairs)
					}
					if tr == TransportTCP && st.WireBytesSent == 0 {
						t.Fatal("tcp run measured zero wire bytes")
					}
					got[i] = deterministicStats(t, st)
				}
				if fmt.Sprint(got[0]) != fmt.Sprint(got[1]) {
					t.Fatalf("stats diverge across transports:\nchan: %v\ntcp:  %v", got[0], got[1])
				}
			})
		}
	}
}

// With a single worker there are no remote calls, no serve interleaving
// and no scheduling freedom at all: the embeddings must be bit-identical
// across transports (and, implicitly, across runs).
func TestTransportSingleWorkerBitIdentical(t *testing.T) {
	ds, seqs, part := tinySetup(t, 1)
	var models [2][]byte
	for i, tr := range []string{TransportChan, TransportTCP} {
		m, _, err := Train(ds.Dict.Dict, seqs, part, transportOptions(1, tr))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 0, 8*len(m.In.Data()))
		for _, v := range m.In.Data() {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		for _, v := range m.Out.Data() {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		models[i] = buf
	}
	if !bytes.Equal(models[0], models[1]) {
		t.Fatal("single-worker embeddings differ between chan and tcp transports")
	}
}

// Repeated seeded TCP runs must replay the deterministic stats exactly —
// the same contract the chaos harness enforces, asserted here without
// faults so a regression is attributable to the transport alone.
func TestTCPStatsDeterministic(t *testing.T) {
	ds, seqs, part := tinySetup(t, 3)
	var prev []uint64
	for run := 0; run < 2; run++ {
		_, st, err := Train(ds.Dict.Dict, seqs, part, transportOptions(3, TransportTCP))
		if err != nil {
			t.Fatal(err)
		}
		cur := deterministicStats(t, st)
		if prev != nil && fmt.Sprint(prev) != fmt.Sprint(cur) {
			t.Fatalf("same-seed tcp runs diverge:\nrun0: %v\nrun1: %v", prev, cur)
		}
		prev = cur
	}
}

// drainInbox serves a transport's inbox with a deterministic function of
// the request, standing in for a worker's serve loop.
func drainInbox(tr Transport, id int32, f func(*tnsReq) []float32) chan struct{} {
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		inbox := tr.Inbox(id)
		done := tr.Done()
		for {
			select {
			case req := <-inbox:
				req.reply <- f(req)
			case <-done:
				for {
					select {
					case req := <-inbox:
						req.reply <- f(req)
					default:
						return
					}
				}
			}
		}
	}()
	return stop
}

// The wire must not alter payloads: a seeded workload of vectors pushed
// through Call comes back bit-identical on both transports, including
// every float32's exact bits (negative zero, denormals, the lot).
func TestTransportPayloadBitIdentity(t *testing.T) {
	const dim, calls = 33, 200
	mk := func(name string) Transport {
		switch name {
		case TransportChan:
			return newChanTransport(2)
		default:
			tr, err := newTCPTransport(2, 42)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}
	}
	echo := func(req *tnsReq) []float32 {
		out := make([]float32, 0, len(req.vec)+2)
		out = append(out, req.lr, float32(req.ctx))
		return append(out, req.vec...)
	}
	var replies [2][]byte
	for i, name := range []string{TransportChan, TransportTCP} {
		tr := mk(name)
		stopped := drainInbox(tr, 1, echo)
		r := rng.New(99)
		var buf []byte
		for c := 0; c < calls; c++ {
			vec := make([]float32, dim)
			for j := range vec {
				vec[j] = math.Float32frombits(r.Uint32())
				if vec[j] != vec[j] {
					vec[j] = 0 // NaN payloads cannot be compared for equality downstream
				}
			}
			ctx := int32(r.Uint32())
			lr := r.Float32()
			grad, ok := tr.Call(0, 1, vec, ctx, lr, 5*time.Second, nil, func(*tnsReq) {})
			if !ok {
				t.Fatalf("%s: call %d failed", name, c)
			}
			for _, v := range grad {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
			}
		}
		tr.CloseInboxes()
		<-stopped
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		replies[i] = buf
	}
	if !bytes.Equal(replies[0], replies[1]) {
		t.Fatal("reply payloads differ between chan and tcp transports")
	}
}

// A severed connection heals by reconnect: the link is cut mid-run, the
// transport redials, no worker is ever declared dead, and the recovery
// invariants hold. This is the reconnect-vs-heartbeat property: healing
// must finish without tripping dead-worker detection.
func TestTCPSeverReconnect(t *testing.T) {
	ds, seqs, part := tinySetup(t, 3)
	opt := recoveryOptions(3)
	opt.Transport = TransportTCP
	opt.Faults.Wire.Severs = []SeverSpec{
		{From: 0, To: 1, AtSends: 20},
		{From: 2, To: 1, AtSends: 35},
		{From: 0, To: 1, AtSends: 60},
	}
	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryInvariants(t, st)
	if len(st.DeadWorkers) != 0 {
		t.Fatalf("severed links got workers declared dead: %v", st.DeadWorkers)
	}
	if st.Reconnects == 0 {
		t.Fatal("no reconnects recorded; severs did not exercise the redial path")
	}
}

// A one-way partition window blackholes requests; under recovery the
// requester retries until the window passes, so nothing is dropped or
// degraded and nobody dies.
func TestTCPOneWayPartitionHeals(t *testing.T) {
	ds, seqs, part := tinySetup(t, 3)
	opt := recoveryOptions(3)
	opt.Transport = TransportTCP
	opt.Faults.Wire.Partitions = []PartitionSpec{
		{From: 0, To: 1, AtSends: 10, ForSends: 15},
		{From: 1, To: 2, AtSends: 25, ForSends: 10},
	}
	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryInvariants(t, st)
	if len(st.DeadWorkers) != 0 {
		t.Fatalf("partition windows got workers declared dead: %v", st.DeadWorkers)
	}
	if st.Retries == 0 {
		t.Fatal("no retries recorded; the partition windows blackholed nothing")
	}
}

// Duplicate deliveries must be invisible to the accounting: the extra
// serve's reply is discarded, and pair accounting still balances.
func TestTransportDuplicateDelivery(t *testing.T) {
	for _, tr := range []string{TransportChan, TransportTCP} {
		t.Run(tr, func(t *testing.T) {
			ds, seqs, part := tinySetup(t, 3)
			opt := transportOptions(3, tr)
			opt.Faults.Wire.DupFraction = 1 // every request delivered twice
			_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
			if err != nil {
				t.Fatal(err)
			}
			if st.Degraded != 0 || st.DroppedPairs != 0 {
				t.Fatalf("duplicates caused degradation: %+v", st)
			}
			if st.Pairs != st.LocalPairs+st.RemotePairs {
				t.Fatalf("pair accounting broken under duplication: %+v", st)
			}
		})
	}
}

// Fixed per-request delays (a slow link) must never break accounting:
// with recovery every delayed request eventually lands.
func TestTCPSlowLinkDelays(t *testing.T) {
	ds, seqs, part := tinySetup(t, 3)
	opt := recoveryOptions(3)
	opt.Transport = TransportTCP
	opt.Faults.DropFraction = 0.02
	opt.Faults.Wire.DelayFraction = 0.05
	opt.Faults.Wire.Delay = 3 * time.Millisecond
	_, st, err := Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryInvariants(t, st)
	if len(st.DeadWorkers) != 0 {
		t.Fatalf("slow link got workers declared dead: %v", st.DeadWorkers)
	}
}

func TestWireFaultsValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"delay fraction out of range", FaultPlan{Wire: WireFaults{DelayFraction: 1.5, Delay: time.Millisecond}}},
		{"delay fraction without delay", FaultPlan{Wire: WireFaults{DelayFraction: 0.5}}},
		{"dup fraction out of range", FaultPlan{Wire: WireFaults{DupFraction: -0.1}}},
		{"sever self", FaultPlan{Wire: WireFaults{Severs: []SeverSpec{{From: 1, To: 1, AtSends: 5}}}}},
		{"sever at zero", FaultPlan{Wire: WireFaults{Severs: []SeverSpec{{From: 0, To: 1}}}}},
		{"partition self", FaultPlan{Wire: WireFaults{Partitions: []PartitionSpec{{From: 2, To: 2, AtSends: 1}}}}},
		{"partition at zero", FaultPlan{Wire: WireFaults{Partitions: []PartitionSpec{{From: 0, To: 1}}}}},
		{"negative sever worker", FaultPlan{Wire: WireFaults{Severs: []SeverSpec{{From: -1, To: 1, AtSends: 1}}}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid plan", c.name)
		}
	}
	ok := FaultPlan{
		DropFraction: 0.1,
		Wire: WireFaults{
			DelayFraction: 0.2, Delay: time.Millisecond, DupFraction: 0.3,
			Severs:     []SeverSpec{{From: 0, To: 1, AtSends: 10}},
			Partitions: []PartitionSpec{{From: 1, To: 0, AtSends: 5, ForSends: 3}},
		},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// An unknown transport name must be rejected before any goroutine spawns.
func TestUnknownTransportRejected(t *testing.T) {
	ds, seqs, part := tinySetup(t, 2)
	opt := transportOptions(2, "carrier-pigeon")
	if _, _, err := Train(ds.Dict.Dict, seqs, part, opt); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
