package dist

import (
	"sisg/internal/metrics"
	"sisg/internal/sgns"
)

// Observability for the distributed engine: a live Progress feed (shared
// sink type with the local sgns trainer) and a registry mirror exposing
// the run's counters — including PR 1's fault-tolerance accounting — as
// pull-based gauges. Both sample the workers' atomic counters; neither
// touches the training hot path.

// liveStats reads the cluster-wide cumulative counters mid-run.
func (e *engine) liveStats() (pairs, retries, degraded, dropped uint64) {
	for _, wk := range e.workers {
		pairs += wk.pairs.Load()
		retries += wk.retries.Load()
		degraded += wk.degraded.Load()
		dropped += wk.droppedPairs.Load()
	}
	return
}

// liveDeadWorkers counts workers that have EVER crashed or been declared
// dead — the cumulative ledger behind Stats.DeadWorkers, so the gauge and
// the final stats agree even after recovery revives a partition.
func (e *engine) liveDeadWorkers() int {
	n := 0
	for i := range e.everDead {
		if e.everDead[i].Load() {
			n++
		}
	}
	return n
}

// liveRecovery reads the cluster-wide recovery counters mid-run.
func (e *engine) liveRecovery() (restarts, takeovers, recovered uint64) {
	for _, wk := range e.workers {
		restarts += wk.restarts.Load()
		takeovers += wk.takenOver.Load()
		recovered += wk.recoveredPairs.Load()
	}
	return
}

// liveLR recomputes the current decayed learning rate from the shared scan
// counter — the same formula every worker applies in scanSequence.
func (e *engine) liveLR() float32 {
	done := e.scanTokens.Load()
	f := 1 - float32(float64(done)/float64(e.totalTokens*uint64(e.opt.Workers)))
	if f < e.opt.MinLRFrac {
		f = e.opt.MinLRFrac
	}
	return e.opt.LR * f
}

// registerMetrics mirrors the engine's counters into the registry as
// gauges. GaugeFunc registration replaces any previous run's closure, so a
// long-lived registry (a serving process retraining daily) always reads
// the newest run.
func (e *engine) registerMetrics(reg *metrics.Registry) {
	gauges := []struct {
		name, help string
		fn         func() float64
	}{
		{"train_pairs", "positive pairs trained so far", func() float64 { p, _, _, _ := e.liveStats(); return float64(p) }},
		{"train_retries", "remote TNS re-sends after a deadline expired", func() float64 { _, r, _, _ := e.liveStats(); return float64(r) }},
		{"train_degraded", "pairs trained against local noise only after retries were exhausted", func() float64 { _, _, d, _ := e.liveStats(); return float64(d) }},
		{"train_dropped_pairs", "pairs lost to dead workers, untrained cluster-wide", func() float64 { _, _, _, d := e.liveStats(); return float64(d) }},
		{"train_dead_workers", "workers that ever crashed or were declared dead by the heartbeat monitor", func() float64 { return float64(e.liveDeadWorkers()) }},
		{"train_restarts", "partition resurrections performed by the supervisor", func() float64 { r, _, _ := e.liveRecovery(); return float64(r) }},
		{"train_takeovers", "partitions adopted by a survivor after the restart budget ran out", func() float64 { _, t, _ := e.liveRecovery(); return float64(t) }},
		{"train_recovered_pairs", "pairs trained by replacement incarnations after a death", func() float64 { _, _, r := e.liveRecovery(); return float64(r) }},
		{"train_tokens", "corpus tokens scanned so far, summed over workers", func() float64 { return float64(e.scanTokens.Load()) }},
		{"train_lr", "current decayed learning rate", func() float64 { return float64(e.liveLR()) }},
		{"train_workers", "configured worker count", func() float64 { return float64(e.opt.Workers) }},
		{"net_wire_bytes_sent", "bytes written to the transport wire (length prefixes included; 0 on chan)", func() float64 { return float64(e.tr.Stats().BytesSent) }},
		{"net_wire_bytes_received", "bytes read from the transport wire", func() float64 { return float64(e.tr.Stats().BytesReceived) }},
		{"net_frames_sent", "frames written to the wire (requests + replies)", func() float64 { return float64(e.tr.Stats().FramesSent) }},
		{"net_frames_received", "frames read from the wire", func() float64 { return float64(e.tr.Stats().FramesReceived) }},
		{"net_dials", "successful transport connection establishments", func() float64 { return float64(e.tr.Stats().Dials) }},
		{"net_reconnects", "severed links redialed successfully", func() float64 { return float64(e.tr.Stats().Reconnects) }},
		{"net_late_replies", "replies that arrived after their request was abandoned", func() float64 { return float64(e.tr.Stats().LateReplies) }},
	}
	for _, g := range gauges {
		//lint:allow metricname every name comes from the static literal table above; cardinality is fixed
		reg.GaugeFunc(g.name, g.help, g.fn)
	}
}

// startObservers wires the optional registry mirror and progress reporter;
// the returned stop emits the final Done snapshot and is safe to call with
// no observers configured.
func (e *engine) startObservers() (stop func()) {
	if e.opt.Metrics != nil {
		e.registerMetrics(e.opt.Metrics)
	}
	if e.opt.Progress == nil {
		return func() {}
	}
	// Every worker scans the whole corpus, so the run's total scan volume
	// is corpus × epochs × workers; the epoch estimate divides by one
	// cluster-wide pass. (Workers move through epochs independently, so
	// mid-run this is an average, not a barrier-aligned position.)
	totalScan := e.totalTokens * uint64(e.opt.Workers)
	perEpoch := totalScan / uint64(e.opt.Epochs)
	if perEpoch == 0 {
		perEpoch = 1
	}
	return sgns.StartProgress(e.opt.Progress, e.opt.ProgressEvery, e.opt.Epochs, totalScan,
		func() (epoch int, pairs, tokens uint64, lr float32) {
			p, _, _, _ := e.liveStats()
			tok := e.scanTokens.Load()
			ep := int(tok / perEpoch)
			if ep >= e.opt.Epochs {
				ep = e.opt.Epochs - 1
			}
			return ep, p, tok, e.liveLR()
		})
}
