package dist

import (
	"sync/atomic"
	"time"
)

// chanTransport is the original in-process mesh: one buffered channel per
// worker, requests delivered by channel send. It exists both as the fast
// default for single-process runs and as the reference implementation the
// TCP transport is property-tested against.
type chanTransport struct {
	inboxes []chan *tnsReq
	done    chan struct{}
	frames  atomic.Uint64
}

func newChanTransport(workers int) *chanTransport {
	t := &chanTransport{
		inboxes: make([]chan *tnsReq, workers),
		done:    make(chan struct{}),
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan *tnsReq, 256)
	}
	return t
}

func (t *chanTransport) Inbox(id int32) <-chan *tnsReq { return t.inboxes[id] }
func (t *chanTransport) Done() <-chan struct{}         { return t.done }

// Call preserves the exact two-phase select of the pre-Transport
// remoteCall: block on delivering to dst's queue (serving our own all the
// while), then block on the reply. The request carries a private copy of
// vec and a 1-buffered reply channel, so a server answering after we
// abandoned the attempt never blocks and never reads a row the requester
// has since mutated.
func (t *chanTransport) Call(src, dst int32, vec []float32, ctx int32, lr float32,
	timeout time.Duration, abort <-chan struct{}, serve func(*tnsReq)) ([]float32, bool) {
	req := &tnsReq{
		vec:   append([]float32(nil), vec...),
		ctx:   ctx,
		lr:    lr,
		reply: make(chan []float32, 1),
	}
	own := t.inboxes[src]
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	sent := false
	for !sent {
		select {
		case t.inboxes[dst] <- req:
			sent = true
		case in := <-own:
			serve(in)
		case <-abort:
			return nil, false
		case <-timer.C:
			return nil, false
		}
	}
	t.frames.Add(1)
	for {
		select {
		case grad := <-req.reply:
			return grad, true
		case in := <-own:
			serve(in)
		case <-abort:
			return nil, false
		case <-timer.C:
			return nil, false
		}
	}
}

func (t *chanTransport) SendOneWay(src, dst int32, vec []float32, ctx int32, lr float32) {
	req := &tnsReq{
		vec:   append([]float32(nil), vec...),
		ctx:   ctx,
		lr:    lr,
		reply: make(chan []float32, 1),
	}
	select {
	case t.inboxes[dst] <- req:
		t.frames.Add(1)
	default:
		// Best-effort by contract: a full peer queue swallows the duplicate.
	}
}

func (t *chanTransport) CloseInboxes() { close(t.done) }
func (t *chanTransport) Close() error  { return nil }

func (t *chanTransport) Stats() TransportStats {
	return TransportStats{FramesSent: t.frames.Load(), FramesReceived: t.frames.Load()}
}
