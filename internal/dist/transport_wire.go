package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format of the TCP transport. Every frame is length-prefixed:
//
//	uint32  payload length (little-endian, excludes the prefix itself)
//	payload:
//	  byte    kind (1 = request, 2 = reply)
//	  uint64  request id (unique per (src,dst) link)
//	  request:  int32 ctx | float32 lr | float32 vec[dim]
//	  reply:    float32 grad[dim]
//
// Everything is little-endian and float32 bits are shipped verbatim, so a
// vector survives the round trip bit-for-bit — the property the
// chan-vs-tcp equivalence tests lean on.
const (
	frameReq  = 1
	frameResp = 2

	// reqHeaderLen is kind + id + ctx + lr; respHeaderLen is kind + id.
	reqHeaderLen  = 1 + 8 + 4 + 4
	respHeaderLen = 1 + 8

	// maxFramePayload bounds a single payload; anything larger means a
	// desynchronized or hostile stream and kills the connection.
	maxFramePayload = 16 << 20
)

// encodeReq serializes one TNS request into a self-contained frame
// (prefix included) ready for a single Write.
func encodeReq(id uint64, vec []float32, ctx int32, lr float32) []byte {
	n := reqHeaderLen + 4*len(vec)
	b := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(b, uint32(n))
	b[4] = frameReq
	binary.LittleEndian.PutUint64(b[5:], id)
	binary.LittleEndian.PutUint32(b[13:], uint32(ctx))
	binary.LittleEndian.PutUint32(b[17:], math.Float32bits(lr))
	off := 4 + reqHeaderLen
	for _, v := range vec {
		binary.LittleEndian.PutUint32(b[off:], math.Float32bits(v))
		off += 4
	}
	return b
}

func decodeReq(p []byte) (id uint64, vec []float32, ctx int32, lr float32, err error) {
	if len(p) < reqHeaderLen || (len(p)-reqHeaderLen)%4 != 0 {
		return 0, nil, 0, 0, fmt.Errorf("dist: malformed request frame (%d bytes)", len(p))
	}
	if p[0] != frameReq {
		return 0, nil, 0, 0, fmt.Errorf("dist: request frame has kind %d", p[0])
	}
	id = binary.LittleEndian.Uint64(p[1:])
	ctx = int32(binary.LittleEndian.Uint32(p[9:]))
	lr = math.Float32frombits(binary.LittleEndian.Uint32(p[13:]))
	body := p[reqHeaderLen:]
	vec = make([]float32, len(body)/4)
	for i := range vec {
		vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return id, vec, ctx, lr, nil
}

// encodeResp serializes one gradient reply (prefix included).
func encodeResp(id uint64, grad []float32) []byte {
	n := respHeaderLen + 4*len(grad)
	b := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(b, uint32(n))
	b[4] = frameResp
	binary.LittleEndian.PutUint64(b[5:], id)
	off := 4 + respHeaderLen
	for _, v := range grad {
		binary.LittleEndian.PutUint32(b[off:], math.Float32bits(v))
		off += 4
	}
	return b
}

func decodeResp(p []byte) (id uint64, grad []float32, err error) {
	if len(p) < respHeaderLen || (len(p)-respHeaderLen)%4 != 0 {
		return 0, nil, fmt.Errorf("dist: malformed reply frame (%d bytes)", len(p))
	}
	if p[0] != frameResp {
		return 0, nil, fmt.Errorf("dist: reply frame has kind %d", p[0])
	}
	id = binary.LittleEndian.Uint64(p[1:])
	body := p[respHeaderLen:]
	grad = make([]float32, len(body)/4)
	for i := range grad {
		grad[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return id, grad, nil
}
