package emb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sisg/internal/vocab"
)

// SaveWord2VecText writes the INPUT vectors in the classic word2vec text
// format ("<vocab> <dim>\n<token> v1 v2 ...\n"), which virtually every
// embedding toolchain can read. This backs the paper's practicability
// claim: the artifacts of SISG interoperate with "any standard SGNS
// implementation" and its surrounding tooling.
//
// Only tokens with non-zero corpus frequency are exported when onlyCounted
// is set, matching how word2vec's own output omits pruned words.
func SaveWord2VecText(w io.Writer, m *Model, dict *vocab.Dict, onlyCounted bool) error {
	if dict.Len() != m.Vocab() {
		return fmt.Errorf("emb: dictionary has %d tokens, model has %d rows", dict.Len(), m.Vocab())
	}
	rows := 0
	for i := 0; i < dict.Len(); i++ {
		if !onlyCounted || dict.Count(int32(i)) > 0 {
			rows++
		}
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d\n", rows, m.Dim()); err != nil {
		return err
	}
	for i := 0; i < dict.Len(); i++ {
		if onlyCounted && dict.Count(int32(i)) == 0 {
			continue
		}
		if _, err := bw.WriteString(dict.Name(int32(i))); err != nil {
			return err
		}
		for _, v := range m.In.Row(int32(i)) {
			if _, err := fmt.Fprintf(bw, " %g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWord2VecText reads a word2vec text file into token names and vectors.
// It accepts any producer's output (tokens must not contain spaces).
func LoadWord2VecText(r io.Reader) (names []string, vecs [][]float32, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("emb: reading w2v header: %w", err)
	}
	parts := strings.Fields(header)
	if len(parts) != 2 {
		return nil, nil, errors.New("emb: malformed w2v header")
	}
	n, err1 := strconv.Atoi(parts[0])
	dim, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || n < 0 || dim <= 0 {
		return nil, nil, errors.New("emb: malformed w2v header values")
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != dim+1 {
			return nil, nil, fmt.Errorf("emb: row %d has %d fields, want %d", len(names), len(fields), dim+1)
		}
		vec := make([]float32, dim)
		for i := 0; i < dim; i++ {
			f, err := strconv.ParseFloat(fields[i+1], 32)
			if err != nil {
				return nil, nil, fmt.Errorf("emb: row %d: %v", len(names), err)
			}
			vec[i] = float32(f)
		}
		names = append(names, fields[0])
		vecs = append(vecs, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(names) != n {
		return nil, nil, fmt.Errorf("emb: header promised %d rows, got %d", n, len(names))
	}
	return names, vecs, nil
}
