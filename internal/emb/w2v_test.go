package emb

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sisg/internal/rng"
	"sisg/internal/vocab"
)

func w2vFixture() (*Model, *vocab.Dict) {
	d := vocab.NewDict(4)
	d.Add("item_0", vocab.KindItem, 5)
	d.Add("item_1", vocab.KindItem, 0) // zero count: prunable
	d.Add("brand_2", vocab.KindSI, 7)
	m := NewModel(3, 4, rng.New(3))
	return m, d
}

func TestWord2VecRoundtrip(t *testing.T) {
	m, d := w2vFixture()
	var buf bytes.Buffer
	if err := SaveWord2VecText(&buf, m, d, false); err != nil {
		t.Fatal(err)
	}
	names, vecs, err := LoadWord2VecText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "item_0" || names[2] != "brand_2" {
		t.Fatalf("names: %v", names)
	}
	for i := range vecs {
		for j, v := range vecs[i] {
			if math.Abs(float64(v-m.In.Row(int32(i))[j])) > 1e-6 {
				t.Fatalf("row %d col %d: %v != %v", i, j, v, m.In.Row(int32(i))[j])
			}
		}
	}
}

func TestWord2VecOnlyCounted(t *testing.T) {
	m, d := w2vFixture()
	var buf bytes.Buffer
	if err := SaveWord2VecText(&buf, m, d, true); err != nil {
		t.Fatal(err)
	}
	names, _, err := LoadWord2VecText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("pruned export has %d rows", len(names))
	}
	for _, n := range names {
		if n == "item_1" {
			t.Fatal("zero-count token exported")
		}
	}
}

func TestWord2VecShapeMismatch(t *testing.T) {
	m, _ := w2vFixture()
	small := vocab.NewDict(1)
	small.Add("only", vocab.KindItem, 1)
	if err := SaveWord2VecText(&bytes.Buffer{}, m, small, false); err == nil {
		t.Fatal("dict/model mismatch accepted")
	}
}

func TestLoadWord2VecErrors(t *testing.T) {
	cases := []string{
		"",                 // no header
		"garbage\n",        // malformed header
		"x 4\n",            // non-numeric count
		"2 3\ntok 1 2\n",   // wrong field count
		"2 3\ntok 1 2 x\n", // bad float
		"2 3\ntok 1 2 3\n", // fewer rows than promised
	}
	for _, c := range cases {
		if _, _, err := LoadWord2VecText(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q): want error", c)
		}
	}
}
