package emb

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

func TestMatrixRows(t *testing.T) {
	m := NewMatrix(4, 3)
	if m.Rows() != 4 || m.Dim != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Dim)
	}
	r2 := m.Row(2)
	r2[0], r2[1], r2[2] = 7, 8, 9
	if m.Data()[6] != 7 || m.Data()[8] != 9 {
		t.Fatal("Row view is not aliased into Data")
	}
	// Full-slice expression: appending to a row must not clobber the next.
	r := m.Row(1)
	r = append(r, 99)
	if m.Row(2)[0] != 7 {
		t.Fatal("append through row view overwrote the next row")
	}
	_ = r
}

func TestNewModelInit(t *testing.T) {
	m := NewModel(10, 8, rng.New(1))
	bound := float32(0.5) / 8
	for i := 0; i < 10; i++ {
		in := m.In.Row(int32(i))
		var nonZero bool
		for _, v := range in {
			if v < -bound || v >= bound {
				t.Fatalf("input init out of range: %v", v)
			}
			if v != 0 {
				nonZero = true
			}
		}
		if !nonZero {
			t.Fatalf("input row %d all zero", i)
		}
		for _, v := range m.Out.Row(int32(i)) {
			if v != 0 {
				t.Fatal("output init must be zero")
			}
		}
	}
	if m.Dim() != 8 || m.Vocab() != 10 {
		t.Fatalf("Dim/Vocab = %d/%d", m.Dim(), m.Vocab())
	}
}

func TestScores(t *testing.T) {
	m := NewModel(3, 2, rng.New(1))
	copy(m.In.Row(0), []float32{1, 0})
	copy(m.In.Row(1), []float32{1, 1})
	copy(m.Out.Row(1), []float32{2, 3})
	if got := m.ScoreDirected(0, 1); got != 2 {
		t.Fatalf("ScoreDirected = %v", got)
	}
	want := float32(1 / math.Sqrt2)
	if got := m.ScoreCosine(0, 1); math.Abs(float64(got-want)) > 1e-6 {
		t.Fatalf("ScoreCosine = %v, want %v", got, want)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	m := NewModel(17, 5, rng.New(9))
	for i := range m.Out.Data() {
		m.Out.Data()[i] = float32(i) * 0.1
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vocab() != 17 || got.Dim() != 5 {
		t.Fatalf("loaded shape %dx%d", got.Vocab(), got.Dim())
	}
	for i := range m.In.Data() {
		if m.In.Data()[i] != got.In.Data()[i] {
			t.Fatal("input data mismatch")
		}
		if m.Out.Data()[i] != got.Out.Data()[i] {
			t.Fatal("output data mismatch")
		}
	}
}

func TestSaveLoadProperty(t *testing.T) {
	f := func(vocab, dim uint8, seed uint64) bool {
		v := int(vocab%20) + 1
		d := int(dim%16) + 1
		m := NewModel(v, d, rng.New(seed))
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(f32bytes(m.In.Data()), f32bytes(got.In.Data()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func f32bytes(fs []float32) []byte {
	out := make([]byte, 0, len(fs)*4)
	for _, f := range fs {
		b := math.Float32bits(f)
		out = append(out, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
	}
	return out
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("WRONGMAG")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated body.
	m := NewModel(4, 4, rng.New(1))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:20])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestNormalizedCopy(t *testing.T) {
	m := NewMatrix(3, 4)
	copy(m.Row(0), []float32{3, 4, 0, 0})
	copy(m.Row(1), []float32{0, 0, 0, 0}) // zero row stays zero
	copy(m.Row(2), []float32{1, 1, 1, 1})
	n := NormalizedCopy(m)
	if got := vecmath.Norm(n.Row(0)); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("row 0 norm %v", got)
	}
	if got := vecmath.Norm(n.Row(1)); got != 0 {
		t.Fatalf("zero row norm %v", got)
	}
	// Original untouched.
	if m.Row(0)[0] != 3 {
		t.Fatal("NormalizedCopy mutated the source")
	}
}
