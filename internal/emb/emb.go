// Package emb stores skip-gram embedding matrices.
//
// Each vocabulary token owns two vectors (§II-C of the paper): an *input*
// vector used when the token is the target, and an *output* vector used
// when it is the context. Symmetric models discard output vectors at
// serving time; the directed SISG-…-D variant scores the ordered pair
// (vi → vj) as input(vi)·output(vj), so both matrices are first-class here.
//
// Matrices are single contiguous float32 slices (V×d row-major): one
// allocation, GC-friendly, and the layout every kernel in internal/vecmath
// assumes.
package emb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

// Matrix is a V×Dim row-major float32 matrix.
type Matrix struct {
	Dim  int
	data []float32
}

// NewMatrix allocates a zeroed V×dim matrix.
func NewMatrix(v, dim int) *Matrix {
	return &Matrix{Dim: dim, data: make([]float32, v*dim)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return len(m.data) / m.Dim }

// Row returns the i-th row as a mutable slice view.
func (m *Matrix) Row(i int32) []float32 {
	off := int(i) * m.Dim
	return m.data[off : off+m.Dim : off+m.Dim]
}

// Data exposes the backing slice (used by persistence and the distributed
// engine's shard transfers).
func (m *Matrix) Data() []float32 { return m.data }

// Model is the pair of matrices produced by training.
type Model struct {
	In  *Matrix // input (target) vectors
	Out *Matrix // output (context) vectors
}

// NewModel allocates a model for v tokens with the given dimension and
// applies word2vec initialization: inputs uniform in [-0.5/dim, 0.5/dim],
// outputs zero.
func NewModel(v, dim int, r *rng.RNG) *Model {
	m := &Model{In: NewMatrix(v, dim), Out: NewMatrix(v, dim)}
	inv := 1 / float32(dim)
	for i := range m.In.data {
		m.In.data[i] = (r.Float32() - 0.5) * inv
	}
	return m
}

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.In.Dim }

// Vocab returns the number of token rows.
func (m *Model) Vocab() int { return m.In.Rows() }

// ScoreDirected returns the directed similarity input(a)·output(b), the
// §II-C scoring rule for asymmetric models.
func (m *Model) ScoreDirected(a, b int32) float32 {
	return vecmath.Dot(m.In.Row(a), m.Out.Row(b))
}

// ScoreCosine returns cosine(input(a), input(b)), the standard symmetric
// scoring rule ("we compute similarities using the standard cosine
// similarity", §IV-A).
func (m *Model) ScoreCosine(a, b int32) float32 {
	return vecmath.Cosine(m.In.Row(a), m.In.Row(b))
}

// ---- Persistence ----
//
// Binary format (little-endian):
//
//	magic   [8]byte  "SISGEMB1"
//	vocab   uint32
//	dim     uint32
//	in      vocab*dim float32
//	out     vocab*dim float32

var magic = [8]byte{'S', 'I', 'S', 'G', 'E', 'M', 'B', '1'}

// ErrBadFormat reports a corrupt or foreign embedding file.
var ErrBadFormat = errors.New("emb: bad file format")

// Save writes the model in the binary format above.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.Vocab()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Dim()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeFloats(bw, m.In.data); err != nil {
		return err
	}
	if err := writeFloats(bw, m.Out.data); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("emb: reading magic: %w", err)
	}
	if got != magic {
		return nil, ErrBadFormat
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("emb: reading header: %w", err)
	}
	v := int(binary.LittleEndian.Uint32(hdr[0:]))
	dim := int(binary.LittleEndian.Uint32(hdr[4:]))
	if v < 0 || dim <= 0 || dim > 1<<16 {
		return nil, ErrBadFormat
	}
	m := &Model{In: NewMatrix(v, dim), Out: NewMatrix(v, dim)}
	if err := readFloats(br, m.In.data); err != nil {
		return nil, err
	}
	if err := readFloats(br, m.Out.data); err != nil {
		return nil, err
	}
	return m, nil
}

func writeFloats(w io.Writer, fs []float32) error {
	buf := make([]byte, 4096)
	for len(fs) > 0 {
		n := len(buf) / 4
		if n > len(fs) {
			n = len(fs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(fs[i]))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		fs = fs[n:]
	}
	return nil
}

func readFloats(r io.Reader, fs []float32) error {
	buf := make([]byte, 4096)
	for len(fs) > 0 {
		n := len(buf) / 4
		if n > len(fs) {
			n = len(fs)
		}
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return fmt.Errorf("emb: reading floats: %w", err)
		}
		for i := 0; i < n; i++ {
			fs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		fs = fs[n:]
	}
	return nil
}

// NormalizedCopy returns a row-normalized copy of the given matrix, used by
// the KNN index to turn dot products into cosine similarities.
func NormalizedCopy(m *Matrix) *Matrix {
	out := NewMatrix(m.Rows(), m.Dim)
	copy(out.data, m.data)
	for i := 0; i < out.Rows(); i++ {
		vecmath.Normalize(out.Row(int32(i)))
	}
	return out
}
