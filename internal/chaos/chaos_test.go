package chaos

import (
	"reflect"
	"testing"
)

// The builtin suite must pass wholesale; in -short mode (the CI chaos
// smoke under -race) only the acceptance scenario runs — crash 2 of 4
// workers mid-run with recovery enabled, nothing dropped, exact replay.
// Scenarios run sequentially on purpose: failure detection is
// wall-clock-based, and saturating the host's cores would manufacture
// false-positive deaths the scenarios do not expect.
func TestBuiltinScenarios(t *testing.T) {
	scs := Builtin()
	if testing.Short() {
		scs = scs[:1]
	}
	for _, sc := range scs {
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if t.Failed() {
				t.Logf("stats: %+v", res.Stats)
			}
		})
	}
}

// TestNetworkChaosSmoke is the CI network-chaos job's entry point: the
// TCP builtin scenarios — partition + slow link + drops, and severed
// connections healed by reconnect — run over real loopback sockets under
// -race. It is the wire-level counterpart of the -short acceptance run.
func TestNetworkChaosSmoke(t *testing.T) {
	ran := 0
	for _, sc := range Builtin() {
		if sc.Transport != "tcp" {
			continue
		}
		if testing.Short() && sc.CheckResume {
			// The resume check triples the training volume; the two wire-
			// fault scenarios are the smoke's point.
			continue
		}
		ran++
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if sc.Faults.Wire.Severs != nil && res.Stats.Reconnects == 0 {
				t.Error("sever scenario recorded no reconnects")
			}
			if t.Failed() {
				t.Logf("stats: %+v", res.Stats)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no tcp scenarios in the builtin suite")
	}
}

// The acceptance scenario's specifics, asserted beyond the generic
// invariants: both crashed partitions recovered and are on the ledger.
func TestAcceptanceCrashTwoOfFour(t *testing.T) {
	res, err := Run(Builtin()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("violations: %v", res.Violations)
	}
	st := res.Stats
	if st.DroppedPairs != 0 {
		t.Fatalf("DroppedPairs = %d", st.DroppedPairs)
	}
	if len(st.DeadWorkers) != 2 || st.DeadWorkers[0] != 1 || st.DeadWorkers[1] != 2 {
		t.Fatalf("DeadWorkers = %v, want [1 2]", st.DeadWorkers)
	}
	if st.Restarts == 0 {
		t.Fatal("no restarts recorded")
	}
	if st.RecoveredPairs == 0 {
		t.Fatal("no recovered pairs recorded")
	}
}

// A random scenario is a pure function of its seed.
func TestRandomScenarioDerivation(t *testing.T) {
	a, b := RandomScenario(99), RandomScenario(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different scenarios:\n%+v\n%+v", a, b)
	}
	c := RandomScenario(100)
	if reflect.DeepEqual(a.Faults, c.Faults) && a.Workers == c.Workers {
		t.Fatalf("different seeds produced an identical schedule: %+v", a)
	}
	if len(a.Faults.Crashes) == 0 || len(a.Faults.Crashes) >= a.Workers {
		t.Fatalf("schedule must crash a non-empty strict subset: %+v", a)
	}
}

func TestRandomScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("random scenario skipped in short mode")
	}
	res, err := Run(RandomScenario(1234))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("violations: %v (stats %+v)", res.Violations, res.Stats)
	}
}
