// Package chaos is a deterministic chaos harness for the distributed
// trainer: it composes seeded crash/stall schedules and wire faults
// (drops, delays, duplicates, severed connections, one-way partitions)
// into scenarios, runs them against a synthetic corpus — over in-process
// channels or real loopback TCP — and checks the self-healing invariants
// after every run: pair accounting, zero loss under recovery, finite
// embeddings, exact replay under one seed, and checkpoint/resume
// equivalence when the run is killed mid-chaos.
//
// Determinism is the design center, not an afterthought: every fault in a
// schedule triggers on a worker's own pair counter and every replacement
// incarnation re-seeds its RNG streams from (seed, partition,
// incarnation), so a scenario is a reproducible experiment, not a fuzz
// roll. The harness is driven from go test (chaos_test.go) and from the
// sisg-chaos command.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/dist"
	"sisg/internal/graph"
	"sisg/internal/rng"
	"sisg/internal/sisg"
)

// Scenario is one seeded chaos experiment.
type Scenario struct {
	Name    string
	Seed    uint64 // training seed; also salts the corpus
	Workers int
	Epochs  int // 0 = 1

	// Transport selects the request mesh under test: "" or "chan" for the
	// in-process channels, "tcp" for real loopback sockets. The invariant
	// set is transport-independent; the tcp scenarios exist to prove it.
	Transport string

	// Failure schedule and the recovery policy under test.
	Faults      dist.FaultPlan
	Recovery    bool
	MaxRestarts int // dist semantics: 0 = default budget, negative = none

	// ExpectDead lists the partitions that must appear in
	// Stats.DeadWorkers (exactly — no more, no fewer). Nil skips the
	// check (stall scenarios, where detection is timing-dependent).
	ExpectDead []int

	// CheckDeterminism runs the scenario twice and requires the
	// deterministic stat subset to match. Only meaningful for crash-only
	// schedules: stalls and drops perturb timing-shaped paths.
	CheckDeterminism bool

	// CheckResume additionally kills the run at a mid-chaos checkpoint
	// barrier (dist.ErrHalted), resumes it from the snapshot, and requires
	// the resumed accounting to match the uninterrupted run. Requires
	// Recovery (without it, degraded counts are timing-dependent).
	CheckResume bool

	// Sessions overrides the synthetic corpus size (0 = 900).
	Sessions int
}

// Result is one scenario's outcome: the uninterrupted run's stats plus
// every invariant violation found. An empty Violations slice means PASS.
type Result struct {
	Scenario   Scenario
	Stats      dist.Stats
	Violations []string
	Elapsed    time.Duration
}

func (r *Result) Passed() bool { return len(r.Violations) == 0 }

func (r *Result) fail(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// deterministic extracts the stat subset that must replay exactly under
// one seed: pair accounting, per-worker loads, recovery attribution and
// the death ledger. Timing-shaped figures (Retries, BytesSent, HotSyncs,
// Elapsed) are excluded by design.
func deterministic(st dist.Stats) []uint64 {
	out := []uint64{st.Pairs, st.LocalPairs, st.RemotePairs, st.Degraded,
		st.DroppedPairs, st.RecoveredPairs, st.Restarts, st.Takeovers}
	out = append(out, st.PairsPerWorker...)
	for _, d := range st.DeadWorkers {
		out = append(out, uint64(d))
	}
	return out
}

// Run executes the scenario and checks every applicable invariant. The
// returned error reports harness failures (corpus generation, an
// unexpected training error); invariant breaks go into Result.Violations.
func Run(sc Scenario) (*Result, error) {
	res := &Result{Scenario: sc}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()

	ds, seqs, part, err := dataset(sc)
	if err != nil {
		return nil, err
	}

	opt := options(sc)
	m, st, err := dist.Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		return nil, fmt.Errorf("chaos %q: train: %w", sc.Name, err)
	}
	res.Stats = st
	checkInvariants(res, st)
	for _, v := range m.In.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			res.fail("non-finite value in trained embeddings")
			break
		}
	}

	if sc.CheckDeterminism {
		_, st2, err := dist.Train(ds.Dict.Dict, seqs, part, options(sc))
		if err != nil {
			return nil, fmt.Errorf("chaos %q: determinism re-run: %w", sc.Name, err)
		}
		compareDeterministic(res, "same-seed re-run", st, st2)
	}

	if sc.CheckResume {
		if err := checkResume(res, ds, seqs, part, sc, st); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// checkInvariants applies the unconditional checks to one run's stats.
func checkInvariants(res *Result, st dist.Stats) {
	sc := res.Scenario
	if st.Pairs != st.LocalPairs+st.RemotePairs+st.Degraded {
		res.fail("pair accounting broken: %d local + %d remote + %d degraded != %d pairs",
			st.LocalPairs, st.RemotePairs, st.Degraded, st.Pairs)
	}
	var sum uint64
	for _, p := range st.PairsPerWorker {
		sum += p
	}
	if sum != st.Pairs {
		res.fail("per-worker pairs sum %d != total %d", sum, st.Pairs)
	}
	if st.Pairs == 0 {
		res.fail("nothing trained")
	}
	if sc.Recovery {
		if st.DroppedPairs != 0 {
			res.fail("recovery enabled but %d pairs dropped", st.DroppedPairs)
		}
		if st.Degraded != 0 {
			res.fail("recovery enabled but %d pairs degraded", st.Degraded)
		}
	}
	if sc.ExpectDead != nil {
		if len(st.DeadWorkers) != len(sc.ExpectDead) {
			res.fail("DeadWorkers = %v, want %v", st.DeadWorkers, sc.ExpectDead)
		} else {
			for i, d := range sc.ExpectDead {
				if st.DeadWorkers[i] != d {
					res.fail("DeadWorkers = %v, want %v", st.DeadWorkers, sc.ExpectDead)
					break
				}
			}
		}
	}
}

func compareDeterministic(res *Result, what string, a, b dist.Stats) {
	da, db := deterministic(a), deterministic(b)
	if len(da) != len(db) {
		res.fail("%s: stat vector lengths differ (%d vs %d; dead %v vs %v)",
			what, len(da), len(db), a.DeadWorkers, b.DeadWorkers)
		return
	}
	for i := range da {
		if da[i] != db[i] {
			res.fail("%s: deterministic stat %d differs: %d vs %d", what, i, da[i], db[i])
			return
		}
	}
}

// checkResume kills the scenario at its second checkpoint barrier, resumes
// from the snapshot, and requires the resumed run's deterministic stats to
// match the uninterrupted run's — the mid-chaos resume-equivalence
// invariant (crash triggers, restart counts and the death ledger are all
// part of the snapshot, so a resumed run must not re-fire history).
func checkResume(res *Result, ds *corpus.Dataset, seqs [][]int32, part *graph.Partition, sc Scenario, base dist.Stats) error {
	dir, err := os.MkdirTemp("", "sisg-chaos-*")
	if err != nil {
		return fmt.Errorf("chaos %q: %w", sc.Name, err)
	}
	defer os.RemoveAll(dir)

	opt := options(sc)
	opt.CheckpointDir = dir
	opt.CheckpointEvery = 1   // snapshot at every barrier
	opt.HaltAfterBarriers = 1 // die right after the first mid-run snapshot
	_, _, err = dist.Train(ds.Dict.Dict, seqs, part, opt)
	if !errors.Is(err, dist.ErrHalted) {
		return fmt.Errorf("chaos %q: halted run: got %v, want ErrHalted", sc.Name, err)
	}

	opt.HaltAfterBarriers = 0
	opt.Resume = true
	_, st, err := dist.Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		return fmt.Errorf("chaos %q: resumed run: %w", sc.Name, err)
	}
	compareDeterministic(res, "mid-chaos resume", base, st)
	return nil
}

func dataset(sc Scenario) (*corpus.Dataset, [][]int32, *graph.Partition, error) {
	cfg := corpus.Tiny()
	cfg.Seed ^= sc.Seed // distinct seeds exercise distinct corpora
	cfg.NumSessions = 900
	if sc.Sessions > 0 {
		cfg.NumSessions = sc.Sessions
	}
	ds, err := corpus.Generate(cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("chaos %q: corpus: %w", sc.Name, err)
	}
	seqs := sisg.Enrich(ds.Dict, ds.Sessions, sisg.VariantSISGFUD)
	part, _, err := dist.PartitionForDataset(ds, ds.Sessions, sc.Workers)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("chaos %q: partition: %w", sc.Name, err)
	}
	return ds, seqs, part, nil
}

// options builds the dist configuration for a scenario: test-tight failure
// detection so a multi-death scenario still finishes in well under a
// second of wall clock.
func options(sc Scenario) dist.Options {
	opt := dist.DefaultOptions(sc.Workers)
	opt.Options = sisg.TrainOptions(opt.Options, sisg.VariantSISGFUD, 3)
	opt.Epochs = 1
	if sc.Epochs > 0 {
		opt.Epochs = sc.Epochs
	}
	opt.HotTopK = 64
	opt.Seed = sc.Seed
	opt.Transport = sc.Transport
	opt.Faults = sc.Faults
	opt.Recovery = sc.Recovery
	opt.MaxRestarts = sc.MaxRestarts
	opt.RemoteTimeout = 8 * time.Millisecond
	opt.RemoteRetries = 1
	opt.HeartbeatEvery = 2 * time.Millisecond
	opt.DeadAfter = 40 * time.Millisecond
	opt.RestartBackoff = 2 * time.Millisecond
	opt.RetryBackoff = time.Millisecond
	return opt
}

// Builtin returns the fixed scenario suite, including the acceptance
// scenario: crash 2 of 4 workers mid-run with recovery enabled, nothing
// dropped, exact replay under the seed.
func Builtin() []Scenario {
	return []Scenario{
		{
			Name: "crash-2-of-4-recovery", Seed: 1, Workers: 4,
			Recovery: true,
			Faults: dist.FaultPlan{Crashes: []dist.CrashSpec{
				{Worker: 1, AtPairs: 3000},
				{Worker: 2, AtPairs: 5000},
			}},
			ExpectDead:       []int{1, 2},
			CheckDeterminism: true,
		},
		{
			Name: "restart-budget-to-takeover", Seed: 2, Workers: 4,
			Recovery: true, MaxRestarts: 1,
			Faults: dist.FaultPlan{Crashes: []dist.CrashSpec{
				{Worker: 0, AtPairs: 2000, Times: 3},
			}},
			ExpectDead:       []int{0},
			CheckDeterminism: true,
		},
		{
			Name: "dead-at-birth-takeover", Seed: 3, Workers: 3,
			Recovery: true, MaxRestarts: -1,
			Faults: dist.FaultPlan{Crashes: []dist.CrashSpec{
				{Worker: 2, AtStart: true},
			}},
			ExpectDead:       []int{2},
			CheckDeterminism: true,
		},
		{
			Name: "crash-plus-drops-recovery", Seed: 4, Workers: 4,
			Recovery: true,
			// Small corpus and drop rate: every dropped request waits out a
			// full attempt deadline, so lossy scenarios pay real wall-clock
			// per remote pair.
			Sessions: 300,
			Faults: dist.FaultPlan{
				DropFraction: 0.05,
				Crashes:      []dist.CrashSpec{{Worker: 3, AtPairs: 1500}},
			},
			ExpectDead:       []int{3},
			CheckDeterminism: true, // drops cost retries, never accounting, under recovery
		},
		{
			Name: "stall-storm-recovery", Seed: 5, Workers: 4,
			Recovery: true,
			Faults: dist.FaultPlan{Stalls: []dist.StallSpec{
				{Worker: 1, AtPairs: 1000, For: 60 * time.Millisecond},
				{Worker: 2, AtPairs: 2000, For: 60 * time.Millisecond},
			}},
			// Detection of a stall is timing-dependent (it may resolve just
			// under the threshold), so neither the dead set nor exact replay
			// is asserted — the accounting invariants must hold regardless.
		},
		{
			Name: "crash-no-recovery-baseline", Seed: 6, Workers: 4,
			Faults:     dist.FaultPlan{Crashes: []dist.CrashSpec{{Worker: 1, AtPairs: 3000}}},
			ExpectDead: []int{1},
		},
		{
			Name: "mid-chaos-resume", Seed: 7, Workers: 4,
			Recovery: true,
			Faults: dist.FaultPlan{Crashes: []dist.CrashSpec{
				{Worker: 1, AtPairs: 2500},
			}},
			ExpectDead:  []int{1},
			CheckResume: true,
		},
		// The TCP scenarios re-prove the PR 3 invariants with requests on
		// real loopback sockets: crashes recover, severed connections heal
		// by reconnect without tripping the heartbeat monitor, one-way
		// partitions and slow links cost retries but never accounting, and
		// a mid-chaos snapshot resumes exactly.
		{
			Name: "tcp-crash-recovery", Seed: 8, Workers: 4, Transport: "tcp",
			Recovery: true,
			Faults: dist.FaultPlan{Crashes: []dist.CrashSpec{
				{Worker: 1, AtPairs: 3000},
			}},
			ExpectDead:       []int{1},
			CheckDeterminism: true,
			CheckResume:      true,
		},
		{
			Name: "tcp-sever-reconnect", Seed: 9, Workers: 3, Transport: "tcp",
			Recovery: true, Sessions: 300,
			Faults: dist.FaultPlan{Wire: dist.WireFaults{Severs: []dist.SeverSpec{
				{From: 0, To: 1, AtSends: 25},
				{From: 2, To: 1, AtSends: 40},
				{From: 1, To: 0, AtSends: 60},
			}}},
			// Reconnect must heal the links without a single death: an empty
			// (non-nil) ExpectDead asserts exactly that.
			ExpectDead:       []int{},
			CheckDeterminism: true,
		},
		{
			Name: "tcp-partition-slow-link-recovery", Seed: 10, Workers: 3, Transport: "tcp",
			Recovery: true, Sessions: 300,
			Faults: dist.FaultPlan{
				DropFraction: 0.03,
				Wire: dist.WireFaults{
					DelayFraction: 0.05,
					Delay:         3 * time.Millisecond,
					Partitions: []dist.PartitionSpec{
						{From: 0, To: 2, AtSends: 30, ForSends: 20},
						{From: 2, To: 0, AtSends: 50, ForSends: 10},
					},
				},
			},
			ExpectDead:       []int{},
			CheckDeterminism: true, // wire faults cost retries, never accounting, under recovery
		},
	}
}

// RandomScenario derives a seeded random crash schedule: 3-5 workers,
// crashes on a random strict subset of them (always leaving a survivor),
// each with a small random restart budget. The schedule is a pure function
// of the seed — rerunning the same seed reruns the same scenario — and is
// crash-only, so determinism checking stays sound.
func RandomScenario(seed uint64) Scenario {
	r := rng.New(seed ^ 0x6a09e667f3bcc908)
	workers := 3 + r.Intn(3)
	nCrash := 1 + r.Intn(workers-1)
	perm := r.Perm(workers)
	victims := append([]int(nil), perm[:nCrash]...)
	sortInts(victims)
	var crashes []dist.CrashSpec
	for _, v := range victims {
		crashes = append(crashes, dist.CrashSpec{
			Worker:  v,
			AtPairs: uint64(1000 + r.Intn(5000)),
			Times:   1 + r.Intn(3),
		})
	}
	return Scenario{
		Name:             fmt.Sprintf("random-%d", seed),
		Seed:             seed,
		Workers:          workers,
		Recovery:         true,
		MaxRestarts:      1 + r.Intn(2),
		Faults:           dist.FaultPlan{Crashes: crashes},
		ExpectDead:       victims,
		CheckDeterminism: true,
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
