package alias

import (
	"math"
	"testing"
	"testing/quick"

	"sisg/internal/rng"
)

func TestErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty weights: want error")
	}
	if _, err := New([]float64{0, 0}); err == nil {
		t.Error("all-zero weights: want error")
	}
	if _, err := New([]float64{1, -1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := New([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight: want error")
	}
}

func TestSingleOutcome(t *testing.T) {
	tab, err := New([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if tab.Sample(r) != 0 {
			t.Fatal("single outcome must always be 0")
		}
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	tab, err := New([]float64{1, 0, 2, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		s := tab.Sample(r)
		if s == 1 || s == 3 {
			t.Fatalf("sampled zero-weight index %d", s)
		}
	}
}

func TestDistributionMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10, 0.5}
	tab, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	const draws = 500000
	counts := make([]int, len(weights))
	r := rng.New(3)
	for i := 0; i < draws; i++ {
		counts[tab.Sample(r)]++
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Errorf("index %d: got prob %.4f, want %.4f", i, got, want)
		}
	}
}

func TestPropertyAllIndicesReachable(t *testing.T) {
	// Any positive weight must be sampled at least once in many draws.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, v := range raw {
			weights[i] = float64(v%16) + 0 // 0..15
			if weights[i] > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return true
		}
		tab, err := New(weights)
		if err != nil {
			return false
		}
		r := rng.New(uint64(len(raw)))
		seen := make([]bool, len(weights))
		for i := 0; i < 20000; i++ {
			seen[tab.Sample(r)] = true
		}
		for i, w := range weights {
			if w > 0 && !seen[i] {
				return false
			}
			if w == 0 && seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	tab, err := New(make([]float64, 100, 100))
	if err == nil {
		t.Fatal("expected error for zero weights")
	}
	tab, err = New([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.MemoryBytes(); got != 3*8+3*4 {
		t.Fatalf("MemoryBytes = %d", got)
	}
	if tab.N() != 3 {
		t.Fatalf("N = %d", tab.N())
	}
}
