// Package alias implements Walker's alias method for O(1) sampling from an
// arbitrary discrete distribution.
//
// SISG's negative sampling draws from the unigram distribution raised to the
// 0.75 power (§III-C of the paper). With vocabularies in the millions, the
// original word2vec approach of materializing a 10^8-entry table costs too
// much memory per worker; the alias method needs exactly 2 words per token
// and still samples in constant time. Each distributed worker in
// internal/dist builds one Table over its local partition ∪ shared hot set,
// mirroring the paper's "every worker maintains its own noise distribution".
package alias

import (
	"errors"

	"sisg/internal/rng"
)

// Table is an immutable alias table. It is safe for concurrent Sample calls
// as long as each caller supplies its own RNG.
type Table struct {
	prob  []float64 // probability of keeping column i rather than its alias
	alias []int32
}

// ErrEmpty is returned when a table is built from no positive weights.
var ErrEmpty = errors.New("alias: no positive weights")

// New builds an alias table from the given non-negative weights. Weights
// need not be normalized. Zero-weight entries are valid and are never
// sampled. An error is returned if the weights sum to zero or any weight is
// negative or NaN.
func New(weights []float64) (*Table, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrEmpty
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 || w != w {
			return nil, errors.New("alias: negative or NaN weight")
		}
		sum += w
	}
	if sum == 0 {
		return nil, ErrEmpty
	}

	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: p[i]*n, split into "small" (<1) and "large" (>=1).
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	scale := float64(n) / sum
	for i, w := range weights {
		scaled[i] = w * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Due to floating point, leftovers get probability 1.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t, nil
}

// Sample draws one index distributed according to the table's weights.
func (t *Table) Sample(r *rng.RNG) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// N returns the number of outcomes.
func (t *Table) N() int { return len(t.prob) }

// MemoryBytes reports the approximate heap footprint of the table, used by
// the distributed engine's accounting.
func (t *Table) MemoryBytes() int {
	return len(t.prob)*8 + len(t.alias)*4
}
