// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the SISG reproduction.
//
// Training skip-gram models draws billions of random numbers (window sizes,
// negative samples, subsampling coin flips). math/rand's global source is a
// mutex-guarded bottleneck under the Hogwild-style parallel trainers in
// internal/sgns and internal/dist, so every goroutine owns its own RNG
// stream derived from a single master seed. Splitting is deterministic:
// the same master seed always yields the same per-worker streams, which
// keeps every experiment in this repository reproducible bit-for-bit on a
// single machine.
package rng

import "math"

// splitmix64 is used both as a stand-alone generator and as the seeding
// procedure for xoshiro256** streams, as recommended by Vigna.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. It is NOT safe for concurrent use; use
// Split to derive independent streams for concurrent workers.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, per the xoshiro
// reference implementation. Any seed, including zero, is valid.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the high 32 bits of the next value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling over the largest multiple of n.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// NormFloat64 returns a standard normal variate using the polar
// Box–Muller transform. A cached spare halves the rejection cost.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// State returns the generator's internal state, for checkpointing. A
// generator restored with SetState produces the identical stream the
// original would have produced from this point on.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a value obtained
// from State. The all-zero state is invalid for xoshiro and is replaced by
// a fixed non-zero state rather than accepted.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}

// Split derives a new independent generator from this one. The derived
// stream is a function of the parent's current state, so calling Split n
// times yields n distinct deterministic streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// It panics if p is not in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric probability out of (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s via inverse-CDF on a precomputed table. For hot loops use
// the Zipf type below instead of this convenience method.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
// Construction is O(n); sampling is O(log n).
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: r}
}

// Sample returns a rank in [0, n), smaller ranks being more likely.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
