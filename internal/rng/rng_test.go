package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 9 dof; p=0.001 critical value ≈ 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square %0.2f too high; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams matched %d/100 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(13).Split()
	b := New(13).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(19)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	const p, n = 0.4, 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // mean of failures before first success
	if mean := sum / n; math.Abs(mean-want) > 0.05 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestZipfMonotone(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 50, 1.0)
	counts := make([]int, 50)
	for i := 0; i < 200000; i++ {
		counts[z.Sample()]++
	}
	// Aggregate into quartiles: each quartile must outdraw the next.
	q := func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		return s
	}
	if !(q(0, 12) > q(12, 25) && q(12, 25) > q(25, 37) && q(25, 37) > q(37, 50)) {
		t.Fatalf("Zipf quartiles not decreasing: %d %d %d %d", q(0, 12), q(12, 25), q(25, 37), q(37, 50))
	}
	if z.N() != 50 {
		t.Fatalf("N() = %d", z.N())
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestZipfSingleOutcome(t *testing.T) {
	z := NewZipf(New(1), 1, 1)
	for i := 0; i < 10; i++ {
		if z.Sample() != 0 {
			t.Fatal("single-outcome Zipf must always return 0")
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	saved := r.State()
	want := make([]uint64, 16)
	for i := range want {
		want[i] = r.Uint64()
	}
	restored := &RNG{}
	restored.SetState(saved)
	for i := range want {
		if got := restored.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverges at %d: %d != %d", i, got, want[i])
		}
	}
}

func TestSetStateRejectsAllZero(t *testing.T) {
	r := &RNG{}
	r.SetState([4]uint64{})
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("all-zero state accepted; generator is stuck")
	}
}
