// Package benchio maintains the repo's bench trajectory files
// (BENCH_*.json): flat JSON arrays of result rows in which each row's
// "bench" field names the section it belongs to. Benches rewrite only
// their own section, so independently re-run benches never clobber each
// other's numbers — the invariant every BENCH file in this repo relies on.
package benchio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// UpdateSection replaces the rows of path whose "bench" field equals
// section with rows (any slice that marshals to a JSON array of objects),
// preserving every other section and its order. A missing file starts
// empty; a file that exists but does not parse is an error — never
// silently clobber a trajectory someone is tracking.
func UpdateSection(path, section string, rows interface{}) error {
	var all []json.RawMessage
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &all); err != nil {
			return fmt.Errorf("existing %s is not a JSON array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	kept := all[:0]
	for i, raw := range all {
		var probe struct {
			Bench string `json:"bench"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return fmt.Errorf("%s row %d is not an object: %w", path, i, err)
		}
		if probe.Bench != section {
			// Compact so MarshalIndent below reformats everything uniformly
			// instead of stacking indentation on already-indented bytes.
			var buf bytes.Buffer
			if err := json.Compact(&buf, raw); err != nil {
				return fmt.Errorf("%s row %d: %w", path, i, err)
			}
			kept = append(kept, json.RawMessage(buf.Bytes()))
		}
	}

	nb, err := json.Marshal(rows)
	if err != nil {
		return err
	}
	var fresh []json.RawMessage
	if err := json.Unmarshal(nb, &fresh); err != nil {
		return fmt.Errorf("replacement rows are not a JSON array: %w", err)
	}
	out, err := json.MarshalIndent(append(kept, fresh...), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
