package benchio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type row struct {
	Bench string  `json:"bench"`
	Label string  `json:"label"`
	Value float64 `json:"value"`
}

func readRows(t *testing.T, path string) []row {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rs []row
	if err := json.Unmarshal(b, &rs); err != nil {
		t.Fatalf("%s does not parse: %v\n%s", path, err, b)
	}
	return rs
}

// Rewriting one section must preserve every other section, in order, and
// a missing file must start empty instead of failing.
func TestUpdateSectionPreservesOthers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")

	if err := UpdateSection(path, "a", []row{{Bench: "a", Label: "a1", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := UpdateSection(path, "b", []row{{Bench: "b", Label: "b1", Value: 2}, {Bench: "b", Label: "b2", Value: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := UpdateSection(path, "a", []row{{Bench: "a", Label: "a2", Value: 9}}); err != nil {
		t.Fatal(err)
	}

	got := readRows(t, path)
	want := []row{{"b", "b1", 2}, {"b", "b2", 3}, {"a", "a2", 9}}
	if len(got) != len(want) {
		t.Fatalf("rows %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Unknown fields in preserved sections must survive a rewrite of another
// section — the helper is generic over row schemas.
func TestUpdateSectionKeepsForeignFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	seed := `[{"bench":"ann","nprobe":8,"recall_at_10":0.97}]`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := UpdateSection(path, "serving", []row{{Bench: "serving", Label: "s", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw []map[string]interface{}
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	if len(raw) != 2 || raw[0]["nprobe"] != float64(8) || raw[0]["recall_at_10"] != 0.97 {
		t.Fatalf("foreign section mangled: %s", b)
	}
}

// A file that exists but is not a JSON array must be refused, not
// overwritten.
func TestUpdateSectionRefusesGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := UpdateSection(path, "a", []row{}); err == nil {
		t.Fatal("garbage file accepted")
	}
	if b, _ := os.ReadFile(path); string(b) != "not json" {
		t.Fatalf("garbage file was clobbered: %q", b)
	}
}
