package abtest

import (
	"bytes"
	"strings"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/knn"
)

func tinyDS(t *testing.T) *corpus.Dataset {
	t.Helper()
	cfg := corpus.Tiny()
	cfg.NumSessions = 300
	ds, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallConfig() Config {
	return Config{Days: 3, ImpressionsPerDay: 500, Candidates: 20, Shown: 4, Seed: 1}
}

// oracleArm returns ground-truth-adjacent candidates: the forward lane of
// the query plus the funnel hubs — close to the best possible matcher.
func oracleArm(ds *corpus.Dataset) CandidateFunc {
	return func(q, user int32, k int) []knn.Result {
		leaf := ds.Catalog.LeafOf(q)
		items := ds.Catalog.LeafItems[leaf]
		rank := int(ds.Catalog.RankInLeaf[q])
		var out []knn.Result
		for i := 1; len(out) < k && rank+i < len(items); i++ {
			out = append(out, knn.Result{ID: items[rank+i], Score: float32(k - len(out))})
		}
		g := ds.Pop.Types[user].Gender
		next := ds.Catalog.AccessoryLeaf(leaf, g)
		for _, id := range ds.Catalog.LeafItems[next] {
			if len(out) >= k {
				break
			}
			out = append(out, knn.Result{ID: id, Score: 1})
		}
		return out
	}
}

// junkArm returns fixed irrelevant candidates.
func junkArm(ds *corpus.Dataset) CandidateFunc {
	return func(q, user int32, k int) []knn.Result {
		out := make([]knn.Result, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, knn.Result{ID: int32(i), Score: 1})
		}
		return out
	}
}

func TestErrors(t *testing.T) {
	ds := tinyDS(t)
	if _, err := Run(ds, nil, smallConfig()); err == nil {
		t.Error("no arms accepted")
	}
	arms := map[string]CandidateFunc{"a": junkArm(ds)}
	bad := smallConfig()
	bad.Days = 0
	if _, err := Run(ds, arms, bad); err == nil {
		t.Error("Days=0 accepted")
	}
	bad = smallConfig()
	bad.Shown = 30 // > Candidates
	if _, err := Run(ds, arms, bad); err == nil {
		t.Error("Shown > Candidates accepted")
	}
}

func TestOracleBeatsJunk(t *testing.T) {
	ds := tinyDS(t)
	arms := map[string]CandidateFunc{
		"oracle": oracleArm(ds),
		"junk":   junkArm(ds),
	}
	res, err := Run(ds, arms, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 3 {
		t.Fatalf("%d days", len(res.Days))
	}
	if res.MeanCTR("oracle") <= res.MeanCTR("junk") {
		t.Fatalf("oracle CTR %.4f not above junk %.4f",
			res.MeanCTR("oracle"), res.MeanCTR("junk"))
	}
	if res.Improvement("oracle", "junk") <= 0 {
		t.Fatal("improvement not positive")
	}
}

func TestCTRBounds(t *testing.T) {
	ds := tinyDS(t)
	arms := map[string]CandidateFunc{"oracle": oracleArm(ds)}
	res, err := Run(ds, arms, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Days {
		ctr := d.CTR["oracle"]
		if ctr < 0 || ctr > 1 {
			t.Fatalf("day %d CTR %v", d.Day, ctr)
		}
		if d.Imps != smallConfig().ImpressionsPerDay {
			t.Fatalf("day %d imps %d", d.Day, d.Imps)
		}
	}
}

func TestDeterminism(t *testing.T) {
	ds := tinyDS(t)
	arms := map[string]CandidateFunc{"oracle": oracleArm(ds)}
	a, err := Run(ds, arms, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Regenerate dataset so the generator stream restarts identically.
	ds2 := tinyDS(t)
	arms2 := map[string]CandidateFunc{"oracle": oracleArm(ds2)}
	b, err := Run(ds2, arms2, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Days {
		if a.Days[i].CTR["oracle"] != b.Days[i].CTR["oracle"] {
			t.Fatal("A/B simulation not deterministic")
		}
	}
}

func TestWriteSeries(t *testing.T) {
	ds := tinyDS(t)
	arms := map[string]CandidateFunc{
		"CF":   junkArm(ds),
		"SISG": oracleArm(ds),
	}
	res, err := Run(ds, arms, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteSeries(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "Day") || !strings.Contains(out, "improvement") {
		t.Fatalf("series output malformed:\n%s", out)
	}
}

func TestClickProbBounds(t *testing.T) {
	ds := tinyDS(t)
	shown := []int32{0, 1, 2, 3}
	p := clickProb(ds, shown, 0, 0)
	if p <= 0 || p >= 1 {
		t.Fatalf("click prob %v", p)
	}
	// Showing the true next item must beat not showing it.
	pMiss := clickProb(ds, []int32{5, 6, 7, 8}, 0, 0)
	if p <= pMiss {
		t.Fatalf("hit prob %v not above miss prob %v", p, pMiss)
	}
}
