// Package tsne implements exact t-SNE (van der Maaten & Hinton, 2008), the
// algorithm the paper uses to visualize user-type embeddings (Figure 5).
//
// The implementation is the standard recipe: perplexity-calibrated Gaussian
// input affinities via per-point binary search, symmetrized and normalized
// P, Student-t output affinities, KL-divergence gradient descent with
// momentum, early exaggeration and gain adaptation. Exact O(n²) pairwise
// computation is used — the paper plots ~50k points; we plot the few
// thousand user types of the synthetic population, where exact beats
// Barnes–Hut below ~10k points anyway.
//
// Because a 2-D scatter cannot be committed to a test log, the Figure 5
// reproduction reports quantitative cluster separation instead: the
// silhouette score of the embedding under the gender and age labellings
// ("'male' and 'female' user type vectors concentrate in different regions
// ... within each region, clusters corresponding to different age groups").
package tsne

import (
	"errors"
	"math"

	"sisg/internal/rng"
)

// Options configures a t-SNE run.
type Options struct {
	Perplexity    float64 // effective number of neighbours (5–50)
	Iterations    int
	LearningRate  float64
	Momentum      float64 // after the switch iteration
	InitMomentum  float64
	Exaggeration  float64 // early exaggeration factor
	ExaggerateFor int     // iterations under exaggeration
	Seed          uint64
}

// Defaults mirrors the reference implementation's settings.
func Defaults() Options {
	return Options{
		Perplexity:    30,
		Iterations:    400,
		LearningRate:  200,
		Momentum:      0.8,
		InitMomentum:  0.5,
		Exaggeration:  4,
		ExaggerateFor: 100,
		Seed:          1,
	}
}

// Embed projects the n×d float32 row-major matrix X into n 2-D points.
func Embed(x [][]float32, opt Options) ([][2]float64, error) {
	n := len(x)
	if n < 4 {
		return nil, errors.New("tsne: need at least 4 points")
	}
	if opt.Perplexity <= 0 || opt.Perplexity >= float64(n) {
		return nil, errors.New("tsne: perplexity out of range")
	}
	if opt.Iterations <= 0 {
		return nil, errors.New("tsne: Iterations must be positive")
	}

	p := affinities(x, opt.Perplexity)
	// Symmetrize and normalize; apply early exaggeration.
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := p[i][j] + p[j][i]
			p[i][j] = v
			p[j][i] = v
			sum += 2 * v
		}
		p[i][i] = 0
	}
	if sum == 0 {
		return nil, errors.New("tsne: degenerate affinities")
	}
	for i := range p {
		for j := range p[i] {
			p[i][j] = math.Max(p[i][j]/sum, 1e-12) * opt.Exaggeration
		}
	}

	r := rng.New(opt.Seed)
	y := make([][2]float64, n)
	vel := make([][2]float64, n)
	gains := make([][2]float64, n)
	for i := range y {
		y[i][0] = r.NormFloat64() * 1e-4
		y[i][1] = r.NormFloat64() * 1e-4
		gains[i] = [2]float64{1, 1}
	}

	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	grad := make([][2]float64, n)

	for iter := 0; iter < opt.Iterations; iter++ {
		if iter == opt.ExaggerateFor {
			for i := range p {
				for j := range p[i] {
					p[i][j] /= opt.Exaggeration
				}
			}
		}
		// Student-t affinities Q.
		qsum := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				num := 1 / (1 + dx*dx + dy*dy)
				q[i][j] = num
				q[j][i] = num
				qsum += 2 * num
			}
		}
		// Gradient dKL/dy.
		for i := 0; i < n; i++ {
			grad[i] = [2]float64{}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := (p[i][j] - q[i][j]/qsum) * q[i][j]
				grad[i][0] += 4 * mult * (y[i][0] - y[j][0])
				grad[i][1] += 4 * mult * (y[i][1] - y[j][1])
			}
		}
		mom := opt.InitMomentum
		if iter >= 20 {
			mom = opt.Momentum
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 2; d++ {
				if (grad[i][d] > 0) == (vel[i][d] > 0) {
					gains[i][d] = math.Max(gains[i][d]*0.8, 0.01)
				} else {
					gains[i][d] += 0.2
				}
				vel[i][d] = mom*vel[i][d] - opt.LearningRate*gains[i][d]*grad[i][d]
				y[i][d] += vel[i][d]
			}
		}
		// Re-center.
		var cx, cy float64
		for i := range y {
			cx += y[i][0]
			cy += y[i][1]
		}
		cx /= float64(n)
		cy /= float64(n)
		for i := range y {
			y[i][0] -= cx
			y[i][1] -= cy
		}
	}
	return y, nil
}

// affinities returns the row-conditional Gaussian affinities P_{j|i} with
// per-row bandwidths found by binary search on the target perplexity.
func affinities(x [][]float32, perplexity float64) [][]float64 {
	n := len(x)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for k := range x[i] {
				diff := float64(x[i][k] - x[j][k])
				s += diff * diff
			}
			d2[i][j] = s
			d2[j][i] = s
		}
	}
	logU := math.Log(perplexity)
	p := make([][]float64, n)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 0.0, math.Inf(1)
		beta := 1.0
		for iter := 0; iter < 50; iter++ {
			var sum, dSum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				v := math.Exp(-d2[i][j] * beta)
				p[i][j] = v
				sum += v
				dSum += d2[i][j] * v
			}
			if sum == 0 {
				sum = 1e-300
			}
			// Shannon entropy of the row distribution.
			h := math.Log(sum) + beta*dSum/sum
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				lo = beta
				if math.IsInf(hi, 1) {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += p[i][j]
		}
		if sum > 0 {
			for j := 0; j < n; j++ {
				p[i][j] /= sum
			}
		}
	}
	return p
}

// Silhouette computes the mean silhouette coefficient of the 2-D embedding
// under the given integer labels: ~1 means tight, well-separated clusters;
// ~0 overlapping; negative misassigned. This is the quantitative stand-in
// for "eyeballing" Figure 5.
func Silhouette(y [][2]float64, labels []int) float64 {
	n := len(y)
	if n != len(labels) || n == 0 {
		return 0
	}
	dist := func(a, b int) float64 {
		dx := y[a][0] - y[b][0]
		dy := y[a][1] - y[b][1]
		return math.Sqrt(dx*dx + dy*dy)
	}
	// Mean distance from i to every label group.
	var total float64
	counted := 0
	for i := 0; i < n; i++ {
		sums := map[int]float64{}
		counts := map[int]int{}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sums[labels[j]] += dist(i, j)
			counts[labels[j]]++
		}
		own := labels[i]
		if counts[own] == 0 {
			continue
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for l, c := range counts {
			if l == own || c == 0 {
				continue
			}
			if m := sums[l] / float64(c); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
