package tsne

import (
	"math"
	"testing"

	"sisg/internal/rng"
)

// twoClusters builds n points per cluster around two well-separated
// centers in dim dimensions.
func twoClusters(n, dim int, seed uint64) ([][]float32, []int) {
	r := rng.New(seed)
	var x [][]float32
	var labels []int
	for c := 0; c < 2; c++ {
		center := float32(c) * 10
		for i := 0; i < n; i++ {
			v := make([]float32, dim)
			for d := range v {
				v[d] = center + float32(r.NormFloat64())*0.5
			}
			x = append(x, v)
			labels = append(labels, c)
		}
	}
	return x, labels
}

func TestEmbedErrors(t *testing.T) {
	x, _ := twoClusters(2, 3, 1)
	if _, err := Embed(x[:3], Defaults()); err == nil {
		t.Error("too few points accepted")
	}
	opt := Defaults()
	opt.Perplexity = 0
	if _, err := Embed(x, opt); err == nil {
		t.Error("zero perplexity accepted")
	}
	opt = Defaults()
	opt.Perplexity = 1000
	if _, err := Embed(x, opt); err == nil {
		t.Error("perplexity >= n accepted")
	}
	opt = Defaults()
	opt.Iterations = 0
	if _, err := Embed(x, opt); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestEmbedSeparatesClusters(t *testing.T) {
	x, labels := twoClusters(30, 8, 7)
	opt := Defaults()
	opt.Perplexity = 10
	opt.Iterations = 250
	y, err := Embed(x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(x) {
		t.Fatalf("got %d points", len(y))
	}
	for i, p := range y {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			t.Fatalf("point %d is NaN", i)
		}
	}
	s := Silhouette(y, labels)
	if s < 0.5 {
		t.Fatalf("silhouette %.3f too low — clusters not separated", s)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	x, _ := twoClusters(10, 4, 3)
	opt := Defaults()
	opt.Perplexity = 5
	opt.Iterations = 50
	a, err := Embed(x, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(x, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("t-SNE not deterministic for fixed seed")
		}
	}
}

func TestSilhouette(t *testing.T) {
	// Two tight, far-apart groups: silhouette near 1.
	y := [][2]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	labels := []int{0, 0, 1, 1}
	if s := Silhouette(y, labels); s < 0.9 {
		t.Fatalf("ideal silhouette = %v", s)
	}
	// Swapped labels: strongly negative.
	if s := Silhouette(y, []int{0, 1, 0, 1}); s > -0.3 {
		t.Fatalf("misassigned silhouette = %v", s)
	}
	// Degenerate inputs.
	if Silhouette(nil, nil) != 0 {
		t.Fatal("empty silhouette")
	}
	if Silhouette(y, []int{0, 0, 0, 0}) != 0 {
		t.Fatal("single-label silhouette should be 0")
	}
}
