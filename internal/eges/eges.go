// Package eges reimplements the paper's previous production system —
// Enhanced Graph Embedding with Side information (Wang et al., KDD 2018) —
// as the Table III baseline.
//
// EGES differs from SISG in exactly the ways §II-D criticizes:
//
//   - It first collapses behaviour sequences into an item co-occurrence
//     graph (losing the user link, so no user metadata) and trains on
//     DeepWalk-style random walks over that graph.
//   - Item SI enters through the model, not the corpus: an item's input
//     representation is the attention-weighted average of its own vector
//     and its SI vectors, H_i = Σ_j softmax(a_i)_j · W_j. SI values have no
//     output vectors, which is the expressiveness gap §IV-A points out.
//   - Windows are symmetric; behavioural asymmetry is ignored.
//
// Serving-time similarity is cosine between aggregated embeddings H_i.
package eges

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"sisg/internal/alias"
	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/knn"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

// Options configures EGES training.
type Options struct {
	Dim          int
	Window       int     // symmetric window over walk positions
	Negatives    int     // negative samples per positive pair
	Epochs       int     // passes over the walk corpus
	LR           float32 // initial learning rate, linearly decayed
	MinLRFrac    float32
	WalksPerNode int
	WalkLength   int
	NoiseAlpha   float64
	Workers      int
	Seed         uint64
}

// Defaults mirrors the sgns defaults where the concepts coincide.
func Defaults() Options {
	return Options{
		Dim:          32,
		Window:       5,
		Negatives:    5,
		Epochs:       2,
		LR:           0.025,
		MinLRFrac:    1e-4,
		WalksPerNode: 2,
		WalkLength:   10,
		NoiseAlpha:   0.75,
		Seed:         1,
	}
}

// Validate reports the first invalid option.
func (o *Options) Validate() error {
	switch {
	case o.Dim <= 0:
		return errors.New("eges: Dim must be positive")
	case o.Window <= 0:
		return errors.New("eges: Window must be positive")
	case o.Negatives < 0:
		return errors.New("eges: Negatives must be non-negative")
	case o.Epochs <= 0:
		return errors.New("eges: Epochs must be positive")
	case o.LR <= 0:
		return errors.New("eges: LR must be positive")
	case o.WalksPerNode <= 0 || o.WalkLength < 2:
		return errors.New("eges: walk parameters out of range")
	case o.NoiseAlpha <= 0:
		return errors.New("eges: NoiseAlpha must be positive")
	}
	return nil
}

// Model is a trained EGES model.
type Model struct {
	Dict *corpus.Dict
	// In holds input vectors for all dictionary tokens (items use their own
	// row; SI vectors are shared across items, as in EGES). Out holds
	// output vectors for ITEMS only (SI has none — the §IV-A observation).
	In  *emb.Matrix
	Out *emb.Matrix
	// Attn holds per-item attention logits over {item, SI_1..SI_n}.
	Attn [][1 + corpus.NumSIColumns]float32
	// H is the aggregated per-item embedding, materialized after training.
	H *emb.Matrix

	Stats Stats

	index *knn.Index
}

// Stats reports training effort.
type Stats struct {
	Walks   int
	Pairs   uint64
	Elapsed time.Duration
}

// Walker abstracts the random-walk corpus source (satisfied by
// *graph.Graph's WalkCorpus via a small adapter in the caller, or any
// precomputed [][]int32).
type Walker interface {
	WalkCorpus(walksPerNode, walkLength int, seed uint64) [][]int32
}

// Train builds the walk corpus from the item graph and trains EGES.
func Train(d *corpus.Dict, g Walker, opt Options) (*Model, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	walks := g.WalkCorpus(opt.WalksPerNode, opt.WalkLength, opt.Seed^0xe9e5)
	if len(walks) == 0 {
		return nil, errors.New("eges: empty walk corpus")
	}
	return TrainOnWalks(d, walks, opt)
}

// TrainOnWalks trains EGES on a precomputed walk corpus.
func TrainOnWalks(d *corpus.Dict, walks [][]int32, opt Options) (*Model, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	numItems := d.NumItems
	master := rng.New(opt.Seed)

	m := &Model{
		Dict: d,
		In:   emb.NewMatrix(d.Len(), opt.Dim),
		Out:  emb.NewMatrix(numItems, opt.Dim),
		Attn: make([][1 + corpus.NumSIColumns]float32, numItems),
	}
	inv := 1 / float32(opt.Dim)
	data := m.In.Data()
	for i := range data {
		data[i] = (master.Float32() - 0.5) * inv
	}
	// Start attention with the item's own vector dominant (~50% weight vs
	// ~6% each SI): aggregation should begin near plain DeepWalk and let
	// training shift weight toward SI where the item is data-starved.
	for i := range m.Attn {
		m.Attn[i][0] = 2
	}

	// Noise distribution over items by walk frequency^alpha.
	counts := make([]uint64, numItems)
	var totalTokens uint64
	for _, w := range walks {
		for _, v := range w {
			counts[v]++
		}
		totalTokens += uint64(len(w))
	}
	weights := make([]float64, numItems)
	for i, c := range counts {
		if c > 0 {
			weights[i] = math.Pow(float64(c), opt.NoiseAlpha)
		}
	}
	noise, err := alias.New(weights)
	if err != nil {
		return nil, fmt.Errorf("eges: noise distribution: %w", err)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(walks) {
		workers = len(walks)
	}
	total := totalTokens * uint64(opt.Epochs)

	start := time.Now()
	var wg sync.WaitGroup
	var pairsTotal sync.Mutex
	var pairsSum uint64
	var doneTokens uint64
	var doneMu sync.Mutex
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(shard int, r *rng.RNG) {
			defer wg.Done()
			st := trainerState{
				m: m, opt: &opt, r: r, noise: noise,
				h:    make([]float32, opt.Dim),
				dh:   make([]float32, opt.Dim),
				alph: make([]float32, 1+corpus.NumSIColumns),
			}
			for ep := 0; ep < opt.Epochs; ep++ {
				for i := shard; i < len(walks); i += workers {
					doneMu.Lock()
					doneTokens += uint64(len(walks[i]))
					done := doneTokens
					doneMu.Unlock()
					f := 1 - float32(float64(done)/float64(total))
					if f < opt.MinLRFrac {
						f = opt.MinLRFrac
					}
					st.lr = opt.LR * f
					st.trainWalk(walks[i])
				}
			}
			pairsTotal.Lock()
			pairsSum += st.pairs
			pairsTotal.Unlock()
		}(wk, master.Split())
	}
	wg.Wait()

	m.Stats = Stats{Walks: len(walks), Pairs: pairsSum, Elapsed: time.Since(start)}
	m.materializeH()
	return m, nil
}

type trainerState struct {
	m     *Model
	opt   *Options
	r     *rng.RNG
	noise *alias.Table
	h     []float32 // aggregated input embedding H_i
	dh    []float32 // gradient w.r.t. H_i
	alph  []float32 // softmax attention weights
	lr    float32
	pairs uint64
}

// aggregate computes H_i and the softmax weights for item i into st.h and
// st.alph.
func (st *trainerState) aggregate(item int32) {
	m := st.m
	si := m.Dict.ItemSI[item]
	a := &m.Attn[item]
	var sum float32
	for j := range st.alph {
		e := float32(math.Exp(float64(a[j])))
		st.alph[j] = e
		sum += e
	}
	invSum := 1 / sum
	vecmath.Zero(st.h)
	vecmath.Axpy(st.alph[0]*invSum, m.In.Row(item), st.h)
	for k, sid := range si {
		vecmath.Axpy(st.alph[k+1]*invSum, m.In.Row(sid), st.h)
	}
	for j := range st.alph {
		st.alph[j] *= invSum
	}
}

func (st *trainerState) trainWalk(walk []int32) {
	opt := st.opt
	for i := range walk {
		win := 1 + st.r.Intn(opt.Window)
		lo, hi := i-win, i+win
		if lo < 0 {
			lo = 0
		}
		if hi >= len(walk) {
			hi = len(walk) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			st.trainPair(walk[i], walk[j])
		}
	}
}

// trainPair applies one EGES update for (target item i, context item c).
func (st *trainerState) trainPair(item, ctx int32) {
	m := st.m
	opt := st.opt
	st.aggregate(item)
	vecmath.Zero(st.dh)

	step := func(c int32, label float32) {
		out := m.Out.Row(c)
		g := (label - vecmath.Sigmoid(vecmath.Dot(st.h, out))) * st.lr
		vecmath.Axpy(g, out, st.dh)
		vecmath.Axpy(g, st.h, out)
	}
	step(ctx, 1)
	for n := 0; n < opt.Negatives; n++ {
		t := int32(st.noise.Sample(st.r))
		if t == ctx {
			continue
		}
		step(t, 0)
	}

	// Backprop dh into the item vector, SI vectors and attention logits:
	// H = Σ α_j W_j ⇒ ∂L/∂W_j = α_j·dh, ∂L/∂a_j = α_j(dh·W_j − dh·H).
	si := m.Dict.ItemSI[item]
	dhH := vecmath.Dot(st.dh, st.h)
	a := &m.Attn[item]
	rows := [1 + corpus.NumSIColumns]int32{item}
	copy(rows[1:], si[:])
	for j, row := range rows {
		w := m.In.Row(row)
		dhW := vecmath.Dot(st.dh, w)
		vecmath.Axpy(st.alph[j], st.dh, w)
		// Attention updates share the pair's learning rate; gradients are
		// already scaled by lr through dh.
		a[j] += st.alph[j] * (dhW - dhH)
	}
	st.pairs++
}

// materializeH computes the final aggregated embeddings for serving.
func (m *Model) materializeH() {
	dim := m.In.Dim
	m.H = emb.NewMatrix(len(m.Attn), dim)
	st := trainerState{m: m, h: make([]float32, dim), alph: make([]float32, 1+corpus.NumSIColumns)}
	for i := range m.Attn {
		st.aggregate(int32(i))
		copy(m.H.Row(int32(i)), st.h)
	}
}

// Index returns (building on first use) the cosine retrieval index over
// aggregated embeddings.
func (m *Model) Index() *knn.Index {
	if m.index == nil {
		m.index = knn.NewIndex(m.H, len(m.Attn), true)
	}
	return m.index
}

// Similar returns the top-k items most similar to query by cosine over H.
func (m *Model) Similar(ctx context.Context, query int32, k int) ([]knn.Result, error) {
	return m.Index().Query(ctx, m.H.Row(query), knn.Options{
		K:         k,
		Normalize: true,
		Skip:      func(id int32) bool { return id == query },
	})
}
