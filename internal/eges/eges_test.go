package eges

import (
	"context"
	"math"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/graph"
	"sisg/internal/vecmath"
)

func testOptions() Options {
	o := Defaults()
	o.Dim = 16
	o.Epochs = 3
	o.Workers = 1
	return o
}

func TestValidate(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Dim = 0 },
		func(o *Options) { o.Window = 0 },
		func(o *Options) { o.Negatives = -1 },
		func(o *Options) { o.Epochs = 0 },
		func(o *Options) { o.LR = 0 },
		func(o *Options) { o.WalksPerNode = 0 },
		func(o *Options) { o.WalkLength = 1 },
		func(o *Options) { o.NoiseAlpha = 0 },
	}
	for i, mutate := range bad {
		o := Defaults()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func tinyEGES(t *testing.T) (*corpus.Dataset, *Model) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromSessions(ds.Sessions, ds.Dict.NumItems)
	m, err := Train(ds.Dict, g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ds, m
}

func TestTrainShapes(t *testing.T) {
	ds, m := tinyEGES(t)
	if m.In.Rows() != ds.Dict.Len() {
		t.Fatalf("In rows %d", m.In.Rows())
	}
	if m.Out.Rows() != ds.Dict.NumItems {
		t.Fatalf("Out rows %d (SI must have no output vectors)", m.Out.Rows())
	}
	if len(m.Attn) != ds.Dict.NumItems {
		t.Fatalf("Attn rows %d", len(m.Attn))
	}
	if m.H.Rows() != ds.Dict.NumItems {
		t.Fatalf("H rows %d", m.H.Rows())
	}
	if m.Stats.Pairs == 0 || m.Stats.Walks == 0 {
		t.Fatalf("no training: %+v", m.Stats)
	}
}

func TestAggregationIsConvexCombination(t *testing.T) {
	_, m := tinyEGES(t)
	st := trainerState{m: m, h: make([]float32, m.In.Dim), alph: make([]float32, 1+corpus.NumSIColumns)}
	st.aggregate(5)
	// Softmax weights sum to 1.
	var sum float32
	for _, a := range st.alph {
		if a < 0 || a > 1 {
			t.Fatalf("attention weight out of range: %v", a)
		}
		sum += a
	}
	if math.Abs(float64(sum)-1) > 1e-4 {
		t.Fatalf("attention weights sum to %v", sum)
	}
	// H equals the weighted sum of the constituent rows.
	want := make([]float32, m.In.Dim)
	vecmath.Axpy(st.alph[0], m.In.Row(5), want)
	for k, sid := range m.Dict.ItemSI[5] {
		vecmath.Axpy(st.alph[k+1], m.In.Row(sid), want)
	}
	for i := range want {
		if math.Abs(float64(want[i]-st.h[i])) > 1e-5 {
			t.Fatal("H is not the attention-weighted sum")
		}
	}
}

func TestSimilarLeafCoherence(t *testing.T) {
	ds, m := tinyEGES(t)
	// Hot item's neighbours should mostly share its top category.
	query := int32(0)
	var best uint64
	for i := 0; i < ds.Dict.NumItems; i++ {
		if c := ds.Dict.Count(int32(i)); c > best {
			best, query = c, int32(i)
		}
	}
	recs, err := m.Similar(context.Background(), query, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, r := range recs {
		if r.ID == query {
			t.Fatal("query in its own results")
		}
		if ds.Catalog.Items[r.ID].Top == ds.Catalog.Items[query].Top {
			same++
		}
	}
	if same < 5 {
		t.Fatalf("EGES neighbours incoherent: %d/10", same)
	}
}

func TestAttentionFinite(t *testing.T) {
	_, m := tinyEGES(t)
	for i := range m.Attn {
		for _, a := range m.Attn[i] {
			if a != a || float64(a) > 1e6 || float64(a) < -1e6 {
				t.Fatalf("attention logit diverged: item %d = %v", i, m.Attn[i])
			}
		}
	}
}

func TestEmptyWalksError(t *testing.T) {
	ds, err := corpus.Generate(corpus.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(ds.Dict.NumItems) // no edges
	g.Finalize()
	if _, err := Train(ds.Dict, g, testOptions()); err == nil {
		t.Fatal("empty walk corpus accepted")
	}
}
