package model

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sisg/internal/knn"
)

// stub is a minimal Snapshot whose retrieval answers encode its generation,
// so readers can prove which model answered them.
type stub struct {
	gen uint64
	at  time.Time
}

func (s *stub) Generation() uint64     { return s.gen }
func (s *stub) PublishedAt() time.Time { return s.at }
func (s *stub) Variant() string        { return "stub" }
func (s *stub) Dim() int               { return 1 }
func (s *stub) VocabSize() int         { return 1 }
func (s *stub) NumItems() int          { return 1 }
func (s *stub) Servable(int32) bool    { return true }
func (s *stub) Index() *knn.Index      { return nil }
func (s *stub) Similar(_ context.Context, seeds []int32, opts knn.Options) ([][]knn.Result, error) {
	out := make([][]knn.Result, len(seeds))
	for i := range seeds {
		out[i] = []knn.Result{{ID: 0, Score: float32(s.gen)}}
	}
	return out, nil
}
func (s *stub) SimilarToVector(context.Context, []float32, int, func(int32) bool) ([]knn.Result, error) {
	return nil, nil
}
func (s *stub) ColdItemVector(int32) ([]float32, error)             { return nil, nil }
func (s *stub) ColdItemVectorFromNames([]string) ([]float32, error) { return nil, nil }
func (s *stub) RecommendForColdUser(context.Context, []int32, int) ([]knn.Result, error) {
	return nil, nil
}

func TestHolderPinsAcrossPublish(t *testing.T) {
	h := NewHolder(&stub{gen: 1})
	snap, release := h.Acquire()
	if snap.Generation() != 1 {
		t.Fatalf("acquired generation %d, want 1", snap.Generation())
	}
	h.Publish(&stub{gen: 2})
	// The pinned snapshot must be unchanged and still usable.
	if snap.Generation() != 1 {
		t.Fatalf("pinned snapshot changed generation to %d", snap.Generation())
	}
	if h.Generation() != 2 {
		t.Fatalf("holder generation %d, want 2", h.Generation())
	}
	if got := h.LiveGenerations(); got != 2 {
		t.Fatalf("live generations %d, want 2 (one pinned, one current)", got)
	}
	release()
	if got := h.LiveGenerations(); got != 1 {
		t.Fatalf("live generations after release %d, want 1", got)
	}
	if got := h.Retired(); got != 1 {
		t.Fatalf("retired %d, want 1", got)
	}
	// Release is idempotent.
	release()
	if got := h.Retired(); got != 1 {
		t.Fatalf("retired after double release %d, want 1", got)
	}
}

func TestHolderRetiresDisplacedUnpinnedSnapshot(t *testing.T) {
	var retired []uint64
	h := NewHolder(&stub{gen: 1})
	h.SetOnRetire(func(s Snapshot) { retired = append(retired, s.Generation()) })
	h.Publish(&stub{gen: 2})
	h.Publish(&stub{gen: 3})
	if len(retired) != 2 || retired[0] != 1 || retired[1] != 2 {
		t.Fatalf("retired %v, want [1 2]", retired)
	}
	if h.Swaps() != 2 {
		t.Fatalf("swaps %d, want 2", h.Swaps())
	}
}

func TestHolderRejectsNonMonotonicGeneration(t *testing.T) {
	h := NewHolder(&stub{gen: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("Publish with a stale generation did not panic")
		}
	}()
	h.Publish(&stub{gen: 5})
}

// TestHolderConcurrentAcquirePublish hammers Acquire from many goroutines
// while a publisher swaps snapshots as fast as it can. Every reader must
// see an internally consistent snapshot, and when the dust settles exactly
// one generation must remain live. Run with -race.
func TestHolderConcurrentAcquirePublish(t *testing.T) {
	const (
		readers   = 8
		publishes = 500
	)
	h := NewHolder(&stub{gen: 1})
	var retiredCount atomic.Uint64
	h.SetOnRetire(func(Snapshot) { retiredCount.Add(1) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, release := h.Acquire()
				g := snap.Generation()
				rs, err := snap.Similar(context.Background(), []int32{0}, knn.Options{K: 1})
				if err != nil || uint64(rs[0][0].Score) != g {
					t.Errorf("torn read: snapshot gen %d answered %v, %v", g, rs, err)
					release()
					return
				}
				release()
			}
		}()
	}
	for g := uint64(2); g < 2+publishes; g++ {
		h.Publish(&stub{gen: g})
	}
	close(stop)
	wg.Wait()

	if got := h.LiveGenerations(); got != 1 {
		t.Fatalf("live generations %d, want 1", got)
	}
	if got := retiredCount.Load(); got != publishes {
		t.Fatalf("retired %d generations, want %d", got, publishes)
	}
	if got := h.Readers(); got != 0 {
		t.Fatalf("readers %d, want 0", got)
	}
	if h.Generation() != 1+publishes {
		t.Fatalf("final generation %d, want %d", h.Generation(), 1+publishes)
	}
}
