// Package model defines the serving-side contract between trainers and the
// HTTP tier: a Snapshot is one immutable, generation-stamped view of the
// model — embeddings, vocabulary, retrieval index and SI composition in a
// single atomic value — and a Holder swaps snapshots RCU-style under live
// traffic.
//
// The paper's pipeline (§III) re-trains and re-publishes embeddings on a
// schedule; the streaming path in this repository publishes far more often.
// Either way the serving tier must never observe a half-updated model: a
// request pins the snapshot it starts on and keeps it for its whole
// lifetime, a publish swaps one pointer, and an old generation is released
// only when its last reader finishes. Readers never block publishers and
// publishers never block readers.
package model

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/knn"
)

// ErrNotServable reports a query for an item the snapshot cannot retrieve
// yet — in streaming mode, an item the admission sketch has not admitted.
// The serving tier maps it to a client outcome (the cold-start path exists
// for exactly this case), never a server error.
var ErrNotServable = errors.New("model: item not servable in this snapshot")

// Snapshot is one immutable view of a servable model. Every method is safe
// for concurrent use and the view never changes: two calls against the same
// Snapshot are answered by the same embeddings, the same vocabulary and the
// same index, no matter how many generations were published in between.
type Snapshot interface {
	// Generation is the monotone publish stamp; each published snapshot's
	// generation is strictly greater than its predecessor's.
	Generation() uint64
	// PublishedAt is the wall time the snapshot was cut.
	PublishedAt() time.Time
	// Variant names the model variant being served (e.g. "SISG-F-U-D").
	Variant() string
	// Dim is the embedding dimension.
	Dim() int
	// VocabSize is the number of tokens (items + SI + user types) the
	// snapshot's embeddings cover.
	VocabSize() int
	// NumItems is how many catalog items the snapshot can retrieve.
	NumItems() int
	// Servable reports whether the item can be retrieved by Similar (it
	// has an embedding row in this snapshot).
	Servable(item int32) bool
	// Index exposes the retrieval index, for cost prediction (admission
	// control) and warm-up; retrieval itself goes through Similar.
	Index() *knn.Index

	// Similar is the unified matching-stage read path: top-opts.K
	// candidates per seed, each seed's own id excluded, under the
	// variant's scoring rule. One seed runs a single scan; several seeds
	// ride the engine's batched scan. Normalize and Skip are owned by the
	// snapshot; Index/NProbe/Quantized select the scan strategy. A seed
	// the snapshot cannot serve fails with ErrNotServable.
	Similar(ctx context.Context, seeds []int32, opts knn.Options) ([][]knn.Result, error)
	// SimilarToVector retrieves for an arbitrary query vector (the
	// cold-start paths compose their queries out-of-vocabulary).
	SimilarToVector(ctx context.Context, qv []float32, k int, skip func(int32) bool) ([]knn.Result, error)
	// ColdItemVector composes an Eq. 6 embedding for a catalog item from
	// its side information alone — the path that makes an item servable
	// before its first gradient step.
	ColdItemVector(item int32) ([]float32, error)
	// ColdItemVectorFromNames is ColdItemVector for an item the catalog
	// does not know, named by raw SI tokens.
	ColdItemVectorFromNames(names []string) ([]float32, error)
	// RecommendForColdUser is §IV-C1: average the matching user-type
	// vectors and retrieve the top-k items.
	RecommendForColdUser(ctx context.Context, types []int32, k int) ([]knn.Result, error)
}

// generation pairs a snapshot with its reference count. The count includes
// one reference owned by the Holder while the generation is current; it is
// dropped at the next Publish, so the generation retires exactly when its
// last in-flight reader finishes (or at the swap, if it had none).
type generation struct {
	snap Snapshot
	refs atomic.Int64
}

// Holder is the RCU-style publication point. Acquire pins the current
// snapshot in a handful of atomic operations and never blocks Publish;
// Publish swaps one pointer and never waits for readers. Publishing is
// single-writer: one goroutine (the trainer's ingest loop) calls Publish,
// any number call Acquire.
type Holder struct {
	cur atomic.Pointer[generation]

	gen     atomic.Uint64 // generation stamp of the current snapshot
	swaps   atomic.Uint64 // publishes that replaced a previous snapshot
	readers atomic.Int64  // snapshot references currently pinned by readers
	live    atomic.Int64  // generations published but not yet retired
	retired atomic.Uint64 // generations fully released

	// onRetire, when set (before traffic starts), observes each retired
	// snapshot; tests use it to prove old generations are released.
	onRetire func(Snapshot)
}

// NewHolder returns a holder serving first. A holder is never empty: the
// serving tier can always pin a snapshot, even mid-publish.
func NewHolder(first Snapshot) *Holder {
	if first == nil {
		panic("model: NewHolder(nil)")
	}
	h := &Holder{}
	g := &generation{snap: first}
	g.refs.Store(1)
	h.cur.Store(g)
	h.gen.Store(first.Generation())
	h.live.Store(1)
	return h
}

// SetOnRetire installs a retirement observer. Call before the holder sees
// concurrent traffic; the hook runs on whichever goroutine drops the last
// reference (a reader's or the publisher's).
func (h *Holder) SetOnRetire(fn func(Snapshot)) { h.onRetire = fn }

// Publish replaces the current snapshot. In-flight readers keep the
// generation they pinned; the old generation retires when its last reader
// releases it. Generations must be strictly increasing — a regression is a
// publisher bug and panics rather than serving time-travel.
func (h *Holder) Publish(s Snapshot) {
	if s == nil {
		panic("model: Publish(nil)")
	}
	if prev := h.gen.Load(); s.Generation() <= prev {
		panic("model: Publish generation not increasing")
	}
	g := &generation{snap: s}
	g.refs.Store(1) // the holder's own reference
	h.live.Add(1)
	h.gen.Store(s.Generation())
	old := h.cur.Swap(g)
	h.swaps.Add(1)
	h.release(old) // drop the holder's reference to the displaced snapshot
}

// Acquire pins the current snapshot and returns it with its release
// function. The release is idempotent and must be called exactly once per
// Acquire (defer it); the snapshot stays fully usable until then, however
// many publishes happen in between.
func (h *Holder) Acquire() (Snapshot, func()) {
	for {
		g := h.cur.Load()
		n := g.refs.Load()
		if n == 0 {
			// This generation was displaced and fully released between our
			// load and now; the pointer already points elsewhere. Retry.
			continue
		}
		// Increment-if-nonzero: a count that reached zero can never rise
		// again (nothing increments from zero), so a successful CAS proves
		// the generation was live for the whole exchange.
		if !g.refs.CompareAndSwap(n, n+1) {
			continue
		}
		h.readers.Add(1)
		var once sync.Once
		release := func() {
			once.Do(func() {
				h.readers.Add(-1)
				h.release(g)
			})
		}
		return g.snap, release
	}
}

func (h *Holder) release(g *generation) {
	if g.refs.Add(-1) == 0 {
		h.live.Add(-1)
		h.retired.Add(1)
		if h.onRetire != nil {
			h.onRetire(g.snap)
		}
	}
}

// Generation returns the stamp of the most recently published snapshot.
func (h *Holder) Generation() uint64 { return h.gen.Load() }

// Swaps returns how many times Publish replaced a previous snapshot.
func (h *Holder) Swaps() uint64 { return h.swaps.Load() }

// Readers returns how many snapshot references are currently pinned.
func (h *Holder) Readers() int64 { return h.readers.Load() }

// LiveGenerations returns how many published generations have not retired
// yet (1 on a quiescent holder: the current one).
func (h *Holder) LiveGenerations() int64 { return h.live.Load() }

// Retired returns how many generations have been fully released.
func (h *Holder) Retired() uint64 { return h.retired.Load() }
