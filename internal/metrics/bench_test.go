package metrics

import (
	"io"
	"testing"
	"time"
)

// The instrumentation hot path must stay a handful of atomic ops: these
// benchmarks keep the per-event cost visible so a regression (a lock on
// Observe, an allocation on Inc) cannot land silently. The CI bench smoke
// job compiles and runs them once.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets())
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v *= 1.7
			if v > 20 {
				v = 0.0001
			}
		}
	})
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := newHistogram(nil)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, path := range []string{"/similar", "/coldstart/item", "/coldstart/user", "/healthz", "/stats"} {
		r.Counter("http_requests_total", "h", L("path", path), L("code", "2xx")).Inc()
		r.Histogram("http_request_duration_seconds", "h", nil, L("path", path)).Observe(0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
