package metrics

import (
	"math"
	"math/rand"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// ---- Histogram properties ----

// Quantile estimates must always fall inside the recorded bucket range:
// for values drawn from [0, maxBound) every quantile lies in [0, top
// finite bound], and for values confined to a single bucket the estimate
// lies inside that bucket's [lower, upper] bounds.
func TestHistogramQuantileWithinBounds(t *testing.T) {
	bounds := []float64{1, 2, 4, 8, 16}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		h := newHistogram(bounds)
		for i := 0; i < 500; i++ {
			h.Observe(r.Float64() * 16)
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < 0 || v > 16 {
				t.Fatalf("trial %d: Quantile(%.2f) = %v out of [0,16]", trial, q, v)
			}
		}
	}

	// All mass in the (2,4] bucket: quantiles must interpolate inside it.
	h := newHistogram(bounds)
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if v := h.Quantile(q); v < 2 || v > 4 {
			t.Fatalf("single-bucket Quantile(%.2f) = %v, want within (2,4]", q, v)
		}
	}

	// Overflow values clamp to the top finite bound.
	h = newHistogram(bounds)
	h.Observe(1e9)
	if v := h.Quantile(0.5); v != 16 {
		t.Fatalf("overflow Quantile = %v, want clamp to 16", v)
	}
}

// Quantile estimates are monotone non-decreasing in q, for arbitrary
// bucket occupancies.
func TestHistogramQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		h := newHistogram([]float64{0.5, 1, 3, 7, 20, 100})
		n := 1 + r.Intn(300)
		for i := 0; i < n; i++ {
			h.Observe(math.Abs(r.NormFloat64()) * 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%v)=%v < Quantile(prev)=%v", trial, q, v, prev)
			}
			prev = v
		}
	}
}

// Counts are conserved under concurrent Observe: N goroutines × M
// observations leave exactly N*M counts in the buckets, and the exact sum
// (each value is 1.0, exactly representable in any summation order). Run
// with -race in CI.
func TestHistogramConcurrentConservation(t *testing.T) {
	const goroutines, perG = 16, 2000
	h := newHistogram([]float64{0.5, 1, 2})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(1.0)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	var inBuckets uint64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", inBuckets, goroutines*perG)
	}
	if got := h.Sum(); got != goroutines*perG {
		t.Fatalf("Sum = %v, want %d", got, goroutines*perG)
	}
	// Every observation was 1.0, which lands in the (0.5,1] bucket.
	if got := h.buckets[1].Load(); got != goroutines*perG {
		t.Fatalf("bucket[1] = %d, want all %d observations", got, goroutines*perG)
	}
}

func TestHistogramEmptyAndValidation(t *testing.T) {
	h := newHistogram(nil) // defaults
	if v := h.Quantile(0.5); v != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

// ---- Registry ----

func TestRegistryIdempotentAndTypeClash(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c1.Add(3)
	if c2 := r.Counter("x_total", "help"); c2 != c1 || c2.Value() != 3 {
		t.Fatal("re-registration did not return the existing counter")
	}
	a := r.Counter("lab_total", "h", L("path", "/a"))
	b := r.Counter("lab_total", "h", L("path", "/b"))
	if a == b {
		t.Fatal("distinct labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestRegistryValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", L("k", "v")).Add(7)
	r.Gauge("g", "h").Set(2.5)
	r.GaugeFunc("gf", "h", func() float64 { return 9 })
	r.Histogram("h_seconds", "h", nil).Observe(0.1)

	for _, tc := range []struct {
		name   string
		labels []Label
		want   float64
	}{
		{"c_total", []Label{L("k", "v")}, 7},
		{"g", nil, 2.5},
		{"gf", nil, 9},
		{"h_seconds", nil, 1},
	} {
		got, ok := r.Value(tc.name, tc.labels...)
		if !ok || got != tc.want {
			t.Fatalf("Value(%s) = %v,%v want %v", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value found an unregistered metric")
	}
}

// GaugeFunc re-registration replaces the function (a fresh training run
// takes over the series).
func TestGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("run_pairs", "h", func() float64 { return 1 })
	r.GaugeFunc("run_pairs", "h", func() float64 { return 2 })
	if v, _ := r.Value("run_pairs"); v != 2 {
		t.Fatalf("replaced GaugeFunc reads %v, want 2", v)
	}
}

// ---- Exposition format ----

// sampleLine matches one Prometheus text-format sample.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?(Inf|[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?))$`)

func TestWritePrometheusFormatAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b help", L("path", "/x")).Add(2)
	r.Counter("b_total", "b help", L("path", "/a")).Inc()
	r.Gauge("a_gauge", "a help").Set(1.25)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	var samples, comments []string
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			comments = append(comments, line)
			continue
		}
		samples = append(samples, line)
		if !sampleLine.MatchString(line) {
			t.Errorf("invalid sample line: %q", line)
		}
	}
	if len(comments) < 3 || len(samples) < 8 {
		t.Fatalf("unexpectedly small output:\n%s", out)
	}

	// Families render sorted: a_gauge before b_total before lat_seconds,
	// and b_total's children sorted by label.
	for _, pair := range [][2]string{
		{"a_gauge 1.25", `b_total{path="/a"} 1`},
		{`b_total{path="/a"} 1`, `b_total{path="/x"} 2`},
		{`b_total{path="/x"} 2`, `lat_seconds_bucket{le="0.1"} 1`},
		{`lat_seconds_bucket{le="+Inf"} 3`, "lat_seconds_sum 5.55"},
		{"lat_seconds_sum 5.55", "lat_seconds_count 3"},
	} {
		i, j := strings.Index(out, pair[0]), strings.Index(out, pair[1])
		if i < 0 || j < 0 || i > j {
			t.Fatalf("ordering: %q (at %d) must precede %q (at %d) in:\n%s", pair[0], i, pair[1], j, out)
		}
	}

	// Rendering is deterministic.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("two renders of an unchanged registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("v", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("bad metric name did not panic")
		}
	}()
	r.Counter("bad-name", "h")
}
