// Package metrics is the repository's dependency-free instrumentation
// core: atomic counters and gauges, lock-cheap fixed-bucket histograms with
// quantile estimation, and a named registry that renders itself in the
// Prometheus text exposition format.
//
// The paper's engine is a production system ("all (possibly billions)
// embeddings may be computed on a daily basis", §III) serving live Taobao
// traffic; a reproduction that claims the same engineering properties needs
// a measurement surface to prove them on. Every layer of the repo reports
// through this package: the HTTP server's per-endpoint request/latency/
// error series, the trainers' live progress gauges, and whatever future
// perf PRs need to demonstrate their wins.
//
// Design constraints, in order:
//
//  1. Zero dependencies — the container has no Prometheus client library,
//     and the text format is simple enough not to want one.
//  2. Hot-path cost must be a handful of atomic operations: counters and
//     histograms are updated from Hogwild training loops and request
//     handlers, so there is no locking on Observe/Add, only on
//     registration and rendering (both rare).
//  3. Stable output — series render in sorted order so scrapes diff
//     cleanly and tests can assert ordering.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use, but counters are normally obtained from a Registry so they render.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are low-frequency by design).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution summary for non-negative
// observations (latencies, sizes). Observe is lock-free: one atomic add on
// the bucket, one on the count, and a CAS loop on the float sum. Bucket
// bounds are upper-inclusive, ascending; an implicit +Inf bucket catches
// overflow. Quantile estimates interpolate linearly inside the winning
// bucket, so their error is bounded by the bucket width.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf appended
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets are the default latency buckets in seconds, spanning 100µs to
// 10s — wide enough for both the KNN fast path and a shed-or-timeout tail.
func DefBuckets() []float64 {
	return []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// newHistogram validates and copies the bounds.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Values are expected non-negative; negative
// values land in the first bucket (the histogram never loses a count).
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the branch pattern
	// is predictable, which beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q clamped to [0,1]) from the bucket
// counts: find the bucket holding the rank, then interpolate linearly
// between its bounds. Estimates are monotone in q and always fall inside
// [0, highest finite bound] — the overflow bucket clamps to the top bound.
// Returns 0 when nothing has been observed.
//
// The snapshot is not atomic across buckets; under concurrent Observe the
// estimate is approximate (as every streaming quantile is), but each bucket
// count is itself consistent.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) { // overflow bucket: clamp to the top bound
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{name, value} }

// renderLabels renders {a="b",c="d"} (sorted by name; empty for none).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one sample stream: a metric instance plus its rendered labels.
type series struct {
	labels string // rendered {…} or ""
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups every series sharing a metric name, with one HELP/TYPE
// header.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	children        map[string]*series // keyed by rendered labels
}

// Registry holds named metrics and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry. All methods are
// safe for concurrent use. Registration is idempotent: asking for an
// existing name+labels returns the existing instrument, so package-level
// wiring can run more than once (re-registering under a different metric
// type panics — that is a programming error, not a runtime condition).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRe = func() func(string) bool {
	ok := func(c byte, first bool) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return !first
		}
		return false
	}
	return func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			if !ok(s[i], i == 0) {
				return false
			}
		}
		return true
	}
}()

// familyFor returns (creating if needed) the family, panicking on a name or
// type clash.
func (r *Registry) familyFor(name, help, typ string) *family {
	if !nameRe(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, "counter")
	f.mu.Lock()
	defer f.mu.Unlock()
	key := renderLabels(labels)
	if s, ok := f.children[key]; ok {
		return s.c
	}
	s := &series{labels: key, c: &Counter{}}
	f.children[key] = s
	return s.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, "gauge")
	f.mu.Lock()
	defer f.mu.Unlock()
	key := renderLabels(labels)
	if s, ok := f.children[key]; ok {
		return s.g
	}
	s := &series{labels: key, g: &Gauge{}}
	f.children[key] = s
	return s.g
}

// GaugeFunc registers a pull-based gauge whose value is read at render
// time. Re-registering the same name+labels REPLACES the function: a new
// training run wiring itself into a long-lived registry takes over the
// series from the previous run.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, "gauge")
	f.mu.Lock()
	defer f.mu.Unlock()
	key := renderLabels(labels)
	if s, ok := f.children[key]; ok {
		if s.g != nil {
			panic(fmt.Sprintf("metrics: %s%s registered as plain gauge, requested as func", name, key))
		}
		s.gf = fn
		return
	}
	f.children[key] = &series{labels: key, gf: fn}
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds on first use (nil bounds = DefBuckets). Bounds
// of an existing histogram are not re-checked: first registration wins.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.familyFor(name, help, "histogram")
	f.mu.Lock()
	defer f.mu.Unlock()
	key := renderLabels(labels)
	if s, ok := f.children[key]; ok {
		return s.h
	}
	s := &series{labels: key, h: newHistogram(bounds)}
	f.children[key] = s
	return s.h
}

// Value returns the current value of the series with the given name and
// labels: counters as float64, gauges (incl. funcs) as-is, histograms as
// their observation count. ok is false when no such series exists.
func (r *Registry) Value(name string, labels ...Label) (v float64, ok bool) {
	r.mu.Lock()
	f, found := r.families[name]
	r.mu.Unlock()
	if !found {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s, found := f.children[renderLabels(labels)]
	if !found {
		return 0, false
	}
	switch {
	case s.c != nil:
		return float64(s.c.Value()), true
	case s.g != nil:
		return s.g.Value(), true
	case s.gf != nil:
		return s.gf(), true
	case s.h != nil:
		return float64(s.h.Count()), true
	}
	return 0, false
}

// WritePrometheus renders every registered series in the text exposition
// format: families sorted by name, children sorted by label string, one
// HELP/TYPE header per family. The output is deterministic for a fixed set
// of registered series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		children := make([]*series, 0, len(f.children))
		for _, s := range f.children {
			children = append(children, s)
		}
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range children {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
			case s.gf != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gf()))
			case s.h != nil:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the _bucket/_sum/_count triplet of one histogram
// series, merging the le label into the series labels.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, formatFloat(bound)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
}

// withLE splices le="bound" into a rendered label set.
func withLE(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
