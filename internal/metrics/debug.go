package metrics

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux returns the sidecar observability mux both binaries mount on
// -pprof-addr: net/http/pprof under /debug/pprof/ and, when reg is
// non-nil, the registry exposition at /metrics. It is built on a private
// ServeMux (never http.DefaultServeMux) so importing this package cannot
// leak profiling handlers into a production listener by accident — the
// debug listener is its own address, bound to localhost unless the
// operator says otherwise.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}
