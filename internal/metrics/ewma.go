package metrics

import (
	"math"
	"sync/atomic"
)

// EWMA is a lock-free exponentially weighted moving average. It is the
// primitive behind load-aware serving decisions (brownout entry, derived
// Retry-After): cheap enough to update on every request, and biased toward
// the recent past, which is the only past an overload controller cares
// about. The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64 // float64 bits of the average; 0 means no samples yet
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0,1]: each
// observation contributes alpha of itself and decays the history by
// (1-alpha). Larger alpha reacts faster; 0.1 remembers roughly the last
// ~10 samples.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("metrics: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average (CAS loop; safe for concurrent
// observers). The first sample seeds the average directly so the EWMA does
// not have to warm up from zero.
func (e *EWMA) Observe(v float64) {
	for {
		old := e.bits.Load()
		next := v
		if old != 0 {
			next = e.alpha*v + (1-e.alpha)*math.Float64frombits(old)
		}
		nb := math.Float64bits(next)
		if nb == 0 {
			nb = math.Float64bits(math.SmallestNonzeroFloat64) // keep "no samples" distinguishable
		}
		if e.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 {
	b := e.bits.Load()
	if b == 0 {
		return 0
	}
	return math.Float64frombits(b)
}
