package sgns

import (
	"time"
)

// Progress is one live snapshot of a training run, delivered to a
// ProgressFunc sink at a fixed cadence while training is in flight, plus a
// final snapshot (Done=true) when the reporting stops. Both the local
// Hogwild trainer and the distributed engine (internal/dist) report
// through this type, so one sink implementation — a log line in
// cmd/sisg-train, registry gauges when serving — covers both.
type Progress struct {
	Epoch  int // current epoch (0-based; approximate for the distributed engine)
	Epochs int // total epochs configured

	Pairs       uint64 // positive pairs trained so far
	Tokens      uint64 // corpus tokens consumed so far (post-scan, pre-subsampling)
	TotalTokens uint64 // tokens the full run will consume (corpus × epochs)

	PairsPerSec  float64 // averaged since the previous report
	TokensPerSec float64 // averaged since the previous report

	LR      float32       // current (decayed) learning rate
	Elapsed time.Duration // wall time since training started
	ETA     time.Duration // remaining time, from the average rate so far
	Done    bool          // final report: training (or the run) ended
}

// Fraction returns completed work in [0,1], by tokens.
func (p Progress) Fraction() float64 {
	if p.TotalTokens == 0 {
		return 0
	}
	f := float64(p.Tokens) / float64(p.TotalTokens)
	if f > 1 {
		f = 1
	}
	return f
}

// ProgressFunc consumes progress snapshots. It is called from a dedicated
// reporter goroutine, never from the training hot path, so a slow sink
// (logging, a lagging scrape) cannot stall training — but implementations
// must still be safe to call concurrently with the run.
type ProgressFunc func(Progress)

// StartProgress launches the reporter goroutine: every interval (default
// 2s) it samples the run via read (which must be cheap and safe to call
// concurrently with training — it reads atomics), derives rates and ETA,
// and calls sink. The returned stop function emits one final Done
// snapshot, waits for the goroutine to exit, and is idempotent. It is
// exported because the distributed engine (internal/dist) reports through
// the same machinery.
func StartProgress(sink ProgressFunc, every time.Duration, epochs int, totalTokens uint64,
	read func() (epoch int, pairs, tokens uint64, lr float32)) (stop func()) {
	if every <= 0 {
		every = 2 * time.Second
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		start := time.Now()
		_, prevPairs, prevTokens, _ := read()
		prevT := start
		tick := time.NewTicker(every)
		defer tick.Stop()
		emit := func(final bool) {
			now := time.Now()
			epoch, pairs, tokens, lr := read()
			p := Progress{
				Epoch: epoch, Epochs: epochs,
				Pairs: pairs, Tokens: tokens, TotalTokens: totalTokens,
				LR: lr, Elapsed: now.Sub(start), Done: final,
			}
			if dt := now.Sub(prevT).Seconds(); dt > 0 {
				p.PairsPerSec = float64(pairs-prevPairs) / dt
				p.TokensPerSec = float64(tokens-prevTokens) / dt
			}
			if tokens > 0 && tokens < totalTokens {
				p.ETA = time.Duration(float64(p.Elapsed) * float64(totalTokens-tokens) / float64(tokens))
			}
			prevPairs, prevTokens, prevT = pairs, tokens, now
			sink(p)
		}
		for {
			select {
			case <-stopCh:
				emit(true)
				return
			case <-tick.C:
				emit(false)
			}
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(stopCh)
		<-doneCh
	}
}
