package sgns

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The reporter must deliver periodic snapshots with sane derived values
// (monotone counters, positive rates while moving, ETA shrinking toward
// zero) and exactly one final Done snapshot, idempotently.
func TestProgressReporter(t *testing.T) {
	var pairs, tokens atomic.Uint64
	const total = 1000

	var mu sync.Mutex
	var got []Progress
	sink := func(p Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}

	stop := StartProgress(sink, 5*time.Millisecond, 3, total,
		func() (int, uint64, uint64, float32) {
			return 1, pairs.Load(), tokens.Load(), 0.0125
		})
	for i := 0; i < 10; i++ {
		pairs.Add(7)
		tokens.Add(50)
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent: must not panic or emit a second Done

	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("only %d snapshots from a 50ms run at 5ms cadence", len(got))
	}
	finals := 0
	for i, p := range got {
		if p.Done {
			finals++
			if i != len(got)-1 {
				t.Fatalf("Done snapshot at %d of %d, want last", i, len(got))
			}
		}
		if p.Epoch != 1 || p.Epochs != 3 || p.LR != 0.0125 || p.TotalTokens != total {
			t.Fatalf("snapshot %d carries wrong pass-through fields: %+v", i, p)
		}
		if p.Fraction() < 0 || p.Fraction() > 1 {
			t.Fatalf("Fraction %v out of [0,1]", p.Fraction())
		}
		if i > 0 {
			prev := got[i-1]
			if p.Pairs < prev.Pairs || p.Tokens < prev.Tokens || p.Elapsed < prev.Elapsed {
				t.Fatalf("snapshot %d went backwards: %+v after %+v", i, p, prev)
			}
		}
	}
	if finals != 1 {
		t.Fatalf("%d Done snapshots, want exactly 1", finals)
	}
	last := got[len(got)-1]
	if last.Pairs != 70 || last.Tokens != 500 {
		t.Fatalf("final snapshot read %d pairs / %d tokens, want 70/500", last.Pairs, last.Tokens)
	}
	if last.ETA <= 0 {
		t.Fatalf("run half done (500/%d tokens) but ETA = %v", total, last.ETA)
	}

	// A mid-run snapshot over a moving counter must show positive rates.
	moving := got[len(got)-2]
	if moving.PairsPerSec <= 0 || moving.TokensPerSec <= 0 {
		t.Fatalf("mid-run rates not positive: %+v", moving)
	}
}

// The trainer must call the sink when Options.Progress is set — including
// the final Done snapshot even when the run finishes before the first tick.
func TestTrainerReportsProgress(t *testing.T) {
	d, seqs := clusterCorpus(8, 200, 1)
	opt := testOptions()
	var mu sync.Mutex
	var got []Progress
	opt.Progress = func(p Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}
	opt.ProgressEvery = time.Millisecond
	m, st, err := Train(d, seqs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || st.Pairs == 0 {
		t.Fatal("training produced nothing")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("Progress sink never called")
	}
	last := got[len(got)-1]
	if !last.Done {
		t.Fatalf("last snapshot not Done: %+v", last)
	}
	if last.Pairs != st.Pairs {
		t.Fatalf("final snapshot saw %d pairs, Stats says %d", last.Pairs, st.Pairs)
	}
}

// Progress must not leak into the checkpoint fingerprint: two option sets
// differing only in observer fields resume each other's checkpoints.
func TestFingerprintIgnoresProgress(t *testing.T) {
	a, b := Defaults(), Defaults()
	b.Progress = func(Progress) {}
	b.ProgressEvery = time.Second
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("observer fields changed the checkpoint fingerprint")
	}
}
