package sgns

import (
	"testing"

	"sisg/internal/emb"
	"sisg/internal/rng"
)

func TestResumeErrors(t *testing.T) {
	d, seqs := clusterCorpus(4, 20, 1)
	opt := testOptions()
	if _, err := Resume(nil, d, seqs, opt); err == nil {
		t.Error("nil model accepted")
	}
	wrongVocab := emb.NewModel(3, opt.Dim, rng.New(1))
	if _, err := Resume(wrongVocab, d, seqs, opt); err == nil {
		t.Error("vocab mismatch accepted")
	}
	wrongDim := emb.NewModel(d.Len(), opt.Dim+1, rng.New(1))
	if _, err := Resume(wrongDim, d, seqs, opt); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// TestResumeWarmStart verifies the daily-update path: a model warm-started
// from a converged predecessor reaches good structure with ONE incremental
// epoch, while a cold model given the same single epoch lags behind.
func TestResumeWarmStart(t *testing.T) {
	d, day1 := clusterCorpus(10, 500, 21)
	_, day2 := clusterCorpus(10, 500, 22) // same structure, fresh sessions

	clusterScore := func(m *emb.Model) float64 {
		var within, across float64
		var nw, na int
		for a := int32(0); a < 10; a++ {
			for b := a + 1; b < 20; b++ {
				c := float64(m.ScoreCosine(a, b))
				if b < 10 {
					within += c
					nw++
				} else {
					across += c
					na++
				}
			}
		}
		return within/float64(nw) - across/float64(na)
	}

	full := testOptions()
	base, _, err := Train(d, day1, full)
	if err != nil {
		t.Fatal(err)
	}

	incr := testOptions()
	incr.Epochs = 1
	incr.LR = 0.01 // the usual lower LR for incremental passes
	st, err := Resume(base, d, day2, incr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs == 0 {
		t.Fatal("resume trained nothing")
	}
	warm := clusterScore(base)

	coldOpt := testOptions()
	coldOpt.Epochs = 1
	cold, _, err := Train(d, day2, coldOpt)
	if err != nil {
		t.Fatal(err)
	}
	if warm <= clusterScore(cold) {
		t.Fatalf("warm start (%.3f) no better than cold single epoch (%.3f)",
			warm, clusterScore(cold))
	}
}
