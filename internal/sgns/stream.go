// Incremental SGNS: the streaming counterpart of Train/Resume.
//
// A Live trainer owns a fixed-capacity embedding model (rows = the
// vocabulary admission budget) and consumes token-row sequences one at a
// time, applying the same reduced-window/subsample/negative-sampling
// updates as the batch trainer — but with a constant learning rate (a
// stream has no "fraction done" to decay over; word2vec's decay exists to
// anneal a finite corpus) and a noise distribution rebuilt periodically
// from the live counts instead of once up front. Training is
// single-threaded by design: determinism is the contract (the same stream
// produces the same matrix, bit for bit), and snapshot cuts need a
// quiescent matrix anyway.
package sgns

import (
	"errors"
	"fmt"
	"math"

	"sisg/internal/alias"
	"sisg/internal/emb"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
	"sisg/internal/vocab"
)

// LiveOptions configures an incremental trainer.
type LiveOptions struct {
	Capacity   int     // embedding rows (the vocabulary budget); must be positive
	Dim        int     // embedding dimension
	Window     int     // context window, in enriched-token units
	Negatives  int     // negatives per positive pair
	LR         float32 // constant streaming learning rate
	SubsampleT float64 // Mikolov subsampling threshold; 0 disables
	SIBoost    float64 // keep-prob multiplier for non-item rows (≤1)
	NoiseAlpha float64 // unigram exponent for negative sampling
	Stride     int     // reduced-window stride (1+NumSIColumns for SI variants)
	Directed   bool    // right-window sampling (§II-C)
	Seed       uint64
	// RebuildEvery re-derives the negative-sampling alias table after this
	// many consumed tokens. Rows admitted since the last rebuild train as
	// targets immediately but are not drawn as negatives until the next
	// rebuild — the streaming analogue of word2vec building its table from
	// a frozen vocabulary. <=0 means 4096.
	RebuildEvery uint64
}

// LiveDefaults mirrors the batch Defaults for the fields both share.
func LiveDefaults(capacity int) LiveOptions {
	return LiveOptions{
		Capacity:     capacity,
		Dim:          32,
		Window:       5,
		Negatives:    5,
		LR:           0.025,
		SubsampleT:   1e-3,
		SIBoost:      0.5,
		NoiseAlpha:   0.75,
		Seed:         1,
		RebuildEvery: 4096,
	}
}

func (o *LiveOptions) validate() error {
	switch {
	case o.Capacity <= 0:
		return errors.New("sgns: Capacity must be positive")
	case o.Dim <= 0:
		return errors.New("sgns: Dim must be positive")
	case o.Window <= 0:
		return errors.New("sgns: Window must be positive")
	case o.Negatives < 0:
		return errors.New("sgns: Negatives must be non-negative")
	case o.LR <= 0:
		return errors.New("sgns: LR must be positive")
	case o.SIBoost < 0 || o.SIBoost > 1:
		return errors.New("sgns: SIBoost out of [0,1]")
	case o.NoiseAlpha <= 0:
		return errors.New("sgns: NoiseAlpha must be positive")
	}
	return nil
}

// Live is an incremental SGNS trainer over a growing row set. Rows are
// appended by AddRow (up to Capacity) and trained by TrainSequence; the
// caller owns the token→row mapping. Not safe for concurrent use.
type Live struct {
	opt   LiveOptions
	model *emb.Model // Capacity × Dim, allocated once; rows < rows are live

	rows   int
	kinds  []vocab.Kind // per-row, for SIBoost
	counts []uint64     // per-row occurrences consumed
	total  uint64       // total tokens consumed

	r    *rng.RNG
	grad []float32
	kept []int32

	noise        *alias.Table // over rows [0, noiseRows)
	noiseRows    int
	sinceRebuild uint64

	pairs, updates uint64
}

// NewLive allocates the trainer and its full-capacity matrices up front:
// growth never reallocates, so snapshot copies and row views stay valid
// row indices forever.
func NewLive(opt LiveOptions) (*Live, error) {
	if opt.RebuildEvery <= 0 {
		opt.RebuildEvery = 4096
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return &Live{
		opt: opt,
		model: &emb.Model{
			In:  emb.NewMatrix(opt.Capacity, opt.Dim),
			Out: emb.NewMatrix(opt.Capacity, opt.Dim),
		},
		kinds:  make([]vocab.Kind, 0, opt.Capacity),
		counts: make([]uint64, 0, opt.Capacity),
		r:      rng.New(opt.Seed),
		grad:   make([]float32, opt.Dim),
		kept:   make([]int32, 0, 64),
	}, nil
}

// AddRow appends a row for a newly admitted token and applies word2vec
// initialization (input uniform in ±0.5/dim, output zero). It returns the
// new row index and panics when the capacity is exhausted — admission is
// the caller's budget gate, so overflow here is a bookkeeping bug.
func (l *Live) AddRow(kind vocab.Kind) int32 {
	if l.rows >= l.opt.Capacity {
		panic(fmt.Sprintf("sgns: AddRow beyond capacity %d", l.opt.Capacity))
	}
	row := int32(l.rows)
	in := l.model.In.Row(row)
	inv := 1 / float32(l.opt.Dim)
	for i := range in {
		in[i] = (l.r.Float32() - 0.5) * inv
	}
	vecmath.Zero(l.model.Out.Row(row))
	l.rows++
	l.kinds = append(l.kinds, kind)
	l.counts = append(l.counts, 0)
	return row
}

// SetRow overwrites a row's vectors — the Eq. 6 seeding hook: a cold item
// becomes servable with an SI-composed embedding before its first gradient
// step. Slices shorter than Dim leave the remainder as initialized.
func (l *Live) SetRow(row int32, in, out []float32) {
	copy(l.model.In.Row(row), in)
	copy(l.model.Out.Row(row), out)
}

// TrainSequence consumes one enriched sequence of row indices: counts are
// bumped, frequent rows are subsampled on the fly, and every surviving
// (target, context) pair in the reduced window gets one SGNS update.
func (l *Live) TrainSequence(seq []int32) {
	opt := &l.opt
	for _, row := range seq {
		l.counts[row]++
	}
	l.total += uint64(len(seq))
	l.sinceRebuild += uint64(len(seq))
	if l.noise == nil || l.sinceRebuild >= opt.RebuildEvery {
		l.rebuildNoise()
	}

	kept := l.kept[:0]
	for _, row := range seq {
		if opt.SubsampleT > 0 && l.r.Float32() >= l.keepProb(row) {
			continue
		}
		kept = append(kept, row)
	}
	l.kept = kept
	if len(kept) < 2 {
		return
	}
	stride := opt.Stride
	if stride < 1 {
		stride = 1
	}
	steps := opt.Window / stride
	if steps < 1 {
		steps = 1
	}
	for i := range kept {
		win := stride * (1 + l.r.Intn(steps))
		lo := i - win
		if opt.Directed || lo < 0 {
			lo = i
		}
		hi := i + win
		if hi >= len(kept) {
			hi = len(kept) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			l.trainPair(kept[i], kept[j])
		}
	}
}

// keepProb is the Mikolov keep probability from the live counts, with the
// SI boost for non-item rows — the streaming analogue of
// subsampleKeepProbs, computed per occurrence instead of per epoch.
func (l *Live) keepProb(row int32) float32 {
	c := l.counts[row]
	if c == 0 || l.total == 0 {
		return 1
	}
	f := float64(c) / float64(l.total)
	keep := math.Sqrt(l.opt.SubsampleT/f) + l.opt.SubsampleT/f
	if keep > 1 {
		keep = 1
	}
	if l.kinds[row] != vocab.KindItem {
		keep *= l.opt.SIBoost
	}
	return float32(keep)
}

func (l *Live) rebuildNoise() {
	l.sinceRebuild = 0
	if l.rows == 0 {
		return
	}
	w := make([]float64, l.rows)
	for i := 0; i < l.rows; i++ {
		if c := l.counts[i]; c > 0 {
			w[i] = math.Pow(float64(c), l.opt.NoiseAlpha)
		}
	}
	t, err := alias.New(w)
	if err != nil {
		// All-zero counts (rows admitted, nothing consumed yet): keep the
		// previous table, or none — trainPair tolerates a nil table by
		// skipping negatives.
		return
	}
	l.noise = t
	l.noiseRows = l.rows
}

func (l *Live) trainPair(target, ctx int32) {
	opt := &l.opt
	m := l.model
	v := m.In.Row(target)
	grad := l.grad
	vecmath.Zero(grad)

	c := m.Out.Row(ctx)
	g := (1 - vecmath.Sigmoid(vecmath.Dot(v, c))) * opt.LR
	vecmath.Axpy(g, c, grad)
	vecmath.Axpy(g, v, c)

	if l.noise != nil {
		for n := 0; n < opt.Negatives; n++ {
			t := int32(l.noise.Sample(l.r))
			if t == ctx {
				continue
			}
			c := m.Out.Row(t)
			g := (0 - vecmath.Sigmoid(vecmath.Dot(v, c))) * opt.LR
			vecmath.Axpy(g, c, grad)
			vecmath.Axpy(g, v, c)
		}
	}
	vecmath.Add(grad, v)
	l.pairs++
	l.updates += uint64(1 + opt.Negatives)
}

// Rows returns how many rows are live.
func (l *Live) Rows() int { return l.rows }

// Model exposes the live matrices. Rows >= Rows() are uninitialized
// capacity; snapshot writers copy only the live prefix.
func (l *Live) Model() *emb.Model { return l.model }

// KindOf returns the kind recorded for a live row.
func (l *Live) KindOf(row int32) vocab.Kind { return l.kinds[row] }

// Count returns how many occurrences of row have been consumed.
func (l *Live) Count(row int32) uint64 { return l.counts[row] }

// Pairs returns how many positive pairs have been trained.
func (l *Live) Pairs() uint64 { return l.pairs }

// Updates returns pairs × (1+negatives) applied so far.
func (l *Live) Updates() uint64 { return l.updates }

// Tokens returns total tokens consumed (before subsampling).
func (l *Live) Tokens() uint64 { return l.total }
