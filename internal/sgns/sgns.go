// Package sgns implements Skip-Gram with Negative Sampling — the word2vec
// core (§II-A of the paper) that every SISG variant, and the EGES baseline's
// random-walk stage, trains with.
//
// The trainer is deliberately faithful to the original word2vec recipe the
// paper builds on: per-position randomly reduced windows, Mikolov
// subsampling of frequent tokens, unigram^α negative sampling, linear
// learning-rate decay, and lock-free Hogwild parallelism across sequence
// shards. Two paper-specific extensions are threaded through:
//
//   - Directed windows (§II-C): when Options.Directed is set, skip-grams are
//     sampled only from the RIGHT context window, preserving the click
//     order; the matching serving-time change (scoring in·out) lives in
//     internal/emb and internal/knn.
//   - Aggressive SI subsampling (§III-A): non-item tokens can be subsampled
//     harder than items via Options.SIBoost.
package sgns

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/alias"
	"sisg/internal/emb"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
	"sisg/internal/vocab"
)

// Options configures a training run. The zero value is not valid; start
// from Defaults.
type Options struct {
	Dim        int     // embedding dimension (paper: 128; experiments here: 32)
	Window     int     // maximum context window, in enriched-token units
	Negatives  int     // negatives per positive pair (paper production: 20)
	Epochs     int     // full passes over the corpus (paper: 2)
	LR         float32 // initial learning rate
	MinLRFrac  float32 // final LR as a fraction of LR (word2vec: 1e-4)
	SubsampleT float64 // subsampling threshold t; 0 disables
	SIBoost    float64 // multiplier on keep-prob of non-item tokens (≤1 = more aggressive)
	NoiseAlpha float64 // unigram exponent for negative sampling (paper: 0.75)
	// Stride makes the randomly reduced window a multiple of a token
	// stride. SI-enriched sequences place 1+NumSIColumns tokens per item;
	// reducing the window below that stride would starve item→item pairs,
	// so SISG sets Stride to the per-item token count ("we can adjust the
	// window size, such that all possible pairs per sequence are sampled",
	// §III-C). 0 or 1 means plain word2vec reduction.
	Stride   int
	Directed bool // sample right context window only (§II-C)
	Workers  int  // Hogwild shards; 0 = GOMAXPROCS
	Seed     uint64
}

// Defaults returns the option set used by the offline experiments.
func Defaults() Options {
	return Options{
		Dim:        32,
		Window:     5,
		Negatives:  5,
		Epochs:     2,
		LR:         0.025,
		MinLRFrac:  1e-4,
		SubsampleT: 1e-3,
		SIBoost:    0.5,
		NoiseAlpha: 0.75,
		Workers:    0,
		Seed:       1,
	}
}

// Validate reports the first invalid option.
func (o *Options) Validate() error {
	switch {
	case o.Dim <= 0:
		return errors.New("sgns: Dim must be positive")
	case o.Window <= 0:
		return errors.New("sgns: Window must be positive")
	case o.Negatives < 0:
		return errors.New("sgns: Negatives must be non-negative")
	case o.Epochs <= 0:
		return errors.New("sgns: Epochs must be positive")
	case o.LR <= 0:
		return errors.New("sgns: LR must be positive")
	case o.SIBoost < 0 || o.SIBoost > 1:
		return errors.New("sgns: SIBoost out of [0,1]")
	case o.NoiseAlpha <= 0:
		return errors.New("sgns: NoiseAlpha must be positive")
	}
	return nil
}

// Stats reports what a training run did.
type Stats struct {
	Pairs       uint64        // positive pairs trained
	Updates     uint64        // pairs × (1+negatives)
	Tokens      uint64        // tokens consumed after subsampling
	Elapsed     time.Duration // wall time of the training phase
	FinalLR     float32
	WorkersUsed int
}

// TokensPerSec returns throughput in consumed tokens per second.
func (s Stats) TokensPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Tokens) / s.Elapsed.Seconds()
}

// Train learns a model over the given token-ID sequences. Sequences must
// index into dict. The returned model has one row per dictionary token.
func Train(dict *vocab.Dict, seqs [][]int32, opt Options) (*emb.Model, Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if dict.Len() == 0 {
		return nil, Stats{}, errors.New("sgns: empty vocabulary")
	}
	model := emb.NewModel(dict.Len(), opt.Dim, rng.New(opt.Seed))
	st, err := trainInto(model, dict, seqs, opt)
	return model, st, err
}

// Resume continues training an EXISTING model on new sequences — the
// warm-start path behind the paper's daily-update requirement ("all
// (possibly billions) embeddings may be computed on a daily basis"):
// yesterday's model plus today's sessions converges in a fraction of a
// cold start's epochs. Callers typically lower opt.LR for the incremental
// pass. The model is updated in place.
func Resume(model *emb.Model, dict *vocab.Dict, seqs [][]int32, opt Options) (Stats, error) {
	if err := opt.Validate(); err != nil {
		return Stats{}, err
	}
	if model == nil {
		return Stats{}, errors.New("sgns: nil model")
	}
	if model.Vocab() != dict.Len() {
		return Stats{}, fmt.Errorf("sgns: model has %d rows, dictionary %d tokens", model.Vocab(), dict.Len())
	}
	if model.Dim() != opt.Dim {
		return Stats{}, fmt.Errorf("sgns: model dim %d, options dim %d", model.Dim(), opt.Dim)
	}
	return trainInto(model, dict, seqs, opt)
}

// trainInto runs the training loop against an existing model.
func trainInto(model *emb.Model, dict *vocab.Dict, seqs [][]int32, opt Options) (Stats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seqs) && len(seqs) > 0 {
		workers = len(seqs)
	}
	if workers < 1 {
		workers = 1
	}

	master := rng.New(opt.Seed ^ 0x5e55e)

	// Count token frequencies over the sequences actually being trained on.
	// The dictionary's counts reflect the fully enriched corpus; a variant
	// that trains on item-only sequences must draw negatives from (and
	// subsample by) the distribution of ITS corpus, exactly as word2vec
	// builds its vocabulary from its input — otherwise most negative
	// samples are tokens the corpus never contains and output vectors see
	// no real negative pressure.
	counts := make([]uint64, dict.Len())
	var corpusTokens uint64
	for _, s := range seqs {
		for _, t := range s {
			counts[t]++
		}
		corpusTokens += uint64(len(s))
	}

	noise, err := alias.New(noiseWeights(counts, opt.NoiseAlpha))
	if err != nil {
		return Stats{}, fmt.Errorf("sgns: noise distribution: %w", err)
	}
	var keep []float32
	if opt.SubsampleT > 0 {
		keep = subsampleKeepProbs(dict, counts, corpusTokens, opt.SubsampleT, opt.SIBoost)
	}

	// Linear LR decay over the estimated total number of consumed tokens.
	totalTokens := corpusTokens * uint64(opt.Epochs)
	if totalTokens == 0 {
		totalTokens = 1
	}

	var (
		doneTokens atomic.Uint64
		pairs      atomic.Uint64
		updates    atomic.Uint64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int, r *rng.RNG) {
			defer wg.Done()
			ws := workerState{
				model: model, noise: noise, keep: keep, opt: &opt, r: r,
				grad: make([]float32, opt.Dim),
				kept: make([]int32, 0, 64),
			}
			for epoch := 0; epoch < opt.Epochs; epoch++ {
				for i := shard; i < len(seqs); i += workers {
					ws.trainSequence(seqs[i], &doneTokens, totalTokens)
				}
			}
			pairs.Add(ws.pairs)
			updates.Add(ws.updates)
		}(w, master.Split())
	}
	wg.Wait()

	st := Stats{
		Pairs:       pairs.Load(),
		Updates:     updates.Load(),
		Tokens:      doneTokens.Load(),
		Elapsed:     time.Since(start),
		WorkersUsed: workers,
	}
	st.FinalLR = decayLR(opt.LR, opt.MinLRFrac, st.Tokens, totalTokens)
	return st, nil
}

// noiseWeights returns count^alpha per token (P_noise(v) ∝ freq(v)^α,
// §III-C); zero-count tokens get zero weight and are never drawn.
func noiseWeights(counts []uint64, alpha float64) []float64 {
	w := make([]float64, len(counts))
	for i, c := range counts {
		if c > 0 {
			w[i] = math.Pow(float64(c), alpha)
		}
	}
	return w
}

// subsampleKeepProbs computes Mikolov keep probabilities over the training
// corpus counts, multiplying non-item tokens by siBoost (the paper's
// "aggressive" SI downsampling).
func subsampleKeepProbs(dict *vocab.Dict, counts []uint64, total uint64, t, siBoost float64) []float32 {
	p := make([]float32, len(counts))
	for i := range counts {
		if counts[i] == 0 || total == 0 {
			p[i] = 1
			continue
		}
		f := float64(counts[i]) / float64(total)
		keep := math.Sqrt(t/f) + t/f
		if keep > 1 {
			keep = 1
		}
		if dict.KindOf(int32(i)) != vocab.KindItem {
			keep *= siBoost
		}
		p[i] = float32(keep)
	}
	return p
}

func decayLR(lr0, minFrac float32, done, total uint64) float32 {
	f := 1 - float32(float64(done)/float64(total))
	if f < minFrac {
		f = minFrac
	}
	return lr0 * f
}

// workerState is one Hogwild shard's scratch space.
type workerState struct {
	model   *emb.Model
	noise   *alias.Table
	keep    []float32
	opt     *Options
	r       *rng.RNG
	grad    []float32
	kept    []int32
	pairs   uint64
	updates uint64
	lr      float32
}

// trainSequence consumes one sequence: subsample, then slide the (reduced)
// window and train each pair.
func (ws *workerState) trainSequence(seq []int32, doneTokens *atomic.Uint64, totalTokens uint64) {
	opt := ws.opt
	kept := ws.kept[:0]
	for _, t := range seq {
		if ws.keep != nil && ws.r.Float32() >= ws.keep[t] {
			continue
		}
		kept = append(kept, t)
	}
	ws.kept = kept
	done := doneTokens.Add(uint64(len(seq)))
	ws.lr = decayLR(opt.LR, opt.MinLRFrac, done, totalTokens)
	if len(kept) < 2 {
		return
	}
	stride := opt.Stride
	if stride < 1 {
		stride = 1
	}
	steps := opt.Window / stride
	if steps < 1 {
		steps = 1
	}
	for i := range kept {
		// word2vec-style reduced window, in stride units:
		// uniform over {stride, 2*stride, ..., steps*stride}.
		win := stride * (1 + ws.r.Intn(steps))
		lo := i - win
		if opt.Directed || lo < 0 {
			lo = i // directed: no left context
		}
		hi := i + win
		if hi >= len(kept) {
			hi = len(kept) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			ws.trainPair(kept[i], kept[j])
		}
	}
}

// trainPair applies one SGNS update: the positive (target, context) pair
// plus Negatives samples from the noise distribution. Gradients w.r.t. the
// input vector are accumulated and applied once, per the original word2vec.
func (ws *workerState) trainPair(target, ctx int32) {
	m := ws.model
	opt := ws.opt
	v := m.In.Row(target)
	grad := ws.grad
	vecmath.Zero(grad)

	// Positive sample: label 1.
	c := m.Out.Row(ctx)
	g := (1 - vecmath.Sigmoid(vecmath.Dot(v, c))) * ws.lr
	vecmath.Axpy(g, c, grad)
	vecmath.Axpy(g, v, c)

	// Negative samples: label 0. A draw equal to the true context is
	// rejected, as in word2vec.
	for n := 0; n < opt.Negatives; n++ {
		t := int32(ws.noise.Sample(ws.r))
		if t == ctx {
			continue
		}
		c := m.Out.Row(t)
		g := (0 - vecmath.Sigmoid(vecmath.Dot(v, c))) * ws.lr
		vecmath.Axpy(g, c, grad)
		vecmath.Axpy(g, v, c)
	}
	vecmath.Add(grad, v)
	ws.pairs++
	ws.updates += uint64(1 + opt.Negatives)
}
