// Package sgns implements Skip-Gram with Negative Sampling — the word2vec
// core (§II-A of the paper) that every SISG variant, and the EGES baseline's
// random-walk stage, trains with.
//
// The trainer is deliberately faithful to the original word2vec recipe the
// paper builds on: per-position randomly reduced windows, Mikolov
// subsampling of frequent tokens, unigram^α negative sampling, linear
// learning-rate decay, and lock-free Hogwild parallelism across sequence
// shards. Two paper-specific extensions are threaded through:
//
//   - Directed windows (§II-C): when Options.Directed is set, skip-grams are
//     sampled only from the RIGHT context window, preserving the click
//     order; the matching serving-time change (scoring in·out) lives in
//     internal/emb and internal/knn.
//   - Aggressive SI subsampling (§III-A): non-item tokens can be subsampled
//     harder than items via Options.SIBoost.
package sgns

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sisg/internal/alias"
	"sisg/internal/checkpoint"
	"sisg/internal/emb"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
	"sisg/internal/vocab"
)

// Options configures a training run. The zero value is not valid; start
// from Defaults.
type Options struct {
	Dim        int     // embedding dimension (paper: 128; experiments here: 32)
	Window     int     // maximum context window, in enriched-token units
	Negatives  int     // negatives per positive pair (paper production: 20)
	Epochs     int     // full passes over the corpus (paper: 2)
	LR         float32 // initial learning rate
	MinLRFrac  float32 // final LR as a fraction of LR (word2vec: 1e-4)
	SubsampleT float64 // subsampling threshold t; 0 disables
	SIBoost    float64 // multiplier on keep-prob of non-item tokens (≤1 = more aggressive)
	NoiseAlpha float64 // unigram exponent for negative sampling (paper: 0.75)
	// Stride makes the randomly reduced window a multiple of a token
	// stride. SI-enriched sequences place 1+NumSIColumns tokens per item;
	// reducing the window below that stride would starve item→item pairs,
	// so SISG sets Stride to the per-item token count ("we can adjust the
	// window size, such that all possible pairs per sequence are sampled",
	// §III-C). 0 or 1 means plain word2vec reduction.
	Stride   int
	Directed bool // sample right context window only (§II-C)
	Workers  int  // Hogwild shards; 0 = GOMAXPROCS
	Seed     uint64

	// Checkpointing (fault tolerance). When CheckpointDir is non-empty and
	// CheckpointEvery > 0, the trainer periodically snapshots the model,
	// per-shard RNG states and progress counters via internal/checkpoint:
	// training proceeds in sequence blocks with a barrier between them, and
	// a snapshot is cut at the first barrier after CheckpointEvery pairs
	// since the previous one (plus a final snapshot at completion). Resume
	// continues from the snapshot in CheckpointDir if one exists (and
	// starts fresh if not); a snapshot written under different
	// hyper-parameters is refused. The zero values disable checkpointing
	// and the trainer runs barrier-free, exactly as before.
	CheckpointDir   string
	CheckpointEvery uint64
	Resume          bool

	// Progress, when non-nil, receives live training snapshots (pairs/sec,
	// tokens/sec, current LR, ETA) every ProgressEvery (default 2s) from a
	// dedicated reporter goroutine, plus a final Done snapshot. Nil keeps
	// the trainer silent and reporter-free, exactly as before.
	Progress      ProgressFunc
	ProgressEvery time.Duration
}

// Defaults returns the option set used by the offline experiments.
func Defaults() Options {
	return Options{
		Dim:        32,
		Window:     5,
		Negatives:  5,
		Epochs:     2,
		LR:         0.025,
		MinLRFrac:  1e-4,
		SubsampleT: 1e-3,
		SIBoost:    0.5,
		NoiseAlpha: 0.75,
		Workers:    0,
		Seed:       1,
	}
}

// Fingerprint hashes the hyper-parameters that define a training run, for
// checkpoint compatibility checks: resuming under a different configuration
// would silently train a different model, so snapshots carry this hash and
// loads compare it. Checkpoint-control fields (dir, cadence, the Resume
// flag itself) are excluded — moving the checkpoint directory or changing
// the cadence must not invalidate a snapshot. Callers append any extra
// run-identity values (vocabulary size, corpus size, worker count).
func (o Options) Fingerprint(extra ...interface{}) uint64 {
	c := o
	c.CheckpointDir, c.CheckpointEvery, c.Resume = "", 0, false
	// Observability knobs are not run identity either — and a func value
	// would stringify as an address, making the hash nondeterministic.
	c.Progress, c.ProgressEvery = nil, 0
	vs := append([]interface{}{fmt.Sprintf("%+v", c)}, extra...)
	return checkpoint.HashOptions(vs...)
}

// Validate reports the first invalid option.
func (o *Options) Validate() error {
	switch {
	case o.Dim <= 0:
		return errors.New("sgns: Dim must be positive")
	case o.Window <= 0:
		return errors.New("sgns: Window must be positive")
	case o.Negatives < 0:
		return errors.New("sgns: Negatives must be non-negative")
	case o.Epochs <= 0:
		return errors.New("sgns: Epochs must be positive")
	case o.LR <= 0:
		return errors.New("sgns: LR must be positive")
	case o.SIBoost < 0 || o.SIBoost > 1:
		return errors.New("sgns: SIBoost out of [0,1]")
	case o.NoiseAlpha <= 0:
		return errors.New("sgns: NoiseAlpha must be positive")
	}
	return nil
}

// Stats reports what a training run did.
type Stats struct {
	Pairs       uint64        // positive pairs trained
	Updates     uint64        // pairs × (1+negatives)
	Tokens      uint64        // tokens consumed after subsampling
	Elapsed     time.Duration // wall time of the training phase
	FinalLR     float32
	WorkersUsed int
}

// TokensPerSec returns throughput in consumed tokens per second.
func (s Stats) TokensPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Tokens) / s.Elapsed.Seconds()
}

// Train learns a model over the given token-ID sequences. Sequences must
// index into dict. The returned model has one row per dictionary token.
func Train(dict *vocab.Dict, seqs [][]int32, opt Options) (*emb.Model, Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if dict.Len() == 0 {
		return nil, Stats{}, errors.New("sgns: empty vocabulary")
	}
	model := emb.NewModel(dict.Len(), opt.Dim, rng.New(opt.Seed))
	st, err := trainInto(model, dict, seqs, opt)
	return model, st, err
}

// Resume continues training an EXISTING model on new sequences — the
// warm-start path behind the paper's daily-update requirement ("all
// (possibly billions) embeddings may be computed on a daily basis"):
// yesterday's model plus today's sessions converges in a fraction of a
// cold start's epochs. Callers typically lower opt.LR for the incremental
// pass. The model is updated in place.
func Resume(model *emb.Model, dict *vocab.Dict, seqs [][]int32, opt Options) (Stats, error) {
	if err := opt.Validate(); err != nil {
		return Stats{}, err
	}
	if model == nil {
		return Stats{}, errors.New("sgns: nil model")
	}
	if model.Vocab() != dict.Len() {
		return Stats{}, fmt.Errorf("sgns: model has %d rows, dictionary %d tokens", model.Vocab(), dict.Len())
	}
	if model.Dim() != opt.Dim {
		return Stats{}, fmt.Errorf("sgns: model dim %d, options dim %d", model.Dim(), opt.Dim)
	}
	return trainInto(model, dict, seqs, opt)
}

// trainInto runs the training loop against an existing model.
func trainInto(model *emb.Model, dict *vocab.Dict, seqs [][]int32, opt Options) (Stats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seqs) && len(seqs) > 0 {
		workers = len(seqs)
	}
	if workers < 1 {
		workers = 1
	}

	master := rng.New(opt.Seed ^ 0x5e55e)

	// Count token frequencies over the sequences actually being trained on.
	// The dictionary's counts reflect the fully enriched corpus; a variant
	// that trains on item-only sequences must draw negatives from (and
	// subsample by) the distribution of ITS corpus, exactly as word2vec
	// builds its vocabulary from its input — otherwise most negative
	// samples are tokens the corpus never contains and output vectors see
	// no real negative pressure.
	counts := make([]uint64, dict.Len())
	var corpusTokens uint64
	for _, s := range seqs {
		for _, t := range s {
			counts[t]++
		}
		corpusTokens += uint64(len(s))
	}

	noise, err := alias.New(noiseWeights(counts, opt.NoiseAlpha))
	if err != nil {
		return Stats{}, fmt.Errorf("sgns: noise distribution: %w", err)
	}
	var keep []float32
	if opt.SubsampleT > 0 {
		keep = subsampleKeepProbs(dict, counts, corpusTokens, opt.SubsampleT, opt.SIBoost)
	}

	// Linear LR decay over the estimated total number of consumed tokens.
	totalTokens := corpusTokens * uint64(opt.Epochs)
	if totalTokens == 0 {
		totalTokens = 1
	}

	var (
		doneTokens atomic.Uint64
		pairs      atomic.Uint64
		updates    atomic.Uint64
	)

	// Persistent per-shard state: each shard keeps one RNG stream across
	// every epoch and block, so splitting the run into blocks (for
	// checkpoint barriers) leaves the per-shard operation sequence — and
	// therefore the Stats trajectory — bit-identical to a barrier-free run.
	states := make([]*workerState, workers)
	for w := range states {
		states[w] = &workerState{
			model: model, noise: noise, keep: keep, opt: &opt, r: master.Split(),
			grad: make([]float32, opt.Dim),
			kept: make([]int32, 0, 64),
		}
	}

	// Without checkpointing each epoch is a single block and the loop
	// below degenerates to the classic barrier-free Hogwild schedule.
	ckptOn := opt.CheckpointDir != "" && opt.CheckpointEvery > 0
	blockSize := len(seqs)
	if ckptOn && blockSize > checkpointBlockSeqs {
		blockSize = checkpointBlockSeqs
	}
	if blockSize < 1 {
		blockSize = 1
	}
	numBlocks := (len(seqs) + blockSize - 1) / blockSize

	fp := opt.Fingerprint(dict.Len(), len(seqs), workers)
	startEpoch, startBlock := 0, 0
	var lastCkptPairs uint64
	if opt.Resume && opt.CheckpointDir != "" && checkpoint.Exists(opt.CheckpointDir) {
		snap, err := checkpoint.Load(opt.CheckpointDir)
		if err != nil {
			return Stats{}, fmt.Errorf("sgns: resume: %w", err)
		}
		if err := snap.CheckOptions(fp); err != nil {
			return Stats{}, fmt.Errorf("sgns: resume: %w", err)
		}
		if len(snap.RNGs) != workers {
			return Stats{}, fmt.Errorf("sgns: resume: snapshot has %d shards, run has %d (set Workers explicitly)", len(snap.RNGs), workers)
		}
		if snap.Model.Vocab() != model.Vocab() || snap.Model.Dim() != model.Dim() {
			return Stats{}, fmt.Errorf("sgns: resume: snapshot model %d×%d, run %d×%d",
				snap.Model.Vocab(), snap.Model.Dim(), model.Vocab(), model.Dim())
		}
		if len(snap.Counters) != 3 {
			return Stats{}, fmt.Errorf("sgns: resume: snapshot has %d counters, want 3", len(snap.Counters))
		}
		copy(model.In.Data(), snap.Model.In.Data())
		copy(model.Out.Data(), snap.Model.Out.Data())
		for w := range states {
			states[w].r.SetState(snap.RNGs[w])
		}
		pairs.Store(snap.Counters[0])
		updates.Store(snap.Counters[1])
		doneTokens.Store(snap.Counters[2])
		startEpoch, startBlock = snap.Epoch, snap.Block
		lastCkptPairs = snap.Counters[0]
	}

	start := time.Now()
	var curEpoch atomic.Int32
	curEpoch.Store(int32(startEpoch))
	if opt.Progress != nil {
		stop := StartProgress(opt.Progress, opt.ProgressEvery, opt.Epochs, totalTokens,
			func() (int, uint64, uint64, float32) {
				d := doneTokens.Load()
				return int(curEpoch.Load()), pairs.Load(), d, decayLR(opt.LR, opt.MinLRFrac, d, totalTokens)
			})
		defer stop() // emits the final Done snapshot, on error paths too
	}
	for epoch := startEpoch; epoch < opt.Epochs; epoch++ {
		curEpoch.Store(int32(epoch))
		b0 := 0
		if epoch == startEpoch {
			b0 = startBlock
		}
		for b := b0; b < numBlocks; b++ {
			lo := b * blockSize
			hi := lo + blockSize
			if hi > len(seqs) {
				hi = len(seqs)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(shard int, ws *workerState) {
					defer wg.Done()
					// The shard processes exactly the block's indexes that
					// are ≡ shard (mod workers): concatenated over blocks
					// this is the same per-shard order as the unblocked
					// `for i := shard; i < len(seqs); i += workers` loop.
					first := lo + (shard-lo%workers+workers)%workers
					// Shard tallies flush into the shared counters per
					// sequence (not per block) so the progress reporter sees
					// pairs move continuously; two uncontended atomic adds
					// against hundreds of pair updates is noise.
					for i := first; i < hi; i += workers {
						ws.trainSequence(seqs[i], &doneTokens, totalTokens)
						pairs.Add(ws.pairs)
						updates.Add(ws.updates)
						ws.pairs, ws.updates = 0, 0
					}
				}(w, states[w])
			}
			wg.Wait()

			if ckptOn {
				nextE, nextB := epoch, b+1
				if nextB == numBlocks {
					nextE, nextB = epoch+1, 0
				}
				finished := nextE >= opt.Epochs
				if finished || pairs.Load()-lastCkptPairs >= opt.CheckpointEvery {
					if err := saveCheckpoint(opt.CheckpointDir, fp, nextE, nextB, states, model, &pairs, &updates, &doneTokens); err != nil {
						return Stats{}, fmt.Errorf("sgns: checkpoint: %w", err)
					}
					lastCkptPairs = pairs.Load()
					if checkpointCrashHook != nil && checkpointCrashHook(nextE, nextB) {
						return Stats{}, errCrashHook
					}
				}
			}
		}
	}

	st := Stats{
		Pairs:       pairs.Load(),
		Updates:     updates.Load(),
		Tokens:      doneTokens.Load(),
		Elapsed:     time.Since(start),
		WorkersUsed: workers,
	}
	st.FinalLR = decayLR(opt.LR, opt.MinLRFrac, st.Tokens, totalTokens)
	return st, nil
}

// checkpointCrashHook, when set (tests only), is called after each
// snapshot write with the snapshot's resume position; returning true kills
// the run at exactly that point, simulating a process crash whose last
// visible effect is the snapshot.
var checkpointCrashHook func(epoch, block int) bool

var errCrashHook = errors.New("sgns: crashed by test hook")

// checkpointBlockSeqs is the sequence-block granularity used when
// checkpointing is enabled: a snapshot can be cut only at a block barrier,
// so CheckpointEvery is a lower bound on the pair gap between snapshots,
// not an exact cadence.
const checkpointBlockSeqs = 512

// saveCheckpoint cuts a snapshot at a block barrier (no shard goroutines
// running, so the model and counters are a consistent view).
func saveCheckpoint(dir string, fp uint64, epoch, block int, states []*workerState, model *emb.Model, pairs, updates, doneTokens *atomic.Uint64) error {
	rngs := make([][4]uint64, len(states))
	for i, ws := range states {
		rngs[i] = ws.r.State()
	}
	return checkpoint.Save(dir, &checkpoint.Snapshot{
		OptionsHash: fp,
		Epoch:       epoch,
		Block:       block,
		Counters:    []uint64{pairs.Load(), updates.Load(), doneTokens.Load()},
		RNGs:        rngs,
		Model:       model,
	})
}

// noiseWeights returns count^alpha per token (P_noise(v) ∝ freq(v)^α,
// §III-C); zero-count tokens get zero weight and are never drawn.
func noiseWeights(counts []uint64, alpha float64) []float64 {
	w := make([]float64, len(counts))
	for i, c := range counts {
		if c > 0 {
			w[i] = math.Pow(float64(c), alpha)
		}
	}
	return w
}

// subsampleKeepProbs computes Mikolov keep probabilities over the training
// corpus counts, multiplying non-item tokens by siBoost (the paper's
// "aggressive" SI downsampling).
func subsampleKeepProbs(dict *vocab.Dict, counts []uint64, total uint64, t, siBoost float64) []float32 {
	p := make([]float32, len(counts))
	for i := range counts {
		if counts[i] == 0 || total == 0 {
			p[i] = 1
			continue
		}
		f := float64(counts[i]) / float64(total)
		keep := math.Sqrt(t/f) + t/f
		if keep > 1 {
			keep = 1
		}
		if dict.KindOf(int32(i)) != vocab.KindItem {
			keep *= siBoost
		}
		p[i] = float32(keep)
	}
	return p
}

func decayLR(lr0, minFrac float32, done, total uint64) float32 {
	f := 1 - float32(float64(done)/float64(total))
	if f < minFrac {
		f = minFrac
	}
	return lr0 * f
}

// workerState is one Hogwild shard's scratch space.
type workerState struct {
	model   *emb.Model
	noise   *alias.Table
	keep    []float32
	opt     *Options
	r       *rng.RNG
	grad    []float32
	kept    []int32
	pairs   uint64
	updates uint64
	lr      float32
}

// trainSequence consumes one sequence: subsample, then slide the (reduced)
// window and train each pair.
func (ws *workerState) trainSequence(seq []int32, doneTokens *atomic.Uint64, totalTokens uint64) {
	opt := ws.opt
	kept := ws.kept[:0]
	for _, t := range seq {
		if ws.keep != nil && ws.r.Float32() >= ws.keep[t] {
			continue
		}
		kept = append(kept, t)
	}
	ws.kept = kept
	done := doneTokens.Add(uint64(len(seq)))
	ws.lr = decayLR(opt.LR, opt.MinLRFrac, done, totalTokens)
	if len(kept) < 2 {
		return
	}
	stride := opt.Stride
	if stride < 1 {
		stride = 1
	}
	steps := opt.Window / stride
	if steps < 1 {
		steps = 1
	}
	for i := range kept {
		// word2vec-style reduced window, in stride units:
		// uniform over {stride, 2*stride, ..., steps*stride}.
		win := stride * (1 + ws.r.Intn(steps))
		lo := i - win
		if opt.Directed || lo < 0 {
			lo = i // directed: no left context
		}
		hi := i + win
		if hi >= len(kept) {
			hi = len(kept) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			ws.trainPair(kept[i], kept[j])
		}
	}
}

// trainPair applies one SGNS update: the positive (target, context) pair
// plus Negatives samples from the noise distribution. Gradients w.r.t. the
// input vector are accumulated and applied once, per the original word2vec.
func (ws *workerState) trainPair(target, ctx int32) {
	m := ws.model
	opt := ws.opt
	v := m.In.Row(target)
	grad := ws.grad
	vecmath.Zero(grad)

	// Positive sample: label 1.
	c := m.Out.Row(ctx)
	g := (1 - vecmath.Sigmoid(vecmath.Dot(v, c))) * ws.lr
	vecmath.Axpy(g, c, grad)
	vecmath.Axpy(g, v, c)

	// Negative samples: label 0. A draw equal to the true context is
	// rejected, as in word2vec.
	for n := 0; n < opt.Negatives; n++ {
		t := int32(ws.noise.Sample(ws.r))
		if t == ctx {
			continue
		}
		c := m.Out.Row(t)
		g := (0 - vecmath.Sigmoid(vecmath.Dot(v, c))) * ws.lr
		vecmath.Axpy(g, c, grad)
		vecmath.Axpy(g, v, c)
	}
	vecmath.Add(grad, v)
	ws.pairs++
	ws.updates += uint64(1 + opt.Negatives)
}
