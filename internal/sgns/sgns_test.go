package sgns

import (
	"testing"

	"sisg/internal/rng"
	"sisg/internal/vocab"
)

// clusterDict builds a vocabulary of 2*n items and sequences where items
// 0..n-1 co-occur and items n..2n-1 co-occur, never across — the simplest
// structure a working skip-gram must recover.
func clusterCorpus(n, sessions int, seed uint64) (*vocab.Dict, [][]int32) {
	d := vocab.NewDict(2 * n)
	for i := 0; i < 2*n; i++ {
		d.Add(itemName(i), vocab.KindItem, 0)
	}
	r := rng.New(seed)
	var seqs [][]int32
	for s := 0; s < sessions; s++ {
		base := 0
		if s%2 == 1 {
			base = n
		}
		seq := make([]int32, 8)
		for j := range seq {
			seq[j] = int32(base + r.Intn(n))
		}
		seqs = append(seqs, seq)
	}
	return d, seqs
}

func itemName(i int) string {
	return "item_" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func testOptions() Options {
	o := Defaults()
	o.Dim = 16
	o.Epochs = 5
	o.Workers = 1
	o.SubsampleT = 0
	return o
}

func TestValidate(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Dim = 0 },
		func(o *Options) { o.Window = 0 },
		func(o *Options) { o.Negatives = -1 },
		func(o *Options) { o.Epochs = 0 },
		func(o *Options) { o.LR = 0 },
		func(o *Options) { o.SIBoost = 2 },
		func(o *Options) { o.NoiseAlpha = 0 },
	}
	for i, mutate := range bad {
		o := Defaults()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	o := Defaults()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyVocabError(t *testing.T) {
	if _, _, err := Train(vocab.NewDict(0), nil, Defaults()); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
}

func TestLearnsClusters(t *testing.T) {
	d, seqs := clusterCorpus(10, 600, 42)
	m, st, err := Train(d, seqs, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs == 0 || st.Tokens == 0 {
		t.Fatalf("no training happened: %+v", st)
	}
	// Mean within-cluster cosine must clearly exceed cross-cluster cosine.
	var within, across float64
	var nw, na int
	for a := int32(0); a < 10; a++ {
		for b := a + 1; b < 20; b++ {
			c := float64(m.ScoreCosine(a, b))
			if b < 10 {
				within += c
				nw++
			} else {
				across += c
				na++
			}
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if within < across+0.2 {
		t.Fatalf("clusters not learned: within=%.3f across=%.3f", within, across)
	}
}

func TestDirectedLearnsOrder(t *testing.T) {
	// Sequences are always the fixed chain 0→1→2→…→9. A directed model
	// must give in(i)·out(i+1) ≫ in(i+1)·out(i).
	d := vocab.NewDict(10)
	for i := 0; i < 10; i++ {
		d.Add(itemName(i), vocab.KindItem, 0)
	}
	chain := make([]int32, 10)
	for i := range chain {
		chain[i] = int32(i)
	}
	var seqs [][]int32
	for s := 0; s < 400; s++ {
		seqs = append(seqs, chain)
	}
	o := testOptions()
	o.Directed = true
	o.Window = 2
	m, _, err := Train(d, seqs, o)
	if err != nil {
		t.Fatal(err)
	}
	better := 0
	for i := int32(0); i < 9; i++ {
		if m.ScoreDirected(i, i+1) > m.ScoreDirected(i+1, i) {
			better++
		}
	}
	if better < 8 {
		t.Fatalf("directed order learned for only %d/9 adjacent pairs", better)
	}
}

func TestDeterministicSingleWorker(t *testing.T) {
	d, seqs := clusterCorpus(6, 100, 7)
	o := testOptions()
	o.Epochs = 2
	m1, st1, err := Train(d, seqs, o)
	if err != nil {
		t.Fatal(err)
	}
	m2, st2, err := Train(d, seqs, o)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Pairs != st2.Pairs {
		t.Fatalf("pair counts differ: %d vs %d", st1.Pairs, st2.Pairs)
	}
	a, b := m1.In.Data(), m2.In.Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("single-worker training is not deterministic")
		}
	}
}

func TestStrideWindows(t *testing.T) {
	// With stride 3 and window 6, a center must reach at least stride
	// positions; construct a sequence where items sit 3 apart (simulating
	// SI padding) and verify pairs at distance 3 are trained (the pair
	// count must exceed the no-stride directed minimum).
	d, seqs := clusterCorpus(8, 200, 9)
	o := testOptions()
	o.Stride = 3
	o.Window = 6
	_, st, err := Train(d, seqs, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs == 0 {
		t.Fatal("stride training produced no pairs")
	}
}

func TestDirectedHalvesPairs(t *testing.T) {
	d, seqs := clusterCorpus(8, 300, 5)
	sym := testOptions()
	symM, symStats, err := Train(d, seqs, sym)
	if err != nil {
		t.Fatal(err)
	}
	_ = symM
	dir := testOptions()
	dir.Directed = true
	_, dirStats, err := Train(d, seqs, dir)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dirStats.Pairs) / float64(symStats.Pairs)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("directed/symmetric pair ratio %.2f, want ~0.5", ratio)
	}
}

func TestStatsThroughput(t *testing.T) {
	d, seqs := clusterCorpus(4, 50, 3)
	_, st, err := Train(d, seqs, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensPerSec() <= 0 {
		t.Fatal("throughput not positive")
	}
	if st.Updates != st.Pairs*uint64(1+testOptions().Negatives) {
		t.Fatalf("updates %d != pairs %d × %d", st.Updates, st.Pairs, 1+testOptions().Negatives)
	}
}

func TestDecayLR(t *testing.T) {
	if got := decayLR(0.1, 1e-4, 0, 100); got != 0.1 {
		t.Fatalf("start LR %v", got)
	}
	if got := decayLR(0.1, 1e-4, 100, 100); got != 0.1*1e-4 {
		t.Fatalf("end LR %v", got)
	}
	mid := decayLR(0.1, 1e-4, 50, 100)
	if mid < 0.049 || mid > 0.051 {
		t.Fatalf("mid LR %v", mid)
	}
}

func TestParallelWorkersProduceReasonableModel(t *testing.T) {
	d, seqs := clusterCorpus(10, 600, 11)
	o := testOptions()
	o.Workers = 4
	m, st, err := Train(d, seqs, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkersUsed != 4 {
		t.Fatalf("workers used %d", st.WorkersUsed)
	}
	var within, across float64
	var nw, na int
	for a := int32(0); a < 10; a++ {
		for b := a + 1; b < 20; b++ {
			c := float64(m.ScoreCosine(a, b))
			if b < 10 {
				within += c
				nw++
			} else {
				across += c
				na++
			}
		}
	}
	if within/float64(nw) < across/float64(na)+0.2 {
		t.Fatal("parallel training failed to learn clusters")
	}
}
