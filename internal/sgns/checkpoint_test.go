package sgns

import (
	"errors"
	"testing"

	"sisg/internal/rng"
	"sisg/internal/vocab"
)

// ckptCorpus builds a small deterministic corpus: vocabulary of n tokens,
// sessions of random tokens.
func ckptCorpus(t *testing.T, n, sessions, sessLen int) (*vocab.Dict, [][]int32) {
	t.Helper()
	d := vocab.NewDict(n)
	for i := 0; i < n; i++ {
		d.Add(itemName(i), vocab.KindItem, 0)
	}
	r := rng.New(99)
	seqs := make([][]int32, sessions)
	for s := range seqs {
		seq := make([]int32, sessLen)
		for j := range seq {
			seq[j] = int32(r.Intn(n))
			d.AddCount(seq[j], 1)
		}
		seqs[s] = seq
	}
	return d, seqs
}

func ckptOptions(workers int) Options {
	opt := Defaults()
	opt.Dim = 8
	opt.Epochs = 3
	opt.Workers = workers
	opt.Seed = 5
	return opt
}

// A run interrupted right after its first snapshot and resumed must end
// with exactly the Stats trajectory of an uninterrupted run: same Pairs,
// Updates and Tokens. With a single shard the model itself must also be
// bit-identical (multi-shard Hogwild is inherently schedule-dependent in
// the low-order float bits, but never in the counters).
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	for _, workers := range []int{1, 4} {
		dict, seqs := ckptCorpus(t, 40, 300, 12)

		base := ckptOptions(workers)
		baseModel, baseStats, err := Train(dict, seqs, base)
		if err != nil {
			t.Fatal(err)
		}
		if baseStats.Pairs == 0 {
			t.Fatal("baseline trained nothing")
		}

		dir := t.TempDir()
		opt := ckptOptions(workers)
		opt.CheckpointDir = dir
		opt.CheckpointEvery = 1 // snapshot at every block barrier
		crashes := 0
		checkpointCrashHook = func(epoch, block int) bool {
			crashes++
			return crashes == 1
		}
		_, _, err = Train(dict, seqs, opt)
		checkpointCrashHook = nil
		if !errors.Is(err, errCrashHook) {
			t.Fatalf("workers=%d: expected injected crash, got %v", workers, err)
		}

		opt.Resume = true
		resModel, resStats, err := Train(dict, seqs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if resStats.Pairs != baseStats.Pairs || resStats.Updates != baseStats.Updates || resStats.Tokens != baseStats.Tokens {
			t.Fatalf("workers=%d: resumed stats %+v != uninterrupted %+v", workers, resStats, baseStats)
		}
		if workers == 1 {
			for i, v := range baseModel.In.Data() {
				if resModel.In.Data()[i] != v {
					t.Fatalf("resumed model diverges at in[%d]", i)
				}
			}
			for i, v := range baseModel.Out.Data() {
				if resModel.Out.Data()[i] != v {
					t.Fatalf("resumed model diverges at out[%d]", i)
				}
			}
		}
	}
}

// Resuming under different hyper-parameters must be refused, not silently
// continued.
func TestCheckpointResumeRefusesMismatchedOptions(t *testing.T) {
	dict, seqs := ckptCorpus(t, 30, 120, 10)
	dir := t.TempDir()
	opt := ckptOptions(1)
	opt.CheckpointDir = dir
	opt.CheckpointEvery = 1
	if _, _, err := Train(dict, seqs, opt); err != nil {
		t.Fatal(err)
	}
	bad := opt
	bad.Resume = true
	bad.LR = opt.LR * 2
	if _, _, err := Train(dict, seqs, bad); err == nil {
		t.Fatal("resume with different LR accepted")
	}
	// Changing only checkpoint control fields must NOT invalidate.
	ok := opt
	ok.Resume = true
	ok.CheckpointEvery = 999999
	if _, _, err := Train(dict, seqs, ok); err != nil {
		t.Fatalf("resume with different cadence refused: %v", err)
	}
}

// Resume with an empty checkpoint directory starts fresh (operational
// pattern: always pass -resume; the first run has nothing to resume).
func TestResumeWithoutSnapshotStartsFresh(t *testing.T) {
	dict, seqs := ckptCorpus(t, 30, 120, 10)
	opt := ckptOptions(2)
	opt.CheckpointDir = t.TempDir()
	opt.CheckpointEvery = 1
	opt.Resume = true
	_, st, err := Train(dict, seqs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs == 0 {
		t.Fatal("fresh resume run trained nothing")
	}
}

// A completed run's final snapshot resumes as a no-op that still returns
// the finished counters and model.
func TestResumeAfterCompletionIsNoOp(t *testing.T) {
	dict, seqs := ckptCorpus(t, 30, 120, 10)
	dir := t.TempDir()
	opt := ckptOptions(2)
	opt.CheckpointDir = dir
	opt.CheckpointEvery = 1
	_, first, err := Train(dict, seqs, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	m, again, err := Train(dict, seqs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.Pairs != first.Pairs {
		t.Fatalf("no-op resume changed pairs: %d != %d", again.Pairs, first.Pairs)
	}
	var nonZero bool
	for _, v := range m.In.Data() {
		if v != 0 {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Fatal("resumed model is empty")
	}
}
