package sgns

import (
	"testing"

	"sisg/internal/vocab"
)

// liveFixture feeds n synthetic two-cluster sessions: rows {0..3} co-occur,
// rows {4..7} co-occur, never across.
func liveFixture(t *testing.T, n int) *Live {
	t.Helper()
	opt := LiveDefaults(16)
	opt.Window = 2
	opt.Seed = 3
	l, err := NewLive(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		l.AddRow(vocab.KindItem)
	}
	state := uint64(11)
	next := func(m uint64) int32 {
		state = state*6364136223846793005 + 1442695040888963407
		return int32(state >> 33 % m)
	}
	for i := 0; i < n; i++ {
		base := int32(0)
		if i%2 == 1 {
			base = 4
		}
		seq := make([]int32, 6)
		for j := range seq {
			seq[j] = base + next(4)
		}
		l.TrainSequence(seq)
	}
	return l
}

func TestLiveDeterministic(t *testing.T) {
	a, b := liveFixture(t, 400), liveFixture(t, 400)
	if a.Pairs() == 0 {
		t.Fatal("no pairs trained")
	}
	if a.Pairs() != b.Pairs() || a.Updates() != b.Updates() {
		t.Fatalf("stats diverge: %d/%d vs %d/%d", a.Pairs(), a.Updates(), b.Pairs(), b.Updates())
	}
	ad, bd := a.Model().In.Data(), b.Model().In.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			t.Fatalf("input matrices diverge at %d: %v vs %v", i, ad[i], bd[i])
		}
	}
}

func TestLiveLearnsCoOccurrence(t *testing.T) {
	l := liveFixture(t, 3000)
	m := l.Model()
	// Within-cluster similarity must beat cross-cluster.
	within := m.ScoreCosine(0, 1)
	cross := m.ScoreCosine(0, 5)
	if within <= cross {
		t.Fatalf("within-cluster cosine %.4f not above cross-cluster %.4f", within, cross)
	}
}

func TestLiveAddRowAfterTraining(t *testing.T) {
	l := liveFixture(t, 200)
	row := l.AddRow(vocab.KindItem)
	if row != 8 {
		t.Fatalf("new row %d, want 8", row)
	}
	// The new row trains immediately in sequences.
	before := append([]float32(nil), l.Model().In.Row(row)...)
	l.TrainSequence([]int32{row, 0, 1, row, 2})
	after := l.Model().In.Row(row)
	changed := false
	for i := range after {
		if after[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("freshly added row untouched by training")
	}
}

func TestLiveSetRowSeedsBeforeTraining(t *testing.T) {
	opt := LiveDefaults(4)
	l, err := NewLive(opt)
	if err != nil {
		t.Fatal(err)
	}
	row := l.AddRow(vocab.KindItem)
	seed := make([]float32, opt.Dim)
	for i := range seed {
		seed[i] = 0.25
	}
	l.SetRow(row, seed, seed)
	got := l.Model().In.Row(row)
	for i := range got {
		if got[i] != 0.25 {
			t.Fatalf("seeded row[%d] = %v, want 0.25", i, got[i])
		}
	}
}

func TestLiveCapacityPanics(t *testing.T) {
	opt := LiveDefaults(2)
	l, err := NewLive(opt)
	if err != nil {
		t.Fatal(err)
	}
	l.AddRow(vocab.KindItem)
	l.AddRow(vocab.KindItem)
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow beyond capacity did not panic")
		}
	}()
	l.AddRow(vocab.KindItem)
}
