// Retrieval scoring kernels: batch dot products of one query against a
// block of contiguous matrix rows. This is the hot loop of the matching
// stage — a top-k scan touches every item row — so unlike the training
// kernels above it is allowed an arch-specific SIMD implementation, with a
// pure-Go reference kept bit-compatible for every other platform.
//
// Both implementations follow one fixed accumulation schedule (the
// "16-lane schedule"): lane j accumulates elements i ≡ j (mod 16), lanes
// reduce as t[j] = ((s[j]+s[4+j])+s[8+j])+s[12+j] for j in 0..3, then
// sum = ((t0+t1)+t2)+t3, then the tail (i >= dim&^15) is added
// sequentially, mul-then-add per element with no FMA contraction. Because
// the schedule is identical everywhere, DotRows is bit-identical to
// DotRowsRef on every input and every platform — the property the sharded
// retrieval engine's determinism guarantee rests on, and the one
// TestDotRowsBitIdentical locks down.
package vecmath

// DotRows computes dst[r] = <rows[r*dim : (r+1)*dim], q> for every r in
// [0, len(dst)), where dim = len(q). rows must hold exactly
// len(dst)*len(q) values (the contiguous row block of a V×dim matrix).
// Uses the SIMD kernel when the platform has one; always bit-identical to
// DotRowsRef.
func DotRows(dst, rows, q []float32) {
	if len(rows) != len(dst)*len(q) {
		panic("vecmath: DotRows shape mismatch")
	}
	if len(dst) == 0 {
		return
	}
	if dotRowsAsm != nil && len(q) > 0 {
		dotRowsAsm(dst, rows, q)
		return
	}
	DotRowsRef(dst, rows, q)
}

// dotRowsAsm, when non-nil, is the platform SIMD kernel for DotRows. It is
// installed from an arch-specific init (see dotrows_amd64.go) and must be
// bit-identical to DotRowsRef; it may assume len(q) > 0 and matching
// shapes. Left nil on platforms without a kernel.
var dotRowsAsm func(dst, rows, q []float32)

// DotRowsRef is the portable pure-Go reference for DotRows: same shapes,
// same 16-lane accumulation schedule, bit-identical results. It exists so
// the SIMD path has an executable specification to be property-tested
// against, and so non-amd64 builds serve identical retrieval results.
func DotRowsRef(dst, rows, q []float32) {
	if len(rows) != len(dst)*len(q) {
		panic("vecmath: DotRowsRef shape mismatch")
	}
	dim := len(q)
	for r := range dst {
		dst[r] = dotSched16(rows[r*dim:(r+1)*dim:(r+1)*dim], q)
	}
}

// dotSched16 is the 16-lane-schedule dot product (see the package-section
// comment above for the exact order).
func dotSched16(a, b []float32) float32 {
	var s [16]float32
	i := 0
	for ; i+16 <= len(a); i += 16 {
		aa := a[i : i+16 : i+16]
		bb := b[i : i+16 : i+16]
		for j := 0; j < 16; j++ {
			s[j] += aa[j] * bb[j]
		}
	}
	var t [4]float32
	for j := 0; j < 4; j++ {
		t[j] = ((s[j] + s[4+j]) + s[8+j]) + s[12+j]
	}
	sum := ((t[0] + t[1]) + t[2]) + t[3]
	for ; i < len(a); i++ {
		sum += a[i] * b[i]
	}
	return sum
}
