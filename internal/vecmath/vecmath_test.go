package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestDotMatchesNaive(t *testing.T) {
	f := func(raw []float32) bool {
		// Bound values to avoid float blowup obscuring the comparison.
		a := make([]float32, len(raw))
		b := make([]float32, len(raw))
		for i, v := range raw {
			x := float32(math.Mod(float64(v), 10))
			if x != x { // NaN
				x = 1
			}
			a[i] = x
			b[i] = -x / 2
		}
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		return almostEq(got, want, 1e-2+math.Abs(want)*1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAxpy(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5, 6, 7}
	y := []float32{1, 1, 1, 1, 1, 1, 1}
	Axpy(2, x, y)
	for i := range y {
		want := 1 + 2*x[i]
		if y[i] != want {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestScaleZeroAddMean(t *testing.T) {
	x := []float32{2, 4, 6}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Fatalf("Scale: %v", x)
	}
	y := []float32{1, 1, 1}
	Add(x, y)
	if y[0] != 2 || y[1] != 3 || y[2] != 4 {
		t.Fatalf("Add: %v", y)
	}
	Zero(y)
	if y[0] != 0 || y[2] != 0 {
		t.Fatalf("Zero: %v", y)
	}
	dst := make([]float32, 3)
	Mean(dst, []float32{0, 0, 0}, []float32{2, 4, 6})
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("Mean: %v", dst)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of nothing did not panic")
		}
	}()
	Mean(make([]float32, 2))
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := Normalize(v); got != 5 {
		t.Fatalf("Normalize returned %v", got)
	}
	if !almostEq(float64(Norm(v)), 1, 1e-6) {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float32{0, 0}
	if got := Normalize(z); got != 0 {
		t.Fatalf("Normalize(zero) = %v", got)
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, a); !almostEq(float64(got), 1, 1e-6) {
		t.Fatalf("self cosine = %v", got)
	}
	if got := Cosine(a, []float32{0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestCosineBounded(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := make([]float32, n), make([]float32, n)
		for i := 0; i < n; i++ {
			av := float32(math.Mod(float64(raw[i]), 100))
			bv := float32(math.Mod(float64(raw[n+i]), 100))
			if av != av {
				av = 0
			}
			if bv != bv {
				bv = 0
			}
			a[i], b[i] = av, bv
		}
		c := float64(Cosine(a, b))
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidTable(t *testing.T) {
	for _, x := range []float32{-10, -3, -1, -0.1, 0, 0.1, 1, 3, 10} {
		got := float64(Sigmoid(x))
		want := SigmoidExact(float64(x))
		tol := 2e-3
		if x <= -MaxExp || x >= MaxExp {
			tol = 3e-3 // saturation boundary
		}
		if !almostEq(got, want, tol) {
			t.Errorf("Sigmoid(%v) = %v, want %v", x, got, want)
		}
	}
	if Sigmoid(100) != 1 {
		t.Error("Sigmoid should saturate to 1")
	}
	if Sigmoid(-100) != 0 {
		t.Error("Sigmoid should saturate to 0")
	}
}

func TestSigmoidMonotone(t *testing.T) {
	prev := Sigmoid(-MaxExp)
	for x := float32(-MaxExp); x <= MaxExp; x += 0.01 {
		cur := Sigmoid(x)
		if cur < prev {
			t.Fatalf("Sigmoid not monotone at %v", x)
		}
		prev = cur
	}
}

func BenchmarkDot128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(i) / 2
	}
	b.ResetTimer()
	var s float32
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}

func BenchmarkAxpy128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.001, x, y)
	}
}

func BenchmarkSigmoid(b *testing.B) {
	var s float32
	for i := 0; i < b.N; i++ {
		s += Sigmoid(float32(i%12) - 6)
	}
	_ = s
}
