// Package vecmath provides the float32 vector kernels at the heart of
// skip-gram training: dot products, scaled accumulation (axpy), and cosine
// similarity, plus the precomputed sigmoid lookup table word2vec-style
// trainers rely on.
//
// All embedding math in this repository is float32: at billion scale the
// paper's engine is memory-bound, and float32 halves both footprint and
// memory traffic versus float64 with no measurable loss for SGNS. Kernels
// are manually 4-way unrolled, which the Go compiler turns into reasonable
// scalar code; this is the portable, stdlib-only equivalent of the SIMD
// loops a production engine would carry.
package vecmath

import "math"

// Dot returns the inner product of a and b. The slices must be the same
// length; this is enforced by a bounds hint rather than a branch so the
// compiler can eliminate per-element checks.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("vecmath: Axpy length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		yy[0] += alpha * xx[0]
		yy[1] += alpha * xx[1]
		yy[2] += alpha * xx[2]
		yy[3] += alpha * xx[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes y += x in place.
func Add(x, y []float32) {
	if len(x) != len(y) {
		panic("vecmath: Add length mismatch")
	}
	for i := range x {
		y[i] += x[i]
	}
}

// Zero clears x.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Norm returns the Euclidean norm of x.
func Norm(x []float32) float32 {
	return float32(math.Sqrt(float64(Dot(x, x))))
}

// Normalize scales x to unit length in place and returns its original norm.
// A zero vector is left unchanged and 0 is returned.
func Normalize(x []float32) float32 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// Cosine returns the cosine similarity of a and b, or 0 if either is zero.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Mean overwrites dst with the element-wise mean of the given vectors.
// It panics if vecs is empty or lengths differ.
func Mean(dst []float32, vecs ...[]float32) {
	if len(vecs) == 0 {
		panic("vecmath: Mean of no vectors")
	}
	Zero(dst)
	for _, v := range vecs {
		Add(v, dst)
	}
	Scale(1/float32(len(vecs)), dst)
}

// Sigmoid lookup table, identical in spirit to word2vec's expTable: the
// logistic function is evaluated ~40 times per training pair, and a 4k-entry
// table over [-maxExp, maxExp] is accurate to ~1e-3, which SGD noise dwarfs.
const (
	sigTableSize = 4096
	// MaxExp bounds the argument of the tabulated sigmoid. Inputs outside
	// [-MaxExp, MaxExp] saturate to 0 or 1, matching word2vec behaviour.
	MaxExp = 6.0
)

var sigTable [sigTableSize]float32

func init() {
	for i := 0; i < sigTableSize; i++ {
		x := (float64(i)/sigTableSize*2 - 1) * MaxExp
		sigTable[i] = float32(1 / (1 + math.Exp(-x)))
	}
}

// Sigmoid returns the logistic function of x from the lookup table,
// saturating outside [-MaxExp, MaxExp].
func Sigmoid(x float32) float32 {
	if x >= MaxExp {
		return 1
	}
	if x <= -MaxExp {
		return 0
	}
	idx := int((x + MaxExp) / (2 * MaxExp) * sigTableSize)
	if idx >= sigTableSize {
		idx = sigTableSize - 1
	}
	return sigTable[idx]
}

// SigmoidExact returns the logistic function computed with math.Exp, used
// by tests to bound table error and by numerically sensitive callers.
func SigmoidExact(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
