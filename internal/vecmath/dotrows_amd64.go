//go:build amd64 && gc && !purego

package vecmath

// The AVX kernel requires both the CPU flag and OS support for saving YMM
// state (checked via XGETBV), probed once here; without them DotRows keeps
// using the pure-Go reference.
func init() {
	if hasAVX() {
		dotRowsAsm = dotRowsAVX
	}
}

// hasAVX reports CPU + OS support for AVX (CPUID leaf 1 ECX bits 27/28,
// then XCR0 bits 1..2). Implemented in dotrows_amd64.s.
func hasAVX() bool

// dotRowsAVX computes dst[r] = <rows[r*dim:(r+1)*dim], q> with the 16-lane
// schedule on AVX 256-bit registers; bit-identical to DotRowsRef.
// Requires len(rows) == len(dst)*len(q) and len(q) > 0 (enforced by the
// DotRows wrapper). Implemented in dotrows_amd64.s.
//
//go:noescape
func dotRowsAVX(dst, rows, q []float32)
