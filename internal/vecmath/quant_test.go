package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"sisg/internal/rng"
)

// randomRow fills a length-n row with values in [-spread, spread], with an
// occasional exact zero and repeated value so quantization ties occur.
func randomRow(r *rng.RNG, n int, spread float64) []float32 {
	row := make([]float32, n)
	for i := range row {
		switch r.Intn(16) {
		case 0:
			row[i] = 0
		case 1:
			if i > 0 {
				row[i] = row[i-1]
			}
		default:
			row[i] = float32((r.Float64()*2 - 1) * spread)
		}
	}
	return row
}

// Quantize/dequantize round trip: every element must reconstruct within
// scale/2 (the bound the max-abs symmetric format guarantees), and the
// max-abs element must survive with code magnitude 127.
func TestQuantizeRoundTripErrorBound(t *testing.T) {
	f := func(seed uint64, dimRaw uint8, spreadRaw uint8) bool {
		r := rng.New(seed)
		dim := 1 + int(dimRaw)%192
		spread := 0.001 + float64(spreadRaw)/8 // 0.001 .. ~32
		row := randomRow(r, dim, spread)
		codes := make([]int8, dim)
		scale := QuantizeRow(codes, row)
		if scale < 0 {
			t.Errorf("negative scale %g", scale)
			return false
		}
		back := make([]float32, dim)
		DequantizeRow(back, codes, scale)
		// float32 slack: scale*code is one rounding away from exact.
		bound := float64(scale)/2*(1+1e-5) + 1e-30
		for i := range row {
			if err := math.Abs(float64(row[i]) - float64(back[i])); err > bound {
				t.Errorf("seed=%d dim=%d elem %d: |%g - %g| = %g > %g (scale %g)",
					seed, dim, i, row[i], back[i], err, bound, scale)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeZeroRow(t *testing.T) {
	row := make([]float32, 37)
	codes := make([]int8, 37)
	if scale := QuantizeRow(codes, row); scale != 0 {
		t.Fatalf("zero row scale = %g, want 0", scale)
	}
	for i, c := range codes {
		if c != 0 {
			t.Fatalf("zero row code[%d] = %d", i, c)
		}
	}
}

// Quantized dot vs float dot: the error is bounded by the analytic bound
//
//	|<r,q> - s_r s_q <c_r,c_q>| <= (s_r/2)·Σ|q_i| + (s_q/2)·Σ|r̂_i|
//
// (each element of a quantized row is within half a scale step of its
// float value, and the int32 accumulation inside DotInt8 is exact).
func TestQuantizedDotErrorBound(t *testing.T) {
	f := func(seed uint64, dimRaw uint8) bool {
		r := rng.New(seed)
		dim := 1 + int(dimRaw)%192
		row := randomRow(r, dim, 2)
		q := randomRow(r, dim, 2)
		rc := make([]int8, dim)
		qc := make([]int8, dim)
		rs := QuantizeRow(rc, row)
		qs := QuantizeRow(qc, q)

		got := float64(rs) * float64(qs) * float64(DotInt8(rc, qc))
		var want, sumAbsQ, sumAbsRHat float64
		for i := range row {
			want += float64(row[i]) * float64(q[i])
			sumAbsQ += math.Abs(float64(q[i]))
			sumAbsRHat += math.Abs(float64(rs) * float64(rc[i]))
		}
		bound := float64(rs)/2*sumAbsQ + float64(qs)/2*sumAbsRHat
		// Slack for the float32 rounding of the scales themselves.
		bound = bound*(1+1e-5) + 1e-20
		if err := math.Abs(got - want); err > bound {
			t.Errorf("seed=%d dim=%d: |%g - %g| = %g > bound %g", seed, dim, got, want, err, bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// DotInt8 must agree with a plain reference loop (the 4-way unroll is a
// pure speedup; integer arithmetic leaves no schedule freedom).
func TestDotInt8MatchesReference(t *testing.T) {
	r := rng.New(7)
	for dim := 0; dim < 70; dim++ {
		a := make([]int8, dim)
		b := make([]int8, dim)
		for i := range a {
			a[i] = int8(r.Intn(255) - 127)
			b[i] = int8(r.Intn(255) - 127)
		}
		var want int32
		for i := range a {
			want += int32(a[i]) * int32(b[i])
		}
		if got := DotInt8(a, b); got != want {
			t.Fatalf("dim %d: DotInt8 = %d, want %d", dim, got, want)
		}
	}
}

func BenchmarkDotInt8Dim64(b *testing.B) {
	r := rng.New(9)
	x := make([]int8, 64)
	y := make([]int8, 64)
	for i := range x {
		x[i] = int8(r.Intn(255) - 127)
		y[i] = int8(r.Intn(255) - 127)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt32 = DotInt8(x, y)
	}
}

var sinkInt32 int32
