//go:build amd64 && gc && !purego

#include "textflag.h"

// func hasAVX() bool
//
// CPUID leaf 1: ECX bit 27 (OSXSAVE) and bit 28 (AVX) must both be set,
// then XGETBV(XCR0) bits 1..2 confirm the OS saves SSE+AVX state.
TEXT ·hasAVX(SB), NOSPLIT, $0-1
	MOVQ $1, AX
	XORQ CX, CX
	CPUID
	MOVL CX, BX
	SHRL $27, BX
	ANDL $3, BX
	CMPL BX, $3
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func dotRowsAVX(dst, rows, q []float32)
//
// dst[r] = <rows[r*dim:(r+1)*dim], q> for r in [0, len(dst)), dim = len(q).
// Implements the 16-lane schedule exactly as dotSched16 (dotrows.go):
//
//   Y0 lane j accumulates elements i ≡ j   (mod 16), j = 0..7
//   Y1 lane j accumulates elements i ≡ 8+j (mod 16)
//   t[j] = ((s[j]+s[4+j])+s[8+j])+s[12+j]  — the VEXTRACTF128/VADDPS chain
//   sum  = ((t0+t1)+t2)+t3                  — sequential scalar adds
//   tail — sequential scalar mul-then-add (no FMA anywhere)
//
// The main loop is unrolled to 32 elements; the two extra vector MACs feed
// the same accumulators in ascending element order, so the per-lane add
// sequence (and therefore every rounding step) is unchanged.
TEXT ·dotRowsAVX(SB), NOSPLIT, $16-72
	MOVQ dst_base+0(FP), R8
	MOVQ dst_len+8(FP), R9
	MOVQ rows_base+24(FP), SI
	MOVQ q_base+48(FP), DI
	MOVQ q_len+56(FP), CX

	MOVQ CX, R12
	ANDQ $~15, R12        // dim &^ 15: end of the 16-wide body
	MOVQ CX, R13
	ANDQ $~31, R13        // dim &^ 31: end of the 32-wide unrolled body

	XORQ R10, R10         // row index

rowloop:
	CMPQ R10, R9
	JGE  alldone

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	XORQ  AX, AX

loop32:
	CMPQ AX, R13
	JGE  loop16
	VMOVUPS (SI)(AX*4), Y2
	VMULPS  (DI)(AX*4), Y2, Y2
	VADDPS  Y2, Y0, Y0
	VMOVUPS 32(SI)(AX*4), Y3
	VMULPS  32(DI)(AX*4), Y3, Y3
	VADDPS  Y3, Y1, Y1
	VMOVUPS 64(SI)(AX*4), Y2
	VMULPS  64(DI)(AX*4), Y2, Y2
	VADDPS  Y2, Y0, Y0
	VMOVUPS 96(SI)(AX*4), Y3
	VMULPS  96(DI)(AX*4), Y3, Y3
	VADDPS  Y3, Y1, Y1
	ADDQ   $32, AX
	JMP  loop32

loop16:
	CMPQ AX, R12
	JGE  reduce
	VMOVUPS (SI)(AX*4), Y2
	VMULPS  (DI)(AX*4), Y2, Y2
	VADDPS  Y2, Y0, Y0
	VMOVUPS 32(SI)(AX*4), Y3
	VMULPS  32(DI)(AX*4), Y3, Y3
	VADDPS  Y3, Y1, Y1
	ADDQ   $16, AX
	JMP  loop16

reduce:
	// t[j] = ((s[j] + s[4+j]) + s[8+j]) + s[12+j], lane-wise in X4.
	VEXTRACTF128 $1, Y0, X5
	VADDPS       X5, X0, X4
	VADDPS       X1, X4, X4
	VEXTRACTF128 $1, Y1, X6
	VADDPS       X6, X4, X4
	VMOVUPS      X4, 0(SP)
	VMOVSS       0(SP), X7
	VADDSS       4(SP), X7, X7
	VADDSS       8(SP), X7, X7
	VADDSS       12(SP), X7, X7

tail:
	CMPQ AX, CX
	JGE  rowdone
	VMOVSS (SI)(AX*4), X2
	VMULSS (DI)(AX*4), X2, X2
	VADDSS X2, X7, X7
	INCQ  AX
	JMP  tail

rowdone:
	VMOVSS X7, (R8)(R10*4)
	LEAQ  (SI)(CX*4), SI
	INCQ  R10
	JMP  rowloop

alldone:
	VZEROUPPER
	RET
