package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"sisg/internal/rng"
)

// fill populates a slice with values spread over several magnitudes so
// that accumulation-order differences would actually change roundings —
// uniform [0,1) data can mask schedule bugs because partial sums stay
// well-conditioned.
func fill(r *rng.RNG, x []float32) {
	for i := range x {
		x[i] = (r.Float32()*2 - 1) * float32(math.Pow(10, float64(r.Intn(7))-3))
	}
}

// The SIMD kernel (when present) must be bit-identical to the pure-Go
// reference on every shape: all dims crossing the 32/16-wide body and the
// scalar tail, and row counts including 0 and 1.
func TestDotRowsBitIdentical(t *testing.T) {
	r := rng.New(11)
	for _, dim := range []int{1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 48, 63, 64, 65, 100, 128, 200} {
		for _, n := range []int{0, 1, 2, 5, 17, 64} {
			rows := make([]float32, n*dim)
			q := make([]float32, dim)
			fill(r, rows)
			fill(r, q)
			got := make([]float32, n)
			want := make([]float32, n)
			DotRows(got, rows, q)
			DotRowsRef(want, rows, q)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("dim=%d n=%d row=%d: DotRows %x != DotRowsRef %x",
						dim, n, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// Property form of the same guarantee over random shapes and values.
func TestDotRowsBitIdenticalProperty(t *testing.T) {
	f := func(seed uint64, dimRaw, nRaw uint8) bool {
		dim := int(dimRaw%150) + 1
		n := int(nRaw % 50)
		r := rng.New(seed)
		rows := make([]float32, n*dim)
		q := make([]float32, dim)
		fill(r, rows)
		fill(r, q)
		got := make([]float32, n)
		want := make([]float32, n)
		DotRows(got, rows, q)
		DotRowsRef(want, rows, q)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The 16-lane schedule is a reordering of the plain dot product, so the
// value must agree with Dot to within accumulation error (not bit-exactly
// — that is precisely why the reference kernel exists).
func TestDotRowsCloseToDot(t *testing.T) {
	r := rng.New(12)
	const dim, n = 67, 33
	rows := make([]float32, n*dim)
	q := make([]float32, dim)
	for i := range rows {
		rows[i] = r.Float32()*2 - 1
	}
	for i := range q {
		q[i] = r.Float32()*2 - 1
	}
	dst := make([]float32, n)
	DotRows(dst, rows, q)
	for i := 0; i < n; i++ {
		want := Dot(rows[i*dim:(i+1)*dim], q)
		if diff := math.Abs(float64(dst[i] - want)); diff > 1e-4 {
			t.Fatalf("row %d: DotRows %v vs Dot %v (diff %g)", i, dst[i], want, diff)
		}
	}
}

func TestDotRowsShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	DotRows(make([]float32, 3), make([]float32, 10), make([]float32, 4))
}

func BenchmarkDotRowsScan50k(b *testing.B) {
	const rows, dim = 50000, 64
	r := rng.New(13)
	data := make([]float32, rows*dim)
	q := make([]float32, dim)
	for i := range data {
		data[i] = r.Float32()
	}
	for i := range q {
		q[i] = r.Float32()
	}
	dst := make([]float32, rows)
	b.SetBytes(int64(rows * dim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotRows(dst, data, q)
	}
}

func BenchmarkDotRowsRefScan50k(b *testing.B) {
	const rows, dim = 50000, 64
	r := rng.New(13)
	data := make([]float32, rows*dim)
	q := make([]float32, dim)
	for i := range data {
		data[i] = r.Float32()
	}
	for i := range q {
		q[i] = r.Float32()
	}
	dst := make([]float32, rows)
	b.SetBytes(int64(rows * dim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotRowsRef(dst, data, q)
	}
}
