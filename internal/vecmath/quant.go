// Int8 quantization kernels for the retrieval shortlist path. The ANN
// index in internal/knn scans candidate rows with quantized dot products —
// 4x less memory traffic than float32 — and re-ranks the survivors with the
// exact float32 kernel, so quantization error can demote a candidate out of
// the shortlist but never perturb a served score.
//
// The format is symmetric per-row max-abs scaling: a row x is stored as
// int8 codes c[i] = round(x[i]/scale) with scale = max|x|/127, so
// x̂[i] = scale·c[i] and |x[i] - x̂[i]| <= scale/2 for every element (the
// max-abs element maps to exactly ±127; nothing clamps). A dot product of
// two quantized vectors is exact int32 arithmetic scaled once at the end:
// no float error accumulates inside the loop, which is what makes the
// quantized-dot error bound provable (see quant_test.go).
package vecmath

import "math"

// QuantizeRow quantizes src into dst (same length) with symmetric per-row
// scaling and returns the scale. dst[i] = round(src[i]/scale) clamped to
// [-127, 127]; a zero (or empty) row gets scale 0 and all-zero codes.
// Reconstruction is scale*dst[i], with per-element error <= scale/2.
// Non-finite inputs are clamped deterministically (NaN quantizes to -127).
func QuantizeRow(dst []int8, src []float32) float32 {
	if len(dst) != len(src) {
		panic("vecmath: QuantizeRow length mismatch")
	}
	var maxAbs float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / float64(scale)
	for i, v := range src {
		c := math.Round(float64(v) * inv)
		if !(c >= -127) { // also catches NaN
			c = -127
		} else if c > 127 {
			c = 127
		}
		dst[i] = int8(c)
	}
	return scale
}

// DequantizeRow reconstructs codes into dst: dst[i] = scale * codes[i].
func DequantizeRow(dst []float32, codes []int8, scale float32) {
	if len(dst) != len(codes) {
		panic("vecmath: DequantizeRow length mismatch")
	}
	for i, c := range codes {
		dst[i] = scale * float32(c)
	}
}

// DotInt8 returns the integer inner product of two int8 code vectors. The
// accumulation is exact: |a[i]*b[i]| <= 127² = 16129, so int32 holds the
// sum without overflow for any dimension up to ~133k — far beyond any
// embedding this repository trains. The float similarity is recovered as
// float32(DotInt8(a,b)) * scaleA * scaleB.
func DotInt8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: DotInt8 length mismatch")
	}
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s0 += int32(aa[0]) * int32(bb[0])
		s1 += int32(aa[1]) * int32(bb[1])
		s2 += int32(aa[2]) * int32(bb[2])
		s3 += int32(aa[3]) * int32(bb[3])
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}
