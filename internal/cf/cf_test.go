package cf

import (
	"testing"

	"sisg/internal/corpus"
)

func sessionsOf(itemLists ...[]int32) []corpus.Session {
	out := make([]corpus.Session, len(itemLists))
	for i, items := range itemLists {
		out[i] = corpus.Session{Items: items}
	}
	return out
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, 0, Defaults()); err == nil {
		t.Error("numItems=0 accepted")
	}
	o := Defaults()
	o.Window = 0
	if _, err := Train(nil, 5, o); err == nil {
		t.Error("Window=0 accepted")
	}
	o = Defaults()
	o.TopK = 0
	if _, err := Train(nil, 5, o); err == nil {
		t.Error("TopK=0 accepted")
	}
}

func TestCoocCounting(t *testing.T) {
	// Items 0 and 1 always adjacent; 2 appears alone with 0 once.
	s := sessionsOf(
		[]int32{0, 1},
		[]int32{0, 1},
		[]int32{0, 1},
		[]int32{0, 2},
	)
	o := Defaults()
	o.MinCooc = 0
	o.Decay = 1
	m, err := Train(s, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	n0 := m.Similar(0, 10)
	if len(n0) != 2 {
		t.Fatalf("item 0 has %d neighbours", len(n0))
	}
	if n0[0].ID != 1 {
		t.Fatalf("top neighbour of 0 is %d", n0[0].ID)
	}
	// Symmetric: 1's list contains 0.
	n1 := m.Similar(1, 10)
	if len(n1) == 0 || n1[0].ID != 0 {
		t.Fatalf("neighbours of 1: %v", n1)
	}
}

func TestMinCoocFiltersSingletons(t *testing.T) {
	s := sessionsOf(
		[]int32{0, 1}, []int32{0, 1}, []int32{0, 1},
		[]int32{0, 2}, // singleton pair
	)
	o := Defaults()
	o.MinCooc = 2
	o.Decay = 1
	m, err := Train(s, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Similar(0, 10) {
		if n.ID == 2 {
			t.Fatal("singleton pair survived MinCooc=2")
		}
	}
}

func TestDistanceDecay(t *testing.T) {
	// 1 is adjacent to 0, 2 is at distance 2; with identical frequencies,
	// the adjacent pair must score higher.
	s := sessionsOf(
		[]int32{0, 1, 2},
		[]int32{0, 1, 2},
	)
	o := Defaults()
	o.MinCooc = 0
	m, err := Train(s, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Similar(0, 2)
	if len(n) != 2 || n[0].ID != 1 {
		t.Fatalf("decay not applied: %v", n)
	}
}

func TestDirectedMode(t *testing.T) {
	s := sessionsOf([]int32{0, 1}, []int32{0, 1})
	o := Defaults()
	o.MinCooc = 0
	o.Directed = true
	m, err := Train(s, 2, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Similar(0, 10)) == 0 {
		t.Fatal("forward neighbour missing")
	}
	if len(m.Similar(1, 10)) != 0 {
		t.Fatal("directed CF produced a backward neighbour")
	}
}

func TestDampingPenalizesHotItems(t *testing.T) {
	// Item 9 is globally hot (appears everywhere); item 1 co-occurs with 0
	// exclusively. With damping, 1 must outrank 9 in 0's list.
	var s []corpus.Session
	for i := 0; i < 10; i++ {
		s = append(s, corpus.Session{Items: []int32{0, 1, 9}})
		s = append(s, corpus.Session{Items: []int32{2, 9}})
		s = append(s, corpus.Session{Items: []int32{3, 9}})
	}
	o := Defaults()
	o.MinCooc = 0
	m, err := Train(s, 10, o)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Similar(0, 2)
	if len(n) < 2 || n[0].ID != 1 {
		t.Fatalf("damping failed: %v", n)
	}
}

func TestTopKTruncation(t *testing.T) {
	var items []int32
	for i := int32(0); i < 30; i++ {
		items = append(items, i)
	}
	s := sessionsOf(items, items, items)
	o := Defaults()
	o.MinCooc = 0
	o.TopK = 5
	m, err := Train(s, 30, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NeighbourCount(10); got > 5 {
		t.Fatalf("TopK truncation failed: %d", got)
	}
	if m.MemoryEntries() > 30*5 {
		t.Fatalf("memory entries %d", m.MemoryEntries())
	}
}

func TestColdItemHasNoNeighbours(t *testing.T) {
	s := sessionsOf([]int32{0, 1})
	m, err := Train(s, 5, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if m.NeighbourCount(4) != 0 {
		t.Fatal("never-seen item has neighbours")
	}
	if got := m.Similar(4, 10); len(got) != 0 {
		t.Fatalf("cold item returned %v", got)
	}
}

func TestSimilarKClamps(t *testing.T) {
	s := sessionsOf([]int32{0, 1}, []int32{0, 1}, []int32{0, 1})
	o := Defaults()
	o.MinCooc = 0
	m, err := Train(s, 2, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Similar(0, 100); len(got) != 1 {
		t.Fatalf("k clamp: %v", got)
	}
}
