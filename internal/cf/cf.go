// Package cf implements the item-to-item collaborative filtering baseline —
// the "well-tuned CF" the paper compares against both offline (Table III
// context) and online (Figure 3). It follows the classic Amazon-style
// item-item CF [Linden et al. 2003] that Taobao ran before embedding
// methods: co-occurrence counting inside session windows, normalized by
// item popularity.
//
// "Well-tuned" here means the standard production refinements:
//
//   - window-limited co-occurrence with distance decay (adjacent clicks
//     count more than distant ones),
//   - cosine-style normalization cooc(i,j)/sqrt(freq(i)·freq(j)) to stop
//     bestsellers from dominating every list,
//   - optional hot-item damping exponent, and
//   - top-K list truncation per item, which is also what makes serving
//     memory practical at scale.
package cf

import (
	"container/heap"
	"errors"
	"math"
	"sort"

	"sisg/internal/corpus"
	"sisg/internal/knn"
)

// Options tunes the CF model.
type Options struct {
	Window   int     // max click distance counted as co-occurrence
	Decay    float64 // weight = Decay^(distance-1); 1 = no decay
	Damping  float64 // popularity normalization exponent (0.5 = cosine)
	TopK     int     // neighbours kept per item
	MinCooc  float64 // discard pairs with weighted co-occurrence below this
	Directed bool    // count only forward co-occurrence (ablation; off = classic CF)
}

// Defaults returns the "well-tuned" configuration used by the benchmarks.
func Defaults() Options {
	return Options{
		Window:  5,
		Decay:   0.8,
		Damping: 0.5,
		TopK:    400,
		MinCooc: 2.5,
	}
}

// Model holds the truncated neighbour lists.
type Model struct {
	opts Options
	// neighbours[i] is the sorted (descending score) top-K list for item i.
	neighbours [][]knn.Result
}

// Train counts co-occurrences over the sessions and builds top-K lists.
// numItems bounds the item ID space.
func Train(sessions []corpus.Session, numItems int, opts Options) (*Model, error) {
	if numItems <= 0 {
		return nil, errors.New("cf: numItems must be positive")
	}
	if opts.Window <= 0 {
		return nil, errors.New("cf: Window must be positive")
	}
	if opts.TopK <= 0 {
		return nil, errors.New("cf: TopK must be positive")
	}

	freq := make([]float64, numItems)
	// Sparse accumulation: per-item co-occurrence maps. Memory is bounded
	// by the number of distinct observed pairs, not numItems².
	cooc := make([]map[int32]float64, numItems)
	bump := func(a, b int32, w float64) {
		m := cooc[a]
		if m == nil {
			m = make(map[int32]float64, 8)
			cooc[a] = m
		}
		m[b] += w
	}

	for si := range sessions {
		items := sessions[si].Items
		for i, a := range items {
			freq[a]++
			hi := i + opts.Window
			if hi >= len(items) {
				hi = len(items) - 1
			}
			for j := i + 1; j <= hi; j++ {
				b := items[j]
				if a == b {
					continue
				}
				w := math.Pow(opts.Decay, float64(j-i-1))
				bump(a, b, w)
				if !opts.Directed {
					bump(b, a, w)
				}
			}
		}
	}

	m := &Model{opts: opts, neighbours: make([][]knn.Result, numItems)}
	for i := range cooc {
		if cooc[i] == nil {
			continue
		}
		h := make(resultHeap, 0, opts.TopK)
		for j, c := range cooc[i] {
			if c < opts.MinCooc {
				continue
			}
			score := c / (math.Pow(freq[i], opts.Damping) * math.Pow(freq[j], opts.Damping))
			r := knn.Result{ID: j, Score: float32(score)}
			if len(h) < opts.TopK {
				heap.Push(&h, r)
			} else if r.Score > h[0].Score {
				h[0] = r
				heap.Fix(&h, 0)
			}
		}
		sort.Slice(h, func(a, b int) bool {
			if h[a].Score != h[b].Score {
				return h[a].Score > h[b].Score
			}
			return h[a].ID < h[b].ID
		})
		m.neighbours[i] = h
	}
	return m, nil
}

// Similar returns up to k neighbours of item id, best first.
func (m *Model) Similar(id int32, k int) []knn.Result {
	n := m.neighbours[id]
	if k > len(n) {
		k = len(n)
	}
	return n[:k]
}

// NeighbourCount returns how many neighbours item id has stored; 0 means
// the item was never observed co-occurring (a cold item CF cannot serve —
// exactly the weakness SI addresses).
func (m *Model) NeighbourCount(id int32) int { return len(m.neighbours[id]) }

// MemoryEntries returns the total number of stored (item, neighbour) pairs.
func (m *Model) MemoryEntries() int {
	n := 0
	for i := range m.neighbours {
		n += len(m.neighbours[i])
	}
	return n
}

type resultHeap []knn.Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(knn.Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
