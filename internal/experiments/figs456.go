package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
	"sisg/internal/tsne"
)

// caseStudyModel trains the production variant once and shares it across
// the Figure 4/5/6 case studies within a single bench invocation.
type caseStudyModel struct {
	ds    *corpus.Dataset
	model *sisg.Model
	cold  []int32
}

func trainCaseStudy(cfgName string, quick bool, seed uint64, log io.Writer) (*caseStudyModel, error) {
	cfg := corpus.Sim25K()
	if quick {
		cfg = quickCorpus()
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if log != nil {
		fmt.Fprintf(log, "%s: generating %s and training SISG-F-U-D ...\n", cfgName, cfg.Name)
	}
	ds, err := corpus.Generate(cfg)
	if err != nil {
		return nil, err
	}
	cold := ds.HoldoutItems(0.10)
	train := corpus.FilterSessions(ds.Sessions, cold)
	opt := sgns.Defaults()
	opt.Window = 5
	m, err := sisg.Train(ds.Dict, train, sisg.VariantSISGFUD, opt)
	if err != nil {
		return nil, err
	}
	return &caseStudyModel{ds: ds, model: m, cold: cold}, nil
}

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4 — cold-start user recommendations per demographic group",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cs, err := trainCaseStudy("fig4", quick, seed, log)
			if err != nil {
				return err
			}
			return RunFig4(cs, out)
		},
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5 — t-SNE of user-type embeddings (silhouette by gender/age)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cs, err := trainCaseStudy("fig5", quick, seed, log)
			if err != nil {
				return err
			}
			return RunFig5(cs, out)
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6 — cold-start item recommendations via Eq. 6 (SI vectors only)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cs, err := trainCaseStudy("fig6", quick, seed, log)
			if err != nil {
				return err
			}
			return RunFig6(cs, out)
		},
	})
}

// RunFig4 reproduces the Figure 4 case study quantitatively: for each
// (gender, age, power) demographic group, average the matching user-type
// vectors and retrieve top items; then verify the paper's observations —
// different genders see different items, and higher purchasing power sees
// pricier (higher-tier) items.
func RunFig4(cs *caseStudyModel, out io.Writer) error {
	ds, m := cs.ds, cs.model
	const k = 50

	type group struct {
		gender, power int
		name          string
	}
	var groups []group
	for g := 0; g < 2; g++ { // F, M (the paper's figure shows both)
		for p := 0; p < ds.Cfg.NumPowers; p++ {
			groups = append(groups, group{g, p, fmt.Sprintf("%s/power%d", corpus.Genders[g], p)})
		}
	}

	recs := make(map[string][]knn.Result, len(groups))
	for _, gr := range groups {
		types := ds.Pop.TypesMatching(gr.gender, -1, gr.power)
		r, err := m.RecommendForColdUser(context.Background(), types, k)
		if err != nil {
			return fmt.Errorf("fig4 group %s: %w", gr.name, err)
		}
		recs[gr.name] = r
	}

	fmt.Fprintf(out, "%-12s %8s %10s  top recommended items (leaf/brand/tier)\n", "group", "meanTier", "topShare")
	for _, gr := range groups {
		r := recs[gr.name]
		var tierSum float64
		topCount := map[int32]int{}
		for _, x := range r {
			it := ds.Catalog.Items[x.ID]
			tierSum += float64(it.Tier)
			topCount[it.Top]++
		}
		best, bestN := int32(-1), 0
		for t, n := range topCount {
			if n > bestN {
				best, bestN = t, n
			}
		}
		fmt.Fprintf(out, "%-12s %8.2f %9.0f%%  ", gr.name, tierSum/float64(len(r)), 100*float64(bestN)/float64(len(r)))
		for i := 0; i < 3 && i < len(r); i++ {
			it := ds.Catalog.Items[r[i].ID]
			fmt.Fprintf(out, "item_%d(leaf%d,brand%d,t%d) ", r[i].ID, it.Leaf, it.Brand, it.Tier)
		}
		fmt.Fprintf(out, "(top cat %d)\n", best)
	}

	// The two headline observations, quantified.
	overlap := jaccardTop(recs["F/power1"], recs["M/power1"], k)
	fmt.Fprintf(out, "\nF vs M overlap of top-%d (same power): %.1f%% (paper: 'significantly different')\n", k, 100*overlap)
	lowTier := meanTier(ds, recs["F/power0"]) + meanTier(ds, recs["M/power0"])
	highTier := meanTier(ds, recs[fmt.Sprintf("F/power%d", ds.Cfg.NumPowers-1)]) +
		meanTier(ds, recs[fmt.Sprintf("M/power%d", ds.Cfg.NumPowers-1)])
	fmt.Fprintf(out, "mean rec tier, low power: %.2f vs high power: %.2f (paper: pricier brands for higher power)\n",
		lowTier/2, highTier/2)
	return nil
}

func jaccardTop(a, b []knn.Result, k int) float64 {
	sa := map[int32]bool{}
	for i := 0; i < k && i < len(a); i++ {
		sa[a[i].ID] = true
	}
	inter := 0
	union := len(sa)
	for i := 0; i < k && i < len(b); i++ {
		if sa[b[i].ID] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func meanTier(ds *corpus.Dataset, r []knn.Result) float64 {
	if len(r) == 0 {
		return 0
	}
	var s float64
	for _, x := range r {
		s += float64(ds.Catalog.Items[x.ID].Tier)
	}
	return s / float64(len(r))
}

// RunFig5 embeds every user-type vector with t-SNE and reports silhouette
// scores under the gender and age labellings — the quantitative version of
// the paper's "male and female user types concentrate in different
// regions, and within each region age clusters are visible".
func RunFig5(cs *caseStudyModel, out io.Writer) error {
	ds, m := cs.ds, cs.model
	n := len(ds.Pop.Types)
	vecs := make([][]float32, n)
	genders := make([]int, n)
	ages := make([]int, n)
	for t := 0; t < n; t++ {
		// Directed models train user-type OUTPUT vectors (see
		// RecommendForColdUser); use the same side here.
		if m.Variant.Directed {
			vecs[t] = m.Emb.Out.Row(m.Dict.UserType[t])
		} else {
			vecs[t] = m.UserTypeVector(int32(t))
		}
		genders[t] = int(ds.Pop.Types[t].Gender)
		ages[t] = int(ds.Pop.Types[t].Age)
	}
	opt := tsne.Defaults()
	if n/4 < int(opt.Perplexity) {
		opt.Perplexity = float64(n) / 5
	}
	y, err := tsne.Embed(vecs, opt)
	if err != nil {
		return err
	}
	sg := tsne.Silhouette(y, genders)
	sa := tsne.Silhouette(y, ages)
	fmt.Fprintf(out, "user types embedded: %d\n", n)
	fmt.Fprintf(out, "silhouette by gender: %.3f (paper: clearly separated regions => positive)\n", sg)
	fmt.Fprintf(out, "silhouette by age:    %.3f (paper: visible sub-clusters => positive, weaker)\n", sa)
	fmt.Fprintln(out, "first 5 coordinates (x, y, gender, age):")
	for i := 0; i < 5 && i < n; i++ {
		fmt.Fprintf(out, "  %8.2f %8.2f  %s %s\n", y[i][0], y[i][1],
			corpus.Genders[genders[i]], ds.Pop.Types[i].Token())
	}
	return nil
}

// RunFig6 reproduces the cold-start item case study: for held-out (cold)
// items, recommendations obtained from the Eq. 6 SI-only vector are
// compared to the ground-truth category; for trained items, Eq. 6
// recommendations are compared against trained-vector recommendations
// (the two rows of Figure 6).
func RunFig6(cs *caseStudyModel, out io.Writer) error {
	ds, m := cs.ds, cs.model
	const k = 10

	// Warm comparison: trained vector vs Eq. 6 vector, overlap@k.
	warm := warmSample(ds, cs.cold, 300)
	var overlapSum, coherentTrained, coherentCold float64
	for _, id := range warm {
		trained, err := m.SimilarOne(context.Background(), id, knn.Options{K: k})
		if err != nil {
			return fmt.Errorf("fig6 warm item %d: %w", id, err)
		}
		qv := m.ColdStartItemVector(siIDs(ds, id))
		inferred, err := m.SimilarToVector(context.Background(), qv, k, func(c int32) bool { return c == id })
		if err != nil {
			return fmt.Errorf("fig6 warm item %d: %w", id, err)
		}
		overlapSum += jaccardTop(trained, inferred, k)
		coherentTrained += sameTopFraction(ds, id, trained)
		coherentCold += sameTopFraction(ds, id, inferred)
	}
	nw := float64(len(warm))
	fmt.Fprintf(out, "warm items sampled: %d\n", len(warm))
	fmt.Fprintf(out, "trained-vs-Eq6 top-%d overlap: %.1f%%\n", k, 100*overlapSum/nw)
	fmt.Fprintf(out, "same-top-category fraction: trained %.1f%%, Eq6 %.1f%%\n",
		100*coherentTrained/nw, 100*coherentCold/nw)

	// True cold items: Eq. 6 is the only option; recommendations should
	// stay in the item's own category neighbourhood.
	var coldCoherent float64
	nCold := 0
	for _, id := range cs.cold {
		if nCold >= 300 {
			break
		}
		qv := m.ColdStartItemVector(siIDs(ds, id))
		recs, err := m.SimilarToVector(context.Background(), qv, k, func(c int32) bool { return c == id })
		if err != nil {
			return fmt.Errorf("fig6 cold item %d: %w", id, err)
		}
		coldCoherent += sameTopFraction(ds, id, recs)
		nCold++
	}
	fmt.Fprintf(out, "cold items sampled: %d; Eq6 same-top-category fraction: %.1f%%\n",
		nCold, 100*coldCoherent/float64(nCold))

	// A concrete example, Figure 6 style.
	if len(cs.cold) > 0 {
		id := cs.cold[len(cs.cold)/2]
		it := ds.Catalog.Items[id]
		fmt.Fprintf(out, "\nexample cold item item_%d (top %d, leaf %d, brand %d):\n", id, it.Top, it.Leaf, it.Brand)
		qv := m.ColdStartItemVector(siIDs(ds, id))
		example, err := m.SimilarToVector(context.Background(), qv, 6, func(c int32) bool { return c == id })
		if err != nil {
			return fmt.Errorf("fig6 example item %d: %w", id, err)
		}
		for i, r := range example {
			rt := ds.Catalog.Items[r.ID]
			fmt.Fprintf(out, "  #%d item_%d (top %d, leaf %d, brand %d, score %.3f)\n",
				i+1, r.ID, rt.Top, rt.Leaf, rt.Brand, r.Score)
		}
	}
	return nil
}

func siIDs(ds *corpus.Dataset, id int32) [corpus.NumSIColumns]int32 {
	return ds.Dict.ItemSI[id]
}

func sameTopFraction(ds *corpus.Dataset, query int32, recs []knn.Result) float64 {
	if len(recs) == 0 {
		return 0
	}
	top := ds.Catalog.Items[query].Top
	n := 0
	for _, r := range recs {
		if ds.Catalog.Items[r.ID].Top == top {
			n++
		}
	}
	return float64(n) / float64(len(recs))
}

// warmSample returns up to n trained (non-cold) item IDs with decent
// training frequency, spread deterministically over the catalog.
func warmSample(ds *corpus.Dataset, cold []int32, n int) []int32 {
	isCold := map[int32]bool{}
	for _, c := range cold {
		isCold[c] = true
	}
	type cand struct {
		id  int32
		cnt uint64
	}
	var cands []cand
	for i := 0; i < ds.Dict.NumItems; i++ {
		if !isCold[int32(i)] && ds.Dict.Count(int32(i)) >= 5 {
			cands = append(cands, cand{int32(i), ds.Dict.Count(int32(i))})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].cnt > cands[b].cnt })
	step := 1
	if len(cands) > n {
		step = len(cands) / n
	}
	var out []int32
	for i := 0; i < len(cands) && len(out) < n; i += step {
		out = append(out, cands[i].id)
	}
	return out
}
