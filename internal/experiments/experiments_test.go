package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"sisg/internal/corpus"
	"sisg/internal/eval"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func TestRegistryUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7a", "fig7b", "asym", "hbgp", "atns"} {
		if !seen[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

func TestCorpusByName(t *testing.T) {
	for _, name := range []string{"Sim25K", "Sim100K", "Sim800K", "quick", "tiny"} {
		cfg, err := CorpusByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := CorpusByName("bogus"); err == nil {
		t.Error("bogus corpus accepted")
	}
}

func TestTable1AndAsymRun(t *testing.T) {
	for _, id := range []string{"table1"} {
		e := findExperiment(t, id)
		var out bytes.Buffer
		if err := e.Run(&out, io.Discard, true, 0); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func findExperiment(t *testing.T, id string) Experiment {
	t.Helper()
	for _, e := range Registry() {
		if e.ID == id {
			return e
		}
	}
	t.Fatalf("experiment %q not found", id)
	return Experiment{}
}

// TestMiniTable3Pipeline is the integration test of the full offline
// pipeline on a tiny corpus: generate → split → train two variants →
// evaluate → render. It asserts the pipeline runs and that the SI variant
// beats plain SGNS at K=20 on this SI-rich workload.
func TestMiniTable3Pipeline(t *testing.T) {
	cfg := Table3Config{
		Corpus:   corpus.Tiny(),
		Train:    sgns.Defaults(),
		TestFrac: 0.1,
		Ks:       []int{1, 10, 20},
	}
	cfg.Corpus.NumSessions = 6000
	cfg.Train.Epochs = 3
	res, err := RunTable3(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // five SISG variants, no EGES/CF
		t.Fatalf("got %d rows", len(res.Rows))
	}
	sgnsRow := res.Row("SGNS")
	fRow := res.Row("SISG-F")
	if sgnsRow == nil || fRow == nil {
		t.Fatal("missing rows")
	}
	if fRow.Result.HR[20] <= sgnsRow.Result.HR[20] {
		t.Fatalf("SISG-F (%.4f) did not beat SGNS (%.4f) at HR@20",
			fRow.Result.HR[20], sgnsRow.Result.HR[20])
	}
	var buf bytes.Buffer
	res.Write(&buf, cfg.Ks)
	if !strings.Contains(buf.String(), "SISG-F-U-D") {
		t.Fatal("rendered table missing variant")
	}
}

// TestMiniFig3Pipeline runs the A/B simulation end to end on a tiny corpus.
func TestMiniFig3Pipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := corpus.Tiny()
	cfg.NumSessions = 5000
	res, err := RunFig3(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 8 {
		t.Fatalf("%d days", len(res.Days))
	}
	for _, arm := range res.Arms {
		if res.MeanCTR(arm) <= 0 {
			t.Fatalf("arm %s has zero CTR", arm)
		}
	}
}

// TestMiniCaseStudies runs the Figure 4/5/6 drivers on a tiny model.
func TestMiniCaseStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := corpus.Tiny()
	cfg.NumSessions = 5000
	ds, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := ds.HoldoutItems(0.10)
	train := corpus.FilterSessions(ds.Sessions, cold)
	opt := sgns.Defaults()
	opt.Epochs = 2
	m, err := sisg.Train(ds.Dict, train, sisg.VariantSISGFUD, opt)
	if err != nil {
		t.Fatal(err)
	}
	cs := &caseStudyModel{ds: ds, model: m, cold: cold}
	var buf bytes.Buffer
	if err := RunFig4(cs, &buf); err != nil {
		t.Fatalf("fig4: %v", err)
	}
	if err := RunFig5(cs, &buf); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	if err := RunFig6(cs, &buf); err != nil {
		t.Fatalf("fig6: %v", err)
	}
	if !strings.Contains(buf.String(), "silhouette") {
		t.Fatal("fig5 output missing silhouette")
	}
}

// TestMiniFig7 exercises the distributed sweeps at miniature scale.
func TestMiniFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := corpus.Tiny()
	cfg.NumSessions = 1200
	rows, err := RunFig7a(cfg, []int{1, 2}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].Stats.SimElapsed >= rows[0].Stats.SimElapsed {
		t.Fatalf("2 workers (%v) not faster than 1 (%v)",
			rows[1].Stats.SimElapsed, rows[0].Stats.SimElapsed)
	}
}

// TestEvalKsDefault pins the Table III cutoffs.
func TestEvalKsDefault(t *testing.T) {
	want := []int{1, 10, 20, 100, 200}
	if len(eval.Ks) != len(want) {
		t.Fatal("eval.Ks changed")
	}
	for i := range want {
		if eval.Ks[i] != want[i] {
			t.Fatal("eval.Ks changed")
		}
	}
}
