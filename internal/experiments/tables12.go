package experiments

import (
	"fmt"
	"io"

	"sisg/internal/corpus"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I — item and user features used for SISG",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			fmt.Fprintln(out, "Item SI columns (encoded as [FeatureName]_[FeatureValue]):")
			for _, c := range corpus.SIColumnNames {
				fmt.Fprintf(out, "  %s\n", c)
			}
			fmt.Fprintln(out, "User features (crossed into a single user-type token):")
			fmt.Fprintln(out, "  gender x age (cross feature), purchase power, user_tags")
			fmt.Fprintln(out, "Example user-type token:", exampleUserType())
			return nil
		},
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table II — dataset statistics (Sim25K / Sim100K / Sim800K)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			configs := []corpus.Config{corpus.Sim25K(), corpus.Sim100K(), corpus.Sim800K()}
			if quick {
				configs = configs[:1]
			}
			var stats []corpus.Stats
			for _, cfg := range configs {
				if seed != 0 {
					cfg.Seed = seed
				}
				if log != nil {
					fmt.Fprintf(log, "table2: generating %s ...\n", cfg.Name)
				}
				ds, err := corpus.Generate(cfg)
				if err != nil {
					return err
				}
				// Window/negatives per the production settings the paper
				// counts with (window covering the session, 20 negatives).
				stats = append(stats, ds.ComputeStats(10*(1+corpus.NumSIColumns), 20))
			}
			corpus.WriteTable(out, stats)
			return nil
		},
	})
	register(Experiment{
		ID:    "asym",
		Title: "§II-C — fraction of item pairs with significantly asymmetric direction counts (paper: ~20%)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cfg := corpus.Sim25K()
			if quick {
				cfg = quickCorpus()
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			ds, err := corpus.Generate(cfg)
			if err != nil {
				return err
			}
			st := ds.MeasureAsymmetry()
			fmt.Fprintf(out, "pairs observed (>=5 transitions): %d\n", st.Pairs)
			fmt.Fprintf(out, "significantly skewed (|z|>=1.96): %d\n", st.Significant)
			fmt.Fprintf(out, "fraction: %.1f%%  (paper estimate: ~20%%)\n", 100*st.Fraction)
			return nil
		},
	})
}

func exampleUserType() string {
	u := corpus.UserType{Gender: 0, Age: 1, Power: 2, Tags: 0b101}
	return u.Token()
}
