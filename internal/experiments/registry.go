package experiments

import (
	"io"
)

// Experiment is one reproducible table/figure driver.
type Experiment struct {
	ID    string // e.g. "table3", "fig7a"
	Title string
	// Run writes the rendered table/series to out and progress to log.
	// quick shrinks the workload; seed overrides the corpus seed when
	// non-zero.
	Run func(out, log io.Writer, quick bool, seed uint64) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Registry returns all experiments in registration (paper) order.
func Registry() []Experiment { return registry }
