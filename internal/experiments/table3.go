// Package experiments contains one driver per paper table/figure. Each
// driver is shared by cmd/sisg-bench (human-readable output) and the
// repository-root bench_test.go (testing.B regeneration), so the numbers in
// EXPERIMENTS.md always come from the same code path.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/eval"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

// Table3Config scopes the offline HitRate experiment (paper Table III).
type Table3Config struct {
	Corpus   corpus.Config
	Train    sgns.Options // Window is in item units; see sisg.TrainOptions
	TestFrac float64
	Ks       []int
	// IncludeEGES and IncludeCF add the non-SISG baselines (EGES needs
	// internal/eges; CF needs internal/cf). They are on by default in the
	// bench binary and off in quick unit tests.
	IncludeEGES bool
	IncludeCF   bool
}

// DefaultTable3 returns the configuration used for the committed
// EXPERIMENTS.md numbers: the Sim25K corpus with the experiment settings of
// §IV-A (2 epochs, d fixed, cosine retrieval).
func DefaultTable3() Table3Config {
	cfg := Table3Config{
		Corpus:      corpus.Sim25K(),
		Train:       sgns.Defaults(),
		TestFrac:    0.08,
		Ks:          eval.Ks,
		IncludeEGES: true,
		IncludeCF:   true,
	}
	// The paper widens the window so "all possible pairs per sequence are
	// sampled" (§III-C); a 10-item window covers nearly every session
	// (mean length 8) at tolerable cost. Crucially this lets the
	// sequence-final user-type token pair with the session's items.
	cfg.Train.Window = 10
	return cfg
}

// Table3Row is one model's evaluation outcome.
type Table3Row struct {
	Result    eval.Result
	TrainTime time.Duration
}

// Table3Result carries all rows plus dataset bookkeeping.
type Table3Result struct {
	Rows  []Table3Row
	Tests int
}

// baselineTrainer abstracts the EGES/CF constructors so this file does not
// import those packages (they register themselves via the hooks below,
// keeping the dependency graph acyclic and letting quick tests skip them).
type baselineTrainer func(ds *corpus.Dataset, split *corpus.Split, train sgns.Options) (eval.Recommender, error)

var (
	// EGESTrainer is installed by internal/experiments/baselines.go.
	EGESTrainer baselineTrainer
	// CFTrainer is installed by internal/experiments/baselines.go.
	CFTrainer baselineTrainer
)

// RunTable3 generates the dataset, trains every variant and evaluates
// HR@K. Progress lines go to log (nil discards them).
func RunTable3(cfg Table3Config, log io.Writer) (*Table3Result, error) {
	logf := func(format string, args ...interface{}) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	logf("table3: generating %s ...", cfg.Corpus.Name)
	ds, err := corpus.Generate(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	split := ds.SplitNextItem(cfg.TestFrac)
	logf("table3: %d train sessions, %d test cases", len(split.Train), len(split.Test))

	res := &Table3Result{Tests: len(split.Test)}

	addRow := func(name string, rec eval.Recommender, took time.Duration) {
		row := Table3Row{
			Result:    eval.Evaluate(name, rec, split.Test, cfg.Ks),
			TrainTime: took,
		}
		res.Rows = append(res.Rows, row)
		logf("table3: %-12s HR@10=%.4f (train %v)", name, row.Result.HR[10], took.Round(time.Millisecond))
	}

	// SGNS first: it is the gain baseline in Table III.
	for _, v := range sisg.Variants() {
		start := time.Now()
		m, err := sisg.Train(ds.Dict, split.Train, v, cfg.Train)
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", v.Name, err)
		}
		took := time.Since(start)
		model := m
		rec := eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
			rs, err := model.SimilarOne(context.Background(), tc.Query, knn.Options{K: k})
			if err != nil {
				return nil
			}
			return rs
		})
		addRow(v.Name, rec, took)
		if v.Name == "SGNS" {
			// EGES goes second, matching Table III row order.
			if cfg.IncludeEGES && EGESTrainer != nil {
				start := time.Now()
				rec, err := EGESTrainer(ds, split, cfg.Train)
				if err != nil {
					return nil, fmt.Errorf("table3: EGES: %w", err)
				}
				addRow("EGES", rec, time.Since(start))
			}
		}
	}
	if cfg.IncludeCF && CFTrainer != nil {
		start := time.Now()
		rec, err := CFTrainer(ds, split, cfg.Train)
		if err != nil {
			return nil, fmt.Errorf("table3: CF: %w", err)
		}
		addRow("CF", rec, time.Since(start))
	}
	return res, nil
}

// Write renders the result as a Table III-style table.
func (r *Table3Result) Write(w io.Writer, ks []int) {
	results := make([]eval.Result, len(r.Rows))
	for i := range r.Rows {
		results[i] = r.Rows[i].Result
	}
	eval.WriteTable(w, results, ks)
}

// Row returns the row for the named model, or nil.
func (r *Table3Result) Row(name string) *Table3Row {
	for i := range r.Rows {
		if r.Rows[i].Result.Model == name {
			return &r.Rows[i]
		}
	}
	return nil
}
