package experiments

import (
	"io"

	"sisg/internal/corpus"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Table III — HR@K of SISG variants vs SGNS/EGES/CF (next-item, Sim25K)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cfg := DefaultTable3()
			if quick {
				cfg.Corpus = quickCorpus()
				cfg.Train.Epochs = 2
			}
			if seed != 0 {
				cfg.Corpus.Seed = seed
			}
			res, err := RunTable3(cfg, log)
			if err != nil {
				return err
			}
			res.Write(out, cfg.Ks)
			return nil
		},
	})
}

// quickCorpus is a reduced Sim25K used by -quick runs and unit tests:
// ~4k items, ~30k sessions, trains all six variants in a few seconds.
func quickCorpus() corpus.Config {
	c := corpus.Sim25K()
	c.Name = "SimQuick"
	c.NumItems = 20_000
	c.NumLeafCats = 300
	c.NumShops = 1_500
	c.NumBrands = 400
	c.NumSessions = 18_000
	return c
}
