package experiments

import (
	"fmt"
	"io"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/dist"
	"sisg/internal/graph"
	"sisg/internal/sisg"
)

func init() {
	register(Experiment{
		ID:    "fig7a",
		Title: "Figure 7(a) — training time vs number of workers (paper: ≈ 1/x)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cfg := fig7Corpus(quick)
			if seed != 0 {
				cfg.Seed = seed
			}
			workers := []int{1, 2, 4, 8, 16, 32}
			if quick {
				workers = []int{1, 2, 4, 8}
			}
			rows, err := RunFig7a(cfg, workers, log)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%8s %14s %10s %12s %10s\n", "workers", "sim time", "speedup", "remote frac", "imbalance")
			base := rows[0].Stats.SimElapsed.Seconds()
			for _, r := range rows {
				fmt.Fprintf(out, "%8d %14s %9.2fx %11.1f%% %10.2f\n",
					r.Workers, r.Stats.SimElapsed.Round(time.Millisecond),
					base/r.Stats.SimElapsed.Seconds(),
					100*r.Stats.RemoteFraction(), r.Stats.Imbalance())
			}
			fmt.Fprintln(out, "(paper: the curve is 'very close to y = 1/x')")
			return nil
		},
	})
	register(Experiment{
		ID:    "fig7b",
		Title: "Figure 7(b) — training speed vs corpus size (paper: decreases, then stabilizes)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			scales := []float64{0.1, 0.2, 0.4, 0.8, 1.6}
			if quick {
				scales = []float64{0.25, 0.5, 1}
			}
			rows, err := RunFig7b(fig7Corpus(quick), scales, 8, log)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%14s %16s %14s\n", "tokens", "tokens/hour", "sim time")
			for _, r := range rows {
				fmt.Fprintf(out, "%14d %16.3e %14s\n",
					r.Stats.Tokens, r.Stats.SimTokensPerSec()*3600,
					r.Stats.SimElapsed.Round(time.Millisecond))
			}
			fmt.Fprintln(out, "(paper: speed decreases with corpus size, then becomes relatively stable)")
			return nil
		},
	})
	register(Experiment{
		ID:    "hbgp",
		Title: "Ablation — HBGP vs random vs greedy-load partitioning (remote-call fraction, balance)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cfg := fig7Corpus(quick)
			if seed != 0 {
				cfg.Seed = seed
			}
			return RunHBGPAblation(cfg, []int{4, 8, 16}, out, log)
		},
	})
	register(Experiment{
		ID:    "atns",
		Title: "Ablation — ATNS hot-token replication on/off (remote calls, bytes)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cfg := fig7Corpus(quick)
			if seed != 0 {
				cfg.Seed = seed
			}
			return RunATNSAblation(cfg, 8, out, log)
		},
	})
}

// fig7Corpus is the scalability workload: the Sim100K analogue of
// Taobao100M, reduced in quick mode.
func fig7Corpus(quick bool) corpus.Config {
	if quick {
		c := quickCorpus()
		c.Name = "SimQuick"
		return c
	}
	c := corpus.Sim100K()
	// Keep the distributed sweeps tractable: the engine scans the corpus
	// once per worker per epoch, and the host may be a single core.
	c.NumSessions = 40_000
	return c
}

// Fig7Row is one sweep point.
type Fig7Row struct {
	Workers int
	Stats   dist.Stats
}

// RunFig7a trains the production variant distributedly for each worker
// count on one fixed dataset and reports the cost-model cluster times.
func RunFig7a(cfg corpus.Config, workers []int, log io.Writer) ([]Fig7Row, error) {
	ds, seqs, err := fig7Dataset(cfg, log)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, w := range workers {
		st, err := fig7Train(ds, seqs, w, true, log)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{Workers: w, Stats: st})
	}
	return rows, nil
}

// RunFig7b sweeps corpus size at a fixed worker count. Each scale point
// re-generates a proportionally sized dataset (items and sessions both
// scale, as they do in the paper's Table II ladder) so the vocabulary —
// and with it the per-update memory pressure — grows with the corpus.
func RunFig7b(base corpus.Config, scales []float64, workers int, log io.Writer) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, s := range scales {
		cfg := base
		cfg.Name = fmt.Sprintf("%s-x%.2f", base.Name, s)
		cfg.NumItems = max2(int(float64(base.NumItems)*s), 2000)
		cfg.NumLeafCats = max2(int(float64(base.NumLeafCats)*s), 64)
		cfg.NumShops = max2(int(float64(base.NumShops)*s), 100)
		cfg.NumBrands = max2(int(float64(base.NumBrands)*s), 60)
		cfg.NumSessions = max2(int(float64(base.NumSessions)*s), 2000)
		ds, seqs, err := fig7Dataset(cfg, log)
		if err != nil {
			return nil, err
		}
		st, err := fig7Train(ds, seqs, workers, true, log)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{Workers: workers, Stats: st})
	}
	return rows, nil
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fig7Dataset(cfg corpus.Config, log io.Writer) (*corpus.Dataset, [][]int32, error) {
	if log != nil {
		fmt.Fprintf(log, "fig7: generating %s ...\n", cfg.Name)
	}
	ds, err := corpus.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	seqs := sisg.Enrich(ds.Dict, ds.Sessions, sisg.VariantSISGFUD)
	return ds, seqs, nil
}

func fig7Train(ds *corpus.Dataset, seqs [][]int32, workers int, hot bool, log io.Writer) (dist.Stats, error) {
	part, _, err := dist.PartitionForDataset(ds, ds.Sessions, workers)
	if err != nil {
		return dist.Stats{}, err
	}
	opt := dist.DefaultOptions(workers)
	opt.Options = sisg.TrainOptions(opt.Options, sisg.VariantSISGFUD, 5)
	opt.Epochs = 1
	opt.HotReplication = hot
	_, st, err := dist.Train(ds.Dict.Dict, seqs, part, opt)
	if err != nil {
		return dist.Stats{}, err
	}
	if log != nil {
		fmt.Fprintf(log, "fig7: w=%d sim=%v remote=%.1f%% pairs=%d\n",
			workers, st.SimElapsed.Round(time.Millisecond), 100*st.RemoteFraction(), st.Pairs)
	}
	return st, nil
}

// RunHBGPAblation compares HBGP against random and greedy-load item
// partitioning on the quantities §III-B optimizes: the probability a
// training pair crosses workers, and the load balance.
func RunHBGPAblation(cfg corpus.Config, workerCounts []int, out, log io.Writer) error {
	ds, seqs, err := fig7Dataset(cfg, log)
	if err != nil {
		return err
	}
	freq := make([]float64, ds.Dict.NumItems)
	for i := range freq {
		freq[i] = float64(ds.Dict.Count(int32(i)))
	}
	fmt.Fprintf(out, "%8s %-8s %12s %12s %12s %12s\n",
		"workers", "strategy", "cut frac", "imbalance", "remote frac", "bytes sent")
	for _, w := range workerCounts {
		hbgpPart, g, err := dist.PartitionForDataset(ds, ds.Sessions, w)
		if err != nil {
			return err
		}
		parts := []struct {
			name string
			p    *graph.Partition
		}{
			{"HBGP", hbgpPart},
			{"random", graph.RandomPartition(ds.Dict.NumItems, freq, w, cfg.Seed)},
			{"greedy", graph.GreedyLoadPartition(ds.Dict.NumItems, freq, w)},
		}
		for _, pp := range parts {
			opt := dist.DefaultOptions(w)
			opt.Options = sisg.TrainOptions(opt.Options, sisg.VariantSISGFUD, 5)
			opt.Epochs = 1
			_, st, err := dist.Train(ds.Dict.Dict, seqs, pp.p, opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%8d %-8s %11.1f%% %12.2f %11.1f%% %12d\n",
				w, pp.name, 100*pp.p.CutFraction(g), pp.p.Imbalance(),
				100*st.RemoteFraction(), st.BytesSent)
		}
	}
	return nil
}

// RunATNSAblation toggles hot-token replication and reports the remote-call
// saving (§III-A's claim).
func RunATNSAblation(cfg corpus.Config, workers int, out, log io.Writer) error {
	ds, seqs, err := fig7Dataset(cfg, log)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-18s %12s %12s %14s %12s\n", "mode", "remote frac", "pairs", "bytes sent", "sim time")
	for _, hot := range []bool{false, true} {
		st, err := fig7Train(ds, seqs, workers, hot, log)
		if err != nil {
			return err
		}
		name := "TNS (no replication)"
		if hot {
			name = "ATNS (hot top-K)"
		}
		fmt.Fprintf(out, "%-18s %11.1f%% %12d %14d %12s\n",
			name, 100*st.RemoteFraction(), st.Pairs, st.BytesSent,
			st.SimElapsed.Round(time.Millisecond))
	}
	return nil
}
