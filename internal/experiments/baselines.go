package experiments

import (
	"context"
	"fmt"

	"sisg/internal/cf"
	"sisg/internal/corpus"
	"sisg/internal/eges"
	"sisg/internal/eval"
	"sisg/internal/graph"
	"sisg/internal/knn"
	"sisg/internal/sgns"
)

// init installs the EGES and CF baseline constructors into the Table III /
// Figure 3 drivers (kept behind function hooks so quick unit tests can run
// the SISG-only path without pulling these packages' work in).
func init() {
	EGESTrainer = trainEGES
	CFTrainer = trainCF
}

func trainEGES(ds *corpus.Dataset, split *corpus.Split, train sgns.Options) (eval.Recommender, error) {
	g := graph.FromSessions(split.Train, ds.Dict.NumItems)
	opt := eges.Defaults()
	opt.Dim = train.Dim
	opt.Window = train.Window
	opt.Negatives = train.Negatives
	opt.Epochs = train.Epochs
	opt.LR = train.LR
	opt.Seed = train.Seed
	opt.Workers = train.Workers
	// Match the walk corpus size to the session corpus so EGES is not
	// starved relative to the sequence-trained variants.
	var toks int
	for i := range split.Train {
		toks += len(split.Train[i].Items)
	}
	opt.WalkLength = 12
	opt.WalksPerNode = toks/(ds.Dict.NumItems*opt.WalkLength) + 1
	m, err := eges.Train(ds.Dict, g, opt)
	if err != nil {
		return nil, fmt.Errorf("eges: %w", err)
	}
	return eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		rs, err := m.Similar(context.Background(), tc.Query, k)
		if err != nil {
			return nil
		}
		return rs
	}), nil
}

func trainCF(ds *corpus.Dataset, split *corpus.Split, train sgns.Options) (eval.Recommender, error) {
	opt := cf.Defaults()
	opt.Window = train.Window
	m, err := cf.Train(split.Train, ds.Dict.NumItems, opt)
	if err != nil {
		return nil, fmt.Errorf("cf: %w", err)
	}
	return eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		return m.Similar(tc.Query, k)
	}), nil
}
