package experiments

import (
	"context"
	"fmt"
	"io"

	"sisg/internal/abtest"
	"sisg/internal/cf"
	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3 — 8-day online CTR A/B: SISG-F-U-D vs well-tuned CF (paper: +10.01%)",
		Run: func(out, log io.Writer, quick bool, seed uint64) error {
			cfg := corpus.Sim25K()
			if quick {
				cfg = quickCorpus()
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := RunFig3(cfg, log)
			if err != nil {
				return err
			}
			abtest.WriteSeries(out, res)
			return nil
		},
	})
}

// ColdFraction is the share of the catalog treated as launched after the
// training snapshot: present in serving traffic with full SI, absent from
// behaviour history. Taobao sees a continuous stream of new listings; this
// is the regime where SISG's joint item/SI space pays off and CF has
// neither queries nor candidates.
const ColdFraction = 0.15

// RunFig3 trains the production variant and the CF baseline on the
// training snapshot (with cold items spliced out, as reality would have
// it), seeds cold items into SISG's index via their SI vectors (Eq. 6 on
// both input and output sides), then simulates the 8-day CTR A/B test on
// fresh traffic that naturally contains the cold items.
func RunFig3(cfg corpus.Config, log io.Writer) (*abtest.Result, error) {
	logf := func(format string, args ...interface{}) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	logf("fig3: generating %s ...", cfg.Name)
	ds, err := corpus.Generate(cfg)
	if err != nil {
		return nil, err
	}
	cold := ds.HoldoutItems(ColdFraction)
	trainSessions := corpus.FilterSessions(ds.Sessions, cold)
	logf("fig3: %d cold items; %d/%d sessions survive filtering",
		len(cold), len(trainSessions), len(ds.Sessions))

	train := sgns.Defaults()
	train.Window = 5
	logf("fig3: training SISG-F-U-D ...")
	model, err := sisg.Train(ds.Dict, trainSessions, sisg.VariantSISGFUD, train)
	if err != nil {
		return nil, err
	}
	model.SeedColdItems(cold)
	logf("fig3: training CF ...")
	cfm, err := cf.Train(trainSessions, ds.Dict.NumItems, cf.Defaults())
	if err != nil {
		return nil, err
	}

	arms := map[string]abtest.CandidateFunc{
		"SISG-F-U-D": func(q, user int32, k int) []knn.Result {
			rs, err := model.SimilarOne(context.Background(), q, knn.Options{K: k})
			if err != nil {
				return nil
			}
			return rs
		},
		"CF": func(q, user int32, k int) []knn.Result {
			return cfm.Similar(q, k)
		},
	}
	logf("fig3: simulating A/B traffic ...")
	return abtest.Run(ds, arms, abtest.DefaultConfig())
}
