package experiments

import (
	"fmt"

	"sisg/internal/corpus"
)

// CorpusByName resolves the named dataset configurations shared by all
// command-line tools, so "sisg-datagen -corpus Sim25K" and
// "sisg-train -corpus Sim25K" deterministically agree on the catalog.
func CorpusByName(name string) (corpus.Config, error) {
	switch name {
	case "Sim25K", "sim25k":
		return corpus.Sim25K(), nil
	case "Sim100K", "sim100k":
		return corpus.Sim100K(), nil
	case "Sim800K", "sim800k":
		return corpus.Sim800K(), nil
	case "quick", "SimQuick":
		return quickCorpus(), nil
	case "tiny", "Tiny":
		return corpus.Tiny(), nil
	default:
		return corpus.Config{}, fmt.Errorf("unknown corpus %q (want Sim25K, Sim100K, Sim800K, quick or tiny)", name)
	}
}

// QuickCorpus exposes the reduced experiment corpus to the tools.
func QuickCorpus() corpus.Config { return quickCorpus() }
