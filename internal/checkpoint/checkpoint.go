// Package checkpoint persists and restores training state so an
// interrupted run — a crashed process, a preempted container, a routine
// daily retrain cut short — continues from its last snapshot instead of
// losing hours of work. EGES (the paper's predecessor system) retrains
// billions of embeddings daily; at that cadence restartability is an
// operational requirement, not a convenience (ISSUE: fault-tolerant
// training).
//
// A Snapshot carries everything the trainers in internal/sgns and
// internal/dist need to continue bit-compatibly: the model matrices, the
// replicated hot store (distributed runs), epoch/block progress, arbitrary
// named-by-position counters, the per-shard RNG states, and a hash of the
// options the run was started with. Writes are atomic (temp file + rename
// into place) so a crash mid-write can never destroy the previous good
// snapshot, and the whole payload is covered by a CRC-32 that Load
// verifies, so a torn or bit-rotted file is rejected rather than silently
// resumed from.
//
// Binary format (little-endian):
//
//	magic    [8]byte "SISGCKP1"
//	optHash  uint64
//	epoch    uint32
//	block    uint32
//	counters uint32 n, then n × uint64
//	rngs     uint32 n, then n × 4 × uint64
//	model    uint32 vocab, uint32 dim, in vocab×dim float32, out vocab×dim float32
//	hot      uint32 n, uint32 dim, hotIn n×dim float32, hotOut n×dim float32
//	crc      uint32 CRC-32 (IEEE) of every preceding byte
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"sisg/internal/emb"
)

var magic = [8]byte{'S', 'I', 'S', 'G', 'C', 'K', 'P', '1'}

// FileName is the snapshot file name inside a checkpoint directory.
const FileName = "checkpoint.ckpt"

var (
	// ErrCorrupt reports a snapshot whose CRC, magic or structure is
	// invalid: the file must not be resumed from.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrOptionsMismatch reports a snapshot written under different
	// training options than the resuming run; continuing would silently
	// train a different model. Returned by Snapshot.CheckOptions.
	ErrOptionsMismatch = errors.New("checkpoint: options hash mismatch")
)

// Snapshot is one consistent cut of training state.
type Snapshot struct {
	// OptionsHash fingerprints the run configuration (see HashOptions). A
	// resume refuses a snapshot whose hash differs from its own options.
	OptionsHash uint64
	// Epoch is the epoch the run was in; Block is the index of the NEXT
	// sequence block to train within that epoch (blocks before it are
	// complete).
	Epoch int
	Block int
	// Counters are trainer-defined cumulative values (pairs, tokens,
	// per-worker stats); the trainer that wrote them knows the layout.
	Counters []uint64
	// RNGs are the per-shard generator states, in shard order.
	RNGs [][4]uint64
	// Model is the embedding state at the cut.
	Model *emb.Model
	// HotIn/HotOut are the distributed engine's replicated hot-token
	// store (nil/empty for local training).
	HotIn, HotOut [][]float32
}

// CheckOptions returns ErrOptionsMismatch (with both hashes in the
// message) when the snapshot was written under a different configuration.
func (s *Snapshot) CheckOptions(hash uint64) error {
	if s.OptionsHash != hash {
		return fmt.Errorf("%w: snapshot %016x, run %016x", ErrOptionsMismatch, s.OptionsHash, hash)
	}
	return nil
}

// Path returns the snapshot location inside dir.
func Path(dir string) string { return filepath.Join(dir, FileName) }

// Exists reports whether dir holds a snapshot file (it may still fail CRC
// validation on Load).
func Exists(dir string) bool {
	st, err := os.Stat(Path(dir))
	return err == nil && st.Mode().IsRegular()
}

// HashOptions fingerprints an arbitrary set of run parameters via FNV-1a
// over their printed representation. Callers pass every value that must
// match between the checkpointing run and the resuming run (options
// struct, vocabulary size, worker count, ...).
func HashOptions(vs ...interface{}) uint64 {
	h := fnv.New64a()
	for _, v := range vs {
		fmt.Fprintf(h, "%v;", v)
	}
	return h.Sum64()
}

// crcWriter tees writes into a CRC-32 accumulator.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n]) //lint:allow errsink hash.Hash.Write is documented to never return an error
	return n, err
}

// Save writes the snapshot atomically into dir, creating it if needed:
// the bytes go to a temp file in the same directory, are synced, and the
// temp file is renamed over any previous snapshot. Readers therefore see
// either the old complete snapshot or the new complete snapshot, never a
// partial write.
func Save(dir string, s *Snapshot) error {
	if s == nil || s.Model == nil {
		return errors.New("checkpoint: nil snapshot or model")
	}
	if len(s.HotIn) != len(s.HotOut) {
		return fmt.Errorf("checkpoint: hot store asymmetric: %d in, %d out", len(s.HotIn), len(s.HotOut))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, FileName+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	err = writeSnapshot(tmp, s)
	if err2 := tmp.Sync(); err == nil {
		err = err2
	}
	if err2 := tmp.Close(); err == nil {
		err = err2
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmpName, Path(dir)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory itself: the rename above is only durable
// once the directory entry hits disk, so without this a host crash shortly
// after Save could resurface the previous snapshot (or none) even though
// the temp file's bytes were synced. Filesystems that do not support
// syncing a directory handle report EINVAL/ENOTSUP; that is the platform
// saying the rename is already as durable as it gets, not a Save failure.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if err2 := d.Close(); err == nil {
		err = err2
	}
	if err != nil && (errors.Is(err, errors.ErrUnsupported) || errors.Is(err, syscall.EINVAL)) {
		return nil
	}
	return err
}

func writeSnapshot(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}

	if _, err := cw.Write(magic[:]); err != nil {
		return err
	}
	if err := writeU64(cw, s.OptionsHash); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(s.Epoch)); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(s.Block)); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(len(s.Counters))); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if err := writeU64(cw, c); err != nil {
			return err
		}
	}
	if err := writeU32(cw, uint32(len(s.RNGs))); err != nil {
		return err
	}
	for _, st := range s.RNGs {
		for _, v := range st {
			if err := writeU64(cw, v); err != nil {
				return err
			}
		}
	}
	if err := writeU32(cw, uint32(s.Model.Vocab())); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(s.Model.Dim())); err != nil {
		return err
	}
	if err := writeFloats(cw, s.Model.In.Data()); err != nil {
		return err
	}
	if err := writeFloats(cw, s.Model.Out.Data()); err != nil {
		return err
	}
	hotDim := 0
	if len(s.HotIn) > 0 {
		hotDim = len(s.HotIn[0])
	}
	if err := writeU32(cw, uint32(len(s.HotIn))); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(hotDim)); err != nil {
		return err
	}
	for _, rows := range [][][]float32{s.HotIn, s.HotOut} {
		for _, row := range rows {
			if len(row) != hotDim {
				return fmt.Errorf("checkpoint: ragged hot store row: %d != %d", len(row), hotDim)
			}
			if err := writeFloats(cw, row); err != nil {
				return err
			}
		}
	}
	// The trailer CRC covers everything written so far; it goes through
	// bw directly so it is not folded into itself.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc.Sum32())
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads and validates the snapshot in dir. A missing file returns an
// error satisfying errors.Is(err, os.ErrNotExist); any structural or CRC
// failure returns an error wrapping ErrCorrupt.
func Load(dir string) (*Snapshot, error) {
	f, err := os.Open(Path(dir))
	if err != nil {
		return nil, err
	}
	defer f.Close() //lint:allow errsink read-only file; truncation is caught by the CRC check
	return readSnapshot(f)
}

func readSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)

	var got [8]byte
	if _, err := io.ReadFull(tr, got[:]); err != nil {
		return nil, corrupt("reading magic: %v", err)
	}
	if got != magic {
		return nil, corrupt("bad magic %q", got[:])
	}
	s := &Snapshot{}
	optHash, err := readU64(tr)
	if err != nil {
		return nil, corrupt("options hash: %v", err)
	}
	s.OptionsHash = optHash
	epoch, err := readU32(tr)
	if err != nil {
		return nil, corrupt("epoch: %v", err)
	}
	block, err := readU32(tr)
	if err != nil {
		return nil, corrupt("block: %v", err)
	}
	s.Epoch, s.Block = int(epoch), int(block)

	nCounters, err := readU32(tr)
	if err != nil {
		return nil, corrupt("counter count: %v", err)
	}
	if nCounters > 1<<20 {
		return nil, corrupt("absurd counter count %d", nCounters)
	}
	s.Counters = make([]uint64, nCounters)
	for i := range s.Counters {
		if s.Counters[i], err = readU64(tr); err != nil {
			return nil, corrupt("counter %d: %v", i, err)
		}
	}
	nRNGs, err := readU32(tr)
	if err != nil {
		return nil, corrupt("rng count: %v", err)
	}
	if nRNGs > 1<<20 {
		return nil, corrupt("absurd rng count %d", nRNGs)
	}
	s.RNGs = make([][4]uint64, nRNGs)
	for i := range s.RNGs {
		for j := 0; j < 4; j++ {
			if s.RNGs[i][j], err = readU64(tr); err != nil {
				return nil, corrupt("rng %d: %v", i, err)
			}
		}
	}
	vocab, err := readU32(tr)
	if err != nil {
		return nil, corrupt("vocab: %v", err)
	}
	dim, err := readU32(tr)
	if err != nil {
		return nil, corrupt("dim: %v", err)
	}
	if dim == 0 || dim > 1<<16 || vocab > 1<<28 {
		return nil, corrupt("implausible shape %d×%d", vocab, dim)
	}
	s.Model = &emb.Model{In: emb.NewMatrix(int(vocab), int(dim)), Out: emb.NewMatrix(int(vocab), int(dim))}
	if err := readFloats(tr, s.Model.In.Data()); err != nil {
		return nil, corrupt("in matrix: %v", err)
	}
	if err := readFloats(tr, s.Model.Out.Data()); err != nil {
		return nil, corrupt("out matrix: %v", err)
	}
	nHot, err := readU32(tr)
	if err != nil {
		return nil, corrupt("hot count: %v", err)
	}
	hotDim, err := readU32(tr)
	if err != nil {
		return nil, corrupt("hot dim: %v", err)
	}
	if nHot > 1<<24 || hotDim > 1<<16 {
		return nil, corrupt("implausible hot store %d×%d", nHot, hotDim)
	}
	s.HotIn = make([][]float32, nHot)
	s.HotOut = make([][]float32, nHot)
	for _, rows := range [][][]float32{s.HotIn, s.HotOut} {
		for i := range rows {
			rows[i] = make([]float32, hotDim)
			if err := readFloats(tr, rows[i]); err != nil {
				return nil, corrupt("hot row %d: %v", i, err)
			}
		}
	}
	// All payload bytes are in the accumulator; the trailer itself is
	// read outside the tee.
	want := crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, corrupt("trailer: %v", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
		return nil, corrupt("CRC mismatch: stored %08x, computed %08x", got, want)
	}
	return s, nil
}

func corrupt(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeFloats(w io.Writer, fs []float32) error {
	buf := make([]byte, 4096)
	for len(fs) > 0 {
		n := len(buf) / 4
		if n > len(fs) {
			n = len(fs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(fs[i]))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		fs = fs[n:]
	}
	return nil
}

func readFloats(r io.Reader, fs []float32) error {
	buf := make([]byte, 4096)
	for len(fs) > 0 {
		n := len(buf) / 4
		if n > len(fs) {
			n = len(fs)
		}
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			fs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		fs = fs[n:]
	}
	return nil
}
