package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sisg/internal/emb"
	"sisg/internal/rng"
)

func sampleSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	r := rng.New(7)
	m := emb.NewModel(50, 8, r)
	for i := int32(0); i < 50; i++ {
		row := m.Out.Row(i)
		for j := range row {
			row[j] = r.Float32() - 0.5
		}
	}
	hotIn := [][]float32{{1, 2, 3, 4, 5, 6, 7, 8}, {8, 7, 6, 5, 4, 3, 2, 1}}
	hotOut := [][]float32{{0.5, 0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, -0.5}}
	return &Snapshot{
		OptionsHash: HashOptions("opts", 50, 8),
		Epoch:       1,
		Block:       3,
		Counters:    []uint64{12345, 678, 9},
		RNGs:        [][4]uint64{r.State(), rng.New(9).State()},
		Model:       m,
		HotIn:       hotIn,
		HotOut:      hotOut,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleSnapshot(t)
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists false after Save")
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.OptionsHash != want.OptionsHash || got.Epoch != want.Epoch || got.Block != want.Block {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Counters) != len(want.Counters) {
		t.Fatalf("counters: %v", got.Counters)
	}
	for i := range want.Counters {
		if got.Counters[i] != want.Counters[i] {
			t.Fatalf("counter %d: %d != %d", i, got.Counters[i], want.Counters[i])
		}
	}
	if len(got.RNGs) != 2 || got.RNGs[0] != want.RNGs[0] || got.RNGs[1] != want.RNGs[1] {
		t.Fatalf("rng states: %v", got.RNGs)
	}
	if got.Model.Vocab() != 50 || got.Model.Dim() != 8 {
		t.Fatalf("model shape %d×%d", got.Model.Vocab(), got.Model.Dim())
	}
	for i, v := range want.Model.In.Data() {
		if got.Model.In.Data()[i] != v {
			t.Fatalf("in[%d] mismatch", i)
		}
	}
	for i, v := range want.Model.Out.Data() {
		if got.Model.Out.Data()[i] != v {
			t.Fatalf("out[%d] mismatch", i)
		}
	}
	for i := range want.HotIn {
		for j := range want.HotIn[i] {
			if got.HotIn[i][j] != want.HotIn[i][j] || got.HotOut[i][j] != want.HotOut[i][j] {
				t.Fatalf("hot row %d mismatch", i)
			}
		}
	}
}

func TestCheckOptions(t *testing.T) {
	s := sampleSnapshot(t)
	if err := s.CheckOptions(s.OptionsHash); err != nil {
		t.Fatal(err)
	}
	err := s.CheckOptions(s.OptionsHash + 1)
	if !errors.Is(err, ErrOptionsMismatch) {
		t.Fatalf("mismatched hash accepted: %v", err)
	}
}

// Every single byte of the file is load-bearing: flipping any one of them
// must be detected, either by structural validation or by the CRC.
func TestCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sampleSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Sample offsets across the file (header, payload, trailer) rather
	// than all of them, to keep the test fast.
	offsets := []int{0, 7, 8, 20, 41, len(orig) / 2, len(orig) - 5, len(orig) - 1}
	for _, off := range offsets {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0x40
		if err := os.WriteFile(Path(dir), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d flipped: Load returned %v, want ErrCorrupt", off, err)
		}
	}
	// Truncation is also corruption.
	if err := os.WriteFile(Path(dir), orig[:len(orig)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file: Load returned %v, want ErrCorrupt", err)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v, want ErrNotExist", err)
	}
}

// Save must never leave a partial snapshot visible: after an overwrite the
// directory holds exactly the one complete file, and a previous snapshot
// survives an interrupted write (simulated by the temp-file protocol
// itself — the rename is the only visible mutation).
func TestSaveAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	first := sampleSnapshot(t)
	if err := Save(dir, first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot(t)
	second.Epoch = 9
	second.Counters[0] = 999
	if err := Save(dir, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 9 || got.Counters[0] != 999 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("stray files after Save: %v", names)
	}
}

func TestSaveRejectsNil(t *testing.T) {
	if err := Save(t.TempDir(), nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if err := Save(t.TempDir(), &Snapshot{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestHashOptionsDistinguishes(t *testing.T) {
	a := HashOptions("x", 1, 2.5)
	b := HashOptions("x", 1, 2.6)
	if a == b {
		t.Fatal("different options hashed equal")
	}
	if a != HashOptions("x", 1, 2.5) {
		t.Fatal("hash not deterministic")
	}
}

func TestSaveCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ckpt")
	if err := Save(dir, sampleSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatal(err)
	}
}
