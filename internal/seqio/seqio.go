// Package seqio serializes user behaviour sessions and datasets so the
// command-line tools can split the production pipeline into stages
// (generate → train → evaluate → serve), exactly as the paper's §III-C
// pipeline stages pass data between systems.
//
// Two formats are provided:
//
//   - a line-oriented text format, one session per line
//     ("<usertype-token>\titem_3 item_99 item_7"), trivially greppable and
//     diffable, matching the paper's practicability claim that enriched
//     sequences "may be fed directly into any standard SGNS
//     implementation"; and
//   - a length-prefixed binary format (magic "SISGSEQ1") that is ~6× more
//     compact and is what the tools use by default.
package seqio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sisg/internal/corpus"
)

// ---- Text format ----

// WriteText writes sessions in the line format. The user type is rendered
// through the population's token (so files are self-describing); items are
// written as item_<id>.
func WriteText(w io.Writer, sessions []corpus.Session, pop *corpus.Population) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for i := range sessions {
		s := &sessions[i]
		if _, err := bw.WriteString(pop.Types[s.UserType].Token()); err != nil {
			return err
		}
		if err := bw.WriteByte('\t'); err != nil {
			return err
		}
		for j, it := range s.Items {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(corpus.ItemToken(it)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the line format back. User-type tokens are resolved
// through the population; unknown tokens are an error.
func ReadText(r io.Reader, pop *corpus.Population) ([]corpus.Session, error) {
	index := make(map[string]int32, len(pop.Types))
	for i := range pop.Types {
		index[pop.Types[i].Token()] = int32(i)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []corpus.Session
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		tab := strings.IndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("seqio: line %d: missing user-type column", line)
		}
		ut, ok := index[text[:tab]]
		if !ok {
			return nil, fmt.Errorf("seqio: line %d: unknown user type %q", line, text[:tab])
		}
		fields := strings.Fields(text[tab+1:])
		items := make([]int32, 0, len(fields))
		for _, f := range fields {
			id, err := parseItemToken(f)
			if err != nil {
				return nil, fmt.Errorf("seqio: line %d: %v", line, err)
			}
			items = append(items, id)
		}
		out = append(out, corpus.Session{UserType: ut, Items: items})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: %w", err)
	}
	return out, nil
}

func parseItemToken(tok string) (int32, error) {
	const prefix = "item_"
	if !strings.HasPrefix(tok, prefix) {
		return 0, fmt.Errorf("bad item token %q", tok)
	}
	v, err := strconv.ParseInt(tok[len(prefix):], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad item token %q: %v", tok, err)
	}
	return int32(v), nil
}

// ---- Binary format ----
//
//	magic    [8]byte "SISGSEQ1"
//	count    uint32
//	sessions count × { usertype uint32, n uint32, items n × uint32 }

var binMagic = [8]byte{'S', 'I', 'S', 'G', 'S', 'E', 'Q', '1'}

// ErrBadFormat reports a corrupt or foreign session file.
var ErrBadFormat = errors.New("seqio: bad file format")

// WriteBinary writes sessions in the binary format.
func WriteBinary(w io.Writer, sessions []corpus.Session) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := put(uint32(len(sessions))); err != nil {
		return err
	}
	for i := range sessions {
		s := &sessions[i]
		if err := put(uint32(s.UserType)); err != nil {
			return err
		}
		if err := put(uint32(len(s.Items))); err != nil {
			return err
		}
		for _, it := range s.Items {
			if err := put(uint32(it)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads sessions written by WriteBinary. maxItems, when
// positive, bounds item IDs (corruption and mismatched-catalog detection).
func ReadBinary(r io.Reader, maxItems int) ([]corpus.Session, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("seqio: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, ErrBadFormat
	}
	var u32 [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	count, err := get()
	if err != nil {
		return nil, fmt.Errorf("seqio: reading count: %w", err)
	}
	if count > 1<<28 {
		return nil, ErrBadFormat
	}
	out := make([]corpus.Session, 0, count)
	for i := uint32(0); i < count; i++ {
		ut, err := get()
		if err != nil {
			return nil, fmt.Errorf("seqio: session %d: %w", i, err)
		}
		n, err := get()
		if err != nil {
			return nil, fmt.Errorf("seqio: session %d: %w", i, err)
		}
		if n > 1<<20 {
			return nil, ErrBadFormat
		}
		items := make([]int32, n)
		for j := range items {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("seqio: session %d item %d: %w", i, j, err)
			}
			if maxItems > 0 && int(v) >= maxItems {
				return nil, fmt.Errorf("seqio: session %d: item id %d out of range (catalog has %d)", i, v, maxItems)
			}
			items[j] = int32(v)
		}
		out = append(out, corpus.Session{UserType: int32(ut), Items: items})
	}
	return out, nil
}
