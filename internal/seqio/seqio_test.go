package seqio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sisg/internal/corpus"
)

func testPopulation(t *testing.T) (*corpus.Dataset, []corpus.Session) {
	t.Helper()
	cfg := corpus.Tiny()
	cfg.NumSessions = 200
	ds, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, ds.Sessions
}

func sessionsEqual(a, b []corpus.Session) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].UserType != b[i].UserType || len(a[i].Items) != len(b[i].Items) {
			return false
		}
		for j := range a[i].Items {
			if a[i].Items[j] != b[i].Items[j] {
				return false
			}
		}
	}
	return true
}

func TestTextRoundtrip(t *testing.T) {
	ds, sessions := testPopulation(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, sessions, ds.Pop); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf, ds.Pop)
	if err != nil {
		t.Fatal(err)
	}
	if !sessionsEqual(sessions, got) {
		t.Fatal("text roundtrip mismatch")
	}
}

func TestTextFormatShape(t *testing.T) {
	ds, _ := testPopulation(t)
	sessions := []corpus.Session{{UserType: 0, Items: []int32{3, 7}}}
	var buf bytes.Buffer
	if err := WriteText(&buf, sessions, ds.Pop); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimRight(buf.String(), "\n")
	want := ds.Pop.Types[0].Token() + "\titem_3 item_7"
	if line != want {
		t.Fatalf("line = %q, want %q", line, want)
	}
}

func TestTextErrors(t *testing.T) {
	ds, _ := testPopulation(t)
	cases := []string{
		"noTabHere item_1 item_2\n",
		"ut_unknown_type\titem_1\n",
		ds.Pop.Types[0].Token() + "\tnotanitem_5\n",
		ds.Pop.Types[0].Token() + "\titem_notanumber\n",
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c), ds.Pop); err == nil {
			t.Errorf("ReadText(%q): want error", c)
		}
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	ds, sessions := testPopulation(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, ds.Cfg.NumItems)
	if err != nil {
		t.Fatal(err)
	}
	if !sessionsEqual(sessions, got) {
		t.Fatal("binary roundtrip mismatch")
	}
}

func TestBinaryRoundtripProperty(t *testing.T) {
	f := func(raw [][]uint16, users []uint8) bool {
		var sessions []corpus.Session
		for i, items := range raw {
			if len(items) == 0 {
				continue
			}
			s := corpus.Session{Items: make([]int32, len(items))}
			if i < len(users) {
				s.UserType = int32(users[i])
			}
			for j, v := range items {
				s.Items[j] = int32(v)
			}
			sessions = append(sessions, s)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, sessions); err != nil {
			return false
		}
		got, err := ReadBinary(&buf, 0)
		if err != nil {
			return false
		}
		return sessionsEqual(sessions, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTMAGIC....."), 0); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	_, sessions := testPopulation(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/2]), 0); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestBinaryOutOfRangeItem(t *testing.T) {
	sessions := []corpus.Session{{UserType: 0, Items: []int32{0, 99999}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf, 100); err == nil {
		t.Fatal("out-of-range item accepted")
	}
}

func TestEmptySessions(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d sessions", len(got))
	}
}
