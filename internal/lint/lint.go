// Package lint is sisg's project-specific static analyzer suite. It loads
// every package in the module with stdlib go/parser + go/types (no external
// dependencies) and checks invariants the runtime test suite can only catch
// probabilistically:
//
//   - maporder:   map iteration accumulating into ordered output without a
//     sort step, in determinism-critical packages — unsorted map ranges are
//     exactly the bug class that makes same-seed runs diverge.
//   - globalrand: use of math/rand (global, mutex-guarded, unseeded by
//     default) or time-derived seeds instead of internal/rng streams.
//   - atomicmix:  a struct field accessed through sync/atomic in one place
//     and by plain load/store in another (the noiseFor race, PR 1).
//   - errsink:    discarded error returns from Write/Sync/Close/Flush in
//     checkpoint, seqio, server and cmd paths.
//   - metricname: metric registrations whose name argument is not a
//     compile-time constant (unbounded label cardinality).
//   - netdeadline: net.Conn reads/writes in transport (dist) code with no
//     preceding Set*Deadline on the same connection — the undeadlined read
//     that hangs a goroutine forever under a one-way partition.
//
// Three analyzers reason across function boundaries through the shared
// dataflow layer (flow.go): a deterministic intra-module call graph plus
// per-function summaries, built once per Module:
//
//   - ctxflow:  a request-path function that receives a context must pass
//     it to every blocking callee that accepts one; context.Background()/
//     TODO() and ctx-in-struct-field are findings in server/sisg/knn.
//   - goleak:   every `go` statement in dist/server/knn needs a provable
//     termination path — WaitGroup-bound, done/ctx-channel select, range
//     over a closable channel, or a buffered result send.
//   - lockhold: no blocking work (net I/O, channel ops, sleeps, blocking
//     helpers per the flow summaries) while a sync.Mutex/RWMutex is held,
//     in dist/server/knn/metrics.
//
// A diagnostic can be suppressed with a comment:
//
//	//lint:allow <check> <one-line reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. Each comment covers a single source line, so a
// suppression never silences more than it names. Suppressions are audited:
// after a Lint pass, StaleAllows reports every allow comment that
// suppressed nothing (and every allow naming a check that does not exist),
// so dead suppressions cannot accumulate as the code under them improves.
//
// Only non-test files are analyzed: _test.go files may use math/rand,
// unsorted iteration, etc. freely.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, pinned to a source position.
type Diagnostic struct {
	Pos     token.Position // file:line:col of the offending node
	Check   string         // analyzer name, e.g. "maporder"
	Message string
}

// String renders the canonical human form: file:line:col: check: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one invariant checker. Run is invoked once per package and
// returns raw diagnostics; the framework applies //lint:allow suppression.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, pkg *Package) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		GlobalRand(),
		AtomicMix(),
		ErrSink(),
		MetricName(),
		NetDeadline(),
		CtxFlow(),
		GoLeak(),
		LockHold(),
	}
}

// ByName returns the named analyzers, or an error naming the first
// unknown. Names are trimmed of surrounding space (so "-checks a, b"
// works) and deduplicated, so no analyzer runs — and reports — twice.
func ByName(names ...string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	seen := make(map[string]bool)
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", n, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Lint runs the analyzers over every loaded package, drops suppressed
// diagnostics, and returns the rest sorted by position.
func (m *Module) Lint(analyzers ...*Analyzer) []Diagnostic {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(m, pkg) {
				d.Check = a.Name
				if !pkg.allowed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// allow is one parsed //lint:allow comment: it suppresses diagnostics of
// the named check on a single source line. used is set when it actually
// suppresses something, so StaleAllows can report dead suppressions.
type allow struct {
	check string
	line  int
	pos   token.Position // where the comment itself sits
	used  bool
}

// allowed reports whether d is suppressed by an allow comment in its
// file, marking the comment as earning its keep.
func (p *Package) allowed(d Diagnostic) bool {
	for _, f := range p.Files {
		if f.Path != d.Pos.Filename {
			continue
		}
		for i := range f.allows {
			a := &f.allows[i]
			if a.check == d.Check && a.line == d.Pos.Line {
				a.used = true
				return true
			}
		}
	}
	return false
}

// StaleAllows audits the //lint:allow comments after a Lint pass with the
// same analyzers: a comment that suppressed nothing is a finding (the code
// under it improved, or the line drifted — either way the suppression is
// dead and would silently swallow the next real diagnostic), and so is a
// comment naming a check that does not exist. Only allows for checks in
// the given set are judged stale, so a partial -checks run never condemns
// suppressions it did not exercise; pass none to audit against the full
// suite.
func (m *Module) StaleAllows(analyzers ...*Analyzer) []Diagnostic {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for i := range f.allows {
				a := &f.allows[i]
				switch {
				case !known[a.check]:
					out = append(out, Diagnostic{
						Pos:     a.pos,
						Check:   "allows",
						Message: fmt.Sprintf("//lint:allow names unknown check %q; it suppresses nothing", a.check),
					})
				case ran[a.check] && !a.used:
					out = append(out, Diagnostic{
						Pos:     a.pos,
						Check:   "allows",
						Message: fmt.Sprintf("stale //lint:allow %s: no %s finding on line %d to suppress", a.check, a.check, a.line),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

const allowPrefix = "//lint:allow "

// parseAllows extracts //lint:allow comments from a parsed file. A comment
// at the end of a code line covers that line; a comment alone on its line
// covers the line below it.
func parseAllows(fset *token.FileSet, file *ast.File, src []byte) []allow {
	var out []allow
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			check, _, _ := strings.Cut(rest, " ")
			if check == "" {
				continue
			}
			pos := fset.Position(c.Slash)
			line := pos.Line
			if standalone(src, pos.Offset) {
				line++
			}
			out = append(out, allow{check: check, line: line, pos: pos})
		}
	}
	return out
}

// standalone reports whether the comment starting at offset is the first
// non-blank content on its line.
func standalone(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // start of file
}

// pathHasSegment reports whether any "/"-separated segment of the package
// import path equals one of names. Used to scope analyzers to the
// determinism-critical or durability-critical parts of the tree.
func pathHasSegment(path string, names ...string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, n := range names {
			if seg == n {
				return true
			}
		}
	}
	return false
}

// scopedTo reports whether pkg sits under one of the named segments of
// its module-relative import path. The flow analyzers scope with this
// rather than pathHasSegment because the module is itself named "sisg":
// judged on the full import path, a scope containing "sisg" would match
// every package in the tree instead of just internal/sisg.
func scopedTo(m *Module, pkg *Package, names ...string) bool {
	rel := strings.TrimPrefix(pkg.Path, m.Path)
	rel = strings.TrimPrefix(rel, "/")
	if rel == "" {
		// The module root package: judge by the module path's own last
		// segment, so a fixture module named example.com/server is "in"
		// server the way internal/server is.
		rel = m.Path[strings.LastIndex(m.Path, "/")+1:]
	}
	return pathHasSegment(rel, names...)
}

// objOf resolves an expression to the object it names, unwrapping parens:
// an identifier or a field/package-qualified selector. Returns nil for
// anything more complex.
func objOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// mentionsObj reports whether the subtree rooted at n references obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
