// Package lint is sisg's project-specific static analyzer suite. It loads
// every package in the module with stdlib go/parser + go/types (no external
// dependencies) and checks invariants the runtime test suite can only catch
// probabilistically:
//
//   - maporder:   map iteration accumulating into ordered output without a
//     sort step, in determinism-critical packages — unsorted map ranges are
//     exactly the bug class that makes same-seed runs diverge.
//   - globalrand: use of math/rand (global, mutex-guarded, unseeded by
//     default) or time-derived seeds instead of internal/rng streams.
//   - atomicmix:  a struct field accessed through sync/atomic in one place
//     and by plain load/store in another (the noiseFor race, PR 1).
//   - errsink:    discarded error returns from Write/Sync/Close/Flush in
//     checkpoint, seqio, server and cmd paths.
//   - metricname: metric registrations whose name argument is not a
//     compile-time constant (unbounded label cardinality).
//   - netdeadline: net.Conn reads/writes in transport (dist) code with no
//     preceding Set*Deadline on the same connection — the undeadlined read
//     that hangs a goroutine forever under a one-way partition.
//
// A diagnostic can be suppressed with a comment:
//
//	//lint:allow <check> <one-line reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. Each comment covers a single source line, so a
// suppression never silences more than it names.
//
// Only non-test files are analyzed: _test.go files may use math/rand,
// unsorted iteration, etc. freely.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, pinned to a source position.
type Diagnostic struct {
	Pos     token.Position // file:line:col of the offending node
	Check   string         // analyzer name, e.g. "maporder"
	Message string
}

// String renders the canonical human form: file:line:col: check: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one invariant checker. Run is invoked once per package and
// returns raw diagnostics; the framework applies //lint:allow suppression.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, pkg *Package) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		GlobalRand(),
		AtomicMix(),
		ErrSink(),
		MetricName(),
		NetDeadline(),
	}
}

// ByName returns the named analyzers, or an error naming the first unknown.
func ByName(names ...string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", n, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Lint runs the analyzers over every loaded package, drops suppressed
// diagnostics, and returns the rest sorted by position.
func (m *Module) Lint(analyzers ...*Analyzer) []Diagnostic {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(m, pkg) {
				d.Check = a.Name
				if !pkg.allowed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// allow is one parsed //lint:allow comment: it suppresses diagnostics of
// the named check on a single source line.
type allow struct {
	check string
	line  int
}

// allowed reports whether d is suppressed by an allow comment in its file.
func (p *Package) allowed(d Diagnostic) bool {
	for _, f := range p.Files {
		if f.Path != d.Pos.Filename {
			continue
		}
		for _, a := range f.allows {
			if a.check == d.Check && a.line == d.Pos.Line {
				return true
			}
		}
	}
	return false
}

const allowPrefix = "//lint:allow "

// parseAllows extracts //lint:allow comments from a parsed file. A comment
// at the end of a code line covers that line; a comment alone on its line
// covers the line below it.
func parseAllows(fset *token.FileSet, file *ast.File, src []byte) []allow {
	var out []allow
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			check, _, _ := strings.Cut(rest, " ")
			if check == "" {
				continue
			}
			pos := fset.Position(c.Slash)
			line := pos.Line
			if standalone(src, pos.Offset) {
				line++
			}
			out = append(out, allow{check: check, line: line})
		}
	}
	return out
}

// standalone reports whether the comment starting at offset is the first
// non-blank content on its line.
func standalone(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // start of file
}

// pathHasSegment reports whether any "/"-separated segment of the package
// import path equals one of names. Used to scope analyzers to the
// determinism-critical or durability-critical parts of the tree.
func pathHasSegment(path string, names ...string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, n := range names {
			if seg == n {
				return true
			}
		}
	}
	return false
}

// objOf resolves an expression to the object it names, unwrapping parens:
// an identifier or a field/package-qualified selector. Returns nil for
// anything more complex.
func objOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// mentionsObj reports whether the subtree rooted at n references obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
