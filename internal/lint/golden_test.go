package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-file convention: a fixture line carrying a violation ends in
//
//	// want "regexp"
//
// (several quoted regexps if the line yields several diagnostics). The
// harness fails on any diagnostic without a matching want and any want
// without a matching diagnostic, so fixtures pin both positives and the
// deliberately-clean counterexamples next to them.

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, "maporder", "example.com/graph", MapOrder())
}

func TestGlobalRandGolden(t *testing.T) {
	runGolden(t, "globalrand", "example.com/app", GlobalRand())
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, "atomicmix", "example.com/app", AtomicMix())
}

func TestErrSinkGolden(t *testing.T) {
	runGolden(t, "errsink", "example.com/checkpoint", ErrSink())
}

func TestMetricNameGolden(t *testing.T) {
	runGolden(t, "metricname", "example.com/app", MetricName())
}

func TestNetDeadlineGolden(t *testing.T) {
	runGolden(t, "netdeadline", "example.com/dist", NetDeadline())
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, "ctxflow", "example.com/server", CtxFlow())
}

func TestGoLeakGolden(t *testing.T) {
	runGolden(t, "goleak", "example.com/dist", GoLeak())
}

func TestLockHoldGolden(t *testing.T) {
	runGolden(t, "lockhold", "example.com/dist", LockHold())
}

// Path-scoped analyzers must stay silent outside their scope: the same
// fixtures, reloaded under a neutral module path, yield nothing.
func TestScopedAnalyzersIgnoreOtherPackages(t *testing.T) {
	for fixture, a := range map[string]*Analyzer{
		"maporder":    MapOrder(),
		"errsink":     ErrSink(),
		"netdeadline": NetDeadline(),
		"ctxflow":     CtxFlow(),
		"goleak":      GoLeak(),
		"lockhold":    LockHold(),
	} {
		mod := loadFixture(t, fixture, "example.com/unrelated")
		if diags := mod.Lint(a); len(diags) != 0 {
			t.Errorf("%s under a neutral path: want no diagnostics, got %v", fixture, diags)
		}
	}
}

// A //lint:allow comment suppresses exactly the one diagnostic on its
// line, not its twin three lines up.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	mod := loadFixture(t, "allow", "example.com/app")
	diags := mod.Lint(GlobalRand())
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 surviving diagnostic, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Pos.Filename, "allow.go") || diags[0].Pos.Line != 7 {
		t.Errorf("surviving diagnostic at %s, want allow.go:7 (the unsuppressed twin)", diags[0].Pos)
	}
}

func loadFixture(t *testing.T, fixture, modPath string) *Module {
	t.Helper()
	mod, err := Load(filepath.Join("testdata", "src", fixture), modPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	return mod
}

func runGolden(t *testing.T, fixture, modPath string, a *Analyzer) {
	t.Helper()
	mod := loadFixture(t, fixture, modPath)
	diags := mod.Lint(a)
	wants := parseWants(t, mod)

	for _, d := range diags {
		ws := wants[wantKey{d.Pos.Filename, d.Pos.Line}]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var (
	wantLineRe  = regexp.MustCompile(`// want (.+)$`)
	wantTokenRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// parseWants extracts the `// want "..."` expectations from every loaded
// fixture file.
func parseWants(t *testing.T, mod *Module) map[wantKey][]*want {
	t.Helper()
	out := make(map[wantKey][]*want)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for i, line := range strings.Split(string(f.Src), "\n") {
				m := wantLineRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				k := wantKey{f.Path, i + 1}
				for _, tok := range wantTokenRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						t.Fatalf("%s:%d: bad want token %s: %v", f.Path, i+1, tok, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", f.Path, i+1, pat, err)
					}
					out[k] = append(out[k], &want{re: re})
				}
			}
		}
	}
	return out
}
