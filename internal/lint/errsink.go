package lint

import (
	"go/ast"
	"go/types"
)

// errSinkPkgs are the path segments of packages whose I/O errors are
// load-bearing: a swallowed Sync in checkpoint turns an atomic snapshot
// into silent corruption on power loss, a swallowed Close in seqio loses
// buffered sessions, and the serving/cmd shutdown paths must report why
// they failed. The cmd trees ride along because they own the file handles
// the libraries write through.
var errSinkPkgs = []string{"checkpoint", "seqio", "server", "cmd"}

// errSinkMethods are the error-returning calls whose results must not be
// dropped on the floor in those packages.
var errSinkMethods = map[string]bool{"Write": true, "Sync": true, "Close": true, "Flush": true}

// ErrSink flags Write/Sync/Close/Flush calls whose error result is
// discarded by using the call as a bare statement (including `defer` and
// `go`). An explicit `_ = f.Close()` is treated as an acknowledged,
// deliberate discard and is not flagged — the point is to make the
// decision visible, not to forbid it. Calls on strings.Builder and
// bytes.Buffer are exempt: their Write methods are documented never to
// fail.
func ErrSink() *Analyzer {
	return &Analyzer{
		Name: "errsink",
		Doc:  "discarded Write/Sync/Close/Flush errors in durability-critical paths",
		Run:  runErrSink,
	}
}

func runErrSink(m *Module, pkg *Package) []Diagnostic {
	if !pathHasSegment(pkg.Path, errSinkPkgs...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(st.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			if d, ok := errSinkCall(m, pkg, call); ok {
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// errSinkCall reports a diagnostic if call is a dropped-error sink.
func errSinkCall(m *Module, pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !errSinkMethods[sel.Sel.Name] {
		return Diagnostic{}, false
	}
	fn, ok := pkg.Info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return Diagnostic{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return Diagnostic{}, false
	}
	if recv := sig.Recv(); recv != nil && neverFails(recv.Type()) {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos: m.Fset.Position(call.Pos()),
		Message: sel.Sel.Name + " error discarded; check it (or write `_ = ...` to discard deliberately)" +
			" — durability paths must surface I/O failures",
	}, true
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// neverFails reports whether t is one of the stdlib writers documented to
// never return an error (strings.Builder, bytes.Buffer).
func neverFails(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
