// Fixture for the maporder analyzer. Loaded by golden_test.go under the
// module path "example.com/graph" so the determinism-critical package
// scope applies; the scope test reloads it under a neutral path and
// expects silence.
package graph

import "sort"

func collectUnsorted(m map[int]string) []int {
	var keys []int
	for k := range m { // want "map iteration appends to \"keys\" with no sort step in collectUnsorted"
		keys = append(keys, k)
	}
	return keys
}

func collectSorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectSortSlice(m map[string]float64) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

func sumOnly(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

func nestedMap(ms []map[int]int) []int {
	var out []int
	for k := range ms[0] { // want "map iteration appends to \"out\" with no sort step in nestedMap"
		out = append(out, k)
	}
	return out
}

type bag struct {
	items []string
}

func fieldAppend(b *bag, m map[string]bool) {
	for k := range m { // want "map iteration appends to \"items\" with no sort step in fieldAppend"
		b.items = append(b.items, k)
	}
}

func fieldAppendSorted(b *bag, m map[string]bool) {
	for k := range m {
		b.items = append(b.items, k)
	}
	sort.Strings(b.items)
}

func allowedCollect(m map[int]string) []string {
	var vals []string
	//lint:allow maporder feeds a set; caller never depends on order
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}
