// Fixture for the metricname analyzer (module-wide; no path scope). The
// nested metrics package supplies a Registry the analyzer recognizes.
package app

import (
	"fmt"

	"example.com/app/metrics"
)

const goodName = "requests_total"

func register(reg *metrics.Registry, user string) {
	reg.Counter(goodName, "constant name")
	reg.Counter("literal_total", "string literal is a constant")
	reg.Histogram(goodName+"_seconds", "constant expression", nil)

	reg.Gauge(fmt.Sprintf("user_%s_total", user), "formatted") // want "metric name passed to Gauge is not a compile-time constant"

	name := "per_user_" + user
	reg.GaugeFunc(name, "variable", nil) // want "metric name passed to GaugeFunc is not a compile-time constant"

	//lint:allow metricname names come from a bounded static table
	reg.Counter(tableName(0), "allowed")
}

func tableName(i int) string { return [...]string{"a_total"}[i] }
