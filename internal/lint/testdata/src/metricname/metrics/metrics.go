// Stand-in for sisg/internal/metrics: the analyzer recognizes any type
// named Registry in a package named metrics, so the fixture does not need
// to import the real module.
package metrics

// Label is one name/value pair on a series.
type Label struct{ Name, Value string }

// Registry mirrors the registration surface of the real registry.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) int { return 0 }

func (r *Registry) Gauge(name, help string, labels ...Label) int { return 0 }

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) int { return 0 }
