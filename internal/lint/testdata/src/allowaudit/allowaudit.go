// Fixture for the stale-suppression audit: one allow that earns its keep,
// one that suppresses nothing, and one naming a check that does not exist.
package app

import "math/rand"

func used() int { return rand.Int() } //lint:allow globalrand deliberate: audit fixture, suppression in use

func stale() int { return 4 } //lint:allow globalrand nothing on this line violates anything

func unknown() int { return 4 } //lint:allow nosuchcheck the check name is a typo
