// Fixture for the ctxflow analyzer (scoped to server/sisg/knn packages;
// the golden test loads this tree as module "example.com/server").
package server

import (
	"context"
	"net/http"
	"time"
)

// retrieve blocks: it parks until the scan answers or the ctx is
// cancelled. The flow layer marks it blocking, which is what arms the
// dataflow rule at its call sites.
func retrieve(ctx context.Context, out chan int) (int, error) {
	select {
	case v := <-out:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// lookup never blocks; passing it a detached ctx is pointless but not a
// stall, so the dataflow rule stays quiet (Background itself still fires
// where it is called).
func lookup(ctx context.Context, table map[int]int, k int) int {
	return table[k]
}

// handleV1Similar is the seeded regression: a /v1 handler whose retrieval
// was reverted to context.Background(), silently detaching every scan it
// starts from its request.
func handleV1Similar(w http.ResponseWriter, r *http.Request, out chan int) {
	v, _ := retrieve(context.Background(), out) // want "context.Background\\(\\) detaches this path"
	_ = v
}

// handleV1Good threads the request context — the PR 8 contract, clean.
func handleV1Good(w http.ResponseWriter, r *http.Request, out chan int) {
	v, _ := retrieve(r.Context(), out)
	_ = v
}

// stashed is a detached context parked at package level — the kind of
// stale reference the dataflow rule exists to catch at call sites.
var stashed = context.Background()

// handleV1Stashed has the request in hand but passes the stashed context
// to the blocking callee: the dataflow finding, distinct from Background.
func handleV1Stashed(w http.ResponseWriter, r *http.Request, out chan int) {
	v, _ := retrieve(stashed, out) // want "does not reach it"
	_ = v
}

// handleV1Derived wraps its request context before passing it on; a
// derived context still counts as reaching the callee. Deliberately
// exempt.
func handleV1Derived(w http.ResponseWriter, r *http.Request, out chan int) {
	tctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	v, _ := retrieve(tctx, out)
	_ = v
}

// chainDerived re-derives twice through locals; the fixed-point derivation
// keeps it clean.
func chainDerived(ctx context.Context, out chan int) (int, error) {
	c1 := context.WithValue(ctx, ctxKey{}, "req")
	c2, cancel := context.WithTimeout(c1, time.Second)
	defer cancel()
	return retrieve(c2, out)
}

type ctxKey struct{}

// todoInHelper: TODO is no better than Background.
func todoInHelper(out chan int) (int, error) {
	return retrieve(context.TODO(), out) // want "context.TODO\\(\\) detaches this path"
}

// viaLiteral: a literal that declares its own ctx parameter is its own
// scope and must use it — this one does; clean.
func viaLiteral(out chan int) func(context.Context) (int, error) {
	return func(ctx context.Context) (int, error) {
		return retrieve(ctx, out)
	}
}

// literalDropsCapture: the literal inherits the enclosing ctx by capture
// but hands the blocking callee the stashed one instead.
func literalDropsCapture(ctx context.Context, out chan int) func() (int, error) {
	return func() (int, error) {
		return retrieve(stashed, out) // want "does not reach it"
	}
}

// stashingCtx is the struct-field finding: a context parked in a struct
// outlives its request and is invisible to the flow analysis.
type stashingCtx struct {
	ctx  context.Context // want "stored in struct field ctx"
	out  chan int
	when time.Time
}

// cleanConfig holds no context; nothing to report.
type cleanConfig struct {
	out  chan int
	when time.Time
}

// allowedWrapper is the annotated-exemption pattern: a deliberate detach
// with a reason, as the repo's deprecated wrappers carry.
func allowedWrapper(out chan int) (int, error) {
	return retrieve(context.Background(), out) //lint:allow ctxflow deprecated ctx-less compatibility shim
}

// nonBlockingDrop: lookup takes a ctx but never blocks, so handing it the
// stashed context is not a stall; deliberately exempt from the dataflow
// rule.
func nonBlockingDrop(ctx context.Context, table map[int]int) int {
	return lookup(stashed, table, 7)
}
