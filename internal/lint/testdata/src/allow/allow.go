// Fixture for the suppression semantics test: two identical violations,
// one allowed. Exactly one diagnostic must survive.
package app

import "math/rand"

func first() int { return rand.Int() }

func second() int { return rand.Int() } //lint:allow globalrand deliberate: suppression-scope fixture
