// Fixture for the dataflow-layer unit tests (loaded under the neutral
// module path "example.com/flow" so no path-scoped analyzer fires): a
// small call graph exercising direct blocking facts, transitive
// propagation, interface-method joins and goroutine spawn summaries.
package flow

import "time"

type Caller interface {
	Call(msg string) string
}

type slowCaller struct{}

func (slowCaller) Call(msg string) string {
	time.Sleep(time.Millisecond)
	return msg
}

type fastCaller struct{}

func (fastCaller) Call(msg string) string { return msg }

// viaInterface blocks only through the interface join: neither its body
// nor any static edge blocks, but slowCaller is a possible target.
func viaInterface(c Caller) string { return c.Call("x") }

// pure neither blocks nor calls anything that does.
func pure(a, b int) int { return a + b }

// indirect picks up "blocks" transitively through helper.
func indirect() { helper() }

func helper() { waits(make(chan int)) }

func waits(ch chan int) { <-ch }

// spawns starts a goroutine; the spawned call is not a synchronous edge,
// so spawns itself does not block.
func spawns(ch chan int) {
	go func() { waits(ch) }()
}
