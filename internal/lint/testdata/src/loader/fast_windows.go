package lib

// The _windows filename suffix keeps this duplicate off non-windows
// hosts, exactly as go/build would.
func fast() int { return 3 }
