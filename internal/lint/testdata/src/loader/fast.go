//go:build !integration

package lib

func fast() int { return 1 }
