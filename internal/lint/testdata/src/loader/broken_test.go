package lib

// fast here both redeclares the symbol in fast.go and references an
// undefined identifier: if the loader ever parsed _test.go files,
// type-checking this package would fail loudly.
func fast() int { return notAThing }
