//go:build integration

package lib

// fast here redeclares the symbol in fast.go: if the loader ignored build
// constraints, type checking would fail on the collision.
func fast() int { return 2 }
