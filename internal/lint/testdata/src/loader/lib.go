// Fixture for the loader tests: build-tag-guarded duplicate symbols and a
// deliberately broken _test.go file. Load must pick exactly one fast()
// and never read the test file.
package lib

func F() int { return fast() }
