// Fixture for the errsink analyzer. Loaded under the module path
// "example.com/checkpoint" so the durability-critical scope applies; the
// scope test reloads it under a neutral path and expects silence.
package checkpoint

import (
	"bufio"
	"bytes"
	"os"
	"strings"
)

func dropClose(f *os.File) {
	f.Close() // want "Close error discarded"
}

func deferClose(f *os.File) {
	defer f.Close() // want "Close error discarded"
}

func goClose(f *os.File) {
	go f.Close() // want "Close error discarded"
}

func dropFlush(bw *bufio.Writer) {
	bw.Flush() // want "Flush error discarded"
}

func dropSync(f *os.File) {
	f.Sync() // want "Sync error discarded"
}

func dropWrite(f *os.File, p []byte) {
	f.Write(p) // want "Write error discarded"
}

func checkedClose(f *os.File) error {
	return f.Close()
}

func acknowledgedClose(f *os.File) {
	_ = f.Close()
}

func neverFailWriters(b *strings.Builder, buf *bytes.Buffer) {
	b.Write(nil)   // strings.Builder never fails: clean
	buf.Write(nil) // bytes.Buffer never fails: clean
}

func allowedClose(f *os.File) {
	f.Close() //lint:allow errsink read-only file descriptor
}
