// Fixture for the globalrand analyzer (module-wide; no path scope).
package app

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want "use of math/rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "use of math/rand.Shuffle"
}

func localStream() float64 {
	src := rand.NewSource(1) // want "use of math/rand.NewSource"
	r := rand.New(src)       // want "use of math/rand.New"
	return r.Float64()       // want "use of math/rand.Float64"
}

func wallClockSeed() int64 {
	seed := newSeed(time.Now().UnixNano()) // want "wall-clock seed passed to newSeed"
	return seed
}

func wallClockConverted() uint64 {
	return seedFrom(uint64(time.Now().UnixNano())) // want "wall-clock seed passed to seedFrom"
}

// elapsed time is not a seed: no New*/Seed* callee, not flagged.
func elapsedOK() int64 {
	return track(time.Now().UnixNano())
}

func allowedUse() int {
	return rand.Int() //lint:allow globalrand demo: interop with an external API that wants the global source
}

func newSeed(n int64) int64    { return n }
func seedFrom(n uint64) uint64 { return n }
func track(n int64) int64      { return n }
