// Fixture for the netdeadline analyzer (scoped to dist packages; the
// golden test loads this tree as module "example.com/dist").
package dist

import (
	"io"
	"net"
	"time"
)

func readNoDeadline(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) // want "net.Conn Read with no preceding SetReadDeadline"
}

func writeNoDeadline(c net.Conn, buf []byte) (int, error) {
	return c.Write(buf) // want "net.Conn Write with no preceding SetWriteDeadline"
}

func readGuarded(c net.Conn, buf []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return c.Read(buf)
}

// SetDeadline covers both directions.
func fullDeadlineGuardsWrite(c net.Conn, buf []byte) (int, error) {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return c.Write(buf)
}

func readFullNoDeadline(c net.Conn) ([]byte, error) {
	buf := make([]byte, 4)
	_, err := io.ReadFull(c, buf) // want "io.ReadFull reads a net.Conn with no preceding SetReadDeadline"
	return buf, err
}

// Concrete conn types count too, and a guarded io.ReadFull is clean.
func readFullGuarded(c *net.TCPConn) ([]byte, error) {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return nil, err
	}
	buf := make([]byte, 4)
	_, err := io.ReadFull(c, buf)
	return buf, err
}

// io.Copy writes its first argument and reads its second: the guarded dst
// is clean, the unguarded src is not.
func copyMixed(dst, src net.Conn) (int64, error) {
	if err := dst.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return io.Copy(dst, src) // want "io.Copy reads a net.Conn with no preceding SetReadDeadline"
}

// A write deadline does not license a read.
func wrongDirection(c net.Conn, buf []byte) (int, error) {
	if err := c.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return c.Read(buf) // want "net.Conn Read with no preceding SetReadDeadline"
}

// A deadline set after the read arms the NEXT read, not this one.
func deadlineTooLate(c net.Conn, buf []byte) (int, error) {
	n, err := c.Read(buf) // want "net.Conn Read with no preceding SetReadDeadline"
	if derr := c.SetReadDeadline(time.Now().Add(time.Second)); derr != nil {
		return n, derr
	}
	return n, err
}

// Guards are per-object: a's deadline says nothing about b.
func twoConns(a, b net.Conn, buf []byte) {
	if err := a.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return
	}
	_, _ = a.Read(buf)
	_, _ = b.Read(buf) // want "net.Conn Read with no preceding SetReadDeadline"
}

// Not a conn: ordinary readers are none of this analyzer's business.
type memReader struct{}

func (memReader) Read(p []byte) (int, error) { return 0, nil }

func plainRead(r memReader, buf []byte) (int, error) {
	return r.Read(buf)
}

func allowedRead(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) //lint:allow netdeadline demo: the caller owns the deadline on this conn
}
