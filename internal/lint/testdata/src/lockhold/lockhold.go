// Fixture for the lockhold analyzer (scoped to dist/server/knn/metrics
// packages; the golden test loads this tree as module "example.com/dist").
package dist

import (
	"net"
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cache map[int]int
}

// sleepUnderLock serializes every waiter behind a timer.
func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
	s.mu.Unlock()
}

// recvUnderDeferredLock: the deferred Unlock holds the mutex across the
// receive — the deadlock-shaped version of the same mistake.
func (s *store) recvUnderDeferredLock(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want "channel receive while mu is held"
}

// writeUnderRLock: socket I/O under a read lock still serializes writers.
func (s *store) writeUnderRLock(c net.Conn, b []byte) {
	s.rw.RLock()
	_, _ = c.Write(b) // want "net.Conn Write while rw is held"
	s.rw.RUnlock()
}

// sendUnderLock parks the holder on a rendezvous.
func (s *store) sendUnderLock(ch chan int, v int) {
	s.mu.Lock()
	ch <- v // want "channel send while mu is held"
	s.mu.Unlock()
}

// slowHelper is a small helper whose own body blocks; callers under a
// lock get flagged through one level of summary inlining.
func slowHelper() {
	time.Sleep(time.Millisecond)
}

func (s *store) helperUnderLock() {
	s.mu.Lock()
	slowHelper() // want "call to slowHelper, which does time.Sleep"
	s.mu.Unlock()
}

// snapshotThenSend is the hot-path idiom the analyzer must NOT flag: copy
// under the lock, do the blocking work outside. Deliberately exempt.
func (s *store) snapshotThenSend(ch chan int, k int) {
	s.mu.Lock()
	v := s.cache[k]
	s.mu.Unlock()
	ch <- v
}

// spawnUnderLock: the goroutine blocks on its own schedule, not the lock
// holder's; exempt (its body is still checked as its own scope).
func (s *store) spawnUnderLock(done chan struct{}) {
	s.mu.Lock()
	s.cache[0] = 1
	go func() {
		<-done
	}()
	s.mu.Unlock()
}

// lockUnderLock: taking a second mutex while holding the first is an
// ordering question, not a stall — BlockLock is excluded by design.
// Deliberately exempt.
func (s *store) lockUnderLock() {
	s.mu.Lock()
	s.rw.Lock()
	s.cache[1] = 2
	s.rw.Unlock()
	s.mu.Unlock()
}

// deferredLiteralEscapes: a deferred literal runs at return, as its own
// scope; the receive inside it is not "under" the lock region it is
// written inside. Exempt.
func (s *store) deferredLiteralEscapes(ch chan int) {
	s.mu.Lock()
	defer func() {
		<-ch
	}()
	s.cache[2] = 3
	s.mu.Unlock()
}

// unlockedBetween: the linear walk tracks release — blocking after the
// Unlock is fine even with a Lock further down. Exempt.
func (s *store) unlockedBetween(ch chan int) {
	s.mu.Lock()
	v := s.cache[3]
	s.mu.Unlock()
	ch <- v
	s.mu.Lock()
	s.cache[3] = v + 1
	s.mu.Unlock()
}

// allowedCalibration is the annotated-exemption pattern: a deliberate,
// explained hold across a sleep.
func (s *store) allowedCalibration() {
	s.mu.Lock()
	time.Sleep(time.Microsecond) //lint:allow lockhold calibration spin, held lock is test-only
	s.mu.Unlock()
}
