// Fixture for the atomicmix analyzer (module-wide; no path scope).
package app

import "sync/atomic"

type counters struct {
	mixed    uint64 // accessed both ways: flagged at the plain sites
	atomOnly uint64 // only ever touched through sync/atomic: clean
	plain    uint64 // never touched through sync/atomic: clean
	typed    atomic.Uint64
}

func (c *counters) incAll() {
	atomic.AddUint64(&c.mixed, 1)
	atomic.AddUint64(&c.atomOnly, 1)
	c.plain++
	c.typed.Add(1)
}

func (c *counters) plainRead() uint64 {
	return c.mixed // want "field mixed is accessed with sync/atomic"
}

func (c *counters) plainWrite() {
	c.mixed = 0 // want "field mixed is accessed with sync/atomic"
}

func (c *counters) atomicRead() uint64 {
	return atomic.LoadUint64(&c.atomOnly)
}

func (c *counters) others() uint64 {
	return c.plain + c.typed.Load()
}

func (c *counters) allowedSnapshot() uint64 {
	return c.mixed //lint:allow atomicmix single-threaded teardown path; workers have exited
}
