// Fixture for the goleak analyzer (scoped to dist/server/knn packages;
// the golden test loads this tree as module "example.com/dist").
package dist

import (
	"io"
	"net"
	"sync"
	"time"
)

// pollForever is the classic fire-and-forget leak: an infinite loop with
// no waiter and no shutdown signal.
func pollForever() {
	go func() { // want "no termination path"
		for {
			time.Sleep(time.Second)
		}
	}()
}

// copyConn leaks a goroutine AND pins the connection it captured: the
// descriptor lives as long as the process once nobody can stop the copy.
func copyConn(conn net.Conn) {
	go func() { // want "captures net connection conn"
		_, _ = io.Copy(io.Discard, conn)
	}()
}

// spawnOpaque launches a func value the analysis cannot see into; the
// spawn site must carry the proof, and has none.
func spawnOpaque(fn func()) {
	go fn() // want "cannot see into"
}

// waitGroupBound is the supervised pattern: a waiter owns the lifecycle.
// Deliberately exempt.
func waitGroupBound(wg *sync.WaitGroup, work chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			v, ok := <-work
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// doneSelect shuts down through a done channel; exempt.
func doneSelect(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// rangeWorker drains until the producer closes the channel; exempt.
func rangeWorker(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

// bufferedResult hands its result to a channel made with a buffer in the
// spawner: the send completes even if every receiver gave up. Exempt.
func bufferedResult() chan int {
	res := make(chan int, 1)
	go func() {
		res <- 42
	}()
	return res
}

// unbufferedResult is the same handoff without the buffer: if the caller
// stops listening, the goroutine parks on the send forever.
func unbufferedResult() chan int {
	res := make(chan int)
	go func() { // want "no termination path"
		res <- 42
	}()
	return res
}

// straightLine cannot park and cannot loop; it runs off its own end.
// Exempt.
func straightLine(counter *int) {
	go func() {
		*counter++
	}()
}

// namedLoop spawns a method whose body the flow layer resolves: loop is
// WaitGroup-bound, so the spawn is exempt even though the proof lives in
// another function.
type pump struct {
	wg   sync.WaitGroup
	work chan int
}

func (p *pump) start() {
	p.wg.Add(1)
	go p.loop()
}

func (p *pump) loop() {
	defer p.wg.Done()
	for v := range p.work {
		_ = v
	}
}

// namedLeak spawns a named function that blocks forever with no proof
// anywhere.
func (p *pump) startLeaky() {
	go p.drain() // want "goroutine running drain has no termination path"
}

func (p *pump) drain() {
	for {
		v := <-p.work
		_ = v
	}
}

// allowedSpawn is the annotated-exemption pattern: a deliberate
// process-lifetime goroutine with a reason.
func allowedSpawn(work chan int) {
	go func() { //lint:allow goleak process-lifetime drain, reaped at exit
		for {
			v := <-work
			_ = v
		}
	}()
}
