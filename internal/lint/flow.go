package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the dataflow layer shared by the cross-function analyzers
// (ctxflow, goleak, lockhold): a deterministic intra-module call graph over
// the already type-checked packages, plus a per-function summary — does
// this function block, take a context, acquire a lock, spawn a goroutine?
// It is computed once per Module and cached; every analyzer that needs
// cross-function reasoning reads the same graph, so adding a new analyzer
// costs no new traversal machinery.
//
// Determinism is load-bearing: diagnostics are diffed across CI runs, so
// the graph is built by walking packages in dependency order, files in
// directory order and declarations in source order, callee lists are
// deduplicated preserving first-call order, and interface-method edges
// resolve implementations in (package, sorted type name) order. Two loads
// of the same tree produce byte-identical dumps (see TestFlowDeterminism).

// BlockKind classifies why a statement can park its goroutine.
type BlockKind int

const (
	// BlockChan is a channel send, channel receive, or a select with no
	// default clause.
	BlockChan BlockKind = iota
	// BlockSleep is a timed wait (time.Sleep).
	BlockSleep
	// BlockIO is socket or stream I/O: net.Conn reads/writes, dials,
	// accepts, io.ReadFull/Copy and friends, HTTP round-trips.
	BlockIO
	// BlockSync is a synchronization wait: WaitGroup.Wait, Cond.Wait.
	BlockSync
	// BlockLock is a mutex acquisition (Mutex/RWMutex Lock/RLock). It is
	// kept distinct because lock-ordering is judged differently from
	// blocking work: taking a lock under a lock is a discipline question,
	// not a stall, so lockhold excludes this kind.
	BlockLock
)

func (k BlockKind) String() string {
	switch k {
	case BlockChan:
		return "channel operation"
	case BlockSleep:
		return "timed sleep"
	case BlockIO:
		return "network/stream I/O"
	case BlockSync:
		return "synchronization wait"
	case BlockLock:
		return "lock acquisition"
	}
	return "unknown"
}

// BlockFact is one directly-blocking operation observed in a function
// body: what it is and where.
type BlockFact struct {
	Pos  token.Pos
	Kind BlockKind
	Op   string // human description, e.g. "channel receive" or "time.Sleep"
}

// FuncInfo is the flow summary of one module function.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Callees are the static synchronous call edges out of this function,
	// first-call order, deduplicated. Calls that are the operand of a `go`
	// statement are excluded (they do not block the caller); calls inside
	// non-go function literals are included (defer and inline literals run
	// on the caller's goroutine).
	Callees []*FuncInfo

	// Facts are the function's own directly-blocking operations, in
	// source order. Interface methods carry the union of their module
	// implementations' direct facts (see interface edges below).
	Facts []BlockFact

	// TakesCtx reports a context.Context parameter; CtxParam is the first
	// one (nil otherwise). ReqParam is the first *net/http.Request
	// parameter — handlers receive their context through it.
	TakesCtx bool
	CtxParam *types.Var
	ReqParam *types.Var

	// AcquiresLock / SpawnsGoroutine are the remaining summary bits.
	AcquiresLock    bool
	SpawnsGoroutine bool

	blocksDeep bool // this function or any synchronous callee (any depth) blocks
}

// Blocks reports whether calling this function can park the caller's
// goroutine: it has a direct non-lock blocking fact, or some function
// reachable over synchronous call edges does.
func (f *FuncInfo) Blocks() bool { return f.blocksDeep }

// DirectlyBlocks reports a non-lock blocking operation in this function's
// own body — the one-level summary lockhold inlines across small helpers.
func (f *FuncInfo) DirectlyBlocks() (BlockFact, bool) {
	for _, bf := range f.Facts {
		if bf.Kind != BlockLock {
			return bf, true
		}
	}
	return BlockFact{}, false
}

// Flow is the module-wide call graph and summary store.
type Flow struct {
	m     *Module
	funcs []*FuncInfo // deterministic declaration order
	byObj map[*types.Func]*FuncInfo
}

// Flow returns the module's dataflow layer, building it on first use.
func (m *Module) Flow() *Flow {
	if m.flow == nil {
		m.flow = buildFlow(m)
	}
	return m.flow
}

// FuncOf returns the summary for a function object, or nil when the
// object is not a module function with a body (stdlib, interface methods
// without module implementations, func-typed values).
func (fl *Flow) FuncOf(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return fl.byObj[obj]
}

// Funcs returns every module function in deterministic order: packages in
// dependency order, files in directory order, declarations in source
// order — callers iterate this instead of map order.
func (fl *Flow) Funcs() []*FuncInfo { return fl.funcs }

// Dump renders the graph and summaries as stable text, one function per
// line: its full name, summary flags, direct facts and callees. Two
// builds of the same tree must produce byte-identical dumps.
func (fl *Flow) Dump() string {
	var b strings.Builder
	for _, f := range fl.funcs {
		fmt.Fprintf(&b, "%s", f.Obj.FullName())
		var flags []string
		if f.TakesCtx {
			flags = append(flags, "ctx")
		}
		if f.AcquiresLock {
			flags = append(flags, "locks")
		}
		if f.SpawnsGoroutine {
			flags = append(flags, "spawns")
		}
		if f.Blocks() {
			flags = append(flags, "blocks")
		}
		if len(flags) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(flags, ","))
		}
		for _, bf := range f.Facts {
			pos := fl.m.Fset.Position(bf.Pos)
			fmt.Fprintf(&b, "\n\t! %s (%s) at line %d", bf.Op, bf.Kind, pos.Line)
		}
		for _, c := range f.Callees {
			fmt.Fprintf(&b, "\n\t-> %s", c.Obj.FullName())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// blockingCalls maps stdlib callees (types.Func.FullName form) to their
// blocking classification. The table is the ground truth the whole layer
// bottoms out in; module functions get their summaries by propagation.
var blockingCalls = map[string]BlockFact{
	"time.Sleep": {Kind: BlockSleep, Op: "time.Sleep"},

	"(*sync.WaitGroup).Wait": {Kind: BlockSync, Op: "sync.WaitGroup.Wait"},
	"(*sync.Cond).Wait":      {Kind: BlockSync, Op: "sync.Cond.Wait"},

	"(*sync.Mutex).Lock":    {Kind: BlockLock, Op: "sync.Mutex.Lock"},
	"(*sync.RWMutex).Lock":  {Kind: BlockLock, Op: "sync.RWMutex.Lock"},
	"(*sync.RWMutex).RLock": {Kind: BlockLock, Op: "sync.RWMutex.RLock"},

	"net.Dial":                  {Kind: BlockIO, Op: "net.Dial"},
	"net.DialTimeout":           {Kind: BlockIO, Op: "net.DialTimeout"},
	"net.Listen":                {Kind: BlockIO, Op: "net.Listen"},
	"(*net.Dialer).Dial":        {Kind: BlockIO, Op: "net.Dialer.Dial"},
	"(*net.Dialer).DialContext": {Kind: BlockIO, Op: "net.Dialer.DialContext"},
	"(net.Listener).Accept":     {Kind: BlockIO, Op: "net.Listener.Accept"},

	"io.ReadFull":    {Kind: BlockIO, Op: "io.ReadFull"},
	"io.ReadAtLeast": {Kind: BlockIO, Op: "io.ReadAtLeast"},
	"io.Copy":        {Kind: BlockIO, Op: "io.Copy"},
	"io.CopyN":       {Kind: BlockIO, Op: "io.CopyN"},
	"io.ReadAll":     {Kind: BlockIO, Op: "io.ReadAll"},

	"(*net/http.Client).Do":             {Kind: BlockIO, Op: "http.Client.Do"},
	"(*net/http.Client).Get":            {Kind: BlockIO, Op: "http.Client.Get"},
	"(*net/http.Client).Post":           {Kind: BlockIO, Op: "http.Client.Post"},
	"(*net/http.Client).Head":           {Kind: BlockIO, Op: "http.Client.Head"},
	"net/http.Get":                      {Kind: BlockIO, Op: "http.Get"},
	"net/http.Post":                     {Kind: BlockIO, Op: "http.Post"},
	"net/http.Head":                     {Kind: BlockIO, Op: "http.Head"},
	"(*net/http.Server).ListenAndServe": {Kind: BlockIO, Op: "http.Server.ListenAndServe"},
	"(*net/http.Server).Serve":          {Kind: BlockIO, Op: "http.Server.Serve"},
	"(*net/http.Server).Shutdown":       {Kind: BlockIO, Op: "http.Server.Shutdown"},
	"(*os/exec.Cmd).Run":                {Kind: BlockIO, Op: "exec.Cmd.Run"},
	"(*os/exec.Cmd).Wait":               {Kind: BlockIO, Op: "exec.Cmd.Wait"},
	"(*os/exec.Cmd).Output":             {Kind: BlockIO, Op: "exec.Cmd.Output"},
	"(*os/exec.Cmd).CombinedOutput":     {Kind: BlockIO, Op: "exec.Cmd.CombinedOutput"},
}

// buildFlow constructs the graph: one pass indexing declarations, one
// pass extracting per-function facts and raw edges, one pass joining
// interface-method callees onto their module implementations, then a
// fixed-point propagation of transitive blocking (cycles — mutual
// recursion, interface loops — converge because the facts only grow).
func buildFlow(m *Module) *Flow {
	fl := &Flow{m: m, byObj: make(map[*types.Func]*FuncInfo)}

	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				fl.funcs = append(fl.funcs, fi)
				fl.byObj[obj] = fi
			}
		}
	}

	for _, fi := range fl.funcs {
		fl.summarize(fi)
	}

	// Propagate transitive blocking to a fixed point. Each round visits
	// functions in stable order; the flag is monotone, so the loop
	// terminates in at most graph-diameter rounds.
	for _, fi := range fl.funcs {
		if _, ok := fi.DirectlyBlocks(); ok {
			fi.blocksDeep = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fl.funcs {
			if fi.blocksDeep {
				continue
			}
			for _, c := range fi.Callees {
				if c.blocksDeep {
					fi.blocksDeep = true
					changed = true
					break
				}
			}
		}
	}
	return fl
}

// summarize fills one function's facts, parameters, and callee edges.
func (fl *Flow) summarize(fi *FuncInfo) {
	sig := fi.Obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) && fi.CtxParam == nil {
			fi.TakesCtx = true
			fi.CtxParam = p
		}
		if isHTTPRequestType(p.Type()) && fi.ReqParam == nil {
			fi.ReqParam = p
		}
	}

	info := fi.Pkg.Info
	seen := make(map[*FuncInfo]bool)
	addCallee := func(c *FuncInfo) {
		if c != nil && c != fi && !seen[c] {
			seen[c] = true
			fi.Callees = append(fi.Callees, c)
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			fi.SpawnsGoroutine = true
			// The spawned call runs on another goroutine: no synchronous
			// edge, no blocking fact. Its arguments ARE evaluated here.
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			if _, ok := n.Call.Fun.(*ast.FuncLit); !ok {
				ast.Inspect(n.Call.Fun, walk) // selector side effects, minus the call edge
			}
			return false
		case *ast.SendStmt:
			fi.Facts = append(fi.Facts, BlockFact{Pos: n.Pos(), Kind: BlockChan, Op: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fi.Facts = append(fi.Facts, BlockFact{Pos: n.Pos(), Kind: BlockChan, Op: "channel receive"})
			}
		case *ast.SelectStmt:
			// A select with a default clause never parks; one without can.
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				fi.Facts = append(fi.Facts, BlockFact{Pos: n.Pos(), Kind: BlockChan, Op: "select without default"})
			}
			// Descend into the clauses but not re-count the comm receives:
			// the select fact covers them. Walk bodies only.
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				for _, s := range cc.Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					fi.Facts = append(fi.Facts, BlockFact{Pos: n.Pos(), Kind: BlockChan, Op: "range over channel"})
				}
			}
		case *ast.CallExpr:
			fl.recordCall(fi, info, n, addCallee)
		}
		return true
	}
	ast.Inspect(fi.Decl.Body, walk)
}

// recordCall classifies one call expression: a stdlib blocking fact, a
// net.Conn method fact, a static module edge, or an interface-method call
// joined over its module implementations.
func (fl *Flow) recordCall(fi *FuncInfo, info *types.Info, call *ast.CallExpr, addCallee func(*FuncInfo)) {
	obj := calleeOf(info, call)
	if obj == nil {
		return // dynamic call through a func value, conversion, or builtin
	}

	if bf, ok := blockingCalls[obj.FullName()]; ok {
		bf.Pos = call.Pos()
		fi.Facts = append(fi.Facts, bf)
		if bf.Kind == BlockLock {
			fi.AcquiresLock = true
		}
		return
	}

	// Reads and writes on anything connection-shaped block like net I/O,
	// whatever concrete net type is behind it.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isConnType(info.TypeOf(sel.X)) {
		switch sel.Sel.Name {
		case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
			fi.Facts = append(fi.Facts, BlockFact{Pos: call.Pos(), Kind: BlockIO, Op: "net.Conn " + sel.Sel.Name})
			return
		}
	}

	if target := fl.byObj[obj]; target != nil {
		addCallee(target)
		return
	}

	// A module-local interface method: the static callee has no body, but
	// every module type implementing the interface is a possible target.
	// Join them all — deterministically — so e.g. Transport.Call inherits
	// "blocks" from its channel, TCP and fault implementations.
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) && fl.isModuleObj(obj) {
			for _, impl := range fl.implementations(obj) {
				addCallee(impl)
			}
		}
	}
}

// isModuleObj reports whether the object was declared by a package of the
// module under analysis.
func (fl *Flow) isModuleObj(obj types.Object) bool {
	return obj.Pkg() != nil && fl.m.byPath[obj.Pkg().Path()] != nil
}

// implementations resolves an interface method to the matching concrete
// methods of every module type that implements the interface, in
// (package order, sorted type name) order.
func (fl *Flow) implementations(method *types.Func) []*FuncInfo {
	recv := method.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return nil
	}
	var out []*FuncInfo
	for _, pkg := range fl.m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if ok && types.IsInterface(named) {
				continue
			}
			if !ok {
				continue
			}
			var typ types.Type = named
			if !types.Implements(typ, iface) {
				typ = types.NewPointer(named)
				if !types.Implements(typ, iface) {
					continue
				}
			}
			o, _, _ := types.LookupFieldOrMethod(typ, true, method.Pkg(), method.Name())
			if m, ok := o.(*types.Func); ok {
				if fi := fl.byObj[m]; fi != nil {
					out = append(out, fi)
				}
			}
		}
	}
	return out
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes: a package function, a method (concrete or interface), possibly
// package-qualified. Nil for builtins, conversions and func values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestType reports whether t is *net/http.Request.
func isHTTPRequestType(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// sortedFacts returns a copy of facts ordered by position — callers that
// merge facts from several sources use this to keep messages stable.
func sortedFacts(facts []BlockFact) []BlockFact {
	out := append([]BlockFact(nil), facts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
