package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed, non-test source file.
type File struct {
	Path   string // filesystem path, as it appears in diagnostics
	AST    *ast.File
	Src    []byte
	allows []allow
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. "sisg/internal/graph"
	Name  string
	Dir   string
	Files []*File
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded, type-checked module tree.
type Module struct {
	Fset   *token.FileSet
	Path   string     // module path from go.mod (or the override passed to Load)
	Pkgs   []*Package // dependency order
	byPath map[string]*Package
	flow   *Flow // lazily built dataflow layer, shared by all analyzers
}

// Load parses and type-checks every non-test package under root.
//
// modPath names the module; when empty it is read from root's go.mod. The
// loader needs no GOPATH and no build cache: module-local imports resolve
// against the tree being loaded, and standard-library imports are
// type-checked from GOROOT source via go/importer's "source" compiler, so
// the whole pipeline is pure stdlib. Directories named testdata or vendor,
// and hidden/underscore directories, are skipped; _test.go files are never
// loaded (test code is exempt from project invariants).
func Load(root, modPath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if modPath == "" {
		modPath, err = readModulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	m := &Module{Fset: fset, Path: modPath, byPath: make(map[string]*Package)}

	dirs, err := sourceDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[pkg.Path] = pkg
	}

	if err := m.sortByDeps(); err != nil {
		return nil, err
	}
	return m, m.typeCheck()
}

// Package returns the loaded package with the given import path, or nil.
func (m *Module) Package(path string) *Package { return m.byPath[path] }

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (pass an explicit module path to Load?)", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// sourceDirs lists every directory under root that may hold package
// sources, in deterministic (lexical walk) order.
func sourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory, or returns nil
// if there are none.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*File
	name := ""
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") ||
			strings.HasPrefix(fn, ".") || strings.HasPrefix(fn, "_") {
			continue
		}
		if !fileNameMatches(fn) {
			continue // _GOOS/_GOARCH suffix for another platform
		}
		path := filepath.Join(dir, fn)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if !buildTagsMatch(src) {
			continue // //go:build constraint unsatisfied on this platform
		}
		af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if name == "" {
			name = af.Name.Name
		} else if af.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: files for two packages (%s, %s) in one directory", dir, name, af.Name.Name)
		}
		files = append(files, &File{Path: path, AST: af, Src: src, allows: parseAllows(fset, af, src)})
	}
	if len(files) == 0 {
		return nil, nil
	}
	imp := modPath
	if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
		imp = modPath + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: imp, Name: name, Dir: dir, Files: files}, nil
}

// knownOS and knownArch are the GOOS/GOARCH values recognized in file
// name suffixes, mirroring go/build's lists closely enough for this
// module (and for fixtures that deliberately target imaginary platforms —
// an unknown suffix is just part of the name, exactly as go/build treats
// it).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// fileNameMatches applies go/build's implicit file name constraints:
// name_GOOS.go, name_GOARCH.go and name_GOOS_GOARCH.go only build on the
// named platform. The loader analyzes the tree as the host platform sees
// it — the same file set `go build` would compile here — so tag-guarded
// duplicate symbols (arch-specific kernels, stubbed fallbacks) never
// collide during type checking.
func fileNameMatches(fn string) bool {
	base := strings.TrimSuffix(fn, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 {
			if os := parts[len(parts)-2]; knownOS[os] && os != runtime.GOOS {
				return false
			}
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// buildTagsMatch evaluates a file's //go:build (or legacy // +build)
// constraint against the host platform: GOOS, GOARCH, the gc compiler and
// the unix meta-tag are satisfied, minimum-go-version tags (go1.N) are
// assumed satisfied by the current toolchain, and anything else (purego,
// integration, imaginary platforms) is not. Files whose constraint is
// unsatisfied are skipped, exactly as the go tool would skip them.
func buildTagsMatch(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(trimmed) && !constraint.IsPlusBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			continue // malformed constraint: let the parser complain, not us
		}
		if !expr.Eval(buildTagSatisfied) {
			return false
		}
	}
	return true
}

func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly",
			"solaris", "illumos", "aix", "android", "ios":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

// localImports lists the module-internal import paths of a parsed package.
func (m *Module) localImports(p *Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range p.Files {
		for _, spec := range f.AST.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if (path == m.Path || strings.HasPrefix(path, m.Path+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// sortByDeps orders m.Pkgs so every package follows its module-local
// dependencies (stdlib imports have no ordering constraints).
func (m *Module) sortByDeps() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(m.Pkgs))
	var order []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(chain, " -> "), p.Path)
		}
		state[p.Path] = visiting
		for _, dep := range m.localImports(p) {
			dp := m.byPath[dep]
			if dp == nil {
				return fmt.Errorf("lint: %s imports %s, which is not in the loaded tree", p.Path, dep)
			}
			if err := visit(dp, append(chain, p.Path)); err != nil {
				return err
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p, nil); err != nil {
			return err
		}
	}
	m.Pkgs = order
	return nil
}

// moduleImporter resolves imports during type checking: module-local paths
// from the packages already checked, everything else (the standard
// library) from GOROOT source.
type moduleImporter struct {
	m   *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := mi.m.byPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import %q before it was checked (loader ordering bug)", path)
		}
		return p.Types, nil
	}
	return mi.std.Import(path)
}

// typeCheck runs go/types over every package in dependency order.
func (m *Module) typeCheck() error {
	imp := &moduleImporter{m: m, std: importer.ForCompiler(m.Fset, "source", nil)}
	for _, p := range m.Pkgs {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		cfg := types.Config{Importer: imp}
		asts := make([]*ast.File, len(p.Files))
		for i, f := range p.Files {
			asts[i] = f.AST
		}
		tp, err := cfg.Check(p.Path, m.Fset, asts, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
		}
		p.Types, p.Info = tp, info
	}
	return nil
}
