package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLeak enforces the supervised-goroutine discipline PRs 5 and 7 built
// into dist and the serving path: every goroutine must have a provable
// termination path, because an engine that leaks one goroutine per failed
// peer (or per request) degrades exactly the way the load generator in
// PR 8 measures. Scoped to dist, server and knn, each `go` statement must
// show one of:
//
//   - a sync.WaitGroup.Done in the spawned body (lifecycle owned by a
//     waiter),
//   - a receive from a done/ctx channel (select-driven shutdown),
//   - a range over a channel (terminates when the producer closes it),
//   - a send into a channel the spawner made with a buffer (result
//     handoff that cannot park forever), or
//   - a straight-line body with no blocking operation at all.
//
// Fire-and-forget goroutines that capture a net.Conn get called out
// specifically: those pin file descriptors, not just stacks.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "every goroutine needs a reachable termination path",
		Run:  runGoLeak,
	}
}

func runGoLeak(m *Module, pkg *Package) []Diagnostic {
	if !scopedTo(m, pkg, "dist", "server", "knn") {
		return nil
	}
	fl := m.Flow()
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if d, leak := checkGoStmt(m, fl, pkg, fd, g); leak {
					out = append(out, d)
				}
				return true
			})
		}
	}
	return out
}

// checkGoStmt proves (or fails to prove) termination of one go statement.
func checkGoStmt(m *Module, fl *Flow, pkg *Package, spawner *ast.FuncDecl, g *ast.GoStmt) (Diagnostic, bool) {
	var body *ast.BlockStmt
	var info *types.Info
	what := "goroutine"

	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body, info = fun.Body, pkg.Info
	default:
		obj := calleeOf(pkg.Info, g.Call)
		if target := fl.FuncOf(obj); target != nil {
			body, info = target.Decl.Body, target.Pkg.Info
			what = "goroutine running " + obj.Name()
		}
	}
	if body == nil {
		// A func value we cannot see into: the spawner takes responsibility
		// it cannot demonstrate.
		return Diagnostic{
			Pos: m.Fset.Position(g.Pos()),
			Message: "goroutine spawns a function value this analysis cannot see into;" +
				" bind it to a WaitGroup or a done channel at the spawn site",
		}, true
	}

	if hasTerminationEvidence(m, fl, info, pkg, spawner, g, body) {
		return Diagnostic{}, false
	}

	msg := what + " has no termination path: no WaitGroup.Done, no done/ctx channel receive," +
		" no buffered result send"
	if conn := capturedConn(pkg.Info, g, body); conn != "" {
		msg += "; it captures net connection " + conn + ", pinning the descriptor for the process lifetime"
	}
	return Diagnostic{Pos: m.Fset.Position(g.Pos()), Message: msg}, true
}

// hasTerminationEvidence scans the spawned body for any of the accepted
// termination proofs.
func hasTerminationEvidence(m *Module, fl *Flow, info *types.Info, pkg *Package, spawner *ast.FuncDecl, g *ast.GoStmt, body *ast.BlockStmt) bool {
	found := false
	blocking := false
	infiniteLoop := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := calleeOf(info, n); obj != nil {
				switch obj.FullName() {
				case "(*sync.WaitGroup).Done":
					found = true // a waiter owns this lifecycle
					return false
				}
				if bf, ok := blockingCalls[obj.FullName()]; ok && bf.Kind != BlockLock {
					blocking = true
				} else if target := fl.FuncOf(obj); target != nil && target.Blocks() {
					blocking = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isConnType(info.TypeOf(sel.X)) {
				switch sel.Sel.Name {
				case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
					blocking = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking = true
				if isDoneChannel(info, n.X) {
					found = true
					return false
				}
			}
		case *ast.SelectStmt:
			blocking = true
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if recv := commReceive(cc.Comm); recv != nil && isDoneChannel(info, recv) {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true // terminates when the producer closes the channel
					return false
				}
			}
		case *ast.SendStmt:
			blocking = true
			if sentToBufferedChannel(info, spawner, n) {
				found = true
				return false
			}
		case *ast.ForStmt:
			if n.Cond == nil {
				infiniteLoop = true
			}
		}
		return true
	})
	if found {
		return true
	}
	// No explicit proof, but a body that cannot park and cannot loop
	// forever runs off its own end.
	return !blocking && !infiniteLoop
}

// commReceive extracts the channel expression of a select receive clause.
func commReceive(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// isDoneChannel reports whether a received-from expression is a shutdown
// signal: ctx.Done(), or a channel whose name says lifecycle (done, stop,
// quit, closed, gone, ...). The name heuristic is deliberate — the repo's
// convention (PR 5's worker `gone`, PR 7's transport `closed`) makes the
// intent part of the identifier.
func isDoneChannel(info *types.Info, x ast.Expr) bool {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
			sel.Sel.Name == "Done" && isContextType(info.TypeOf(sel.X)) {
			return true
		}
		return false
	}
	name := ""
	switch e := x.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	}
	name = strings.ToLower(name)
	for _, marker := range []string{"done", "stop", "quit", "exit", "clos", "abort", "cancel", "gone", "dead", "finish"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

// sentToBufferedChannel reports whether the send target is a channel the
// spawning function made with a non-zero buffer — the result-handoff
// idiom, where the send completes even if every receiver has given up.
func sentToBufferedChannel(info *types.Info, spawner *ast.FuncDecl, send *ast.SendStmt) bool {
	obj := objOf(info, send.Chan)
	if obj == nil || spawner == nil || spawner.Body == nil {
		return false
	}
	buffered := false
	ast.Inspect(spawner.Body, func(n ast.Node) bool {
		if buffered {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if objOf(info, lhs) != obj || i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() != "0" {
				buffered = true
			}
		}
		return true
	})
	return buffered
}

// capturedConn names a connection-typed variable the goroutine uses from
// outside its own body (a closure capture or a spawn argument), or "".
func capturedConn(info *types.Info, g *ast.GoStmt, body *ast.BlockStmt) string {
	for _, a := range g.Call.Args {
		if isConnType(info.TypeOf(a)) {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				return id.Name
			}
			return "argument"
		}
	}
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !isConnType(v.Type()) {
			return true
		}
		// Declared outside the literal's body: a capture, not a local.
		if v.Pos() < body.Pos() || v.Pos() > body.End() {
			name = id.Name
		}
		return true
	})
	return name
}
