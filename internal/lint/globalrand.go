package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRand flags any use of math/rand (or math/rand/v2) in non-test
// code, plus time-derived seed expressions. Every random draw in this
// repository must come from internal/rng's splittable seeded streams:
// math/rand's package-level functions share one mutex-guarded, ambiently
// seeded source, so a single stray call makes same-seed runs diverge and
// serializes the Hogwild trainers on a lock. A `time.Now().UnixNano()`
// seed is the same bug one step removed — the seed itself stops being a
// function of the run's master seed.
func GlobalRand() *Analyzer {
	return &Analyzer{
		Name: "globalrand",
		Doc:  "math/rand or time-derived seeds instead of internal/rng streams",
		Run:  runGlobalRand,
	}
}

func runGlobalRand(m *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		out = append(out, randUseDiags(m, pkg, f)...)
		out = append(out, timeSeedDiags(m, pkg, f)...)
	}
	return out
}

func randUseDiags(m *Module, pkg *Package, f *File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pkg.Info.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(sel.Pos()),
				Message: "use of " + obj.Pkg().Path() + "." + obj.Name() +
					"; draw from the seeded streams in internal/rng instead",
			})
		}
		return true
	})
	return out
}

// timeSeedDiags flags time.Now().UnixNano() / .Unix() used as an argument
// to a call whose name suggests seeding (New*, *Seed*) — the classic
// "seed from the wall clock" anti-pattern.
func timeSeedDiags(m *Module, pkg *Package, f *File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pkg, call)
		lower := strings.ToLower(name)
		if name == "" || !(strings.HasPrefix(lower, "new") || strings.Contains(lower, "seed")) {
			return true
		}
		for _, arg := range call.Args {
			if isWallClock(pkg, arg) {
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(arg.Pos()),
					Message: "wall-clock seed passed to " + name +
						"; derive seeds from the run's master seed (internal/rng) so runs replay",
				})
			}
		}
		return true
	})
	return out
}

// calleeName returns the simple name of the function being called, or "".
func calleeName(pkg *Package, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isWallClock matches time.Now().UnixNano(), time.Now().Unix(), and
// time-typed conversions of either (e.g. uint64(time.Now().UnixNano())).
func isWallClock(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	// Unwrap a conversion: T(inner) where T is a type.
	if len(call.Args) == 1 {
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return isWallClock(pkg, call.Args[0])
		}
		if _, ok := objOf(pkg.Info, call.Fun).(*types.TypeName); ok {
			return isWallClock(pkg, call.Args[0])
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "UnixNano" && sel.Sel.Name != "Unix") {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := objOf(pkg.Info, inner.Fun)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Now"
}
