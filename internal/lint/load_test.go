package lint

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// The loader fixture holds three files defining fast(): one behind
// //go:build !integration (loaded), one behind //go:build integration
// (skipped), and one with a _windows filename suffix (skipped off
// windows). If the loader ignored constraints, type checking would fail
// on the redeclaration — so a clean load IS the assertion. broken_test.go
// in the same directory references an undefined symbol; loading it would
// also fail, proving _test.go exclusion.
func TestLoadRespectsBuildConstraints(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("fixture pins the _windows suffix as the excluded variant")
	}
	mod := loadFixture(t, "loader", "example.com/lib")
	pkg := mod.Package("example.com/lib")
	if pkg == nil {
		t.Fatal("fixture package not loaded")
	}
	var names []string
	for _, f := range pkg.Files {
		names = append(names, filepath.Base(f.Path))
	}
	got := strings.Join(names, ",")
	if want := "fast.go,lib.go"; got != want {
		t.Errorf("loaded files = %s, want %s (tag- and suffix-excluded variants skipped, _test.go never read)", got, want)
	}
}

func TestFileNameMatches(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		{"snake_case_name.go", true},
		{"x_" + runtime.GOOS + ".go", true},
		{"x_" + runtime.GOARCH + ".go", true},
		{"x_" + runtime.GOOS + "_" + runtime.GOARCH + ".go", true},
		{"x_plan9.go", false},
		{"x_wasm.go", false},
		{"x_plan9_386.go", false},
		// An unknown suffix is just part of the name.
		{"x_custom.go", true},
	}
	for _, c := range cases {
		if got := fileNameMatches(c.name); got != c.want {
			t.Errorf("fileNameMatches(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBuildTagsMatch(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"package p\n", true},
		{"//go:build " + runtime.GOOS + "\npackage p\n", true},
		{"//go:build !" + runtime.GOOS + "\npackage p\n", false},
		{"//go:build integration\npackage p\n", false},
		{"//go:build !integration\npackage p\n", true},
		{"//go:build " + runtime.GOARCH + " && gc && !purego\npackage p\n", true},
		{"//go:build purego\npackage p\n", false},
		{"//go:build go1.21\npackage p\n", true},
		// A constraint-looking line after the package clause is not one.
		{"package p\n\n//go:build integration\n", true},
	}
	for _, c := range cases {
		if got := buildTagsMatch([]byte(c.src)); got != c.want {
			t.Errorf("buildTagsMatch(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}
