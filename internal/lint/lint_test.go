package lint

import (
	"go/token"
	"strings"
	"testing"
)

// The repository must lint clean: every true positive is fixed and every
// deliberate exception carries a //lint:allow. This is the same invariant
// the CI lint job enforces through cmd/sisg-lint, expressed as a test so
// `go test ./...` alone catches a reintroduced violation.
func TestRepositoryLintsClean(t *testing.T) {
	mod, err := Load("../..", "")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the tree", len(mod.Pkgs))
	}
	for _, want := range []string{"sisg/internal/graph", "sisg/internal/dist", "sisg/cmd/sisg-train"} {
		if mod.Package(want) == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	if len(Analyzers()) != 9 {
		t.Fatalf("suite has %d analyzers, want 9", len(Analyzers()))
	}
	for _, d := range mod.Lint() {
		t.Errorf("repository not lint-clean: %s", d)
	}
	// The strict audit: every //lint:allow in the tree must have earned
	// its keep during the pass above, and name a real check.
	for _, d := range mod.StaleAllows() {
		t.Errorf("suppression audit: %s", d)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("maporder", "errsink")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "maporder" || as[1].Name != "errsink" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuchcheck"); err == nil || !strings.Contains(err.Error(), "nosuchcheck") {
		t.Fatalf("ByName(nosuchcheck) error = %v, want it named", err)
	}
	// The error must list every valid name, so a -checks typo is
	// self-correcting from the message alone.
	_, err = ByName("ctxflo")
	if err == nil {
		t.Fatal("ByName(ctxflo): want error")
	}
	for _, a := range Analyzers() {
		if !strings.Contains(err.Error(), a.Name) {
			t.Errorf("ByName error %q does not list valid check %s", err, a.Name)
		}
	}
	// Whitespace (from "-checks a, b") is trimmed; duplicates collapse so
	// no analyzer runs — and reports — twice.
	as, err = ByName(" goleak", "goleak ", "goleak")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].Name != "goleak" {
		t.Fatalf("ByName with spaces/dups returned %v, want one goleak", as)
	}
}

// The stale-suppression audit: an allow that suppressed something is
// quiet, one that suppressed nothing is a finding, and one naming a
// nonexistent check is a finding regardless of which analyzers ran.
func TestStaleAllows(t *testing.T) {
	mod := loadFixture(t, "allowaudit", "example.com/app")
	if diags := mod.Lint(GlobalRand()); len(diags) != 0 {
		t.Fatalf("fixture should lint clean (the one violation is allowed), got %v", diags)
	}
	audit := mod.StaleAllows(GlobalRand())
	if len(audit) != 2 {
		t.Fatalf("StaleAllows = %v, want exactly the stale and the unknown-check findings", audit)
	}
	if !strings.Contains(audit[0].Message, "stale") || !strings.Contains(audit[0].Message, "globalrand") {
		t.Errorf("first audit finding = %q, want the stale globalrand allow", audit[0].Message)
	}
	if !strings.Contains(audit[1].Message, "nosuchcheck") {
		t.Errorf("second audit finding = %q, want the unknown-check allow", audit[1].Message)
	}
}

// An allow for a check outside the run set is not judged stale: a partial
// -checks invocation must not condemn suppressions it never exercised.
func TestStaleAllowsScopedToRunSet(t *testing.T) {
	mod := loadFixture(t, "allowaudit", "example.com/app")
	mod.Lint(MapOrder()) // globalrand never runs
	audit := mod.StaleAllows(MapOrder())
	if len(audit) != 1 || !strings.Contains(audit[0].Message, "nosuchcheck") {
		t.Fatalf("StaleAllows(maporder) = %v, want only the unknown-check finding", audit)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 12, Column: 3},
		Check:   "maporder",
		Message: "boom",
	}
	if got, want := d.String(), "a/b.go:12:3: maporder: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestStandaloneCommentDetection(t *testing.T) {
	src := []byte("x := 1 // tail\n\t// solo\n")
	tail := strings.Index(string(src), "// tail")
	solo := strings.Index(string(src), "// solo")
	if standalone(src, tail) {
		t.Error("end-of-line comment misclassified as standalone")
	}
	if !standalone(src, solo) {
		t.Error("indented standalone comment not detected")
	}
	if !standalone([]byte("// top\n"), 0) {
		t.Error("comment at offset 0 not detected as standalone")
	}
}

func TestPathHasSegment(t *testing.T) {
	if !pathHasSegment("sisg/internal/graph", "graph") {
		t.Error("exact segment not matched")
	}
	if pathHasSegment("sisg/internal/graphics", "graph") {
		t.Error("substring wrongly matched as a segment")
	}
	if !pathHasSegment("example.com/checkpoint", "checkpoint") {
		t.Error("trailing segment not matched")
	}
}
