package lint

import (
	"go/token"
	"strings"
	"testing"
)

// The repository must lint clean: every true positive is fixed and every
// deliberate exception carries a //lint:allow. This is the same invariant
// the CI lint job enforces through cmd/sisg-lint, expressed as a test so
// `go test ./...` alone catches a reintroduced violation.
func TestRepositoryLintsClean(t *testing.T) {
	mod, err := Load("../..", "")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the tree", len(mod.Pkgs))
	}
	for _, want := range []string{"sisg/internal/graph", "sisg/internal/dist", "sisg/cmd/sisg-train"} {
		if mod.Package(want) == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	for _, d := range mod.Lint() {
		t.Errorf("repository not lint-clean: %s", d)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("maporder", "errsink")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "maporder" || as[1].Name != "errsink" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuchcheck"); err == nil || !strings.Contains(err.Error(), "nosuchcheck") {
		t.Fatalf("ByName(nosuchcheck) error = %v, want it named", err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 12, Column: 3},
		Check:   "maporder",
		Message: "boom",
	}
	if got, want := d.String(), "a/b.go:12:3: maporder: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestStandaloneCommentDetection(t *testing.T) {
	src := []byte("x := 1 // tail\n\t// solo\n")
	tail := strings.Index(string(src), "// tail")
	solo := strings.Index(string(src), "// solo")
	if standalone(src, tail) {
		t.Error("end-of-line comment misclassified as standalone")
	}
	if !standalone(src, solo) {
		t.Error("indented standalone comment not detected")
	}
	if !standalone([]byte("// top\n"), 0) {
		t.Error("comment at offset 0 not detected as standalone")
	}
}

func TestPathHasSegment(t *testing.T) {
	if !pathHasSegment("sisg/internal/graph", "graph") {
		t.Error("exact segment not matched")
	}
	if pathHasSegment("sisg/internal/graphics", "graph") {
		t.Error("substring wrongly matched as a segment")
	}
	if !pathHasSegment("example.com/checkpoint", "checkpoint") {
		t.Error("trailing segment not matched")
	}
}
