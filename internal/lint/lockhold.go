package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// LockHold enforces the hot-path locking discipline from PRs 6–8: nothing
// that can park a goroutine — network I/O, channel operations, sleeps, a
// Transport.Call — may run while a sync.Mutex/RWMutex is held, because
// every microsecond under the lock is serialized across all request
// goroutines (the snapshot-under-lock, work-outside idiom in metrics and
// singleflight exists precisely for this). Scoped to dist, server, knn
// and metrics.
//
// The walk is linear over each function body in source order, tracking
// which mutexes are held (Lock adds, Unlock removes, a deferred Unlock
// holds to the end). One level of call inlining comes from the flow
// layer: a call to a module helper whose own body directly blocks is
// flagged at the call site, so the check crosses small helpers without
// whole-program inlining. Function literals are separate scopes — a
// deferred or spawned literal does not run under the lock held at its
// definition site.
func LockHold() *Analyzer {
	return &Analyzer{
		Name: "lockhold",
		Doc:  "no blocking work while a mutex is held",
		Run:  runLockHold,
	}
}

func runLockHold(m *Module, pkg *Package) []Diagnostic {
	if !scopedTo(m, pkg, "dist", "server", "knn", "metrics") {
		return nil
	}
	fl := m.Flow()
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, lockScope(m, fl, pkg, fd.Body)...)
		}
	}
	return out
}

// heldLock records one currently-held mutex: the object and where it was
// locked.
type heldLock struct {
	name string
	line int
}

// lockScope walks one function or literal body in source order, tracking
// held mutexes and flagging blocking operations inside held regions.
// Nested literals start fresh scopes (recursion), since they execute on
// their own schedule.
func lockScope(m *Module, fl *Flow, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	info := pkg.Info
	held := make(map[types.Object]heldLock)
	var out []Diagnostic

	report := func(pos token.Pos, op string) {
		for _, h := range held {
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(pos),
				Message: op + " while " + h.name + " is held (locked at line " +
					strconv.Itoa(h.line) + "); blocking under a lock serializes every waiter behind this stall",
			})
			return // one diagnostic per site, whichever lock — not one per lock
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			out = append(out, lockScope(m, fl, pkg, n.Body)...)
			return false
		case *ast.GoStmt:
			// The spawned call blocks its own goroutine, not the lock
			// holder. Its literal still gets its own scope check.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, lockScope(m, fl, pkg, lit.Body)...)
			}
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the mutex held to the end of the
			// function — exactly the common idiom — so it must NOT clear
			// the held set. Other deferred work runs at return; a deferred
			// literal is its own scope.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, lockScope(m, fl, pkg, lit.Body)...)
			}
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				report(n.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				report(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault && len(held) > 0 {
				report(n.Pos(), "select without default")
			}
			for _, c := range n.Body.List {
				for _, s := range c.(*ast.CommClause).Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && len(held) > 0 {
					report(n.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			obj := calleeOf(info, n)
			if obj == nil {
				return true
			}
			full := obj.FullName()
			if mu, lockOp := mutexOp(info, n, full); mu != nil {
				if lockOp {
					held[mu] = heldLock{name: exprString(n), line: m.Fset.Position(n.Pos()).Line}
				} else {
					delete(held, mu)
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			if bf, ok := blockingCalls[full]; ok && bf.Kind != BlockLock {
				report(n.Pos(), bf.Op)
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isConnType(info.TypeOf(sel.X)) {
				switch sel.Sel.Name {
				case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
					report(n.Pos(), "net.Conn "+sel.Sel.Name)
					return true
				}
			}
			// One level of summary inlining: a module callee (or any module
			// implementation of an interface method) whose own body blocks.
			targets := []*FuncInfo{fl.FuncOf(obj)}
			if targets[0] == nil {
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil &&
					types.IsInterface(sig.Recv().Type()) && fl.isModuleObj(obj) {
					targets = fl.implementations(obj)
				}
			}
			for _, t := range targets {
				if t == nil {
					continue
				}
				if bf, ok := t.DirectlyBlocks(); ok {
					report(n.Pos(), "call to "+obj.Name()+", which does "+bf.Op)
					break
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// mutexOp classifies a call as a mutex Lock-family or Unlock-family
// operation, returning the mutex object. lockOp is true for acquisitions.
func mutexOp(info *types.Info, call *ast.CallExpr, full string) (mu types.Object, lockOp bool) {
	switch full {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		lockOp = true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
	case "(*sync.Mutex).TryLock", "(*sync.RWMutex).TryLock", "(*sync.RWMutex).TryRLock":
		lockOp = true
	default:
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return objOf(info, sel.X), lockOp
}

// exprString renders the receiver of a mutex call ("s.mu.Lock()" etc.) for
// messages; it only needs to be readable, not parseable.
func exprString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "mutex"
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return "mutex"
}
