package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the path segments of packages whose outputs must
// replay bit-identically under one seed: the trainers, the partitioner and
// graph builder, vocabulary and corpus construction, snapshots, and the
// chaos harness that checks all of the above.
var deterministicPkgs = []string{"sgns", "dist", "graph", "vocab", "corpus", "checkpoint", "chaos"}

// MapOrder flags `for range` over a map whose body appends to a slice that
// is never sorted in the enclosing function. Go randomizes map iteration
// order, so such a loop emits its elements in a different order every run —
// the exact failure mode that breaks same-seed replay when the slice feeds
// pair generation, partitioning, or a checkpoint. The collect-then-sort
// idiom (append keys, sort.Slice, iterate sorted) is recognized and not
// flagged.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "map iteration accumulating into ordered output without a sort step",
		Run:  runMapOrder,
	}
}

func runMapOrder(m *Module, pkg *Package) []Diagnostic {
	if !pathHasSegment(pkg.Path, deterministicPkgs...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				out = append(out, mapOrderFunc(m, pkg, fn)...)
			}
		}
	}
	return out
}

func mapOrderFunc(m *Module, pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, target := range appendTargets(pkg.Info, rs.Body) {
			if sortedIn(pkg.Info, fn, target) {
				continue
			}
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(rs.For),
				Message: "map iteration appends to " + quoteName(target) +
					" with no sort step in " + fn.Name.Name + "; map order is randomized per run",
			})
		}
		return true
	})
	return out
}

func quoteName(o types.Object) string { return "\"" + o.Name() + "\"" }

// appendTargets returns the objects that statements in body append to,
// via the `x = append(x, ...)` form (possibly through a struct field).
func appendTargets(info *types.Info, body ast.Node) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) || i >= len(as.Lhs) {
				continue
			}
			if target := objOf(info, as.Lhs[i]); target != nil && !seen[target] {
				seen[target] = true
				out = append(out, target)
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedIn reports whether fn contains a call to a sort/slices sorting
// function with target among its argument expressions — the second half of
// the collect-then-sort idiom.
func sortedIn(info *types.Info, fn *ast.FuncDecl, target types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(info, arg, target) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// isSortCall recognizes the stdlib sorting entry points: anything exported
// from package sort or slices whose name contains "Sort" plus the sort
// package's classic helpers (sort.Slice, sort.Strings, sort.Ints, ...).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	obj := objOf(info, call.Fun)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	switch fn.Name() {
	case "Slice", "SliceStable", "Stable", "Strings", "Ints", "Float64s":
		return true
	}
	return strings.Contains(fn.Name(), "Sort")
}
