package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NetDeadline flags socket reads and writes in transport code (packages
// with a "dist" path segment) that have no preceding deadline on the same
// connection in the same function. A net.Conn Read with no read deadline
// parks its goroutine until the peer speaks — under a severed link or a
// one-way partition that is forever, which is exactly the hang class the
// transport's retry/degrade path exists to prevent. The check is
// object-local and source-ordered: Conn.Read / Conn.Write (and conn
// arguments to io.ReadFull, io.ReadAtLeast, io.Copy, io.CopyN) must be
// preceded, earlier in the same function, by SetReadDeadline /
// SetWriteDeadline / SetDeadline on that same connection value.
func NetDeadline() *Analyzer {
	return &Analyzer{
		Name: "netdeadline",
		Doc:  "net.Conn read/write in transport code without a preceding deadline",
		Run:  runNetDeadline,
	}
}

func runNetDeadline(m *Module, pkg *Package) []Diagnostic {
	if !pathHasSegment(pkg.Path, "dist") {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, netDeadlineFunc(m, pkg, fn)...)
			}
		}
	}
	return out
}

const (
	netDeadlineReadMsg  = "with no preceding SetReadDeadline; a silent peer parks this goroutine forever"
	netDeadlineWriteMsg = "with no preceding SetWriteDeadline; a stalled peer parks this goroutine forever"
)

// netDeadlineFunc walks one function body in source order, tracking which
// connection objects have had a read/write deadline set, and flags
// unguarded socket operations. SetDeadline guards both directions.
func netDeadlineFunc(m *Module, pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	guardR := make(map[types.Object]bool)
	guardW := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isConnType(pkg.Info.TypeOf(sel.X)) {
			obj := objOf(pkg.Info, sel.X)
			switch sel.Sel.Name {
			case "SetDeadline":
				if obj != nil {
					guardR[obj], guardW[obj] = true, true
				}
			case "SetReadDeadline":
				if obj != nil {
					guardR[obj] = true
				}
			case "SetWriteDeadline":
				if obj != nil {
					guardW[obj] = true
				}
			case "Read":
				if obj == nil || !guardR[obj] {
					out = append(out, Diagnostic{
						Pos:     m.Fset.Position(call.Pos()),
						Message: "net.Conn Read " + netDeadlineReadMsg,
					})
				}
			case "Write":
				if obj == nil || !guardW[obj] {
					out = append(out, Diagnostic{
						Pos:     m.Fset.Position(call.Pos()),
						Message: "net.Conn Write " + netDeadlineWriteMsg,
					})
				}
			}
			return true
		}
		// io helpers that read or write a conn passed as an argument.
		fobj := pkg.Info.ObjectOf(sel.Sel)
		if fobj == nil || fobj.Pkg() == nil || fobj.Pkg().Path() != "io" {
			return true
		}
		checkArg := func(arg ast.Expr, guard map[types.Object]bool, verb, msg string) {
			if !isConnType(pkg.Info.TypeOf(arg)) {
				return
			}
			if obj := objOf(pkg.Info, arg); obj == nil || !guard[obj] {
				out = append(out, Diagnostic{
					Pos:     m.Fset.Position(arg.Pos()),
					Message: "io." + fobj.Name() + " " + verb + " a net.Conn " + msg,
				})
			}
		}
		switch fobj.Name() {
		case "ReadFull", "ReadAtLeast":
			if len(call.Args) >= 1 {
				checkArg(call.Args[0], guardR, "reads", netDeadlineReadMsg)
			}
		case "Copy", "CopyN":
			if len(call.Args) >= 2 {
				checkArg(call.Args[0], guardW, "writes", netDeadlineWriteMsg)
				checkArg(call.Args[1], guardR, "reads", netDeadlineReadMsg)
			}
		}
		return true
	})
	return out
}

// isConnType reports whether t is a network connection: a named type from
// package net whose name ends in Conn (net.Conn, *net.TCPConn, ...), or
// any interface carrying both Read and SetReadDeadline — a conn by shape,
// whatever package declared it.
func isConnType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net" &&
			strings.HasSuffix(obj.Name(), "Conn") {
			return true
		}
		t = n.Underlying()
	}
	iface, ok := t.(*types.Interface)
	if !ok {
		return false
	}
	hasRead, hasSetRead := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Read":
			hasRead = true
		case "SetReadDeadline":
			hasSetRead = true
		}
	}
	return hasRead && hasSetRead
}
