package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// function calls (atomic.AddUint64(&s.n, 1), atomic.LoadInt32(&s.flag))
// in one place and by plain load/store somewhere else in the same package.
// Mixing the two is a data race the race detector only catches when the
// schedule cooperates: the plain access is invisible to the atomic one.
// This is the exact bug class PR 1 fixed in the dist worker's noiseFor
// path. Fields declared with the atomic.Uint64-style types are immune by
// construction and are not examined.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "struct field accessed both via sync/atomic and by plain load/store",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(m *Module, pkg *Package) []Diagnostic {
	// Pass 1: fields whose address is taken as an argument to a
	// sync/atomic function, and the selector nodes doing so.
	atomicFields := make(map[types.Object]token.Pos) // field -> one atomic-use site
	atomicSels := make(map[*ast.SelectorExpr]bool)   // selectors consumed by those calls
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := pkg.Info.ObjectOf(sel.Sel)
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					if _, seen := atomicFields[obj]; !seen {
						atomicFields[obj] = sel.Pos()
					}
					atomicSels[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// plain access.
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSels[sel] {
				return true
			}
			obj := pkg.Info.ObjectOf(sel.Sel)
			firstUse, tracked := atomicFields[obj]
			if !tracked {
				return true
			}
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(sel.Pos()),
				Message: "field " + obj.Name() + " is accessed with sync/atomic at " +
					m.Fset.Position(firstUse).String() +
					" but read/written plainly here; pick one discipline (or an atomic.Uint64-style field)",
			})
			return true
		})
	}
	return out
}

// isSyncAtomicCall reports whether call invokes a function from package
// sync/atomic (the free functions; methods on atomic.Uint64 etc. take no
// address argument and never reach the pass-1 pattern).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := objOf(info, call.Fun).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
