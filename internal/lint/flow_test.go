package lint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// findFunc locates a summary by bare function name in the flow fixture.
func findFunc(t *testing.T, fl *Flow, name string) *FuncInfo {
	t.Helper()
	var found *FuncInfo
	for _, f := range fl.Funcs() {
		if f.Obj.Name() == name {
			if found != nil {
				t.Fatalf("two functions named %s in fixture; use unique names", name)
			}
			found = f
		}
	}
	if found == nil {
		t.Fatalf("no function %s in flow fixture", name)
	}
	return found
}

func TestFlowSummaries(t *testing.T) {
	mod := loadFixture(t, "flow", "example.com/flow")
	fl := mod.Flow()

	waits := findFunc(t, fl, "waits")
	if bf, ok := waits.DirectlyBlocks(); !ok || bf.Kind != BlockChan {
		t.Errorf("waits: DirectlyBlocks = %v, %v; want a channel fact", bf, ok)
	}

	if f := findFunc(t, fl, "pure"); f.Blocks() {
		t.Error("pure wrongly marked blocking")
	}

	// indirect -> helper -> waits: the blocking flag must propagate two
	// static edges up.
	if f := findFunc(t, fl, "indirect"); !f.Blocks() {
		t.Error("indirect not marked blocking through helper -> waits")
	}
	if _, ok := findFunc(t, fl, "indirect").DirectlyBlocks(); ok {
		t.Error("indirect has no blocking op of its own; DirectlyBlocks must be false")
	}

	// spawns: the go statement is a spawn summary bit, not a synchronous
	// edge — waits blocking must NOT leak into spawns.
	sp := findFunc(t, fl, "spawns")
	if !sp.SpawnsGoroutine {
		t.Error("spawns not marked as spawning a goroutine")
	}
	if sp.Blocks() {
		t.Error("spawns wrongly blocking: the spawned call is not a synchronous edge")
	}

	// viaInterface blocks only through the interface join: its callees
	// must include both implementations, and slowCaller's sleep decides.
	vi := findFunc(t, fl, "viaInterface")
	if !vi.Blocks() {
		t.Error("viaInterface not blocking through the interface join")
	}
	var names []string
	for _, c := range vi.Callees {
		names = append(names, c.Obj.FullName())
	}
	if len(names) != 2 {
		t.Errorf("viaInterface callees = %v; want both Caller implementations", names)
	}
}

// Two independent loads of the same tree must produce byte-identical
// graph dumps and byte-identical JSON diagnostics — the property CI
// depends on to diff lint output across runs. This runs over the real
// repository, the largest tree we have.
func TestFlowDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double module load in -short mode")
	}
	load := func() (string, []byte) {
		mod, err := Load("../..", "")
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		dump := mod.Flow().Dump()
		diags, err := json.Marshal(mod.Lint())
		if err != nil {
			t.Fatal(err)
		}
		return dump, diags
	}
	dump1, diags1 := load()
	dump2, diags2 := load()
	if dump1 != dump2 {
		t.Error("two loads produced different flow dumps")
	}
	if !bytes.Equal(diags1, diags2) {
		t.Errorf("two loads produced different diagnostics JSON:\n%s\nvs\n%s", diags1, diags2)
	}
	if len(dump1) == 0 {
		t.Error("flow dump is empty; the graph did not build")
	}
}
