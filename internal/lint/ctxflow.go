package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the serving-path cancellation contract (PR 8): once a
// request's context enters the read path, it must reach every blocking
// call below, because a deadline or client hang-up only frees the worker
// pool if the scan it cancels actually sees it. Scoped to the packages
// the request path crosses — server, sisg, knn — it reports:
//
//   - context.Background() / context.TODO(): a detached context in a
//     request-path package severs the cancellation chain. Deprecated
//     compatibility wrappers that deliberately detach carry an allow.
//   - a context.Context struct field: contexts flow through call
//     parameters; parking one in a struct outlives the request and is
//     invisible to this analysis.
//   - a function that receives a ctx (a context.Context parameter or an
//     *http.Request) calling a blocking callee that accepts a ctx without
//     passing its own along — the call-graph layer decides "blocking",
//     so the check crosses helpers without any per-function annotation.
//
// "Its own" includes derived contexts: locals assigned from the source
// (ctx2 := context.WithTimeout(ctx, d), ctx := r.Context()) count, to any
// chain depth within the function.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "request-path context must reach every blocking callee that accepts one",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(m *Module, pkg *Package) []Diagnostic {
	if !scopedTo(m, pkg, "server", "sisg", "knn") {
		return nil
	}
	fl := m.Flow()
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				out = append(out, ctxStructFields(m, pkg, d)...)
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				sources := make(map[types.Object]bool)
				if fi := fl.FuncOf(funcObj(pkg, d)); fi != nil {
					if fi.CtxParam != nil {
						sources[fi.CtxParam] = true
					}
					if fi.ReqParam != nil {
						sources[fi.ReqParam] = true
					}
				}
				out = append(out, ctxFlowScope(m, pkg, d.Body, sources)...)
			}
		}
	}
	return out
}

// funcObj resolves a declaration to its function object.
func funcObj(pkg *Package, d *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
	return fn
}

// ctxStructFields flags context.Context fields in struct type
// declarations.
func ctxStructFields(m *Module, pkg *Package, d *ast.GenDecl) []Diagnostic {
	var out []Diagnostic
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if !isContextType(pkg.Info.TypeOf(field.Type)) {
				continue
			}
			name := "(embedded)"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(field.Pos()),
				Message: "context.Context stored in struct field " + name +
					" of " + ts.Name.Name + "; contexts flow through call parameters, not structs",
			})
		}
	}
	return out
}

// ctxFlowScope walks one function (or literal) body. sources is the set
// of objects a context argument may legitimately derive from: the ctx and
// *http.Request parameters plus, after addDerived, every ctx-typed local
// assigned from them. A nested literal inherits the set (it closes over
// those locals) and contributes its own ctx parameter if it has one.
func ctxFlowScope(m *Module, pkg *Package, body ast.Node, sources map[types.Object]bool) []Diagnostic {
	fl := m.Flow()
	addDerived(pkg.Info, body, sources)
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := make(map[types.Object]bool, len(sources)+1)
			for o := range sources {
				inner[o] = true
			}
			if sig, ok := pkg.Info.TypeOf(n.Type).(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					if p := sig.Params().At(i); isContextType(p.Type()) {
						inner[p] = true
						break
					}
				}
			}
			out = append(out, ctxFlowScope(m, pkg, n.Body, inner)...)
			return false
		case *ast.CallExpr:
			if name, ok := detachedCtxCall(pkg.Info, n); ok {
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(n.Pos()),
					Message: "context." + name + "() detaches this path from request cancellation;" +
						" thread the caller's ctx instead",
				})
				return true
			}
			if len(sources) == 0 {
				return true
			}
			if d, ok := ctxDropped(m, fl, pkg, n, sources); ok {
				out = append(out, d)
			}
		}
		return true
	})
	return out
}

// addDerived grows sources with every ctx-typed object assigned from an
// expression that mentions a source, to a fixed point — the
// ctx := r.Context() / tctx, cancel := context.WithTimeout(ctx, d) chains.
func addDerived(info *types.Info, body ast.Node, sources map[types.Object]bool) {
	if len(sources) == 0 {
		return
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromSource := false
			for _, r := range as.Rhs {
				if mentionsAnyObj(info, r, sources) {
					fromSource = true
					break
				}
			}
			if !fromSource {
				return true
			}
			for _, l := range as.Lhs {
				o := objOf(info, l)
				if o != nil && !sources[o] && isContextType(o.Type()) {
					sources[o] = true
					changed = true
				}
			}
			return true
		})
	}
}

// mentionsAnyObj reports whether the subtree references any object in set.
func mentionsAnyObj(info *types.Info, n ast.Node, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && set[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// detachedCtxCall reports a direct context.Background()/context.TODO()
// call, returning which one.
func detachedCtxCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeOf(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if n := obj.Name(); n == "Background" || n == "TODO" {
		return n, true
	}
	return "", false
}

// ctxDropped checks one call from a function that has a ctx source: when
// the callee blocks (per the flow layer) and accepts a context, the
// context argument must derive from the caller's own sources. A dynamic
// call through a func value is treated as blocking — a signature asks for
// a context precisely because the work is cancellable.
func ctxDropped(m *Module, fl *Flow, pkg *Package, call *ast.CallExpr, sources map[types.Object]bool) (Diagnostic, bool) {
	sig, _ := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return Diagnostic{}, false // conversion or builtin
	}
	ctxIdx := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			ctxIdx = i
			break
		}
	}
	if ctxIdx < 0 || ctxIdx >= len(call.Args) {
		return Diagnostic{}, false
	}

	calleeName := "function value"
	if obj := calleeOf(pkg.Info, call); obj != nil {
		if fi := fl.FuncOf(obj); fi != nil && !fi.Blocks() {
			return Diagnostic{}, false // ctx passes through nothing that parks
		}
		calleeName = obj.Name()
	}

	arg := ast.Unparen(call.Args[ctxIdx])
	if c, ok := arg.(*ast.CallExpr); ok {
		if _, detached := detachedCtxCall(pkg.Info, c); detached {
			return Diagnostic{}, false // already reported as a detached context
		}
	}
	if mentionsAnyObj(pkg.Info, arg, sources) {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos: m.Fset.Position(call.Pos()),
		Message: "blocking call to " + calleeName + " accepts a Context but the caller's request" +
			" context does not reach it; the work it starts cannot be cancelled",
	}, true
}
