package lint

import (
	"go/ast"
	"go/types"
)

// metricMethods are the Registry registration entry points whose first
// argument is the metric family name.
var metricMethods = map[string]bool{"Counter": true, "Gauge": true, "GaugeFunc": true, "Histogram": true}

// MetricName flags metric registrations whose name argument is not a
// compile-time constant. The metrics registry promises bounded series
// cardinality (PR 2); a name built at runtime — fmt.Sprintf with a user
// ID, a loop variable — turns the registry into an unbounded map and the
// /metrics page into a memory leak. A constant name keeps the full metric
// namespace enumerable by reading the source.
func MetricName() *Analyzer {
	return &Analyzer{
		Name: "metricname",
		Doc:  "metric registration with a non-constant name argument",
		Run:  runMetricName,
	}
}

func runMetricName(m *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !metricMethods[sel.Sel.Name] || !isRegistryMethod(pkg.Info, sel) {
				return true
			}
			name := call.Args[0]
			if tv, ok := pkg.Info.Types[name]; ok && tv.Value == nil {
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(name.Pos()),
					Message: "metric name passed to " + sel.Sel.Name +
						" is not a compile-time constant; dynamic names break the bounded-cardinality promise",
				})
			}
			return true
		})
	}
	return out
}

// isRegistryMethod reports whether sel resolves to a method on a type
// named Registry defined in a package named metrics (matched by name so
// the analyzer also recognizes test fixtures and future forks of the
// registry, not just sisg/internal/metrics).
func isRegistryMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "metrics"
}
