package corpus

import (
	"fmt"
	"io"
	"math"
)

// Stats summarizes a dataset in the shape of the paper's Table II.
type Stats struct {
	Name          string
	NumItems      int
	NumSIColumns  int
	NumUserTypes  int
	NumSessions   int
	Tokens        uint64 // items + SI instances + user types across all enriched sequences
	PositivePairs uint64 // skip-gram pairs at the given window over enriched sequences
	TrainingPairs uint64 // positive pairs × (1 + negatives)
	AvgSessionLen float64
}

// ComputeStats derives Table II-style statistics. window is the skip-gram
// window in *enriched-token* units; negatives is the negative:positive
// ratio (20 in production, per §II-A).
//
// Positive-pair counting matches symmetric sampling: a sequence of length L
// with window m yields sum_i min(m, L-1-i) + min(m, i) ordered pairs; the
// directed variant would yield half, but the paper's Table II predates the
// -D variant so we report the symmetric count.
func (ds *Dataset) ComputeStats(window, negatives int) Stats {
	items, _, userTypes := ds.Dict.CountByKind()
	st := Stats{
		Name:         ds.Cfg.Name,
		NumItems:     items,
		NumSIColumns: NumSIColumns,
		NumUserTypes: userTypes,
		NumSessions:  len(ds.Sessions),
		Tokens:       ds.Dict.TotalTokens(),
	}
	var itemTokens uint64
	for i := range ds.Sessions {
		l := len(ds.Sessions[i].Items)
		itemTokens += uint64(l)
		// Enriched length: each item contributes 1 + NumSIColumns tokens,
		// plus one trailing user-type token (Eq. 4).
		el := l*(1+NumSIColumns) + 1
		st.PositivePairs += pairCount(el, window)
	}
	st.TrainingPairs = st.PositivePairs * uint64(1+negatives)
	if len(ds.Sessions) > 0 {
		st.AvgSessionLen = float64(itemTokens) / float64(len(ds.Sessions))
	}
	return st
}

// pairCount returns the number of (target, context) pairs a sequence of
// length l produces under a symmetric window of size m.
func pairCount(l, m int) uint64 {
	var n uint64
	for i := 0; i < l; i++ {
		right := l - 1 - i
		if right > m {
			right = m
		}
		left := i
		if left > m {
			left = m
		}
		n += uint64(left + right)
	}
	return n
}

// WriteTable renders a slice of Stats as a Table II-style text table.
func WriteTable(w io.Writer, stats []Stats) {
	fmt.Fprintf(w, "%-16s", "")
	for _, s := range stats {
		fmt.Fprintf(w, "%16s", s.Name)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(Stats) string) {
		fmt.Fprintf(w, "%-16s", label)
		for _, s := range stats {
			fmt.Fprintf(w, "%16s", f(s))
		}
		fmt.Fprintln(w)
	}
	row("#Items", func(s Stats) string { return fmt.Sprintf("%d", s.NumItems) })
	row("#SI", func(s Stats) string { return fmt.Sprintf("%d", s.NumSIColumns) })
	row("#User types", func(s Stats) string { return fmt.Sprintf("%d", s.NumUserTypes) })
	row("#Sessions", func(s Stats) string { return fmt.Sprintf("%d", s.NumSessions) })
	row("#Tokens", func(s Stats) string { return fmt.Sprintf("%.2e", float64(s.Tokens)) })
	row("#Positive pairs", func(s Stats) string { return fmt.Sprintf("%.2e", float64(s.PositivePairs)) })
	row("#Training pairs", func(s Stats) string { return fmt.Sprintf("%.2e", float64(s.TrainingPairs)) })
}

// AsymmetryStats quantifies the planted behavioural asymmetry: among item
// pairs (i,j) observed in both directions at adjacent positions, the
// fraction whose direction counts differ significantly (a two-sided
// binomial z-test at |z| >= 1.96, i.e. p<0.05). The paper estimates ~20%
// for real Taobao users (§II-C); pairs seen in only one direction count as
// skewed when their one-direction count alone is significant.
type AsymmetryStats struct {
	Pairs       int     // unordered pairs observed (min 5 total transitions)
	Significant int     // pairs with significant direction skew
	Fraction    float64 // Significant / Pairs
}

// MeasureAsymmetry computes AsymmetryStats over adjacent transitions of the
// dataset's sessions.
func (ds *Dataset) MeasureAsymmetry() AsymmetryStats {
	type key struct{ a, b int32 }
	counts := make(map[key]int, 1<<16)
	for i := range ds.Sessions {
		items := ds.Sessions[i].Items
		for j := 0; j+1 < len(items); j++ {
			a, b := items[j], items[j+1]
			if a == b {
				continue
			}
			counts[key{a, b}]++
		}
	}
	seen := make(map[key]bool, len(counts))
	var st AsymmetryStats
	for k, fwd := range counts {
		uk := k
		if uk.a > uk.b {
			uk.a, uk.b = uk.b, uk.a
		}
		if seen[uk] {
			continue
		}
		seen[uk] = true
		rev := counts[key{k.b, k.a}]
		n := fwd + rev
		if n < 5 {
			continue
		}
		st.Pairs++
		// z = (fwd - n/2) / sqrt(n/4) under H0: direction is fair.
		z := (float64(fwd) - float64(n)/2) / math.Sqrt(float64(n)/4)
		if z < 0 {
			z = -z
		}
		if z >= 1.96 {
			st.Significant++
		}
	}
	if st.Pairs > 0 {
		st.Fraction = float64(st.Significant) / float64(st.Pairs)
	}
	return st
}
