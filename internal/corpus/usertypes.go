package corpus

import (
	"fmt"
	"math"
	"strings"

	"sisg/internal/rng"
)

// Genders enumerates the gender feature values; the paper notes "Gender
// takes only three values: female, male, null".
var Genders = [3]string{"F", "M", "null"}

// UserType is one fine-grained user categorization (§II-B): a cross of
// gender, age bucket and purchase power, refined by a tag combination
// ("married_haschildren_hascar"-style indicators).
type UserType struct {
	Gender int8   // index into Genders
	Age    int8   // age bucket index
	Power  int8   // purchase power tier, aligned with item price tiers
	Tags   uint16 // bitmask over tagNames
	Weight float64
}

var tagNames = []string{"married", "haschildren", "hascar", "student", "urban", "sports"}

// Token renders the user type in the paper's
// ut_[gender]_[age]_[tag1]_[tag2]... form, e.g. "ut_F_19-25_married_hascar".
// Purchase power is encoded as a p<tier> tag so it survives round-trips.
func (u *UserType) Token() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ut_%s_%s_p%d", Genders[u.Gender], ageBucketName(int(u.Age)), u.Power)
	for t, name := range tagNames {
		if u.Tags&(1<<t) != 0 {
			b.WriteByte('_')
			b.WriteString(name)
		}
	}
	return b.String()
}

func ageBucketName(b int) string {
	lo := 16 + 5*b
	return fmt.Sprintf("%d-%d", lo, lo+4)
}

// Population is the full user-type universe plus the latent preference
// structure driving session generation.
type Population struct {
	Types []UserType

	// leafAffinity[t] is the per-leaf sampling weight for user type t
	// (already multiplied by leaf popularity).
	leafAffinity [][]float64
	samplers     []*weightSampler
	typeSampler  *weightSampler
}

// BuildPopulation derives the user-type universe for cfg and precomputes
// each type's category affinity against the given catalog.
//
// Affinity design: every (gender, age) pair gets a deterministic pseudo-
// random score over top categories; a user type's weight for a leaf is
// leafPopularity × exp(score(gender,age, top(leaf))). Purchase power does
// not move category choice (it gates brand tier during the walk instead),
// mirroring how power shows up in the paper's Figure 4 (same categories,
// pricier brands).
func BuildPopulation(cfg Config, cat *Catalog) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed ^ 0x0b5e55ed)

	// Enumerate types: gender × age × power × tag-combo. Tag combos are a
	// fixed deterministic list of bitmasks.
	combos := make([]uint16, cfg.NumTagCombos)
	for i := range combos {
		combos[i] = uint16(r.Uint32()) & ((1 << len(tagNames)) - 1)
	}
	p := &Population{}
	for g := 0; g < len(Genders); g++ {
		for a := 0; a < cfg.NumAgeBuckets; a++ {
			for pw := 0; pw < cfg.NumPowers; pw++ {
				for _, tags := range combos {
					w := typePopularity(g, a, pw)
					p.Types = append(p.Types, UserType{
						Gender: int8(g), Age: int8(a), Power: int8(pw),
						Tags: tags, Weight: w,
					})
				}
			}
		}
	}
	dedupeTypes(p)

	// Top-category scores: a gender/age base profile sharpened by a
	// per-type perturbation, so every user type is a coherent niche
	// audience concentrated on a few top categories. Coherence is what
	// makes the user-type token informative: a type that browses
	// everything teaches the embedding nothing.
	scores := make([][]float64, len(Genders)*cfg.NumAgeBuckets)
	for i := range scores {
		scores[i] = make([]float64, cfg.NumTopCats)
		for t := range scores[i] {
			scores[i][t] = r.NormFloat64() * 1.6
		}
	}
	p.leafAffinity = make([][]float64, len(p.Types))
	p.samplers = make([]*weightSampler, len(p.Types))
	weights := make([]float64, len(p.Types))
	for t := range p.Types {
		ut := &p.Types[t]
		sc := scores[int(ut.Gender)*cfg.NumAgeBuckets+int(ut.Age)]
		tr := rng.New(cfg.Seed ^ uint64(t)<<20 ^ 0x7a65)
		perturb := make([]float64, cfg.NumTopCats)
		for top := range perturb {
			perturb[top] = 1.3 * tr.NormFloat64()
		}
		aff := make([]float64, cat.NumLeaves())
		for leaf := range aff {
			top := cat.LeafTop[leaf]
			aff[leaf] = cat.LeafWeight[leaf] * math.Exp(2.6*(sc[top]+perturb[top]))
		}
		p.leafAffinity[t] = aff
		s, err := newWeightSampler(aff)
		if err != nil {
			return nil, fmt.Errorf("corpus: affinity sampler for type %d: %w", t, err)
		}
		p.samplers[t] = s
		weights[t] = ut.Weight
	}
	ts, err := newWeightSampler(weights)
	if err != nil {
		return nil, fmt.Errorf("corpus: user-type sampler: %w", err)
	}
	p.typeSampler = ts
	return p, nil
}

// typePopularity skews the type distribution: mid-age buckets and the two
// definite genders dominate, and mid purchase power is the most common.
func typePopularity(g, a, pw int) float64 {
	w := 1.0
	if g == 2 { // "null" gender is rare
		w *= 0.1
	}
	w *= 1 / (1 + math.Abs(float64(a)-2.5)) // ages 26-35 most common
	if pw == 1 {
		w *= 1.5
	}
	return w
}

func dedupeTypes(p *Population) {
	seen := make(map[string]bool, len(p.Types))
	out := p.Types[:0]
	for _, t := range p.Types {
		k := t.Token()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	p.Types = out
}

// SampleType draws a user type index by popularity.
func (p *Population) SampleType(r *rng.RNG) int32 {
	return int32(p.typeSampler.sample(r))
}

// SampleLeaf draws a starting leaf category for user type t.
func (p *Population) SampleLeaf(t int32, r *rng.RNG) int32 {
	return int32(p.samplers[t].sample(r))
}

// LeafAffinity exposes the (unnormalized) leaf preference vector of type t;
// the A/B-test click model uses it as ground-truth relevance.
func (p *Population) LeafAffinity(t int32) []float64 { return p.leafAffinity[t] }

// StyleOffset returns the user type's style preference as an offset into
// its current leaf's typical style range (leaves draw styles from
// (leaf + [0,4)) mod NumStyles; see catalog construction). Two users of the
// same type prefer the same style lane of any leaf, which is the
// cross-session taste signal the user-type token carries.
func (p *Population) StyleOffset(t int32) int {
	u := &p.Types[t]
	h := uint32(u.Gender)*2654435761 + uint32(u.Age)*40503 + uint32(u.Tags)*97
	return int(h % 4)
}

// TypesMatching returns the indices of all user types with the given gender
// and age bucket (and any power/tags) — the cold-start user recipe of
// §IV-C1 averages the vectors of exactly this set. Pass -1 to leave a field
// unconstrained.
func (p *Population) TypesMatching(gender, age, power int) []int32 {
	var out []int32
	for i := range p.Types {
		t := &p.Types[i]
		if gender >= 0 && int(t.Gender) != gender {
			continue
		}
		if age >= 0 && int(t.Age) != age {
			continue
		}
		if power >= 0 && int(t.Power) != power {
			continue
		}
		out = append(out, int32(i))
	}
	return out
}
