// Package corpus generates the synthetic Taobao-like workload that stands in
// for the paper's proprietary click logs (see DESIGN.md §2 for the
// substitution argument).
//
// The generator plants exactly the causal structure each SISG component is
// designed to exploit:
//
//   - Co-click structure: sessions are near-coherent walks inside one leaf
//     category (the paper's own observation motivating HBGP: "most Taobao
//     users tend to view items from one leaf category only within one
//     browsing session").
//   - Side-information signal: items inherit shop/brand/style/material from
//     their leaf category, so SI tokens are predictive for sparse and
//     cold-start items.
//   - User-type signal: a user type (gender × age × purchase power × tags)
//     is a coherent niche audience with its own category affinity, price
//     tier and per-leaf style lane, so user-type tokens pool taste across
//     sessions.
//   - Behavioural asymmetry, two kinds: within a category items have a
//     browse order walked forward with probability FwdBias > 0.5, and
//     strictly one-way purchase funnels jump into gender-dependent
//     accessory categories (phones → cases, never back). §II-C estimates
//     ~20% of Taobao pairs have significantly skewed direction counts; the
//     generator plants a stronger skew (see DESIGN.md §6).
//   - Irreducible noise: uniform exploration jumps (PNoise) bound every
//     model's achievable HitRate, keeping absolute numbers at realistic
//     levels.
//
// All randomness flows from Config.Seed through internal/rng, so a given
// configuration always produces the identical corpus.
package corpus

import (
	"errors"
	"fmt"
)

// Config fully determines a synthetic dataset.
type Config struct {
	Name string // dataset label, e.g. "Sim25K"
	Seed uint64

	// Catalog shape.
	NumItems     int
	NumTopCats   int
	NumLeafCats  int
	NumShops     int
	NumBrands    int
	NumCities    int
	NumStyles    int
	NumMaterials int

	// User population shape. User types are crosses of gender (3 values,
	// including "null") × age bucket × purchase power × a tag combination;
	// NumTagCombos bounds how many distinct tag sets occur.
	NumAgeBuckets int
	NumPowers     int
	NumTagCombos  int

	// Session shape.
	NumSessions int
	MinSession  int
	MaxSession  int
	MeanSession float64 // mean of the (clamped) geometric session length

	// Behaviour knobs.
	ZipfExp float64 // item popularity skew within a leaf (≈0.8–1.1)
	FwdBias float64 // P(step moves forward in browse order), > 0.5 ⇒ asymmetry
	PStep   float64 // P(small ordered step) at each transition
	PJump   float64 // P(popularity jump within the same leaf)
	PCross  float64 // P(jump to a sibling leaf of the same top category)
	// PFunnel is the probability of a purchase-funnel transition: a jump to
	// the leaf's ACCESSORY leaf (phone → phone case). Funnels are strictly
	// one-way — the reverse transition never occurs — which is the dominant
	// asymmetry in real e-commerce behaviour and the main signal the "-D"
	// variant exploits: a symmetric window cannot distinguish the accessory
	// leaf from the upstream leaf, a directed one can.
	PFunnel float64
	// PNoise is the probability of an exploration jump to a globally
	// popularity-sampled item anywhere in the catalog. Noise jumps keep
	// absolute HitRates at realistic (low) levels: they are irreducibly
	// unpredictable and plant spurious long-range co-occurrences, exactly
	// as real browsing does.
	PNoise    float64
	TierMatch float64 // P(accepting an item whose price tier mismatches the user's power)
}

// Sim25K returns the offline-experiment configuration: the laptop-scale
// analogue of the paper's Taobao25M (Table II, column 1). Roughly 1:1000
// scale in items; everything downstream of it (Table III, Figures 4–6)
// uses this dataset.
func Sim25K() Config {
	return Config{
		Name:          "Sim25K",
		Seed:          25,
		NumItems:      25_000,
		NumTopCats:    20,
		NumLeafCats:   300,
		NumShops:      2_000,
		NumBrands:     600,
		NumCities:     50,
		NumStyles:     12,
		NumMaterials:  10,
		NumAgeBuckets: 7,
		NumPowers:     3,
		NumTagCombos:  4,
		NumSessions:   24_000,
		MinSession:    2,
		MaxSession:    20,
		MeanSession:   8,
		ZipfExp:       0.9,
		FwdBias:       0.92,
		PStep:         0.42,
		PJump:         0.12,
		PCross:        0.08,
		PFunnel:       0.20,
		PNoise:        0.18,
		TierMatch:     0.15,
	}
}

// Sim100K is the online/scalability analogue of Taobao100M (Table II,
// column 2) used for the Figure 7 experiments.
func Sim100K() Config {
	c := Sim25K()
	c.Name = "Sim100K"
	c.Seed = 100
	c.NumItems = 100_000
	c.NumLeafCats = 500
	c.NumShops = 8_000
	c.NumBrands = 1_200
	c.NumTagCombos = 6
	c.NumSessions = 90_000
	return c
}

// Sim800K is the full-data analogue of Taobao800M (Table II, column 3);
// used only for dataset statistics and the corpus-size sweep.
func Sim800K() Config {
	c := Sim25K()
	c.Name = "Sim800K"
	c.Seed = 800
	c.NumItems = 800_000
	c.NumLeafCats = 2_000
	c.NumShops = 40_000
	c.NumBrands = 4_000
	c.NumTagCombos = 8
	c.NumSessions = 700_000
	return c
}

// Tiny returns a miniature configuration for unit tests: a few hundred
// items, a few thousand sessions, finishing in milliseconds.
func Tiny() Config {
	return Config{
		Name:          "Tiny",
		Seed:          7,
		NumItems:      400,
		NumTopCats:    4,
		NumLeafCats:   16,
		NumShops:      40,
		NumBrands:     24,
		NumCities:     8,
		NumStyles:     5,
		NumMaterials:  4,
		NumAgeBuckets: 7,
		NumPowers:     3,
		NumTagCombos:  3,
		NumSessions:   4_000,
		MinSession:    2,
		MaxSession:    12,
		MeanSession:   6,
		ZipfExp:       0.9,
		FwdBias:       0.75,
		PStep:         0.42,
		PJump:         0.12,
		PCross:        0.08,
		PFunnel:       0.20,
		PNoise:        0.18,
		TierMatch:     0.25,
	}
}

// Validate reports the first configuration error, or nil.
func (c *Config) Validate() error {
	switch {
	case c.NumItems <= 0:
		return errors.New("corpus: NumItems must be positive")
	case c.NumLeafCats <= 0 || c.NumLeafCats > c.NumItems:
		return fmt.Errorf("corpus: NumLeafCats %d out of range (1..NumItems)", c.NumLeafCats)
	case c.NumTopCats <= 0 || c.NumTopCats > c.NumLeafCats:
		return fmt.Errorf("corpus: NumTopCats %d out of range (1..NumLeafCats)", c.NumTopCats)
	case c.NumShops <= 0 || c.NumBrands <= 0 || c.NumCities <= 0 ||
		c.NumStyles <= 0 || c.NumMaterials <= 0:
		return errors.New("corpus: catalog cardinalities must be positive")
	case c.NumAgeBuckets <= 0 || c.NumPowers <= 0 || c.NumTagCombos <= 0:
		return errors.New("corpus: user-population cardinalities must be positive")
	case c.NumSessions <= 0:
		return errors.New("corpus: NumSessions must be positive")
	case c.MinSession < 2:
		return errors.New("corpus: MinSession must be at least 2 (need a next item)")
	case c.MaxSession < c.MinSession:
		return errors.New("corpus: MaxSession < MinSession")
	case c.MeanSession < float64(c.MinSession):
		return errors.New("corpus: MeanSession below MinSession")
	case c.FwdBias < 0 || c.FwdBias > 1:
		return errors.New("corpus: FwdBias out of [0,1]")
	case c.PStep < 0 || c.PJump < 0 || c.PCross < 0 || c.PFunnel < 0 || c.PNoise < 0:
		return errors.New("corpus: transition probabilities must be non-negative")
	case c.PStep+c.PJump+c.PCross+c.PFunnel+c.PNoise <= 0:
		return errors.New("corpus: transition probabilities sum to zero")
	case c.TierMatch < 0 || c.TierMatch > 1:
		return errors.New("corpus: TierMatch out of [0,1]")
	case c.ZipfExp <= 0:
		return errors.New("corpus: ZipfExp must be positive")
	}
	return nil
}
