package corpus

import "testing"

// TestFunnelsAreOneWay verifies the planted purchase-funnel asymmetry: for
// each (leaf, accessory-leaf) pair, transitions overwhelmingly flow in the
// funnel direction. The reverse direction can only arise from sibling or
// noise jumps, so it must be a small fraction.
func TestFunnelsAreOneWay(t *testing.T) {
	cfg := Tiny()
	cfg.NumSessions = 20000
	// Tiny's default 4-leaf top blocks make the 3-group accessory relation
	// fully mutual (every other leaf of the block is someone's accessory);
	// use production-like 8-leaf blocks, where a→b funnel implies b→a is
	// not one.
	cfg.NumLeafCats = 32
	cfg.NumItems = 800
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := ds.Catalog

	// Is dst an accessory leaf of src for any funnel group?
	isFunnel := func(src, dst int32) bool {
		for g := range cat.LeafNext[src] {
			if cat.LeafNext[src][g] == dst {
				return true
			}
		}
		return false
	}

	var fwd, rev int
	for i := range ds.Sessions {
		items := ds.Sessions[i].Items
		for j := 0; j+1 < len(items); j++ {
			a := cat.LeafOf(items[j])
			b := cat.LeafOf(items[j+1])
			if a == b {
				continue
			}
			if isFunnel(a, b) {
				fwd++
			}
			if isFunnel(b, a) {
				rev++
			}
		}
	}
	if fwd == 0 {
		t.Fatal("no funnel transitions generated")
	}
	// The deliberate funnel flow must strongly dominate the reverse
	if float64(fwd) < 3*float64(rev) {
		t.Fatalf("funnels not directional enough: fwd=%d rev=%d", fwd, rev)
	}
}

// TestTierLanes verifies taste coherence: consecutive lane steps mostly
// stay within the user's price tier.
func TestTierLanes(t *testing.T) {
	cfg := Tiny()
	cfg.NumSessions = 10000
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	matched, total := 0, 0
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		power := ds.Pop.Types[s.UserType].Power
		for _, it := range s.Items {
			total++
			if ds.Catalog.Items[it].Tier == power {
				matched++
			}
		}
	}
	// Uniform tiers would give ~1/3; the taste gates must push well above.
	if frac := float64(matched) / float64(total); frac < 0.45 {
		t.Fatalf("tier coherence %.2f too low — taste gating broken", frac)
	}
}
