package corpus

import (
	"errors"
	"fmt"
)

// LiveConfig shapes a live session stream: the base catalog plus the two
// non-stationarities a daily-retrained production system actually faces —
// brand-new items launching over time (§IV-C2's cold-start case, arriving
// continuously rather than in a nightly batch) and popularity drift within
// a category (yesterday's bestseller slides, a tail item surges).
type LiveConfig struct {
	// Base is the catalog and behaviour configuration at stream start.
	Base Config
	// ReserveItems appends this many not-yet-launched items to the
	// catalog. They carry full side information from day one (a listing
	// exists before the first click) but appear in sessions only after
	// their launch.
	ReserveItems int
	// LaunchEvery launches one reserved item every this many sessions
	// (<=0 with ReserveItems>0 means 1). Launches happen in item-id order,
	// so the arrival schedule is part of the stream's determinism.
	LaunchEvery int
	// DriftEvery advances the popularity-drift phase every this many
	// sessions; each phase rotates which items occupy each leaf's
	// popularity ranks. 0 disables drift.
	DriftEvery int
}

// Live is a deterministic endless session stream over a drifting catalog.
// It is not safe for concurrent use; the ingest loop is its single reader.
type Live struct {
	Cfg LiveConfig
	// Catalog, Pop and Dict describe the full universe — base plus
	// reserved items — so downstream dictionaries and SI tables cover
	// items before they launch (Eq. 6 needs an item's SI tokens the
	// moment it first appears).
	Catalog *Catalog
	Pop     *Population
	Dict    *Dict

	gen      *Generator
	sessions int
	visible  int // items with id < visible have launched
	phase    int // popularity-drift phase
}

// NewLive builds the universe catalog (base + reserved items) and the
// session stream over it.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.ReserveItems < 0 {
		return nil, errors.New("corpus: ReserveItems must be non-negative")
	}
	if cfg.ReserveItems > 0 && cfg.LaunchEvery <= 0 {
		cfg.LaunchEvery = 1
	}
	full := cfg.Base
	full.NumItems += cfg.ReserveItems
	if full.Name != "" {
		full.Name = fmt.Sprintf("%s+live%d", full.Name, cfg.ReserveItems)
	}
	cat, err := BuildCatalog(full)
	if err != nil {
		return nil, err
	}
	pop, err := BuildPopulation(full, cat)
	if err != nil {
		return nil, err
	}
	return &Live{
		Cfg:     cfg,
		Catalog: cat,
		Pop:     pop,
		Dict:    cat.BuildDict(pop),
		gen:     NewGenerator(cat, pop),
		visible: cfg.Base.NumItems,
	}, nil
}

// Next produces the next session. The base generator samples over the full
// universe; two deterministic remaps then impose the stream's dynamics:
// the drift phase rotates item identities within each leaf's popularity
// order, and any item that has not launched yet is replaced by the
// nearest-rank launched item of the same leaf.
func (lv *Live) Next() Session {
	s := lv.gen.Next()
	for i, it := range s.Items {
		s.Items[i] = lv.remap(it)
	}
	lv.sessions++
	if lv.Cfg.LaunchEvery > 0 && lv.sessions%lv.Cfg.LaunchEvery == 0 &&
		lv.visible < len(lv.Catalog.Items) {
		lv.visible++
	}
	if lv.Cfg.DriftEvery > 0 && lv.sessions%lv.Cfg.DriftEvery == 0 {
		lv.phase++
	}
	return s
}

func (lv *Live) remap(it int32) int32 {
	leaf := lv.Catalog.LeafOf(it)
	items := lv.Catalog.LeafItems[leaf]
	if lv.phase > 0 && len(items) > 1 {
		// Drift: the item at popularity rank r is now whoever sits r+phase
		// positions down the leaf's browse order. Popularity mass stays on
		// the same ranks; the identities holding them rotate.
		r := (int(lv.Catalog.RankInLeaf[it]) + lv.phase) % len(items)
		it = items[r]
	}
	if int(it) < lv.visible {
		return it
	}
	// Unlaunched: stand in the nearest launched item of the same leaf,
	// scanning outward from the same rank so the substitute has a similar
	// popularity position. Deterministic fallback if the leaf is all
	// reserved items.
	r := int(lv.Catalog.RankInLeaf[it])
	for d := 1; d < len(items); d++ {
		for _, cand := range [2]int{r - d, r + d} {
			if cand >= 0 && cand < len(items) && int(items[cand]) < lv.visible {
				return items[cand]
			}
		}
	}
	return it % int32(lv.visible)
}

// Sessions returns how many sessions the stream has produced.
func (lv *Live) Sessions() int { return lv.sessions }

// Visible returns how many items have launched (ids < Visible appear in
// sessions).
func (lv *Live) Visible() int { return lv.visible }

// Launched returns the reserved items that have launched so far, in launch
// order.
func (lv *Live) Launched() []int32 {
	out := make([]int32, 0, lv.visible-lv.Cfg.Base.NumItems)
	for id := lv.Cfg.Base.NumItems; id < lv.visible; id++ {
		out = append(out, int32(id))
	}
	return out
}

// Dataset wraps the stream's universe as a session-less Dataset, for
// serving-tier construction (catalog metadata, SI tables, demographics).
func (lv *Live) Dataset() *Dataset {
	return &Dataset{
		Cfg:     lv.Catalog.Cfg,
		Catalog: lv.Catalog,
		Pop:     lv.Pop,
		Dict:    lv.Dict,
	}
}
