package corpus

import (
	"math"

	"sisg/internal/rng"
)

// Session is one user browsing session: the user's type and the ordered
// item click sequence (Figure 1(a) of the paper).
type Session struct {
	UserType int32
	Items    []int32
}

// Generator produces sessions from a catalog and population. It is not safe
// for concurrent use; derive one per goroutine with Clone.
type Generator struct {
	cat *Catalog
	pop *Population
	r   *rng.RNG
	// geometric parameter chosen so the clamped length has roughly
	// MeanSession expectation.
	pLen float64
}

// NewGenerator returns a session generator seeded from the config seed.
func NewGenerator(cat *Catalog, pop *Population) *Generator {
	mean := cat.Cfg.MeanSession - float64(cat.Cfg.MinSession)
	if mean < 0.5 {
		mean = 0.5
	}
	return &Generator{
		cat:  cat,
		pop:  pop,
		r:    rng.New(cat.Cfg.Seed ^ 0x5e5510),
		pLen: 1 / (1 + mean),
	}
}

// Clone derives an independent generator stream, for parallel generation.
func (g *Generator) Clone() *Generator {
	c := *g
	c.r = g.r.Split()
	return &c
}

// Next generates one session.
func (g *Generator) Next() Session {
	cfg := &g.cat.Cfg
	r := g.r
	ut := g.pop.SampleType(r)
	power := g.pop.Types[ut].Power
	styleOff := g.pop.StyleOffset(ut)

	length := cfg.MinSession + r.Geometric(g.pLen)
	if length > cfg.MaxSession {
		length = cfg.MaxSession
	}

	leaf := g.pop.SampleLeaf(ut, r)
	items := make([]int32, 0, length)
	cur := g.sampleTierItem(leaf, power, styleOff)
	items = append(items, cur)

	group := int(g.pop.Types[ut].Gender) % numFunnelGroups
	pTotal := cfg.PStep + cfg.PJump + cfg.PCross + cfg.PFunnel + cfg.PNoise
	for len(items) < length {
		u := r.Float64() * pTotal
		switch {
		case u < cfg.PStep:
			cur = g.step(cur, power, styleOff)
		case u < cfg.PStep+cfg.PJump:
			// Jumps land on the leaf's bestsellers.
			cur = g.sampleHubItem(g.cat.LeafOf(cur), power)
		case u < cfg.PStep+cfg.PJump+cfg.PFunnel:
			// One-way purchase funnel into the audience's accessory leaf,
			// landing on its bestsellers; never the reverse direction.
			leaf = g.cat.LeafNext[g.cat.LeafOf(cur)][group]
			cur = g.sampleHubItem(leaf, power)
		case u < cfg.PStep+cfg.PJump+cfg.PFunnel+cfg.PCross:
			leaf = g.siblingLeaf(g.cat.LeafOf(cur))
			cur = g.sampleTierItem(leaf, power, styleOff)
		default:
			// Exploration noise: a uniform random item anywhere in the
			// catalog. Uniformity makes these transitions irreducibly
			// unpredictable for every model — a shared noise floor — rather
			// than a popularity shortcut plain co-occurrence could exploit.
			cur = int32(r.Intn(len(g.cat.Items)))
		}
		items = append(items, cur)
	}
	return Session{UserType: ut, Items: items}
}

// step moves along the browse order of the current item's leaf. With
// probability FwdBias the step moves forward (toward higher ranks) by
// 1 + Geometric positions, then scans onward in the same direction for the
// first item matching the user's taste (price tier and preferred style
// lane, up to tierScan positions, relaxing to tier-only). The scan keeps
// the walk simultaneously *directional* (the planted asymmetry the "-D"
// variant exploits) and *taste-coherent* (the cross-session signal the
// user-type token carries): two users with different purchasing power or
// style taste walk different "lanes" of the same category, in the same
// forward order.
func (g *Generator) step(cur int32, power int8, styleOff int) int32 {
	const tierScan = 8
	leaf := g.cat.LeafOf(cur)
	items := g.cat.LeafItems[leaf]
	n := len(items)
	if n == 1 {
		return cur
	}
	rank := int(g.cat.RankInLeaf[cur])
	delta := 1 + g.r.Geometric(0.35)
	dir := 1
	if g.r.Float64() >= g.cat.Cfg.FwdBias {
		dir = -1
	}
	next := clampRank(rank+dir*delta, n)
	if next == rank {
		next = clampRank(rank+dir, n)
	}
	// A mismatched taste is accepted outright with probability TierMatch;
	// otherwise scan onward, first for a full taste match, then tier-only.
	if g.tasteMatch(items[next], leaf, power, styleOff) || g.r.Float64() < g.cat.Cfg.TierMatch {
		return items[next]
	}
	for s := 1; s <= tierScan; s++ {
		cand := clampRank(next+dir*s, n)
		if g.tasteMatch(items[cand], leaf, power, styleOff) {
			return items[cand]
		}
	}
	for s := 1; s <= tierScan; s++ {
		cand := clampRank(next+dir*s, n)
		if g.cat.Items[items[cand]].Tier == power {
			return items[cand]
		}
	}
	return items[next]
}

// tasteMatch reports whether an item fits the user's price tier and
// preferred style lane of the given leaf.
func (g *Generator) tasteMatch(item, leaf int32, power int8, styleOff int) bool {
	it := &g.cat.Items[item]
	if it.Tier != power {
		return false
	}
	want := int32((int(leaf) + styleOff) % g.cat.Cfg.NumStyles)
	return it.Style == want
}

func clampRank(r, n int) int {
	if r < 0 {
		return 0
	}
	if r >= n {
		return n - 1
	}
	return r
}

// sampleTierItem draws an item from the leaf by popularity, preferring the
// user's full taste (tier + style lane, 4 attempts), then the tier alone
// (2 attempts), before accepting anything.
func (g *Generator) sampleTierItem(leaf int32, power int8, styleOff int) int32 {
	items := g.cat.LeafItems[leaf]
	s := g.cat.leafItemSampler[leaf]
	var cand int32
	for try := 0; try < 4; try++ {
		cand = items[s.Sample()]
		if g.tasteMatch(cand, leaf, power, styleOff) || g.r.Float64() < g.cat.Cfg.TierMatch {
			return cand
		}
	}
	for try := 0; try < 2; try++ {
		cand = items[s.Sample()]
		if g.cat.Items[cand].Tier == power {
			return cand
		}
	}
	return cand
}

// sampleHubItem draws a bestseller from the leaf (steep Zipf), with a mild
// tier preference (2 attempts): hub landings concentrate regardless of who
// the user is.
func (g *Generator) sampleHubItem(leaf int32, power int8) int32 {
	items := g.cat.LeafItems[leaf]
	s := g.cat.leafHubSampler[leaf]
	var cand int32
	for try := 0; try < 2; try++ {
		cand = items[s.Sample()]
		if g.cat.Items[cand].Tier == power {
			return cand
		}
	}
	return cand
}

// siblingLeaf returns a random other leaf under the same top category
// (or the same leaf if the top has only one).
func (g *Generator) siblingLeaf(leaf int32) int32 {
	top := g.cat.LeafTop[leaf]
	// Leaves of a top form a contiguous block (see BuildCatalog).
	lo, hi := 0, len(g.cat.LeafTop)
	for i, t := range g.cat.LeafTop {
		if t == top {
			lo = i
			break
		}
	}
	for i := lo; i < len(g.cat.LeafTop); i++ {
		if g.cat.LeafTop[i] != top {
			hi = i
			break
		}
	}
	if hi-lo <= 1 {
		return leaf
	}
	for {
		cand := int32(lo + g.r.Intn(hi-lo))
		if cand != leaf || hi-lo == 1 {
			return cand
		}
	}
}

// Dataset bundles everything an experiment needs: catalog, population,
// vocabulary and the generated sessions, split for the next-item protocol.
type Dataset struct {
	Cfg      Config
	Catalog  *Catalog
	Pop      *Population
	Dict     *Dict
	Sessions []Session
}

// Generate builds the full dataset for cfg: catalog, population, NumSessions
// sessions, and a vocabulary whose counts reflect the *enriched* sequences
// (items + SI + user types), matching how the paper counts "tokens".
func Generate(cfg Config) (*Dataset, error) {
	cat, err := BuildCatalog(cfg)
	if err != nil {
		return nil, err
	}
	pop, err := BuildPopulation(cfg, cat)
	if err != nil {
		return nil, err
	}
	dict := cat.BuildDict(pop)
	gen := NewGenerator(cat, pop)
	sessions := make([]Session, cfg.NumSessions)
	for i := range sessions {
		sessions[i] = gen.Next()
	}
	ds := &Dataset{Cfg: cfg, Catalog: cat, Pop: pop, Dict: dict, Sessions: sessions}
	ds.recount()
	return ds, nil
}

// recount populates vocabulary frequencies from the enriched sessions.
func (ds *Dataset) recount() {
	d := ds.Dict
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		for _, it := range s.Items {
			d.AddCount(it, 1)
			for _, si := range d.ItemSI[it] {
				d.AddCount(si, 1)
			}
		}
		d.AddCount(d.UserType[s.UserType], 1)
	}
}

// HoldoutItems deterministically selects a fraction of the catalog as
// "cold" items — products launched after the training snapshot. They still
// exist in the catalog (with full side information) but carry no behaviour
// history, which is the cold-start regime of §IV-C2 and the coverage gap
// that separates SISG from CF online.
func (ds *Dataset) HoldoutItems(frac float64) []int32 {
	r := rng.New(ds.Cfg.Seed ^ 0xc01d)
	var out []int32
	for i := 0; i < len(ds.Catalog.Items); i++ {
		if r.Float64() < frac {
			out = append(out, int32(i))
		}
	}
	return out
}

// FilterSessions removes all occurrences of the given items from the
// sessions (splicing them out of the click streams) and drops sessions that
// shrink below two clicks. The returned sessions share no item slices with
// the input.
func FilterSessions(sessions []Session, holdout []int32) []Session {
	cold := make(map[int32]bool, len(holdout))
	for _, id := range holdout {
		cold[id] = true
	}
	out := make([]Session, 0, len(sessions))
	for i := range sessions {
		s := &sessions[i]
		items := make([]int32, 0, len(s.Items))
		for _, it := range s.Items {
			if !cold[it] {
				items = append(items, it)
			}
		}
		if len(items) >= 2 {
			out = append(out, Session{UserType: s.UserType, Items: items})
		}
	}
	return out
}

// Split partitions sessions into train and test for the next-item protocol
// (§IV-A): the train split keeps v1..v_{p-1}; the held-out target is v_p.
// Sessions shorter than 3 go entirely to training (no room for a target).
// testFrac is the fraction of eligible sessions held out.
type Split struct {
	Train []Session
	// Test pairs: Query is v_{p-1}, Target is v_p, User is the session's
	// user type.
	Test []TestCase
}

// TestCase is one next-item evaluation query.
type TestCase struct {
	User   int32
	Prefix []int32 // v1..v_{p-2} (may be empty)
	Query  int32   // v_{p-1}
	Target int32   // v_p
}

// SplitNextItem builds the train/test split deterministically from the
// dataset seed. Held-out sessions contribute v1..v_{p-1} to training (as in
// the paper: "we train SISG on (v1,...,v_{p-1}) and report the performance
// on v_p").
func (ds *Dataset) SplitNextItem(testFrac float64) *Split {
	r := rng.New(ds.Cfg.Seed ^ 0x7e57)
	sp := &Split{}
	maxTest := int(math.Ceil(testFrac * float64(len(ds.Sessions))))
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		if len(s.Items) >= 3 && len(sp.Test) < maxTest && r.Float64() < testFrac {
			p := len(s.Items)
			sp.Train = append(sp.Train, Session{UserType: s.UserType, Items: s.Items[:p-1]})
			sp.Test = append(sp.Test, TestCase{
				User:   s.UserType,
				Prefix: s.Items[:p-2],
				Query:  s.Items[p-2],
				Target: s.Items[p-1],
			})
		} else {
			sp.Train = append(sp.Train, *s)
		}
	}
	return sp
}
