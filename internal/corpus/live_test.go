package corpus

import "testing"

func tinyLive(t *testing.T, cfg LiveConfig) *Live {
	t.Helper()
	lv, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

func TestLiveDeterministic(t *testing.T) {
	cfg := LiveConfig{Base: Tiny(), ReserveItems: 40, LaunchEvery: 10, DriftEvery: 50}
	a, b := tinyLive(t, cfg), tinyLive(t, cfg)
	for i := 0; i < 500; i++ {
		sa, sb := a.Next(), b.Next()
		if sa.UserType != sb.UserType || len(sa.Items) != len(sb.Items) {
			t.Fatalf("session %d shape differs", i)
		}
		for j := range sa.Items {
			if sa.Items[j] != sb.Items[j] {
				t.Fatalf("session %d item %d: %d vs %d", i, j, sa.Items[j], sb.Items[j])
			}
		}
	}
}

func TestLiveLaunchSchedule(t *testing.T) {
	base := Tiny()
	lv := tinyLive(t, LiveConfig{Base: base, ReserveItems: 20, LaunchEvery: 5})
	if lv.Visible() != base.NumItems {
		t.Fatalf("visible at start %d, want %d", lv.Visible(), base.NumItems)
	}
	seen := make(map[int32]bool)
	for i := 0; i < 200; i++ {
		s := lv.Next()
		for _, it := range s.Items {
			if int(it) >= lv.Visible() && !seen[it] {
				t.Fatalf("session %d contains unlaunched item %d (visible %d)", i, it, lv.Visible())
			}
			seen[it] = true
		}
	}
	// 200 sessions at one launch per 5 sessions: all 20 reserved items out.
	if lv.Visible() != base.NumItems+20 {
		t.Fatalf("visible after 200 sessions %d, want %d", lv.Visible(), base.NumItems+20)
	}
	if got := len(lv.Launched()); got != 20 {
		t.Fatalf("launched %d, want 20", got)
	}
	// Universe dict covers reserved items (SI available before launch).
	if lv.Dict.NumItems != base.NumItems+20 {
		t.Fatalf("dict covers %d items, want %d", lv.Dict.NumItems, base.NumItems+20)
	}
}

func TestLiveDriftChangesPopularHeads(t *testing.T) {
	cfg := LiveConfig{Base: Tiny(), DriftEvery: 100}
	lv := tinyLive(t, cfg)
	countTop := func(n int) map[int32]int {
		counts := make(map[int32]int)
		for i := 0; i < n; i++ {
			for _, it := range lv.Next().Items {
				counts[it]++
			}
		}
		return counts
	}
	before := countTop(100) // phase 0 throughout
	for i := 0; i < 400; i++ {
		lv.Next() // advance several drift phases
	}
	after := countTop(100)
	// The hottest items of the early window should have lost their crown:
	// compare each window's single most-clicked item.
	argmax := func(m map[int32]int) (best int32, n int) {
		for it, c := range m {
			if c > n || (c == n && it < best) {
				best, n = it, c
			}
		}
		return
	}
	b, _ := argmax(before)
	a, _ := argmax(after)
	if a == b {
		t.Fatalf("most-clicked item %d unchanged across drift phases", b)
	}
}

func TestLiveNoReserveNoDriftMatchesStationaryStream(t *testing.T) {
	lv := tinyLive(t, LiveConfig{Base: Tiny()})
	for i := 0; i < 100; i++ {
		s := lv.Next()
		if len(s.Items) == 0 {
			t.Fatalf("session %d empty", i)
		}
		for _, it := range s.Items {
			if int(it) >= lv.Visible() {
				t.Fatalf("item %d out of range", it)
			}
		}
	}
}
