package corpus

import (
	"fmt"
	"math"

	"sisg/internal/rng"
	"sisg/internal/vocab"
)

// NumSIColumns is the number of item side-information columns, matching
// Table I of the paper (top_level_category, leaf_category, shop, city,
// brand, style, material, age_gender_purchase_level).
const NumSIColumns = 8

// SIColumnNames lists the item SI columns in Table I order. These names are
// the [FeatureName] prefix of the encoded tokens.
var SIColumnNames = [NumSIColumns]string{
	"top_level_category",
	"leaf_category",
	"shop",
	"city",
	"brand",
	"style",
	"material",
	"age_gender_purchase_level",
}

// Item is one catalog entry. All SI values are small dense integers into
// their respective value spaces.
type Item struct {
	Top      int32
	Leaf     int32
	Shop     int32
	City     int32
	Brand    int32
	Style    int32
	Material int32
	AGP      int32 // age_gender_purchase_level cross feature
	Tier     int8  // price tier in [0, NumPowers): derived from the brand
}

// SI returns the item's side-information values in SIColumnNames order.
func (it *Item) SI() [NumSIColumns]int32 {
	return [NumSIColumns]int32{
		it.Top, it.Leaf, it.Shop, it.City,
		it.Brand, it.Style, it.Material, it.AGP,
	}
}

// Catalog is the full synthetic item universe plus the derived structures
// the session generator walks over.
type Catalog struct {
	Cfg   Config
	Items []Item

	// LeafTop maps leaf category -> top category.
	LeafTop []int32
	// LeafNext maps (leaf, funnel group) to the accessory leaf — the
	// strictly one-way purchase-funnel destination (phones → phone cases).
	// The destination depends on the user's funnel group (indexed by
	// gender), which is what makes user-type tokens genuinely predictive:
	// different audiences buy different accessories for the same item.
	// Funnels stay inside the leaf's top category.
	LeafNext [][numFunnelGroups]int32
	// LeafItems lists, per leaf, its item IDs in browse order (the order a
	// user flipping through the category would encounter them). The order
	// is popularity-descending: hot items first, tail items last, like a
	// default category listing.
	LeafItems [][]int32
	// RankInLeaf maps item ID -> index into LeafItems[leaf].
	RankInLeaf []int32
	// LeafWeight is the unnormalized popularity of each leaf.
	LeafWeight []float64
	// ItemWeight is the unnormalized within-leaf popularity of each item.
	ItemWeight []float64

	// brandTier maps brand -> price tier.
	brandTier []int8
	// shopCity maps shop -> city, shopLeaf maps shop -> home leaf.
	shopCity []int32
	shopLeaf []int32

	// leafItemSampler draws items within a leaf by popularity; the hub
	// sampler uses a much steeper exponent and models "everyone lands on
	// the bestseller" jumps (leaf jumps and funnel landings).
	leafItemSampler []*rng.Zipf
	leafHubSampler  []*rng.Zipf
}

// numFunnelGroups is the number of distinct funnel destinations per leaf;
// a user's group is their gender index.
const numFunnelGroups = 3

// hubZipfExp is the popularity exponent for jump/funnel landings.
const hubZipfExp = 1.6

// topBlock returns the start index and length of the contiguous block of
// leaves sharing leaf's top category.
func topBlock(leafTop []int32, leaf int) (lo, n int) {
	top := leafTop[leaf]
	lo = leaf
	for lo > 0 && leafTop[lo-1] == top {
		lo--
	}
	hi := leaf
	for hi+1 < len(leafTop) && leafTop[hi+1] == top {
		hi++
	}
	return lo, hi - lo + 1
}

// BuildCatalog deterministically constructs the item universe for cfg.
func BuildCatalog(cfg Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed ^ 0xca7a106)

	c := &Catalog{
		Cfg:        cfg,
		Items:      make([]Item, cfg.NumItems),
		LeafTop:    make([]int32, cfg.NumLeafCats),
		LeafItems:  make([][]int32, cfg.NumLeafCats),
		RankInLeaf: make([]int32, cfg.NumItems),
		LeafWeight: make([]float64, cfg.NumLeafCats),
		ItemWeight: make([]float64, cfg.NumItems),
		brandTier:  make([]int8, cfg.NumBrands),
		shopCity:   make([]int32, cfg.NumShops),
		shopLeaf:   make([]int32, cfg.NumShops),
	}

	// Leaf -> top assignment: contiguous blocks, so sibling leaves share a
	// top category (cross-leaf jumps stay inside one top).
	for leaf := 0; leaf < cfg.NumLeafCats; leaf++ {
		c.LeafTop[leaf] = int32(leaf * cfg.NumTopCats / cfg.NumLeafCats)
	}
	// Funnel targets: group g of leaf L lands on the (1+g)-th following
	// leaf inside L's top block (cyclically), so every (leaf, group) pair
	// has exactly one accessory leaf and funnels never leave the top.
	c.LeafNext = make([][numFunnelGroups]int32, cfg.NumLeafCats)
	for leaf := 0; leaf < cfg.NumLeafCats; leaf++ {
		lo, n := topBlock(c.LeafTop, leaf)
		for g := 0; g < numFunnelGroups; g++ {
			c.LeafNext[leaf][g] = int32(lo + (leaf-lo+1+g)%n)
		}
	}
	// Leaf popularity is itself Zipf-ish: a few huge categories, a long tail.
	for leaf := 0; leaf < cfg.NumLeafCats; leaf++ {
		c.LeafWeight[leaf] = 1 / math.Pow(float64(leaf+1), 0.7)
	}
	r.Shuffle(cfg.NumLeafCats, func(i, j int) {
		c.LeafWeight[i], c.LeafWeight[j] = c.LeafWeight[j], c.LeafWeight[i]
	})

	// Brands get price tiers (uniformly), shops get a home leaf and a city.
	for b := 0; b < cfg.NumBrands; b++ {
		c.brandTier[b] = int8(r.Intn(cfg.NumPowers))
	}
	for s := 0; s < cfg.NumShops; s++ {
		c.shopLeaf[s] = int32(r.Intn(cfg.NumLeafCats))
		c.shopCity[s] = int32(r.Intn(cfg.NumCities))
	}

	// Items: assign leaves proportional to leaf weight, then fill SI.
	leafAlias, err := newWeightSampler(c.LeafWeight)
	if err != nil {
		return nil, fmt.Errorf("corpus: leaf sampler: %w", err)
	}
	// Brands cluster by top category: brand b mainly serves top (b mod T).
	for i := 0; i < cfg.NumItems; i++ {
		leaf := int32(leafAlias.sample(r))
		top := c.LeafTop[leaf]
		// Pick a shop that "carries" this leaf when possible (3 tries). A
		// shop carries its home leaf plus that leaf's accessory leaves —
		// phone shops sell cases — so shop tokens bridge funnel pairs in
		// the SI space, as they do at Taobao.
		shop := int32(r.Intn(cfg.NumShops))
		for try := 0; try < 3 && !c.shopCarries(shop, leaf); try++ {
			shop = int32(r.Intn(cfg.NumShops))
		}
		// Brand drawn from the top category's brand pool.
		pool := cfg.NumBrands / cfg.NumTopCats
		if pool < 1 {
			pool = 1
		}
		brand := int32(int(top)*pool+r.Intn(pool)) % int32(cfg.NumBrands)
		// Style and material lean toward the leaf's typical values but with
		// enough noise that SI narrows an item to its leaf, not to a
		// specific neighbourhood within it.
		style := int32((int(leaf) + r.Intn(4)) % cfg.NumStyles)
		material := int32((int(leaf)*3 + r.Intn(3)) % cfg.NumMaterials)
		tier := c.brandTier[brand]
		// AGP cross feature: the item's dominant audience. Correlated with
		// the leaf and tier, but deliberately noisy (crowd estimates are).
		ageDom := (int(leaf) + r.Intn(3)) % cfg.NumAgeBuckets
		genderDom := (int(leaf>>1) + r.Intn(2)) % 3
		agpTier := int(tier)
		if r.Float64() < 0.3 {
			agpTier = r.Intn(cfg.NumPowers)
		}
		agp := int32(genderDom*cfg.NumAgeBuckets*cfg.NumPowers +
			ageDom*cfg.NumPowers + agpTier)
		c.Items[i] = Item{
			Top: top, Leaf: leaf, Shop: shop, City: c.shopCity[shop],
			Brand: brand, Style: style, Material: material,
			AGP: agp, Tier: tier,
		}
		c.LeafItems[leaf] = append(c.LeafItems[leaf], int32(i))
	}

	// Every leaf must own at least one item; reassign strays from the
	// largest leaf if needed (possible for tiny configs).
	c.fixEmptyLeaves()

	// Browse order & within-leaf popularity: Zipf over the browse rank.
	c.leafItemSampler = make([]*rng.Zipf, cfg.NumLeafCats)
	c.leafHubSampler = make([]*rng.Zipf, cfg.NumLeafCats)
	for leaf := range c.LeafItems {
		items := c.LeafItems[leaf]
		// Shuffle first so "browse order" is not correlated with item ID.
		r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		for rank, id := range items {
			c.RankInLeaf[id] = int32(rank)
			c.ItemWeight[id] = 1 / math.Pow(float64(rank+1), cfg.ZipfExp)
		}
		c.leafItemSampler[leaf] = rng.NewZipf(r.Split(), len(items), cfg.ZipfExp)
		c.leafHubSampler[leaf] = rng.NewZipf(r.Split(), len(items), hubZipfExp)
	}
	return c, nil
}

// shopCarries reports whether the shop's assortment covers leaf: its home
// leaf or any accessory leaf of the home leaf.
func (c *Catalog) shopCarries(shop, leaf int32) bool {
	home := c.shopLeaf[shop]
	if home == leaf {
		return true
	}
	for _, next := range c.LeafNext[home] {
		if next == leaf {
			return true
		}
	}
	return false
}

func (c *Catalog) fixEmptyLeaves() {
	largest := 0
	for leaf := range c.LeafItems {
		if len(c.LeafItems[leaf]) > len(c.LeafItems[largest]) {
			largest = leaf
		}
	}
	for leaf := range c.LeafItems {
		if len(c.LeafItems[leaf]) > 0 {
			continue
		}
		donor := c.LeafItems[largest]
		id := donor[len(donor)-1]
		c.LeafItems[largest] = donor[:len(donor)-1]
		c.LeafItems[leaf] = []int32{id}
		it := &c.Items[id]
		it.Leaf = int32(leaf)
		it.Top = c.LeafTop[leaf]
	}
}

// NumLeaves returns the number of leaf categories.
func (c *Catalog) NumLeaves() int { return len(c.LeafItems) }

// AccessoryLeaf returns the one-way funnel destination of leaf for a user
// of the given gender (the funnel group).
func (c *Catalog) AccessoryLeaf(leaf int32, gender int8) int32 {
	return c.LeafNext[leaf][int(gender)%numFunnelGroups]
}

// LeafOf returns the leaf category of item id.
func (c *Catalog) LeafOf(id int32) int32 { return c.Items[id].Leaf }

// ItemToken returns the vocabulary name for an item, "item_<id>".
func ItemToken(id int32) string { return fmt.Sprintf("item_%d", id) }

// SIToken returns the vocabulary name for column col with value v,
// "[FeatureName]_[FeatureValue]" per Table I.
func SIToken(col int, v int32) string {
	return fmt.Sprintf("%s_%d", SIColumnNames[col], v)
}

// BuildDict constructs the joint vocabulary for the catalog and population:
// item tokens first (IDs equal item IDs, which the trainers and HBGP rely
// on), then every SI value that occurs on some item, then user types.
// Counts are zero; callers accumulate them by scanning sessions.
func (c *Catalog) BuildDict(pop *Population) *Dict {
	d := vocab.NewDict(len(c.Items) + 4096)
	for i := range c.Items {
		d.Add(ItemToken(int32(i)), vocab.KindItem, 0)
	}
	siIDs := make([][NumSIColumns]vocab.ID, len(c.Items))
	seen := make(map[string]vocab.ID, 4096)
	for i := range c.Items {
		si := c.Items[i].SI()
		for col, v := range si {
			name := SIToken(col, v)
			id, ok := seen[name]
			if !ok {
				id = d.Add(name, vocab.KindSI, 0)
				seen[name] = id
			}
			siIDs[i][col] = id
		}
	}
	utIDs := make([]vocab.ID, len(pop.Types))
	for t := range pop.Types {
		utIDs[t] = d.Add(pop.Types[t].Token(), vocab.KindUserType, 0)
	}
	return &Dict{
		Dict:     d,
		ItemSI:   siIDs,
		UserType: utIDs,
		NumItems: len(c.Items),
	}
}

// Dict couples the generic vocabulary with the precomputed ID tables the
// enrichment hot path needs: per-item SI token IDs and per-user-type token
// IDs. Item i always has vocabulary ID i.
type Dict struct {
	*vocab.Dict
	ItemSI   [][NumSIColumns]vocab.ID
	UserType []vocab.ID
	NumItems int
}

// IsItem reports whether a vocabulary ID denotes an item.
func (d *Dict) IsItem(id vocab.ID) bool { return int(id) < d.NumItems }

// weightSampler is a minimal inverse-CDF sampler used during catalog
// construction (cold path; the hot path uses precomputed Zipf samplers).
type weightSampler struct{ cdf []float64 }

func newWeightSampler(w []float64) (*weightSampler, error) {
	cdf := make([]float64, len(w))
	sum := 0.0
	for i, v := range w {
		if v < 0 {
			return nil, fmt.Errorf("negative weight at %d", i)
		}
		sum += v
		cdf[i] = sum
	}
	if sum == 0 {
		return nil, fmt.Errorf("all weights zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[len(cdf)-1] = 1
	return &weightSampler{cdf: cdf}, nil
}

func (s *weightSampler) sample(r *rng.RNG) int {
	u := r.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
